// The deployment kit is public API (examples and downstream users build on
// it); pin its wiring invariants.
#include "kit/chain_world.hpp"

#include <gtest/gtest.h>

namespace e2e::kit {
namespace {

TEST(ChainWorld, DefaultShape) {
  ChainWorld world;
  ASSERT_EQ(world.names().size(), 3u);
  EXPECT_EQ(world.names()[0], "DomainA");
  EXPECT_EQ(world.names()[2], "DomainC");
  EXPECT_EQ(world.broker(0).domain(), "DomainA");
}

TEST(ChainWorld, SlasInstalledDownstream) {
  ChainWorld world;
  // B accepts from A, C accepts from B — and nothing else.
  EXPECT_NE(world.broker(1).upstream_sla("DomainA"), nullptr);
  EXPECT_NE(world.broker(2).upstream_sla("DomainB"), nullptr);
  EXPECT_EQ(world.broker(0).upstream_sla("DomainB"), nullptr);
  EXPECT_EQ(world.broker(2).upstream_sla("DomainA"), nullptr);
  // SLA carries the peer trust material.
  const auto* sla = world.broker(1).upstream_sla("DomainA");
  ASSERT_TRUE(sla->peer_bb_certificate.has_value());
  ASSERT_TRUE(sla->peer_ca_certificate.has_value());
  EXPECT_EQ(sla->peer_bb_certificate->subject(), world.broker(0).dn());
}

TEST(ChainWorld, NextHopsReachEveryDownstreamDomain) {
  ChainWorldConfig config;
  config.domains = 5;
  ChainWorld world(config);
  for (std::size_t i = 0; i + 1 < 5; ++i) {
    for (std::size_t dest = i + 1; dest < 5; ++dest) {
      const auto hop = world.broker(i).next_hop(world.names()[dest]);
      ASSERT_TRUE(hop.has_value());
      EXPECT_EQ(*hop, world.names()[i + 1]);
    }
  }
}

TEST(ChainWorld, CustomPoliciesCycle) {
  ChainWorldConfig config;
  config.domains = 4;
  config.policies = {"Return GRANT", "Return DENY"};  // cycles A,B,C,D
  ChainWorld world(config);
  WorldUser alice = world.make_user("Alice", 0);
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 1e6), 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.origin, "DomainB");  // second policy
}

TEST(ChainWorld, UserMaterialConsistent) {
  ChainWorld world;
  const WorldUser u = world.make_user("Alice", 1, /*with_capability=*/true);
  EXPECT_EQ(u.dn.organization(), "DomainB");
  EXPECT_TRUE(u.identity_cert.verify_signature(world.ca(1).public_key()));
  ASSERT_TRUE(u.capability_cert.has_value());
  EXPECT_TRUE(u.capability_cert->is_capability_certificate());
  EXPECT_EQ(u.capability_cert->subject_public_key(), u.proxy_keys.pub);
  const auto creds = u.credentials();
  EXPECT_TRUE(creds.capability_certificate.has_value());
  EXPECT_TRUE(creds.proxy_key.has_value());
  // Without capability: credentials omit the proxy material.
  const WorldUser plain = world.make_user("Bob", 1, false);
  EXPECT_FALSE(plain.credentials().capability_certificate.has_value());
}

TEST(ChainWorld, DeterministicAcrossInstances) {
  ChainWorldConfig config;
  config.seed = 777;
  ChainWorld w1(config), w2(config);
  EXPECT_EQ(w1.broker(0).certificate().encode(),
            w2.broker(0).certificate().encode());
}

TEST(ChainWorld, DomainNamesBeyondAlphabet) {
  EXPECT_EQ(ChainWorld::domain_name(0), "DomainA");
  EXPECT_EQ(ChainWorld::domain_name(25), "DomainZ");
  EXPECT_EQ(ChainWorld::domain_name(26), "Domain26");
}

}  // namespace
}  // namespace e2e::kit
