#include "crypto/biguint.hpp"

#include <gtest/gtest.h>

namespace e2e::crypto {
namespace {

TEST(BigUInt, ZeroProperties) {
  BigUInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_odd());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_decimal(), "0");
  EXPECT_EQ(z.to_hex(), "0x0");
  EXPECT_TRUE(z.to_bytes().empty());
}

TEST(BigUInt, SmallArithmetic) {
  const BigUInt a(1000), b(27);
  EXPECT_EQ((a + b).to_decimal(), "1027");
  EXPECT_EQ((a - b).to_decimal(), "973");
  EXPECT_EQ((a * b).to_decimal(), "27000");
  EXPECT_EQ((a / b).to_decimal(), "37");
  EXPECT_EQ((a % b).to_decimal(), "1");
}

TEST(BigUInt, CarryAcrossLimbs) {
  const BigUInt max64(~0ull);
  const BigUInt sum = max64 + BigUInt(1);
  EXPECT_EQ(sum.bit_length(), 65u);
  EXPECT_EQ(sum.to_hex(), "0x10000000000000000");
  EXPECT_EQ((sum - BigUInt(1)), max64);
}

TEST(BigUInt, MultiplicationKnownValue) {
  // 2^64 * 2^64 = 2^128.
  const BigUInt x = BigUInt(1) << 64;
  EXPECT_EQ((x * x).to_hex(), "0x100000000000000000000000000000000");
  // Factorial of 25 = 15511210043330985984000000.
  BigUInt fact(1);
  for (std::uint64_t i = 2; i <= 25; ++i) fact = fact * BigUInt(i);
  EXPECT_EQ(fact.to_decimal(), "15511210043330985984000000");
}

TEST(BigUInt, DecimalStringRoundTrip) {
  const std::string s = "123456789012345678901234567890123456789";
  EXPECT_EQ(BigUInt::from_string(s).to_decimal(), s);
}

TEST(BigUInt, HexStringRoundTrip) {
  const std::string s = "0xdeadbeefcafebabe0123456789abcdef";
  EXPECT_EQ(BigUInt::from_string(s).to_hex(), s);
}

TEST(BigUInt, BytesRoundTrip) {
  const BigUInt v = BigUInt::from_string("0x0102030405060708090a0b0c0d0e0f");
  const Bytes b = v.to_bytes();
  EXPECT_EQ(BigUInt::from_bytes(b), v);
  // Padded export keeps the value.
  EXPECT_EQ(BigUInt::from_bytes(v.to_bytes(64)), v);
  EXPECT_EQ(v.to_bytes(64).size(), 64u);
}

TEST(BigUInt, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigUInt(1) - BigUInt(2), std::underflow_error);
}

TEST(BigUInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigUInt(1) / BigUInt(0), std::domain_error);
}

TEST(BigUInt, Shifts) {
  const BigUInt one(1);
  EXPECT_EQ((one << 130).bit_length(), 131u);
  EXPECT_EQ(((one << 130) >> 130), one);
  EXPECT_TRUE((one >> 1).is_zero());
  const BigUInt v = BigUInt::from_string("0x123456789abcdef0fedcba987654321");
  EXPECT_EQ(((v << 67) >> 67), v);
}

TEST(BigUInt, CompareOrdering) {
  const BigUInt a = BigUInt::from_string("0xffffffffffffffff");
  const BigUInt b = BigUInt::from_string("0x10000000000000000");
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_LE(a, a);
  EXPECT_GE(b, b);
  EXPECT_NE(a, b);
}

TEST(BigUInt, DivModKnownLargeValue) {
  const BigUInt a = BigUInt::from_string(
      "340282366920938463463374607431768211456");  // 2^128
  const BigUInt b = BigUInt::from_string("18446744073709551629");  // prime>2^64
  const auto dm = BigUInt::divmod(a, b);
  EXPECT_EQ(dm.quotient * b + dm.remainder, a);
  EXPECT_LT(dm.remainder, b);
}

TEST(BigUInt, ModexpKnownValues) {
  // 2^10 mod 1000 = 24.
  EXPECT_EQ(BigUInt(2).modexp(BigUInt(10), BigUInt(1000)), BigUInt(24));
  // Fermat: a^(p-1) = 1 mod p for prime p.
  const BigUInt p = BigUInt::from_string("0xffffffffffffffc5");  // 2^64-59
  EXPECT_EQ(BigUInt(12345).modexp(p - BigUInt(1), p), BigUInt(1));
}

TEST(BigUInt, ModinvBasics) {
  // 3 * 7 = 21 = 1 mod 10 -> 3^-1 mod 10 = 7.
  EXPECT_EQ(BigUInt(3).modinv(BigUInt(10)), BigUInt(7));
  // Non-invertible returns zero.
  EXPECT_TRUE(BigUInt(4).modinv(BigUInt(8)).is_zero());
}

TEST(BigUInt, Gcd) {
  EXPECT_EQ(BigUInt::gcd(BigUInt(48), BigUInt(36)), BigUInt(12));
  EXPECT_EQ(BigUInt::gcd(BigUInt(17), BigUInt(13)), BigUInt(1));
  EXPECT_EQ(BigUInt::gcd(BigUInt(0), BigUInt(5)), BigUInt(5));
}

TEST(BigUInt, PrimalityKnownValues) {
  Rng rng(7);
  EXPECT_TRUE(BigUInt(2).is_probable_prime(rng));
  EXPECT_TRUE(BigUInt(61).is_probable_prime(rng));
  EXPECT_FALSE(BigUInt(1).is_probable_prime(rng));
  EXPECT_FALSE(BigUInt(561).is_probable_prime(rng));   // Carmichael number
  EXPECT_FALSE(BigUInt(62745).is_probable_prime(rng)); // Carmichael number
  // Known 128-bit prime: 2^127 - 1 (Mersenne).
  const BigUInt m127 = (BigUInt(1) << 127) - BigUInt(1);
  EXPECT_TRUE(m127.is_probable_prime(rng));
  // 2^128 - 1 is composite.
  EXPECT_FALSE(((BigUInt(1) << 128) - BigUInt(1)).is_probable_prime(rng));
}

TEST(BigUInt, RandomPrimeHasRequestedSize) {
  Rng rng(99);
  const BigUInt p = BigUInt::random_prime(rng, 96);
  EXPECT_EQ(p.bit_length(), 96u);
  EXPECT_TRUE(p.is_probable_prime(rng));
}

TEST(BigUInt, RandomBitsExactLength) {
  Rng rng(5);
  for (unsigned bits : {1u, 63u, 64u, 65u, 200u}) {
    EXPECT_EQ(BigUInt::random_bits(rng, bits).bit_length(), bits);
  }
  EXPECT_TRUE(BigUInt::random_bits(rng, 0).is_zero());
}

TEST(BigUInt, RandomBelowInRange) {
  Rng rng(11);
  const BigUInt bound = BigUInt::from_string("1000000000000000000000");
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(BigUInt::random_below(rng, bound), bound);
  }
}

// Property sweep: (a*b)/b == a, (a*b)%b == 0, and divmod reconstruction for
// random operand sizes.
class BigUIntDivMulProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BigUIntDivMulProperty, DivModReconstruction) {
  Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    const unsigned abits = 1 + static_cast<unsigned>(rng.next_below(512));
    const unsigned bbits = 1 + static_cast<unsigned>(rng.next_below(512));
    const BigUInt a = BigUInt::random_bits(rng, abits);
    const BigUInt b = BigUInt::random_bits(rng, bbits);
    if (b.is_zero()) continue;
    const auto dm = BigUInt::divmod(a, b);
    EXPECT_EQ(dm.quotient * b + dm.remainder, a);
    EXPECT_LT(dm.remainder, b);
    // Exact-multiple identities.
    const BigUInt prod = a * b;
    EXPECT_EQ(prod / b, a);
    EXPECT_TRUE((prod % b).is_zero());
  }
}

TEST_P(BigUIntDivMulProperty, AddSubInverse) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int i = 0; i < 40; ++i) {
    const BigUInt a =
        BigUInt::random_bits(rng, 1 + static_cast<unsigned>(rng.next_below(300)));
    const BigUInt b =
        BigUInt::random_bits(rng, 1 + static_cast<unsigned>(rng.next_below(300)));
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a + b) - a, b);
  }
}

TEST_P(BigUIntDivMulProperty, ModinvIsInverse) {
  Rng rng(GetParam() + 17);
  const BigUInt m = BigUInt::random_prime(rng, 128);
  for (int i = 0; i < 10; ++i) {
    const BigUInt a = BigUInt(1) + BigUInt::random_below(rng, m - BigUInt(1));
    const BigUInt inv = a.modinv(m);
    EXPECT_EQ((a * inv) % m, BigUInt(1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigUIntDivMulProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace e2e::crypto
