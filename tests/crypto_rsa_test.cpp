#include "crypto/rsa.hpp"

#include <gtest/gtest.h>

namespace e2e::crypto {
namespace {

// Key generation is the slow part; share one pair across tests.
const KeyPair& test_keys() {
  static const KeyPair kp = [] {
    Rng rng(4242);
    return generate_keypair(rng, 512);
  }();
  return kp;
}

TEST(Rsa, SignVerifyRoundTrip) {
  const Bytes msg = to_bytes("reserve 10 Mb/s from A to C");
  const Bytes sig = sign(test_keys().priv, msg);
  EXPECT_TRUE(verify(test_keys().pub, msg, sig));
}

TEST(Rsa, TamperedMessageFails) {
  const Bytes msg = to_bytes("reserve 10 Mb/s from A to C");
  const Bytes sig = sign(test_keys().priv, msg);
  Bytes tampered = msg;
  tampered[8] = '9';  // 90 Mb/s
  EXPECT_FALSE(verify(test_keys().pub, tampered, sig));
}

TEST(Rsa, TamperedSignatureFails) {
  const Bytes msg = to_bytes("request");
  Bytes sig = sign(test_keys().priv, msg);
  sig[0] ^= 0x01;
  EXPECT_FALSE(verify(test_keys().pub, msg, sig));
}

TEST(Rsa, WrongKeyFails) {
  Rng rng(777);
  const KeyPair other = generate_keypair(rng, 512);
  const Bytes msg = to_bytes("request");
  const Bytes sig = sign(test_keys().priv, msg);
  EXPECT_FALSE(verify(other.pub, msg, sig));
}

TEST(Rsa, SignatureIsCanonicalWidth) {
  const Bytes sig = sign(test_keys().priv, to_bytes("x"));
  EXPECT_EQ(sig.size(), (test_keys().pub.n.bit_length() + 7) / 8);
}

TEST(Rsa, EmptyMessageSignable) {
  const Bytes sig = sign(test_keys().priv, Bytes{});
  EXPECT_TRUE(verify(test_keys().pub, Bytes{}, sig));
}

TEST(Rsa, SignatureOutOfRangeRejected) {
  // A "signature" >= n must be rejected before the math.
  const Bytes big = test_keys().pub.n.to_bytes();
  EXPECT_FALSE(verify(test_keys().pub, to_bytes("m"), big));
}

TEST(Rsa, KeypairDeterministicFromSeed) {
  Rng a(31337), b(31337);
  const KeyPair ka = generate_keypair(a, 256);
  const KeyPair kb = generate_keypair(b, 256);
  EXPECT_EQ(ka.pub, kb.pub);
}

TEST(Rsa, PublicKeyEncodeDecode) {
  const Bytes enc = test_keys().pub.encode();
  const auto dec = PublicKey::decode(enc);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(*dec, test_keys().pub);
}

TEST(Rsa, PublicKeyDecodeRejectsTrailing) {
  Bytes enc = test_keys().pub.encode();
  enc.push_back(0);
  // Trailing byte makes the TLV malformed (truncated header) or non-canonical.
  EXPECT_FALSE(PublicKey::decode(enc).ok());
}

TEST(Rsa, PrivateKeyEncodeDecode) {
  const Bytes enc = test_keys().priv.encode();
  const auto dec = PrivateKey::decode(enc);
  ASSERT_TRUE(dec.ok());
  // Decoded key must still sign verifiably.
  const Bytes sig = sign(*dec, to_bytes("roundtrip"));
  EXPECT_TRUE(verify(test_keys().pub, to_bytes("roundtrip"), sig));
}

TEST(Rsa, FingerprintStable) {
  EXPECT_EQ(test_keys().pub.fingerprint(), test_keys().pub.fingerprint());
  Rng rng(91);
  const KeyPair other = generate_keypair(rng, 256);
  EXPECT_NE(hex_encode(digest_bytes(test_keys().pub.fingerprint())),
            hex_encode(digest_bytes(other.pub.fingerprint())));
}

// The paper's protocol signs many different payload shapes; sweep payload
// sizes to make sure hashing + modexp stay consistent.
class RsaPayloadSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsaPayloadSweep, RoundTrips) {
  Rng rng(GetParam());
  Bytes msg(GetParam());
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_u64());
  const Bytes sig = sign(test_keys().priv, msg);
  EXPECT_TRUE(verify(test_keys().pub, msg, sig));
  if (!msg.empty()) {
    msg.back() ^= 0xff;
    EXPECT_FALSE(verify(test_keys().pub, msg, sig));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RsaPayloadSweep,
                         ::testing::Values(0, 1, 16, 63, 64, 65, 255, 1024,
                                           65536));

}  // namespace
}  // namespace e2e::crypto
