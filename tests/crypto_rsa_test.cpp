#include "crypto/rsa.hpp"

#include <gtest/gtest.h>

#include "common/tlv.hpp"
#include "obs/instruments.hpp"

namespace e2e::crypto {
namespace {

// Key generation is the slow part; share one pair across tests.
const KeyPair& test_keys() {
  static const KeyPair kp = [] {
    Rng rng(4242);
    return generate_keypair(rng, 512);
  }();
  return kp;
}

TEST(Rsa, SignVerifyRoundTrip) {
  const Bytes msg = to_bytes("reserve 10 Mb/s from A to C");
  const Bytes sig = sign(test_keys().priv, msg);
  EXPECT_TRUE(verify(test_keys().pub, msg, sig));
}

TEST(Rsa, TamperedMessageFails) {
  const Bytes msg = to_bytes("reserve 10 Mb/s from A to C");
  const Bytes sig = sign(test_keys().priv, msg);
  Bytes tampered = msg;
  tampered[8] = '9';  // 90 Mb/s
  EXPECT_FALSE(verify(test_keys().pub, tampered, sig));
}

TEST(Rsa, TamperedSignatureFails) {
  const Bytes msg = to_bytes("request");
  Bytes sig = sign(test_keys().priv, msg);
  sig[0] ^= 0x01;
  EXPECT_FALSE(verify(test_keys().pub, msg, sig));
}

TEST(Rsa, WrongKeyFails) {
  Rng rng(777);
  const KeyPair other = generate_keypair(rng, 512);
  const Bytes msg = to_bytes("request");
  const Bytes sig = sign(test_keys().priv, msg);
  EXPECT_FALSE(verify(other.pub, msg, sig));
}

TEST(Rsa, SignatureIsCanonicalWidth) {
  const Bytes sig = sign(test_keys().priv, to_bytes("x"));
  EXPECT_EQ(sig.size(), (test_keys().pub.n.bit_length() + 7) / 8);
}

TEST(Rsa, EmptyMessageSignable) {
  const Bytes sig = sign(test_keys().priv, Bytes{});
  EXPECT_TRUE(verify(test_keys().pub, Bytes{}, sig));
}

TEST(Rsa, SignatureOutOfRangeRejected) {
  // A "signature" >= n must be rejected before the math.
  const Bytes big = test_keys().pub.n.to_bytes();
  EXPECT_FALSE(verify(test_keys().pub, to_bytes("m"), big));
}

TEST(Rsa, KeypairDeterministicFromSeed) {
  Rng a(31337), b(31337);
  const KeyPair ka = generate_keypair(a, 256);
  const KeyPair kb = generate_keypair(b, 256);
  EXPECT_EQ(ka.pub, kb.pub);
}

TEST(Rsa, PublicKeyEncodeDecode) {
  const Bytes enc = test_keys().pub.encode();
  const auto dec = PublicKey::decode(enc);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(*dec, test_keys().pub);
}

TEST(Rsa, PublicKeyDecodeRejectsTrailing) {
  Bytes enc = test_keys().pub.encode();
  enc.push_back(0);
  // Trailing byte makes the TLV malformed (truncated header) or non-canonical.
  EXPECT_FALSE(PublicKey::decode(enc).ok());
}

TEST(Rsa, PrivateKeyEncodeDecode) {
  const Bytes enc = test_keys().priv.encode();
  const auto dec = PrivateKey::decode(enc);
  ASSERT_TRUE(dec.ok());
  // Decoded key must still sign verifiably.
  const Bytes sig = sign(*dec, to_bytes("roundtrip"));
  EXPECT_TRUE(verify(test_keys().pub, to_bytes("roundtrip"), sig));
}

TEST(Rsa, FingerprintStable) {
  EXPECT_EQ(test_keys().pub.fingerprint(), test_keys().pub.fingerprint());
  Rng rng(91);
  const KeyPair other = generate_keypair(rng, 256);
  EXPECT_NE(hex_encode(digest_bytes(test_keys().pub.fingerprint())),
            hex_encode(digest_bytes(other.pub.fingerprint())));
}

TEST(Rsa, GenerateKeypairPopulatesCrt) {
  const PrivateKey& priv = test_keys().priv;
  ASSERT_TRUE(priv.crt.has_value());
  const CrtParams& crt = priv.crt.value();
  EXPECT_EQ(crt.p * crt.q, priv.n);
  const BigUInt one(1);
  EXPECT_EQ(crt.dp, priv.d % (crt.p - one));
  EXPECT_EQ(crt.dq, priv.d % (crt.q - one));
  EXPECT_EQ((crt.q * crt.qinv) % crt.p, one);
}

TEST(Rsa, CrtSignatureMatchesPlainPath) {
  // The CRT recombination must be byte-identical to s = H^d mod n — the
  // wire format cannot change just because the signer holds CRT params.
  const PrivateKey plain{test_keys().priv.n, test_keys().priv.d, std::nullopt};
  for (const char* payload :
       {"", "RAR: 10Mb/s A->C", "a much longer reservation payload with "
        "nested signatures and capability chains attached"}) {
    const Bytes msg = to_bytes(payload);
    EXPECT_EQ(sign(test_keys().priv, msg), sign(plain, msg)) << payload;
  }
}

TEST(Rsa, CrtSignatureMatchesPlainAcrossKeySizes) {
  for (unsigned bits : {256u, 384u, 512u}) {
    Rng rng(9000 + bits);
    const KeyPair kp = generate_keypair(rng, bits);
    const PrivateKey plain{kp.priv.n, kp.priv.d, std::nullopt};
    const Bytes msg = to_bytes("cross-size differential");
    const Bytes crt_sig = sign(kp.priv, msg);
    EXPECT_EQ(crt_sig, sign(plain, msg)) << bits;
    EXPECT_TRUE(verify(kp.pub, msg, crt_sig));
  }
}

TEST(Rsa, LegacyTwoFieldPrivateKeyStillDecodes) {
  // Pre-CRT encodings carry only modulus + exponent; they must keep
  // decoding (with no CRT params) and keep signing verifiably.
  const PrivateKey legacy{test_keys().priv.n, test_keys().priv.d,
                          std::nullopt};
  const Bytes enc = legacy.encode();
  const auto dec = PrivateKey::decode(enc);
  ASSERT_TRUE(dec.ok());
  EXPECT_FALSE(dec->crt.has_value());
  const Bytes sig = sign(*dec, to_bytes("legacy"));
  EXPECT_TRUE(verify(test_keys().pub, to_bytes("legacy"), sig));
}

TEST(Rsa, ExtendedPrivateKeyEncodeDecodeRoundTrips) {
  const Bytes enc = test_keys().priv.encode();
  const auto dec = PrivateKey::decode(enc);
  ASSERT_TRUE(dec.ok());
  ASSERT_TRUE(dec->crt.has_value());
  EXPECT_EQ(*dec->crt, *test_keys().priv.crt);
  EXPECT_EQ(dec->encode(), enc);
}

TEST(Rsa, ExtendedPrivateKeyDecodeRejectsTruncatedCrt) {
  // n, d, then only p (tag 0x0103): an incomplete CRT trailer must be an
  // error, not a silently-plain key.
  const PrivateKey& priv = test_keys().priv;
  tlv::Writer w;
  w.put_bytes(0x0101, priv.n.to_bytes());
  w.put_bytes(0x0102, priv.d.to_bytes());
  w.put_bytes(0x0103, priv.crt->p.to_bytes());
  EXPECT_FALSE(PrivateKey::decode(w.take()).ok());
}

// --- Montgomery precondition guard ----------------------------------------

TEST(Rsa, VerifyRejectsEvenModulus) {
  auto& registry = obs::MetricsRegistry::global();
  obs::Counter& rejects =
      registry.counter(obs::kCryptoBadKeyRejectsTotal, {});
  const std::uint64_t before = rejects.value();
  PublicKey bad = test_keys().pub;
  bad.n = bad.n + BigUInt(1);  // odd RSA modulus + 1 = even
  const Bytes msg = to_bytes("m");
  EXPECT_FALSE(verify(bad, msg, sign(test_keys().priv, msg)));
  EXPECT_GT(rejects.value(), before);
}

TEST(Rsa, VerifyRejectsTrivialModulus) {
  auto& registry = obs::MetricsRegistry::global();
  obs::Counter& rejects =
      registry.counter(obs::kCryptoBadKeyRejectsTotal, {});
  for (std::uint64_t n : {0ull, 1ull}) {
    const std::uint64_t before = rejects.value();
    PublicKey bad{BigUInt(n), BigUInt(65537)};
    EXPECT_FALSE(verify(bad, to_bytes("m"), Bytes{}));
    EXPECT_GT(rejects.value(), before) << n;
  }
}

// The paper's protocol signs many different payload shapes; sweep payload
// sizes to make sure hashing + modexp stay consistent.
class RsaPayloadSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsaPayloadSweep, RoundTrips) {
  Rng rng(GetParam());
  Bytes msg(GetParam());
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_u64());
  const Bytes sig = sign(test_keys().priv, msg);
  EXPECT_TRUE(verify(test_keys().pub, msg, sig));
  if (!msg.empty()) {
    msg.back() ^= 0xff;
    EXPECT_FALSE(verify(test_keys().pub, msg, sig));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RsaPayloadSweep,
                         ::testing::Values(0, 1, 16, 63, 64, 65, 255, 1024,
                                           65536));

}  // namespace
}  // namespace e2e::crypto
