#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

namespace e2e::crypto {
namespace {

std::string hash_hex(std::string_view input) {
  const Digest d = sha256(to_bytes(input));
  return hex_encode(BytesView(d.data(), d.size()));
}

// FIPS 180-4 / NIST CAVP reference vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hash_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hash_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const Digest d = h.finish();
  EXPECT_EQ(hex_encode(BytesView(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes: exactly one block before padding.
  const std::string input(64, 'x');
  Sha256 h;
  h.update(to_bytes(input));
  const Digest whole = h.finish();

  // Same input fed byte by byte must agree.
  Sha256 h2;
  for (char c : input) {
    const auto b = static_cast<std::uint8_t>(c);
    h2.update(BytesView(&b, 1));
  }
  const Digest incremental = h2.finish();
  EXPECT_EQ(whole, incremental);
}

TEST(Sha256, ChunkingInvariance) {
  const Bytes data = to_bytes(
      "the bandwidth broker configures the edge routers of a single "
      "administrative network domain and provides admission control");
  const Digest whole = sha256(data);
  for (std::size_t split = 1; split < data.size(); split += 7) {
    Sha256 h;
    h.update(BytesView(data).subspan(0, split));
    h.update(BytesView(data).subspan(split));
    EXPECT_EQ(h.finish(), whole) << "split at " << split;
  }
}

TEST(Sha256, DifferentInputsDiffer) {
  EXPECT_NE(hash_hex("reservation-1"), hash_hex("reservation-2"));
}

TEST(Sha256, LengthExtensionSensitivity) {
  // Appending a byte (even a NUL) must change the digest.
  const std::string with_nul{"msg\x00", 4};
  EXPECT_NE(hash_hex("msg"), hash_hex(with_nul));
}

TEST(Sha256, DigestBytesMatchesArray) {
  const Digest d = sha256(to_bytes("x"));
  const Bytes b = digest_bytes(d);
  ASSERT_EQ(b.size(), kSha256DigestSize);
  EXPECT_TRUE(std::equal(b.begin(), b.end(), d.begin()));
}

// Parameterized sweep over message lengths crossing padding boundaries
// (55/56/57 and 63/64/65 are the classic edge cases).
class Sha256PaddingBoundary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256PaddingBoundary, IncrementalMatchesOneShot) {
  const std::size_t len = GetParam();
  Bytes data(len);
  for (std::size_t i = 0; i < len; ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  const Digest whole = sha256(data);
  Sha256 h;
  // Feed in two uneven pieces.
  const std::size_t cut = len / 3;
  h.update(BytesView(data).subspan(0, cut));
  h.update(BytesView(data).subspan(cut));
  EXPECT_EQ(h.finish(), whole);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, Sha256PaddingBoundary,
                         ::testing::Values(1, 54, 55, 56, 57, 63, 64, 65, 119,
                                           120, 121, 127, 128, 129, 1000));

}  // namespace
}  // namespace e2e::crypto
