// Robustness fuzzing of the policy front end: random byte soup and random
// token streams must produce clean errors, never crashes.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "policy/policy.hpp"

namespace e2e::policy {
namespace {

class PolicyFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolicyFuzz, RandomBytesNeverCrashCompiler) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string soup;
    const std::size_t len = rng.next_below(200);
    for (std::size_t j = 0; j < len; ++j) {
      soup.push_back(static_cast<char>(rng.next_below(128)));
    }
    (void)Policy::compile(soup);  // result irrelevant; must not crash
  }
}

TEST_P(PolicyFuzz, RandomTokenSaladNeverCrashes) {
  static const char* kFragments[] = {
      "If",        "Else",     "Return", "GRANT",  "DENY",   "and",
      "or",        "not",      "User",   "BW",     "Time",   "Group",
      "Avail_BW",  "=",        "!=",     "<=",     ">=",     "<",
      ">",         "(",        ")",      "{",      "}",      ",",
      "Alice",     "10Mb/s",   "8am",    "5pm",    "17:30",  "42",
      "\"quoted\"", "Issued_by", "Capability", "ESnet", "#x\n"};
  Rng rng(GetParam() ^ 0xf00d);
  for (int i = 0; i < 300; ++i) {
    std::string program;
    const std::size_t words = rng.next_below(40);
    for (std::size_t j = 0; j < words; ++j) {
      program += kFragments[rng.next_below(std::size(kFragments))];
      program += ' ';
    }
    auto policy = Policy::compile(program);
    if (policy.ok()) {
      // Compiled token salads must also evaluate without crashing.
      EvalContext ctx;
      ctx.set_user("Alice");
      ctx.set_bandwidth(5e6);
      (void)policy->evaluate(ctx);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyFuzz,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace e2e::policy
