// Crash/recover soak (ISSUE 6): seeded randomized trials against a durable
// multi-domain world. Traffic runs through the hop-by-hop engine with a
// light fault profile; brokers are crashed mid-traffic via the fault
// fabric (PR-2), their on-disk state (snapshot + WAL tail) replayed into a
// blank broker and compared against the live in-memory oracle — the exact
// pool timeline at every probed instant, the full reservation set, and the
// tunnel books. After the mix: everything released, zero residual
// committed bandwidth anywhere, and never a double-grant (timeline
// equality is checked on every recovery).
//
// Reproducibility: base seed from E2E_SOAK_SEED (default 20010801), echoed
// up front; every trial announces itself via SCOPED_TRACE.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bb/recovery.hpp"
#include "bb/snapshot.hpp"
#include "testing_world.hpp"

namespace e2e::kit {
namespace {

std::uint64_t soak_seed() {
  if (const char* env = std::getenv("E2E_SOAK_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20010801ull;
}

constexpr std::size_t kDomains = 3;
constexpr std::size_t kTrials = 80;

/// Fresh durability directory for this run (stale logs from a previous
/// process must not be adopted into the new chain).
std::string make_durability_dir(std::uint64_t seed) {
  const std::string dir =
      ::testing::TempDir() + "bb_recovery_soak_" + std::to_string(seed);
  ::mkdir(dir.c_str(), 0755);
  for (std::size_t i = 0; i < kDomains; ++i) {
    const std::string base = dir + "/" + ChainWorld::domain_name(i);
    std::remove((base + ".wal").c_str());
    std::remove((base + ".snapshot").c_str());
  }
  return dir;
}

/// Differential check: the broker recovered from disk must be
/// indistinguishable from the live oracle — same reservation set, same
/// committed bandwidth at every interval boundary, same tunnel books.
/// Timeline equality at every probe is also the no-double-grant check: a
/// record applied twice would overshoot the oracle somewhere.
void expect_matches_oracle(const bb::BandwidthBroker& oracle,
                           const bb::BandwidthBroker& recovered) {
  const auto ra = oracle.all_reservations();
  const auto rb = recovered.all_reservations();
  ASSERT_EQ(ra.size(), rb.size());
  std::set<SimTime> ts{0};
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].id, rb[i].id);
    EXPECT_TRUE(ra[i].spec == rb[i].spec) << "spec mismatch for " << ra[i].id;
    EXPECT_EQ(ra[i].upstream_domain, rb[i].upstream_domain);
    for (SimTime t : {ra[i].spec.interval.start, ra[i].spec.interval.end - 1,
                      ra[i].spec.interval.end + 1}) {
      ts.insert(t);
    }
  }
  for (SimTime t : ts) {
    ASSERT_DOUBLE_EQ(oracle.committed_at(t), recovered.committed_at(t))
        << "pool timeline diverges at t=" << t;
  }
  ASSERT_EQ(oracle.tunnel_count(), recovered.tunnel_count());
  for (const bb::Tunnel* t : oracle.all_tunnels()) {
    const bb::Tunnel* other = recovered.find_tunnel(t->id());
    ASSERT_NE(other, nullptr) << "missing tunnel " << t->id();
    EXPECT_EQ(t->authorized(), other->authorized());
    const auto aa = t->allocations();
    const auto ab = other->allocations();
    ASSERT_EQ(aa.size(), ab.size()) << "tunnel " << t->id();
    for (std::size_t i = 0; i < aa.size(); ++i) {
      EXPECT_EQ(aa[i].key, ab[i].key);
      EXPECT_DOUBLE_EQ(aa[i].rate, ab[i].rate);
    }
  }
}

/// Crash domain `d` mid-traffic and differentially recover it: isolate it
/// on the fabric, fire one in-flight request at the chain (it sees the
/// outage), then replay the domain's disk state into a blank broker and
/// compare against the frozen live broker.
void crash_and_recover(ChainWorld& world, const WorldUser& alice,
                       std::size_t d, std::size_t trial) {
  world.crash_broker(d);
  const double rate = 1e6 + 1e3 * static_cast<double>(trial);
  const TimeInterval iv{seconds(static_cast<std::int64_t>(9000 + trial)),
                        seconds(static_cast<std::int64_t>(9600 + trial))};
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, rate, iv), 0);
  ASSERT_TRUE(msg.ok());
  const auto in_flight = world.engine().reserve(*msg, iv.start);
  // The downed domain is on every path in this chain, so the in-flight
  // request cannot have been granted — and must not have leaked state.
  if (in_flight.ok()) {
    EXPECT_FALSE(in_flight->reply.granted);
  }

  auto blank = world.make_blank_broker(d);
  const auto report =
      bb::recover_broker(*blank, world.snapshot_path(d), world.wal_path(d));
  ASSERT_TRUE(report.ok()) << report.error().to_text();
  EXPECT_EQ(report->failed, 0u) << "replay diverged from the oracle";
  expect_matches_oracle(world.broker(d), *blank);
  world.restore_broker(d);
}

TEST(BbRecoverySoak, CrashedBrokersReplayToTheLiveOracle) {
  const std::uint64_t seed = soak_seed();
  std::printf("bb_recovery_soak: seed=%llu trials=%zu domains=%zu\n",
              static_cast<unsigned long long>(seed), kTrials, kDomains);

  ChainWorldConfig config;
  config.domains = kDomains;
  config.durability_dir = make_durability_dir(seed);
  config.seed = seed;
  config.fault_profile.drop = 0.05;
  config.fault_profile.jitter = 0.10;
  config.fault_profile.max_jitter = milliseconds(20);
  config.fault_seed = seed ^ 0xd15c0ull;
  config.retry_policy.max_attempts = 3;
  config.retry_policy.base_timeout = milliseconds(50);
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);

  Rng control(seed ^ 0x77a1ull);
  std::vector<sig::RarReply> held;
  std::size_t granted = 0, tunnels_made = 0, recoveries = 0;

  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    SCOPED_TRACE(::testing::Message()
                 << "trial=" << trial << " seed=" << seed
                 << " (rerun: E2E_SOAK_SEED=" << seed << ")");

    // Integer-valued rates keep pool sums exact, so recovery comparisons
    // are bit-exact regardless of replay order (docs/DURABILITY.md).
    const double rate = 1e6 + 1e5 * static_cast<double>(trial) +
                        1e4 * static_cast<double>(control.next_below(9));
    const TimeInterval iv{
        seconds(static_cast<std::int64_t>(trial)),
        seconds(static_cast<std::int64_t>(trial) + 600)};
    const auto msg = world.engine().build_user_request(
        alice.credentials(), world.spec(alice, rate, iv), 0);
    ASSERT_TRUE(msg.ok()) << msg.error().to_text();
    const auto outcome = world.engine().reserve(*msg, iv.start);
    ASSERT_TRUE(outcome.ok()) << outcome.error().to_text();
    if (outcome->reply.granted) {
      ++granted;
      held.push_back(outcome->reply);
    }

    // Random releases keep release records flowing through every WAL.
    if (!held.empty() && control.next_bool(0.35)) {
      const std::size_t pick = control.next_below(held.size());
      const Status released = world.engine().release_end_to_end(held[pick]);
      ASSERT_TRUE(released.ok()) << released.error().to_text();
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(pick));
    }

    // Occasional direct tunnel traffic on a random end domain.
    if (trial % 11 == 7) {
      const std::size_t d = control.next_below(kDomains);
      auto aggregate =
          world.spec(alice, 20e6, {iv.start, iv.start + seconds(3600)});
      aggregate.is_tunnel = true;
      const auto tid = world.broker(d).register_tunnel(aggregate);
      ASSERT_TRUE(tid.ok()) << tid.error().to_text();
      bb::Tunnel* tunnel = world.broker(d).find_tunnel(*tid);
      ASSERT_TRUE(tunnel->authorize(alice.dn.to_string()).ok());
      ASSERT_TRUE(tunnel
                      ->allocate("t" + std::to_string(trial) + "-a",
                                 alice.dn.to_string(),
                                 {iv.start, iv.start + seconds(1200)}, 2e6)
                      .ok());
      ++tunnels_made;
    }

    // Periodic checkpoints on a random domain (snapshot + WAL truncation).
    if (trial % 10 == 4) {
      const auto dropped = world.snapshot_domain(control.next_below(kDomains));
      ASSERT_TRUE(dropped.ok()) << dropped.error().to_text();
    }

    // Crash a random broker mid-traffic and differentially recover it.
    if (trial % 8 == 5) {
      crash_and_recover(world, alice, control.next_below(kDomains), trial);
      ++recoveries;
    }

    world.engine().forget_completed_requests();
  }

  // Final sweep: every domain must recover exactly, then a full release
  // leaves zero residual bandwidth anywhere.
  for (std::size_t d = 0; d < kDomains; ++d) {
    SCOPED_TRACE(::testing::Message() << "final recovery domain=" << d);
    crash_and_recover(world, alice, d, kTrials + d);
    ++recoveries;
  }
  for (const auto& reply : held) {
    const Status released = world.engine().release_end_to_end(reply);
    ASSERT_TRUE(released.ok()) << released.error().to_text();
  }
  EXPECT_EQ(world.total_reservations(), 0u);
  EXPECT_EQ(world.total_committed_at(seconds(kTrials + 100)), 0.0);

  std::printf(
      "bb_recovery_soak: granted=%zu/%zu tunnels=%zu recoveries=%zu\n",
      granted, kTrials, tunnels_made, recoveries);
  EXPECT_GT(granted, 0u);
  EXPECT_GT(recoveries, 0u);
}

}  // namespace
}  // namespace e2e::kit
