// Cache-correctness tests for the verification fast path: a cached "valid"
// must never survive a key, message or signature mutation; chain-cache hits
// must still honor time validity, revocation and anchor changes; and the
// hit/miss counters of every cache must move when the caches do.
#include <gtest/gtest.h>

#include "crypto/ca.hpp"
#include "crypto/certstore.hpp"
#include "crypto/rsa.hpp"
#include "crypto/verify_cache.hpp"
#include "obs/instruments.hpp"

namespace e2e::crypto {
namespace {

obs::Counter& counter(const char* name, const char* result) {
  return obs::MetricsRegistry::global().counter(name, {{"result", result}});
}

const KeyPair& cache_test_keys() {
  static const KeyPair kp = [] {
    Rng rng(24680);
    return generate_keypair(rng, 512);
  }();
  return kp;
}

class VerifyCacheTest : public ::testing::Test {
 protected:
  void SetUp() override { VerifyCache::global().clear(); }
  void TearDown() override {
    VerifyCache::global().set_capacity(VerifyCache::kDefaultCapacity);
  }
};

TEST_F(VerifyCacheTest, RepeatVerifyHitsCache) {
  obs::Counter& hits = counter(obs::kCryptoVerifyCacheLookupsTotal, "hit");
  obs::Counter& misses = counter(obs::kCryptoVerifyCacheLookupsTotal, "miss");
  const Bytes msg = to_bytes("same key, same message, same signature");
  const Bytes sig = sign(cache_test_keys().priv, msg);

  const std::uint64_t h0 = hits.value(), m0 = misses.value();
  EXPECT_TRUE(verify(cache_test_keys().pub, msg, sig));
  EXPECT_EQ(hits.value(), h0);
  EXPECT_EQ(misses.value(), m0 + 1);

  EXPECT_TRUE(verify(cache_test_keys().pub, msg, sig));
  EXPECT_EQ(hits.value(), h0 + 1);
  EXPECT_EQ(misses.value(), m0 + 1);
}

TEST_F(VerifyCacheTest, CachedValidDoesNotSurviveMessageMutation) {
  const Bytes msg = to_bytes("reserve 10 Mb/s from A to C");
  const Bytes sig = sign(cache_test_keys().priv, msg);
  ASSERT_TRUE(verify(cache_test_keys().pub, msg, sig));  // warm the cache
  Bytes mutated = msg;
  mutated[8] ^= 0x01;
  EXPECT_FALSE(verify(cache_test_keys().pub, mutated, sig));
}

TEST_F(VerifyCacheTest, CachedValidDoesNotSurviveKeyMutation) {
  const Bytes msg = to_bytes("reserve 10 Mb/s from A to C");
  const Bytes sig = sign(cache_test_keys().priv, msg);
  ASSERT_TRUE(verify(cache_test_keys().pub, msg, sig));  // warm the cache
  PublicKey other = cache_test_keys().pub;
  other.n = other.n + BigUInt(2);  // still odd, different key
  EXPECT_FALSE(verify(other, msg, sig));
}

TEST_F(VerifyCacheTest, CachedValidDoesNotSurviveSignatureMutation) {
  const Bytes msg = to_bytes("reserve 10 Mb/s from A to C");
  Bytes sig = sign(cache_test_keys().priv, msg);
  ASSERT_TRUE(verify(cache_test_keys().pub, msg, sig));  // warm the cache
  sig[1] ^= 0x80;
  EXPECT_FALSE(verify(cache_test_keys().pub, msg, sig));
}

TEST_F(VerifyCacheTest, NegativeVerdictsAreCachedToo) {
  obs::Counter& hits = counter(obs::kCryptoVerifyCacheLookupsTotal, "hit");
  const Bytes msg = to_bytes("m");
  Bytes sig = sign(cache_test_keys().priv, msg);
  sig[0] ^= 0x01;
  EXPECT_FALSE(verify(cache_test_keys().pub, msg, sig));
  const std::uint64_t h0 = hits.value();
  EXPECT_FALSE(verify(cache_test_keys().pub, msg, sig));
  EXPECT_EQ(hits.value(), h0 + 1);
}

TEST_F(VerifyCacheTest, CapacityBoundsEntriesAndEvictsLru) {
  VerifyCache cache(2);
  const Digest a{{1}}, b{{2}}, c{{3}};
  cache.insert(a, true);
  cache.insert(b, true);
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_TRUE(cache.lookup(a).has_value());  // a is now most recent
  cache.insert(c, true);                     // evicts b, not a
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup(a).has_value());
  EXPECT_FALSE(cache.lookup(b).has_value());
  EXPECT_TRUE(cache.lookup(c).has_value());
}

TEST_F(VerifyCacheTest, ZeroCapacityDisables) {
  VerifyCache::global().set_capacity(0);
  const Bytes msg = to_bytes("uncached");
  const Bytes sig = sign(cache_test_keys().priv, msg);
  EXPECT_TRUE(verify(cache_test_keys().pub, msg, sig));
  EXPECT_TRUE(verify(cache_test_keys().pub, msg, sig));
  EXPECT_EQ(VerifyCache::global().size(), 0u);
}

// --- TrustStore chain cache -------------------------------------------------

class CryptoCacheChainTest : public ::testing::Test {
 protected:
  CryptoCacheChainTest()
      : root_ca_(DistinguishedName::make("Root CA", "TrustCo"), rng_,
                 {0, hours(1000)}, 512),
        user_keys_(generate_keypair(rng_, 512)) {
    store_.add_anchor(root_ca_.root_certificate());
    leaf_ = root_ca_.issue(DistinguishedName::make("Alice", "A"),
                           user_keys_.pub, {0, hours(10)});
  }

  Rng rng_{13579};
  CertificateAuthority root_ca_;
  KeyPair user_keys_;
  TrustStore store_;
  Certificate leaf_;
};

TEST_F(CryptoCacheChainTest, RepeatChainVerifyHitsCache) {
  obs::Counter& hits = counter(obs::kCryptoChainCacheLookupsTotal, "hit");
  obs::Counter& misses = counter(obs::kCryptoChainCacheLookupsTotal, "miss");

  const std::uint64_t h0 = hits.value(), m0 = misses.value();
  ASSERT_TRUE(store_.verify_chain(leaf_, {}, minutes(30)).ok());
  EXPECT_EQ(misses.value(), m0 + 1);
  EXPECT_EQ(store_.chain_cache_size(), 1u);

  const auto cached = store_.verify_chain(leaf_, {}, minutes(30));
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(hits.value(), h0 + 1);
  // The cached path is identical to the first walk's.
  ASSERT_EQ(cached->size(), 2u);
  EXPECT_EQ((*cached)[0], leaf_);
}

TEST_F(CryptoCacheChainTest, CacheHitStillChecksTimeValidity) {
  ASSERT_TRUE(store_.verify_chain(leaf_, {}, minutes(30)).ok());
  // Same chain, but asked about a time past the leaf's validity: the
  // cached success must not shadow the expiry.
  const auto expired = store_.verify_chain(leaf_, {}, hours(20));
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.error().code, ErrorCode::kExpired);
}

TEST_F(CryptoCacheChainTest, RevocationOracleChangeInvalidates) {
  ASSERT_TRUE(store_.verify_chain(leaf_, {}, minutes(30)).ok());
  EXPECT_EQ(store_.chain_cache_size(), 1u);
  root_ca_.revoke(leaf_.serial());
  store_.set_revocation_check(
      [this](const DistinguishedName& issuer, std::uint64_t serial) {
        return issuer == root_ca_.name() && root_ca_.is_revoked(serial);
      });
  EXPECT_EQ(store_.chain_cache_size(), 0u);  // oracle change clears the memo
  const auto revoked = store_.verify_chain(leaf_, {}, minutes(30));
  ASSERT_FALSE(revoked.ok());
  EXPECT_EQ(revoked.error().code, ErrorCode::kUntrustedKey);
}

TEST_F(CryptoCacheChainTest, RevocationAfterCachingStillRejects) {
  // Oracle installed BEFORE the first verify, revocation flipped after the
  // success is cached: the per-hit re-check must catch it.
  store_.set_revocation_check(
      [this](const DistinguishedName& issuer, std::uint64_t serial) {
        return issuer == root_ca_.name() && root_ca_.is_revoked(serial);
      });
  ASSERT_TRUE(store_.verify_chain(leaf_, {}, minutes(30)).ok());
  EXPECT_EQ(store_.chain_cache_size(), 1u);
  root_ca_.revoke(leaf_.serial());
  const auto revoked = store_.verify_chain(leaf_, {}, minutes(30));
  ASSERT_FALSE(revoked.ok());
  EXPECT_EQ(revoked.error().code, ErrorCode::kUntrustedKey);
}

TEST_F(CryptoCacheChainTest, AddAnchorInvalidates) {
  ASSERT_TRUE(store_.verify_chain(leaf_, {}, minutes(30)).ok());
  EXPECT_EQ(store_.chain_cache_size(), 1u);
  Rng rng(97531);
  CertificateAuthority other(DistinguishedName::make("Other CA", "O"), rng,
                             {0, hours(100)}, 512);
  ASSERT_TRUE(store_.add_anchor(other.root_certificate()));
  EXPECT_EQ(store_.chain_cache_size(), 0u);
}

TEST_F(CryptoCacheChainTest, MutatedLeafMissesCache) {
  ASSERT_TRUE(store_.verify_chain(leaf_, {}, minutes(30)).ok());
  // A different leaf (fresh serial, same subject) keys differently; a
  // forged one still fails.
  Certificate::Builder b;
  b.serial = leaf_.serial() + 1;
  b.issuer = root_ca_.name();
  b.subject = leaf_.subject();
  b.validity = {0, hours(10)};
  b.subject_key = user_keys_.pub;
  const Certificate forged = b.sign_with(user_keys_.priv);  // wrong key
  const auto result = store_.verify_chain(forged, {}, minutes(30));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kBadSignature);
}

TEST_F(CryptoCacheChainTest, CopiedStoreVerifiesIndependently) {
  ASSERT_TRUE(store_.verify_chain(leaf_, {}, minutes(30)).ok());
  TrustStore copy = store_;  // brokers hold stores by value
  EXPECT_EQ(copy.anchor_count(), store_.anchor_count());
  EXPECT_TRUE(copy.verify_chain(leaf_, {}, minutes(30)).ok());
}

// --- Certificate TBS cache --------------------------------------------------

TEST(CryptoCacheTbs, DecodedCertificateReusesTbsBytes) {
  obs::Counter& hits = counter(obs::kCryptoTbsCacheLookupsTotal, "hit");
  Rng rng(1122);
  CertificateAuthority ca(DistinguishedName::make("CA", "T"), rng,
                          {0, hours(10)}, 512);
  const KeyPair kp = generate_keypair(rng, 512);
  const Certificate cert =
      ca.issue(DistinguishedName::make("Bob", "B"), kp.pub, {0, hours(1)});

  const std::uint64_t h0 = hits.value();
  const Bytes first = cert.tbs_encode();
  const Bytes second = cert.tbs_encode();
  EXPECT_EQ(first, second);
  EXPECT_GE(hits.value(), h0 + 2);  // sign_with pre-filled the cache

  // Round-trip through the wire keeps the cache and the bytes identical.
  const auto decoded = Certificate::decode(cert.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->tbs_encode(), first);
  EXPECT_EQ(decoded->encode(), cert.encode());
}

TEST(CryptoCacheTbs, DefaultConstructedCertificateStillEncodes) {
  obs::Counter& misses = counter(obs::kCryptoTbsCacheLookupsTotal, "miss");
  const std::uint64_t m0 = misses.value();
  const Certificate blank;
  const Bytes tbs = blank.tbs_encode();
  EXPECT_FALSE(tbs.empty());  // an empty TBS TLV still has framing bytes
  EXPECT_EQ(misses.value(), m0 + 1);
}

}  // namespace
}  // namespace e2e::crypto
