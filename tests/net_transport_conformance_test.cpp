// Transport conformance suite (ISSUE 7, satellite 1).
//
// One assertion set over the queue-delivery surface of sig::Transport,
// instantiated against BOTH implementations — the in-memory Fabric and the
// socket transport over a real hub — so their observable semantics can
// never drift: send/receive round trips, FIFO ordering, timeout behaviour
// on an empty inbox, the shared payload cap, message accounting, trace-
// context propagation, and a staged SecureChannel handshake run purely
// through transport messages.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>

#include "crypto/ca.hpp"
#include "net/socket_transport.hpp"
#include "sig/channel.hpp"
#include "sig/transport.hpp"

namespace e2e {
namespace {

/// Owns one transport instance plus whatever infrastructure it needs.
struct TransportHarness {
  virtual ~TransportHarness() = default;
  virtual sig::Transport& transport() = 0;
};

struct FabricHarness : TransportHarness {
  sig::Fabric fabric;
  sig::Transport& transport() override { return fabric; }
};

struct SocketHarness : TransportHarness {
  std::unique_ptr<net::SocketHub> hub;
  std::unique_ptr<net::SocketTransport> client;

  SocketHarness() {
    auto endpoint = net::Endpoint::parse("tcp:127.0.0.1:0");
    auto started = net::SocketHub::start(endpoint.value());
    if (!started.ok()) {
      throw std::runtime_error("hub start failed: " +
                               started.error().to_text());
    }
    hub = std::move(started.value());
    client = std::make_unique<net::SocketTransport>(hub->endpoint());
  }

  sig::Transport& transport() override { return *client; }
};

using HarnessFactory = std::function<std::unique_ptr<TransportHarness>()>;

std::unique_ptr<TransportHarness> make_harness(const std::string& name) {
  if (name == "fabric") return std::make_unique<FabricHarness>();
  return std::make_unique<SocketHarness>();
}

class TransportConformance : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override { harness_ = make_harness(GetParam()); }
  sig::Transport& transport() { return harness_->transport(); }

  /// Generous wall-clock patience for socket delivery; the fabric answers
  /// instantly either way.
  static constexpr std::chrono::milliseconds kWait{2000};
  static constexpr std::chrono::milliseconds kShortWait{50};

 private:
  std::unique_ptr<TransportHarness> harness_;
};

TEST_P(TransportConformance, SendThenReceiveRoundTrips) {
  auto& t = transport();
  const Bytes payload = {0xde, 0xad, 0xbe, 0xef};
  ASSERT_TRUE(t.send("alice", "bob", payload).ok());
  auto received = t.receive("bob", kWait);
  ASSERT_TRUE(received.ok()) << received.error().to_text();
  EXPECT_EQ(received.value().from, "alice");
  EXPECT_EQ(received.value().payload, payload);
  EXPECT_FALSE(received.value().trace_context.has_value());
}

TEST_P(TransportConformance, EmptyInboxTimesOut) {
  auto& t = transport();
  auto received = t.receive("nobody-wrote-to-me", kShortWait);
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.error().code, ErrorCode::kTimeout);
}

TEST_P(TransportConformance, FifoOrderingPerReceiver) {
  auto& t = transport();
  for (std::uint8_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.send("alice", "bob", Bytes{i}).ok());
  }
  for (std::uint8_t i = 0; i < 5; ++i) {
    auto received = t.receive("bob", kWait);
    ASSERT_TRUE(received.ok()) << received.error().to_text();
    EXPECT_EQ(received.value().payload, Bytes{i});
  }
}

TEST_P(TransportConformance, InterleavedSendersKeepPerSenderOrder) {
  auto& t = transport();
  ASSERT_TRUE(t.send("alice", "carol", Bytes{1}).ok());
  ASSERT_TRUE(t.send("bob", "carol", Bytes{2}).ok());
  ASSERT_TRUE(t.send("alice", "carol", Bytes{3}).ok());
  int alice_last = 0;
  int bob_seen = 0;
  for (int i = 0; i < 3; ++i) {
    auto received = t.receive("carol", kWait);
    ASSERT_TRUE(received.ok()) << received.error().to_text();
    if (received.value().from == "alice") {
      EXPECT_GT(received.value().payload[0], alice_last);
      alice_last = received.value().payload[0];
    } else {
      EXPECT_EQ(received.value().from, "bob");
      ++bob_seen;
    }
  }
  EXPECT_EQ(alice_last, 3);
  EXPECT_EQ(bob_seen, 1);
}

TEST_P(TransportConformance, PayloadCapIsEnforced) {
  auto& t = transport();
  const Bytes oversized(sig::kMaxTransportPayload + 1, 0x55);
  auto sent = t.send("alice", "bob", oversized);
  ASSERT_FALSE(sent.ok());
  EXPECT_EQ(sent.error().code, ErrorCode::kInvalidArgument);
  // The cap itself still fits.
  const Bytes max_sized(sig::kMaxTransportPayload, 0x55);
  ASSERT_TRUE(t.send("alice", "bob", max_sized).ok());
  auto received = t.receive("bob", kWait);
  ASSERT_TRUE(received.ok()) << received.error().to_text();
  EXPECT_EQ(received.value().payload.size(), sig::kMaxTransportPayload);
}

TEST_P(TransportConformance, TraceContextRidesTheEnvelope) {
  auto& t = transport();
  obs::TraceContext context;
  context.trace_id = "trace-42";
  context.origin = "alice";
  context.span_id = 7;
  ASSERT_TRUE(t.send("alice", "bob", Bytes{0x01}, &context).ok());
  auto received = t.receive("bob", kWait);
  ASSERT_TRUE(received.ok()) << received.error().to_text();
  ASSERT_TRUE(received.value().trace_context.has_value());
  EXPECT_EQ(received.value().trace_context->trace_id, "trace-42");
  EXPECT_EQ(received.value().trace_context->span_id, 7u);
}

TEST_P(TransportConformance, MessagesAreAccounted) {
  auto& t = transport();
  t.reset_counters();
  ASSERT_TRUE(t.send("alice", "bob", Bytes(10, 0x01)).ok());
  ASSERT_TRUE(t.send("bob", "alice", Bytes(20, 0x02)).ok());
  const auto stats = t.total();
  EXPECT_EQ(stats.messages, 2u);
  EXPECT_EQ(stats.bytes, 30u);
}

// The staged SecureChannel handshake driven purely through transport
// messages: the initiator and responder only ever exchange bytes via
// send()/receive(), exactly as two daemon-connected processes would.
TEST_P(TransportConformance, StagedHandshakeOverTransport) {
  auto& t = transport();
  const TimeInterval validity{0, hours(1000)};
  Rng rng(7777);
  crypto::CertificateAuthority ca(
      crypto::DistinguishedName::make("CA", "Conformance"), rng, validity,
      256);
  auto keys_i = crypto::generate_keypair(rng, 256);
  auto keys_r = crypto::generate_keypair(rng, 256);
  auto cert_i = ca.issue(crypto::DistinguishedName::make("init", "D"),
                         keys_i.pub, validity);
  auto cert_r = ca.issue(crypto::DistinguishedName::make("resp", "D"),
                         keys_r.pub, validity);
  sig::ChannelEndpoint endpoint_i{cert_i, keys_i.priv, nullptr, cert_r};
  sig::ChannelEndpoint endpoint_r{cert_r, keys_r.priv, nullptr, cert_i};

  sig::HandshakeInitiator initiator(endpoint_i, seconds(1), rng);
  sig::HandshakeResponder responder(endpoint_r, seconds(1), rng);

  ASSERT_TRUE(t.send("init", "resp", initiator.client_hello()).ok());
  auto hello = t.receive("resp", kWait);
  ASSERT_TRUE(hello.ok()) << hello.error().to_text();
  auto server_hello = responder.on_client_hello(hello.value().payload);
  ASSERT_TRUE(server_hello.ok()) << server_hello.error().to_text();

  ASSERT_TRUE(t.send("resp", "init", server_hello.value()).ok());
  auto hello_back = t.receive("init", kWait);
  ASSERT_TRUE(hello_back.ok()) << hello_back.error().to_text();
  auto finished = initiator.on_server_hello(hello_back.value().payload);
  ASSERT_TRUE(finished.ok()) << finished.error().to_text();

  ASSERT_TRUE(t.send("init", "resp", finished.value()).ok());
  auto finished_at_resp = t.receive("resp", kWait);
  ASSERT_TRUE(finished_at_resp.ok()) << finished_at_resp.error().to_text();
  ASSERT_TRUE(
      responder.on_finished(finished_at_resp.value().payload).ok());

  ASSERT_TRUE(initiator.done());
  ASSERT_TRUE(responder.done());

  // Sealed records survive the transport in both directions.
  const Bytes secret = {0x73, 0x65, 0x63};
  sig::Record record = initiator.session().seal(secret);
  ASSERT_TRUE(t.send("init", "resp", sig::encode_record(record)).ok());
  auto sealed = t.receive("resp", kWait);
  ASSERT_TRUE(sealed.ok()) << sealed.error().to_text();
  auto decoded = sig::decode_record(sealed.value().payload);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_text();
  auto opened = responder.session().open(decoded.value());
  ASSERT_TRUE(opened.ok()) << opened.error().to_text();
  EXPECT_EQ(opened.value(), secret);
}

INSTANTIATE_TEST_SUITE_P(Transports, TransportConformance,
                         ::testing::Values("fabric", "socket"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace e2e
