// Stream-framing robustness suite (ISSUE 7, satellite 2).
//
// Length-framed byte streams must survive everything a real socket does to
// them: reads torn at arbitrary byte boundaries, multiple messages
// coalesced into one read, hostile length headers, peers that vanish
// mid-message, and handshakes cut off half way. The seeded fuzzer drives
// random frame sequences through random chunkings; tier1 runs this binary
// under the ASan/UBSan preset, so any buffer-edge mistake in the decoder
// is an immediate failure.
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.hpp"
#include "crypto/ca.hpp"
#include "net/stream_framing.hpp"
#include "net/stream_socket.hpp"
#include "sig/channel.hpp"

namespace e2e::net {
namespace {

Bytes pattern_payload(std::size_t n, std::uint8_t seed = 0x42) {
  Bytes payload(n);
  for (std::size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<std::uint8_t>(seed + i);
  }
  return payload;
}

TEST(Framing, EncodeDecodeRoundTrip) {
  const Bytes payload = pattern_payload(100);
  const Bytes wire = encode_frame(payload);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + payload.size());
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.feed(wire).ok());
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, payload);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(Framing, EmptyPayloadIsAValidFrame) {
  const Bytes wire = encode_frame(Bytes{});
  ASSERT_EQ(wire.size(), kFrameHeaderBytes);
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.feed(wire).ok());
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->empty());
}

TEST(Framing, TornOneByteDripReassembles) {
  const Bytes payload = pattern_payload(257);
  const Bytes wire = encode_frame(payload);
  FrameDecoder decoder;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    // No frame may surface before the last byte lands.
    EXPECT_FALSE(decoder.next().has_value());
    const Bytes drip{wire[i]};
    ASSERT_TRUE(decoder.feed(drip).ok());
    if (i + 1 < wire.size()) {
      // A partially-buffered header or payload counts as mid-frame — a
      // peer disconnecting here tore the message in half.
      EXPECT_TRUE(decoder.mid_frame());
    }
  }
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, payload);
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(Framing, CoalescedMessagesAllSurface) {
  Bytes wire;
  std::vector<Bytes> payloads;
  for (std::size_t n : {0u, 1u, 3u, 200u, 1000u}) {
    payloads.push_back(pattern_payload(n, static_cast<std::uint8_t>(n)));
    const Bytes one = encode_frame(payloads.back());
    wire.insert(wire.end(), one.begin(), one.end());
  }
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.feed(wire).ok());
  for (const Bytes& expected : payloads) {
    auto frame = decoder.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(*frame, expected);
  }
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.frames_decoded(), payloads.size());
}

TEST(Framing, OversizedLengthHeaderPoisonsTheStream) {
  Bytes wire;
  const std::uint32_t huge =
      static_cast<std::uint32_t>(kMaxFramePayload) + 1;
  wire.push_back(static_cast<std::uint8_t>(huge >> 24));
  wire.push_back(static_cast<std::uint8_t>(huge >> 16));
  wire.push_back(static_cast<std::uint8_t>(huge >> 8));
  wire.push_back(static_cast<std::uint8_t>(huge));
  FrameDecoder decoder;
  auto fed = decoder.feed(wire);
  ASSERT_FALSE(fed.ok());
  EXPECT_EQ(fed.error().code, ErrorCode::kBadMessage);
  EXPECT_TRUE(decoder.poisoned());
  // A poisoned stream cannot resync: further feeds keep failing.
  ASSERT_FALSE(decoder.feed(encode_frame(Bytes{0x01})).ok());
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(Framing, MaxSizedFrameIsAccepted) {
  const Bytes payload(kMaxFramePayload, 0x7f);
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.feed(encode_frame(payload)).ok());
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->size(), kMaxFramePayload);
}

// Seeded fuzzer over frame boundaries: random payload sequences pushed
// through random chunk sizes (1 byte up to several frames at once) must
// come out byte-identical, in order, with the decoder never poisoned.
TEST(Framing, SeededBoundaryFuzzer) {
  Rng rng(0xf8a31);
  for (int round = 0; round < 20; ++round) {
    std::vector<Bytes> payloads;
    Bytes wire;
    const std::size_t count = 1 + rng.next_u64() % 40;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t size = rng.next_u64() % 2000;
      Bytes payload(size);
      for (auto& b : payload) {
        b = static_cast<std::uint8_t>(rng.next_u64());
      }
      const Bytes one = encode_frame(payload);
      wire.insert(wire.end(), one.begin(), one.end());
      payloads.push_back(std::move(payload));
    }
    FrameDecoder decoder;
    std::vector<Bytes> decoded;
    std::size_t pos = 0;
    while (pos < wire.size()) {
      const std::size_t chunk = 1 + rng.next_u64() % 700;
      const std::size_t end = std::min(pos + chunk, wire.size());
      ASSERT_TRUE(
          decoder
              .feed(BytesView(wire.data() + pos, end - pos))
              .ok());
      pos = end;
      while (auto frame = decoder.next()) {
        decoded.push_back(std::move(*frame));
      }
    }
    ASSERT_EQ(decoded.size(), payloads.size()) << "round " << round;
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      ASSERT_EQ(decoded[i], payloads[i]) << "round " << round;
    }
    EXPECT_FALSE(decoder.poisoned());
    EXPECT_FALSE(decoder.mid_frame());
  }
}

// --- Real-socket edge cases ------------------------------------------------

struct SocketPair {
  Listener listener;
  StreamSocket client;
  StreamSocket server;

  SocketPair() {
    auto endpoint = Endpoint::parse("tcp:127.0.0.1:0");
    auto listening = Listener::listen(endpoint.value());
    EXPECT_TRUE(listening.ok());
    listener = std::move(listening.value());
    auto connected = StreamSocket::connect(listener.local_endpoint());
    EXPECT_TRUE(connected.ok());
    client = std::move(connected.value());
    auto accepted = listener.accept();
    EXPECT_TRUE(accepted.ok());
    server = std::move(accepted.value());
  }
};

TEST(StreamSocket, FrameRoundTripOverTcp) {
  SocketPair pair;
  const Bytes payload = pattern_payload(5000);
  ASSERT_TRUE(pair.client.send_frame(payload).ok());
  auto received = pair.server.recv_frame(std::chrono::milliseconds(2000));
  ASSERT_TRUE(received.ok()) << received.error().to_text();
  EXPECT_EQ(received.value(), payload);
}

TEST(StreamSocket, MidMessageDisconnectIsAnError) {
  SocketPair pair;
  // Half a frame: a correct header promising 100 bytes, but only 10 sent
  // before the peer vanishes.
  const Bytes full = encode_frame(pattern_payload(100));
  const Bytes torn(full.begin(), full.begin() + kFrameHeaderBytes + 10);
  ASSERT_TRUE(pair.client.send_raw(torn).ok());
  pair.client.close();
  auto received = pair.server.recv_frame(std::chrono::milliseconds(2000));
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.error().code, ErrorCode::kUnavailable);
  EXPECT_NE(received.error().message.find("mid-message"), std::string::npos);
}

TEST(StreamSocket, CleanEofIsUnavailableWithoutMidMessageDetail) {
  SocketPair pair;
  pair.client.close();
  auto received = pair.server.recv_frame(std::chrono::milliseconds(2000));
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.error().code, ErrorCode::kUnavailable);
  EXPECT_EQ(received.error().message.find("mid-message"), std::string::npos);
}

TEST(StreamSocket, SilentPeerTimesOut) {
  SocketPair pair;
  auto received = pair.server.recv_frame(std::chrono::milliseconds(100));
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.error().code, ErrorCode::kTimeout);
}

TEST(StreamSocket, OversizedHeaderOverTcpIsBadMessage) {
  SocketPair pair;
  const Bytes hostile = {0xff, 0xff, 0xff, 0xff};
  ASSERT_TRUE(pair.client.send_raw(hostile).ok());
  auto received = pair.server.recv_frame(std::chrono::milliseconds(2000));
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.error().code, ErrorCode::kBadMessage);
}

// A handshake message truncated by a disconnect surfaces as a Status from
// the channel layer — never an assert (ISSUE 7, satellite 4).
TEST(StreamSocket, TruncatedHandshakeMessageIsAStatus) {
  const TimeInterval validity{0, hours(1000)};
  Rng rng(31337);
  crypto::CertificateAuthority ca(
      crypto::DistinguishedName::make("CA", "D"), rng, validity, 256);
  auto keys = crypto::generate_keypair(rng, 256);
  auto cert = ca.issue(crypto::DistinguishedName::make("peer", "D"),
                       keys.pub, validity);
  sig::ChannelEndpoint endpoint{cert, keys.priv, nullptr, cert};
  sig::HandshakeInitiator initiator(endpoint, seconds(1), rng);
  const Bytes hello = initiator.client_hello();

  sig::HandshakeResponder responder(endpoint, seconds(1), rng);
  for (std::size_t cut = 0; cut < hello.size(); cut += 7) {
    sig::HandshakeResponder fresh(endpoint, seconds(1), rng);
    const Bytes truncated(hello.begin(), hello.begin() + cut);
    auto result = fresh.on_client_hello(truncated);
    EXPECT_FALSE(result.ok()) << "cut=" << cut;
  }
  // The untruncated message still works after all those failures.
  EXPECT_TRUE(responder.on_client_hello(hello).ok());
}

}  // namespace
}  // namespace e2e::net
