#include "sig/channel.hpp"

#include <gtest/gtest.h>

#include "crypto/ca.hpp"

namespace e2e::sig {
namespace {

const TimeInterval kValidity{0, hours(1000)};

struct ChannelFixture {
  Rng rng{4321};
  crypto::CertificateAuthority ca_a{
      crypto::DistinguishedName::make("CA-A", "DomainA"), rng, kValidity, 256};
  crypto::CertificateAuthority ca_b{
      crypto::DistinguishedName::make("CA-B", "DomainB"), rng, kValidity, 256};
  crypto::KeyPair keys_a = crypto::generate_keypair(rng, 256);
  crypto::KeyPair keys_b = crypto::generate_keypair(rng, 256);
  crypto::Certificate cert_a =
      ca_a.issue(crypto::DistinguishedName::make("BB-A", "DomainA"),
                 keys_a.pub, kValidity);
  crypto::Certificate cert_b =
      ca_b.issue(crypto::DistinguishedName::make("BB-B", "DomainB"),
                 keys_b.pub, kValidity);
  crypto::TrustStore store_a;  // trusts CA-B (from the SLA)
  crypto::TrustStore store_b;  // trusts CA-A

  ChannelFixture() {
    store_a.add_anchor(ca_b.root_certificate());
    store_b.add_anchor(ca_a.root_certificate());
  }

  ChannelEndpoint endpoint_a() { return {cert_a, keys_a.priv, &store_a, {}}; }
  ChannelEndpoint endpoint_b() { return {cert_b, keys_b.priv, &store_b, {}}; }
};

TEST(Channel, HandshakeSucceedsWithMutualTrust) {
  ChannelFixture f;
  auto pair = handshake(f.endpoint_a(), f.endpoint_b(), seconds(1), f.rng);
  ASSERT_TRUE(pair.ok()) << pair.error().to_text();
  // Each side learned the peer's certificate — the property the signalling
  // protocol relies on.
  EXPECT_EQ(pair->initiator.peer_certificate(), f.cert_b);
  EXPECT_EQ(pair->responder.peer_certificate(), f.cert_a);
}

TEST(Channel, SealOpenRoundTrip) {
  ChannelFixture f;
  auto pair = handshake(f.endpoint_a(), f.endpoint_b(), 0, f.rng).value();
  const Bytes payload = to_bytes("RAR forwarding");
  const Record rec = pair.initiator.seal(payload);
  const auto opened = pair.responder.open(rec);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, payload);
  // And the reverse direction.
  const Record back = pair.responder.seal(to_bytes("approved"));
  EXPECT_TRUE(pair.initiator.open(back).ok());
}

TEST(Channel, TamperedRecordRejected) {
  ChannelFixture f;
  auto pair = handshake(f.endpoint_a(), f.endpoint_b(), 0, f.rng).value();
  Record rec = pair.initiator.seal(to_bytes("10 Mb/s"));
  rec.payload[0] ^= 0xff;
  const auto opened = pair.responder.open(rec);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.error().code, ErrorCode::kAuthenticationFailed);
}

TEST(Channel, ReplayRejected) {
  ChannelFixture f;
  auto pair = handshake(f.endpoint_a(), f.endpoint_b(), 0, f.rng).value();
  const Record rec = pair.initiator.seal(to_bytes("once"));
  ASSERT_TRUE(pair.responder.open(rec).ok());
  const auto replay = pair.responder.open(rec);
  ASSERT_FALSE(replay.ok());
  EXPECT_NE(replay.error().message.find("replay"), std::string::npos);
}

TEST(Channel, SequenceSkewAcrossDirectionsIsFine) {
  ChannelFixture f;
  auto pair = handshake(f.endpoint_a(), f.endpoint_b(), 0, f.rng).value();
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(pair.responder.open(pair.initiator.seal(to_bytes("req"))).ok());
  }
  EXPECT_TRUE(pair.initiator.open(pair.responder.seal(to_bytes("rep"))).ok());
}

TEST(Channel, UntrustedPeerRejected) {
  ChannelFixture f;
  // A's store no longer trusts CA-B.
  crypto::TrustStore empty;
  ChannelEndpoint a{f.cert_a, f.keys_a.priv, &empty, {}};
  const auto pair = handshake(a, f.endpoint_b(), 0, f.rng);
  ASSERT_FALSE(pair.ok());
  EXPECT_EQ(pair.error().code, ErrorCode::kAuthenticationFailed);
}

TEST(Channel, ExpiredCertificateRejected) {
  ChannelFixture f;
  const crypto::Certificate short_cert =
      f.ca_b.issue(crypto::DistinguishedName::make("BB-B", "DomainB"),
                   f.keys_b.pub, {0, seconds(10)});
  ChannelEndpoint b{short_cert, f.keys_b.priv, &f.store_b, {}};
  const auto pair = handshake(f.endpoint_a(), b, seconds(60), f.rng);
  EXPECT_FALSE(pair.ok());
}

TEST(Channel, StolenCertificateFailsProofOfPossession) {
  ChannelFixture f;
  // Mallory presents BB-B's certificate but holds a different key.
  const crypto::KeyPair mallory = crypto::generate_keypair(f.rng, 256);
  ChannelEndpoint fake_b{f.cert_b, mallory.priv, &f.store_b, {}};
  const auto pair = handshake(f.endpoint_a(), fake_b, 0, f.rng);
  ASSERT_FALSE(pair.ok());
  EXPECT_NE(pair.error().message.find("proof of key possession"),
            std::string::npos);
}

TEST(Channel, PinnedPeerAcceptedWithoutAnchor) {
  ChannelFixture f;
  // A has no anchors at all but pins B's exact certificate (the tunnel
  // direct-channel case: the certificate was introduced via signalling).
  crypto::TrustStore empty;
  ChannelEndpoint a{f.cert_a, f.keys_a.priv, &empty, f.cert_b};
  ChannelEndpoint b{f.cert_b, f.keys_b.priv, &empty, f.cert_a};
  const auto pair = handshake(a, b, 0, f.rng);
  ASSERT_TRUE(pair.ok()) << pair.error().to_text();
}

TEST(Channel, PinnedPeerStillRequiresKeyPossession) {
  ChannelFixture f;
  crypto::TrustStore empty;
  const crypto::KeyPair mallory = crypto::generate_keypair(f.rng, 256);
  ChannelEndpoint a{f.cert_a, f.keys_a.priv, &empty, f.cert_b};
  ChannelEndpoint fake_b{f.cert_b, mallory.priv, &empty, f.cert_a};
  EXPECT_FALSE(handshake(a, fake_b, 0, f.rng).ok());
}

TEST(Channel, WrongPinRejected) {
  ChannelFixture f;
  crypto::TrustStore empty;
  ChannelEndpoint a{f.cert_a, f.keys_a.priv, &empty, f.cert_a};  // pins itself
  ChannelEndpoint b{f.cert_b, f.keys_b.priv, &f.store_b, {}};
  EXPECT_FALSE(handshake(a, b, 0, f.rng).ok());
}

}  // namespace
}  // namespace e2e::sig
