#include "repo/cert_repository.hpp"

#include <gtest/gtest.h>

#include "crypto/ca.hpp"

namespace e2e::repo {
namespace {

const TimeInterval kValidity{0, hours(1000)};

struct RepoFixture {
  Rng rng{606};
  crypto::CertificateAuthority ca{
      crypto::DistinguishedName::make("CA", "TrustCo"), rng, kValidity, 256};
  crypto::KeyPair keys = crypto::generate_keypair(rng, 256);
  crypto::DistinguishedName bb_a =
      crypto::DistinguishedName::make("BB-A", "DomainA");
  crypto::DistinguishedName client =
      crypto::DistinguishedName::make("BB-C", "DomainC");
  CertificateRepository repo{"grid-directory", milliseconds(15)};

  RepoFixture() {
    repo.authorize_client(client);
  }
};

TEST(CertRepository, PublishAndLookup) {
  RepoFixture f;
  const crypto::Certificate cert = f.ca.issue(f.bb_a, f.keys.pub, kValidity);
  ASSERT_TRUE(f.repo.publish(cert).ok());
  EXPECT_EQ(f.repo.size(), 1u);
  const auto found = f.repo.lookup(f.bb_a, f.client, seconds(1));
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, cert);
  EXPECT_EQ(f.repo.lookups(), 1u);
}

TEST(CertRepository, RefreshReplacesEntry) {
  RepoFixture f;
  const crypto::Certificate old_cert =
      f.ca.issue(f.bb_a, f.keys.pub, {0, seconds(10)});
  const crypto::Certificate new_cert =
      f.ca.issue(f.bb_a, f.keys.pub, kValidity);
  ASSERT_TRUE(f.repo.publish(old_cert).ok());
  ASSERT_TRUE(f.repo.publish(new_cert).ok());
  EXPECT_EQ(f.repo.size(), 1u);
  EXPECT_EQ(f.repo.lookup(f.bb_a, f.client, seconds(60)).value(), new_cert);
}

TEST(CertRepository, UnknownSubjectFails) {
  RepoFixture f;
  const auto missing = f.repo.lookup(
      crypto::DistinguishedName::make("Ghost", "X"), f.client, 0);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::kNotFound);
}

TEST(CertRepository, ExpiredEntryRejected) {
  RepoFixture f;
  const crypto::Certificate cert =
      f.ca.issue(f.bb_a, f.keys.pub, {0, seconds(10)});
  ASSERT_TRUE(f.repo.publish(cert).ok());
  const auto expired = f.repo.lookup(f.bb_a, f.client, seconds(60));
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.error().code, ErrorCode::kExpired);
}

TEST(CertRepository, AccessControlEnforced) {
  RepoFixture f;
  const crypto::Certificate cert = f.ca.issue(f.bb_a, f.keys.pub, kValidity);
  ASSERT_TRUE(f.repo.publish(cert).ok());
  const auto stranger = f.repo.lookup(
      f.bb_a, crypto::DistinguishedName::make("Eve", "Evil"), 0);
  ASSERT_FALSE(stranger.ok());
  EXPECT_EQ(stranger.error().code, ErrorCode::kAuthenticationFailed);
  EXPECT_EQ(f.repo.denied_lookups(), 1u);
}

TEST(CertRepository, AuditTrailRecordsAllAccess) {
  RepoFixture f;
  const crypto::Certificate cert = f.ca.issue(f.bb_a, f.keys.pub, kValidity);
  ASSERT_TRUE(f.repo.publish(cert).ok());
  (void)f.repo.lookup(f.bb_a, f.client, 0);
  (void)f.repo.lookup(f.bb_a, crypto::DistinguishedName::make("Eve", "E"), 0);
  ASSERT_EQ(f.repo.audit_log().size(), 2u);
  EXPECT_EQ(f.repo.audit_log()[0].first, f.client.to_string());
  EXPECT_EQ(f.repo.audit_log()[1].first, "CN=Eve,O=E,C=US");
}

TEST(CertRepository, LatencyModelExposed) {
  RepoFixture f;
  EXPECT_EQ(f.repo.lookup_latency(), milliseconds(15));
}

TEST(CertRepository, RejectsSubjectlessCertificate) {
  RepoFixture f;
  crypto::Certificate empty;
  EXPECT_FALSE(f.repo.publish(empty).ok());
}

}  // namespace
}  // namespace e2e::repo
