#include "crypto/x509.hpp"

#include <gtest/gtest.h>

#include "crypto/ca.hpp"

namespace e2e::crypto {
namespace {

struct Fixture {
  Rng rng{1234};
  TimeInterval long_validity{0, hours(24 * 365)};
  CertificateAuthority ca{DistinguishedName::make("ESnet CA", "ESnet"), rng,
                          long_validity, 512};
  KeyPair user_keys = generate_keypair(rng, 512);
  DistinguishedName user_dn = DistinguishedName::make("Alice", "DomainA");
};

Fixture& fx() {
  static Fixture f;
  return f;
}

TEST(X509, IssueAndVerify) {
  const Certificate cert = fx().ca.issue(fx().user_dn, fx().user_keys.pub,
                                         {0, hours(24)});
  EXPECT_TRUE(cert.verify_signature(fx().ca.public_key()));
  EXPECT_EQ(cert.subject(), fx().user_dn);
  EXPECT_EQ(cert.issuer(), fx().ca.name());
  EXPECT_EQ(cert.subject_public_key(), fx().user_keys.pub);
}

TEST(X509, RootIsSelfSigned) {
  const Certificate& root = fx().ca.root_certificate();
  EXPECT_TRUE(root.is_self_signed());
  EXPECT_TRUE(root.verify_signature(root.subject_public_key()));
  EXPECT_EQ(root.extension_value(kExtCa).value_or(""), "true");
}

TEST(X509, SerialNumbersIncrease) {
  const Certificate c1 = fx().ca.issue(fx().user_dn, fx().user_keys.pub,
                                       {0, hours(1)});
  const Certificate c2 = fx().ca.issue(fx().user_dn, fx().user_keys.pub,
                                       {0, hours(1)});
  EXPECT_LT(c1.serial(), c2.serial());
}

TEST(X509, ValidityWindow) {
  const Certificate cert = fx().ca.issue(fx().user_dn, fx().user_keys.pub,
                                         {hours(1), hours(2)});
  EXPECT_FALSE(cert.valid_at(0));
  EXPECT_TRUE(cert.valid_at(hours(1)));
  EXPECT_TRUE(cert.valid_at(hours(2) - 1));
  EXPECT_FALSE(cert.valid_at(hours(2)));
}

TEST(X509, EncodeDecodeRoundTrip) {
  const Certificate cert = fx().ca.issue(
      fx().user_dn, fx().user_keys.pub, {0, hours(24)},
      {Extension{kExtCapabilityFlag, false, ""},
       Extension{kExtCapabilities, false, "Capabilities of ESnet"},
       Extension{kExtValidForRar, true, "rar-42"}});
  const Bytes enc = cert.encode();
  const auto dec = Certificate::decode(enc);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(*dec, cert);
  EXPECT_TRUE(dec->verify_signature(fx().ca.public_key()));
  EXPECT_TRUE(dec->is_capability_certificate());
  EXPECT_EQ(dec->extension_value(kExtValidForRar).value_or(""), "rar-42");
}

TEST(X509, DecodeRejectsTamperedTbs) {
  const Certificate cert = fx().ca.issue(fx().user_dn, fx().user_keys.pub,
                                         {0, hours(24)});
  Bytes enc = cert.encode();
  // Flip a byte inside the TBS (after the outer header).
  enc[20] ^= 0xff;
  const auto dec = Certificate::decode(enc);
  if (dec.ok()) {
    EXPECT_FALSE(dec->verify_signature(fx().ca.public_key()));
  }
}

TEST(X509, CapabilitiesParsing) {
  const Certificate cert = fx().ca.issue(
      fx().user_dn, fx().user_keys.pub, {0, hours(1)},
      {Extension{kExtCapabilities, false,
                 "Capabilities of ESnet, Member of ATLAS,  reserve-bw "}});
  const auto caps = cert.capabilities();
  ASSERT_EQ(caps.size(), 3u);
  EXPECT_EQ(caps[0], "Capabilities of ESnet");
  EXPECT_EQ(caps[1], "Member of ATLAS");
  EXPECT_EQ(caps[2], "reserve-bw");
}

TEST(X509, NoCapabilitiesExtensionMeansEmpty) {
  const Certificate cert = fx().ca.issue(fx().user_dn, fx().user_keys.pub,
                                         {0, hours(1)});
  EXPECT_TRUE(cert.capabilities().empty());
  EXPECT_FALSE(cert.is_capability_certificate());
}

TEST(X509, WrongIssuerKeyFailsVerification) {
  const Certificate cert = fx().ca.issue(fx().user_dn, fx().user_keys.pub,
                                         {0, hours(1)});
  EXPECT_FALSE(cert.verify_signature(fx().user_keys.pub));
}

TEST(X509, FingerprintDiffersPerCert) {
  const Certificate c1 = fx().ca.issue(fx().user_dn, fx().user_keys.pub,
                                       {0, hours(1)});
  const Certificate c2 = fx().ca.issue(fx().user_dn, fx().user_keys.pub,
                                       {0, hours(2)});
  EXPECT_NE(hex_encode(digest_bytes(c1.fingerprint())),
            hex_encode(digest_bytes(c2.fingerprint())));
}

TEST(X509, RevocationTracking) {
  const Certificate cert = fx().ca.issue(fx().user_dn, fx().user_keys.pub,
                                         {0, hours(1)});
  EXPECT_FALSE(fx().ca.is_revoked(cert.serial()));
  fx().ca.revoke(cert.serial());
  EXPECT_TRUE(fx().ca.is_revoked(cert.serial()));
}

}  // namespace
}  // namespace e2e::crypto
