// Unit tests for the wall-clock sliding-window instruments
// (obs/window.hpp) and the histogram quantile estimator's edge cases
// (obs/slo.hpp). Time is injected everywhere, so window rollover and
// decay are fully deterministic.
#include "obs/window.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"

namespace e2e::obs {
namespace {

using std::chrono::milliseconds;

// ---------------------------------------------------------------------
// WindowRate: rollover determinism under an injected clock.

TEST(WindowRate, SumsWithinTheWindow) {
  WindowRate rate(milliseconds(1000), /*slots=*/10);  // 100ms slots
  rate.record(0, 1);
  rate.record(250, 2);
  rate.record(900, 4);
  EXPECT_DOUBLE_EQ(rate.total(900), 7.0);
  EXPECT_DOUBLE_EQ(rate.per_second(900), 7.0);
}

TEST(WindowRate, OldSlotsExpireAsTheWindowSlides) {
  WindowRate rate(milliseconds(1000), /*slots=*/10);
  rate.record(0, 5);
  rate.record(500, 3);
  // At t=999 everything is inside the window.
  EXPECT_DOUBLE_EQ(rate.total(999), 8.0);
  // At t=1100 the t=0 slot (absolute index 0) has slid out.
  EXPECT_DOUBLE_EQ(rate.total(1100), 3.0);
  // At t=1600 the t=500 slot is gone too.
  EXPECT_DOUBLE_EQ(rate.total(1600), 0.0);
}

TEST(WindowRate, RolloverIsDeterministicSlotGranular) {
  WindowRate rate(milliseconds(600), /*slots=*/6);  // 100ms slots
  rate.record(50, 1);  // slot index 0
  // Live indices are (current - slots, current]: the slot drops out
  // exactly when the window's trailing edge passes the whole slot,
  // never mid-slot.
  EXPECT_DOUBLE_EQ(rate.total(550), 1.0);
  EXPECT_DOUBLE_EQ(rate.total(599), 1.0);
  EXPECT_DOUBLE_EQ(rate.total(600), 0.0);
}

TEST(WindowRate, RingReuseAfterLongGap) {
  WindowRate rate(milliseconds(1000), /*slots=*/10);
  rate.record(0, 9);
  // A gap much longer than the window must not resurrect stale slots.
  rate.record(100000, 1);
  EXPECT_DOUBLE_EQ(rate.total(100000), 1.0);
}

// ---------------------------------------------------------------------
// WindowedHistogram: slot-granular decay, merged snapshots.

TEST(WindowedHistogram, SnapshotMergesLiveSlots) {
  WindowedHistogram hist(milliseconds(1200), /*slots=*/12, {10, 100});
  hist.observe(0, 5);
  hist.observe(400, 50);
  hist.observe(800, 500);  // overflow
  const Histogram::Snapshot snap = hist.snapshot(1000);
  ASSERT_EQ(snap.bounds.size(), 2u);
  ASSERT_EQ(snap.counts.size(), 3u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 555.0);
}

TEST(WindowedHistogram, ObservationsDecayBySlot) {
  WindowedHistogram hist(milliseconds(1000), /*slots=*/10, {10, 100});
  hist.observe(0, 5);
  hist.observe(0, 7);
  hist.observe(500, 50);
  EXPECT_EQ(hist.snapshot(900).count, 3u);
  // The whole t=0 sub-window leaves together once it slides out.
  const Histogram::Snapshot later = hist.snapshot(1150);
  EXPECT_EQ(later.count, 1u);
  EXPECT_DOUBLE_EQ(later.sum, 50.0);
  // And eventually the window is empty again.
  EXPECT_EQ(hist.snapshot(5000).count, 0u);
}

// ---------------------------------------------------------------------
// estimate_quantile edge cases (the /metrics gauges and bbstat render
// these live; they must be finite and sane for degenerate snapshots).

TEST(EstimateQuantile, EmptyHistogramIsZero) {
  Histogram h({10, 100});
  EXPECT_DOUBLE_EQ(estimate_quantile(h.snapshot(), 0.5), 0.0);
  EXPECT_DOUBLE_EQ(estimate_quantile(h.snapshot(), 0.99), 0.0);
}

TEST(EstimateQuantile, SingleSampleInterpolatesWithinItsBucket) {
  Histogram h({10, 100});
  h.observe(42);  // lands in the (10, 100] bucket
  const Histogram::Snapshot snap = h.snapshot();
  // Every quantile must land inside the containing bucket, not outside
  // the distribution's support.
  for (const double q : {0.01, 0.5, 0.99}) {
    const double estimate = estimate_quantile(snap, q);
    EXPECT_GT(estimate, 10.0) << "q=" << q;
    EXPECT_LE(estimate, 100.0) << "q=" << q;
  }
  // p100 is the bucket's upper bound exactly.
  EXPECT_DOUBLE_EQ(estimate_quantile(snap, 1.0), 100.0);
}

TEST(EstimateQuantile, AllOverflowUsesMeanNotInfinity) {
  Histogram h({10, 100});
  h.observe(5000);
  h.observe(7000);
  // Every observation overflowed: the last finite bound (100) would be a
  // wild underestimate, so the estimator falls back to the mean.
  EXPECT_DOUBLE_EQ(estimate_quantile(h.snapshot(), 0.99), 6000.0);
}

TEST(EstimateQuantile, MixedOverflowClampsToLastBound) {
  Histogram h({10, 100});
  h.observe(5);
  h.observe(5000);
  // p99 falls in the overflow bucket but finite buckets have data: all
  // we know is "above the last bound", so clamp to it.
  EXPECT_DOUBLE_EQ(estimate_quantile(h.snapshot(), 0.99), 100.0);
}

TEST(EstimateQuantile, NoFiniteBucketsFallsBackToMean) {
  Histogram h(std::vector<double>{});
  h.observe(30);
  h.observe(50);
  EXPECT_DOUBLE_EQ(estimate_quantile(h.snapshot(), 0.5), 40.0);
}

TEST(EstimateQuantile, OutOfRangeQuantileIsClamped) {
  Histogram h({10, 100});
  h.observe(42);
  EXPECT_DOUBLE_EQ(estimate_quantile(h.snapshot(), 1.5),
                   estimate_quantile(h.snapshot(), 1.0));
  EXPECT_DOUBLE_EQ(estimate_quantile(h.snapshot(), -0.5),
                   estimate_quantile(h.snapshot(), 0.0));
}

// ---------------------------------------------------------------------
// BurnRateTracker: empty-window evaluation, threshold crossings,
// edge-triggered alert accounting.

BurnRateSpec test_spec() {
  BurnRateSpec spec;
  spec.objective = "test.rpc";
  spec.budget_error_rate = 0.01;
  spec.window = milliseconds(60000);
  spec.alert_threshold = 10.0;
  return spec;
}

TEST(BurnRateTracker, EmptyWindowHasNoDataAndNeverAlerts) {
  BurnRateTracker tracker(test_spec());
  const auto eval = tracker.evaluate(0);
  EXPECT_FALSE(eval.has_data);
  EXPECT_DOUBLE_EQ(eval.total, 0.0);
  EXPECT_DOUBLE_EQ(eval.burn_rate, 0.0);
  EXPECT_FALSE(eval.alerting);
}

TEST(BurnRateTracker, HealthyTrafficBurnsBelowThreshold) {
  BurnRateTracker tracker(test_spec());
  for (int i = 0; i < 100; ++i) tracker.record(1000, /*bad=*/false);
  tracker.record(1000, /*bad=*/true);  // ~1% errors = 1x burn
  const auto eval = tracker.evaluate(1000);
  EXPECT_TRUE(eval.has_data);
  EXPECT_NEAR(eval.error_rate, 1.0 / 101.0, 1e-9);
  EXPECT_NEAR(eval.burn_rate, eval.error_rate / 0.01, 1e-9);
  EXPECT_FALSE(eval.alerting);
}

TEST(BurnRateTracker, CrossingTheThresholdAlerts) {
  BurnRateTracker tracker(test_spec());
  // 20% errors = 20x the 1% budget, above the 10x threshold.
  for (int i = 0; i < 80; ++i) tracker.record(1000, /*bad=*/false);
  for (int i = 0; i < 20; ++i) tracker.record(1000, /*bad=*/true);
  const auto eval = tracker.evaluate(1000);
  EXPECT_TRUE(eval.has_data);
  EXPECT_NEAR(eval.burn_rate, 20.0, 1e-9);
  EXPECT_TRUE(eval.alerting);
  // Once the bad slots slide out of the window, the alert clears.
  const auto later = tracker.evaluate(200000);
  EXPECT_FALSE(later.has_data);
  EXPECT_FALSE(later.alerting);
}

TEST(BurnRateTracker, PublishCountsAlertEdgesNotScrapes) {
  MetricsRegistry registry;
  BurnRateTracker tracker(test_spec());
  const Labels alert_labels = {{"objective", "test.rpc"}};
  const Labels burn_labels = {{"objective", "test.rpc"}, {"window", "60s"}};

  // Healthy first: gauge published, no alert.
  for (int i = 0; i < 100; ++i) tracker.record(1000, /*bad=*/false);
  tracker.publish(registry, 1000);
  EXPECT_EQ(registry.counter(kSloBurnAlertsTotal, alert_labels).value(), 0u);

  // Breach: the not-alerting -> alerting edge counts exactly once even
  // across repeated scrapes.
  for (int i = 0; i < 100; ++i) tracker.record(2000, /*bad=*/true);
  tracker.publish(registry, 2000);
  tracker.publish(registry, 2100);
  tracker.publish(registry, 2200);
  EXPECT_EQ(registry.counter(kSloBurnAlertsTotal, alert_labels).value(), 1u);
  EXPECT_GE(registry.gauge(kSloBurnRate, burn_labels).value(), 10.0);

  // Recovery clears the gauge's alerting level; a second breach is a
  // second edge.
  tracker.publish(registry, 200000);
  EXPECT_DOUBLE_EQ(registry.gauge(kSloBurnRate, burn_labels).value(), 0.0);
  for (int i = 0; i < 100; ++i) tracker.record(300000, /*bad=*/true);
  tracker.publish(registry, 300000);
  EXPECT_EQ(registry.counter(kSloBurnAlertsTotal, alert_labels).value(), 2u);
}

TEST(BurnRateSpec, WindowLabelRendersSecondsOrMilliseconds) {
  BurnRateSpec spec = test_spec();
  EXPECT_EQ(spec.window_label(), "60s");
  spec.window = milliseconds(1500);
  EXPECT_EQ(spec.window_label(), "1500ms");
}

}  // namespace
}  // namespace e2e::obs
