// Differential crash-recovery suite (ISSUE 6 tentpole).
//
// Every test drives a LIVE broker (the in-memory oracle) with a WAL
// attached, "crashes" it by dropping the WAL object (the on-disk file keeps
// exactly what was acked), replays snapshot + log tail into a FRESH broker
// and compares the recovered state against the oracle: the pool timeline at
// every interval boundary, the reservation and tunnel sets, and the
// id/serial sources. Edge cases: torn final record (dropped, never acked),
// corrupted or missing mid-log record (refused outright), snapshot with an
// empty tail, an un-truncated snapshot/tail overlap, and a batch record
// acked after the snapshot was taken.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bb/bandwidth_broker.hpp"
#include "bb/recovery.hpp"
#include "bb/snapshot.hpp"
#include "bb/wal.hpp"

namespace e2e::bb {
namespace {

const TimeInterval kLongValidity{0, hours(24 * 365)};
const char kAlice[] = "CN=Alice,O=DomainA,C=US";

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void dump(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

struct RecoveryFixture {
  Rng rng{4242};
  crypto::CertificateAuthority ca{
      crypto::DistinguishedName::make("CA-B", "DomainB"), rng, kLongValidity,
      256};
  BandwidthBroker live{broker_config(), grant_policy(), ca, rng,
                       kLongValidity};
  /// The blank slate recovery replays into (same domain/capacity/SLAs;
  /// fresh key material).
  BandwidthBroker fresh{broker_config(), grant_policy(), ca, rng,
                        kLongValidity};
  std::string wal_path;
  std::string snap_path;
  std::unique_ptr<WriteAheadLog> wal;

  explicit RecoveryFixture(const std::string& tag) {
    live.add_upstream_sla(sla_from_a());
    fresh.add_upstream_sla(sla_from_a());
    wal_path = ::testing::TempDir() + "bb_recovery_" + tag + ".wal";
    snap_path = ::testing::TempDir() + "bb_recovery_" + tag + ".snapshot";
    std::remove(wal_path.c_str());
    std::remove(snap_path.c_str());
    auto opened = WriteAheadLog::open(wal_path);
    if (!opened.ok()) {
      throw std::runtime_error("wal open: " + opened.error().to_text());
    }
    wal = std::move(*opened);
    live.attach_wal(wal.get());
  }

  static BrokerConfig broker_config() {
    return BrokerConfig{"DomainB", 100e6, 256};
  }
  static policy::PolicyServer grant_policy() {
    return policy::PolicyServer(
        "DomainB", policy::Policy::compile("Return GRANT").value());
  }
  static sla::ServiceLevelAgreement sla_from_a() {
    sla::ServiceLevelAgreement a;
    a.from_domain = "DomainA";
    a.to_domain = "DomainB";
    a.profile.rate_bits_per_s = 50e6;
    a.profile.burst_bits = 50000;
    a.validity = kLongValidity;
    a.price_per_mbit_s = 0.01;
    return a;
  }

  ResSpec spec(double rate, TimeInterval iv = {0, seconds(600)}) const {
    ResSpec s;
    s.user = kAlice;
    s.source_domain = "DomainA";
    s.destination_domain = "DomainC";
    s.rate_bits_per_s = rate;
    s.burst_bits = 30000;
    s.interval = iv;
    return s;
  }

  /// The process dies: the WAL object goes away; the file stays.
  void crash() {
    live.attach_wal(nullptr);
    wal.reset();
  }

  Result<RecoveryReport> recover() {
    return recover_broker(fresh, snap_path, wal_path);
  }
};

/// A mixed scripted workload covering every WAL record kind. Returns the
/// granted reservation handles in issue order.
std::vector<ReservationId> run_workload(RecoveryFixture& f) {
  std::vector<ReservationId> ids;
  auto grant = [&](Result<ReservationId> r) {
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().to_text());
    if (r.ok()) ids.push_back(*r);
  };
  // Local + transit singles, one of them short-lived (purged below).
  grant(f.live.commit(f.spec(10e6, {0, seconds(600)}), ""));
  grant(f.live.commit(f.spec(20e6, {seconds(100), seconds(700)}), "DomainA"));
  grant(f.live.commit(f.spec(3e6, {0, seconds(50)}), ""));
  // One batch = ONE WAL record.
  auto batch = f.live.commit_batch({f.spec(5e6, {seconds(10), seconds(400)}),
                                    f.spec(6e6, {seconds(20), seconds(500)}),
                                    f.spec(7e6, {seconds(30), seconds(800)})},
                                   "");
  for (auto& r : batch) grant(std::move(r));
  // Delegation serials.
  (void)f.live.next_certificate_serial();
  (void)f.live.next_certificate_serial();
  // A tunnel with single + batch sub-flow allocations and one release.
  ResSpec aggregate = f.spec(30e6, {0, seconds(3600)});
  aggregate.is_tunnel = true;
  auto tid = f.live.register_tunnel(aggregate);
  EXPECT_TRUE(tid.ok()) << (tid.ok() ? "" : tid.error().to_text());
  Tunnel* tunnel = f.live.find_tunnel(*tid);
  tunnel->authorize(kAlice);
  EXPECT_TRUE(
      tunnel->allocate("flow-a", kAlice, {0, seconds(1200)}, 5e6).ok());
  auto statuses = tunnel->allocate_batch(
      {{"flow-b", kAlice, {seconds(60), seconds(900)}, 4e6},
       {"flow-c", kAlice, {seconds(120), seconds(1500)}, 3e6}});
  for (const auto& s : statuses) EXPECT_TRUE(s.ok()) << s.error().to_text();
  EXPECT_TRUE(tunnel->release("flow-b").ok());
  // A release and an expiry purge (one batch record).
  EXPECT_TRUE(f.live.release(ids[0]).ok());
  EXPECT_EQ(f.live.purge_expired(seconds(60)), 1u);  // the {0,50s} one
  return ids;
}

/// Times worth probing: every interval boundary of every commitment, plus
/// one tick either side and the midpoint.
std::vector<SimTime> probe_times(const BandwidthBroker& broker) {
  std::set<SimTime> ts{0};
  auto add = [&](const TimeInterval& iv) {
    for (SimTime t : {iv.start - 1, iv.start, iv.start + 1,
                      (iv.start + iv.end) / 2, iv.end - 1, iv.end,
                      iv.end + 1}) {
      ts.insert(t);
    }
  };
  for (const Reservation& r : broker.all_reservations()) add(r.spec.interval);
  for (const Tunnel* t : broker.all_tunnels()) {
    add(t->spec().interval);
    for (const auto& a : t->allocations()) add(a.interval);
  }
  return {ts.begin(), ts.end()};
}

/// THE recovery invariant: replay ≡ oracle.
void expect_equivalent(const BandwidthBroker& oracle,
                       const BandwidthBroker& recovered) {
  // Reservation records, field by field.
  const auto ra = oracle.all_reservations();
  const auto rb = recovered.all_reservations();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].id, rb[i].id);
    EXPECT_EQ(ra[i].upstream_domain, rb[i].upstream_domain);
    EXPECT_EQ(ra[i].state, rb[i].state);
    EXPECT_TRUE(ra[i].spec == rb[i].spec) << "spec mismatch for " << ra[i].id;
  }
  // The pool timeline, probed at every boundary the oracle knows about.
  for (SimTime t : probe_times(oracle)) {
    EXPECT_DOUBLE_EQ(oracle.committed_at(t), recovered.committed_at(t))
        << "committed_at(" << t << ") diverges";
  }
  // Tunnels: spec, authorization set, and each per-flow allocation.
  const auto ta = oracle.all_tunnels();
  const auto tb = recovered.all_tunnels();
  ASSERT_EQ(ta.size(), tb.size());
  std::map<TunnelId, const Tunnel*> by_id;
  for (const Tunnel* t : tb) by_id[t->id()] = t;
  for (const Tunnel* t : ta) {
    ASSERT_TRUE(by_id.contains(t->id())) << "missing tunnel " << t->id();
    const Tunnel* other = by_id[t->id()];
    EXPECT_TRUE(t->spec() == other->spec());
    EXPECT_EQ(t->authorized(), other->authorized());
    const auto aa = t->allocations();
    const auto ab = other->allocations();
    ASSERT_EQ(aa.size(), ab.size()) << "tunnel " << t->id();
    for (std::size_t i = 0; i < aa.size(); ++i) {
      EXPECT_EQ(aa[i].key, ab[i].key);
      EXPECT_EQ(aa[i].interval.start, ab[i].interval.start);
      EXPECT_EQ(aa[i].interval.end, ab[i].interval.end);
      EXPECT_DOUBLE_EQ(aa[i].rate, ab[i].rate);
    }
    EXPECT_DOUBLE_EQ(t->allocated_peak(t->spec().interval),
                     other->allocated_peak(t->spec().interval));
  }
  // Handle/serial sources: a recovered broker continues exactly where the
  // crashed one left off (every issued handle was durable here).
  EXPECT_EQ(oracle.next_id_value(), recovered.next_id_value());
  EXPECT_EQ(oracle.next_certificate_serial_value(),
            recovered.next_certificate_serial_value());
}

TEST(WalRecovery, DifferentialReplayWithoutSnapshot) {
  RecoveryFixture f("tail_only");
  run_workload(f);
  f.crash();
  const auto report = f.recover();
  ASSERT_TRUE(report.ok()) << report.error().to_text();
  EXPECT_FALSE(report->snapshot_loaded);
  EXPECT_EQ(report->failed, 0u);
  EXPECT_EQ(report->skipped_covered, 0u);
  EXPECT_EQ(report->skipped_duplicate, 0u);
  EXPECT_FALSE(report->torn_tail_dropped);
  EXPECT_GT(report->replayed, 0u);
  expect_equivalent(f.live, f.fresh);
}

TEST(WalRecovery, SnapshotPlusTailMatchesOracle) {
  RecoveryFixture f("snap_tail");
  const auto ids = run_workload(f);
  const auto dropped = snapshot_and_truncate(f.live, *f.wal, f.snap_path);
  ASSERT_TRUE(dropped.ok()) << dropped.error().to_text();
  EXPECT_GT(*dropped, 0u);
  // More acked work after the checkpoint: new grants, a release of a
  // pre-snapshot reservation, a new tunnel flow.
  ASSERT_TRUE(f.live.commit(f.spec(8e6, {seconds(200), seconds(900)}), "")
                  .ok());
  ASSERT_TRUE(f.live.release(ids[1]).ok());
  Tunnel* tunnel = f.live.find_tunnel(f.live.all_tunnels().front()->id());
  ASSERT_TRUE(
      tunnel->allocate("flow-d", kAlice, {seconds(300), seconds(2000)}, 2e6)
          .ok());
  f.crash();
  const auto report = f.recover();
  ASSERT_TRUE(report.ok()) << report.error().to_text();
  EXPECT_TRUE(report->snapshot_loaded);
  EXPECT_EQ(report->failed, 0u);
  EXPECT_EQ(report->skipped_covered, 0u);  // the covered prefix was dropped
  EXPECT_GT(report->replayed, 0u);
  expect_equivalent(f.live, f.fresh);
}

TEST(WalRecovery, SnapshotWithEmptyTail) {
  RecoveryFixture f("snap_empty");
  run_workload(f);
  ASSERT_TRUE(snapshot_and_truncate(f.live, *f.wal, f.snap_path).ok());
  f.crash();
  const auto report = f.recover();
  ASSERT_TRUE(report.ok()) << report.error().to_text();
  EXPECT_TRUE(report->snapshot_loaded);
  EXPECT_EQ(report->wal_records, 0u);
  EXPECT_EQ(report->failed, 0u);
  expect_equivalent(f.live, f.fresh);
  // With no tail, even the statistics counters round-trip exactly.
  const auto ca = f.live.counters();
  const auto cb = f.fresh.counters();
  EXPECT_EQ(ca.requests, cb.requests);
  EXPECT_EQ(ca.granted, cb.granted);
  EXPECT_EQ(ca.denied_admission, cb.denied_admission);
  EXPECT_EQ(ca.released, cb.released);
}

TEST(WalRecovery, UntruncatedOverlapIsSkippedBySequence) {
  RecoveryFixture f("overlap");
  run_workload(f);
  // Snapshot WITHOUT truncating (crash between snapshot rename and
  // truncation): the tail then overlaps the snapshot's covered prefix.
  ASSERT_TRUE(write_snapshot(f.live, f.wal.get(), f.snap_path).ok());
  ASSERT_TRUE(f.live.commit(f.spec(4e6, {seconds(40), seconds(640)}), "")
                  .ok());
  f.crash();
  const auto report = f.recover();
  ASSERT_TRUE(report.ok()) << report.error().to_text();
  EXPECT_TRUE(report->snapshot_loaded);
  EXPECT_GT(report->skipped_covered, 0u);
  EXPECT_EQ(report->skipped_duplicate, 0u);
  EXPECT_EQ(report->failed, 0u);
  expect_equivalent(f.live, f.fresh);
}

TEST(WalRecovery, BatchAckedAfterSnapshotReplays) {
  RecoveryFixture f("late_batch");
  run_workload(f);
  ASSERT_TRUE(snapshot_and_truncate(f.live, *f.wal, f.snap_path).ok());
  const auto batch =
      f.live.commit_batch({f.spec(2e6, {seconds(50), seconds(450)}),
                           f.spec(1e6, {seconds(60), seconds(460)})},
                          "DomainA");
  for (const auto& r : batch) ASSERT_TRUE(r.ok());
  f.crash();
  const auto report = f.recover();
  ASSERT_TRUE(report.ok()) << report.error().to_text();
  EXPECT_EQ(report->failed, 0u);
  for (const auto& r : batch) {
    EXPECT_NE(f.fresh.find(*r), nullptr)
        << "acked post-snapshot batch grant " << *r << " lost";
  }
  expect_equivalent(f.live, f.fresh);
}

TEST(WalRecovery, TornFinalRecordIsDroppedNotReplayed) {
  RecoveryFixture f("torn");
  run_workload(f);
  // State probe BEFORE the final op: the torn record was never acked, so
  // recovery must land exactly here.
  const std::vector<SimTime> ts = probe_times(f.live);
  std::vector<double> before;
  for (SimTime t : ts) before.push_back(f.live.committed_at(t));
  const auto last = f.live.commit(f.spec(9e6, {0, seconds(500)}), "");
  ASSERT_TRUE(last.ok());
  f.crash();
  // Tear the final record: keep everything up to the last newline, plus a
  // fragment of the final line.
  std::string content = slurp(f.wal_path);
  ASSERT_FALSE(content.empty());
  const std::size_t last_nl = content.rfind('\n');
  const std::size_t prev_nl = content.rfind('\n', last_nl - 1);
  ASSERT_NE(prev_nl, std::string::npos);
  dump(f.wal_path, content.substr(0, prev_nl + 1 + 17));
  const auto report = f.recover();
  ASSERT_TRUE(report.ok()) << report.error().to_text();
  EXPECT_TRUE(report->torn_tail_dropped);
  EXPECT_EQ(report->failed, 0u);
  EXPECT_EQ(f.fresh.find(*last), nullptr);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_DOUBLE_EQ(f.fresh.committed_at(ts[i]), before[i]);
  }
}

TEST(WalRecovery, CorruptedMidLogRecordIsRefused) {
  RecoveryFixture f("tamper");
  run_workload(f);
  f.crash();
  // Flip the recorded domain inside the SECOND record: the line still
  // parses, but its hash no longer matches — tampered, not torn.
  std::string content = slurp(f.wal_path);
  const std::size_t second = content.find('\n') + 1;
  const std::size_t field = content.find("\"domain\":\"DomainB\"", second);
  ASSERT_NE(field, std::string::npos);
  content[field + std::string("\"domain\":\"Domain").size()] = 'X';
  dump(f.wal_path, content);
  EXPECT_FALSE(WriteAheadLog::verify_file(f.wal_path).ok());
  const auto report = f.recover();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, ErrorCode::kBadMessage);
  // Nothing was replayed into the fresh broker.
  EXPECT_EQ(f.fresh.reservation_count(), 0u);
}

TEST(WalRecovery, MissingMidLogRecordIsRefused) {
  RecoveryFixture f("gap");
  run_workload(f);
  f.crash();
  // Delete the second line outright: the chain link (and the sequence
  // numbering) breaks at the splice point.
  std::string content = slurp(f.wal_path);
  const std::size_t first_nl = content.find('\n');
  const std::size_t second_nl = content.find('\n', first_nl + 1);
  ASSERT_NE(second_nl, std::string::npos);
  content.erase(first_nl + 1, second_nl - first_nl);
  dump(f.wal_path, content);
  const auto report = f.recover();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, ErrorCode::kBadMessage);
}

TEST(WalRecovery, EveryByteCutLeavesAReadablePrefix) {
  // A crash can cut the log at ANY byte (the final record may be torn, but
  // everything before it was written sequentially). Every prefix must
  // read back as an exact prefix of the full record list — never an error,
  // never a reordering.
  RecoveryFixture f("bytecut");
  ASSERT_TRUE(f.live.commit(f.spec(10e6, {0, seconds(600)}), "").ok());
  ASSERT_TRUE(
      f.live.commit(f.spec(20e6, {seconds(10), seconds(700)}), "DomainA")
          .ok());
  (void)f.live.next_certificate_serial();
  ASSERT_TRUE(f.live.commit(f.spec(5e6, {seconds(20), seconds(800)}), "")
                  .ok());
  f.crash();
  const std::string content = slurp(f.wal_path);
  const auto full = WriteAheadLog::read_content(content);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->records.size(), 4u);
  for (std::size_t cut = 0; cut <= content.size(); ++cut) {
    const auto r = WriteAheadLog::read_content(content.substr(0, cut));
    ASSERT_TRUE(r.ok()) << "cut at byte " << cut << ": "
                        << r.error().to_text();
    ASSERT_LE(r->records.size(), full->records.size());
    for (std::size_t i = 0; i < r->records.size(); ++i) {
      ASSERT_EQ(r->records[i].hash, full->records[i].hash)
          << "cut at byte " << cut << " is not a prefix";
    }
    // A mid-line cut is a torn tail; a cut exactly on a record boundary
    // is clean.
    const bool on_boundary =
        cut == 0 || (cut <= content.size() && content[cut - 1] == '\n');
    EXPECT_EQ(r->torn_tail, !on_boundary) << "cut at byte " << cut;
  }
}

TEST(WalRecovery, CheckpointRestartCrashRecoverCycle) {
  // Full operational cycle: work, checkpoint (snapshot + truncate), restart
  // the log with the snapshot's floor, more work, crash, recover. Sequence
  // numbers must stay monotonic across the truncation or the tail would be
  // mistaken for covered records.
  RecoveryFixture f("cycle");
  run_workload(f);
  ASSERT_TRUE(snapshot_and_truncate(f.live, *f.wal, f.snap_path).ok());
  const auto snapshot = read_snapshot(f.snap_path);
  ASSERT_TRUE(snapshot.ok());
  // "Restart": reopen the (now truncated) log exactly as a restarted
  // deployment would, passing the snapshot's covered position as the floor.
  f.live.attach_wal(nullptr);
  f.wal.reset();
  auto reopened = WriteAheadLog::open(f.wal_path, WriteAheadLog::SyncMode::kFsync,
                                      snapshot->meta.wal_next_seq);
  ASSERT_TRUE(reopened.ok());
  f.wal = std::move(*reopened);
  EXPECT_GE(f.wal->next_seq(), snapshot->meta.wal_next_seq);
  f.live.attach_wal(f.wal.get());
  ASSERT_TRUE(f.live.commit(f.spec(6e6, {seconds(70), seconds(670)}), "")
                  .ok());
  f.crash();
  const auto report = f.recover();
  ASSERT_TRUE(report.ok()) << report.error().to_text();
  EXPECT_EQ(report->failed, 0u);
  EXPECT_EQ(report->skipped_covered, 0u);
  expect_equivalent(f.live, f.fresh);
}

}  // namespace
}  // namespace e2e::bb
