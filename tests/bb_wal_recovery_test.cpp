// Differential crash-recovery suite (ISSUE 6 tentpole).
//
// Every test drives a LIVE broker (the in-memory oracle) with a WAL
// attached, "crashes" it by dropping the WAL object (the on-disk file keeps
// exactly what was acked), replays snapshot + log tail into a FRESH broker
// and compares the recovered state against the oracle: the pool timeline at
// every interval boundary, the reservation and tunnel sets, and the
// id/serial sources. Edge cases: torn final record (dropped, never acked),
// corrupted or missing mid-log record (refused outright), snapshot with an
// empty tail, an un-truncated snapshot/tail overlap, and a batch record
// acked after the snapshot was taken.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bb/bandwidth_broker.hpp"
#include "bb/recovery.hpp"
#include "bb/snapshot.hpp"
#include "bb/wal.hpp"
#include "obs/audit.hpp"

namespace e2e::bb {
namespace {

const TimeInterval kLongValidity{0, hours(24 * 365)};
const char kAlice[] = "CN=Alice,O=DomainA,C=US";

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void dump(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

struct RecoveryFixture {
  Rng rng{4242};
  crypto::CertificateAuthority ca{
      crypto::DistinguishedName::make("CA-B", "DomainB"), rng, kLongValidity,
      256};
  BandwidthBroker live{broker_config(), grant_policy(), ca, rng,
                       kLongValidity};
  /// The blank slate recovery replays into (same domain/capacity/SLAs;
  /// fresh key material).
  BandwidthBroker fresh{broker_config(), grant_policy(), ca, rng,
                        kLongValidity};
  std::string wal_path;
  std::string snap_path;
  std::unique_ptr<WriteAheadLog> wal;

  explicit RecoveryFixture(const std::string& tag) {
    live.add_upstream_sla(sla_from_a());
    fresh.add_upstream_sla(sla_from_a());
    wal_path = ::testing::TempDir() + "bb_recovery_" + tag + ".wal";
    snap_path = ::testing::TempDir() + "bb_recovery_" + tag + ".snapshot";
    std::remove(wal_path.c_str());
    std::remove(snap_path.c_str());
    auto opened = WriteAheadLog::open(wal_path);
    if (!opened.ok()) {
      throw std::runtime_error("wal open: " + opened.error().to_text());
    }
    wal = std::move(*opened);
    live.attach_wal(wal.get());
  }

  static BrokerConfig broker_config() {
    return BrokerConfig{"DomainB", 100e6, 256};
  }
  static policy::PolicyServer grant_policy() {
    return policy::PolicyServer(
        "DomainB", policy::Policy::compile("Return GRANT").value());
  }
  static sla::ServiceLevelAgreement sla_from_a() {
    sla::ServiceLevelAgreement a;
    a.from_domain = "DomainA";
    a.to_domain = "DomainB";
    a.profile.rate_bits_per_s = 50e6;
    a.profile.burst_bits = 50000;
    a.validity = kLongValidity;
    a.price_per_mbit_s = 0.01;
    return a;
  }

  ResSpec spec(double rate, TimeInterval iv = {0, seconds(600)}) const {
    ResSpec s;
    s.user = kAlice;
    s.source_domain = "DomainA";
    s.destination_domain = "DomainC";
    s.rate_bits_per_s = rate;
    s.burst_bits = 30000;
    s.interval = iv;
    return s;
  }

  /// The process dies: the WAL object goes away; the file stays.
  void crash() {
    live.attach_wal(nullptr);
    wal.reset();
  }

  Result<RecoveryReport> recover() {
    return recover_broker(fresh, snap_path, wal_path);
  }
};

/// A mixed scripted workload covering every WAL record kind. Returns the
/// granted reservation handles in issue order.
std::vector<ReservationId> run_workload(RecoveryFixture& f) {
  std::vector<ReservationId> ids;
  auto grant = [&](Result<ReservationId> r) {
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().to_text());
    if (r.ok()) ids.push_back(*r);
  };
  // Local + transit singles, one of them short-lived (purged below).
  grant(f.live.commit(f.spec(10e6, {0, seconds(600)}), ""));
  grant(f.live.commit(f.spec(20e6, {seconds(100), seconds(700)}), "DomainA"));
  grant(f.live.commit(f.spec(3e6, {0, seconds(50)}), ""));
  // One batch = ONE WAL record.
  auto batch = f.live.commit_batch({f.spec(5e6, {seconds(10), seconds(400)}),
                                    f.spec(6e6, {seconds(20), seconds(500)}),
                                    f.spec(7e6, {seconds(30), seconds(800)})},
                                   "");
  for (auto& r : batch) grant(std::move(r));
  // Delegation serials.
  (void)f.live.next_certificate_serial();
  (void)f.live.next_certificate_serial();
  // A tunnel with single + batch sub-flow allocations and one release.
  ResSpec aggregate = f.spec(30e6, {0, seconds(3600)});
  aggregate.is_tunnel = true;
  auto tid = f.live.register_tunnel(aggregate);
  EXPECT_TRUE(tid.ok()) << (tid.ok() ? "" : tid.error().to_text());
  Tunnel* tunnel = f.live.find_tunnel(*tid);
  EXPECT_TRUE(tunnel->authorize(kAlice).ok());
  EXPECT_TRUE(
      tunnel->allocate("flow-a", kAlice, {0, seconds(1200)}, 5e6).ok());
  auto statuses = tunnel->allocate_batch(
      {{"flow-b", kAlice, {seconds(60), seconds(900)}, 4e6},
       {"flow-c", kAlice, {seconds(120), seconds(1500)}, 3e6}});
  for (const auto& s : statuses) EXPECT_TRUE(s.ok()) << s.error().to_text();
  EXPECT_TRUE(tunnel->release("flow-b").ok());
  // A release and an expiry purge (one batch record).
  EXPECT_TRUE(f.live.release(ids[0]).ok());
  EXPECT_EQ(f.live.purge_expired(seconds(60)), 1u);  // the {0,50s} one
  return ids;
}

/// Times worth probing: every interval boundary of every commitment, plus
/// one tick either side and the midpoint.
std::vector<SimTime> probe_times(const BandwidthBroker& broker) {
  std::set<SimTime> ts{0};
  auto add = [&](const TimeInterval& iv) {
    for (SimTime t : {iv.start - 1, iv.start, iv.start + 1,
                      (iv.start + iv.end) / 2, iv.end - 1, iv.end,
                      iv.end + 1}) {
      ts.insert(t);
    }
  };
  for (const Reservation& r : broker.all_reservations()) add(r.spec.interval);
  for (const Tunnel* t : broker.all_tunnels()) {
    add(t->spec().interval);
    for (const auto& a : t->allocations()) add(a.interval);
  }
  return {ts.begin(), ts.end()};
}

/// THE recovery invariant: replay ≡ oracle.
void expect_equivalent(const BandwidthBroker& oracle,
                       const BandwidthBroker& recovered) {
  // Reservation records, field by field.
  const auto ra = oracle.all_reservations();
  const auto rb = recovered.all_reservations();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].id, rb[i].id);
    EXPECT_EQ(ra[i].upstream_domain, rb[i].upstream_domain);
    EXPECT_EQ(ra[i].state, rb[i].state);
    EXPECT_TRUE(ra[i].spec == rb[i].spec) << "spec mismatch for " << ra[i].id;
  }
  // The pool timeline, probed at every boundary the oracle knows about.
  for (SimTime t : probe_times(oracle)) {
    EXPECT_DOUBLE_EQ(oracle.committed_at(t), recovered.committed_at(t))
        << "committed_at(" << t << ") diverges";
  }
  // Tunnels: spec, authorization set, and each per-flow allocation.
  const auto ta = oracle.all_tunnels();
  const auto tb = recovered.all_tunnels();
  ASSERT_EQ(ta.size(), tb.size());
  std::map<TunnelId, const Tunnel*> by_id;
  for (const Tunnel* t : tb) by_id[t->id()] = t;
  for (const Tunnel* t : ta) {
    ASSERT_TRUE(by_id.contains(t->id())) << "missing tunnel " << t->id();
    const Tunnel* other = by_id[t->id()];
    EXPECT_TRUE(t->spec() == other->spec());
    EXPECT_EQ(t->authorized(), other->authorized());
    const auto aa = t->allocations();
    const auto ab = other->allocations();
    ASSERT_EQ(aa.size(), ab.size()) << "tunnel " << t->id();
    for (std::size_t i = 0; i < aa.size(); ++i) {
      EXPECT_EQ(aa[i].key, ab[i].key);
      EXPECT_EQ(aa[i].interval.start, ab[i].interval.start);
      EXPECT_EQ(aa[i].interval.end, ab[i].interval.end);
      EXPECT_DOUBLE_EQ(aa[i].rate, ab[i].rate);
    }
    EXPECT_DOUBLE_EQ(t->allocated_peak(t->spec().interval),
                     other->allocated_peak(t->spec().interval));
  }
  // Handle/serial sources: a recovered broker continues exactly where the
  // crashed one left off (every issued handle was durable here).
  EXPECT_EQ(oracle.next_id_value(), recovered.next_id_value());
  EXPECT_EQ(oracle.next_certificate_serial_value(),
            recovered.next_certificate_serial_value());
}

TEST(WalRecovery, DifferentialReplayWithoutSnapshot) {
  RecoveryFixture f("tail_only");
  run_workload(f);
  f.crash();
  const auto report = f.recover();
  ASSERT_TRUE(report.ok()) << report.error().to_text();
  EXPECT_FALSE(report->snapshot_loaded);
  EXPECT_EQ(report->failed, 0u);
  EXPECT_EQ(report->skipped_covered, 0u);
  EXPECT_EQ(report->skipped_duplicate, 0u);
  EXPECT_FALSE(report->torn_tail_dropped);
  EXPECT_GT(report->replayed, 0u);
  expect_equivalent(f.live, f.fresh);
}

TEST(WalRecovery, SnapshotPlusTailMatchesOracle) {
  RecoveryFixture f("snap_tail");
  const auto ids = run_workload(f);
  const auto dropped = snapshot_and_truncate(f.live, *f.wal, f.snap_path);
  ASSERT_TRUE(dropped.ok()) << dropped.error().to_text();
  EXPECT_GT(*dropped, 0u);
  // More acked work after the checkpoint: new grants, a release of a
  // pre-snapshot reservation, a new tunnel flow.
  ASSERT_TRUE(f.live.commit(f.spec(8e6, {seconds(200), seconds(900)}), "")
                  .ok());
  ASSERT_TRUE(f.live.release(ids[1]).ok());
  Tunnel* tunnel = f.live.find_tunnel(f.live.all_tunnels().front()->id());
  ASSERT_TRUE(
      tunnel->allocate("flow-d", kAlice, {seconds(300), seconds(2000)}, 2e6)
          .ok());
  f.crash();
  const auto report = f.recover();
  ASSERT_TRUE(report.ok()) << report.error().to_text();
  EXPECT_TRUE(report->snapshot_loaded);
  EXPECT_EQ(report->failed, 0u);
  EXPECT_EQ(report->skipped_covered, 0u);  // the covered prefix was dropped
  EXPECT_GT(report->replayed, 0u);
  expect_equivalent(f.live, f.fresh);
}

TEST(WalRecovery, SnapshotWithEmptyTail) {
  RecoveryFixture f("snap_empty");
  run_workload(f);
  ASSERT_TRUE(snapshot_and_truncate(f.live, *f.wal, f.snap_path).ok());
  f.crash();
  const auto report = f.recover();
  ASSERT_TRUE(report.ok()) << report.error().to_text();
  EXPECT_TRUE(report->snapshot_loaded);
  EXPECT_EQ(report->wal_records, 0u);
  EXPECT_EQ(report->failed, 0u);
  expect_equivalent(f.live, f.fresh);
  // With no tail, even the statistics counters round-trip exactly.
  const auto ca = f.live.counters();
  const auto cb = f.fresh.counters();
  EXPECT_EQ(ca.requests, cb.requests);
  EXPECT_EQ(ca.granted, cb.granted);
  EXPECT_EQ(ca.denied_admission, cb.denied_admission);
  EXPECT_EQ(ca.released, cb.released);
}

TEST(WalRecovery, UntruncatedOverlapIsSkippedBySequence) {
  RecoveryFixture f("overlap");
  run_workload(f);
  // Snapshot WITHOUT truncating (crash between snapshot rename and
  // truncation): the tail then overlaps the snapshot's covered prefix.
  ASSERT_TRUE(write_snapshot(f.live, f.wal.get(), f.snap_path).ok());
  ASSERT_TRUE(f.live.commit(f.spec(4e6, {seconds(40), seconds(640)}), "")
                  .ok());
  f.crash();
  const auto report = f.recover();
  ASSERT_TRUE(report.ok()) << report.error().to_text();
  EXPECT_TRUE(report->snapshot_loaded);
  EXPECT_GT(report->skipped_covered, 0u);
  EXPECT_EQ(report->skipped_duplicate, 0u);
  EXPECT_EQ(report->failed, 0u);
  expect_equivalent(f.live, f.fresh);
}

TEST(WalRecovery, BatchAckedAfterSnapshotReplays) {
  RecoveryFixture f("late_batch");
  run_workload(f);
  ASSERT_TRUE(snapshot_and_truncate(f.live, *f.wal, f.snap_path).ok());
  const auto batch =
      f.live.commit_batch({f.spec(2e6, {seconds(50), seconds(450)}),
                           f.spec(1e6, {seconds(60), seconds(460)})},
                          "DomainA");
  for (const auto& r : batch) ASSERT_TRUE(r.ok());
  f.crash();
  const auto report = f.recover();
  ASSERT_TRUE(report.ok()) << report.error().to_text();
  EXPECT_EQ(report->failed, 0u);
  for (const auto& r : batch) {
    EXPECT_NE(f.fresh.find(*r), nullptr)
        << "acked post-snapshot batch grant " << *r << " lost";
  }
  expect_equivalent(f.live, f.fresh);
}

TEST(WalRecovery, TornFinalRecordIsDroppedNotReplayed) {
  RecoveryFixture f("torn");
  run_workload(f);
  // State probe BEFORE the final op: the torn record was never acked, so
  // recovery must land exactly here.
  const std::vector<SimTime> ts = probe_times(f.live);
  std::vector<double> before;
  for (SimTime t : ts) before.push_back(f.live.committed_at(t));
  const auto last = f.live.commit(f.spec(9e6, {0, seconds(500)}), "");
  ASSERT_TRUE(last.ok());
  f.crash();
  // Tear the final record: keep everything up to the last newline, plus a
  // fragment of the final line.
  std::string content = slurp(f.wal_path);
  ASSERT_FALSE(content.empty());
  const std::size_t last_nl = content.rfind('\n');
  const std::size_t prev_nl = content.rfind('\n', last_nl - 1);
  ASSERT_NE(prev_nl, std::string::npos);
  dump(f.wal_path, content.substr(0, prev_nl + 1 + 17));
  const auto report = f.recover();
  ASSERT_TRUE(report.ok()) << report.error().to_text();
  EXPECT_TRUE(report->torn_tail_dropped);
  EXPECT_EQ(report->failed, 0u);
  EXPECT_EQ(f.fresh.find(*last), nullptr);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_DOUBLE_EQ(f.fresh.committed_at(ts[i]), before[i]);
  }
}

TEST(WalRecovery, CorruptedMidLogRecordIsRefused) {
  RecoveryFixture f("tamper");
  run_workload(f);
  f.crash();
  // Flip the recorded domain inside the SECOND record: the line still
  // parses, but its hash no longer matches — tampered, not torn.
  std::string content = slurp(f.wal_path);
  const std::size_t second = content.find('\n') + 1;
  const std::size_t field = content.find("\"domain\":\"DomainB\"", second);
  ASSERT_NE(field, std::string::npos);
  content[field + std::string("\"domain\":\"Domain").size()] = 'X';
  dump(f.wal_path, content);
  EXPECT_FALSE(WriteAheadLog::verify_file(f.wal_path).ok());
  const auto report = f.recover();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, ErrorCode::kBadMessage);
  // Nothing was replayed into the fresh broker.
  EXPECT_EQ(f.fresh.reservation_count(), 0u);
}

TEST(WalRecovery, MissingMidLogRecordIsRefused) {
  RecoveryFixture f("gap");
  run_workload(f);
  f.crash();
  // Delete the second line outright: the chain link (and the sequence
  // numbering) breaks at the splice point.
  std::string content = slurp(f.wal_path);
  const std::size_t first_nl = content.find('\n');
  const std::size_t second_nl = content.find('\n', first_nl + 1);
  ASSERT_NE(second_nl, std::string::npos);
  content.erase(first_nl + 1, second_nl - first_nl);
  dump(f.wal_path, content);
  const auto report = f.recover();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, ErrorCode::kBadMessage);
}

TEST(WalRecovery, EveryByteCutLeavesAReadablePrefix) {
  // A crash can cut the log at ANY byte (the final record may be torn, but
  // everything before it was written sequentially). Every prefix must
  // read back as an exact prefix of the full record list — never an error,
  // never a reordering.
  RecoveryFixture f("bytecut");
  ASSERT_TRUE(f.live.commit(f.spec(10e6, {0, seconds(600)}), "").ok());
  ASSERT_TRUE(
      f.live.commit(f.spec(20e6, {seconds(10), seconds(700)}), "DomainA")
          .ok());
  (void)f.live.next_certificate_serial();
  ASSERT_TRUE(f.live.commit(f.spec(5e6, {seconds(20), seconds(800)}), "")
                  .ok());
  f.crash();
  const std::string content = slurp(f.wal_path);
  const auto full = WriteAheadLog::read_content(content);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->records.size(), 4u);
  for (std::size_t cut = 0; cut <= content.size(); ++cut) {
    const auto r = WriteAheadLog::read_content(content.substr(0, cut));
    ASSERT_TRUE(r.ok()) << "cut at byte " << cut << ": "
                        << r.error().to_text();
    ASSERT_LE(r->records.size(), full->records.size());
    for (std::size_t i = 0; i < r->records.size(); ++i) {
      ASSERT_EQ(r->records[i].hash, full->records[i].hash)
          << "cut at byte " << cut << " is not a prefix";
    }
    // A mid-line cut is a torn tail; a cut exactly on a record boundary
    // is clean.
    const bool on_boundary =
        cut == 0 || (cut <= content.size() && content[cut - 1] == '\n');
    EXPECT_EQ(r->torn_tail, !on_boundary) << "cut at byte " << cut;
  }
}

TEST(WalRecovery, CheckpointRestartCrashRecoverCycle) {
  // Full operational cycle: work, checkpoint (snapshot + truncate), restart
  // the log with the snapshot's floor, more work, crash, recover. Sequence
  // numbers must stay monotonic across the truncation or the tail would be
  // mistaken for covered records.
  RecoveryFixture f("cycle");
  run_workload(f);
  ASSERT_TRUE(snapshot_and_truncate(f.live, *f.wal, f.snap_path).ok());
  const auto snapshot = read_snapshot(f.snap_path);
  ASSERT_TRUE(snapshot.ok());
  // "Restart": reopen the (now truncated) log exactly as a restarted
  // deployment would, passing the snapshot's covered position as the floor.
  f.live.attach_wal(nullptr);
  f.wal.reset();
  auto reopened = WriteAheadLog::open(f.wal_path, WriteAheadLog::SyncMode::kFsync,
                                      snapshot->meta.wal_next_seq,
                                      snapshot->meta.wal_head);
  ASSERT_TRUE(reopened.ok());
  f.wal = std::move(*reopened);
  EXPECT_GE(f.wal->next_seq(), snapshot->meta.wal_next_seq);
  f.live.attach_wal(f.wal.get());
  ASSERT_TRUE(f.live.commit(f.spec(6e6, {seconds(70), seconds(670)}), "")
                  .ok());
  f.crash();
  const auto report = f.recover();
  ASSERT_TRUE(report.ok()) << report.error().to_text();
  EXPECT_EQ(report->failed, 0u);
  EXPECT_EQ(report->skipped_covered, 0u);
  expect_equivalent(f.live, f.fresh);
}

TEST(WalRecovery, MalformedCompleteFinalLineIsRefused) {
  // A newline-terminated final line that fails verification is an edited
  // acked record, NOT a torn write (a crash tears the final line at a
  // byte boundary, leaving no trailing newline). It must refuse recovery,
  // not be silently dropped as "torn".
  RecoveryFixture f("bad_final");
  run_workload(f);
  f.crash();
  std::string content = slurp(f.wal_path);
  ASSERT_EQ(content.back(), '\n');
  const std::size_t prev_nl = content.rfind('\n', content.size() - 2);
  ASSERT_NE(prev_nl, std::string::npos);
  content[prev_nl + 20] ^= 0x01;  // flip one byte inside the LAST record
  dump(f.wal_path, content);
  const auto report = f.recover();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, ErrorCode::kBadMessage);
  EXPECT_EQ(f.fresh.reservation_count(), 0u);
}

TEST(WalRecovery, MissingWalFileAfterCheckpointIsRefused) {
  // The snapshot names covered log records, so a truncated (possibly
  // empty) WAL file must exist — a missing file means the log was deleted
  // along with anything acked after the checkpoint.
  RecoveryFixture f("no_wal");
  run_workload(f);
  ASSERT_TRUE(snapshot_and_truncate(f.live, *f.wal, f.snap_path).ok());
  f.crash();
  ASSERT_EQ(std::remove(f.wal_path.c_str()), 0);
  const auto report = f.recover();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, ErrorCode::kBadMessage);
}

TEST(WalRecovery, TruncatedWalWithoutItsSnapshotIsRefused) {
  // Deleting the snapshot while keeping the truncated tail must not
  // recover silently: without the snapshot the tail's first record fails
  // both the seq-continuity and the genesis-link check.
  RecoveryFixture f("no_snap");
  run_workload(f);
  ASSERT_TRUE(snapshot_and_truncate(f.live, *f.wal, f.snap_path).ok());
  ASSERT_TRUE(f.live.commit(f.spec(2e6, {seconds(5), seconds(300)}), "").ok());
  f.crash();
  ASSERT_EQ(std::remove(f.snap_path.c_str()), 0);
  const auto report = f.recover();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, ErrorCode::kBadMessage);
  EXPECT_EQ(f.fresh.reservation_count(), 0u);
}

TEST(WalRecovery, SnapshotHeadMismatchIsRefused) {
  // A snapshot/log pair from different histories: forge the snapshot's
  // recorded wal_head (recomputing its integrity trailer, as an attacker
  // with file access could) — the tail no longer links to it.
  RecoveryFixture f("head_mismatch");
  run_workload(f);
  ASSERT_TRUE(snapshot_and_truncate(f.live, *f.wal, f.snap_path).ok());
  ASSERT_TRUE(f.live.commit(f.spec(2e6, {seconds(5), seconds(300)}), "").ok());
  f.crash();
  std::string content = slurp(f.snap_path);
  const std::size_t head_at = content.find("\"wal_head\":\"");
  ASSERT_NE(head_at, std::string::npos);
  const std::size_t head_val = head_at + std::string("\"wal_head\":\"").size();
  content.replace(head_val, WriteAheadLog::genesis_hash().size(),
                  WriteAheadLog::genesis_hash());
  // Recompute the trailer so only the continuity check can catch it.
  const std::size_t end_line = content.rfind("{\"type\":\"end\"");
  ASSERT_NE(end_line, std::string::npos);
  const std::string covered = content.substr(0, end_line);
  std::string trailer = content.substr(end_line);
  const std::size_t hash_at = trailer.find("\"hash\":\"");
  ASSERT_NE(hash_at, std::string::npos);
  trailer.replace(hash_at + std::string("\"hash\":\"").size(),
                  obs::kChainHexDigestLen, obs::chain_sha256_hex(covered));
  dump(f.snap_path, covered + trailer);
  ASSERT_TRUE(read_snapshot(f.snap_path).ok());  // forgery is self-consistent
  const auto report = f.recover();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, ErrorCode::kBadMessage);
}

TEST(WalRecovery, CommitFailureLatchesTheLogAndUnwindsCallers) {
  // A failed write/fsync must not let later commits chain past the lost
  // batch (the on-disk log would carry a seq gap poisoning every later
  // acked record). The log latches; callers unwind and nothing latched
  // was ever acked, so the surviving file still replays cleanly.
  RecoveryFixture f("latch");
  run_workload(f);
  const std::size_t reservations = f.live.reservation_count();
  const std::size_t tunnels = f.live.tunnel_count();
  const std::vector<SimTime> ts = probe_times(f.live);
  std::vector<double> committed;
  for (SimTime t : ts) committed.push_back(f.live.committed_at(t));

  f.wal->inject_commit_failure_for_testing();
  EXPECT_FALSE(f.live.commit(f.spec(1e6, {0, seconds(100)}), "").ok());
  // Latched: every further durable operation fails...
  EXPECT_FALSE(f.live.commit(f.spec(1e6, {0, seconds(100)}), "").ok());
  // ...and register_tunnel unwinds its in-memory insert on the error.
  ResSpec agg = f.spec(5e6, {0, seconds(600)});
  agg.is_tunnel = true;
  EXPECT_FALSE(f.live.register_tunnel(agg).ok());
  EXPECT_EQ(f.live.tunnel_count(), tunnels);
  // The broker unwound every failed grant: in-memory state is unchanged.
  EXPECT_EQ(f.live.reservation_count(), reservations);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_DOUBLE_EQ(f.live.committed_at(ts[i]), committed[i]);
  }

  f.crash();
  const auto report = f.recover();
  ASSERT_TRUE(report.ok()) << report.error().to_text();
  EXPECT_EQ(report->failed, 0u);
  EXPECT_EQ(f.fresh.reservation_count(), reservations);
  EXPECT_EQ(f.fresh.tunnel_count(), tunnels);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_DOUBLE_EQ(f.fresh.committed_at(ts[i]), committed[i]);
  }
}

TEST(WalRecovery, TruncateDuringConcurrentCommitsLosesNothing) {
  // Checkpoints run against a LIVE broker: snapshot_and_truncate rewrites
  // the log while group-commit leaders are writing to it. The truncation
  // must wait out any in-flight sync — an acked record may never vanish
  // into the pre-rename inode.
  RecoveryFixture f("trunc_race");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::vector<ReservationId>> granted(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&f, &granted, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const SimTime start = seconds(t * 1000 + i);
        auto r = f.live.commit(f.spec(1e5, {start, start + seconds(300)}), "");
        ASSERT_TRUE(r.ok()) << r.error().to_text();
        granted[t].push_back(*r);
      }
    });
  }
  for (int s = 0; s < 8; ++s) {
    const auto dropped = snapshot_and_truncate(f.live, *f.wal, f.snap_path);
    ASSERT_TRUE(dropped.ok()) << dropped.error().to_text();
  }
  for (auto& w : workers) w.join();
  f.crash();
  const auto report = f.recover();
  ASSERT_TRUE(report.ok()) << report.error().to_text();
  EXPECT_EQ(report->failed, 0u);
  for (const auto& ids : granted) {
    for (const ReservationId& id : ids) {
      EXPECT_NE(f.fresh.find(id), nullptr) << "acked grant " << id << " lost";
    }
  }
  expect_equivalent(f.live, f.fresh);
}

}  // namespace
}  // namespace e2e::bb
