// Test alias for the deployment kit's chain world (src/kit/chain_world.hpp):
// a ready-made multi-domain deployment matching the paper's scenario.
#pragma once

#include "kit/chain_world.hpp"

namespace e2e::testing {
using e2e::kit::ChainWorld;
using e2e::kit::ChainWorldConfig;
using e2e::kit::WorldUser;
using e2e::kit::kWorldValidity;
}  // namespace e2e::testing
