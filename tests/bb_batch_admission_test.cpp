// Batch admission and concurrent-admission tests.
//
// Covers the three batch entry points added with the timeline pool —
// CapacityPool::commit_batch (one lock acquisition), Tunnel::allocate_batch
// (authorization gate + pool batch) and BandwidthBroker::commit_batch
// (local + peer-SLA pools with rollback) — plus the engine-level
// reserve_in_tunnel_batch with and without a concurrent admission pool.
//
// The *Concurrent* tests drive brokers and tunnels from several threads at
// once; scripts/tier1.sh --load builds and runs this binary under the TSan
// preset (build-tsan) so the sharded-state locking is actually checked.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bb/bandwidth_broker.hpp"
#include "testing_world.hpp"

namespace e2e::bb {
namespace {

const TimeInterval kLongValidity{0, hours(24 * 365)};

struct BrokerFixture {
  Rng rng{2026};
  crypto::CertificateAuthority ca{
      crypto::DistinguishedName::make("CA-B", "DomainB"), rng, kLongValidity,
      512};
  BandwidthBroker broker = make_broker();

  BandwidthBroker make_broker() {
    policy::PolicyServer server(
        "DomainB", policy::Policy::compile("Return GRANT").value());
    return BandwidthBroker(BrokerConfig{"DomainB", 100e6, 512},
                           std::move(server), ca, rng, kLongValidity);
  }

  ResSpec spec(double rate, TimeInterval iv = {0, seconds(60)}) {
    ResSpec s;
    s.user = "CN=Alice,O=DomainA,C=US";
    s.source_domain = "DomainA";
    s.destination_domain = "DomainC";
    s.rate_bits_per_s = rate;
    s.burst_bits = 30000;
    s.interval = iv;
    return s;
  }

  sla::ServiceLevelAgreement sla_from_a(double rate) {
    sla::ServiceLevelAgreement a;
    a.from_domain = "DomainA";
    a.to_domain = "DomainB";
    a.profile.rate_bits_per_s = rate;
    a.profile.burst_bits = 50000;
    a.validity = kLongValidity;
    a.price_per_mbit_s = 0.01;
    return a;
  }
};

TEST(BrokerBatch, ResultsInInputOrderWithPerSpecDecisions) {
  BrokerFixture f;
  // 40 + 40 fit under 100 Mb/s; the 30 on top does not; a disjoint
  // interval fits regardless.
  const std::vector<ResSpec> specs = {
      f.spec(40e6), f.spec(40e6), f.spec(30e6),
      f.spec(60e6, {seconds(120), seconds(180)})};
  const auto results = f.broker.commit_batch(specs, "");
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  ASSERT_FALSE(results[2].ok());
  EXPECT_EQ(results[2].error().code, ErrorCode::kAdmissionRejected);
  EXPECT_TRUE(results[3].ok());
  EXPECT_EQ(f.broker.reservation_count(), 3u);
  EXPECT_DOUBLE_EQ(f.broker.committed_at(seconds(30)), 80e6);
  EXPECT_DOUBLE_EQ(f.broker.committed_at(seconds(150)), 60e6);
  EXPECT_EQ(f.broker.counters().requests, 4u);
  EXPECT_EQ(f.broker.counters().granted, 3u);
  EXPECT_EQ(f.broker.counters().denied_admission, 1u);
}

TEST(BrokerBatch, PeerPoolRejectionRollsBackLocalCommit) {
  BrokerFixture f;
  f.broker.add_upstream_sla(f.sla_from_a(30e6));
  // Both fit locally (100 Mb/s) but only the first fits the 30 Mb/s SLA
  // profile: the second's local commit must be rolled back.
  const std::vector<ResSpec> specs = {f.spec(20e6), f.spec(20e6)};
  const auto results = f.broker.commit_batch(specs, "DomainA");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok());
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(f.broker.reservation_count(), 1u);
  EXPECT_DOUBLE_EQ(f.broker.committed_at(seconds(30)), 20e6);
  // The freed slice is admissible again (no residual local commitment).
  EXPECT_TRUE(f.broker.check_admission(f.spec(10e6), "DomainA").ok());
}

TEST(BrokerBatch, BatchMatchesSequentialCommits) {
  BrokerFixture batch_f;
  BrokerFixture seq_f;
  std::vector<ResSpec> specs;
  // Ascending starts so the batch's sorted evaluation order equals the
  // sequential order — decisions must then be identical.
  for (int i = 0; i < 12; ++i) {
    specs.push_back(batch_f.spec(
        30e6, {seconds(10 * i), seconds(10 * i + 40)}));
  }
  const auto batch_results = batch_f.broker.commit_batch(specs, "");
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto seq = seq_f.broker.commit(specs[i], "");
    ASSERT_EQ(batch_results[i].ok(), seq.ok()) << "spec " << i;
  }
  EXPECT_EQ(batch_f.broker.reservation_count(),
            seq_f.broker.reservation_count());
  for (SimTime t = 0; t <= seconds(160); t += seconds(5)) {
    ASSERT_EQ(batch_f.broker.committed_at(t), seq_f.broker.committed_at(t))
        << t;
  }
}

TEST(TunnelBatch, GateFailuresAndPoolDecisionsMergeInInputOrder) {
  Tunnel tunnel("t1", [] {
    ResSpec agg;
    agg.user = "CN=Alice,O=DomainA,C=US";
    agg.source_domain = "DomainA";
    agg.destination_domain = "DomainC";
    agg.rate_bits_per_s = 50e6;
    agg.interval = {0, seconds(600)};
    agg.is_tunnel = true;
    return agg;
  }());
  ASSERT_TRUE(tunnel.authorize("CN=Alice,O=DomainA,C=US").ok());
  const std::vector<Tunnel::SubFlowRequest> flows = {
      {"s1", "CN=Alice,O=DomainA,C=US", {0, seconds(60)}, 30e6},
      {"s2", "CN=Eve,O=Evil,C=US", {0, seconds(60)}, 1e6},
      {"s3", "CN=Alice,O=DomainA,C=US", {seconds(590), seconds(700)}, 1e6},
      {"s4", "CN=Alice,O=DomainA,C=US", {0, seconds(60)}, 25e6},
      {"s5", "CN=Alice,O=DomainA,C=US", {0, seconds(60)}, 20e6}};
  const auto statuses = tunnel.allocate_batch(flows);
  ASSERT_EQ(statuses.size(), 5u);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ(statuses[1].error().code, ErrorCode::kPolicyDenied);
  EXPECT_EQ(statuses[2].error().code, ErrorCode::kAdmissionRejected);
  // s4 (25 on top of 30) busts the aggregate; s5 (20) still fits.
  EXPECT_FALSE(statuses[3].ok());
  EXPECT_TRUE(statuses[4].ok());
  EXPECT_EQ(tunnel.active_allocations(), 2u);
  EXPECT_DOUBLE_EQ(tunnel.allocated_peak({0, seconds(60)}), 50e6);
}

// --- Engine-level batched tunnel allocation -------------------------------

struct TunnelWorldFixture {
  explicit TunnelWorldFixture(std::size_t admission_threads = 0)
      : world(make_config(admission_threads)),
        alice(world.make_user("Alice", 0)) {
    bb::ResSpec agg = world.spec(alice, 50e6, {0, seconds(3600)});
    agg.is_tunnel = true;
    const auto msg =
        world.engine().build_user_request(alice.credentials(), agg, 0);
    const auto outcome = world.engine().reserve(*msg, seconds(1));
    EXPECT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->reply.granted) << outcome->reply.denial.to_text();
    tunnel_id = outcome->reply.tunnel_id;
  }

  static testing::ChainWorldConfig make_config(std::size_t threads) {
    testing::ChainWorldConfig cfg;
    cfg.admission_threads = threads;
    return cfg;
  }

  std::vector<sig::HopByHopEngine::TunnelFlowRequest> flows(
      std::size_t n, double rate) const {
    std::vector<sig::HopByHopEngine::TunnelFlowRequest> out;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back({alice.dn.to_string(), rate, {0, seconds(60)}});
    }
    return out;
  }

  testing::ChainWorld world;
  testing::WorldUser alice;
  std::string tunnel_id;
};

TEST(EngineBatch, PartialGrantStopsAtAggregate) {
  TunnelWorldFixture f;
  // 50 Mb/s aggregate: twelve 5 Mb/s flows → exactly ten granted.
  const auto outcome = f.world.engine().reserve_in_tunnel_batch(
      f.tunnel_id, f.flows(12, 5e6), seconds(2));
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_text();
  EXPECT_EQ(outcome->granted, 10u);
  ASSERT_EQ(outcome->replies.size(), 12u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(outcome->replies[i].granted) << "flow " << i;
    EXPECT_EQ(outcome->replies[i].handles.size(), 2u);
  }
  for (std::size_t i = 10; i < 12; ++i) {
    ASSERT_FALSE(outcome->replies[i].granted) << "flow " << i;
    EXPECT_EQ(outcome->replies[i].denial.code, ErrorCode::kAdmissionRejected);
  }
  // One wire exchange for the whole batch: user->src, src->dst, dst->src.
  EXPECT_EQ(outcome->messages, 3u);
  EXPECT_EQ(f.world.engine().tunnel_info(f.tunnel_id)->active_flows, 10u);
  // No one-sided residue from the denied flows: the remaining headroom is
  // exactly zero, and a follow-up single flow is denied at admission.
  const auto extra = f.world.engine().reserve_in_tunnel(
      f.tunnel_id, f.alice.dn.to_string(), 1e6, {0, seconds(60)}, seconds(3));
  ASSERT_TRUE(extra.ok());
  ASSERT_FALSE(extra->reply.granted);
  EXPECT_EQ(extra->reply.denial.code, ErrorCode::kAdmissionRejected);
}

TEST(EngineBatch, AdmissionPoolGrantsIdenticalToSequential) {
  TunnelWorldFixture serial;
  TunnelWorldFixture pooled(2);
  ASSERT_NE(pooled.world.admission_pool(), nullptr);
  const auto a = serial.world.engine().reserve_in_tunnel_batch(
      serial.tunnel_id, serial.flows(12, 5e6), seconds(2));
  const auto b = pooled.world.engine().reserve_in_tunnel_batch(
      pooled.tunnel_id, pooled.flows(12, 5e6), seconds(2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->granted, b->granted);
  EXPECT_EQ(a->latency, b->latency);
  ASSERT_EQ(a->replies.size(), b->replies.size());
  for (std::size_t i = 0; i < a->replies.size(); ++i) {
    EXPECT_EQ(a->replies[i].granted, b->replies[i].granted) << "flow " << i;
    EXPECT_EQ(a->replies[i].handles, b->replies[i].handles) << "flow " << i;
  }
}

TEST(EngineBatch, UnknownTunnelFails) {
  TunnelWorldFixture f;
  const auto outcome = f.world.engine().reserve_in_tunnel_batch(
      "tunnel-999", f.flows(2, 1e6), seconds(2));
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kNotFound);
}

// --- Concurrency (run under TSan by scripts/tier1.sh --load) --------------

TEST(ConcurrentAdmission, BrokerShardedStateSurvivesParallelCommits) {
  BrokerFixture f;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 60;
  std::atomic<int> granted{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<ReservationId> mine;
      for (int i = 0; i < kPerThread; ++i) {
        // Staggered intervals so threads contend on overlapping windows.
        const SimTime start = seconds((t * kPerThread + i) % 40);
        const auto id =
            f.broker.commit(f.spec(5e6, {start, start + seconds(30)}), "");
        if (id.ok()) {
          granted.fetch_add(1, std::memory_order_relaxed);
          mine.push_back(*id);
        }
        if (mine.size() > 4) {
          ASSERT_TRUE(f.broker.release(mine.front()).ok());
          mine.erase(mine.begin());
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  // Capacity was never oversubscribed at any instant.
  for (SimTime t = 0; t <= seconds(80); t += seconds(1)) {
    ASSERT_LE(f.broker.committed_at(t), 100e6 + 1e-3);
  }
  const auto c = f.broker.counters();
  EXPECT_EQ(c.requests, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(c.granted, static_cast<std::uint64_t>(granted.load()));
  EXPECT_EQ(c.granted - c.released, f.broker.reservation_count());
}

TEST(ConcurrentAdmission, TunnelParallelSingleAndBatchAllocations) {
  BrokerFixture f;
  ResSpec agg = f.spec(50e6, {0, seconds(600)});
  agg.is_tunnel = true;
  const auto tid = f.broker.register_tunnel(agg);
  ASSERT_TRUE(tid.ok());
  Tunnel* tunnel = f.broker.find_tunnel(*tid);
  ASSERT_NE(tunnel, nullptr);
  ASSERT_TRUE(tunnel->authorize("CN=Alice,O=DomainA,C=US").ok());

  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 30; ++i) {
        const std::string base =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        if (i % 3 == 0) {
          std::vector<Tunnel::SubFlowRequest> batch;
          for (int j = 0; j < 4; ++j) {
            batch.push_back({base + "-" + std::to_string(j),
                             "CN=Alice,O=DomainA,C=US",
                             {0, seconds(60)},
                             2e6});
          }
          const auto statuses = tunnel->allocate_batch(batch);
          for (std::size_t j = 0; j < statuses.size(); ++j) {
            if (statuses[j].ok()) {
              (void)tunnel->release(batch[j].sub_id);
            }
          }
        } else {
          if (tunnel
                  ->allocate(base, "CN=Alice,O=DomainA,C=US", {0, seconds(60)},
                             3e6)
                  .ok()) {
            (void)tunnel->release(base);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  // Every grant was released: the aggregate is whole again.
  EXPECT_EQ(tunnel->active_allocations(), 0u);
  EXPECT_DOUBLE_EQ(tunnel->headroom({0, seconds(60)}), 50e6);
}

TEST(ConcurrentAdmission, BrokerBatchesFromManyThreads) {
  BrokerFixture f;
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> granted{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < 10; ++round) {
        std::vector<ResSpec> specs;
        for (int i = 0; i < 8; ++i) {
          const SimTime start = seconds((t * 7 + round * 3 + i) % 50);
          specs.push_back(f.spec(4e6, {start, start + seconds(20)}));
        }
        for (const auto& r : f.broker.commit_batch(specs, "")) {
          if (r.ok()) {
            granted.fetch_add(1, std::memory_order_relaxed);
            ASSERT_TRUE(f.broker.release(*r).ok());
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(f.broker.counters().granted, granted.load());
  EXPECT_EQ(f.broker.reservation_count(), 0u);
  EXPECT_DOUBLE_EQ(f.broker.committed_at(seconds(10)), 0.0);
}

}  // namespace
}  // namespace e2e::bb
