// STARS-style reservation coordinator (paper §3 related approach).
#include "sig/coordinator.hpp"

#include <gtest/gtest.h>

#include "testing_world.hpp"

namespace e2e::sig {
namespace {

using testing::ChainWorld;
using testing::kWorldValidity;
using testing::WorldUser;

struct CoordinatorFixture {
  ChainWorld world;
  crypto::KeyPair rc_keys = crypto::generate_keypair(world.rng(), 256);
  crypto::Certificate rc_cert = world.ca(0).issue(
      crypto::DistinguishedName::make("RC", "DomainA"), rc_keys.pub,
      kWorldValidity);
  ReservationCoordinator rc{world.source_engine(), "DomainA", rc_cert,
                            rc_keys.priv};
  WorldUser alice = world.make_user("Alice", 0);

  CoordinatorFixture() {
    rc.enroll_with_domains(world.names());
    rc.authorize_user(alice.dn.to_string());
  }
};

TEST(Coordinator, ReservesWithoutPerDomainUserTrust) {
  CoordinatorFixture f;
  // Alice is NOT registered with B or C — only the RC is.
  const auto reservation = f.rc.reserve_for(
      f.alice.dn.to_string(), f.world.names(), f.world.spec(f.alice, 10e6),
      SourceDomainEngine::Mode::kParallel, seconds(1));
  ASSERT_TRUE(reservation.ok()) << reservation.error().to_text();
  EXPECT_TRUE(reservation->outcome.reply.granted);
  EXPECT_EQ(reservation->on_behalf_of, f.alice.dn.to_string());
  // The brokers recorded the RC, not Alice.
  const auto& [domain, handle] = reservation->outcome.reply.handles.front();
  EXPECT_EQ(f.world.broker(0).find(handle)->spec.user, "CN=RC,O=DomainA,C=US");
  // But the RC keeps the attribution.
  EXPECT_EQ(f.rc.attributed_user(handle), f.alice.dn.to_string());
}

TEST(Coordinator, DirectUserAttemptStillFailsAtForeignDomains) {
  CoordinatorFixture f;
  // The same user going directly (without the RC) hits the trust wall.
  const auto direct = f.world.source_engine().reserve(
      f.world.names(), f.world.spec(f.alice, 10e6), f.alice.identity_cert,
      f.alice.identity_keys.priv, SourceDomainEngine::Mode::kSequential,
      seconds(1));
  ASSERT_FALSE(direct->reply.granted);
  EXPECT_EQ(direct->reply.denial.code, ErrorCode::kAuthenticationFailed);
}

TEST(Coordinator, UnauthorizedUserRejectedLocally) {
  CoordinatorFixture f;
  const WorldUser eve = f.world.make_user("Eve", 0);
  const auto reservation = f.rc.reserve_for(
      eve.dn.to_string(), f.world.names(), f.world.spec(eve, 1e6),
      SourceDomainEngine::Mode::kSequential, seconds(1));
  ASSERT_FALSE(reservation.ok());
  EXPECT_EQ(reservation.error().code, ErrorCode::kPolicyDenied);
  // No broker was bothered.
  EXPECT_EQ(f.world.broker(1).counters().requests, 0u);
}

TEST(Coordinator, ReleaseClearsAttribution) {
  CoordinatorFixture f;
  const auto reservation = f.rc.reserve_for(
      f.alice.dn.to_string(), f.world.names(), f.world.spec(f.alice, 10e6),
      SourceDomainEngine::Mode::kSequential, seconds(1));
  ASSERT_TRUE(reservation.ok());
  const std::string handle =
      reservation->outcome.reply.handles.front().second;
  ASSERT_TRUE(f.rc.release(*reservation).ok());
  EXPECT_EQ(f.rc.attributed_user(handle), "");
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(f.world.broker(i).reservation_count(), 0u);
  }
}

TEST(Coordinator, StillVulnerableToMisreservationUnlikeHopByHop) {
  // The RC *can* make complete reservations, but nothing structural forces
  // it to — the engine it uses still allows subsets. This documents the
  // paper's residual criticism of the approach.
  CoordinatorFixture f;
  const auto reservation = f.rc.reserve_for(
      f.alice.dn.to_string(), {"DomainA", "DomainB"},
      f.world.spec(f.alice, 10e6), SourceDomainEngine::Mode::kSequential,
      seconds(1));
  ASSERT_TRUE(reservation.ok());
  EXPECT_TRUE(reservation->outcome.reply.granted);
  EXPECT_EQ(f.world.broker(2).reservation_count(), 0u);  // C skipped
}

}  // namespace
}  // namespace e2e::sig
