// Multi-process admin-plane conformance (ISSUE 9 acceptance).
//
// Spawns the REAL bbd binary (E2E_BBD_PATH) with --admin and
// --admission-threads, drives reservation load over the RPC socket, and
// scrapes the admin endpoint like an operator would:
//   - /healthz answers 200 "ok" while the daemon serves;
//   - every family /metrics exposes is declared in the instrument catalog
//     (obs/instruments.hpp), which obs_contract_test keeps equal to the
//     documented contract in docs/OBSERVABILITY.md;
//   - /statz per-shard worker counters sum consistently with the
//     e2e_bb_shard_* series the same daemon exports over /metrics;
//   - /tracez round-trips through tools/tracedump --from-json;
//   - a graceful SIGTERM drain writes the final metrics snapshot named by
//     --metrics-out, including the shutdown audit record's counter bump.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json_reader.hpp"
#include "net/bbd_client.hpp"
#include "net/stream_socket.hpp"
#include "obs/instruments.hpp"

#ifndef E2E_BBD_PATH
#error "E2E_BBD_PATH must point at the built bbd binary"
#endif
#ifndef E2E_TRACEDUMP_PATH
#error "E2E_TRACEDUMP_PATH must point at the built tracedump binary"
#endif

namespace e2e::net {
namespace {

struct HttpReply {
  int status = 0;
  std::string body;
};

/// One admin exchange: connect, GET, read to EOF (the plane closes the
/// connection after every response). Retries connect until `patience`
/// runs out, so scrapes ride out daemon startup.
Result<HttpReply> admin_get(const Endpoint& endpoint,
                            const std::string& path,
                            std::chrono::seconds patience =
                                std::chrono::seconds(30)) {
  const auto deadline = std::chrono::steady_clock::now() + patience;
  Result<StreamSocket> socket = make_error(ErrorCode::kUnavailable, "init");
  while (true) {
    socket = StreamSocket::connect(endpoint);
    if (socket.ok()) break;
    if (std::chrono::steady_clock::now() >= deadline) return socket.error();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (auto sent = socket.value().send_raw(BytesView(
          reinterpret_cast<const std::uint8_t*>(request.data()),
          request.size()));
      !sent.ok()) {
    return sent.error();
  }
  std::string wire;
  char chunk[16384];
  while (true) {
    const ssize_t n = ::read(socket.value().fd(), chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return make_error(ErrorCode::kUnavailable,
                        std::string("read(): ") + std::strerror(errno));
    }
    if (n == 0) break;
    wire.append(chunk, static_cast<std::size_t>(n));
  }
  const std::size_t head_end = wire.find("\r\n\r\n");
  if (head_end == std::string::npos || wire.rfind("HTTP/", 0) != 0) {
    return make_error(ErrorCode::kBadMessage, "malformed admin response");
  }
  HttpReply reply;
  const std::size_t sp = wire.find(' ');
  reply.status =
      sp == std::string::npos ? 0 : std::atoi(wire.c_str() + sp + 1);
  reply.body = wire.substr(head_end + 4);
  return reply;
}

/// Flat "family{labels}" -> value view of a Prometheus text exposition.
std::map<std::string, double> parse_metrics_text(const std::string& text) {
  std::map<std::string, double> series;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0) continue;
    series[line.substr(0, sp)] = std::atof(line.c_str() + sp + 1);
  }
  return series;
}

/// The family name of one series key ("name{labels}" or bare "name"),
/// with histogram exposition suffixes (_bucket/_sum/_count) folded back
/// onto the declaring family when that family exists in the catalog.
std::string family_of(const std::string& key,
                      const std::set<std::string>& known) {
  std::string name = key.substr(0, key.find('{'));
  if (known.contains(name)) return name;
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    if (name.ends_with(suffix)) {
      const std::string base =
          name.substr(0, name.size() - std::strlen(suffix));
      if (known.contains(base)) return base;
    }
  }
  return name;
}

double sum_family(const std::map<std::string, double>& series,
                  const std::string& family) {
  double total = 0;
  for (const auto& [key, value] : series) {
    if (key == family || key.rfind(family + "{", 0) == 0) total += value;
  }
  return total;
}

double number_at(const json::Value& object, const char* key) {
  const json::Value* member = object.find(key);
  return member != nullptr && member->is_number() ? member->number : -1;
}

struct DaemonProcess {
  pid_t pid = -1;
  Endpoint rpc;
  Endpoint admin;

  DaemonProcess() = default;
  DaemonProcess(DaemonProcess&& other) noexcept
      : pid(other.pid),
        rpc(std::move(other.rpc)),
        admin(std::move(other.admin)) {
    other.pid = -1;
  }
  DaemonProcess(const DaemonProcess&) = delete;
  DaemonProcess& operator=(const DaemonProcess&) = delete;
  ~DaemonProcess() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }

  static DaemonProcess spawn(const std::string& root,
                             const std::string& metrics_out) {
    DaemonProcess daemon;
    daemon.rpc = Endpoint::parse("unix:" + root + "/bbd.sock").value();
    daemon.admin = Endpoint::parse("unix:" + root + "/admin.sock").value();
    daemon.pid = fork();
    if (daemon.pid == 0) {
      const std::string listen = daemon.rpc.to_string();
      const std::string admin_on = daemon.admin.to_string();
      ::execl(E2E_BBD_PATH, E2E_BBD_PATH, "--listen", listen.c_str(),
              "--admin", admin_on.c_str(), "--domains", "3",
              "--admission-threads", "2", "--metrics-out",
              metrics_out.c_str(), static_cast<char*>(nullptr));
      ::_exit(127);
    }
    return daemon;
  }

  Result<BbdClient> connect() const {
    BbdClient::Options options;
    options.connect_to = rpc;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (true) {
      auto client = BbdClient::connect(options);
      if (client.ok()) return client;
      if (std::chrono::steady_clock::now() >= deadline) return client;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }

  /// Graceful drain; returns the daemon's exit status.
  int terminate() {
    if (pid <= 0) return -1;
    ::kill(pid, SIGTERM);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
    return status;
  }
};

std::string temp_root() {
  std::string dir = ::testing::TempDir() + "e2e_daemon_admin_XXXXXX";
  std::vector<char> buf(dir.begin(), dir.end());
  buf.push_back('\0');
  EXPECT_NE(::mkdtemp(buf.data()), nullptr);
  return std::string(buf.data());
}

TEST(DaemonAdmin, ScrapeConformanceUnderLoadAndGracefulSnapshot) {
  const std::string root = temp_root();
  const std::string metrics_out = root + "/final.metrics.json";
  DaemonProcess daemon = DaemonProcess::spawn(root, metrics_out);
  ASSERT_GT(daemon.pid, 0);

  // --- Liveness before any load -----------------------------------------
  {
    auto healthz = admin_get(daemon.admin, "/healthz");
    ASSERT_TRUE(healthz.ok()) << healthz.error().to_text();
    EXPECT_EQ(healthz.value().status, 200);
    EXPECT_EQ(healthz.value().body, "ok\n");
    auto readyz = admin_get(daemon.admin, "/readyz");
    ASSERT_TRUE(readyz.ok());
    EXPECT_EQ(readyz.value().status, 200);
  }

  // --- Drive reservation load over the RPC plane ------------------------
  {
    auto client = daemon.connect();
    ASSERT_TRUE(client.ok()) << client.error().to_text();
    ASSERT_TRUE(client.value().hello(/*release_on_disconnect=*/true).ok());
    ASSERT_TRUE(client.value().make_user("admin-user", 0).ok());
    for (int i = 0; i < 8; ++i) {
      BbdClient::ReserveArgs args;
      args.user = "admin-user";
      args.rate = 1e6;
      args.interval = {0, seconds(600)};
      args.at = seconds(1);
      auto outcome = client.value().reserve(args);
      ASSERT_TRUE(outcome.ok()) << outcome.error().to_text();
      ASSERT_TRUE(outcome.value().reply.granted);
      if (i % 2 == 0) {
        ASSERT_TRUE(
            client.value()
                .release("hopbyhop", outcome.value().reply_bytes)
                .ok());
      }
    }
    // The connection closing releases the rest (orphan contract).
  }

  // --- Quiesce: shard queues empty, task totals stable -------------------
  auto statz_totals = [&](const std::string& body) {
    auto parsed = json::parse(body);
    EXPECT_TRUE(parsed.ok()) << parsed.error().to_text();
    const json::Value* totals = parsed.value().find("totals");
    EXPECT_NE(totals, nullptr);
    return std::pair<double, double>(number_at(*totals, "shard_queue_depth"),
                                     number_at(*totals, "shard_tasks"));
  };
  double tasks_total = -1;
  for (int i = 0; i < 100; ++i) {
    auto statz = admin_get(daemon.admin, "/statz");
    ASSERT_TRUE(statz.ok());
    const auto [depth, tasks] = statz_totals(statz.value().body);
    if (depth == 0 && tasks > 0 && tasks == tasks_total) break;
    tasks_total = tasks;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_GT(tasks_total, 0) << "admission load never reached the shards";

  // Let the snapshot-cache TTL (250ms) lapse so the next /metrics scrape
  // renders the quiesced registry, not a mid-load cache entry.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  // --- /metrics: families are exactly the contract catalog's ------------
  auto metrics = admin_get(daemon.admin, "/metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics.value().status, 200);
  const auto series = parse_metrics_text(metrics.value().body);
  ASSERT_FALSE(series.empty());
  std::set<std::string> known;
  for (const auto& info : obs::catalog()) known.insert(info.name);
  for (const auto& [key, value] : series) {
    EXPECT_TRUE(known.contains(family_of(key, known)))
        << key << " scraped from /metrics is not in the instrument catalog";
  }
  EXPECT_GT(sum_family(series, obs::kObsAdminRequestsTotal), 0);
  EXPECT_GT(sum_family(series, obs::kBbShardRequestsTotal), 0);

  // --- /statz sums consistent with the e2e_bb_shard_* series ------------
  auto statz = admin_get(daemon.admin, "/statz");
  ASSERT_TRUE(statz.ok());
  ASSERT_EQ(statz.value().status, 200);
  auto parsed = json::parse(statz.value().body);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_text();
  const json::Value* shards = parsed.value().find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->array.size(), 3u);  // one per domain
  double statz_tasks = 0;
  double statz_busy = 0;
  double statz_depth = 0;
  for (const json::Value& shard : shards->array) {
    statz_depth += number_at(shard, "queue_depth");
    const json::Value* workers = shard.find("workers");
    ASSERT_NE(workers, nullptr);
    ASSERT_EQ(workers->array.size(), 2u);  // --admission-threads 2
    for (const json::Value& worker : workers->array) {
      statz_tasks += number_at(worker, "tasks_total");
      statz_busy += number_at(worker, "busy_us_total");
    }
  }
  const json::Value* totals = parsed.value().find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(number_at(*totals, "shard_tasks"), statz_tasks);
  EXPECT_EQ(number_at(*totals, "shard_busy_us"), statz_busy);
  EXPECT_EQ(number_at(*totals, "shard_queue_depth"), statz_depth);
  // Quiesced: depths are zero, and the per-worker counters every engine
  // shares sum to exactly what /statz reads from the engines directly.
  EXPECT_EQ(statz_depth, 0);
  EXPECT_EQ(sum_family(series, obs::kBbShardRequestsTotal), statz_tasks);
  EXPECT_EQ(sum_family(series, obs::kBbShardBusyUsTotal), statz_busy);

  // --- /tracez round-trips through tracedump --from-json ----------------
  auto tracez = admin_get(daemon.admin, "/tracez");
  ASSERT_TRUE(tracez.ok());
  ASSERT_EQ(tracez.value().status, 200);
  auto tracez_doc = json::parse(tracez.value().body);
  ASSERT_TRUE(tracez_doc.ok()) << tracez_doc.error().to_text();
  const json::Value* traces = tracez_doc.value().find("traces");
  ASSERT_NE(traces, nullptr);
  EXPECT_FALSE(traces->array.empty())
      << "reservation load should leave collectable traces";
  const std::string tracez_path = root + "/tracez.json";
  const std::string dump_path = root + "/tracedump.out";
  {
    std::ofstream out(tracez_path, std::ios::binary);
    out << tracez.value().body;
  }
  const std::string command = std::string("'") + E2E_TRACEDUMP_PATH +
                              "' --from-json '" + tracez_path + "' > '" +
                              dump_path + "' 2>&1";
  ASSERT_EQ(std::system(command.c_str()), 0);
  std::ifstream dump(dump_path);
  std::stringstream rendered;
  rendered << dump.rdbuf();
  EXPECT_NE(rendered.str().find("traces: "), std::string::npos)
      << rendered.str();
  EXPECT_NE(rendered.str().find("[DomainA]"), std::string::npos)
      << rendered.str();

  // --- Graceful drain: final snapshot + shutdown audit -------------------
  const int status = daemon.terminate();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  std::ifstream file(metrics_out, std::ios::binary);
  ASSERT_TRUE(file.good()) << "--metrics-out snapshot was not written";
  std::stringstream snapshot;
  snapshot << file.rdbuf();
  auto snapshot_doc = json::parse(snapshot.str());
  ASSERT_TRUE(snapshot_doc.ok()) << snapshot_doc.error().to_text();
  const std::string& text = snapshot.str();
  EXPECT_NE(text.find(obs::kObsAdminRequestsTotal), std::string::npos);
  // The shutdown audit record lands before the snapshot is rendered, so
  // its counter bump is part of the final state.
  EXPECT_NE(text.find("\"shutdown\""), std::string::npos);
}

}  // namespace
}  // namespace e2e::net
