#include "policy/lexer.hpp"

#include <gtest/gtest.h>

namespace e2e::policy {
namespace {

TEST(Lexer, KeywordsCaseInsensitive) {
  const auto toks = lex("If ELSE return Grant DENY and OR Not").value();
  ASSERT_EQ(toks.size(), 9u);  // 8 + end
  EXPECT_EQ(toks[0].kind, TokenKind::kIf);
  EXPECT_EQ(toks[1].kind, TokenKind::kElse);
  EXPECT_EQ(toks[2].kind, TokenKind::kReturn);
  EXPECT_EQ(toks[3].kind, TokenKind::kGrant);
  EXPECT_EQ(toks[4].kind, TokenKind::kDeny);
  EXPECT_EQ(toks[5].kind, TokenKind::kAnd);
  EXPECT_EQ(toks[6].kind, TokenKind::kOr);
  EXPECT_EQ(toks[7].kind, TokenKind::kNot);
  EXPECT_EQ(toks[8].kind, TokenKind::kEnd);
}

TEST(Lexer, IdentifiersKeepCase) {
  const auto toks = lex("User Avail_BW Issued_by").value();
  EXPECT_EQ(toks[0].text, "User");
  EXPECT_EQ(toks[1].text, "Avail_BW");
  EXPECT_EQ(toks[2].text, "Issued_by");
}

TEST(Lexer, BandwidthUnits) {
  const auto toks = lex("10Mb/s 5Gb/s 2kb/s 1Mbps 3MB/s 7").value();
  EXPECT_DOUBLE_EQ(toks[0].number, 10e6);
  EXPECT_DOUBLE_EQ(toks[1].number, 5e9);
  EXPECT_DOUBLE_EQ(toks[2].number, 2e3);
  EXPECT_DOUBLE_EQ(toks[3].number, 1e6);
  EXPECT_DOUBLE_EQ(toks[4].number, 3e6 * 8);  // bytes -> bits
  EXPECT_DOUBLE_EQ(toks[5].number, 7.0);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(toks[i].kind, TokenKind::kNumber);
}

TEST(Lexer, TimeOfDayLiterals) {
  const auto toks = lex("8am 5pm 12am 12pm 17:30").value();
  EXPECT_EQ(toks[0].kind, TokenKind::kTimeOfDay);
  EXPECT_DOUBLE_EQ(toks[0].number, 8 * 3.6e9);
  EXPECT_DOUBLE_EQ(toks[1].number, 17 * 3.6e9);
  EXPECT_DOUBLE_EQ(toks[2].number, 0.0);
  EXPECT_DOUBLE_EQ(toks[3].number, 12 * 3.6e9);
  EXPECT_DOUBLE_EQ(toks[4].number, 17 * 3.6e9 + 30 * 6e7);
}

TEST(Lexer, Operators) {
  const auto toks = lex("= == != <= >= < > ( ) { } ,").value();
  EXPECT_EQ(toks[0].kind, TokenKind::kEq);
  EXPECT_EQ(toks[1].kind, TokenKind::kEq);
  EXPECT_EQ(toks[2].kind, TokenKind::kNe);
  EXPECT_EQ(toks[3].kind, TokenKind::kLe);
  EXPECT_EQ(toks[4].kind, TokenKind::kGe);
  EXPECT_EQ(toks[5].kind, TokenKind::kLt);
  EXPECT_EQ(toks[6].kind, TokenKind::kGt);
  EXPECT_EQ(toks[7].kind, TokenKind::kLParen);
  EXPECT_EQ(toks[8].kind, TokenKind::kRParen);
  EXPECT_EQ(toks[9].kind, TokenKind::kLBrace);
  EXPECT_EQ(toks[10].kind, TokenKind::kRBrace);
  EXPECT_EQ(toks[11].kind, TokenKind::kComma);
}

TEST(Lexer, StringLiterals) {
  const auto toks = lex("\"ATLAS experiment\"").value();
  EXPECT_EQ(toks[0].kind, TokenKind::kString);
  EXPECT_EQ(toks[0].text, "ATLAS experiment");
}

TEST(Lexer, CommentsSkipped) {
  const auto toks = lex("If # this is Fig. 6 policy A\nReturn GRANT").value();
  EXPECT_EQ(toks[0].kind, TokenKind::kIf);
  EXPECT_EQ(toks[1].kind, TokenKind::kReturn);
}

TEST(Lexer, LineNumbersTracked) {
  const auto toks = lex("If\nReturn\n\nGRANT").value();
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 4);
}

TEST(Lexer, Errors) {
  EXPECT_FALSE(lex("10Xq/s").ok());          // unknown unit
  EXPECT_FALSE(lex("\"open").ok());          // unterminated string
  EXPECT_FALSE(lex("a ! b").ok());           // stray '!'
  EXPECT_FALSE(lex("13pm").ok());            // bad am/pm hour
  EXPECT_FALSE(lex("25:00").ok());           // bad HH:MM
  EXPECT_FALSE(lex("$").ok());               // unexpected character
}

}  // namespace
}  // namespace e2e::policy
