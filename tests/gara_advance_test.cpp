// Advance reservations end to end: a reservation whose window starts in
// the future must provide premium service exactly during the window.
#include <gtest/gtest.h>

#include "gara/edge_binding.hpp"
#include "testing_world.hpp"

namespace e2e::gara {
namespace {

using testing::ChainWorld;
using testing::WorldUser;

struct AdvanceFixture {
  ChainWorld world;
  WorldUser alice = world.make_user("Alice", 0);
  net::RouterId ra{}, rb{}, rc{};
  net::LinkId ab{};
  // NOTE: member order matters — make_sim() fills the router/link ids the
  // binding initializer reads.
  std::unique_ptr<net::Simulator> sim = make_sim();
  std::unique_ptr<EdgeBinding> binding =
      std::make_unique<EdgeBinding>(*sim, ab);
  net::FlowId flow = 0;

  AdvanceFixture() {
    net::FlowDescription fd;
    fd.name = "alice";
    fd.source = ra;
    fd.destination = rc;
    fd.wants_premium = true;
    fd.pattern = net::TrafficPattern::cbr(9e6);
    flow = sim->add_flow(fd).value();
    binding->bind_flow(alice.dn.to_string(), flow);
    binding->attach(world.broker(0));
  }

  std::unique_ptr<net::Simulator> make_sim() {
    net::Topology topo;
    const auto da = topo.add_domain("DomainA");
    const auto db = topo.add_domain("DomainB");
    const auto dc = topo.add_domain("DomainC");
    ra = topo.add_router(da, "edge-A", true);
    rb = topo.add_router(db, "core-B", false);
    rc = topo.add_router(dc, "edge-C", true);
    ab = topo.add_link(ra, rb, 100e6, milliseconds(5));
    topo.add_link(rb, rc, 100e6, milliseconds(5));
    return std::make_unique<net::Simulator>(std::move(topo), 11);
  }

  std::uint64_t premium_bits() const {
    return sim->stats(flow).delivered_premium_bits;
  }
};

TEST(AdvanceReservation, PremiumOnlyDuringWindow) {
  AdvanceFixture f;
  // Reserve [2s, 4s) in advance, committed at t=0.
  bb::ResSpec spec = f.world.spec(f.alice, 10e6, {seconds(2), seconds(4)});
  spec.burst_bits = 120000;
  const auto msg =
      f.world.engine().build_user_request(f.alice.credentials(), spec, 0);
  const auto outcome = f.world.engine().reserve(*msg, 0);
  ASSERT_TRUE(outcome->reply.granted) << outcome->reply.denial.to_text();
  // Policer not yet installed (window starts at 2s).
  EXPECT_EQ(f.binding->installed_policers(), 0u);

  f.sim->run_until(seconds(2));
  const auto before_window = f.premium_bits();
  EXPECT_EQ(before_window, 0u);  // best effort before the window

  f.sim->run_until(seconds(4));
  const auto during_window = f.premium_bits() - before_window;
  EXPECT_GT(during_window, static_cast<std::uint64_t>(14e6));  // ~18 Mbit
  EXPECT_EQ(f.binding->installed_policers(), 1u);

  f.sim->run_until(seconds(6));
  const auto after_window = f.premium_bits() - before_window - during_window;
  EXPECT_LT(after_window, static_cast<std::uint64_t>(1e6));  // demoted again
}

TEST(AdvanceReservation, EarlyReleaseCancelsScheduledActivation) {
  AdvanceFixture f;
  bb::ResSpec spec = f.world.spec(f.alice, 10e6, {seconds(2), seconds(4)});
  const auto msg =
      f.world.engine().build_user_request(f.alice.credentials(), spec, 0);
  const auto outcome = f.world.engine().reserve(*msg, 0);
  ASSERT_TRUE(outcome->reply.granted);
  // Release before the window opens: activation must never happen.
  ASSERT_TRUE(f.world.engine().release_end_to_end(outcome->reply).ok());
  f.sim->run_until(seconds(5));
  EXPECT_EQ(f.premium_bits(), 0u);
  EXPECT_EQ(f.binding->installed_policers(), 0u);
}

TEST(AdvanceReservation, BackToBackWindowsDoNotOverlapCapacity) {
  // Two reservations near the 100 Mb/s SLA profile in *adjacent* windows
  // both admit (interval bookkeeping), while an overlapping third that
  // would push either window past the profile is denied.
  AdvanceFixture f;
  bb::ResSpec first = f.world.spec(f.alice, 90e6, {seconds(1), seconds(2)});
  bb::ResSpec second = f.world.spec(f.alice, 90e6, {seconds(2), seconds(3)});
  const auto m1 =
      f.world.engine().build_user_request(f.alice.credentials(), first, 0);
  const auto m2 =
      f.world.engine().build_user_request(f.alice.credentials(), second, 0);
  EXPECT_TRUE(f.world.engine().reserve(*m1, 0)->reply.granted);
  EXPECT_TRUE(f.world.engine().reserve(*m2, 0)->reply.granted);
  // 20 Mb/s spanning both windows: 90 + 20 > 100 Mb/s SLA -> denied.
  bb::ResSpec third = f.world.spec(f.alice, 20e6, {seconds(1), seconds(3)});
  const auto m3 =
      f.world.engine().build_user_request(f.alice.credentials(), third, 0);
  EXPECT_FALSE(f.world.engine().reserve(*m3, 0)->reply.granted);
  // 10 Mb/s spanning both windows still fits.
  bb::ResSpec fourth = f.world.spec(f.alice, 10e6, {seconds(1), seconds(3)});
  const auto m4 =
      f.world.engine().build_user_request(f.alice.credentials(), fourth, 0);
  EXPECT_TRUE(f.world.engine().reserve(*m4, 0)->reply.granted);
}

}  // namespace
}  // namespace e2e::gara
