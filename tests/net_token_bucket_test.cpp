#include "net/token_bucket.hpp"

#include <gtest/gtest.h>

namespace e2e::net {
namespace {

TEST(TokenBucket, StartsFull) {
  TokenBucket tb(1e6, 10000);
  EXPECT_DOUBLE_EQ(tb.tokens(0), 10000);
  EXPECT_TRUE(tb.conforms(10000, 0));
  EXPECT_FALSE(tb.conforms(1, 0));
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket tb(1e6, 10000);  // 1 Mb/s, 10 kb burst
  EXPECT_TRUE(tb.conforms(10000, 0));
  // After 5 ms at 1 Mb/s: 5000 bits refilled.
  EXPECT_DOUBLE_EQ(tb.tokens(milliseconds(5)), 5000);
  EXPECT_TRUE(tb.conforms(5000, milliseconds(5)));
  EXPECT_FALSE(tb.conforms(1000, milliseconds(5)));
}

TEST(TokenBucket, CapsAtBurst) {
  TokenBucket tb(1e6, 10000);
  EXPECT_TRUE(tb.conforms(10000, 0));
  // Long idle: tokens cap at burst, not rate * elapsed.
  EXPECT_DOUBLE_EQ(tb.tokens(seconds(100)), 10000);
}

TEST(TokenBucket, NonConformingConsumesNothing) {
  TokenBucket tb(1e6, 8000);
  EXPECT_TRUE(tb.conforms(8000, 0));
  EXPECT_FALSE(tb.conforms(5000, milliseconds(1)));  // only 1000 available
  // The failed attempt must not have burned the 1000 tokens.
  EXPECT_DOUBLE_EQ(tb.tokens(milliseconds(1)), 1000);
}

TEST(TokenBucket, LongRunConformanceMatchesRate) {
  // Property: over a long window, admitted traffic <= rate * time + burst.
  TokenBucket tb(10e6, 15000);
  const std::uint32_t pkt = 12000;
  std::uint64_t admitted_bits = 0;
  // Offer 2x the contracted rate for 1 second.
  const SimDuration gap = static_cast<SimDuration>(pkt / 20e6 * 1e6);
  for (SimTime t = 0; t < seconds(1); t += gap) {
    if (tb.conforms(pkt, t)) admitted_bits += pkt;
  }
  EXPECT_LE(admitted_bits, 10e6 + 15000 + pkt);
  EXPECT_GE(admitted_bits, 10e6 * 0.95);  // bucket should not under-admit
}

TEST(TokenBucket, ReconfigureClampsTokens) {
  TokenBucket tb(1e6, 100000);
  tb.reconfigure(2e6, 5000, 0);
  EXPECT_DOUBLE_EQ(tb.tokens(0), 5000);
  EXPECT_DOUBLE_EQ(tb.rate(), 2e6);
  // Refill now follows the new rate: 2 Mb/s for 1 ms = 2000 bits.
  EXPECT_TRUE(tb.conforms(5000, 0));
  EXPECT_DOUBLE_EQ(tb.tokens(milliseconds(1)), 2000);
}

TEST(TokenBucket, TimeNeverRunsBackwards) {
  TokenBucket tb(1e6, 10000);
  EXPECT_TRUE(tb.conforms(10000, milliseconds(10)));
  // An out-of-order query at an earlier time must not refill or crash.
  EXPECT_DOUBLE_EQ(tb.tokens(milliseconds(5)), 0);
}

TEST(TokenBucket, ZeroRateNeverRefills) {
  TokenBucket tb(0, 1000);
  EXPECT_TRUE(tb.conforms(1000, 0));
  EXPECT_FALSE(tb.conforms(1, seconds(1000)));
}

}  // namespace
}  // namespace e2e::net
