// Tunnel establishment and per-flow signalling inside tunnels.
#include <gtest/gtest.h>

#include "testing_world.hpp"

namespace e2e::sig {
namespace {

using testing::ChainWorld;
using testing::ChainWorldConfig;
using testing::WorldUser;

struct TunnelFixture {
  ChainWorld world;
  WorldUser alice = world.make_user("Alice", 0);
  std::string tunnel_id;

  TunnelFixture() {
    bb::ResSpec agg = world.spec(alice, 50e6, {0, seconds(3600)});
    agg.is_tunnel = true;
    const auto msg =
        world.engine().build_user_request(alice.credentials(), agg, 0);
    const auto outcome = world.engine().reserve(*msg, seconds(1));
    EXPECT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->reply.granted) << outcome->reply.denial.to_text();
    tunnel_id = outcome->reply.tunnel_id;
  }
};

TEST(Tunnel, EstablishmentCreatesEndDomainState) {
  TunnelFixture f;
  ASSERT_FALSE(f.tunnel_id.empty());
  const auto info = f.world.engine().tunnel_info(f.tunnel_id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->source_domain, "DomainA");
  EXPECT_EQ(info->destination_domain, "DomainC");
  EXPECT_DOUBLE_EQ(info->aggregate_rate, 50e6);
  EXPECT_EQ(info->active_flows, 0u);
  // Both end brokers registered the tunnel; the transit domain did not.
  EXPECT_EQ(f.world.broker(0).tunnel_count(), 1u);
  EXPECT_EQ(f.world.broker(1).tunnel_count(), 0u);
  EXPECT_EQ(f.world.broker(2).tunnel_count(), 1u);
}

TEST(Tunnel, PerFlowTouchesOnlyEndDomains) {
  TunnelFixture f;
  const auto before_b = f.world.broker(1).counters().requests;
  f.world.fabric().reset_counters();

  const auto flow = f.world.engine().reserve_in_tunnel(
      f.tunnel_id, f.alice.dn.to_string(), 5e6, {0, seconds(60)}, seconds(2));
  ASSERT_TRUE(flow.ok()) << flow.error().to_text();
  ASSERT_TRUE(flow->reply.granted) << flow->reply.denial.to_text();
  // Only the two end domains processed anything.
  EXPECT_EQ(flow->domains_contacted, 2u);
  EXPECT_EQ(f.world.broker(1).counters().requests, before_b);
  // Exactly three messages: user->source, source->dest, dest->source.
  EXPECT_EQ(flow->messages, 3u);
  // Nothing crossed the A-B or B-C signalling links.
  EXPECT_EQ(f.world.fabric().between("DomainA", "DomainB").messages, 0u);
  EXPECT_EQ(f.world.fabric().between("DomainB", "DomainC").messages, 0u);
}

TEST(Tunnel, AggregateLimitEnforcedAcrossFlows) {
  TunnelFixture f;
  // 50 Mb/s aggregate admits ten 5 Mb/s flows, not eleven.
  for (int i = 0; i < 10; ++i) {
    const auto flow = f.world.engine().reserve_in_tunnel(
        f.tunnel_id, f.alice.dn.to_string(), 5e6, {0, seconds(60)},
        seconds(2));
    ASSERT_TRUE(flow->reply.granted) << "flow " << i;
  }
  const auto over = f.world.engine().reserve_in_tunnel(
      f.tunnel_id, f.alice.dn.to_string(), 5e6, {0, seconds(60)}, seconds(2));
  ASSERT_FALSE(over->reply.granted);
  EXPECT_EQ(over->reply.denial.code, ErrorCode::kAdmissionRejected);
  EXPECT_EQ(f.world.engine().tunnel_info(f.tunnel_id)->active_flows, 10u);
}

TEST(Tunnel, DisjointIntervalsReuseAggregate) {
  TunnelFixture f;
  ASSERT_TRUE(f.world.engine()
                  .reserve_in_tunnel(f.tunnel_id, f.alice.dn.to_string(),
                                     50e6, {0, seconds(60)}, seconds(2))
                  ->reply.granted);
  // Full aggregate again, in a later window.
  EXPECT_TRUE(f.world.engine()
                  .reserve_in_tunnel(f.tunnel_id, f.alice.dn.to_string(),
                                     50e6, {seconds(120), seconds(180)},
                                     seconds(2))
                  ->reply.granted);
}

TEST(Tunnel, UnauthorizedUserDenied) {
  TunnelFixture f;
  const WorldUser eve = f.world.make_user("Eve", 0);
  const auto flow = f.world.engine().reserve_in_tunnel(
      f.tunnel_id, eve.dn.to_string(), 1e6, {0, seconds(60)}, seconds(2));
  ASSERT_FALSE(flow->reply.granted);
  EXPECT_EQ(flow->reply.denial.code, ErrorCode::kPolicyDenied);
}

TEST(Tunnel, ReleaseRestoresAggregate) {
  TunnelFixture f;
  const auto flow = f.world.engine().reserve_in_tunnel(
      f.tunnel_id, f.alice.dn.to_string(), 50e6, {0, seconds(60)}, seconds(2));
  ASSERT_TRUE(flow->reply.granted);
  const std::string sub_id = flow->reply.handles[0].second;
  ASSERT_TRUE(f.world.engine().release_in_tunnel(f.tunnel_id, sub_id).ok());
  EXPECT_TRUE(f.world.engine()
                  .reserve_in_tunnel(f.tunnel_id, f.alice.dn.to_string(),
                                     50e6, {0, seconds(60)}, seconds(2))
                  ->reply.granted);
}

TEST(Tunnel, UnknownTunnelFails) {
  TunnelFixture f;
  EXPECT_FALSE(f.world.engine()
                   .reserve_in_tunnel("tunnel-999", f.alice.dn.to_string(),
                                      1e6, {0, seconds(60)}, 0)
                   .ok());
  EXPECT_FALSE(
      f.world.engine().release_in_tunnel("tunnel-999", "sub-1").ok());
}

TEST(Tunnel, SourceRollbackWhenDestinationRejects) {
  TunnelFixture f;
  // Exhaust the destination side only, by releasing at the source between
  // requests — simplest deterministic trigger: allocate the full aggregate
  // at destination via a first flow, then release only at the source side.
  // Instead, drive a mismatch through the public API: allocate 30 then try
  // 30 (dest rejects); source-side allocation must have been rolled back,
  // so a subsequent 20 fits.
  ASSERT_TRUE(f.world.engine()
                  .reserve_in_tunnel(f.tunnel_id, f.alice.dn.to_string(),
                                     30e6, {0, seconds(60)}, seconds(2))
                  ->reply.granted);
  ASSERT_FALSE(f.world.engine()
                   .reserve_in_tunnel(f.tunnel_id, f.alice.dn.to_string(),
                                      30e6, {0, seconds(60)}, seconds(2))
                   ->reply.granted);
  EXPECT_TRUE(f.world.engine()
                  .reserve_in_tunnel(f.tunnel_id, f.alice.dn.to_string(),
                                     20e6, {0, seconds(60)}, seconds(2))
                  ->reply.granted);
}

TEST(Tunnel, FlowSignallingChannelIsAuthenticated) {
  // The per-flow path exercises seal/open on the pinned direct channel; a
  // tunnel with many flows keeps strictly increasing sequence numbers.
  TunnelFixture f;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(f.world.engine()
                    .reserve_in_tunnel(f.tunnel_id, f.alice.dn.to_string(),
                                       1e6, {0, seconds(60)}, seconds(2))
                    ->reply.granted);
  }
  EXPECT_EQ(f.world.engine().tunnel_info(f.tunnel_id)->active_flows, 5u);
}

}  // namespace
}  // namespace e2e::sig
