#include "bb/admission.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace e2e::bb {
namespace {

TEST(CapacityPool, EmptyPoolAdmitsUpToCapacity) {
  CapacityPool pool(100e6);
  EXPECT_TRUE(pool.can_admit({0, seconds(10)}, 100e6));
  EXPECT_FALSE(pool.can_admit({0, seconds(10)}, 100e6 + 1));
  EXPECT_DOUBLE_EQ(pool.headroom({0, seconds(10)}), 100e6);
}

TEST(CapacityPool, CommitReducesHeadroom) {
  CapacityPool pool(100e6);
  ASSERT_TRUE(pool.commit("r1", {0, seconds(10)}, 60e6).ok());
  EXPECT_DOUBLE_EQ(pool.headroom({0, seconds(10)}), 40e6);
  EXPECT_TRUE(pool.can_admit({0, seconds(10)}, 40e6));
  EXPECT_FALSE(pool.can_admit({0, seconds(10)}, 40e6 + 1));
}

TEST(CapacityPool, DisjointIntervalsDoNotInteract) {
  CapacityPool pool(100e6);
  ASSERT_TRUE(pool.commit("morning", {0, seconds(10)}, 100e6).ok());
  EXPECT_TRUE(pool.can_admit({seconds(10), seconds(20)}, 100e6));
}

TEST(CapacityPool, OverlapPeakIsEnforced) {
  CapacityPool pool(100e6);
  ASSERT_TRUE(pool.commit("a", {0, seconds(10)}, 50e6).ok());
  ASSERT_TRUE(pool.commit("b", {seconds(5), seconds(15)}, 50e6).ok());
  // Peak in [5,10) is 100 Mb/s: nothing fits there.
  EXPECT_FALSE(pool.can_admit({seconds(7), seconds(8)}, 1));
  // But [10,15) has 50 Mb/s headroom.
  EXPECT_TRUE(pool.can_admit({seconds(10), seconds(15)}, 50e6));
}

TEST(CapacityPool, PeakSeenEvenWhenRequestStartsEarlier) {
  CapacityPool pool(100e6);
  ASSERT_TRUE(pool.commit("late", {seconds(50), seconds(60)}, 90e6).ok());
  // A request spanning the busy region must see the future peak.
  EXPECT_FALSE(pool.can_admit({0, seconds(100)}, 20e6));
  EXPECT_TRUE(pool.can_admit({0, seconds(100)}, 10e6));
}

TEST(CapacityPool, ReleaseRestoresCapacity) {
  CapacityPool pool(10e6);
  ASSERT_TRUE(pool.commit("r", {0, seconds(1)}, 10e6).ok());
  EXPECT_FALSE(pool.can_admit({0, seconds(1)}, 1e6));
  ASSERT_TRUE(pool.release("r").ok());
  EXPECT_TRUE(pool.can_admit({0, seconds(1)}, 10e6));
  EXPECT_EQ(pool.commitment_count(), 0u);
}

TEST(CapacityPool, DuplicateKeyRejected) {
  CapacityPool pool(10e6);
  ASSERT_TRUE(pool.commit("r", {0, seconds(1)}, 1e6).ok());
  const Status dup = pool.commit("r", {seconds(2), seconds(3)}, 1e6);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, ErrorCode::kConflict);
}

TEST(CapacityPool, ReleaseUnknownKeyFails) {
  CapacityPool pool(10e6);
  EXPECT_FALSE(pool.release("ghost").ok());
}

TEST(CapacityPool, InvalidCommitRejected) {
  CapacityPool pool(10e6);
  EXPECT_FALSE(pool.commit("bad", {seconds(5), seconds(5)}, 1e6).ok());
  EXPECT_FALSE(pool.commit("bad2", {seconds(5), seconds(1)}, 1e6).ok());
  EXPECT_FALSE(pool.commit("bad3", {0, seconds(1)}, -1.0).ok());
}

TEST(CapacityPool, CommittedAtInstant) {
  CapacityPool pool(100e6);
  ASSERT_TRUE(pool.commit("a", {seconds(1), seconds(3)}, 10e6).ok());
  ASSERT_TRUE(pool.commit("b", {seconds(2), seconds(4)}, 20e6).ok());
  EXPECT_DOUBLE_EQ(pool.committed_at(0), 0);
  EXPECT_DOUBLE_EQ(pool.committed_at(seconds(1)), 10e6);
  EXPECT_DOUBLE_EQ(pool.committed_at(seconds(2)), 30e6);
  EXPECT_DOUBLE_EQ(pool.committed_at(seconds(3)), 20e6);
  EXPECT_DOUBLE_EQ(pool.committed_at(seconds(4)), 0);
}

// Regression: the pre-timeline scan collected boundary points with
// duplicates and no ordering guarantee, so many commitments sharing one
// start instant could mis-evaluate the peak. Pile 40 flows onto the same
// start with staggered ends and check the step-down profile exactly, on
// both the timeline index and the reference scan.
TEST(CapacityPool, ManySameStartCommitmentsPeakExact) {
  CapacityPool pool(1000e6);
  constexpr int kFlows = 40;
  for (int i = 0; i < kFlows; ++i) {
    ASSERT_TRUE(pool
                    .commit("f" + std::to_string(i),
                            {seconds(10), seconds(11 + i)}, 1e6)
                    .ok());
  }
  // Shared start + staggered ends: one boundary per distinct instant.
  EXPECT_EQ(pool.boundary_count(), static_cast<std::size_t>(kFlows + 1));
  // Peak over the whole span is all flows stacked at the shared start.
  EXPECT_DOUBLE_EQ(pool.peak_committed({0, seconds(100)}),
                   static_cast<double>(kFlows) * 1e6);
  EXPECT_DOUBLE_EQ(pool.peak_committed_reference({0, seconds(100)}),
                   static_cast<double>(kFlows) * 1e6);
  // The profile steps down by exactly one flow per second after t=11.
  for (int i = 0; i < kFlows; ++i) {
    const double expect = static_cast<double>(kFlows - i) * 1e6;
    EXPECT_DOUBLE_EQ(pool.peak_committed({seconds(10 + i), seconds(200)}),
                     expect)
        << "suffix starting at " << 10 + i << " s";
    EXPECT_DOUBLE_EQ(pool.committed_at(seconds(10 + i)), expect);
    EXPECT_DOUBLE_EQ(pool.committed_at_reference(seconds(10 + i)), expect);
  }
  // A request overlapping only the tail sees only the tail's load.
  EXPECT_TRUE(pool.can_admit({seconds(11 + kFlows - 1), seconds(60)},
                             1000e6 - 1e6));
  EXPECT_FALSE(pool.can_admit({seconds(10), seconds(60)},
                              1000e6 - (kFlows - 1) * 1e6));
  // Releasing every flow empties the index completely.
  for (int i = 0; i < kFlows; ++i) {
    ASSERT_TRUE(pool.release("f" + std::to_string(i)).ok());
  }
  EXPECT_EQ(pool.boundary_count(), 0u);
}

// Property: under random workloads, committed rate never exceeds capacity
// at any commitment boundary.
class CapacityPoolRandomWorkload
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CapacityPoolRandomWorkload, NeverOversubscribes) {
  Rng rng(GetParam());
  const double capacity = 100e6;
  CapacityPool pool(capacity);
  std::vector<std::string> held;
  std::vector<SimTime> boundaries;
  for (int i = 0; i < 300; ++i) {
    if (!held.empty() && rng.next_bool(0.3)) {
      const std::size_t pick = rng.next_below(held.size());
      ASSERT_TRUE(pool.release(held[pick]).ok());
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(pick));
      continue;
    }
    const SimTime start = static_cast<SimTime>(rng.next_below(1000)) * 1000;
    const SimDuration len =
        (1 + static_cast<SimDuration>(rng.next_below(200))) * 1000;
    const double rate = 1e6 * static_cast<double>(1 + rng.next_below(50));
    const std::string key = "r" + std::to_string(i);
    if (pool.commit(key, {start, start + len}, rate).ok()) {
      held.push_back(key);
      boundaries.push_back(start);
      boundaries.push_back(start + len - 1);
    }
    // Invariant: no instant exceeds capacity.
    for (SimTime t : boundaries) {
      ASSERT_LE(pool.committed_at(t), capacity + 1e-3);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CapacityPoolRandomWorkload,
                         ::testing::Values(1, 7, 42, 1234));

}  // namespace
}  // namespace e2e::bb
