#include "net/simulator.hpp"

#include <gtest/gtest.h>

namespace e2e::net {
namespace {

/// 3-domain chain with a 100 Mb/s backbone.
struct Chain {
  Topology topo;
  RouterId ra, rb, rc;
  LinkId ab, bc;

  explicit Chain(double capacity = 100e6) {
    const DomainId da = topo.add_domain("A");
    const DomainId db = topo.add_domain("B");
    const DomainId dc = topo.add_domain("C");
    ra = topo.add_router(da, "edge-A", true);
    rb = topo.add_router(db, "core-B", false);
    rc = topo.add_router(dc, "edge-C", true);
    ab = topo.add_link(ra, rb, capacity, milliseconds(5));
    bc = topo.add_link(rb, rc, capacity, milliseconds(5));
  }
};

FlowDescription cbr_flow(const char* name, RouterId src, RouterId dst,
                         double rate, bool premium) {
  FlowDescription d;
  d.name = name;
  d.source = src;
  d.destination = dst;
  d.wants_premium = premium;
  d.pattern = TrafficPattern::cbr(rate);
  return d;
}

TEST(Simulator, CbrDeliversAtOfferedRate) {
  Chain c;
  Simulator sim(c.topo);
  const FlowId f =
      sim.add_flow(cbr_flow("alice", c.ra, c.rc, 10e6, false)).value();
  sim.run_until(seconds(2));
  const FlowStats& st = sim.stats(f);
  EXPECT_GT(st.emitted_packets, 0u);
  EXPECT_EQ(st.dropped_queue_packets, 0u);
  EXPECT_EQ(st.dropped_policer_packets, 0u);
  // Goodput within 5% of offered rate (boundary effects only).
  EXPECT_NEAR(st.goodput_bits_per_s(seconds(2)), 10e6, 0.5e6);
}

TEST(Simulator, ConservationInvariant) {
  Chain c(20e6);
  Simulator sim(c.topo);
  // Overload: two 15 Mb/s Poisson flows into a 20 Mb/s backbone. (Poisson,
  // not CBR: synchronized CBR flows phase-lock and one of them absorbs all
  // the loss deterministically.)
  FlowDescription d1 = cbr_flow("f1", c.ra, c.rc, 15e6, false);
  d1.pattern = TrafficPattern::poisson(15e6);
  FlowDescription d2 = d1;
  d2.name = "f2";
  const FlowId f1 = sim.add_flow(d1).value();
  const FlowId f2 = sim.add_flow(d2).value();
  // Stop sources at 1s, then drain queues.
  sim.run_until(seconds(4));
  for (FlowId f : {f1, f2}) {
    const FlowStats& st = sim.stats(f);
    EXPECT_GT(st.dropped_queue_packets, 0u);  // congestion happened
  }
  // Conservation holds per flow only after queues drain; check emitted >=
  // delivered + dropped and that the gap (in-flight) is tiny.
  for (FlowId f : {f1, f2}) {
    const FlowStats& st = sim.stats(f);
    const std::uint64_t accounted = st.delivered_packets +
                                    st.dropped_queue_packets +
                                    st.dropped_policer_packets;
    EXPECT_LE(accounted, st.emitted_packets);
    EXPECT_LE(st.emitted_packets - accounted, 130u);  // <= queue capacity + in flight
  }
}

TEST(Simulator, PropagationDelayFloor) {
  Chain c;
  Simulator sim(c.topo);
  const FlowId f =
      sim.add_flow(cbr_flow("slow", c.ra, c.rc, 1e6, false)).value();
  sim.run_until(seconds(1));
  // Two 5 ms hops: mean delay must be >= 10 ms plus transmission time.
  EXPECT_GE(sim.stats(f).mean_delay_us(), 10000.0);
  EXPECT_LT(sim.stats(f).mean_delay_us(), 12000.0);  // uncongested
}

TEST(Simulator, EdgePolicerMarksWithinProfile) {
  Chain c;
  Simulator sim(c.topo);
  const FlowId f =
      sim.add_flow(cbr_flow("alice", c.ra, c.rc, 10e6, true)).value();
  sim.set_flow_policer(c.ab, f, TokenBucket(12e6, 30000),
                       sla::ExcessTreatment::kDrop);
  sim.run_until(seconds(2));
  const FlowStats& st = sim.stats(f);
  // Entire flow fits the profile: everything delivered as premium.
  EXPECT_EQ(st.dropped_policer_packets, 0u);
  EXPECT_NEAR(st.premium_goodput_bits_per_s(seconds(2)), 10e6, 0.5e6);
}

TEST(Simulator, EdgePolicerDropsExcess) {
  Chain c;
  Simulator sim(c.topo);
  // Flow offers 20 Mb/s but reserved only 10 Mb/s.
  const FlowId f =
      sim.add_flow(cbr_flow("greedy", c.ra, c.rc, 20e6, true)).value();
  sim.set_flow_policer(c.ab, f, TokenBucket(10e6, 30000),
                       sla::ExcessTreatment::kDrop);
  sim.run_until(seconds(2));
  const FlowStats& st = sim.stats(f);
  EXPECT_GT(st.dropped_policer_packets, 0u);
  // Premium goodput clamps to the reservation.
  EXPECT_NEAR(st.premium_goodput_bits_per_s(seconds(2)), 10e6, 1e6);
}

TEST(Simulator, EdgePolicerDowngradesExcess) {
  Chain c;
  Simulator sim(c.topo);
  const FlowId f =
      sim.add_flow(cbr_flow("bursty", c.ra, c.rc, 20e6, true)).value();
  sim.set_flow_policer(c.ab, f, TokenBucket(10e6, 30000),
                       sla::ExcessTreatment::kDowngrade);
  sim.run_until(seconds(2));
  const FlowStats& st = sim.stats(f);
  EXPECT_GT(st.downgraded_packets, 0u);
  EXPECT_EQ(st.dropped_policer_packets, 0u);
  // Everything still arrives (uncongested link), but only ~10 Mb/s as EF.
  EXPECT_NEAR(st.goodput_bits_per_s(seconds(2)), 20e6, 1e6);
  EXPECT_NEAR(st.premium_goodput_bits_per_s(seconds(2)), 10e6, 1e6);
}

TEST(Simulator, UnreservedPremiumRequestStaysBestEffort) {
  Chain c;
  Simulator sim(c.topo);
  // wants_premium but nobody configured an edge policer -> plain BE.
  const FlowId f =
      sim.add_flow(cbr_flow("nores", c.ra, c.rc, 5e6, true)).value();
  sim.run_until(seconds(1));
  EXPECT_EQ(sim.stats(f).delivered_premium_bits, 0u);
  EXPECT_GT(sim.stats(f).delivered_bits, 0u);
}

TEST(Simulator, PriorityProtectsPremiumUnderCongestion) {
  Chain c(20e6);  // tight backbone
  Simulator sim(c.topo);
  const FlowId premium =
      sim.add_flow(cbr_flow("premium", c.ra, c.rc, 8e6, true)).value();
  const FlowId crowd =
      sim.add_flow(cbr_flow("crowd", c.ra, c.rc, 30e6, false)).value();
  sim.set_flow_policer(c.ab, premium, TokenBucket(10e6, 30000),
                       sla::ExcessTreatment::kDrop);
  sim.run_until(seconds(2));
  const FlowStats& p = sim.stats(premium);
  const FlowStats& b = sim.stats(crowd);
  // Premium flow rides the EF queue: no queue drops, full goodput.
  EXPECT_EQ(p.dropped_queue_packets, 0u);
  EXPECT_NEAR(p.premium_goodput_bits_per_s(seconds(2)), 8e6, 0.5e6);
  // The best-effort crowd takes the entire loss.
  EXPECT_GT(b.dropped_queue_packets, 0u);
}

TEST(Simulator, AggregatePolicerBlindToFlows) {
  Chain c;
  Simulator sim(c.topo);
  FlowDescription d1 = cbr_flow("f1", c.ra, c.rc, 10e6, true);
  d1.pattern = TrafficPattern::poisson(10e6);
  FlowDescription d2 = d1;
  d2.name = "f2";
  const FlowId f1 = sim.add_flow(d1).value();
  const FlowId f2 = sim.add_flow(d2).value();
  // Edge marks both flows fully (each within its own reservation)...
  sim.set_flow_policer(c.ab, f1, TokenBucket(12e6, 30000),
                       sla::ExcessTreatment::kDrop);
  sim.set_flow_policer(c.ab, f2, TokenBucket(12e6, 30000),
                       sla::ExcessTreatment::kDrop);
  // ...but the B->C boundary only admits a 10 Mb/s EF aggregate.
  sim.set_aggregate_policer(c.bc, TokenBucket(10e6, 30000),
                            sla::ExcessTreatment::kDrop);
  sim.run_until(seconds(2));
  const FlowStats& s1 = sim.stats(f1);
  const FlowStats& s2 = sim.stats(f2);
  // Both flows lose packets: the aggregate policer cannot tell them apart.
  EXPECT_GT(s1.dropped_policer_packets, 0u);
  EXPECT_GT(s2.dropped_policer_packets, 0u);
  const double total_premium = s1.premium_goodput_bits_per_s(seconds(2)) +
                               s2.premium_goodput_bits_per_s(seconds(2));
  EXPECT_NEAR(total_premium, 10e6, 1.5e6);
}

TEST(Simulator, FlowStopTimeHonored) {
  Chain c;
  Simulator sim(c.topo);
  FlowDescription d = cbr_flow("short", c.ra, c.rc, 10e6, false);
  d.stop = seconds(1);
  const FlowId f = sim.add_flow(d).value();
  sim.run_until(seconds(3));
  const FlowStats& st = sim.stats(f);
  // Emitted about 1 second's worth of packets, all delivered by t=3.
  EXPECT_NEAR(static_cast<double>(st.emitted_bits), 10e6, 0.5e6);
  EXPECT_EQ(st.delivered_packets, st.emitted_packets);
}

TEST(Simulator, PoissonMeanRate) {
  Chain c;
  Simulator sim(c.topo, /*seed=*/7);
  FlowDescription d = cbr_flow("poisson", c.ra, c.rc, 10e6, false);
  d.pattern = TrafficPattern::poisson(10e6);
  const FlowId f = sim.add_flow(d).value();
  sim.run_until(seconds(5));
  EXPECT_NEAR(sim.stats(f).goodput_bits_per_s(seconds(5)), 10e6, 1e6);
}

TEST(Simulator, OnOffMeanRateRoughlyHalved) {
  Chain c;
  Simulator sim(c.topo, /*seed=*/11);
  FlowDescription d = cbr_flow("onoff", c.ra, c.rc, 10e6, false);
  d.pattern = TrafficPattern::on_off(10e6, milliseconds(100),
                                     milliseconds(100));
  const FlowId f = sim.add_flow(d).value();
  sim.run_until(seconds(5));
  // Equal mean on/off: long-run rate ~ half the on-rate.
  EXPECT_NEAR(sim.stats(f).goodput_bits_per_s(seconds(5)), 5e6, 1.5e6);
}

TEST(Simulator, RejectsBadFlows) {
  Chain c;
  Simulator sim(c.topo);
  EXPECT_FALSE(sim.add_flow(cbr_flow("self", c.ra, c.ra, 1e6, false)).ok());
  EXPECT_FALSE(sim.add_flow(cbr_flow("zero", c.ra, c.rc, 0, false)).ok());
  // No route against the link direction.
  EXPECT_FALSE(sim.add_flow(cbr_flow("back", c.rc, c.ra, 1e6, false)).ok());
}

}  // namespace
}  // namespace e2e::net
