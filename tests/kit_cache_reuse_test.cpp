// End-to-end check of the verification caches on the paper's fig5 shape: a
// 6-domain hop-by-hop chain signs and re-verifies the same certificates and
// RAR layers at every hop, so repeated reservations must produce cache hits
// — while grants stay identical to the uncached outcome, with or without
// the optional parallel chain verification.
#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "crypto/verify_cache.hpp"
#include "kit/chain_world.hpp"
#include "obs/instruments.hpp"

namespace e2e::kit {
namespace {

obs::Counter& hit_counter(const char* name) {
  return obs::MetricsRegistry::global().counter(name, {{"result", "hit"}});
}

ChainWorldConfig six_domain_config() {
  ChainWorldConfig config;
  config.domains = 6;
  return config;
}

TEST(KitCacheReuse, RepeatedSixHopReservationsHitVerifyCache) {
  crypto::VerifyCache::global().clear();
  ChainWorld world(six_domain_config());
  WorldUser alice = world.make_user("Alice", 0);

  obs::Counter& verify_hits =
      hit_counter(obs::kCryptoVerifyCacheLookupsTotal);
  obs::Counter& tbs_hits = hit_counter(obs::kCryptoTbsCacheLookupsTotal);

  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 1e6), 0);
  ASSERT_TRUE(msg.ok());
  const auto first = world.engine().reserve(*msg, seconds(1));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->reply.granted);
  EXPECT_EQ(first->domains_contacted, 6u);

  const std::uint64_t verify_hits_before = verify_hits.value();
  const std::uint64_t tbs_hits_before = tbs_hits.value();

  // Same user, same chain, a second reservation: every hop re-verifies the
  // same capability certificates and user layers — those must be memo hits.
  const auto msg2 = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 1e6), minutes(1));
  ASSERT_TRUE(msg2.ok());
  const auto second = world.engine().reserve(*msg2, minutes(1));
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->reply.granted);

  EXPECT_GT(verify_hits.value(), verify_hits_before);
  EXPECT_GT(tbs_hits.value(), tbs_hits_before);

  // The memoized run must grant exactly what the first run granted
  // (same per-domain handles shape, same path).
  ASSERT_EQ(second->reply.handles.size(), first->reply.handles.size());
  for (std::size_t i = 0; i < first->reply.handles.size(); ++i) {
    EXPECT_EQ(second->reply.handles[i].first, first->reply.handles[i].first);
  }
  EXPECT_EQ(second->latency, first->latency);
}

TEST(KitCacheReuse, CachedRunMatchesUncachedRunByteForByte) {
  // Same seed, same requests: one world with the verify cache disabled, one
  // with it enabled. The replies must be byte-identical — caching is an
  // optimization, never a semantic change.
  auto run = [](bool cached) {
    crypto::VerifyCache::global().set_capacity(
        cached ? crypto::VerifyCache::kDefaultCapacity : 0);
    ChainWorld world(six_domain_config());
    WorldUser alice = world.make_user("Alice", 0);
    Bytes out;
    for (int i = 0; i < 3; ++i) {
      const auto msg = world.engine().build_user_request(
          alice.credentials(), world.spec(alice, 1e6), minutes(i));
      const auto outcome = world.engine().reserve(*msg, minutes(i));
      append(out, outcome->reply.encode());
    }
    return out;
  };
  const Bytes uncached = run(false);
  const Bytes cached = run(true);
  crypto::VerifyCache::global().set_capacity(
      crypto::VerifyCache::kDefaultCapacity);
  EXPECT_EQ(cached, uncached);
}

TEST(KitCacheReuse, ParallelChainVerificationMatchesSerial) {
  auto run = [](ThreadPool* pool) {
    ChainWorld world(six_domain_config());
    if (pool != nullptr) world.engine().set_verify_pool(pool);
    WorldUser alice = world.make_user("Alice", 0);
    const auto msg = world.engine().build_user_request(
        alice.credentials(), world.spec(alice, 1e6), 0);
    const auto outcome = world.engine().reserve(*msg, seconds(1));
    EXPECT_TRUE(outcome.ok());
    return outcome->reply.encode();
  };
  ThreadPool pool(4);
  EXPECT_EQ(run(&pool), run(nullptr));
}

}  // namespace
}  // namespace e2e::kit
