#include "bb/bandwidth_broker.hpp"

#include <gtest/gtest.h>

namespace e2e::bb {
namespace {

const TimeInterval kLongValidity{0, hours(24 * 365)};

struct BrokerFixture {
  Rng rng{2024};
  crypto::CertificateAuthority ca{
      crypto::DistinguishedName::make("CA-B", "DomainB"), rng, kLongValidity,
      512};
  BandwidthBroker broker = make_broker();

  BandwidthBroker make_broker() {
    policy::PolicyServer server(
        "DomainB",
        policy::Policy::compile("If BW <= 50Mb/s Return GRANT\nReturn DENY")
            .value());
    return BandwidthBroker(BrokerConfig{"DomainB", 100e6, 512},
                           std::move(server), ca, rng, kLongValidity);
  }

  ResSpec spec(double rate, TimeInterval iv = {0, seconds(60)}) {
    ResSpec s;
    s.user = "CN=Alice,O=DomainA,C=US";
    s.source_domain = "DomainA";
    s.destination_domain = "DomainC";
    s.rate_bits_per_s = rate;
    s.burst_bits = 30000;
    s.interval = iv;
    return s;
  }

  sla::ServiceLevelAgreement sla_from_a(double rate) {
    sla::ServiceLevelAgreement a;
    a.from_domain = "DomainA";
    a.to_domain = "DomainB";
    a.profile.rate_bits_per_s = rate;
    a.profile.burst_bits = 50000;
    a.validity = kLongValidity;
    a.price_per_mbit_s = 0.01;
    return a;
  }
};

TEST(Broker, IdentityMaterial) {
  BrokerFixture f;
  EXPECT_EQ(f.broker.domain(), "DomainB");
  EXPECT_EQ(f.broker.dn().common_name(), "BB-DomainB");
  EXPECT_TRUE(f.broker.certificate().verify_signature(f.ca.public_key()));
  // Broker signatures verify against its certificate's key.
  const Bytes sig = f.broker.sign(to_bytes("message"));
  EXPECT_TRUE(crypto::verify(f.broker.certificate().subject_public_key(),
                             to_bytes("message"), sig));
  // Its own CA is a trust anchor.
  EXPECT_TRUE(f.broker.trust_store().is_anchor(f.ca.name()));
}

TEST(Broker, LocalRequestAdmission) {
  BrokerFixture f;
  const auto id = f.broker.commit(f.spec(40e6), "");
  ASSERT_TRUE(id.ok()) << id.error().to_text();
  EXPECT_NE(f.broker.find(*id), nullptr);
  EXPECT_EQ(f.broker.find(*id)->state, ReservationState::kGranted);
  EXPECT_EQ(f.broker.reservation_count(), 1u);
  EXPECT_DOUBLE_EQ(f.broker.committed_at(seconds(30)), 40e6);
}

TEST(Broker, CapacityExhaustionDenies) {
  BrokerFixture f;
  ASSERT_TRUE(f.broker.commit(f.spec(60e6), "").ok());
  const auto second = f.broker.commit(f.spec(60e6), "");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, ErrorCode::kAdmissionRejected);
  EXPECT_EQ(second.error().origin, "DomainB");
  EXPECT_EQ(f.broker.counters().denied_admission, 1u);
}

TEST(Broker, TransitRequiresSla) {
  BrokerFixture f;
  const auto res = f.broker.commit(f.spec(10e6), "DomainA");
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.error().message.find("no SLA"), std::string::npos);
}

TEST(Broker, TransitBoundBySlaProfile) {
  BrokerFixture f;
  f.broker.add_upstream_sla(f.sla_from_a(20e6));
  ASSERT_TRUE(f.broker.commit(f.spec(15e6), "DomainA").ok());
  // Local capacity (100 Mb/s) has room, but the SLA profile (20 Mb/s) is
  // nearly exhausted.
  const auto res = f.broker.commit(f.spec(10e6), "DomainA");
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.error().message.find("SLA profile"), std::string::npos);
  // A smaller request still fits.
  EXPECT_TRUE(f.broker.commit(f.spec(5e6), "DomainA").ok());
}

TEST(Broker, SlaValidityWindowChecked) {
  BrokerFixture f;
  auto agreement = f.sla_from_a(20e6);
  agreement.validity = {0, seconds(10)};
  f.broker.add_upstream_sla(agreement);
  const auto res =
      f.broker.commit(f.spec(1e6, {seconds(20), seconds(30)}), "DomainA");
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.error().message.find("does not cover"), std::string::npos);
}

TEST(Broker, ReleaseRestoresBothPools) {
  BrokerFixture f;
  f.broker.add_upstream_sla(f.sla_from_a(20e6));
  const auto id = f.broker.commit(f.spec(20e6), "DomainA");
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(f.broker.commit(f.spec(1e6), "DomainA").ok());
  ASSERT_TRUE(f.broker.release(*id).ok());
  EXPECT_TRUE(f.broker.commit(f.spec(20e6), "DomainA").ok());
}

TEST(Broker, ReleaseUnknownFails) {
  BrokerFixture f;
  EXPECT_EQ(f.broker.release("nope").error().code, ErrorCode::kNotFound);
}

TEST(Broker, NextHopRouting) {
  BrokerFixture f;
  f.broker.set_next_hop("DomainC", "DomainC");
  f.broker.set_next_hop("DomainD", "DomainC");
  EXPECT_EQ(f.broker.next_hop("DomainC").value(), "DomainC");
  EXPECT_EQ(f.broker.next_hop("DomainD").value(), "DomainC");
  EXPECT_FALSE(f.broker.next_hop("DomainB").has_value());  // we are it
  EXPECT_FALSE(f.broker.next_hop("DomainX").has_value());  // unknown
}

TEST(Broker, EdgeConfiguratorCalledOnCommitAndRelease) {
  BrokerFixture f;
  std::vector<std::pair<std::string, bool>> calls;
  f.broker.set_edge_configurator(
      [&calls](const Reservation& r, bool install) {
        calls.emplace_back(r.id, install);
      });
  const auto id = f.broker.commit(f.spec(10e6), "");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(f.broker.release(*id).ok());
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0], std::make_pair(*id, true));
  EXPECT_EQ(calls[1], std::make_pair(*id, false));
}

TEST(Broker, InvalidSpecRejected) {
  BrokerFixture f;
  EXPECT_FALSE(f.broker.commit(f.spec(0), "").ok());
  EXPECT_FALSE(f.broker.commit(f.spec(1e6, {seconds(5), seconds(5)}), "").ok());
}

TEST(Broker, TunnelRegistrationAndAllocation) {
  BrokerFixture f;
  ResSpec agg = f.spec(50e6, {0, seconds(600)});
  agg.is_tunnel = true;
  const auto tid = f.broker.register_tunnel(agg);
  ASSERT_TRUE(tid.ok());
  Tunnel* tunnel = f.broker.find_tunnel(*tid);
  ASSERT_NE(tunnel, nullptr);
  ASSERT_TRUE(tunnel->authorize("CN=Alice,O=DomainA,C=US").ok());

  EXPECT_TRUE(tunnel
                  ->allocate("sub-1", "CN=Alice,O=DomainA,C=US",
                             {0, seconds(60)}, 30e6)
                  .ok());
  // Unauthorized user.
  const auto bad = tunnel->allocate("sub-2", "CN=Eve,O=Evil,C=US",
                                    {0, seconds(60)}, 1e6);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kPolicyDenied);
  // Aggregate exceeded.
  EXPECT_FALSE(tunnel
                   ->allocate("sub-3", "CN=Alice,O=DomainA,C=US",
                              {0, seconds(60)}, 25e6)
                   .ok());
  // Outside tunnel lifetime.
  EXPECT_FALSE(tunnel
                   ->allocate("sub-4", "CN=Alice,O=DomainA,C=US",
                              {seconds(590), seconds(700)}, 1e6)
                   .ok());
  // Release then reuse.
  ASSERT_TRUE(tunnel->release("sub-1").ok());
  EXPECT_TRUE(tunnel
                  ->allocate("sub-5", "CN=Alice,O=DomainA,C=US",
                             {0, seconds(60)}, 50e6)
                  .ok());
}

TEST(Broker, TunnelRequiresTunnelSpec) {
  BrokerFixture f;
  EXPECT_FALSE(f.broker.register_tunnel(f.spec(10e6)).ok());
}

TEST(Broker, CountersTrackOutcomes) {
  BrokerFixture f;
  ASSERT_TRUE(f.broker.commit(f.spec(50e6), "").ok());
  (void)f.broker.commit(f.spec(90e6), "");
  EXPECT_EQ(f.broker.counters().requests, 2u);
  EXPECT_EQ(f.broker.counters().granted, 1u);
  EXPECT_EQ(f.broker.counters().denied_admission, 1u);
}

TEST(ResSpec, EncodeDecodeRoundTrip) {
  ResSpec s;
  s.user = "CN=Alice,O=ANL,C=US";
  s.source_domain = "DomainA";
  s.destination_domain = "DomainC";
  s.rate_bits_per_s = 10e6;
  s.burst_bits = 30000;
  s.interval = {seconds(100), seconds(700)};
  s.max_cost = 12.5;
  s.linked_cpu_reservation = "cpu-111";
  s.is_tunnel = true;
  const auto back = ResSpec::decode(s.encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, s);
}

TEST(ResSpec, DecodeRejectsGarbage) {
  EXPECT_FALSE(ResSpec::decode(to_bytes("not a res spec")).ok());
  ResSpec s;
  s.user = "x";
  Bytes enc = s.encode();
  enc.push_back(0xff);
  EXPECT_FALSE(ResSpec::decode(enc).ok());
}

TEST(ResSpec, EncodingIsCanonical) {
  ResSpec s;
  s.user = "CN=Alice,O=ANL,C=US";
  s.rate_bits_per_s = 10e6;
  s.interval = {0, seconds(1)};
  EXPECT_EQ(s.encode(), s.encode());
  ResSpec t = s;
  t.rate_bits_per_s = 10e6 + 1;
  EXPECT_NE(s.encode(), t.encode());
}

}  // namespace
}  // namespace e2e::bb
