#include "net/topology.hpp"

#include <gtest/gtest.h>

namespace e2e::net {
namespace {

/// Linear three-domain topology used throughout the paper's figures:
/// host-side edge A -> boundary A|B -> core B -> boundary B|C -> edge C.
struct ChainFixture {
  Topology topo;
  DomainId da, db, dc;
  RouterId ra, rb, rc;
  LinkId ab, bc;

  ChainFixture() {
    da = topo.add_domain("DomainA");
    db = topo.add_domain("DomainB");
    dc = topo.add_domain("DomainC");
    ra = topo.add_router(da, "edge-A", true);
    rb = topo.add_router(db, "core-B", false);
    rc = topo.add_router(dc, "edge-C", true);
    ab = topo.add_link(ra, rb, 100e6, milliseconds(5));
    bc = topo.add_link(rb, rc, 100e6, milliseconds(5));
  }
};

TEST(Topology, BasicAccessors) {
  ChainFixture f;
  EXPECT_EQ(f.topo.domain_count(), 3u);
  EXPECT_EQ(f.topo.router_count(), 3u);
  EXPECT_EQ(f.topo.link_count(), 2u);
  EXPECT_EQ(f.topo.domain(f.db).name, "DomainB");
  EXPECT_TRUE(f.topo.router(f.ra).is_edge);
  EXPECT_FALSE(f.topo.router(f.rb).is_edge);
  EXPECT_EQ(f.topo.link(f.ab).capacity_bits_per_s, 100e6);
}

TEST(Topology, FindDomainByName) {
  ChainFixture f;
  EXPECT_EQ(f.topo.find_domain("DomainC"), f.dc);
  EXPECT_FALSE(f.topo.find_domain("DomainX").has_value());
}

TEST(Topology, BoundaryLinkDetection) {
  ChainFixture f;
  EXPECT_TRUE(f.topo.is_boundary_link(f.ab));
  const RouterId ra2 = f.topo.add_router(f.da, "core-A", false);
  const LinkId intra = f.topo.add_link(f.ra, ra2, 1e9, microseconds(10));
  EXPECT_FALSE(f.topo.is_boundary_link(intra));
}

TEST(Topology, ShortestPathLinear) {
  ChainFixture f;
  const auto path = f.topo.shortest_path(f.ra, f.rc);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, (std::vector<LinkId>{f.ab, f.bc}));
}

TEST(Topology, ShortestPathSelf) {
  ChainFixture f;
  EXPECT_TRUE(f.topo.shortest_path(f.ra, f.ra)->empty());
}

TEST(Topology, NoRouteBackwards) {
  ChainFixture f;  // links are unidirectional
  const auto path = f.topo.shortest_path(f.rc, f.ra);
  ASSERT_FALSE(path.ok());
  EXPECT_EQ(path.error().code, ErrorCode::kNoRoute);
}

TEST(Topology, ShortestPathPrefersFewerHops) {
  ChainFixture f;
  // Add a direct A->C shortcut; BFS must choose it.
  const LinkId direct = f.topo.add_link(f.ra, f.rc, 10e6, milliseconds(50));
  const auto path = f.topo.shortest_path(f.ra, f.rc);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, (std::vector<LinkId>{direct}));
}

TEST(Topology, DomainsOnPath) {
  ChainFixture f;
  const auto path = f.topo.shortest_path(f.ra, f.rc).value();
  const auto domains = f.topo.domains_on_path(path, f.ra);
  EXPECT_EQ(domains, (std::vector<DomainId>{f.da, f.db, f.dc}));
}

TEST(Topology, DomainsOnPathCollapsesIntraDomainHops) {
  Topology topo;
  const DomainId da = topo.add_domain("A");
  const DomainId db = topo.add_domain("B");
  const RouterId r1 = topo.add_router(da, "a1", true);
  const RouterId r2 = topo.add_router(da, "a2", false);
  const RouterId r3 = topo.add_router(db, "b1", true);
  topo.add_link(r1, r2, 1e9, 0);
  topo.add_link(r2, r3, 1e9, 0);
  const auto path = topo.shortest_path(r1, r3).value();
  EXPECT_EQ(topo.domains_on_path(path, r1), (std::vector<DomainId>{da, db}));
}

TEST(Topology, InvalidConstruction) {
  Topology topo;
  EXPECT_THROW(topo.add_router(5, "x", true), std::out_of_range);
  const DomainId d = topo.add_domain("A");
  const RouterId r = topo.add_router(d, "r", true);
  EXPECT_THROW(topo.add_link(r, 99, 1e6, 0), std::out_of_range);
  const RouterId r2 = topo.add_router(d, "r2", true);
  EXPECT_THROW(topo.add_link(r, r2, 0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace e2e::net
