// Algebraic property tests for the crypto substrate — laws that must hold
// for the protocol's security arguments to make sense.
#include <gtest/gtest.h>

#include "crypto/biguint.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"

namespace e2e::crypto {
namespace {

class CryptoLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CryptoLaws, ModexpExponentAddition) {
  // a^(b+c) mod m == (a^b * a^c) mod m.
  Rng rng(GetParam());
  const BigUInt m = BigUInt::random_prime(rng, 96);
  for (int i = 0; i < 10; ++i) {
    const BigUInt a = BigUInt::random_below(rng, m);
    const BigUInt b = BigUInt::random_bits(rng, 64);
    const BigUInt c = BigUInt::random_bits(rng, 64);
    if (a.is_zero()) continue;
    const BigUInt lhs = a.modexp(b + c, m);
    const BigUInt rhs = (a.modexp(b, m) * a.modexp(c, m)) % m;
    EXPECT_EQ(lhs, rhs);
  }
}

TEST_P(CryptoLaws, ModexpBaseMultiplication) {
  // (a*b)^e mod m == (a^e * b^e) mod m.
  Rng rng(GetParam() ^ 0xbeef);
  const BigUInt m = BigUInt::random_prime(rng, 96);
  for (int i = 0; i < 10; ++i) {
    const BigUInt a = BigUInt::random_below(rng, m);
    const BigUInt b = BigUInt::random_below(rng, m);
    const BigUInt e = BigUInt::random_bits(rng, 48);
    const BigUInt lhs = ((a * b) % m).modexp(e, m);
    const BigUInt rhs = (a.modexp(e, m) * b.modexp(e, m)) % m;
    EXPECT_EQ(lhs, rhs);
  }
}

TEST_P(CryptoLaws, RsaInverseExponents) {
  // For any message representative m < n: (m^e)^d == m mod n.
  Rng rng(GetParam() + 99);
  const KeyPair kp = generate_keypair(rng, 256);
  for (int i = 0; i < 5; ++i) {
    const BigUInt m = BigUInt::random_below(rng, kp.pub.n);
    const BigUInt round_trip =
        m.modexp(kp.pub.e, kp.pub.n).modexp(kp.priv.d, kp.priv.n);
    EXPECT_EQ(round_trip, m);
  }
}

TEST_P(CryptoLaws, DistinctMessagesDistinctSignatures) {
  Rng rng(GetParam() + 7);
  const KeyPair kp = generate_keypair(rng, 256);
  const Bytes s1 = sign(kp.priv, to_bytes("m1"));
  const Bytes s2 = sign(kp.priv, to_bytes("m2"));
  EXPECT_NE(s1, s2);
  // Signatures are deterministic for a given (key, message).
  EXPECT_EQ(s1, sign(kp.priv, to_bytes("m1")));
}

TEST_P(CryptoLaws, MulDivShiftConsistency) {
  Rng rng(GetParam() + 1000);
  for (int i = 0; i < 20; ++i) {
    const unsigned bits = 1 + static_cast<unsigned>(rng.next_below(400));
    const BigUInt a = BigUInt::random_bits(rng, bits);
    const unsigned k = static_cast<unsigned>(rng.next_below(200));
    // a << k == a * 2^k, and (a << k) >> k == a.
    EXPECT_EQ(a << k, a * (BigUInt(1) << k));
    EXPECT_EQ((a << k) >> k, a);
    // divmod by 2^k matches shift/mask semantics.
    const auto dm = BigUInt::divmod(a << k, BigUInt(1) << k);
    EXPECT_EQ(dm.quotient, a);
    EXPECT_TRUE(dm.remainder.is_zero());
  }
}

TEST_P(CryptoLaws, DecimalHexAgreement) {
  Rng rng(GetParam() + 31);
  for (int i = 0; i < 10; ++i) {
    const BigUInt a = BigUInt::random_bits(
        rng, 1 + static_cast<unsigned>(rng.next_below(256)));
    EXPECT_EQ(BigUInt::from_string(a.to_decimal()), a);
    EXPECT_EQ(BigUInt::from_string(a.to_hex()), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CryptoLaws, ::testing::Values(1, 2, 3));

TEST(CryptoLaws, Sha256AvalancheSingleBitFlip) {
  // Flipping any single bit of a short message changes ~half the digest
  // bits (sanity check on diffusion; bounds are generous).
  const Bytes base = to_bytes("resource allocation request");
  const Digest d0 = sha256(base);
  for (std::size_t byte = 0; byte < base.size(); byte += 5) {
    Bytes flipped = base;
    flipped[byte] ^= 0x01;
    const Digest d1 = sha256(flipped);
    int differing_bits = 0;
    for (std::size_t i = 0; i < d0.size(); ++i) {
      differing_bits += __builtin_popcount(d0[i] ^ d1[i]);
    }
    EXPECT_GT(differing_bits, 80);   // out of 256
    EXPECT_LT(differing_bits, 176);
  }
}

}  // namespace
}  // namespace e2e::crypto
