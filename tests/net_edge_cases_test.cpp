// Simulator edge cases: queue boundaries, delay behaviour under load,
// policer reconfiguration mid-run, multi-path topologies.
#include <gtest/gtest.h>

#include "net/simulator.hpp"

namespace e2e::net {
namespace {

struct TwoHop {
  Topology topo;
  RouterId ra, rb, rc;
  LinkId ab, bc;

  explicit TwoHop(double capacity = 100e6, std::size_t qlimit = 64) {
    const auto da = topo.add_domain("A");
    const auto db = topo.add_domain("B");
    const auto dc = topo.add_domain("C");
    ra = topo.add_router(da, "ra", true);
    rb = topo.add_router(db, "rb", false);
    rc = topo.add_router(dc, "rc", true);
    ab = topo.add_link(ra, rb, capacity, milliseconds(5), qlimit);
    bc = topo.add_link(rb, rc, capacity, milliseconds(5), qlimit);
  }
};

FlowDescription flow(const char* name, RouterId src, RouterId dst,
                     TrafficPattern pattern, bool premium = false) {
  FlowDescription d;
  d.name = name;
  d.source = src;
  d.destination = dst;
  d.wants_premium = premium;
  d.pattern = pattern;
  return d;
}

TEST(NetEdge, QueueLimitOneStillDelivers) {
  TwoHop t(100e6, /*qlimit=*/1);
  Simulator sim(std::move(t.topo));
  const FlowId f = sim.add_flow(flow("tiny-queues", t.ra, t.rc,
                                     TrafficPattern::cbr(10e6)))
                       .value();
  sim.run_until(seconds(1));
  // Uncongested CBR with queue limit 1: everything still flows.
  EXPECT_GT(sim.stats(f).delivered_packets, 0u);
  EXPECT_EQ(sim.stats(f).dropped_queue_packets, 0u);
}

TEST(NetEdge, BestEffortDelayGrowsUnderCongestionEfDoesNot) {
  TwoHop t(20e6);
  Simulator sim(std::move(t.topo), 3);
  const FlowId ef =
      sim.add_flow(flow("ef", t.ra, t.rc, TrafficPattern::cbr(5e6), true))
          .value();
  const FlowId be =
      sim.add_flow(flow("be", t.ra, t.rc, TrafficPattern::poisson(18e6)))
          .value();
  sim.set_flow_policer(t.ab, ef, TokenBucket(6e6, 60000),
                       sla::ExcessTreatment::kDrop);
  sim.run_until(seconds(3));
  // EF rides the priority queue: close to the propagation floor (10 ms).
  EXPECT_LT(sim.stats(ef).mean_delay_us(), 13000.0);
  // The overloaded best-effort class queues up far beyond that.
  EXPECT_GT(sim.stats(be).mean_delay_us(),
            2 * sim.stats(ef).mean_delay_us());
}

TEST(NetEdge, PolicerReconfigurationMidRun) {
  TwoHop t;
  Simulator sim(std::move(t.topo));
  const FlowId f =
      sim.add_flow(flow("resize", t.ra, t.rc, TrafficPattern::cbr(10e6),
                        true))
          .value();
  sim.set_flow_policer(t.ab, f, TokenBucket(10e6, 120000),
                       sla::ExcessTreatment::kDrop);
  sim.run_until(seconds(2));
  const auto premium_phase1 = sim.stats(f).delivered_premium_bits;
  EXPECT_GT(premium_phase1, static_cast<std::uint64_t>(15e6));
  // Broker downgrades the reservation to 2 Mb/s at t=2s.
  sim.set_flow_policer(t.ab, f, TokenBucket(2e6, 24000, sim.now()),
                       sla::ExcessTreatment::kDrop);
  sim.run_until(seconds(4));
  const auto premium_phase2 =
      sim.stats(f).delivered_premium_bits - premium_phase1;
  // Phase 2 premium roughly 2 Mb/s * 2 s = 4 Mbit (policer-limited).
  EXPECT_LT(premium_phase2, static_cast<std::uint64_t>(6e6));
  EXPECT_GT(sim.stats(f).dropped_policer_packets, 0u);
}

TEST(NetEdge, FanInCongestionSharedLink) {
  // Two sources fan into one bottleneck.
  Topology topo;
  const auto d = topo.add_domain("D");
  const auto r1 = topo.add_router(d, "src1", true);
  const auto r2 = topo.add_router(d, "src2", true);
  const auto mid = topo.add_router(d, "mid", false);
  const auto dst = topo.add_router(d, "dst", true);
  topo.add_link(r1, mid, 100e6, milliseconds(1));
  topo.add_link(r2, mid, 100e6, milliseconds(1));
  topo.add_link(mid, dst, 10e6, milliseconds(1));  // bottleneck
  Simulator sim(std::move(topo), 5);
  const FlowId f1 =
      sim.add_flow(flow("f1", r1, dst, TrafficPattern::poisson(8e6))).value();
  const FlowId f2 =
      sim.add_flow(flow("f2", r2, dst, TrafficPattern::poisson(8e6))).value();
  sim.run_until(seconds(4));
  const double g1 = sim.stats(f1).goodput_bits_per_s(seconds(4));
  const double g2 = sim.stats(f2).goodput_bits_per_s(seconds(4));
  // Bottleneck shared: combined goodput ~ 10 Mb/s, roughly fair.
  EXPECT_NEAR(g1 + g2, 10e6, 1.5e6);
  EXPECT_GT(g1, 3e6);
  EXPECT_GT(g2, 3e6);
}

TEST(NetEdge, ZeroLatencyLinksWork) {
  Topology topo;
  const auto d = topo.add_domain("D");
  const auto a = topo.add_router(d, "a", true);
  const auto b = topo.add_router(d, "b", true);
  topo.add_link(a, b, 100e6, 0);
  Simulator sim(std::move(topo));
  const FlowId f =
      sim.add_flow(flow("zl", a, b, TrafficPattern::cbr(1e6))).value();
  sim.run_until(seconds(1));
  EXPECT_GT(sim.stats(f).delivered_packets, 0u);
  // Delay = pure transmission time: 12000 bits / 100 Mb/s = 120 us.
  EXPECT_NEAR(sim.stats(f).mean_delay_us(), 120.0, 1.0);
}

TEST(NetEdge, StatsStartEmpty) {
  TwoHop t;
  Simulator sim(std::move(t.topo));
  const FlowId f =
      sim.add_flow(flow("idle", t.ra, t.rc, TrafficPattern::cbr(1e6)))
          .value();
  const FlowStats& st = sim.stats(f);
  EXPECT_EQ(st.emitted_packets, 0u);
  EXPECT_EQ(st.delivered_packets, 0u);
  EXPECT_DOUBLE_EQ(st.goodput_bits_per_s(seconds(1)), 0.0);
  EXPECT_DOUBLE_EQ(st.mean_delay_us(), 0.0);
}

TEST(NetEdge, DelayedFlowStart) {
  TwoHop t;
  Simulator sim(std::move(t.topo));
  FlowDescription d = flow("late", t.ra, t.rc, TrafficPattern::cbr(10e6));
  d.start = seconds(2);
  const FlowId f = sim.add_flow(d).value();
  sim.run_until(seconds(1));
  EXPECT_EQ(sim.stats(f).emitted_packets, 0u);
  sim.run_until(seconds(4));
  EXPECT_NEAR(static_cast<double>(sim.stats(f).emitted_bits), 20e6, 1e6);
}

TEST(NetEdge, PerFlowPolicerOnlyAffectsItsFlow) {
  TwoHop t;
  Simulator sim(std::move(t.topo));
  const FlowId policed =
      sim.add_flow(flow("policed", t.ra, t.rc, TrafficPattern::cbr(10e6),
                        true))
          .value();
  const FlowId other =
      sim.add_flow(flow("other", t.ra, t.rc, TrafficPattern::cbr(10e6),
                        true))
          .value();
  sim.set_flow_policer(t.ab, policed, TokenBucket(1e6, 12000),
                       sla::ExcessTreatment::kDrop);
  sim.run_until(seconds(2));
  EXPECT_GT(sim.stats(policed).dropped_policer_packets, 0u);
  // The other flow has no policer: it is never dropped (and never marked).
  EXPECT_EQ(sim.stats(other).dropped_policer_packets, 0u);
  EXPECT_EQ(sim.stats(other).delivered_premium_bits, 0u);
}

}  // namespace
}  // namespace e2e::net
