// The telemetry contract, enforced: docs/OBSERVABILITY.md must list every
// metric in the instrument catalog (and nothing else), everything the
// instrumented library actually emits must come from the catalog, and every
// span name and attribute key a trace carries must be documented.
#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "obs/audit.hpp"
#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sig/transport.hpp"
#include "testing_world.hpp"

#ifndef E2E_SOURCE_DIR
#error "build must define E2E_SOURCE_DIR (see tests/CMakeLists.txt)"
#endif

namespace e2e::obs {
namespace {

using e2e::testing::ChainWorld;
using e2e::testing::ChainWorldConfig;
using e2e::testing::WorldUser;

std::string read_doc() {
  const std::string path =
      std::string(E2E_SOURCE_DIR) + "/docs/OBSERVABILITY.md";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Every `e2e_...` token the doc mentions.
std::set<std::string> doc_metric_names(const std::string& doc) {
  std::set<std::string> names;
  const std::regex token("e2e_[a-z0-9_]+");
  for (auto it = std::sregex_iterator(doc.begin(), doc.end(), token);
       it != std::sregex_iterator(); ++it) {
    names.insert(it->str());
  }
  return names;
}

std::set<std::string> catalog_names() {
  std::set<std::string> names;
  for (const auto& info : catalog()) names.insert(info.name);
  return names;
}

TEST(TelemetryContract, DocListsEveryCatalogMetric) {
  const std::set<std::string> documented = doc_metric_names(read_doc());
  for (const std::string& name : catalog_names()) {
    EXPECT_TRUE(documented.contains(name))
        << name << " is in obs/instruments.hpp but missing from "
        << "docs/OBSERVABILITY.md — document it";
  }
}

TEST(TelemetryContract, DocMentionsNoUnknownMetric) {
  const std::set<std::string> known = catalog_names();
  for (const std::string& name : doc_metric_names(read_doc())) {
    EXPECT_TRUE(known.contains(name))
        << name << " appears in docs/OBSERVABILITY.md but not in the "
        << "instrument catalog (obs/instruments.hpp) — stale docs";
  }
}

TEST(TelemetryContract, CatalogMetadataIsComplete) {
  std::set<std::string> seen;
  for (const auto& info : catalog()) {
    EXPECT_TRUE(seen.insert(info.name).second)
        << "duplicate catalog entry " << info.name;
    EXPECT_TRUE(std::string(info.name).starts_with("e2e_"))
        << info.name << ": all metrics share the e2e_ prefix";
    EXPECT_FALSE(std::string(info.unit).empty()) << info.name;
    EXPECT_FALSE(std::string(info.help).empty()) << info.name;
  }
}

TEST(TelemetryContract, RuntimeEmitsOnlyCatalogMetrics) {
  // Exercise grant, denial and the network simulator so instrumentation
  // across the layers actually fires, then check everything that showed up
  // in the global registry against the catalog.
  {
    ChainWorldConfig config;
    config.domains = 4;
    config.policies = {"Return GRANT", "Return GRANT", "Return GRANT",
                       "Return DENY"};
    ChainWorld world(config);
    WorldUser alice = world.make_user("Alice", 0, true, true);
    const auto msg = world.engine().build_user_request(
        alice.credentials(), world.spec(alice, 10e6), 0);
    ASSERT_TRUE(msg.ok());
    (void)world.engine().reserve(*msg, seconds(1));
    (void)world.source_engine().reserve(
        world.names(), world.spec(alice, 1e6), alice.identity_cert,
        alice.identity_keys.priv,
        sig::SourceDomainEngine::Mode::kSequential, seconds(1));
  }
  {
    ChainWorld world;
    WorldUser alice = world.make_user("Alice", 0);
    const auto msg = world.engine().build_user_request(
        alice.credentials(), world.spec(alice, 10e6), 0);
    ASSERT_TRUE(msg.ok());
    const auto outcome = world.engine().reserve(*msg, seconds(1));
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(outcome->reply.granted);
    ASSERT_TRUE(world.engine().release_end_to_end(outcome->reply).ok());
  }

  const std::set<std::string> known = catalog_names();
  for (const std::string& name :
       MetricsRegistry::global().exported_names()) {
    EXPECT_TRUE(known.contains(name))
        << name << " was emitted at runtime but is not declared in the "
        << "instrument catalog (obs/instruments.hpp)";
  }
}

TEST(TelemetryContract, DocCoversEverySpanNameAndAttributeKey) {
  const std::string doc = read_doc();

  // Collect what real traces carry: a granted 4-domain tunnel-free run and
  // a policy denial.
  std::set<std::string> span_names;
  std::set<std::string> attribute_keys;
  auto collect = [&](ChainWorld& world, const std::string& trace_id) {
    for (const auto& span : world.tracer().trace(trace_id)) {
      span_names.insert(span.name);
      for (const auto& [key, value] : span.attributes) {
        attribute_keys.insert(key);
      }
    }
  };
  {
    ChainWorldConfig config;
    config.domains = 4;
    ChainWorld world(config);
    WorldUser alice = world.make_user("Alice", 0);
    const auto msg = world.engine().build_user_request(
        alice.credentials(), world.spec(alice, 10e6), 0);
    const auto outcome = world.engine().reserve(*msg, seconds(1));
    ASSERT_TRUE(outcome.ok());
    collect(world, outcome->trace_id);
  }
  {
    ChainWorldConfig config;
    config.policies = {"Return GRANT", "Return DENY"};
    ChainWorld world(config);
    WorldUser alice = world.make_user("Alice", 0);
    const auto msg = world.engine().build_user_request(
        alice.credentials(), world.spec(alice, 10e6), 0);
    const auto outcome = world.engine().reserve(*msg, seconds(1));
    ASSERT_TRUE(outcome.ok());
    collect(world, outcome->trace_id);
  }
  {
    // Tunnel establishment exercises the channel_handshake span.
    ChainWorld world;
    WorldUser alice = world.make_user("Alice", 0);
    auto spec = world.spec(alice, 10e6);
    spec.is_tunnel = true;
    const auto msg = world.engine().build_user_request(alice.credentials(),
                                                       spec, 0);
    const auto outcome = world.engine().reserve(*msg, seconds(1));
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(outcome->reply.granted);
    collect(world, outcome->trace_id);
  }

  EXPECT_TRUE(span_names.contains("channel_handshake"));
  for (const std::string& name : span_names) {
    EXPECT_NE(doc.find("`" + name + "`"), std::string::npos)
        << "span name `" << name
        << "` is emitted but not documented in docs/OBSERVABILITY.md";
  }
  for (const std::string& key : attribute_keys) {
    EXPECT_NE(doc.find("`" + key + "`"), std::string::npos)
        << "span attribute key `" << key
        << "` is emitted but not documented in docs/OBSERVABILITY.md";
  }
}

TEST(TelemetryContract, DocListsEveryAuditKindAndEmittedField) {
  const std::string doc = read_doc();

  // The closed kind set (obs/audit.hpp) must be documented in full...
  for (const char* kind :
       {audit_kind::kPeerAuth, audit_kind::kVerify, audit_kind::kPolicy,
        audit_kind::kDelegation, audit_kind::kAdmission,
        audit_kind::kRecovery, audit_kind::kShutdown}) {
    EXPECT_NE(doc.find("`" + std::string(kind) + "`"), std::string::npos)
        << "audit kind `" << kind
        << "` is in obs/audit.hpp but not documented in "
        << "docs/OBSERVABILITY.md";
  }

  // ...and everything the instrumented library actually appends — kinds
  // AND kind-specific field keys — must come from the documented schema.
  // Exercise grant, policy denial and a tunnel per-flow reservation so
  // every emission point fires.
  AuditLog::global().clear();
  const std::set<std::string> known_kinds = {
      audit_kind::kPeerAuth,   audit_kind::kVerify,    audit_kind::kPolicy,
      audit_kind::kDelegation, audit_kind::kAdmission, audit_kind::kRecovery,
      audit_kind::kShutdown};
  {
    ChainWorldConfig config;
    config.domains = 4;
    config.policies = {"Return GRANT", "Return GRANT", "Return GRANT",
                       "Return DENY"};
    ChainWorld world(config);
    WorldUser alice = world.make_user("Alice", 0, true, true);
    const auto msg = world.engine().build_user_request(
        alice.credentials(), world.spec(alice, 10e6), 0);
    ASSERT_TRUE(msg.ok());
    (void)world.engine().reserve(*msg, seconds(1));
    (void)world.source_engine().reserve(
        world.names(), world.spec(alice, 1e6), alice.identity_cert,
        alice.identity_keys.priv,
        sig::SourceDomainEngine::Mode::kSequential, seconds(1));
  }
  {
    ChainWorld world;
    WorldUser alice = world.make_user("Alice", 0);
    auto spec = world.spec(alice, 50e6, {0, seconds(3600)});
    spec.is_tunnel = true;
    const auto msg =
        world.engine().build_user_request(alice.credentials(), spec, 0);
    ASSERT_TRUE(msg.ok());
    const auto est = world.engine().reserve(*msg, seconds(1));
    ASSERT_TRUE(est.ok());
    ASSERT_TRUE(est->reply.granted);
    (void)world.engine().reserve_in_tunnel(est->reply.tunnel_id,
                                           alice.dn.to_string(), 5e6,
                                           {0, seconds(60)}, seconds(2));
  }
  const auto records = AuditLog::global().records();
  ASSERT_FALSE(records.empty());
  std::set<std::string> seen_kinds;
  for (const auto& record : records) {
    EXPECT_TRUE(known_kinds.contains(record.kind))
        << "runtime emitted unknown audit kind " << record.kind;
    seen_kinds.insert(record.kind);
    for (const auto& [key, value] : record.fields) {
      EXPECT_NE(doc.find("`" + key + "`"), std::string::npos)
          << "audit field key `" << key << "` (kind " << record.kind
          << ") is emitted but not documented in docs/OBSERVABILITY.md";
    }
  }
  // The exercised scenarios cover every kind except peer_auth (channel
  // handshakes happen at world setup, outside any span, and are not
  // audited by design).
  for (const char* kind : {audit_kind::kVerify, audit_kind::kPolicy,
                           audit_kind::kDelegation, audit_kind::kAdmission}) {
    EXPECT_TRUE(seen_kinds.contains(kind)) << kind << " never emitted";
  }
  AuditLog::global().clear();
}

TEST(TelemetryContract, DocMatchesTraceContextWireTags) {
  const std::string doc = read_doc();
  const std::pair<const char*, tlv::Tag> tags[] = {
      {"0xE270", sig::envelope_tag::kTraceContext},
      {"0xE271", sig::envelope_tag::kTraceId},
      {"0xE272", sig::envelope_tag::kOrigin},
      {"0xE273", sig::envelope_tag::kSpanId},
      {"0xE274", sig::envelope_tag::kHopCount},
      {"0xE275", sig::envelope_tag::kSampled},
  };
  for (const auto& [text, tag] : tags) {
    // The doc names the tag...
    EXPECT_NE(doc.find("`" + std::string(text) + "`"), std::string::npos)
        << "envelope tag " << text
        << " is not documented in docs/OBSERVABILITY.md";
    // ...and the documented hex value is the one the wire actually uses.
    EXPECT_EQ(static_cast<tlv::Tag>(std::stoul(text, nullptr, 16)), tag);
  }
}

}  // namespace
}  // namespace e2e::obs
