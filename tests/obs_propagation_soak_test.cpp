// Propagation soak (ISSUE 4 tentpole): seeded runs across all three
// signalling styles — clean fabric and fault-injected with retries and
// duplicates — asserting the distributed-tracing and audit contracts:
//
//   - every RAR yields exactly one trace id, reused across retransmitted
//     attempts and duplicate deliveries;
//   - the destination-side SpanCollector, fed only the per-domain recorder
//     exports (linked by the TraceContext carried in the transport
//     envelope), reconstructs a tree that matches the source-side
//     reference recorder node for node: names, parents, virtual-time
//     bounds, failure tags and attributes;
//   - every audit record joins a span of the collected tree, and the hash
//     chain verifies across broker crashes, evictions and re-exports;
//   - any tampering with an exported audit line is detected.
//
// Reproducibility: the fault seed derives from E2E_SOAK_SEED (default
// 20010801), same convention as sig_soak_test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "obs/audit.hpp"
#include "obs/collector.hpp"
#include "obs/metrics.hpp"
#include "testing_world.hpp"

namespace e2e::obs {
namespace {

using testing::ChainWorld;
using testing::ChainWorldConfig;
using testing::WorldUser;

std::uint64_t soak_seed() {
  if (const char* env = std::getenv("E2E_SOAK_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20010801ull;
}

void reset_globals() {
  MetricsRegistry::global().reset_values();
  AuditLog::global().clear();
}

/// The collected tree must match the source-side reference tree node for
/// node. Collected spans may carry *extra* attributes (`remote.parent`,
/// `hop.index` — the stitching links themselves), but every reference
/// attribute must survive the round trip through the per-domain exports.
void expect_tree_matches_reference(const SpanCollector& collector,
                                   const TraceRecorder& reference,
                                   const std::string& trace_id) {
  const auto collected = collector.flatten(trace_id);
  const auto expected =
      SpanCollector::flatten_recorder(reference, trace_id);
  ASSERT_FALSE(expected.empty()) << "no reference spans for " << trace_id;
  ASSERT_EQ(collected.size(), expected.size()) << trace_id;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << trace_id << " node " << i << " ("
                                      << expected[i].span.name << ")");
    EXPECT_EQ(collected[i].span.name, expected[i].span.name);
    EXPECT_EQ(collected[i].depth, expected[i].depth);
    EXPECT_EQ(collected[i].span.start, expected[i].span.start);
    EXPECT_EQ(collected[i].span.end, expected[i].span.end);
    EXPECT_EQ(collected[i].span.failed, expected[i].span.failed);
    for (const auto& [key, value] : expected[i].span.attributes) {
      const std::string* got = collected[i].span.attribute(key);
      ASSERT_NE(got, nullptr) << "missing attribute " << key;
      EXPECT_EQ(*got, value) << "attribute " << key;
    }
  }
}

/// Every audit record must name a span that exists in the collected tree
/// of its trace. Kinds emitted by brokers carry the exporting domain;
/// peer_auth records carry the initiator DN, so those match on span id
/// within the trace only.
void expect_records_join_collected_spans(const SpanCollector& collector) {
  const auto records = AuditLog::global().records();
  ASSERT_FALSE(records.empty());
  for (const auto& record : records) {
    SCOPED_TRACE(::testing::Message() << "audit record " << record.index
                                      << " kind=" << record.kind);
    ASSERT_FALSE(record.trace_id.empty());
    ASSERT_NE(record.span_id, 0u);
    const auto tree = collector.flatten(record.trace_id);
    const bool match_domain = record.kind != audit_kind::kPeerAuth;
    const bool joined = std::any_of(
        tree.begin(), tree.end(), [&](const CollectedSpan& node) {
          if (node.span.id != record.span_id) return false;
          return !match_domain || node.domain == record.domain;
        });
    EXPECT_TRUE(joined) << "record joins no collected span of "
                        << record.trace_id;
  }
}

TEST(ObsPropagation, CleanFabricTreesMatchReferenceAcrossEngines) {
  reset_globals();
  ChainWorld world;
  const WorldUser alice =
      world.make_user("Alice", 0, /*with_capability=*/true,
                      /*register_everywhere=*/true);

  std::vector<std::string> traces;

  // Hop-by-hop: granted and policy-path exercised.
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 10e6, {0, minutes(10)}), 0);
  ASSERT_TRUE(msg.ok());
  const auto hop = world.engine().reserve(*msg, seconds(1));
  ASSERT_TRUE(hop.ok());
  EXPECT_TRUE(hop->reply.granted);
  traces.push_back(hop->trace_id);

  // Source-based (sequential — the parallel mode interleaves reference
  // recorder writes and is excluded from exact-tree comparisons).
  const auto src = world.source_engine().reserve(
      world.names(), world.spec(alice, 12e6, {0, minutes(10)}),
      alice.identity_cert, alice.identity_keys.priv,
      sig::SourceDomainEngine::Mode::kSequential, seconds(2));
  ASSERT_TRUE(src.ok());
  EXPECT_TRUE(src->reply.granted);
  traces.push_back(src->trace_id);

  // Tunnel: aggregate establishment, then one per-flow sub-reservation.
  bb::ResSpec agg = world.spec(alice, 50e6, {0, seconds(3600)});
  agg.is_tunnel = true;
  const auto agg_msg =
      world.engine().build_user_request(alice.credentials(), agg, 0);
  ASSERT_TRUE(agg_msg.ok());
  const auto est = world.engine().reserve(*agg_msg, seconds(3));
  ASSERT_TRUE(est.ok());
  ASSERT_TRUE(est->reply.granted);
  traces.push_back(est->trace_id);
  const auto flow = world.engine().reserve_in_tunnel(
      est->reply.tunnel_id, alice.dn.to_string(), 5e6, {0, seconds(60)},
      seconds(4));
  ASSERT_TRUE(flow.ok());
  EXPECT_TRUE(flow->reply.granted);
  traces.push_back(flow->trace_id);

  // One distinct trace id per RAR.
  std::set<std::string> unique(traces.begin(), traces.end());
  EXPECT_EQ(unique.size(), traces.size());

  SpanCollector collector;
  world.collect(collector);
  for (const auto& trace_id : traces) {
    expect_tree_matches_reference(collector, world.tracer(), trace_id);
  }

  // The collector saw exactly the traces the reference recorder saw.
  auto collected_ids = collector.trace_ids();
  auto reference_ids = world.tracer().trace_ids();
  std::sort(collected_ids.begin(), collected_ids.end());
  std::sort(reference_ids.begin(), reference_ids.end());
  EXPECT_EQ(collected_ids, reference_ids);

  expect_records_join_collected_spans(collector);
  const auto verdict =
      AuditLog::verify_chain(AuditLog::global().export_jsonl());
  ASSERT_TRUE(verdict.ok()) << verdict.error().to_text();
  EXPECT_EQ(*verdict, AuditLog::global().size());
}

TEST(ObsPropagation, FaultySoakReusesTraceIdsAndMatchesReference) {
  reset_globals();
  ChainWorldConfig config;
  config.domains = 4;
  config.fault_profile.drop = 0.20;
  config.fault_profile.duplicate = 0.15;
  config.fault_profile.corrupt = 0.05;
  config.fault_seed = soak_seed();
  config.retry_policy.max_attempts = 4;
  config.retry_policy.base_timeout = milliseconds(50);
  ChainWorld world(config);
  const WorldUser alice =
      world.make_user("Alice", 0, /*with_capability=*/true,
                      /*register_everywhere=*/true);

  constexpr std::size_t kTrials = 40;
  std::vector<std::string> traces;
  std::size_t granted = 0;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    SCOPED_TRACE(::testing::Message()
                 << "trial=" << trial << " fault_seed=" << config.fault_seed
                 << " (rerun: E2E_SOAK_SEED=" << config.fault_seed << ")");
    const double rate = 1e6 + 1e5 * static_cast<double>(trial);
    const TimeInterval interval{
        seconds(static_cast<std::int64_t>(trial)),
        seconds(static_cast<std::int64_t>(trial) + 600)};
    if (trial % 3 == 2) {
      const auto outcome = world.source_engine().reserve(
          world.names(), world.spec(alice, rate, interval),
          alice.identity_cert, alice.identity_keys.priv,
          sig::SourceDomainEngine::Mode::kSequential,
          seconds(static_cast<std::int64_t>(trial)));
      ASSERT_TRUE(outcome.ok()) << outcome.error().to_text();
      if (outcome->reply.granted) ++granted;
      traces.push_back(outcome->trace_id);
    } else {
      const auto msg = world.engine().build_user_request(
          alice.credentials(), world.spec(alice, rate, interval), 0);
      ASSERT_TRUE(msg.ok()) << msg.error().to_text();
      const auto outcome = world.engine().reserve(
          *msg, seconds(static_cast<std::int64_t>(trial)));
      ASSERT_TRUE(outcome.ok()) << outcome.error().to_text();
      if (outcome->reply.granted) ++granted;
      traces.push_back(outcome->trace_id);
    }
  }
  // The fault mix must exercise both outcomes, or the soak proves nothing.
  EXPECT_GT(granted, 0u);
  EXPECT_LT(granted, kTrials);

  // Retried/duplicated RARs still produce exactly one trace id each.
  std::set<std::string> unique(traces.begin(), traces.end());
  ASSERT_EQ(unique.size(), kTrials);

  SpanCollector collector;
  world.collect(collector);
  bool saw_retry = false;
  for (const auto& trace_id : traces) {
    SCOPED_TRACE(trace_id);
    expect_tree_matches_reference(collector, world.tracer(), trace_id);
    for (const auto& node : collector.flatten(trace_id)) {
      if (node.span.attribute("retry.attempts") != nullptr) saw_retry = true;
    }
  }
  // At this loss rate the retry path must have fired at least once — and
  // the matching trees above prove the retransmissions stayed inside the
  // original trace rather than opening a new one.
  EXPECT_TRUE(saw_retry);

  expect_records_join_collected_spans(collector);
  const auto verdict =
      AuditLog::verify_chain(AuditLog::global().export_jsonl());
  ASSERT_TRUE(verdict.ok()) << verdict.error().to_text();
}

TEST(ObsPropagation, AuditChainSurvivesBrokerCrashes) {
  reset_globals();
  ChainWorldConfig config;
  config.domains = 4;
  config.retry_policy.max_attempts = 2;
  config.retry_policy.base_timeout = milliseconds(50);
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);

  // Grant, crash a middle broker (the RAR dies at the dark hop), heal,
  // grant again. The chain must verify across the whole sequence.
  const auto before = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 5e6, {0, seconds(600)}), 0);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(world.engine().reserve(*before, seconds(1))->reply.granted);

  world.crash_broker(2);
  const auto during = world.engine().build_user_request(
      alice.credentials(),
      world.spec(alice, 6e6, {seconds(1), seconds(601)}), 0);
  ASSERT_TRUE(during.ok());
  const auto denied = world.engine().reserve(*during, seconds(2));
  ASSERT_TRUE(denied.ok());
  EXPECT_FALSE(denied->reply.granted);
  world.restore_broker(2);

  const auto after = world.engine().build_user_request(
      alice.credentials(),
      world.spec(alice, 7e6, {seconds(2), seconds(602)}), 0);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(world.engine().reserve(*after, seconds(30))->reply.granted);

  const auto verdict =
      AuditLog::verify_chain(AuditLog::global().export_jsonl());
  ASSERT_TRUE(verdict.ok()) << verdict.error().to_text();
  EXPECT_EQ(*verdict, AuditLog::global().size());

  // The denied RAR's collected tree records the failure at the hop that
  // went dark, with the source hop's forward stage tagged failed.
  SpanCollector collector;
  world.collect(collector);
  const auto tree = collector.flatten(denied->trace_id);
  ASSERT_FALSE(tree.empty());
  EXPECT_TRUE(tree.front().span.failed);
  expect_tree_matches_reference(collector, world.tracer(),
                                denied->trace_id);
}

TEST(ObsPropagation, TamperingWithExportedChainIsDetected) {
  reset_globals();
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 5e6, {0, seconds(600)}), 0);
  ASSERT_TRUE(msg.ok());
  ASSERT_TRUE(world.engine().reserve(*msg, seconds(1))->reply.granted);

  const std::string jsonl = AuditLog::global().export_jsonl();
  ASSERT_TRUE(AuditLog::verify_chain(jsonl).ok());

  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    const std::size_t nl = jsonl.find('\n', start);
    if (nl == std::string::npos) break;
    lines.push_back(jsonl.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_GE(lines.size(), 3u);

  auto join = [](const std::vector<std::string>& ls) {
    std::string out;
    for (const auto& l : ls) {
      out += l;
      out += '\n';
    }
    return out;
  };

  // (a) Editing a field value breaks that record's own hash.
  {
    auto tampered = lines;
    const std::size_t pos = tampered[1].find("\"domain\"");
    ASSERT_NE(pos, std::string::npos);
    tampered[1].replace(pos, 8, "\"d0main\"");
    EXPECT_FALSE(AuditLog::verify_chain(join(tampered)).ok());
  }
  // (b) Reordering intact records breaks the prev links.
  {
    auto tampered = lines;
    std::swap(tampered[0], tampered[1]);
    EXPECT_FALSE(AuditLog::verify_chain(join(tampered)).ok());
  }
  // (c) Deleting a middle record breaks the link across the gap.
  {
    auto tampered = lines;
    tampered.erase(tampered.begin() + 1);
    EXPECT_FALSE(AuditLog::verify_chain(join(tampered)).ok());
  }
  // Truncating from the front is NOT tampering: eviction does exactly
  // that, and the chain stays verifiable from any suffix.
  {
    auto suffix = lines;
    suffix.erase(suffix.begin());
    EXPECT_TRUE(AuditLog::verify_chain(join(suffix)).ok());
  }
}

TEST(ObsPropagation, EvictionKeepsChainVerifiable) {
  AuditLog log;
  log.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    log.append("DomainA", audit_kind::kAdmission,
               {{"result", "ok"}, {"user", "Alice"}});
  }
  EXPECT_EQ(log.size(), 4u);
  const auto verdict = AuditLog::verify_chain(log.export_jsonl());
  ASSERT_TRUE(verdict.ok()) << verdict.error().to_text();
  EXPECT_EQ(*verdict, 4u);
}

}  // namespace
}  // namespace e2e::obs
