#include "sig/message.hpp"

#include <gtest/gtest.h>

namespace e2e::sig {
namespace {

struct Keys {
  crypto::KeyPair user;
  crypto::KeyPair bb_a;
  crypto::KeyPair bb_b;
};

const Keys& keys() {
  static const Keys k = [] {
    Rng rng(99);
    return Keys{crypto::generate_keypair(rng, 256),
                crypto::generate_keypair(rng, 256),
                crypto::generate_keypair(rng, 256)};
  }();
  return k;
}

bb::ResSpec sample_spec() {
  bb::ResSpec s;
  s.user = "CN=Alice,O=DomainA,C=US";
  s.source_domain = "DomainA";
  s.destination_domain = "DomainC";
  s.rate_bits_per_s = 10e6;
  s.burst_bits = 30000;
  s.interval = {0, seconds(600)};
  return s;
}

RarMessage sample_user_message() {
  return RarMessage::create_user_request(
      sample_spec(), "CN=BB-DomainA,O=DomainA,C=US",
      {to_bytes("cap-cert-cas"), to_bytes("cap-cert-user")}, keys().user.priv);
}

BrokerLayer sample_layer_a() {
  BrokerLayer layer;
  layer.upstream_certificate = to_bytes("cert-of-user");
  layer.downstream_dn = "CN=BB-DomainB,O=DomainB,C=US";
  layer.capability_certs = {to_bytes("cap-cert-a")};
  layer.augmentations = {{"TE.excess", "drop"}, {"Cost.offer", "0.02"}};
  layer.signer_dn = "CN=BB-DomainA,O=DomainA,C=US";
  return layer;
}

TEST(RarMessage, UserSignatureVerifies) {
  const RarMessage msg = sample_user_message();
  EXPECT_TRUE(msg.verify_user_signature(keys().user.pub));
  EXPECT_FALSE(msg.verify_user_signature(keys().bb_a.pub));
}

TEST(RarMessage, EncodeDecodeRoundTripUserOnly) {
  const RarMessage msg = sample_user_message();
  const auto back = RarMessage::decode(msg.encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->user_layer().res_spec, sample_spec());
  EXPECT_EQ(back->user_layer().source_bb_dn, "CN=BB-DomainA,O=DomainA,C=US");
  ASSERT_EQ(back->user_layer().capability_certs.size(), 2u);
  EXPECT_TRUE(back->verify_user_signature(keys().user.pub));
}

TEST(RarMessage, BrokerLayerSignatureVerifies) {
  RarMessage msg = sample_user_message();
  msg.append_broker_layer(sample_layer_a(), keys().bb_a.priv);
  EXPECT_TRUE(msg.verify_broker_signature(0, keys().bb_a.pub));
  EXPECT_FALSE(msg.verify_broker_signature(0, keys().bb_b.pub));
  // The user layer still verifies after extension.
  EXPECT_TRUE(msg.verify_user_signature(keys().user.pub));
}

TEST(RarMessage, SignerCallbackOverloadMatchesKeyOverload) {
  RarMessage via_key = sample_user_message();
  via_key.append_broker_layer(sample_layer_a(), keys().bb_a.priv);
  RarMessage via_callback = sample_user_message();
  via_callback.append_broker_layer(sample_layer_a(), [](BytesView tbs) {
    return crypto::sign(keys().bb_a.priv, tbs);
  });
  EXPECT_EQ(via_key.encode(), via_callback.encode());
}

TEST(RarMessage, NestedLayersRoundTrip) {
  RarMessage msg = sample_user_message();
  msg.append_broker_layer(sample_layer_a(), keys().bb_a.priv);
  BrokerLayer layer_b;
  layer_b.upstream_certificate = to_bytes("cert-of-a");
  layer_b.downstream_dn = "CN=BB-DomainC,O=DomainC,C=US";
  layer_b.signer_dn = "CN=BB-DomainB,O=DomainB,C=US";
  msg.append_broker_layer(std::move(layer_b), keys().bb_b.priv);

  const auto back = RarMessage::decode(msg.encode());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->depth(), 2u);
  EXPECT_TRUE(back->verify_user_signature(keys().user.pub));
  EXPECT_TRUE(back->verify_broker_signature(0, keys().bb_a.pub));
  EXPECT_TRUE(back->verify_broker_signature(1, keys().bb_b.pub));
  EXPECT_EQ(back->broker_layers()[0].augmentations.size(), 2u);
  EXPECT_EQ(back->broker_layers()[0].augmentations[0].name, "TE.excess");
}

TEST(RarMessage, OuterSignatureCoversInnerLayers) {
  // Tamper with an inner field after the outer layer was signed: the outer
  // signature must break even though the inner one (recomputed over the
  // tampered inner content by the attacker) could be forged only with the
  // inner key.
  RarMessage msg = sample_user_message();
  msg.append_broker_layer(sample_layer_a(), keys().bb_a.priv);

  Bytes wire = msg.encode();
  // Flip one byte inside the user layer region (bandwidth field area).
  wire[40] ^= 0x01;
  const auto tampered = RarMessage::decode(wire);
  if (tampered.ok()) {
    EXPECT_FALSE(tampered->verify_broker_signature(0, keys().bb_a.pub) &&
                 tampered->verify_user_signature(keys().user.pub));
  }
}

TEST(RarMessage, WireSizeGrowsPerLayer) {
  RarMessage msg = sample_user_message();
  const std::size_t s0 = msg.wire_size();
  msg.append_broker_layer(sample_layer_a(), keys().bb_a.priv);
  const std::size_t s1 = msg.wire_size();
  EXPECT_GT(s1, s0);
}

TEST(RarMessage, DecodeRejectsGarbage) {
  EXPECT_FALSE(RarMessage::decode(to_bytes("nonsense")).ok());
  EXPECT_FALSE(RarMessage::decode(Bytes{}).ok());
  RarMessage msg = sample_user_message();
  Bytes truncated = msg.encode();
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(RarMessage::decode(truncated).ok());
}

TEST(RarMessage, TbsIsDeterministic) {
  RarMessage msg = sample_user_message();
  EXPECT_EQ(msg.user_tbs(), msg.user_tbs());
  msg.append_broker_layer(sample_layer_a(), keys().bb_a.priv);
  EXPECT_EQ(msg.broker_tbs(0), msg.broker_tbs(0));
}

// ---------------------------------------------------------------------------
// Property tests (ISSUE 2 satellite): the TLV codec under random wire
// corruption. For any handful of random byte/bit flips on an encoded
// multi-layer RAR, decode must either fail cleanly or yield a message
// that no longer verifies as the original — corruption is never silently
// accepted as authentic. Seeded, so a failure reproduces exactly.
// ---------------------------------------------------------------------------

RarMessage sample_two_layer_message() {
  RarMessage msg = sample_user_message();
  msg.append_broker_layer(sample_layer_a(), keys().bb_a.priv);
  BrokerLayer layer_b;
  layer_b.upstream_certificate = to_bytes("cert-of-a");
  layer_b.downstream_dn = "CN=BB-DomainC,O=DomainC,C=US";
  layer_b.signer_dn = "CN=BB-DomainB,O=DomainB,C=US";
  msg.append_broker_layer(std::move(layer_b), keys().bb_b.priv);
  return msg;
}

bool verifies_as_original(const RarMessage& decoded) {
  return decoded.depth() == 2 &&
         decoded.verify_user_signature(keys().user.pub) &&
         decoded.verify_broker_signature(0, keys().bb_a.pub) &&
         decoded.verify_broker_signature(1, keys().bb_b.pub);
}

TEST(RarMessageProperty, RandomBitFlipsNeverVerifyAsOriginal) {
  const Bytes wire = sample_two_layer_message().encode();
  Rng rng(20010801);
  for (int iter = 0; iter < 500; ++iter) {
    SCOPED_TRACE(::testing::Message() << "iteration " << iter);
    Bytes mutated = wire;
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos = rng.next_below(mutated.size());
      const std::uint8_t mask =
          static_cast<std::uint8_t>(1u << rng.next_below(8));
      mutated[pos] = static_cast<std::uint8_t>(mutated[pos] ^ mask);
    }
    const auto decoded = RarMessage::decode(mutated);  // must not crash
    if (!decoded.ok()) continue;  // clean decode failure: fine
    EXPECT_FALSE(verifies_as_original(*decoded));
  }
}

TEST(RarMessageProperty, RandomByteStompsNeverVerifyAsOriginal) {
  const Bytes wire = sample_two_layer_message().encode();
  Rng rng(31337);
  for (int iter = 0; iter < 500; ++iter) {
    SCOPED_TRACE(::testing::Message() << "iteration " << iter);
    Bytes mutated = wire;
    const std::size_t stomps = 1 + rng.next_below(4);
    for (std::size_t s = 0; s < stomps; ++s) {
      const std::size_t pos = rng.next_below(mutated.size());
      std::uint8_t value = static_cast<std::uint8_t>(rng.next_below(256));
      if (value == mutated[pos]) value = static_cast<std::uint8_t>(value ^ 1u);
      mutated[pos] = value;
    }
    const auto decoded = RarMessage::decode(mutated);
    if (!decoded.ok()) continue;
    EXPECT_FALSE(verifies_as_original(*decoded));
  }
}

TEST(RarMessageProperty, EveryTruncationFailsOrLosesLayers) {
  // A truncation that lands exactly on a layer boundary legitimately
  // decodes to a message with FEWER layers (the outer signatures are
  // simply gone); every other cut must fail cleanly. Either way the
  // result never passes as the complete 2-layer original, and the parser
  // never crashes or reads past the buffer.
  const Bytes wire = sample_two_layer_message().encode();
  std::size_t boundary_decodes = 0;
  for (std::size_t len = 0; len < wire.size(); ++len) {
    SCOPED_TRACE(::testing::Message() << "length " << len);
    Bytes truncated(wire.begin(),
                    wire.begin() + static_cast<std::ptrdiff_t>(len));
    const auto decoded = RarMessage::decode(truncated);
    if (decoded.ok()) {
      ++boundary_decodes;
      EXPECT_LT(decoded->depth(), 2u);
      EXPECT_FALSE(verifies_as_original(*decoded));
    }
  }
  // Exactly the two layer boundaries (user-only, user+A) can decode.
  EXPECT_LE(boundary_decodes, 2u);
}

TEST(RarReply, Factories) {
  const RarReply ok = RarReply::approve();
  EXPECT_TRUE(ok.granted);
  const RarReply bad =
      RarReply::deny(make_error(ErrorCode::kPolicyDenied, "no", "DomainB"));
  EXPECT_FALSE(bad.granted);
  EXPECT_EQ(bad.denial.origin, "DomainB");
}

}  // namespace
}  // namespace e2e::sig
