// Seeded soak harness (ISSUE 2 tentpole): hundreds of randomized trials
// against a faulty fabric, each asserting the end-to-end safety invariant —
// a trial either finishes fully established (one handle per domain, cleanly
// releasable) or leaves ZERO residual committed bandwidth anywhere.
//
// Reproducibility: the base seed comes from E2E_SOAK_SEED (default
// 20010801) and is printed up front; each trial announces its mix, index
// and derived fault seed via SCOPED_TRACE, so any failure names the exact
// seed to rerun with. scripts/tier1.sh --soak runs this binary under
// ASan/UBSan across three fixed seeds.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "testing_world.hpp"

namespace e2e::sig {
namespace {

using testing::ChainWorld;
using testing::ChainWorldConfig;
using testing::WorldUser;

std::uint64_t soak_seed() {
  if (const char* env = std::getenv("E2E_SOAK_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20010801ull;
}

struct Mix {
  const char* name;
  FaultProfile profile;
  bool random_partitions;   // partition a random link on some trials
  bool random_crashes;      // crash a random middle broker on some trials
};

Mix lossy_mix() {
  Mix m{"lossy", {}, false, false};
  m.profile.drop = 0.15;
  m.profile.duplicate = 0.10;
  m.profile.corrupt = 0.10;
  m.profile.jitter = 0.20;
  m.profile.max_jitter = milliseconds(40);
  return m;
}

Mix chaos_mix() {
  Mix m{"chaos", {}, true, false};
  m.profile.drop = 0.30;
  m.profile.duplicate = 0.20;
  m.profile.corrupt = 0.20;
  m.profile.jitter = 0.40;
  m.profile.max_jitter = milliseconds(80);
  return m;
}

Mix dark_mix() {
  Mix m{"dark", {}, false, true};
  m.profile.drop = 0.10;
  return m;
}

/// Run `trials` randomized reservations against one world and check the
/// invariant after every one. Reports the number of granted trials via
/// `granted_out` so the suite can sanity-check both outcomes occur
/// (out-param because ASSERT_* requires a void-returning function).
void run_mix(const Mix& mix, std::uint64_t base_seed, std::size_t mix_index,
             std::size_t trials, std::size_t* granted_out) {
  constexpr std::size_t kDomains = 4;
  const std::uint64_t fault_seed = base_seed ^ (0x9e3779b9ull * mix_index);

  ChainWorldConfig config;
  config.domains = kDomains;
  config.fault_profile = mix.profile;
  config.fault_seed = fault_seed;
  // Keep trials short: a modest budget with quick timeouts so a mix of a
  // few hundred trials stays in the sub-second range per seed.
  config.retry_policy.max_attempts = 3;
  config.retry_policy.base_timeout = milliseconds(50);
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);

  // Trial-control randomness is separate from both the world RNG (crypto)
  // and the fabric's fault RNG, so the three streams never perturb each
  // other across mixes.
  Rng control(base_seed ^ 0x736f616bull ^ mix_index);

  std::size_t& granted = *granted_out;
  granted = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    SCOPED_TRACE(::testing::Message()
                 << "mix=" << mix.name << " trial=" << trial
                 << " base_seed=" << base_seed
                 << " fault_seed=" << fault_seed
                 << " (rerun: E2E_SOAK_SEED=" << base_seed << ")");

    // Per-trial topology faults on top of the probabilistic profile.
    std::size_t cut_a = 0, cut_b = 0, down = 0;
    const bool cut = mix.random_partitions && control.next_bool(0.3);
    if (cut) {
      cut_a = control.next_below(kDomains - 1);
      cut_b = cut_a + 1;
      world.partition_link(cut_a, cut_b);
    }
    const bool crash = mix.random_crashes && control.next_bool(0.3);
    if (crash) {
      down = 1 + control.next_below(kDomains - 2);  // middle broker only
      world.crash_broker(down);
    }

    // Unique per-trial request: rate and interval both vary so no two
    // trials ever produce the same request digest.
    const double rate = 1e6 + 1e5 * static_cast<double>(trial) +
                        1e4 * static_cast<double>(control.next_below(9));
    const TimeInterval interval{seconds(static_cast<std::int64_t>(trial)),
                                seconds(static_cast<std::int64_t>(trial) + 600)};
    const auto msg = world.engine().build_user_request(
        alice.credentials(), world.spec(alice, rate, interval), 0);
    ASSERT_TRUE(msg.ok()) << msg.error().to_text();
    const auto outcome =
        world.engine().reserve(*msg, seconds(static_cast<std::int64_t>(trial)));
    ASSERT_TRUE(outcome.ok()) << outcome.error().to_text();

    if (outcome->reply.granted) {
      ++granted;
      // Fully established: one handle per domain, all releasable.
      ASSERT_EQ(outcome->reply.handles.size(), kDomains);
      const Status released = world.engine().release_end_to_end(outcome->reply);
      ASSERT_TRUE(released.ok()) << released.error().to_text();
    }

    if (cut) world.heal_link(cut_a, cut_b);
    if (crash) world.restore_broker(down);

    // THE invariant: granted-and-released or denied — either way, zero
    // residual committed bandwidth across every broker on the path.
    ASSERT_EQ(world.total_reservations(), 0u);
    ASSERT_EQ(world.total_committed_at(
                  seconds(static_cast<std::int64_t>(trial) + 100)),
              0.0);

    // Model reply-cache expiry between trials so the per-node caches don't
    // grow without bound over hundreds of trials.
    world.engine().forget_completed_requests();
  }
}

constexpr std::size_t kTrialsPerMix = 110;  // 3 mixes -> 330 trials total

TEST(SigSoak, LossyMixLeavesNoResidualState) {
  const std::uint64_t seed = soak_seed();
  std::printf("sig_soak: mix=lossy seed=%llu trials=%zu\n",
              static_cast<unsigned long long>(seed), kTrialsPerMix);
  std::size_t granted = 0;
  run_mix(lossy_mix(), seed, 0, kTrialsPerMix, &granted);
  std::printf("sig_soak: mix=lossy granted=%zu/%zu\n", granted, kTrialsPerMix);
  // A lossy-but-connected fabric with retries must still establish some
  // reservations — all-deny would mean the retry path is broken.
  EXPECT_GT(granted, 0u);
}

TEST(SigSoak, ChaosMixLeavesNoResidualState) {
  const std::uint64_t seed = soak_seed();
  std::printf("sig_soak: mix=chaos seed=%llu trials=%zu\n",
              static_cast<unsigned long long>(seed), kTrialsPerMix);
  std::size_t granted = 0;
  run_mix(chaos_mix(), seed, 1, kTrialsPerMix, &granted);
  std::printf("sig_soak: mix=chaos granted=%zu/%zu denied=%zu\n", granted,
              kTrialsPerMix, kTrialsPerMix - granted);
  // Heavy loss + partitions must produce at least some denials — if every
  // trial sails through, the fault model isn't engaged.
  EXPECT_LT(granted, kTrialsPerMix);
}

TEST(SigSoak, DarkBrokerMixLeavesNoResidualState) {
  const std::uint64_t seed = soak_seed();
  std::printf("sig_soak: mix=dark seed=%llu trials=%zu\n",
              static_cast<unsigned long long>(seed), kTrialsPerMix);
  std::size_t granted = 0;
  run_mix(dark_mix(), seed, 2, kTrialsPerMix, &granted);
  std::printf("sig_soak: mix=dark granted=%zu/%zu denied=%zu\n", granted,
              kTrialsPerMix, kTrialsPerMix - granted);
  EXPECT_GT(granted, 0u);
  EXPECT_LT(granted, kTrialsPerMix);
}

}  // namespace
}  // namespace e2e::sig
