// RarReply wire format.
#include <gtest/gtest.h>

#include "sig/message.hpp"

namespace e2e::sig {
namespace {

TEST(RarReplyWire, ApprovalRoundTrip) {
  RarReply reply = RarReply::approve();
  reply.handles = {{"DomainA", "DomainA-resv-1"},
                   {"DomainB", "DomainB-resv-7"},
                   {"DomainC", "DomainC-resv-2"}};
  reply.tunnel_id = "tunnel-3";
  const auto back = RarReply::decode(reply.encode());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->granted);
  ASSERT_EQ(back->handles.size(), 3u);
  EXPECT_EQ(back->handles[1].first, "DomainB");
  EXPECT_EQ(back->handles[1].second, "DomainB-resv-7");
  EXPECT_EQ(back->tunnel_id, "tunnel-3");
}

TEST(RarReplyWire, DenialRoundTrip) {
  const RarReply reply = RarReply::deny(
      make_error(ErrorCode::kAdmissionRejected, "SLA exhausted", "DomainB"));
  const auto back = RarReply::decode(reply.encode());
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->granted);
  EXPECT_EQ(back->denial.code, ErrorCode::kAdmissionRejected);
  EXPECT_EQ(back->denial.message, "SLA exhausted");
  EXPECT_EQ(back->denial.origin, "DomainB");
}

TEST(RarReplyWire, EmptyApproval) {
  const auto back = RarReply::decode(RarReply::approve().encode());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->granted);
  EXPECT_TRUE(back->handles.empty());
  EXPECT_TRUE(back->tunnel_id.empty());
}

TEST(RarReplyWire, RejectsGarbageAndTrailingBytes) {
  EXPECT_FALSE(RarReply::decode(to_bytes("nope")).ok());
  Bytes enc = RarReply::approve().encode();
  enc.push_back(0x00);
  EXPECT_FALSE(RarReply::decode(enc).ok());
}

TEST(RarReplyWire, EncodingIsCanonical) {
  RarReply a = RarReply::approve();
  a.handles = {{"D", "h"}};
  RarReply b = RarReply::approve();
  b.handles = {{"D", "h"}};
  EXPECT_EQ(a.encode(), b.encode());
  b.handles[0].second = "h2";
  EXPECT_NE(a.encode(), b.encode());
}

}  // namespace
}  // namespace e2e::sig
