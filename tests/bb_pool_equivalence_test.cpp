// Differential property test: the timeline-indexed capacity pool must be
// decision-for-decision identical to the original full-scan implementation
// (kept as the `*_reference` oracle inside CapacityPool).
//
// Two angles:
//   1. Within one pool, every query answered by the timeline index must
//      exactly equal the reference scan over the same commitment map.
//   2. Two pools fed the same seeded workload — one deciding admissions
//      with the timeline, one with the reference scan — must admit and
//      reject the very same requests and end in identical states.
//
// Rates are exact multiples of 1 Mb/s, so sums of any subset are exact in
// double and "exactly equal" means bit-equal, regardless of the order the
// two implementations accumulate in. scripts/tier1.sh --load re-runs this
// binary under the ASan/UBSan preset.
#include "bb/admission.hpp"

#include <gtest/gtest.h>

#include "bb/timeline.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace e2e::bb {
namespace {

struct Op {
  bool is_release = false;
  std::string key;
  TimeInterval interval{0, 0};
  double rate = 0;
};

/// Seeded workload: mostly commits (some of which must be rejected — the
/// pool is sized so roughly half the offered load fits), with releases
/// mixed in to churn the timeline's boundary set.
std::vector<Op> make_workload(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<Op> ops;
  std::vector<std::string> live;
  for (std::size_t i = 0; i < n; ++i) {
    if (!live.empty() && rng.next_bool(0.35)) {
      const std::size_t pick = rng.next_below(live.size());
      ops.push_back({true, live[pick], {0, 0}, 0});
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      continue;
    }
    Op op;
    op.key = "r" + std::to_string(i);
    const SimTime start = static_cast<SimTime>(rng.next_below(500)) * 1000;
    const SimDuration len =
        (1 + static_cast<SimDuration>(rng.next_below(120))) * 1000;
    op.interval = {start, start + len};
    op.rate = 1e6 * static_cast<double>(1 + rng.next_below(40));
    ops.push_back(op);
    live.push_back(op.key);
  }
  return ops;
}

class PoolEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PoolEquivalence, TimelineMatchesReferenceExactly) {
  const double capacity = 400e6;
  CapacityPool timeline_pool(capacity);
  CapacityPool reference_pool(capacity);
  std::size_t admitted = 0;
  std::size_t rejected = 0;
  for (const Op& op : make_workload(GetParam(), 400)) {
    if (op.is_release) {
      // Releases only target keys both pools admitted (decisions are
      // asserted identical below, so "held by one" implies "held by both"
      // — but a rejected commit's key never enters either).
      const bool t_holds = timeline_pool.holds(op.key);
      ASSERT_EQ(t_holds, reference_pool.holds(op.key)) << op.key;
      if (!t_holds) continue;
      ASSERT_TRUE(timeline_pool.release(op.key).ok());
      ASSERT_TRUE(reference_pool.release(op.key).ok());
    } else {
      // Both pools must agree BEFORE committing...
      ASSERT_EQ(timeline_pool.can_admit(op.interval, op.rate),
                reference_pool.can_admit_reference(op.interval, op.rate))
          << op.key;
      // ...and take the same decision (timeline decides one pool,
      // reference scan the other).
      const Status t = timeline_pool.commit(op.key, op.interval, op.rate);
      const Status r =
          reference_pool.commit_reference(op.key, op.interval, op.rate);
      ASSERT_EQ(t.ok(), r.ok()) << op.key;
      (t.ok() ? admitted : rejected)++;
    }
    // Cross-implementation state checks: exact equality, both within one
    // pool (timeline vs reference over the same commitments) and across
    // the two pools.
    ASSERT_EQ(timeline_pool.commitment_count(),
              reference_pool.commitment_count());
    const TimeInterval probe{op.interval.start,
                             op.interval.start + 240 * 1000};
    if (!op.is_release) {
      ASSERT_EQ(timeline_pool.headroom(probe),
                timeline_pool.headroom_reference(probe));
      ASSERT_EQ(timeline_pool.headroom(probe),
                reference_pool.headroom_reference(probe));
      ASSERT_EQ(timeline_pool.peak_committed(probe),
                reference_pool.peak_committed_reference(probe));
      ASSERT_EQ(timeline_pool.committed_at(op.interval.start),
                reference_pool.committed_at_reference(op.interval.start));
    }
  }
  // The workload must exercise both outcomes to prove anything.
  EXPECT_GT(admitted, 0u);
  EXPECT_GT(rejected, 0u);
}

// Dense instant sweep after a full workload: the piecewise-constant
// profiles must agree everywhere, not just at op-adjacent probes.
TEST_P(PoolEquivalence, ProfileSweepIsIdentical) {
  CapacityPool pool(400e6);
  for (const Op& op : make_workload(GetParam() ^ 0x9e3779b97f4a7c15ULL, 250)) {
    if (op.is_release) {
      if (pool.holds(op.key)) {
        ASSERT_TRUE(pool.release(op.key).ok());
      }
    } else {
      (void)pool.commit(op.key, op.interval, op.rate);
    }
  }
  for (SimTime t = 0; t <= 650 * 1000; t += 500) {
    ASSERT_EQ(pool.committed_at(t), pool.committed_at_reference(t)) << t;
  }
  for (SimTime t = 0; t < 650 * 1000; t += 7 * 1000) {
    const TimeInterval iv{t, t + 13 * 1000};
    ASSERT_EQ(pool.peak_committed(iv), pool.peak_committed_reference(iv))
        << t;
    ASSERT_EQ(pool.headroom(iv), pool.headroom_reference(iv)) << t;
  }
}

// Batch admissions obey the documented semantics: identical to committing
// the same requests sequentially in ascending interval.start order (ties
// by input position) — checked against a reference-scan pool.
TEST_P(PoolEquivalence, BatchMatchesSortedSequentialReference) {
  Rng rng(GetParam() + 17);
  const double capacity = 200e6;
  CapacityPool batch_pool(capacity);
  CapacityPool sequential_pool(capacity);
  std::vector<CapacityPool::BatchRequest> batch;
  for (int i = 0; i < 120; ++i) {
    const SimTime start = static_cast<SimTime>(rng.next_below(50)) * 1000;
    const SimDuration len =
        (1 + static_cast<SimDuration>(rng.next_below(30))) * 1000;
    batch.push_back({"b" + std::to_string(i),
                     {start, start + len},
                     1e6 * static_cast<double>(1 + rng.next_below(30))});
  }
  const std::vector<Status> results = batch_pool.commit_batch(batch);
  ASSERT_EQ(results.size(), batch.size());

  std::vector<std::size_t> order(batch.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return batch[a].interval.start < batch[b].interval.start;
                   });
  for (std::size_t idx : order) {
    const Status expect = sequential_pool.commit_reference(
        batch[idx].key, batch[idx].interval, batch[idx].rate);
    ASSERT_EQ(results[idx].ok(), expect.ok()) << batch[idx].key;
  }
  ASSERT_EQ(batch_pool.commitment_count(), sequential_pool.commitment_count());
  for (SimTime t = 0; t <= 90 * 1000; t += 1000) {
    ASSERT_EQ(batch_pool.committed_at(t),
              sequential_pool.committed_at_reference(t))
        << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolEquivalence,
                         ::testing::Values(2, 11, 303, 20010801, 987654321));

// ---------------------------------------------------------------------------
// ISSUE 8: the pool's index moved from std::map boundaries to the flat
// sorted-vector FlatTimeline. MapTimeline keeps the PR-5 implementation
// verbatim as the oracle; the two must stay entry-for-entry identical —
// levels bit-equal (exact 1 Mb/s multiples), refcounts equal, and pruned
// boundaries pruned in both.

class TimelineEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimelineEquivalence, FlatMatchesMapOracleEntryForEntry) {
  FlatTimeline flat;
  MapTimeline oracle;
  Rng rng(GetParam());
  struct Live {
    TimeInterval interval;
    double rate;
  };
  std::vector<Live> live;
  // Coarse 1 ks time grid so boundaries collide often and refcounts climb
  // past 1 — the pruning discipline only shows up on shared boundaries.
  for (int i = 0; i < 600; ++i) {
    if (!live.empty() && rng.next_bool(0.4)) {
      const std::size_t pick = rng.next_below(live.size());
      flat.retire(live[pick].interval, live[pick].rate);
      oracle.retire(live[pick].interval, live[pick].rate);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const SimTime start = static_cast<SimTime>(rng.next_below(40)) * 1000;
      const SimDuration len =
          (1 + static_cast<SimDuration>(rng.next_below(25))) * 1000;
      const Live commitment{{start, start + len},
                            1e6 * static_cast<double>(1 + rng.next_below(20))};
      flat.apply(commitment.interval, commitment.rate);
      oracle.apply(commitment.interval, commitment.rate);
      live.push_back(commitment);
    }
    ASSERT_EQ(flat.size(), oracle.size()) << "op " << i;
    auto it = oracle.boundaries().begin();
    for (const FlatTimeline::Entry& entry : flat.entries()) {
      ASSERT_EQ(entry.time, it->first) << "op " << i;
      ASSERT_EQ(entry.level, it->second.level)
          << "op " << i << " t=" << entry.time;
      ASSERT_EQ(entry.refs, it->second.refs)
          << "op " << i << " t=" << entry.time;
      ++it;
    }
    // Point and peak probes, including instants strictly between
    // boundaries and before the first one.
    for (SimTime t = 0; t <= 70 * 1000; t += 500) {
      ASSERT_EQ(flat.committed_at(t), oracle.committed_at(t)) << t;
    }
    for (SimTime t = 0; t < 70 * 1000; t += 3 * 1000) {
      const TimeInterval iv{t, t + 7 * 1000};
      ASSERT_EQ(flat.peak_committed(iv), oracle.peak_committed(iv)) << t;
    }
  }
  // Drain to empty: every boundary's refcount must reach zero and prune.
  for (const Live& commitment : live) {
    flat.retire(commitment.interval, commitment.rate);
    oracle.retire(commitment.interval, commitment.rate);
  }
  EXPECT_TRUE(flat.empty());
  EXPECT_TRUE(oracle.empty());
}

// A boundary shared by two commitments survives the first retire (refs
// 2 -> 1) and is pruned by the second — in both implementations.
TEST(TimelineRefcount, SharedBoundaryPrunesOnLastRetire) {
  FlatTimeline flat;
  MapTimeline oracle;
  const TimeInterval a{1000, 5000};
  const TimeInterval b{5000, 9000};  // b.start == a.end: shared boundary
  for (auto* apply_both : {&a, &b}) {
    flat.apply(*apply_both, 2e6);
    oracle.apply(*apply_both, 2e6);
  }
  ASSERT_EQ(flat.size(), 3u);
  ASSERT_EQ(oracle.size(), 3u);
  EXPECT_EQ(flat.entries()[1].refs, 2);  // t=5000, end of a + start of b
  flat.retire(a, 2e6);
  oracle.retire(a, 2e6);
  ASSERT_EQ(flat.size(), 2u);  // t=1000 pruned; t=5000 survives on b's ref
  ASSERT_EQ(oracle.size(), 2u);
  EXPECT_EQ(flat.entries()[0].time, 5000);
  EXPECT_EQ(flat.entries()[0].refs, 1);
  EXPECT_EQ(flat.committed_at(6000), oracle.committed_at(6000));
  flat.retire(b, 2e6);
  oracle.retire(b, 2e6);
  EXPECT_TRUE(flat.empty());
  EXPECT_TRUE(oracle.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineEquivalence,
                         ::testing::Values(7, 404, 20010801));

}  // namespace
}  // namespace e2e::bb
