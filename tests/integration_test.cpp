// Cross-module integration tests: control plane (signalling) driving the
// data plane (DiffServ simulator), concurrency, and fuzzing of the wire
// formats.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "acct/billing.hpp"
#include "gara/edge_binding.hpp"
#include "gara/gara_api.hpp"
#include "net/simulator.hpp"
#include "testing_world.hpp"

namespace e2e {
namespace {

using testing::ChainWorld;
using testing::ChainWorldConfig;
using testing::WorldUser;

// ---------------------------------------------------------------------
// Control plane -> data plane: a granted end-to-end reservation makes the
// user's traffic premium on the simulator; releasing it demotes the flow.
// ---------------------------------------------------------------------
TEST(Integration, ReservationControlsDataPlane) {
  ChainWorld world;
  WorldUser alice = world.make_user("Alice", 0);

  net::Topology topo;
  const auto da = topo.add_domain("DomainA");
  const auto db = topo.add_domain("DomainB");
  const auto dc = topo.add_domain("DomainC");
  const auto ra = topo.add_router(da, "edge-A", true);
  const auto rb = topo.add_router(db, "core-B", false);
  const auto rc = topo.add_router(dc, "edge-C", true);
  const auto ab = topo.add_link(ra, rb, 100e6, milliseconds(5));
  topo.add_link(rb, rc, 100e6, milliseconds(5));
  net::Simulator sim(std::move(topo), 3);

  net::FlowDescription fd;
  fd.name = "alice";
  fd.source = ra;
  fd.destination = rc;
  fd.wants_premium = true;
  fd.pattern = net::TrafficPattern::cbr(9e6);
  const net::FlowId flow = sim.add_flow(fd).value();

  gara::EdgeBinding binding(sim, ab);
  binding.bind_flow(alice.dn.to_string(), flow);
  binding.attach(world.broker(0));

  // Phase 1: no reservation -> best effort only.
  sim.run_until(seconds(1));
  EXPECT_EQ(sim.stats(flow).delivered_premium_bits, 0u);

  // Phase 2: reserve end to end -> premium service.
  bb::ResSpec spec = world.spec(alice, 10e6, {0, seconds(10)});
  spec.burst_bits = 120000;
  const auto msg =
      world.engine().build_user_request(alice.credentials(), spec, 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_TRUE(outcome->reply.granted);
  const auto premium_at_1s = sim.stats(flow).delivered_premium_bits;
  sim.run_until(seconds(3));
  const auto premium_at_3s = sim.stats(flow).delivered_premium_bits;
  EXPECT_GT(premium_at_3s - premium_at_1s, static_cast<std::uint64_t>(14e6));

  // Phase 3: release -> back to best effort.
  ASSERT_TRUE(world.engine().release_end_to_end(outcome->reply).ok());
  const auto premium_after_release = sim.stats(flow).delivered_premium_bits;
  sim.run_until(seconds(5));
  EXPECT_LT(sim.stats(flow).delivered_premium_bits - premium_after_release,
            static_cast<std::uint64_t>(1e6));
}

// ---------------------------------------------------------------------
// Many users, limited SLA: admission control serializes the premium pie.
// ---------------------------------------------------------------------
TEST(Integration, ContentionRespectsSlaPool) {
  ChainWorldConfig config;
  config.sla_rate = 50e6;
  ChainWorld world(config);
  std::vector<WorldUser> users;
  users.reserve(8);
  for (int i = 0; i < 8; ++i) {
    users.push_back(world.make_user("User" + std::to_string(i), 0));
  }
  std::size_t granted = 0;
  std::vector<sig::RarReply> replies;
  for (auto& user : users) {
    const auto msg = world.engine().build_user_request(
        user.credentials(), world.spec(user, 10e6), 0);
    const auto outcome = world.engine().reserve(*msg, seconds(1));
    if (outcome->reply.granted) {
      ++granted;
      replies.push_back(outcome->reply);
    }
  }
  // 50 Mb/s SLA admits exactly five 10 Mb/s reservations.
  EXPECT_EQ(granted, 5u);
  // Releasing one admits one more.
  ASSERT_TRUE(world.engine().release_end_to_end(replies.front()).ok());
  const auto msg = world.engine().build_user_request(
      users.back().credentials(), world.spec(users.back(), 10e6), 0);
  EXPECT_TRUE(world.engine().reserve(*msg, seconds(1))->reply.granted);
}

// ---------------------------------------------------------------------
// Parallel source-based signalling is thread-safe across distinct brokers
// and rolls back cleanly under concurrent contention.
// ---------------------------------------------------------------------
TEST(Integration, ConcurrentParallelReservations) {
  ChainWorldConfig config;
  config.domains = 4;
  ChainWorld world(config);
  std::vector<WorldUser> users;
  for (int i = 0; i < 4; ++i) {
    users.push_back(
        world.make_user("User" + std::to_string(i), 0, true, true));
  }
  std::atomic<int> granted{0};
  std::vector<std::thread> threads;
  threads.reserve(users.size());
  for (auto& user : users) {
    threads.emplace_back([&world, &user, &granted] {
      for (int round = 0; round < 5; ++round) {
        const auto outcome = world.source_engine().reserve(
            world.names(), world.spec(user, 5e6), user.identity_cert,
            user.identity_keys.priv,
            sig::SourceDomainEngine::Mode::kParallel, seconds(1));
        if (outcome.ok() && outcome->reply.granted) {
          granted.fetch_add(1);
          ASSERT_TRUE(
              world.source_engine().release_end_to_end(outcome->reply).ok());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(granted.load(), 0);
  // Everything released: no residual commitments anywhere.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(world.broker(i).reservation_count(), 0u)
        << world.names()[i];
  }
}

// ---------------------------------------------------------------------
// Wire-format fuzzing: random bytes and random mutations of valid
// messages must never crash the decoders, and mutations must never yield
// a message that still fully verifies.
// ---------------------------------------------------------------------
TEST(Integration, RarDecoderSurvivesRandomBytes) {
  Rng rng(2468);
  for (int i = 0; i < 500; ++i) {
    Bytes noise(rng.next_below(400));
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next_u64());
    (void)sig::RarMessage::decode(noise);  // must not crash
  }
}

TEST(Integration, MutatedRarNeverVerifies) {
  ChainWorld world;
  WorldUser alice = world.make_user("Alice", 0);
  // Capture the exact message the destination received.
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 10e6), 0);
  sig::RarMessage original = *msg;
  sig::BrokerLayer layer;
  layer.upstream_certificate = alice.identity_cert.encode();
  layer.downstream_dn = world.broker(1).dn().to_string();
  layer.signer_dn = world.broker(0).dn().to_string();
  original.append_broker_layer(std::move(layer), [&world](BytesView tbs) {
    return world.broker(0).sign(tbs);
  });
  const Bytes wire = original.encode();

  Rng rng(1357);
  int decoded_ok = 0;
  for (int i = 0; i < 300; ++i) {
    Bytes mutated = wire;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    const auto dec = sig::RarMessage::decode(mutated);
    if (!dec.ok()) continue;
    ++decoded_ok;
    // If it decodes, at least one signature must now fail (unless the
    // mutation hit a non-signed byte, which cannot happen: every byte of
    // the encoding is covered by the outermost layer's TBS except that
    // layer's own signature bytes — flipping those breaks that check).
    const bool user_ok =
        dec->verify_user_signature(alice.identity_cert.subject_public_key());
    const bool broker_ok =
        dec->depth() == 1 &&
        dec->verify_broker_signature(0, world.broker(0).public_key());
    EXPECT_FALSE(user_ok && broker_ok) << "mutation at byte " << pos;
  }
  EXPECT_GT(decoded_ok, 0);  // some mutations survive framing; that's fine
}

TEST(Integration, CertificateDecoderSurvivesRandomBytes) {
  Rng rng(9753);
  for (int i = 0; i < 500; ++i) {
    Bytes noise(rng.next_below(300));
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next_u64());
    (void)crypto::Certificate::decode(noise);
    (void)bb::ResSpec::decode(noise);
    (void)crypto::PublicKey::decode(noise);
  }
}

// ---------------------------------------------------------------------
// Randomized lifecycle stress: arbitrary interleavings of reserve and
// release must keep every broker's bookkeeping exact — at the end of each
// round, committed capacity equals the sum of live reservations, and after
// draining everything all pools are empty.
// ---------------------------------------------------------------------
class EngineLifecycleStress : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EngineLifecycleStress, NoLeaksUnderRandomInterleavings) {
  ChainWorldConfig config;
  config.sla_rate = 200e6;
  ChainWorld world(config);
  WorldUser alice = world.make_user("Alice", 0);
  Rng rng(GetParam());
  std::vector<sig::RarReply> live;
  double live_rate = 0;
  const TimeInterval window{0, seconds(600)};
  for (int step = 0; step < 60; ++step) {
    if (!live.empty() && rng.next_bool(0.4)) {
      const std::size_t pick = rng.next_below(live.size());
      live_rate -= 1e6;
      ASSERT_TRUE(world.engine().release_end_to_end(live[pick]).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      bb::ResSpec spec = world.spec(alice, 1e6, window);
      const auto msg =
          world.engine().build_user_request(alice.credentials(), spec, 0);
      const auto outcome = world.engine().reserve(*msg, seconds(1));
      ASSERT_TRUE(outcome.ok());
      if (outcome->reply.granted) {
        live.push_back(outcome->reply);
        live_rate += 1e6;
      }
    }
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_NEAR(world.broker(i).committed_at(seconds(300)), live_rate,
                  1e-3)
          << "step " << step << " domain " << i;
      ASSERT_EQ(world.broker(i).reservation_count(), live.size());
    }
  }
  for (const auto& reply : live) {
    ASSERT_TRUE(world.engine().release_end_to_end(reply).ok());
  }
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(world.broker(i).reservation_count(), 0u);
    EXPECT_DOUBLE_EQ(world.broker(i).committed_at(seconds(300)), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineLifecycleStress,
                         ::testing::Values(11, 22, 33));

// ---------------------------------------------------------------------
// End-to-end + billing + tunnel composition: a long-lived tunnel's flows
// all bill to the user who owns the tunnel.
// ---------------------------------------------------------------------
TEST(Integration, TunnelFlowsComposeWithBilling) {
  ChainWorld world;
  WorldUser alice = world.make_user("Alice", 0);
  bb::ResSpec agg = world.spec(alice, 50e6, {0, hours(1)});
  agg.is_tunnel = true;
  const auto msg =
      world.engine().build_user_request(alice.credentials(), agg, 0);
  const auto established = world.engine().reserve(*msg, seconds(1));
  ASSERT_TRUE(established->reply.granted);

  acct::BillingLedger ledger(
      [](const std::string&, const std::string&) { return 0.01; });
  std::vector<std::string> path;
  for (const auto& [domain, handle] : established->reply.handles) {
    path.push_back(domain);
  }
  ledger.bill_reservation(path, alice.dn.to_string(), agg, "tunnel");
  EXPECT_DOUBLE_EQ(ledger.total_user_payments(),
                   50e6 / 1e6 * 3600 * 0.01);  // 50 Mb/s for an hour
  EXPECT_NEAR(ledger.balance(alice.dn.to_string()),
              -ledger.total_user_payments(), 1e-9);
}

}  // namespace
}  // namespace e2e
