// Unit tests for the metrics registry: counter/gauge/histogram semantics,
// concurrent increments, label dimensionality, export round-trip.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/instruments.hpp"

namespace e2e::obs {
namespace {

TEST(MetricsRegistry, CounterStartsAtZeroAndAccumulates) {
  MetricsRegistry registry;
  Counter& c = registry.counter("test_events_total");
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsRegistry, LabelsSeparateSeries) {
  MetricsRegistry registry;
  registry.counter("hops_total", {{"domain", "DomainA"}}).increment(3);
  registry.counter("hops_total", {{"domain", "DomainB"}}).increment(5);
  EXPECT_EQ(registry.counter("hops_total", {{"domain", "DomainA"}}).value(),
            3u);
  EXPECT_EQ(registry.counter("hops_total", {{"domain", "DomainB"}}).value(),
            5u);
  EXPECT_EQ(registry.series_count(), 2u);
}

TEST(MetricsRegistry, FindOrCreateReturnsStableReference) {
  MetricsRegistry registry;
  Counter& first = registry.counter("stable_total");
  first.increment();
  // Creating many other series must not move the original instrument.
  for (int i = 0; i < 100; ++i) {
    registry.counter("other_total", {{"i", std::to_string(i)}});
  }
  Counter& again = registry.counter("stable_total");
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(first.value(), 1u);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("active");
  g.set(10);
  g.add(5);
  g.add(-3);
  EXPECT_DOUBLE_EQ(g.value(), 12.0);
}

TEST(MetricsRegistry, HistogramBucketsCumulativeUpperBounds) {
  Histogram h({10, 100, 1000});
  h.observe(5);      // <= 10
  h.observe(10);     // <= 10 (le semantics: on the bound)
  h.observe(50);     // <= 100
  h.observe(999);    // <= 1000
  h.observe(5000);   // overflow
  const Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 5 + 10 + 50 + 999 + 5000);
}

TEST(MetricsRegistry, ConcurrentIncrementsLoseNothing) {
  MetricsRegistry registry;
  Counter& c = registry.counter("concurrent_total");
  Histogram& h = registry.histogram("concurrent_us");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  ThreadPool pool(kThreads);
  std::vector<std::future<void>> futures;
  futures.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    futures.push_back(pool.submit([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.increment();
        h.observe(1.0);
      }
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(h.sum(), kThreads * kPerThread);
}

TEST(MetricsRegistry, ResetValuesZeroesInPlace) {
  MetricsRegistry registry;
  Counter& c = registry.counter("reset_total", {{"k", "v"}});
  Histogram& h = registry.histogram("reset_us");
  c.increment(7);
  h.observe(123);
  registry.reset_values();
  // The same references stay valid and read zero.
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  // The series still exists (no destruction on reset).
  EXPECT_EQ(&c, &registry.counter("reset_total", {{"k", "v"}}));
}

TEST(MetricsRegistry, JsonExportRoundTripsValues) {
  MetricsRegistry registry;
  registry.counter("json_total", {{"domain", "DomainA"}}).increment(3);
  registry.gauge("json_active").set(2.5);
  registry.histogram("json_us", {{"engine", "hopbyhop"}}).observe(150);
  const std::string json = registry.to_json();
  // Families, labels and values all appear in the export.
  EXPECT_NE(json.find("\"json_total\""), std::string::npos);
  EXPECT_NE(json.find("\"domain\":\"DomainA\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":3"), std::string::npos);
  EXPECT_NE(json.find("\"json_active\""), std::string::npos);
  EXPECT_NE(json.find("2.5"), std::string::npos);
  EXPECT_NE(json.find("\"json_us\""), std::string::npos);
  EXPECT_NE(json.find("\"engine\":\"hopbyhop\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":150"), std::string::npos);
}

TEST(MetricsRegistry, TextExportIsDeterministic) {
  MetricsRegistry a;
  MetricsRegistry b;
  // Insert in different orders; the export must sort identically.
  a.counter("z_total").increment();
  a.counter("a_total", {{"k", "2"}}).increment();
  a.counter("a_total", {{"k", "1"}}).increment();
  b.counter("a_total", {{"k", "1"}}).increment();
  b.counter("a_total", {{"k", "2"}}).increment();
  b.counter("z_total").increment();
  EXPECT_EQ(a.to_text(), b.to_text());
}

TEST(MetricsRegistry, GlobalRegistryPreDeclaresTheCatalog) {
  MetricsRegistry& global = MetricsRegistry::global();
  // Using a catalog name must not invent a new family, and the instrument
  // type must match the declared one (histogram here).
  Histogram& h = global.histogram(kSigE2eLatencyUs, {{"engine", "test"}});
  (void)h;
  bool found = false;
  for (const auto& info : catalog()) {
    if (std::string(info.name) == kSigE2eLatencyUs) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(MetricsRegistry, ExportedNamesAreSortedAndUnique) {
  MetricsRegistry registry;
  registry.counter("b_total").increment();
  registry.counter("a_total").increment();
  registry.counter("a_total").increment();
  const auto names = registry.exported_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a_total");
  EXPECT_EQ(names[1], "b_total");
}

}  // namespace
}  // namespace e2e::obs
