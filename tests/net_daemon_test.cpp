// Daemon service tests (ISSUE 7 tentpole + satellite 4).
//
// Spins the full BbdService (StreamServer event loop + ChainWorld + staged
// SecureChannel handshake) inside the test process and drives it through
// BbdClient over real sockets. Covers: RPC round trips over TCP, UNIX
// sockets and the poll() fallback; byte-identity of daemon-produced grant
// bytes against an identically-seeded in-memory world; peer-disconnect
// error paths (mid-handshake, post-reserve orphan release); idle-timeout
// sweeps; and kShutdown graceful drain.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "kit/chain_world.hpp"
#include "net/bbd_client.hpp"
#include "net/bbd_service.hpp"
#include "obs/instruments.hpp"
#include "obs/metrics.hpp"

namespace e2e::net {
namespace {

BbdService::Options tcp_options() {
  BbdService::Options options;
  options.listen_on = {Endpoint::parse("tcp:127.0.0.1:0").value()};
  return options;
}

BbdClient::Options client_options(const BbdService& service) {
  BbdClient::Options options;
  options.connect_to = service.bound_endpoints().front();
  return options;
}

TEST(Daemon, PingOverTcp) {
  BbdService service(tcp_options());
  ASSERT_TRUE(service.start().ok());
  auto client = BbdClient::connect(client_options(service));
  ASSERT_TRUE(client.ok()) << client.error().to_text();
  const Status pinged = client.value().ping();
  EXPECT_TRUE(pinged.ok()) << pinged.error().to_text();
  service.stop();
  service.wait();
}

TEST(Daemon, PingOverUnixSocket) {
  BbdService::Options options;
  const std::string path = ::testing::TempDir() + "e2e_bbd_unix_test.sock";
  options.listen_on = {Endpoint::parse("unix:" + path).value()};
  BbdService service(std::move(options));
  ASSERT_TRUE(service.start().ok());
  auto client = BbdClient::connect(client_options(service));
  ASSERT_TRUE(client.ok()) << client.error().to_text();
  EXPECT_TRUE(client.value().ping().ok());
  service.stop();
  service.wait();
}

TEST(Daemon, PollFallbackServes) {
  BbdService::Options options = tcp_options();
  options.force_poll = true;
  BbdService service(std::move(options));
  ASSERT_TRUE(service.start().ok());
  EXPECT_STREQ(service.poller_name(), "poll");
  auto client = BbdClient::connect(client_options(service));
  ASSERT_TRUE(client.ok()) << client.error().to_text();
  EXPECT_TRUE(client.value().ping().ok());
  service.stop();
  service.wait();
}

// The heart of the tentpole: a reservation made through the daemon over a
// real socket must produce byte-identical grant bytes to the same
// operation sequence against an identically-seeded in-memory world.
TEST(Daemon, GrantBytesMatchInMemoryWorld) {
  // In-memory reference run.
  kit::ChainWorld local;
  kit::WorldUser alice = local.make_user("Alice", 0);
  auto msg = local.engine().build_user_request(
      alice.credentials(), local.spec(alice, 10e6), seconds(1));
  ASSERT_TRUE(msg.ok());
  auto local_outcome = local.engine().reserve(msg.value(), seconds(1));
  ASSERT_TRUE(local_outcome.ok());
  ASSERT_TRUE(local_outcome.value().reply.granted);

  // Daemon run: same seed (the default), same operation sequence.
  BbdService service(tcp_options());
  ASSERT_TRUE(service.start().ok());
  auto client = BbdClient::connect(client_options(service));
  ASSERT_TRUE(client.ok()) << client.error().to_text();
  auto dn = client.value().make_user("Alice", 0);
  ASSERT_TRUE(dn.ok()) << dn.error().to_text();
  EXPECT_EQ(dn.value(), alice.dn.to_string());
  BbdClient::ReserveArgs args;
  args.user = "Alice";
  args.rate = 10e6;
  args.at = seconds(1);
  auto remote = client.value().reserve(args);
  ASSERT_TRUE(remote.ok()) << remote.error().to_text();
  ASSERT_TRUE(remote.value().reply.granted);

  EXPECT_EQ(remote.value().reply_bytes, local_outcome.value().reply.encode());
  EXPECT_EQ(remote.value().latency, local_outcome.value().latency);
  EXPECT_EQ(remote.value().messages, local_outcome.value().messages);
  service.stop();
  service.wait();
}

TEST(Daemon, SurvivesDisconnectDuringHandshake) {
  BbdService service(tcp_options());
  ASSERT_TRUE(service.start().ok());
  {
    // A peer that opens a connection, dribbles half a length header, and
    // vanishes.
    auto torn = StreamSocket::connect(service.bound_endpoints().front());
    ASSERT_TRUE(torn.ok());
    ASSERT_TRUE(torn.value().send_raw(Bytes{0x00, 0x00}).ok());
  }
  {
    // A peer whose first frame is garbage rather than a ClientHello.
    auto garbage = StreamSocket::connect(service.bound_endpoints().front());
    ASSERT_TRUE(garbage.ok());
    ASSERT_TRUE(garbage.value().send_frame(Bytes(64, 0xcc)).ok());
    auto reply = garbage.value().recv_frame(std::chrono::milliseconds(2000));
    EXPECT_FALSE(reply.ok());  // daemon closes, never answers garbage
  }
  // The daemon still serves authenticated clients.
  auto client = BbdClient::connect(client_options(service));
  ASSERT_TRUE(client.ok()) << client.error().to_text();
  EXPECT_TRUE(client.value().ping().ok());
  service.stop();
  service.wait();
}

TEST(Daemon, TruncatedServerHelloIsAStatusOnTheClient) {
  const ServiceIdentity identity = make_service_identity(kDefaultAuthSeed);
  Rng rng(99);
  sig::HandshakeResponder responder(identity.daemon_endpoint(), 0, rng);
  sig::HandshakeInitiator initiator(identity.client_endpoint(), 0, rng);
  auto server_hello = responder.on_client_hello(initiator.client_hello());
  ASSERT_TRUE(server_hello.ok());
  const Bytes truncated(server_hello.value().begin(),
                        server_hello.value().begin() +
                            server_hello.value().size() / 2);
  auto finished = initiator.on_server_hello(truncated);
  ASSERT_FALSE(finished.ok());
  EXPECT_FALSE(initiator.done());
}

TEST(Daemon, DisconnectAfterReserveFiresOrphanRelease) {
  BbdService service(tcp_options());
  ASSERT_TRUE(service.start().ok());
  auto observer = BbdClient::connect(client_options(service));
  ASSERT_TRUE(observer.ok());
  {
    auto client = BbdClient::connect(client_options(service));
    ASSERT_TRUE(client.ok()) << client.error().to_text();
    ASSERT_TRUE(client.value().hello(/*release_on_disconnect=*/true).ok());
    ASSERT_TRUE(client.value().make_user("Bob", 0).ok());
    BbdClient::ReserveArgs args;
    args.user = "Bob";
    args.rate = 5e6;
    args.at = seconds(1);
    auto outcome = client.value().reserve(args);
    ASSERT_TRUE(outcome.ok()) << outcome.error().to_text();
    ASSERT_TRUE(outcome.value().reply.granted);
    auto held = observer.value().stats(seconds(1));
    ASSERT_TRUE(held.ok());
    EXPECT_GT(held.value().reservations, 0u);
    // `client` goes out of scope here: socket closes, no explicit release.
  }
  // The daemon notices the disconnect and releases every orphaned grant.
  std::size_t residual = 1;
  for (int i = 0; i < 100 && residual != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    auto stats = observer.value().stats(seconds(1));
    ASSERT_TRUE(stats.ok());
    residual = stats.value().reservations;
  }
  EXPECT_EQ(residual, 0u);
  service.stop();
  service.wait();
}

TEST(Daemon, ExplicitReleaseLeavesNothingForOrphanCleanup) {
  BbdService service(tcp_options());
  ASSERT_TRUE(service.start().ok());
  auto observer = BbdClient::connect(client_options(service));
  ASSERT_TRUE(observer.ok());
  {
    auto client = BbdClient::connect(client_options(service));
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.value().hello(true).ok());
    ASSERT_TRUE(client.value().make_user("Carol", 0).ok());
    BbdClient::ReserveArgs args;
    args.user = "Carol";
    args.rate = 5e6;
    args.at = seconds(1);
    auto outcome = client.value().reserve(args);
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(outcome.value().reply.granted);
    ASSERT_TRUE(
        client.value().release("hopbyhop", outcome.value().reply_bytes).ok());
    auto stats = observer.value().stats(seconds(1));
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().reservations, 0u);
  }
  // Disconnect must not double-release: state stays at zero and the daemon
  // keeps serving.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  auto stats = observer.value().stats(seconds(1));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().reservations, 0u);
  EXPECT_TRUE(observer.value().ping().ok());
  service.stop();
  service.wait();
}

TEST(Daemon, IdleConnectionsAreSweptAndCounted) {
  auto& idle_counter =
      obs::MetricsRegistry::global().counter(obs::kNetIdleClosesTotal);
  const std::uint64_t before = idle_counter.value();
  BbdService::Options options = tcp_options();
  options.idle_timeout = std::chrono::milliseconds(150);
  BbdService service(std::move(options));
  ASSERT_TRUE(service.start().ok());
  auto client = BbdClient::connect(client_options(service));
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value().ping().ok());
  // Stay silent past the idle budget; the daemon closes the connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  EXPECT_FALSE(client.value().ping().ok());
  EXPECT_GT(idle_counter.value(), before);
  service.stop();
  service.wait();
}

TEST(Daemon, ShutdownOpDrainsAndExits) {
  BbdService service(tcp_options());
  ASSERT_TRUE(service.start().ok());
  auto client = BbdClient::connect(client_options(service));
  ASSERT_TRUE(client.ok());
  // The response to the shutdown request itself must arrive (drain, not
  // slam): shutdown_daemon() round-trips before the daemon exits.
  EXPECT_TRUE(client.value().shutdown_daemon().ok());
  service.wait();  // returns because the loop exited on its own
}

TEST(Daemon, MetricQueryAnswersOverTheWire) {
  BbdService service(tcp_options());
  ASSERT_TRUE(service.start().ok());
  auto client = BbdClient::connect(client_options(service));
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value().make_user("Dave", 0).ok());
  BbdClient::ReserveArgs args;
  args.user = "Dave";
  args.rate = 1e6;
  args.at = seconds(1);
  auto outcome = client.value().reserve(args);
  ASSERT_TRUE(outcome.ok());
  // The daemon's registry saw the reservation; the histogram count is
  // queryable remotely (the fig3 [PASS] cross-check path).
  auto count = client.value().metric("e2e_sig_e2e_latency_us",
                                     "engine=hopbyhop", "count");
  ASSERT_TRUE(count.ok()) << count.error().to_text();
  EXPECT_GE(count.value(), 1.0);
  service.stop();
  service.wait();
}

}  // namespace
}  // namespace e2e::net
