#include "common/clock.hpp"

#include <gtest/gtest.h>

namespace e2e {
namespace {

TEST(Clock, DurationHelpers) {
  EXPECT_EQ(milliseconds(1), 1000);
  EXPECT_EQ(seconds(1), 1000000);
  EXPECT_EQ(minutes(1), 60 * seconds(1));
  EXPECT_EQ(hours(1), 60 * minutes(1));
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(7)), 7.0);
}

TEST(Clock, IntervalContains) {
  const TimeInterval iv{seconds(10), seconds(20)};
  EXPECT_FALSE(iv.contains(seconds(9)));
  EXPECT_TRUE(iv.contains(seconds(10)));
  EXPECT_TRUE(iv.contains(seconds(19)));
  EXPECT_FALSE(iv.contains(seconds(20)));  // half-open
  EXPECT_EQ(iv.length(), seconds(10));
  EXPECT_TRUE(iv.valid());
}

TEST(Clock, IntervalOverlap) {
  const TimeInterval a{0, 10};
  EXPECT_TRUE(a.overlaps({5, 15}));
  EXPECT_TRUE(a.overlaps({-5, 1}));
  EXPECT_FALSE(a.overlaps({10, 20}));  // touching is not overlapping
  EXPECT_FALSE(a.overlaps({-10, 0}));
  EXPECT_TRUE(a.overlaps({0, 10}));
}

TEST(Clock, VirtualClockMonotone) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance_to(100);
  EXPECT_EQ(clock.now(), 100);
  clock.advance_to(50);  // never goes backwards
  EXPECT_EQ(clock.now(), 100);
  clock.advance_by(25);
  EXPECT_EQ(clock.now(), 125);
}

TEST(Clock, HourOfDay) {
  EXPECT_EQ(hour_of_day(0), 0);
  EXPECT_EQ(hour_of_day(hours(9) + minutes(30)), 9);
  EXPECT_EQ(hour_of_day(hours(25)), 1);  // wraps around the day
  EXPECT_EQ(hour_of_day(hours(23) + minutes(59)), 23);
}

TEST(Clock, FormatTimeOfDay) {
  EXPECT_EQ(format_time_of_day(0), "00:00:00.000");
  EXPECT_EQ(format_time_of_day(hours(13) + minutes(5) + seconds(7) + 42000),
            "13:05:07.042");
}

}  // namespace
}  // namespace e2e
