#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

namespace e2e::crypto {
namespace {

std::string mac_hex(BytesView key, BytesView msg) {
  const Digest d = hmac_sha256(key, msg);
  return hex_encode(BytesView(d.data(), d.size()));
}

// RFC 4231 test vectors for HMAC-SHA256.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(mac_hex(key, to_bytes("Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(
      mac_hex(to_bytes("Jefe"), to_bytes("what do ya want for nothing?")),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(mac_hex(key, msg),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      mac_hex(key, to_bytes("Test Using Larger Than Block-Size Key - Hash "
                            "Key First")),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  const Bytes msg = to_bytes("record");
  EXPECT_NE(mac_hex(to_bytes("key-a"), msg), mac_hex(to_bytes("key-b"), msg));
}

TEST(Hmac, MessageSensitivity) {
  const Bytes key = to_bytes("session-key");
  EXPECT_NE(mac_hex(key, to_bytes("m1")), mac_hex(key, to_bytes("m2")));
}

TEST(Hmac, EmptyKeyAndMessageDefined) {
  // Must not crash and must be deterministic.
  EXPECT_EQ(mac_hex(Bytes{}, Bytes{}), mac_hex(Bytes{}, Bytes{}));
}

TEST(DeriveKey, ProducesRequestedLength) {
  const Bytes secret = to_bytes("shared-secret");
  for (std::size_t len : {0u, 1u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(derive_key(secret, "label", len).size(), len);
  }
}

TEST(DeriveKey, LabelSeparation) {
  const Bytes secret = to_bytes("shared-secret");
  EXPECT_NE(derive_key(secret, "client->server", 32),
            derive_key(secret, "server->client", 32));
}

TEST(DeriveKey, Deterministic) {
  const Bytes secret = to_bytes("s");
  EXPECT_EQ(derive_key(secret, "l", 48), derive_key(secret, "l", 48));
}

TEST(DeriveKey, PrefixConsistency) {
  // Counter-mode expansion: a longer output extends the shorter one.
  const Bytes secret = to_bytes("s2");
  const Bytes short_key = derive_key(secret, "l", 16);
  const Bytes long_key = derive_key(secret, "l", 48);
  EXPECT_TRUE(std::equal(short_key.begin(), short_key.end(),
                         long_key.begin()));
}

}  // namespace
}  // namespace e2e::crypto
