#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace e2e {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  futures.reserve(100);
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  int expected = 0;
  for (int i = 0; i < 16; ++i) expected += i * i;
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("bad"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 5; }).get(), 5);
}

TEST(ThreadPool, DrainsQueueOnShutdown) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      (void)pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 64);
}

}  // namespace
}  // namespace e2e
