// Parser-level tests: grammar corners, precedence, and error reporting.
#include <gtest/gtest.h>

#include "policy/policy.hpp"

namespace e2e::policy {
namespace {

Result<Policy> try_compile(const char* src) { return Policy::compile(src); }

TEST(Parser, SingleStatementBlocksWithoutBraces) {
  const auto p = try_compile(R"(
    If User = Alice If BW <= 10Mb/s Return GRANT
    Return DENY
  )");
  ASSERT_TRUE(p.ok()) << p.error().to_text();
  EvalContext ctx;
  ctx.set_user("Alice");
  ctx.set_bandwidth(5e6);
  EXPECT_EQ(p->decide(ctx).value(), Decision::kGrant);
}

TEST(Parser, DeepNesting) {
  std::string src;
  for (int i = 0; i < 30; ++i) src += "If BW <= 100Mb/s {\n";
  src += "Return GRANT\n";
  for (int i = 0; i < 30; ++i) src += "}\n";
  src += "Return DENY";
  const auto p = try_compile(src.c_str());
  ASSERT_TRUE(p.ok());
  EvalContext ctx;
  ctx.set_bandwidth(1e6);
  EXPECT_EQ(p->decide(ctx).value(), Decision::kGrant);
}

TEST(Parser, ElseIfChainsArbitraryLength) {
  const auto p = try_compile(R"(
    If User = A { Return DENY }
    Else if User = B { Return DENY }
    Else if User = C { Return GRANT }
    Else if User = D { Return DENY }
    Else { Return DENY }
  )");
  ASSERT_TRUE(p.ok());
  EvalContext ctx;
  ctx.set_user("C");
  EXPECT_EQ(p->decide(ctx).value(), Decision::kGrant);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  // Without parens: A and (B or C) != (A and B) or C.
  const auto p = try_compile(R"(
    If User = Alice and (Group = Ops or BW <= 1Mb/s) Return GRANT
    Return DENY
  )");
  ASSERT_TRUE(p.ok());
  EvalContext alice_small;
  alice_small.set_user("Alice");
  alice_small.set_bandwidth(0.5e6);
  EXPECT_EQ(p->decide(alice_small).value(), Decision::kGrant);
  EvalContext bob_ops;
  bob_ops.set_user("Bob");
  bob_ops.add_group("Ops");
  bob_ops.set_bandwidth(0.5e6);
  EXPECT_EQ(p->decide(bob_ops).value(), Decision::kDeny);
}

TEST(Parser, DoubleNegation) {
  const auto p = try_compile("If not not User = Alice Return GRANT\n"
                             "Return DENY");
  ASSERT_TRUE(p.ok());
  EvalContext ctx;
  ctx.set_user("Alice");
  EXPECT_EQ(p->decide(ctx).value(), Decision::kGrant);
}

TEST(Parser, CallWithMultipleArguments) {
  const auto p = try_compile(
      "If Within(BW, 1Mb/s, 20Mb/s) Return GRANT\nReturn DENY");
  ASSERT_TRUE(p.ok());
  EvalContext ctx;
  ctx.set_bandwidth(5e6);
  ctx.register_predicate("Within", [](std::span<const Value> args) {
    return Value(args.size() == 3 &&
                 args[0].as_number() >= args[1].as_number() &&
                 args[0].as_number() <= args[2].as_number());
  });
  EXPECT_EQ(p->decide(ctx).value(), Decision::kGrant);
}

TEST(Parser, EmptyCallArguments) {
  const auto p =
      try_compile("If MaintenanceWindow() Return DENY\nReturn GRANT");
  ASSERT_TRUE(p.ok());
  EvalContext ctx;
  ctx.register_predicate("MaintenanceWindow", [](std::span<const Value>) {
    return Value(false);
  });
  EXPECT_EQ(p->decide(ctx).value(), Decision::kGrant);
}

TEST(Parser, ErrorMessagesCarryLineNumbers) {
  const auto missing_brace = try_compile("If User = Alice {\nReturn GRANT\n");
  ASSERT_FALSE(missing_brace.ok());
  EXPECT_NE(missing_brace.error().message.find("line"), std::string::npos);

  const auto bad_return = try_compile("Return MAYBE");
  ASSERT_FALSE(bad_return.ok());
  EXPECT_NE(bad_return.error().message.find("GRANT or DENY"),
            std::string::npos);
}

TEST(Parser, RejectsMalformedPrograms) {
  EXPECT_FALSE(try_compile("If { Return GRANT }").ok());      // missing cond
  EXPECT_FALSE(try_compile("Else Return GRANT").ok());        // orphan else
  EXPECT_FALSE(try_compile("If User = Return GRANT").ok());   // bad rhs
  EXPECT_FALSE(try_compile("If (User = Alice Return GRANT").ok());  // paren
  EXPECT_FALSE(try_compile("Return GRANT }").ok());           // stray brace
  EXPECT_FALSE(try_compile("If Member(User Return GRANT").ok());  // call
  EXPECT_FALSE(try_compile("GRANT").ok());                    // bare keyword
}

TEST(Parser, CommentsAnywhere) {
  const auto p = try_compile(R"(
    # Fig. 6 policy file A, transcribed
    If User = Alice {   # identity check
      Return GRANT      # accept
    }
    Return DENY         # closed world
  )");
  ASSERT_TRUE(p.ok());
  EvalContext ctx;
  ctx.set_user("Alice");
  EXPECT_EQ(p->decide(ctx).value(), Decision::kGrant);
}

TEST(Parser, ComparisonIsNonAssociative) {
  // "a < b < c" is not chained; the second '<' must fail to parse as the
  // grammar allows one comparison per level.
  EXPECT_FALSE(try_compile("If 1 < BW < 3 Return GRANT").ok());
}

// Property: every policy that compiles evaluates without crashing on an
// arbitrary context (errors are fine; UB is not).
class ParserEvalRobustness : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserEvalRobustness, CompiledPoliciesEvaluateSafely) {
  const auto p = try_compile(GetParam());
  ASSERT_TRUE(p.ok()) << p.error().to_text();
  EvalContext empty;
  (void)p->evaluate(empty);  // may error, must not crash
  EvalContext rich;
  rich.set_user("Alice");
  rich.set_bandwidth(5e6);
  rich.set_time(hours(12));
  rich.set_available_bandwidth(100e6);
  rich.add_group("Atlas");
  rich.add_capability({"ESnet", {"cap"}});
  (void)p->evaluate(rich);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, ParserEvalRobustness,
    ::testing::Values(
        "Return GRANT",
        "If BW <= Avail_BW Return GRANT\nReturn DENY",
        "If Time > 8am and Time < 17:30 Return DENY\nReturn GRANT",
        "If Group = Atlas or Issued_by(Capability) = ESnet Return GRANT",
        "If not (User = Bob) { If BW < 1Gb/s Return GRANT }\nReturn DENY",
        "If User = \"Alice Liddell\" Return GRANT"));

}  // namespace
}  // namespace e2e::policy
