// GARA uniform API, resource managers, and the Fig. 5/6 co-reservation.
#include "gara/gara_api.hpp"

#include <gtest/gtest.h>

#include "gara/edge_binding.hpp"
#include "testing_world.hpp"

namespace e2e::gara {
namespace {

using testing::ChainWorld;
using testing::ChainWorldConfig;
using testing::WorldUser;

TEST(ComputeManager, ReserveReleaseLifecycle) {
  ComputeManager cm("DomainC", 64);
  const auto id = cm.reserve("CN=Alice,O=A,C=US", 16, {0, seconds(100)});
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(cm.exists(*id));
  EXPECT_TRUE(cm.is_valid(*id, seconds(50)));
  EXPECT_FALSE(cm.is_valid(*id, seconds(100)));  // half-open interval
  EXPECT_DOUBLE_EQ(cm.committed_at(seconds(50)), 16);
  ASSERT_TRUE(cm.release(*id).ok());
  EXPECT_FALSE(cm.exists(*id));
}

TEST(ComputeManager, CapacityEnforced) {
  ComputeManager cm("DomainC", 64);
  ASSERT_TRUE(cm.reserve("u1", 40, {0, seconds(100)}).ok());
  EXPECT_FALSE(cm.reserve("u2", 30, {0, seconds(100)}).ok());
  EXPECT_TRUE(cm.reserve("u2", 30, {seconds(100), seconds(200)}).ok());
  EXPECT_FALSE(cm.reserve("u3", 0, {0, seconds(1)}).ok());
  EXPECT_FALSE(cm.release("ghost").ok());
}

TEST(StorageManager, ReserveReleaseLifecycle) {
  StorageManager sm("DomainC", 1e12);
  const auto id = sm.reserve("u", 4e11, {0, seconds(100)});
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(sm.exists(*id));
  EXPECT_FALSE(sm.reserve("u2", 7e11, {0, seconds(100)}).ok());
  ASSERT_TRUE(sm.release(*id).ok());
  EXPECT_TRUE(sm.reserve("u2", 7e11, {0, seconds(100)}).ok());
}

struct GaraFixture {
  ChainWorld world{[] {
    ChainWorldConfig config;
    // Destination requires a valid CPU reservation above 5 Mb/s (Fig. 6
    // policy C shape).
    config.policies = {"Return GRANT", "Return GRANT",
                       "If BW >= 5Mb/s {\n"
                       "  If Issued_by(Capability) = ESnet and "
                       "HasValidCPUResv(RAR) { Return GRANT }\n"
                       "}\n"
                       "Else { Return GRANT }\n"
                       "Return DENY"};
    return config;
  }()};
  ComputeManager compute{"DomainC", 64};
  StorageManager storage{"DomainC", 1e12};
  Gara gara{world.engine()};
  WorldUser alice = world.make_user("Alice", 0);

  GaraFixture() {
    gara.attach_compute(compute);
    gara.attach_storage(storage);
  }
};

TEST(Gara, NetworkReservationThroughUniformApi) {
  GaraFixture f;
  bb::ResSpec spec = f.world.spec(f.alice, 1e6);  // below the CPU threshold
  const auto r = f.gara.reserve_network(f.alice.credentials(), spec, 0);
  ASSERT_TRUE(r.ok()) << r.error().to_text();
  EXPECT_EQ(r->type, ResourceType::kNetwork);
  EXPECT_EQ(r->domain, "DomainC");
  EXPECT_EQ(r->network_reply.handles.size(), 3u);
  ASSERT_TRUE(f.gara.release(*r).ok());
  EXPECT_EQ(f.world.broker(0).reservation_count(), 0u);
}

TEST(Gara, NetworkDenialSurfacesOrigin) {
  GaraFixture f;
  // 10 Mb/s without a CPU reservation: destination policy denies.
  bb::ResSpec spec = f.world.spec(f.alice, 10e6);
  const auto r = f.gara.reserve_network(f.alice.credentials(), spec, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kPolicyDenied);
  EXPECT_EQ(r.error().origin, "DomainC");
}

TEST(Gara, CoReservationSatisfiesDestinationPolicy) {
  GaraFixture f;
  bb::ResSpec spec = f.world.spec(f.alice, 10e6);
  const auto co = f.gara.co_reserve(f.alice.credentials(), spec, 8, 0);
  ASSERT_TRUE(co.ok()) << co.error().to_text();
  EXPECT_EQ(co->cpu.type, ResourceType::kCpu);
  EXPECT_TRUE(f.compute.exists(co->cpu.handle));
  EXPECT_EQ(co->network.network_reply.handles.size(), 3u);
  // Releasing both restores all state.
  ASSERT_TRUE(f.gara.release(co->network).ok());
  ASSERT_TRUE(f.gara.release(co->cpu).ok());
  EXPECT_EQ(f.compute.count(), 0u);
}

TEST(Gara, CoReservationRollsBackCpuOnNetworkDenial) {
  GaraFixture f;
  // Exhaust the SLA so the network leg fails after the CPU leg succeeds.
  bb::ResSpec big = f.world.spec(f.alice, 200e6);  // above the 100 Mb/s SLA
  const auto co = f.gara.co_reserve(f.alice.credentials(), big, 8, 0);
  ASSERT_FALSE(co.ok());
  EXPECT_EQ(f.compute.count(), 0u);  // CPU reservation rolled back
}

TEST(Gara, CpuAndDiskThroughUniformApi) {
  GaraFixture f;
  const auto cpu = f.gara.reserve_cpu("DomainC", "u", 4, {0, seconds(60)});
  ASSERT_TRUE(cpu.ok());
  const auto disk =
      f.gara.reserve_disk("DomainC", "u", 1e9, {0, seconds(60)});
  ASSERT_TRUE(disk.ok());
  EXPECT_FALSE(f.gara.reserve_cpu("DomainX", "u", 1, {0, seconds(1)}).ok());
  EXPECT_FALSE(f.gara.reserve_disk("DomainX", "u", 1, {0, seconds(1)}).ok());
  EXPECT_TRUE(f.gara.release(*cpu).ok());
  EXPECT_TRUE(f.gara.release(*disk).ok());
}

TEST(EdgeBinding, InstallsAndRemovesPolicers) {
  // A broker commit must configure the simulator's edge policer so the
  // user's flow gets EF marking (observable as premium goodput).
  net::Topology topo;
  const auto da = topo.add_domain("DomainA");
  const auto db = topo.add_domain("DomainB");
  const auto ra = topo.add_router(da, "edge-A", true);
  const auto rb = topo.add_router(db, "edge-B", true);
  const auto ab = topo.add_link(ra, rb, 100e6, milliseconds(5));
  net::Simulator sim(std::move(topo));

  net::FlowDescription fd;
  fd.name = "alice";
  fd.source = ra;
  fd.destination = rb;
  fd.wants_premium = true;
  fd.pattern = net::TrafficPattern::cbr(10e6);
  const net::FlowId flow = sim.add_flow(fd).value();

  ChainWorld world;  // supplies a ready-made broker for DomainA
  EdgeBinding binding(sim, ab);
  binding.bind_flow("CN=Alice,O=DomainA,C=US", flow);
  binding.attach(world.broker(0));

  bb::ResSpec spec;
  spec.user = "CN=Alice,O=DomainA,C=US";
  spec.source_domain = "DomainA";
  spec.destination_domain = "DomainA";
  spec.rate_bits_per_s = 10e6;
  spec.burst_bits = 30000;
  spec.interval = {0, seconds(10)};
  const auto handle = world.broker(0).commit(spec, "");
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(binding.installed_policers(), 1u);

  sim.run_until(seconds(2));
  EXPECT_NEAR(sim.stats(flow).premium_goodput_bits_per_s(seconds(2)), 10e6,
              1e6);

  // Release removes the policer; subsequent traffic is best-effort.
  ASSERT_TRUE(world.broker(0).release(*handle).ok());
  const auto premium_before = sim.stats(flow).delivered_premium_bits;
  sim.run_until(seconds(4));
  EXPECT_LT(sim.stats(flow).delivered_premium_bits - premium_before,
            premium_before / 4);
}

}  // namespace
}  // namespace e2e::gara
