// Multi-process daemon soak (ISSUE 7, satellite 3).
//
// Spawns the REAL bbd binary (path baked in via E2E_BBD_PATH) as a
// separate OS process with durability enabled, then drives it with
// several concurrent client processes mixing reserve / release / abrupt
// exits, and finally SIGKILLs the daemon mid-state and restarts it with
// --recover. Invariants checked:
//   - zero residual bandwidth once every client is gone (explicit releases
//     plus the orphan-release-on-disconnect contract);
//   - no double-grants: every (domain, handle) pair across every granted
//     reply is globally unique;
//   - a killed daemon comes back with every acked grant intact (PR 6
//     recovery through the WAL), and those grants remain releasable.
// scripts/tier1.sh --daemon runs this binary under the ASan/UBSan preset.
#include <gtest/gtest.h>

#include <csignal>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/bbd_client.hpp"
#include "sig/message.hpp"

#ifndef E2E_BBD_PATH
#error "E2E_BBD_PATH must point at the built bbd binary"
#endif

namespace e2e::net {
namespace {

struct DaemonProcess {
  pid_t pid = -1;
  Endpoint endpoint;

  DaemonProcess() = default;
  DaemonProcess(DaemonProcess&& other) noexcept
      : pid(other.pid), endpoint(std::move(other.endpoint)) {
    other.pid = -1;
  }
  DaemonProcess(const DaemonProcess&) = delete;
  DaemonProcess& operator=(const DaemonProcess&) = delete;
  // A gtest ASSERT aborts the test mid-flight; make sure a failed run
  // never leaks a live daemon process.
  ~DaemonProcess() { kill_hard(); }

  static DaemonProcess spawn(const std::string& socket_path,
                             const std::string& durability_dir) {
    DaemonProcess daemon;
    daemon.endpoint = Endpoint::parse("unix:" + socket_path).value();
    daemon.pid = fork();
    if (daemon.pid == 0) {
      const std::string listen = "unix:" + socket_path;
      ::execl(E2E_BBD_PATH, E2E_BBD_PATH, "--listen", listen.c_str(),
              "--durability-dir", durability_dir.c_str(), "--recover",
              "--domains", "3", static_cast<char*>(nullptr));
      ::_exit(127);  // exec failed
    }
    return daemon;
  }

  /// Retry-connect until the daemon has built its world and listens.
  Result<BbdClient> connect(std::chrono::seconds patience =
                                std::chrono::seconds(60)) const {
    BbdClient::Options options;
    options.connect_to = endpoint;
    const auto deadline = std::chrono::steady_clock::now() + patience;
    while (true) {
      auto client = BbdClient::connect(options);
      if (client.ok()) return client;
      if (std::chrono::steady_clock::now() >= deadline) return client;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }

  void kill_hard() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      pid = -1;
    }
  }
  void terminate() {
    if (pid > 0) {
      ::kill(pid, SIGTERM);
      ::waitpid(pid, nullptr, 0);
      pid = -1;
    }
  }
};

std::string temp_root() {
  std::string dir = ::testing::TempDir() + "e2e_daemon_soak_XXXXXX";
  std::vector<char> buf(dir.begin(), dir.end());
  buf.push_back('\0');
  EXPECT_NE(::mkdtemp(buf.data()), nullptr);
  return std::string(buf.data());
}

/// One client process's workload: a few reserves, explicit release of the
/// even ones, odd ones deliberately left to the orphan-release contract.
/// Granted reply bytes are appended (hex, one per line) to `grants_file`.
int run_client_workload(const Endpoint& endpoint, int index,
                        const std::string& grants_file) {
  BbdClient::Options options;
  options.connect_to = endpoint;
  auto client = BbdClient::connect(options);
  if (!client.ok()) return 10;
  if (!client.value().hello(/*release_on_disconnect=*/true).ok()) return 11;
  const std::string user = "soak-user-" + std::to_string(index);
  // Hop-by-hop signalling authenticates the user at the source domain, so
  // every soak user is homed at the chain head its reservations enter.
  if (!client.value().make_user(user, /*home=*/0).ok()) return 12;
  std::ofstream grants(grants_file);
  for (int i = 0; i < 4; ++i) {
    BbdClient::ReserveArgs args;
    args.user = user;
    args.rate = 1e6;
    args.interval = {0, seconds(600)};
    args.at = seconds(1);
    auto outcome = client.value().reserve(args);
    if (!outcome.ok()) return 13;
    if (!outcome.value().reply.granted) {
      std::fprintf(stderr, "client %d reserve %d denied: %s\n", index, i,
                   outcome.value().reply.denial.to_text().c_str());
      return 14;
    }
    grants << hex_encode(outcome.value().reply_bytes) << "\n";
    if (i % 2 == 0 &&
        !client.value().release("hopbyhop", outcome.value().reply_bytes)
             .ok()) {
      return 15;
    }
  }
  grants.close();
  // Client 1 dies abruptly mid-session; the others close their sockets by
  // returning. Either way the daemon sees a disconnect and must release
  // the unreleased grants.
  if (index == 1) ::_exit(0);
  return 0;
}

TEST(DaemonSoak, MultiProcessReserveReleaseCrashRestart) {
  const std::string root = temp_root();
  const std::string socket_path = root + "/bbd.sock";
  const std::string durability_dir = root + "/state";
  ASSERT_EQ(::mkdir(durability_dir.c_str(), 0755), 0);

  DaemonProcess daemon = DaemonProcess::spawn(socket_path, durability_dir);
  ASSERT_GT(daemon.pid, 0);
  {
    auto probe = daemon.connect();
    ASSERT_TRUE(probe.ok()) << probe.error().to_text();
    ASSERT_TRUE(probe.value().ping().ok());
  }

  // --- Phase 1: concurrent client processes -------------------------------
  constexpr int kClients = 3;
  std::vector<pid_t> children;
  for (int i = 0; i < kClients; ++i) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::_exit(run_client_workload(daemon.endpoint, i,
                                  root + "/grants_" + std::to_string(i)));
    }
    children.push_back(pid);
  }
  for (pid_t child : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0) << "client workload failed";
  }

  // Zero residual: explicit releases + orphan releases must drain every
  // broker once all clients are gone.
  {
    auto observer = daemon.connect();
    ASSERT_TRUE(observer.ok());
    std::size_t residual = 1;
    double committed = 1;
    for (int i = 0; i < 200 && residual != 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      auto stats = observer.value().stats(seconds(1));
      ASSERT_TRUE(stats.ok());
      residual = stats.value().reservations;
      committed = stats.value().committed;
    }
    EXPECT_EQ(residual, 0u);
    EXPECT_EQ(committed, 0.0);
  }

  // No double-grants: every (domain, handle) across every grant is unique.
  std::set<std::pair<std::string, std::string>> seen_handles;
  std::size_t total_handles = 0;
  for (int i = 0; i < kClients; ++i) {
    std::ifstream grants(root + "/grants_" + std::to_string(i));
    ASSERT_TRUE(grants.good());
    std::string line;
    while (std::getline(grants, line)) {
      if (line.empty()) continue;
      auto reply = sig::RarReply::decode(hex_decode(line));
      ASSERT_TRUE(reply.ok());
      for (const auto& [domain, handle] : reply.value().handles) {
        ++total_handles;
        EXPECT_TRUE(seen_handles.emplace(domain, handle).second)
            << "double-granted handle " << handle << " in " << domain;
      }
    }
  }
  EXPECT_EQ(total_handles, kClients * 4u * 3u);  // 4 grants x 3 domains each

  // --- Phase 2: SIGKILL mid-state, restart with --recover -----------------
  std::vector<Bytes> keeper_grants;
  std::size_t held_before_crash = 0;
  {
    auto keeper = daemon.connect();
    ASSERT_TRUE(keeper.ok());
    // NO release-on-disconnect: these grants must survive the daemon.
    ASSERT_TRUE(keeper.value().hello(false).ok());
    ASSERT_TRUE(keeper.value().make_user("keeper", 0).ok());
    for (int i = 0; i < 3; ++i) {
      BbdClient::ReserveArgs args;
      args.user = "keeper";
      args.rate = 2e6;
      args.interval = {0, seconds(600)};
      args.at = seconds(1);
      auto outcome = keeper.value().reserve(args);
      ASSERT_TRUE(outcome.ok()) << outcome.error().to_text();
      ASSERT_TRUE(outcome.value().reply.granted);
      keeper_grants.push_back(outcome.value().reply_bytes);
    }
    auto stats = keeper.value().stats(seconds(1));
    ASSERT_TRUE(stats.ok());
    held_before_crash = stats.value().reservations;
    EXPECT_EQ(held_before_crash, 9u);  // 3 grants x 3 domains
  }
  daemon.kill_hard();

  DaemonProcess revived = DaemonProcess::spawn(socket_path, durability_dir);
  ASSERT_GT(revived.pid, 0);
  {
    auto client = revived.connect();
    ASSERT_TRUE(client.ok()) << client.error().to_text();
    // Every acked grant survived the kill.
    auto stats = client.value().stats(seconds(1));
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().reservations, held_before_crash);
    // And each one is still releasable through the recovered brokers.
    for (const Bytes& grant : keeper_grants) {
      EXPECT_TRUE(client.value().release("hopbyhop", grant).ok());
    }
    auto drained = client.value().stats(seconds(1));
    ASSERT_TRUE(drained.ok());
    EXPECT_EQ(drained.value().reservations, 0u);
    EXPECT_EQ(drained.value().committed, 0.0);
    // The recovered world still grants fresh reservations.
    ASSERT_TRUE(client.value().make_user("fresh", 0).ok());
    BbdClient::ReserveArgs args;
    args.user = "fresh";
    args.rate = 1e6;
    args.at = seconds(1);
    auto outcome = client.value().reserve(args);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome.value().reply.granted);
  }
  revived.terminate();
}

}  // namespace
}  // namespace e2e::net
