// Parameterized sweep: the full protocol must hold at every path length —
// grants, path tracking, capability growth, wire growth, rollback on
// destination denial.
#include <gtest/gtest.h>

#include "testing_world.hpp"

namespace e2e::sig {
namespace {

using testing::ChainWorld;
using testing::ChainWorldConfig;
using testing::WorldUser;

class PathLengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PathLengthSweep, GrantAcrossNDomains) {
  const std::size_t n = GetParam();
  ChainWorldConfig config;
  config.domains = n;
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);

  std::map<std::string, std::size_t> caps_seen;
  world.engine().set_observer(
      [&caps_seen](const std::string& domain, const VerifiedRar& vr) {
        caps_seen[domain] = vr.capability_certs.size();
      });

  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 5e6), 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->reply.granted) << outcome->reply.denial.to_text();

  // One handle per domain, in path order.
  ASSERT_EQ(outcome->reply.handles.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(outcome->reply.handles[i].first, world.names()[i]);
    EXPECT_EQ(world.broker(i).reservation_count(), 1u);
  }
  // Capability list grows by exactly one per hop (Fig. 7 generalized).
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(caps_seen[world.names()[i]], 2 + i) << world.names()[i];
  }
  // Messages: 2 for the user plus 2 per inter-BB hop.
  EXPECT_EQ(outcome->messages, 2 + 2 * (n - 1));

  // Full teardown.
  ASSERT_TRUE(world.engine().release_end_to_end(outcome->reply).ok());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(world.broker(i).reservation_count(), 0u);
  }
}

TEST_P(PathLengthSweep, DestinationDenialRollsBackWholePath) {
  const std::size_t n = GetParam();
  ChainWorldConfig config;
  config.domains = n;
  std::vector<std::string> policies(n, "Return GRANT");
  policies.back() = "Return DENY";
  config.policies = policies;
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 5e6), 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.origin, world.names().back());
  EXPECT_EQ(outcome->domains_contacted, n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(world.broker(i).reservation_count(), 0u) << world.names()[i];
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, PathLengthSweep,
                         ::testing::Values(2, 3, 4, 6, 8));

}  // namespace
}  // namespace e2e::sig
