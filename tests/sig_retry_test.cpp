// Retry/backoff and idempotency: timer math (cap, jitter bounds, budget
// exhaustion) and at-most-once admission when the fabric redelivers or
// loses messages, asserted against the failure-path obs counters.
#include <gtest/gtest.h>

#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "sig/retry.hpp"
#include "testing_world.hpp"

namespace e2e::sig {
namespace {

using testing::ChainWorld;
using testing::ChainWorldConfig;
using testing::WorldUser;

std::uint64_t counter_value(const char* name, obs::Labels labels) {
  return obs::MetricsRegistry::global()
      .counter(name, std::move(labels))
      .value();
}

TEST(RetryTimeout, GrowsGeometricallyUpToTheCap) {
  RetryPolicy p;
  p.base_timeout = milliseconds(100);
  p.multiplier = 2.0;
  p.max_timeout = milliseconds(300);
  p.jitter = 0;  // isolate the backoff ladder
  EXPECT_EQ(retry_timeout(p, 1, 7), milliseconds(100));
  EXPECT_EQ(retry_timeout(p, 2, 7), milliseconds(200));
  EXPECT_EQ(retry_timeout(p, 3, 7), milliseconds(300));  // capped
  EXPECT_EQ(retry_timeout(p, 4, 7), milliseconds(300));
  EXPECT_EQ(retry_timeout(p, 60, 7), milliseconds(300));  // no overflow
}

TEST(RetryTimeout, JitterStaysInsideTheConfiguredBand) {
  RetryPolicy p;
  p.base_timeout = milliseconds(100);
  p.jitter = 0.1;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const SimDuration t = retry_timeout(p, 1, seed);
    EXPECT_GE(t, milliseconds(100)) << "seed " << seed;
    EXPECT_LE(t, milliseconds(110)) << "seed " << seed;
  }
}

TEST(RetryTimeout, DeterministicPerSeedAndSpreadAcrossSeeds) {
  RetryPolicy p;
  EXPECT_EQ(retry_timeout(p, 2, 123), retry_timeout(p, 2, 123));
  // Different seeds or attempts land on different jittered values (not a
  // hard guarantee of the mix, but these particular inputs must differ for
  // the jitter to be doing anything).
  EXPECT_NE(retry_timeout(p, 1, 1), retry_timeout(p, 1, 2));
}

TEST(RetryBudget, ExhaustionDeniesWithTimeoutAndReleasesEverything) {
  ChainWorldConfig config;
  config.domains = 3;
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);

  // Every A->B request vanishes; the reverse direction is clean but never
  // used because the request never arrives.
  FaultProfile drop_all;
  drop_all.drop = 1.0;
  world.fabric().set_fault_profile("DomainA", "DomainB", drop_all);
  world.fabric().seed_faults(1);

  const std::uint64_t timeouts_before =
      counter_value(obs::kSigTimeoutsTotal, {{"engine", "hopbyhop"}});
  const std::uint64_t retransmits_before =
      counter_value(obs::kSigRetransmitsTotal, {{"engine", "hopbyhop"}});
  const std::uint64_t released_before =
      counter_value(obs::kSigReleasedOnFailureTotal, {{"domain", "DomainA"}});

  const auto msg = world.engine().build_user_request(alice.credentials(),
                                                     world.spec(alice, 1e6),
                                                     0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kTimeout);
  EXPECT_EQ(outcome->reply.denial.origin, "DomainA");

  const RetryPolicy& policy = world.engine().retry_policy();
  EXPECT_EQ(counter_value(obs::kSigTimeoutsTotal, {{"engine", "hopbyhop"}}) -
                timeouts_before,
            policy.max_attempts);
  EXPECT_EQ(
      counter_value(obs::kSigRetransmitsTotal, {{"engine", "hopbyhop"}}) -
          retransmits_before,
      policy.max_attempts - 1);
  EXPECT_EQ(counter_value(obs::kSigReleasedOnFailureTotal,
                          {{"domain", "DomainA"}}) -
                released_before,
            1u);
  // Give-up waits: the modeled latency covers every armed timeout.
  SimDuration waits = 0;
  for (std::size_t a = 1; a <= policy.max_attempts; ++a) {
    waits += policy.base_timeout;  // lower bound (jitter only adds)
  }
  EXPECT_GE(outcome->latency, waits);
  // Nothing residual anywhere.
  EXPECT_EQ(world.total_reservations(), 0u);
}

TEST(RetryIdempotency, LostRepliesNeverDoubleAdmit) {
  ChainWorldConfig config;
  config.domains = 2;
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);

  // Requests get through; every reply B->A is lost. B admits on the first
  // delivery; each retransmission must hit B's reply cache, not its
  // admission control.
  FaultProfile drop_all;
  drop_all.drop = 1.0;
  world.fabric().set_fault_profile("DomainB", "DomainA", drop_all);
  world.fabric().seed_faults(2);

  const std::uint64_t cache_before =
      counter_value(obs::kSigDuplicatesSuppressedTotal, {{"via", "cache"}});
  const auto committed_before = world.broker(1).counters().granted;

  const auto msg = world.engine().build_user_request(alice.credentials(),
                                                     world.spec(alice, 1e6),
                                                     0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kTimeout);

  const RetryPolicy& policy = world.engine().retry_policy();
  // B processed the request exactly once...
  EXPECT_EQ(world.broker(1).counters().granted - committed_before, 1u);
  // ...and served every retransmission from the reply cache.
  EXPECT_EQ(counter_value(obs::kSigDuplicatesSuppressedTotal,
                          {{"via", "cache"}}) -
                cache_before,
            policy.max_attempts - 1);
  // A gave up: its own tentative commitment and B's orphaned grant are
  // both gone.
  EXPECT_EQ(world.broker(0).reservation_count(), 0u);
  EXPECT_EQ(world.broker(1).reservation_count(), 0u);
  EXPECT_GE(counter_value(obs::kSigReleasedOnFailureTotal,
                          {{"domain", "DomainB"}}),
            1u);
}

TEST(RetryIdempotency, DuplicatedDeliveryIsSuppressedByTheChannel) {
  ChainWorldConfig config;
  config.domains = 2;
  config.fault_profile.duplicate = 1.0;  // every message arrives twice
  config.fault_seed = 3;
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);

  const std::uint64_t channel_before =
      counter_value(obs::kSigDuplicatesSuppressedTotal, {{"via", "channel"}});
  const auto msg = world.engine().build_user_request(alice.credentials(),
                                                     world.spec(alice, 1e6),
                                                     0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->reply.granted);
  // One inter-BB exchange, both legs duplicated, both copies rejected by
  // the record layer's replay protection.
  EXPECT_EQ(counter_value(obs::kSigDuplicatesSuppressedTotal,
                          {{"via", "channel"}}) -
                channel_before,
            2u);
  // Exactly one admission per broker despite the duplicates.
  EXPECT_EQ(world.broker(0).reservation_count(), 1u);
  EXPECT_EQ(world.broker(1).reservation_count(), 1u);
  ASSERT_TRUE(world.engine().release_end_to_end(outcome->reply).ok());
  EXPECT_EQ(world.total_reservations(), 0u);
}

TEST(RetryRecovery, LossyLinkEventuallySucceedsWithRetransmits) {
  ChainWorldConfig config;
  config.domains = 3;
  config.fault_profile.drop = 0.4;
  config.fault_seed = 77;
  config.retry_policy.max_attempts = 8;  // plenty of budget
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);

  // With drop=0.4 and 8 attempts per exchange, at least one of a handful
  // of requests succeeds (and the seed is fixed, so this is stable).
  bool granted = false;
  for (int i = 0; i < 5 && !granted; ++i) {
    const auto msg = world.engine().build_user_request(
        alice.credentials(), world.spec(alice, 1e6 + i), 0);
    const auto outcome = world.engine().reserve(*msg, seconds(1));
    ASSERT_TRUE(outcome.ok());
    if (outcome->reply.granted) {
      granted = true;
      EXPECT_EQ(outcome->reply.handles.size(), 3u);
      ASSERT_TRUE(world.engine().release_end_to_end(outcome->reply).ok());
    }
    world.engine().forget_completed_requests();
    EXPECT_EQ(world.total_reservations(), 0u);
  }
  EXPECT_TRUE(granted);
}

TEST(RetryTunnel, DarkDestinationReleasesBothTunnelHalves) {
  ChainWorldConfig config;
  config.domains = 3;
  ChainWorld world(config);
  WorldUser alice = world.make_user("Alice", 0);

  // Establish the tunnel on a clean fabric.
  auto spec = world.spec(alice, 50e6);
  spec.is_tunnel = true;
  const auto msg =
      world.engine().build_user_request(alice.credentials(), spec, 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->reply.granted);
  const std::string tunnel_id = outcome->reply.tunnel_id;

  // First per-flow allocation works.
  auto flow = world.engine().reserve_in_tunnel(
      tunnel_id, alice.dn.to_string(), 1e6, {0, seconds(60)}, seconds(2));
  ASSERT_TRUE(flow.ok());
  ASSERT_TRUE(flow->reply.granted);

  // Now the destination goes dark for the direct channel: every reply
  // DomainC->DomainA is lost, so the source retries and eventually gives
  // up. The destination's unconfirmed grant must be rolled back too.
  FaultProfile drop_all;
  drop_all.drop = 1.0;
  world.fabric().set_fault_profile("DomainC", "DomainA", drop_all);
  world.fabric().seed_faults(4);
  auto info_before = world.engine().tunnel_info(tunnel_id);
  ASSERT_TRUE(info_before.has_value());

  auto failed = world.engine().reserve_in_tunnel(
      tunnel_id, alice.dn.to_string(), 1e6, {0, seconds(60)}, seconds(3));
  ASSERT_TRUE(failed.ok());
  ASSERT_FALSE(failed->reply.granted);
  EXPECT_EQ(failed->reply.denial.code, ErrorCode::kTimeout);

  auto info_after = world.engine().tunnel_info(tunnel_id);
  ASSERT_TRUE(info_after.has_value());
  // Only the first (confirmed) flow remains on the source side.
  EXPECT_EQ(info_after->active_flows, info_before->active_flows);
}

}  // namespace
}  // namespace e2e::sig
