#include "common/result.hpp"

#include <gtest/gtest.h>

#include <set>

namespace e2e {
namespace {

TEST(Result, OkValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, ErrorPropagates) {
  Result<int> r(make_error(ErrorCode::kPolicyDenied, "no", "DomainB"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kPolicyDenied);
  EXPECT_EQ(r.error().origin, "DomainB");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ValueOnErrorThrows) {
  Result<int> r(make_error(ErrorCode::kInternal, "boom"));
  EXPECT_THROW(r.value(), std::logic_error);
}

TEST(Result, ErrorOnOkThrows) {
  Result<int> r(7);
  EXPECT_THROW(r.error(), std::logic_error);
}

TEST(Result, MoveValue) {
  Result<std::string> r(std::string("reservation"));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "reservation");
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_THROW(s.error(), std::logic_error);
}

TEST(Status, WithError) {
  Status s = make_error(ErrorCode::kAdmissionRejected, "full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kAdmissionRejected);
}

TEST(Error, TextRendering) {
  const Error e = make_error(ErrorCode::kBadSignature, "layer 2", "BB-B");
  EXPECT_EQ(e.to_text(), "bad-signature @BB-B: layer 2");
}

TEST(ErrorCode, AllNamesDistinct) {
  const ErrorCode codes[] = {
      ErrorCode::kPolicyDenied,   ErrorCode::kAdmissionRejected,
      ErrorCode::kAuthenticationFailed, ErrorCode::kBadSignature,
      ErrorCode::kUntrustedKey,   ErrorCode::kBadMessage,
      ErrorCode::kNoRoute,        ErrorCode::kNotFound,
      ErrorCode::kExpired,        ErrorCode::kUnavailable,
      ErrorCode::kInvalidArgument, ErrorCode::kConflict,
      ErrorCode::kInternal};
  std::set<std::string> names;
  for (ErrorCode c : codes) names.insert(to_string(c));
  EXPECT_EQ(names.size(), std::size(codes));
}

}  // namespace
}  // namespace e2e
