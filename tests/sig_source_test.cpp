// Source-domain-based signalling (Approach 1) and its documented flaws.
#include "sig/source_signalling.hpp"

#include <gtest/gtest.h>

#include "testing_world.hpp"

namespace e2e::sig {
namespace {

using testing::ChainWorld;
using testing::ChainWorldConfig;
using testing::WorldUser;

TEST(SourceSignalling, GrantsWhenUserKnownEverywhere) {
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0, true, true);
  const auto outcome = world.source_engine().reserve(
      world.names(), world.spec(alice, 10e6), alice.identity_cert,
      alice.identity_keys.priv, SourceDomainEngine::Mode::kSequential,
      seconds(1));
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->reply.granted) << outcome->reply.denial.to_text();
  EXPECT_EQ(outcome->reply.handles.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(world.broker(i).reservation_count(), 1u);
  }
}

TEST(SourceSignalling, FailsWhereUserUnknown) {
  ChainWorld world;
  // Alice is only registered in her home domain — the paper's scalability
  // flaw: "each BB must know about (and be able to authenticate) Alice".
  const WorldUser alice = world.make_user("Alice", 0, true, false);
  const auto outcome = world.source_engine().reserve(
      world.names(), world.spec(alice, 10e6), alice.identity_cert,
      alice.identity_keys.priv, SourceDomainEngine::Mode::kSequential,
      seconds(1));
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kAuthenticationFailed);
  EXPECT_EQ(outcome->reply.denial.origin, "DomainB");
  // The partial grant in A was rolled back.
  EXPECT_EQ(world.broker(0).reservation_count(), 0u);
}

TEST(SourceSignalling, ParallelFasterThanSequential) {
  ChainWorldConfig config;
  config.domains = 5;
  ChainWorld world(config);
  world.fabric().set_processing_delay(milliseconds(1));
  const WorldUser alice = world.make_user("Alice", 0, true, true);

  const auto seq = world.source_engine().reserve(
      world.names(), world.spec(alice, 1e6), alice.identity_cert,
      alice.identity_keys.priv, SourceDomainEngine::Mode::kSequential,
      seconds(1));
  ASSERT_TRUE(seq->reply.granted);
  ASSERT_TRUE(world.source_engine().release_end_to_end(seq->reply).ok());

  const auto par = world.source_engine().reserve(
      world.names(), world.spec(alice, 1e6), alice.identity_cert,
      alice.identity_keys.priv, SourceDomainEngine::Mode::kParallel,
      seconds(1));
  ASSERT_TRUE(par->reply.granted);

  // Sequential pays the sum of per-domain RTTs; parallel pays the max.
  EXPECT_GT(seq->latency, par->latency);
  // Parallel latency equals the farthest domain's RTT + processing.
  SimDuration worst = 0;
  for (const auto& name : world.names()) {
    worst = std::max(worst, world.fabric().rtt("DomainA", name));
  }
  EXPECT_EQ(par->latency, worst + world.fabric().processing_delay());
}

TEST(SourceSignalling, PartialDenialRollsBackParallel) {
  ChainWorldConfig config;
  config.policies = {"Return GRANT", "Return GRANT", "Return DENY"};
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0, true, true);
  const auto outcome = world.source_engine().reserve(
      world.names(), world.spec(alice, 10e6), alice.identity_cert,
      alice.identity_keys.priv, SourceDomainEngine::Mode::kParallel,
      seconds(1));
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.origin, "DomainC");
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(world.broker(i).reservation_count(), 0u);
  }
}

TEST(SourceSignalling, MisreservationSkipsDomains) {
  // Fig. 4: David reserves in D(omainA here) and B but NOT C — nothing in
  // the source-based approach prevents it.
  ChainWorld world;
  const WorldUser david = world.make_user("David", 0, true, true);
  const auto outcome = world.source_engine().reserve_subset(
      {"DomainA", "DomainB"}, "DomainA", world.spec(david, 10e6),
      david.identity_cert, david.identity_keys.priv,
      SourceDomainEngine::Mode::kSequential, seconds(1));
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->reply.granted);  // "granted" — but incomplete!
  EXPECT_EQ(outcome->reply.handles.size(), 2u);
  EXPECT_EQ(world.broker(0).reservation_count(), 1u);
  EXPECT_EQ(world.broker(1).reservation_count(), 1u);
  EXPECT_EQ(world.broker(2).reservation_count(), 0u);  // C never asked
}

TEST(SourceSignalling, WrongCertificateRejected) {
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0, true, true);
  const WorldUser bob = world.make_user("Bob", 0, true, true);
  // Alice presents Bob's certificate.
  bb::ResSpec spec = world.spec(alice, 1e6);
  const auto outcome = world.source_engine().reserve(
      world.names(), spec, bob.identity_cert, alice.identity_keys.priv,
      SourceDomainEngine::Mode::kSequential, seconds(1));
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kAuthenticationFailed);
}

TEST(SourceSignalling, MessageCountScalesWithDomains) {
  ChainWorldConfig config;
  config.domains = 4;
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0, true, true);
  const auto outcome = world.source_engine().reserve(
      world.names(), world.spec(alice, 1e6), alice.identity_cert,
      alice.identity_keys.priv, SourceDomainEngine::Mode::kParallel,
      seconds(1));
  ASSERT_TRUE(outcome->reply.granted);
  EXPECT_EQ(outcome->messages, 8u);  // 2 per contacted domain
  EXPECT_EQ(outcome->domains_contacted, 4u);
}

TEST(SourceSignalling, EmptyPathRejected) {
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  EXPECT_FALSE(world.source_engine()
                   .reserve({}, world.spec(alice, 1e6), alice.identity_cert,
                            alice.identity_keys.priv,
                            SourceDomainEngine::Mode::kSequential, 0)
                   .ok());
}

}  // namespace
}  // namespace e2e::sig
