// Capability delegation chains — the Fig. 7 walkthrough and its failure
// modes.
#include "sig/delegation.hpp"

#include <gtest/gtest.h>

#include "policy/cas.hpp"

namespace e2e::sig {
namespace {

const TimeInterval kValidity{0, hours(1000)};

struct DelegationFixture {
  Rng rng{777};
  policy::CommunityAuthorizationServer cas{"ESnet", rng, kValidity, 256};
  crypto::DistinguishedName alice = crypto::DistinguishedName::make(
      "Alice", "DomainA");
  crypto::KeyPair proxy = crypto::generate_keypair(rng, 256);
  crypto::KeyPair bb_a = crypto::generate_keypair(rng, 256);
  crypto::KeyPair bb_b = crypto::generate_keypair(rng, 256);
  crypto::KeyPair bb_c = crypto::generate_keypair(rng, 256);
  crypto::DistinguishedName dn_a =
      crypto::DistinguishedName::make("BB-A", "DomainA");
  crypto::DistinguishedName dn_b =
      crypto::DistinguishedName::make("BB-B", "DomainB");
  crypto::DistinguishedName dn_c =
      crypto::DistinguishedName::make("BB-C", "DomainC");
  std::string restriction = "Valid for Reservation in DomainC";

  /// The full Fig. 7 chain: CAS -> user(proxy) -> BB_A -> BB_B -> BB_C.
  std::vector<crypto::Certificate> build_chain() {
    const crypto::Certificate root =
        cas.grid_login(alice, proxy.pub, kValidity);
    const crypto::Certificate to_a = delegate_capability(
        root, proxy.priv, dn_a, bb_a.pub, restriction, kValidity, 1);
    const crypto::Certificate to_b = delegate_capability(
        to_a, bb_a.priv, dn_b, bb_b.pub, "", kValidity, 2);
    const crypto::Certificate to_c = delegate_capability(
        to_b, bb_b.priv, dn_c, bb_c.pub, "", kValidity, 3);
    return {root, to_a, to_b, to_c};
  }
};

TEST(Delegation, Fig7ChainStructure) {
  DelegationFixture f;
  const auto chain = f.build_chain();
  // "BB_B receives three capability certificates ... BB_C possesses four."
  ASSERT_EQ(chain.size(), 4u);
  // Issuer/subject linkage exactly as the figure lists it.
  EXPECT_EQ(chain[0].issuer(), f.cas.dn());
  EXPECT_EQ(chain[0].subject(), f.alice);
  EXPECT_EQ(chain[1].issuer(), f.alice);
  EXPECT_EQ(chain[1].subject(), f.dn_a);
  EXPECT_EQ(chain[2].issuer(), f.dn_a);
  EXPECT_EQ(chain[2].subject(), f.dn_b);
  EXPECT_EQ(chain[3].issuer(), f.dn_b);
  EXPECT_EQ(chain[3].subject(), f.dn_c);
  // Subject public keys are the delegates' real keys.
  EXPECT_EQ(chain[1].subject_public_key(), f.bb_a.pub);
  EXPECT_EQ(chain[3].subject_public_key(), f.bb_c.pub);
  // Capabilities copied, restriction attached from the first delegation on.
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_EQ(chain[i].capabilities(), chain[0].capabilities());
    EXPECT_EQ(chain[i].extension_value(crypto::kExtValidForRar).value_or(""),
              f.restriction);
  }
}

TEST(Delegation, FullChainVerifies) {
  DelegationFixture f;
  const auto chain = f.build_chain();
  const auto result =
      verify_capability_chain(chain, f.cas.public_key(), f.bb_c.pub,
                              f.restriction, seconds(10));
  ASSERT_TRUE(result.ok()) << result.error().to_text();
  EXPECT_EQ(result->community, "ESnet");
  ASSERT_EQ(result->capabilities.size(), 1u);
  EXPECT_EQ(result->capabilities[0], "Capabilities of ESnet");
  EXPECT_EQ(result->rar_restriction, f.restriction);
  EXPECT_EQ(result->length, 4u);
}

TEST(Delegation, PrefixChainsVerifyAtEachHop) {
  DelegationFixture f;
  const auto chain = f.build_chain();
  // BB_A holds 2 certs, BB_B holds 3 — each hop can verify its own prefix.
  const std::vector<crypto::Certificate> at_a(chain.begin(),
                                              chain.begin() + 2);
  EXPECT_TRUE(verify_capability_chain(at_a, f.cas.public_key(), f.bb_a.pub,
                                      f.restriction, 0)
                  .ok());
  const std::vector<crypto::Certificate> at_b(chain.begin(),
                                              chain.begin() + 3);
  EXPECT_TRUE(verify_capability_chain(at_b, f.cas.public_key(), f.bb_b.pub,
                                      f.restriction, 0)
                  .ok());
}

TEST(Delegation, WrongCasRejected) {
  DelegationFixture f;
  const auto chain = f.build_chain();
  Rng other(1);
  policy::CommunityAuthorizationServer rogue("ESnet", other, kValidity, 256);
  EXPECT_FALSE(verify_capability_chain(chain, rogue.public_key(), f.bb_c.pub,
                                       f.restriction, 0)
                   .ok());
}

TEST(Delegation, WrongHolderKeyRejected) {
  DelegationFixture f;
  const auto chain = f.build_chain();
  // BB_B tries to use the chain delegated to BB_C.
  const auto result = verify_capability_chain(
      chain, f.cas.public_key(), f.bb_b.pub, f.restriction, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("holder"), std::string::npos);
}

TEST(Delegation, BrokenCascadeSignatureRejected) {
  DelegationFixture f;
  auto chain = f.build_chain();
  // Re-sign link 2 with the wrong key (not the parent's subject key).
  chain[2] = delegate_capability(chain[1], f.bb_b.priv /*wrong: not A's*/,
                                 f.dn_b, f.bb_b.pub, "", kValidity, 9);
  EXPECT_FALSE(verify_capability_chain(chain, f.cas.public_key(), f.bb_c.pub,
                                       f.restriction, 0)
                   .ok());
}

TEST(Delegation, CapabilityEscalationRejected) {
  DelegationFixture f;
  const crypto::Certificate root =
      f.cas.grid_login(f.alice, f.proxy.pub, kValidity, {"reserve-bw"});
  // A malicious delegation that *adds* a capability.
  crypto::Certificate::Builder b = build_delegation(
      root, f.dn_a, f.bb_a.pub, f.restriction, kValidity, 1);
  for (auto& ext : b.extensions) {
    if (ext.name == crypto::kExtCapabilities) {
      ext.value = "reserve-bw,root-access";
    }
  }
  const crypto::Certificate escalated = b.sign_with(f.proxy.priv);
  const std::vector<crypto::Certificate> chain{root, escalated};
  const auto result = verify_capability_chain(
      chain, f.cas.public_key(), f.bb_a.pub, f.restriction, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("escalates"), std::string::npos);
}

TEST(Delegation, DroppedCapabilityIsAllowedNarrowing) {
  DelegationFixture f;
  const crypto::Certificate root = f.cas.grid_login(
      f.alice, f.proxy.pub, kValidity, {"reserve-bw", "use-tunnel"});
  crypto::Certificate::Builder b = build_delegation(
      root, f.dn_a, f.bb_a.pub, f.restriction, kValidity, 1);
  for (auto& ext : b.extensions) {
    if (ext.name == crypto::kExtCapabilities) ext.value = "reserve-bw";
  }
  const crypto::Certificate narrowed = b.sign_with(f.proxy.priv);
  const std::vector<crypto::Certificate> chain{root, narrowed};
  const auto result = verify_capability_chain(
      chain, f.cas.public_key(), f.bb_a.pub, f.restriction, 0);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->capabilities.size(), 1u);
  EXPECT_EQ(result->capabilities[0], "reserve-bw");
}

TEST(Delegation, AlteredRestrictionRejected) {
  DelegationFixture f;
  auto chain = f.build_chain();
  // BB_B rewrites the restriction to target a different reservation.
  crypto::Certificate::Builder b;
  b.serial = 99;
  b.issuer = f.dn_b;
  b.subject = f.dn_c;
  b.validity = kValidity;
  b.subject_key = f.bb_c.pub;
  for (const auto& ext : chain[2].extensions()) {
    if (ext.name == crypto::kExtValidForRar) continue;
    b.extensions.push_back(ext);
  }
  b.extensions.push_back(crypto::Extension{
      crypto::kExtValidForRar, true, "Valid for Reservation in DomainX"});
  chain[3] = b.sign_with(f.bb_b.priv);
  const auto result = verify_capability_chain(
      chain, f.cas.public_key(), f.bb_c.pub, f.restriction, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("restriction"), std::string::npos);
}

TEST(Delegation, RestrictionMismatchWithRarRejected) {
  DelegationFixture f;
  const auto chain = f.build_chain();
  // The verifying RAR is for a different reservation.
  EXPECT_FALSE(verify_capability_chain(chain, f.cas.public_key(), f.bb_c.pub,
                                       "Valid for Reservation in DomainX", 0)
                   .ok());
}

TEST(Delegation, ExpiredLinkRejected) {
  DelegationFixture f;
  const crypto::Certificate root =
      f.cas.grid_login(f.alice, f.proxy.pub, kValidity);
  const crypto::Certificate short_lived = delegate_capability(
      root, f.proxy.priv, f.dn_a, f.bb_a.pub, f.restriction,
      {0, seconds(5)}, 1);
  const std::vector<crypto::Certificate> chain{root, short_lived};
  const auto result = verify_capability_chain(
      chain, f.cas.public_key(), f.bb_a.pub, f.restriction, seconds(60));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kExpired);
}

TEST(Delegation, EmptyChainRejected) {
  DelegationFixture f;
  EXPECT_FALSE(verify_capability_chain({}, f.cas.public_key(), f.bb_a.pub,
                                       "", 0)
                   .ok());
}

TEST(Delegation, ProofOfPossession) {
  DelegationFixture f;
  const Bytes nonce = to_bytes("verifier-nonce-123");
  const Bytes proof = prove_possession(f.bb_c.priv, nonce);
  EXPECT_TRUE(check_possession(f.bb_c.pub, nonce, proof));
  EXPECT_FALSE(check_possession(f.bb_b.pub, nonce, proof));
  EXPECT_FALSE(check_possession(f.bb_c.pub, to_bytes("other"), proof));
}

TEST(Delegation, DecodeChainRoundTrip) {
  DelegationFixture f;
  const auto chain = f.build_chain();
  std::vector<Bytes> encoded;
  for (const auto& cert : chain) encoded.push_back(cert.encode());
  const auto decoded = decode_chain(encoded);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), chain.size());
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_EQ((*decoded)[i], chain[i]);
  }
  encoded[1] = to_bytes("garbage");
  EXPECT_FALSE(decode_chain(encoded).ok());
}

// Chains of parameterized length all verify (and break under truncation of
// the holder check).
class DelegationChainLength : public ::testing::TestWithParam<int> {};

TEST_P(DelegationChainLength, VariableLengthChains) {
  Rng rng(31 + static_cast<std::uint64_t>(GetParam()));
  policy::CommunityAuthorizationServer cas("ESnet", rng, kValidity, 256);
  const crypto::KeyPair proxy = crypto::generate_keypair(rng, 256);
  const auto user = crypto::DistinguishedName::make("U", "D0");
  std::vector<crypto::Certificate> chain{
      cas.grid_login(user, proxy.pub, kValidity)};
  std::vector<crypto::KeyPair> keys{proxy};
  for (int i = 0; i < GetParam(); ++i) {
    keys.push_back(crypto::generate_keypair(rng, 256));
    chain.push_back(delegate_capability(
        chain.back(), keys[keys.size() - 2].priv,
        crypto::DistinguishedName::make("BB-" + std::to_string(i),
                                        "D" + std::to_string(i)),
        keys.back().pub, i == 0 ? "Valid for Reservation in DX" : "",
        kValidity, static_cast<std::uint64_t>(i) + 10));
  }
  EXPECT_TRUE(verify_capability_chain(chain, cas.public_key(),
                                      keys.back().pub,
                                      "Valid for Reservation in DX", 0)
                  .ok());
}

INSTANTIATE_TEST_SUITE_P(Lengths, DelegationChainLength,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace e2e::sig
