#include "crypto/certstore.hpp"

#include <gtest/gtest.h>

#include "crypto/ca.hpp"

namespace e2e::crypto {
namespace {

class CertStoreTest : public ::testing::Test {
 protected:
  CertStoreTest()
      : root_ca_(DistinguishedName::make("Root CA", "TrustCo"), rng_,
                 {0, hours(1000)}, 512),
        user_keys_(generate_keypair(rng_, 512)),
        intermediate_keys_(generate_keypair(rng_, 512)) {
    store_.add_anchor(root_ca_.root_certificate());
  }

  Rng rng_{555};
  CertificateAuthority root_ca_;
  KeyPair user_keys_;
  KeyPair intermediate_keys_;
  TrustStore store_;
};

TEST_F(CertStoreTest, AnchorRegistration) {
  EXPECT_EQ(store_.anchor_count(), 1u);
  EXPECT_TRUE(store_.is_anchor(root_ca_.name()));
  EXPECT_NE(store_.find_anchor(root_ca_.name()), nullptr);
  EXPECT_FALSE(store_.is_anchor(DistinguishedName::make("X", "Y")));
}

TEST_F(CertStoreTest, RejectsNonSelfSignedAnchor) {
  const Certificate leaf = root_ca_.issue(
      DistinguishedName::make("Alice", "A"), user_keys_.pub, {0, hours(1)});
  EXPECT_FALSE(store_.add_anchor(leaf));
  EXPECT_EQ(store_.anchor_count(), 1u);
}

TEST_F(CertStoreTest, DirectlyIssuedLeafVerifies) {
  const Certificate leaf = root_ca_.issue(
      DistinguishedName::make("Alice", "A"), user_keys_.pub, {0, hours(1)});
  const auto path = store_.verify_chain(leaf, {}, minutes(30));
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 2u);
  EXPECT_EQ((*path)[0].subject().common_name(), "Alice");
  EXPECT_EQ((*path)[1].subject(), root_ca_.name());
}

TEST_F(CertStoreTest, TwoLevelChainVerifies) {
  const DistinguishedName mid_dn = DistinguishedName::make("Sub CA", "DomainB");
  const Certificate mid = root_ca_.issue(
      mid_dn, intermediate_keys_.pub, {0, hours(100)},
      {Extension{kExtCa, true, "true"}});
  // The intermediate issues the leaf.
  Certificate::Builder b;
  b.serial = 7;
  b.issuer = mid_dn;
  b.subject = DistinguishedName::make("BB-B", "DomainB");
  b.validity = {0, hours(10)};
  b.subject_key = user_keys_.pub;
  const Certificate leaf = b.sign_with(intermediate_keys_.priv);

  const auto path = store_.verify_chain(leaf, {mid}, hours(1));
  ASSERT_TRUE(path.ok()) << path.error().to_text();
  EXPECT_EQ(path->size(), 3u);
}

TEST_F(CertStoreTest, IntermediateWithoutCaExtensionRejected) {
  const DistinguishedName mid_dn = DistinguishedName::make("Sub CA", "B");
  const Certificate mid = root_ca_.issue(mid_dn, intermediate_keys_.pub,
                                         {0, hours(100)});  // no CA ext
  Certificate::Builder b;
  b.serial = 8;
  b.issuer = mid_dn;
  b.subject = DistinguishedName::make("BB-B", "B");
  b.validity = {0, hours(10)};
  b.subject_key = user_keys_.pub;
  const Certificate leaf = b.sign_with(intermediate_keys_.priv);

  const auto path = store_.verify_chain(leaf, {mid}, hours(1));
  ASSERT_FALSE(path.ok());
  EXPECT_EQ(path.error().code, ErrorCode::kUntrustedKey);
}

TEST_F(CertStoreTest, ExpiredLeafRejected) {
  const Certificate leaf = root_ca_.issue(
      DistinguishedName::make("Alice", "A"), user_keys_.pub,
      {0, minutes(10)});
  const auto path = store_.verify_chain(leaf, {}, hours(1));
  ASSERT_FALSE(path.ok());
  EXPECT_EQ(path.error().code, ErrorCode::kExpired);
}

TEST_F(CertStoreTest, UnknownIssuerRejected) {
  Rng other_rng(9);
  CertificateAuthority rogue(DistinguishedName::make("Rogue CA", "Evil"),
                             other_rng, {0, hours(100)}, 512);
  const Certificate leaf = rogue.issue(DistinguishedName::make("Mallory", "E"),
                                       user_keys_.pub, {0, hours(1)});
  const auto path = store_.verify_chain(leaf, {}, minutes(5));
  ASSERT_FALSE(path.ok());
  EXPECT_EQ(path.error().code, ErrorCode::kUntrustedKey);
}

TEST_F(CertStoreTest, RevokedCertificateRejected) {
  const Certificate leaf = root_ca_.issue(
      DistinguishedName::make("Alice", "A"), user_keys_.pub, {0, hours(1)});
  root_ca_.revoke(leaf.serial());
  store_.set_revocation_check(
      [this](const DistinguishedName& issuer, std::uint64_t serial) {
        return issuer == root_ca_.name() && root_ca_.is_revoked(serial);
      });
  const auto path = store_.verify_chain(leaf, {}, minutes(5));
  ASSERT_FALSE(path.ok());
  EXPECT_EQ(path.error().code, ErrorCode::kUntrustedKey);
}

TEST_F(CertStoreTest, ForgedSignatureRejected) {
  // Leaf claims the root as issuer but is signed by another key.
  Certificate::Builder b;
  b.serial = 99;
  b.issuer = root_ca_.name();
  b.subject = DistinguishedName::make("Mallory", "E");
  b.validity = {0, hours(10)};
  b.subject_key = user_keys_.pub;
  const Certificate forged = b.sign_with(intermediate_keys_.priv);

  const auto path = store_.verify_chain(forged, {}, minutes(5));
  ASSERT_FALSE(path.ok());
  EXPECT_EQ(path.error().code, ErrorCode::kBadSignature);
}

}  // namespace
}  // namespace e2e::crypto
