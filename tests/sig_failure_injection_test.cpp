// Failure injection against the hop-by-hop engine: unreachable peers,
// missing routes, stale certificates, and byzantine brokers.
#include <gtest/gtest.h>

#include "testing_world.hpp"

namespace e2e::sig {
namespace {

using testing::ChainWorld;
using testing::ChainWorldConfig;
using testing::WorldUser;
using testing::kWorldValidity;

TEST(FailureInjection, MissingChannelReportsUnavailable) {
  // Build an engine where B<->C were never connected.
  ChainWorld world;
  Fabric fabric;
  Rng rng(1);
  HopByHopEngine engine(fabric, rng);
  for (std::size_t i = 0; i < 3; ++i) {
    engine.add_domain(world.broker(i));
    engine.trust_community(world.names()[i], "ESnet",
                           world.cas_esnet().public_key());
  }
  ASSERT_TRUE(engine.connect_peers("DomainA", "DomainB", 0).ok());
  // DomainB -> DomainC deliberately not connected.
  const WorldUser alice = world.make_user("Alice", 0);
  engine.register_local_user("DomainA", alice.identity_cert);
  const auto msg = engine.build_user_request(alice.credentials(),
                                             world.spec(alice, 1e6), 0);
  const auto outcome = engine.reserve(*msg, seconds(1));
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kUnavailable);
  EXPECT_EQ(outcome->reply.denial.origin, "DomainB");
  // B rolled back its tentative commitment.
  EXPECT_EQ(world.broker(1).reservation_count(), 0u);
}

TEST(FailureInjection, MissingRouteReportsNoRoute) {
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  bb::ResSpec spec = world.spec(alice, 1e6);
  spec.destination_domain = "DomainZ";  // no such place
  const auto msg =
      world.engine().build_user_request(alice.credentials(), spec, 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kNoRoute);
}

TEST(FailureInjection, ExpiredUserCertificateRejected) {
  ChainWorld world;
  WorldUser alice = world.make_user("Alice", 0);
  // Re-issue Alice's identity with a tiny validity and re-register it.
  alice.identity_cert = world.ca(0).issue(alice.dn, alice.identity_keys.pub,
                                          {0, seconds(10)});
  world.engine().register_local_user("DomainA", alice.identity_cert);
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 1e6), 0);
  const auto outcome = world.engine().reserve(*msg, seconds(60));
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kExpired);
}

TEST(FailureInjection, RequestAddressedToWrongBrokerRejected) {
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  bb::ResSpec spec = world.spec(alice, 1e6);
  // Sign a request addressed to DomainB's broker but submit it with
  // source_domain = DomainA.
  const RarMessage msg = RarMessage::create_user_request(
      spec, world.broker(1).dn().to_string(), {}, alice.identity_keys.priv);
  const auto outcome = world.engine().reserve(msg, seconds(1));
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kAuthenticationFailed);
}

TEST(FailureInjection, ByzantineBrokerCannotForgeUserConsent) {
  // A compromised intermediate cannot rewrite the reservation (e.g. raise
  // the bandwidth) without breaking the user's signature.
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 1e6), 0);
  // "Byzantine B" rebuilds the message with a different res_spec but can
  // only re-sign the user layer with a key it controls.
  bb::ResSpec inflated = world.spec(alice, 500e6);
  Rng rng(3);
  const crypto::KeyPair mallory = crypto::generate_keypair(rng, 256);
  const RarMessage forged = RarMessage::create_user_request(
      inflated, world.broker(0).dn().to_string(),
      msg->user_layer().capability_certs, mallory.priv);
  // The source BB verifies against Alice's registered certificate.
  const auto outcome = world.engine().reserve(forged, seconds(1));
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kBadSignature);
}

TEST(FailureInjection, TunnelSurvivesIntermediateChannelLoss) {
  // Once a tunnel exists, losing the A-B signalling channel does not stop
  // per-flow allocations (they ride the direct A<->C channel).
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  bb::ResSpec agg = world.spec(alice, 50e6, {0, hours(1)});
  agg.is_tunnel = true;
  const auto msg =
      world.engine().build_user_request(alice.credentials(), agg, 0);
  const auto established = world.engine().reserve(*msg, seconds(1));
  ASSERT_TRUE(established->reply.granted);
  // No explicit channel-kill API (sessions are engine state), but a fresh
  // end-to-end reservation and a tunnel flow must both still work — and
  // the flow must not touch the intermediate broker at all.
  const auto before = world.broker(1).counters().requests;
  const auto flow = world.engine().reserve_in_tunnel(
      established->reply.tunnel_id, alice.dn.to_string(), 1e6,
      {0, seconds(60)}, seconds(2));
  ASSERT_TRUE(flow->reply.granted);
  EXPECT_EQ(world.broker(1).counters().requests, before);
}

TEST(FailureInjection, DoubleReleaseIsSafe) {
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 1e6), 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_TRUE(outcome->reply.granted);
  ASSERT_TRUE(world.engine().release_end_to_end(outcome->reply).ok());
  const auto second = world.engine().release_end_to_end(outcome->reply);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, ErrorCode::kNotFound);
  // State stays consistent.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(world.broker(i).reservation_count(), 0u);
  }
}

TEST(FailureInjection, ReplayedRarRejectedByChannel) {
  // The engine drives sessions with strictly increasing sequence numbers;
  // a replayed record is refused by the channel layer. We exercise this
  // directly through Session (the engine consumes records immediately).
  ChainWorld world;
  Rng rng(17);
  auto ep = [&world](std::size_t i) {
    ChannelEndpoint ep;
    ep.certificate = world.broker(i).certificate();
    ep.private_key = world.broker(i).private_key();
    ep.trust_store = &world.broker(i).trust_store();
    return ep;
  };
  auto pair = handshake(ep(0), ep(1), 0, rng).value();
  const Record rec = pair.initiator.seal(to_bytes("RAR"));
  ASSERT_TRUE(pair.responder.open(rec).ok());
  EXPECT_FALSE(pair.responder.open(rec).ok());
}

}  // namespace
}  // namespace e2e::sig
