// Failure injection against the hop-by-hop engine: unreachable peers,
// missing routes, stale certificates, and byzantine brokers.
#include <gtest/gtest.h>

#include "testing_world.hpp"

namespace e2e::sig {
namespace {

using testing::ChainWorld;
using testing::ChainWorldConfig;
using testing::WorldUser;
using testing::kWorldValidity;

TEST(FailureInjection, MissingChannelReportsUnavailable) {
  // Build an engine where B<->C were never connected.
  ChainWorld world;
  Fabric fabric;
  Rng rng(1);
  HopByHopEngine engine(fabric, rng);
  for (std::size_t i = 0; i < 3; ++i) {
    engine.add_domain(world.broker(i));
    engine.trust_community(world.names()[i], "ESnet",
                           world.cas_esnet().public_key());
  }
  ASSERT_TRUE(engine.connect_peers("DomainA", "DomainB", 0).ok());
  // DomainB -> DomainC deliberately not connected.
  const WorldUser alice = world.make_user("Alice", 0);
  engine.register_local_user("DomainA", alice.identity_cert);
  const auto msg = engine.build_user_request(alice.credentials(),
                                             world.spec(alice, 1e6), 0);
  const auto outcome = engine.reserve(*msg, seconds(1));
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kUnavailable);
  EXPECT_EQ(outcome->reply.denial.origin, "DomainB");
  // B rolled back its tentative commitment.
  EXPECT_EQ(world.broker(1).reservation_count(), 0u);
}

TEST(FailureInjection, MissingRouteReportsNoRoute) {
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  bb::ResSpec spec = world.spec(alice, 1e6);
  spec.destination_domain = "DomainZ";  // no such place
  const auto msg =
      world.engine().build_user_request(alice.credentials(), spec, 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kNoRoute);
}

TEST(FailureInjection, ExpiredUserCertificateRejected) {
  ChainWorld world;
  WorldUser alice = world.make_user("Alice", 0);
  // Re-issue Alice's identity with a tiny validity and re-register it.
  alice.identity_cert = world.ca(0).issue(alice.dn, alice.identity_keys.pub,
                                          {0, seconds(10)});
  world.engine().register_local_user("DomainA", alice.identity_cert);
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 1e6), 0);
  const auto outcome = world.engine().reserve(*msg, seconds(60));
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kExpired);
}

TEST(FailureInjection, RequestAddressedToWrongBrokerRejected) {
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  bb::ResSpec spec = world.spec(alice, 1e6);
  // Sign a request addressed to DomainB's broker but submit it with
  // source_domain = DomainA.
  const RarMessage msg = RarMessage::create_user_request(
      spec, world.broker(1).dn().to_string(), {}, alice.identity_keys.priv);
  const auto outcome = world.engine().reserve(msg, seconds(1));
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kAuthenticationFailed);
}

TEST(FailureInjection, ByzantineBrokerCannotForgeUserConsent) {
  // A compromised intermediate cannot rewrite the reservation (e.g. raise
  // the bandwidth) without breaking the user's signature.
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 1e6), 0);
  // "Byzantine B" rebuilds the message with a different res_spec but can
  // only re-sign the user layer with a key it controls.
  bb::ResSpec inflated = world.spec(alice, 500e6);
  Rng rng(3);
  const crypto::KeyPair mallory = crypto::generate_keypair(rng, 256);
  const RarMessage forged = RarMessage::create_user_request(
      inflated, world.broker(0).dn().to_string(),
      msg->user_layer().capability_certs, mallory.priv);
  // The source BB verifies against Alice's registered certificate.
  const auto outcome = world.engine().reserve(forged, seconds(1));
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kBadSignature);
}

TEST(FailureInjection, TunnelSurvivesIntermediateChannelLoss) {
  // Once a tunnel exists, losing the A-B signalling channel does not stop
  // per-flow allocations (they ride the direct A<->C channel).
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  bb::ResSpec agg = world.spec(alice, 50e6, {0, hours(1)});
  agg.is_tunnel = true;
  const auto msg =
      world.engine().build_user_request(alice.credentials(), agg, 0);
  const auto established = world.engine().reserve(*msg, seconds(1));
  ASSERT_TRUE(established->reply.granted);
  // No explicit channel-kill API (sessions are engine state), but a fresh
  // end-to-end reservation and a tunnel flow must both still work — and
  // the flow must not touch the intermediate broker at all.
  const auto before = world.broker(1).counters().requests;
  const auto flow = world.engine().reserve_in_tunnel(
      established->reply.tunnel_id, alice.dn.to_string(), 1e6,
      {0, seconds(60)}, seconds(2));
  ASSERT_TRUE(flow->reply.granted);
  EXPECT_EQ(world.broker(1).counters().requests, before);
}

TEST(FailureInjection, DoubleReleaseIsSafe) {
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 1e6), 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_TRUE(outcome->reply.granted);
  ASSERT_TRUE(world.engine().release_end_to_end(outcome->reply).ok());
  const auto second = world.engine().release_end_to_end(outcome->reply);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, ErrorCode::kNotFound);
  // State stays consistent.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(world.broker(i).reservation_count(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Per-stage / per-hop failure matrix on a 4-domain path (ISSUE 2
// satellite): force a failure at each processing stage (verify, policy,
// admission, sign_and_forward) at each hop and assert both the denial
// (code + origin) and that every upstream broker released its tentative
// commitment.
//
// Stage "verify" cannot be forced at hop 1 through public configuration:
// hop 1 receives exactly one broker layer from its directly authenticated
// channel peer (introduction depth 0), so no trust policy — however
// strict — can reject it, and the channel layer already authenticates the
// bytes. That structural gap is intentional; the hop-0 (bad user
// signature) and hop-2/3 (trust-depth) cases bracket it.
// ---------------------------------------------------------------------------

ChainWorldConfig four_domain_config() {
  ChainWorldConfig config;
  config.domains = 4;
  return config;
}

void expect_all_released(ChainWorld& world, std::size_t expected_residual = 0) {
  std::size_t residual = 0;
  for (std::size_t i = 0; i < world.names().size(); ++i) {
    residual += world.broker(i).reservation_count();
  }
  EXPECT_EQ(residual, expected_residual);
}

TEST(FailureMatrix, VerifyFailsAtHop0WithForgedUserSignature) {
  ChainWorld world(four_domain_config());
  const WorldUser alice = world.make_user("Alice", 0);
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 1e6), 0);
  Rng rng(7);
  const crypto::KeyPair mallory = crypto::generate_keypair(rng, 256);
  const RarMessage forged = RarMessage::create_user_request(
      world.spec(alice, 1e6), world.broker(0).dn().to_string(),
      msg->user_layer().capability_certs, mallory.priv);
  const auto outcome = world.engine().reserve(forged, seconds(1));
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kBadSignature);
  EXPECT_EQ(outcome->reply.denial.origin, "DomainA");
  expect_all_released(world);
}

TEST(FailureMatrix, VerifyFailsAtDeepHopsViaTrustDepthPolicy) {
  // Hop k (0-indexed) sees broker signature layers introduced at depths
  // 0..k-1, so max_introduction_depth = k-2 rejects exactly the deepest
  // introduction at hop k while hops before it still pass.
  for (std::size_t hop : {std::size_t{2}, std::size_t{3}}) {
    SCOPED_TRACE(::testing::Message() << "verify hop " << hop);
    ChainWorld world(four_domain_config());
    const WorldUser alice = world.make_user("Alice", 0);
    TrustPolicy strict;
    strict.max_introduction_depth = hop - 2;
    world.engine().set_trust_policy(world.names()[hop], strict);
    const auto msg = world.engine().build_user_request(
        alice.credentials(), world.spec(alice, 1e6), 0);
    const auto outcome = world.engine().reserve(*msg, seconds(1));
    ASSERT_TRUE(outcome.ok());
    ASSERT_FALSE(outcome->reply.granted);
    EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kUntrustedKey);
    EXPECT_EQ(outcome->reply.denial.origin, world.names()[hop]);
    expect_all_released(world);
  }
}

TEST(FailureMatrix, PolicyDeniesAtEveryHop) {
  for (std::size_t hop = 0; hop < 4; ++hop) {
    SCOPED_TRACE(::testing::Message() << "policy hop " << hop);
    ChainWorldConfig config = four_domain_config();
    config.policies.assign(4, "Return GRANT");
    config.policies[hop] = "Return DENY";
    ChainWorld world(config);
    const WorldUser alice = world.make_user("Alice", 0);
    const auto msg = world.engine().build_user_request(
        alice.credentials(), world.spec(alice, 1e6), 0);
    const auto outcome = world.engine().reserve(*msg, seconds(1));
    ASSERT_TRUE(outcome.ok());
    ASSERT_FALSE(outcome->reply.granted);
    EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kPolicyDenied);
    EXPECT_EQ(outcome->reply.denial.origin, world.names()[hop]);
    expect_all_released(world);
  }
}

TEST(FailureMatrix, AdmissionRejectsAtEveryHop) {
  for (std::size_t hop = 0; hop < 4; ++hop) {
    SCOPED_TRACE(::testing::Message() << "admission hop " << hop);
    ChainWorld world(four_domain_config());
    const WorldUser alice = world.make_user("Alice", 0);
    // Pre-fill hop's local pool so the request's 10 Mb/s no longer fits
    // (capacity 622 Mb/s; the SLA pools stay untouched by a local commit).
    bb::ResSpec filler;
    filler.user = "uid=prefill";
    filler.source_domain = world.names()[hop];
    filler.destination_domain = world.names()[hop];
    filler.rate_bits_per_s = 615e6;
    filler.interval = {0, seconds(600)};
    ASSERT_TRUE(world.broker(hop).commit(filler, "").ok());
    const auto msg = world.engine().build_user_request(
        alice.credentials(), world.spec(alice, 10e6), 0);
    const auto outcome = world.engine().reserve(*msg, seconds(1));
    ASSERT_TRUE(outcome.ok());
    ASSERT_FALSE(outcome->reply.granted);
    EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kAdmissionRejected);
    EXPECT_EQ(outcome->reply.denial.origin, world.names()[hop]);
    expect_all_released(world, /*expected_residual=*/1);  // the filler
  }
}

TEST(FailureMatrix, ForwardTimesOutAtEveryLink) {
  for (std::size_t hop = 0; hop < 3; ++hop) {
    SCOPED_TRACE(::testing::Message() << "forward hop " << hop);
    ChainWorld world(four_domain_config());
    const WorldUser alice = world.make_user("Alice", 0);
    world.partition_link(hop, hop + 1);
    const auto msg = world.engine().build_user_request(
        alice.credentials(), world.spec(alice, 1e6), 0);
    const auto outcome = world.engine().reserve(*msg, seconds(1));
    ASSERT_TRUE(outcome.ok());
    ASSERT_FALSE(outcome->reply.granted);
    EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kTimeout);
    EXPECT_EQ(outcome->reply.denial.origin, world.names()[hop]);
    expect_all_released(world);
    // And the path works again once the link heals — after cache expiry,
    // or an identical re-submission would be served the cached denial.
    world.heal_link(hop, hop + 1);
    world.engine().forget_completed_requests();
    const auto retry = world.engine().reserve(*msg, seconds(2));
    ASSERT_TRUE(retry.ok());
    EXPECT_TRUE(retry->reply.granted);
  }
}

TEST(FailureInjection, ReplayedRarRejectedByChannel) {
  // The engine drives sessions with strictly increasing sequence numbers;
  // a replayed record is refused by the channel layer. We exercise this
  // directly through Session (the engine consumes records immediately).
  ChainWorld world;
  Rng rng(17);
  auto ep = [&world](std::size_t i) {
    ChannelEndpoint ep;
    ep.certificate = world.broker(i).certificate();
    ep.private_key = world.broker(i).private_key();
    ep.trust_store = &world.broker(i).trust_store();
    return ep;
  };
  auto pair = handshake(ep(0), ep(1), 0, rng).value();
  const Record rec = pair.initiator.seal(to_bytes("RAR"));
  ASSERT_TRUE(pair.responder.open(rec).ok());
  EXPECT_FALSE(pair.responder.open(rec).ok());
}

}  // namespace
}  // namespace e2e::sig
