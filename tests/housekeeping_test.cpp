// Operational housekeeping: expired-reservation purge and per-link
// transmission accounting.
#include <gtest/gtest.h>

#include "net/simulator.hpp"
#include "testing_world.hpp"

namespace e2e {
namespace {

using testing::ChainWorld;
using testing::WorldUser;

TEST(Housekeeping, PurgeDropsOnlyExpiredReservations) {
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  const auto short_msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 10e6, {0, seconds(10)}), 0);
  const auto long_msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 10e6, {0, seconds(100)}), 0);
  ASSERT_TRUE(world.engine().reserve(*short_msg, 0)->reply.granted);
  ASSERT_TRUE(world.engine().reserve(*long_msg, 0)->reply.granted);
  EXPECT_EQ(world.broker(1).reservation_count(), 2u);

  // At t=50 the first reservation's window has closed.
  EXPECT_EQ(world.broker(1).purge_expired(seconds(50)), 1u);
  EXPECT_EQ(world.broker(1).reservation_count(), 1u);
  // The long reservation still counts against capacity.
  EXPECT_DOUBLE_EQ(world.broker(1).committed_at(seconds(60)), 10e6);
  // Purge is idempotent.
  EXPECT_EQ(world.broker(1).purge_expired(seconds(50)), 0u);
}

TEST(Housekeeping, PurgeNotifiesEdgeConfigurator) {
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  std::vector<std::pair<std::string, bool>> calls;
  world.broker(0).set_edge_configurator(
      [&calls](const bb::Reservation& r, bool install) {
        calls.emplace_back(r.id, install);
      });
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 10e6, {0, seconds(10)}), 0);
  ASSERT_TRUE(world.engine().reserve(*msg, 0)->reply.granted);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_TRUE(calls[0].second);
  ASSERT_EQ(world.broker(0).purge_expired(seconds(20)), 1u);
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_FALSE(calls[1].second);  // uninstall notification
}

TEST(Housekeeping, PurgeRestoresSlaPools) {
  ChainWorld world;  // 100 Mb/s SLA between neighbours
  const WorldUser alice = world.make_user("Alice", 0);
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 90e6, {0, seconds(10)}), 0);
  ASSERT_TRUE(world.engine().reserve(*msg, 0)->reply.granted);
  for (std::size_t i = 0; i < 3; ++i) {
    (void)world.broker(i).purge_expired(seconds(20));
  }
  // A new reservation in a window overlapping the purged one's record
  // must succeed (pool entries were reclaimed, and the old window ended).
  const auto next = world.engine().build_user_request(
      alice.credentials(),
      world.spec(alice, 90e6, {seconds(30), seconds(40)}), 0);
  EXPECT_TRUE(world.engine().reserve(*next, seconds(20))->reply.granted);
}

TEST(Housekeeping, LinkStatsAccounting) {
  net::Topology topo;
  const auto d = topo.add_domain("D");
  const auto a = topo.add_router(d, "a", true);
  const auto b = topo.add_router(d, "b", true);
  const auto ab = topo.add_link(a, b, 100e6, milliseconds(1));
  net::Simulator sim(std::move(topo));
  net::FlowDescription fd;
  fd.name = "f";
  fd.source = a;
  fd.destination = b;
  fd.pattern = net::TrafficPattern::cbr(50e6);
  const auto flow = sim.add_flow(fd).value();
  sim.run_until(seconds(2));

  const auto& ls = sim.link_stats(ab);
  // Transmitted >= delivered (packets still propagating at the cut-off)
  // and <= emitted.
  EXPECT_GE(ls.tx_packets, sim.stats(flow).delivered_packets);
  EXPECT_LE(ls.tx_packets, sim.stats(flow).emitted_packets);
  EXPECT_LE(ls.tx_packets - sim.stats(flow).delivered_packets, 10u);
  // 50 Mb/s offered on a 100 Mb/s link: ~50% utilization.
  EXPECT_NEAR(ls.utilization(seconds(2)), 0.5, 0.03);
}

TEST(Housekeeping, IdleLinkHasZeroStats) {
  net::Topology topo;
  const auto d = topo.add_domain("D");
  const auto a = topo.add_router(d, "a", true);
  const auto b = topo.add_router(d, "b", true);
  const auto ab = topo.add_link(a, b, 100e6, 0);
  net::Simulator sim(std::move(topo));
  sim.run_until(seconds(1));
  EXPECT_EQ(sim.link_stats(ab).tx_packets, 0u);
  EXPECT_DOUBLE_EQ(sim.link_stats(ab).utilization(seconds(1)), 0.0);
}

}  // namespace
}  // namespace e2e
