#include <gtest/gtest.h>

#include "policy/policy.hpp"

namespace e2e::policy {
namespace {

Policy compile(std::string src) {
  auto p = Policy::compile(std::move(src));
  EXPECT_TRUE(p.ok()) << (p.ok() ? "" : p.error().to_text());
  return p.value();
}

Decision run(const Policy& p, const EvalContext& ctx) {
  return p.decide(ctx).value();
}

TEST(Eval, ReturnGrant) {
  const Policy p = compile("Return GRANT");
  EXPECT_EQ(run(p, EvalContext{}), Decision::kGrant);
}

TEST(Eval, EmptyPolicyDefaultsDeny) {
  const Policy p = compile("");
  EXPECT_EQ(run(p, EvalContext{}), Decision::kDeny);
  EXPECT_EQ(p.decide(EvalContext{}, Decision::kGrant).value(),
            Decision::kGrant);  // configurable open-world
}

TEST(Eval, UserEqualsBareWord) {
  const Policy p = compile(R"(
    If User = Alice { Return GRANT }
    Return DENY
  )");
  EvalContext alice;
  alice.set_user("Alice");
  EXPECT_EQ(run(p, alice), Decision::kGrant);
  EvalContext bob;
  bob.set_user("Bob");
  EXPECT_EQ(run(p, bob), Decision::kDeny);
}

TEST(Eval, UserEqualsQuotedString) {
  const Policy p = compile(R"(If User = "Alice Liddell" Return GRANT)");
  EvalContext ctx;
  ctx.set_user("Alice Liddell");
  EXPECT_EQ(run(p, ctx), Decision::kGrant);
}

TEST(Eval, BandwidthComparison) {
  const Policy p = compile(R"(
    If BW <= 10Mb/s { Return GRANT }
    Return DENY
  )");
  EvalContext ok;
  ok.set_bandwidth(10e6);
  EXPECT_EQ(run(p, ok), Decision::kGrant);
  EvalContext too_much;
  too_much.set_bandwidth(10e6 + 1);
  EXPECT_EQ(run(p, too_much), Decision::kDeny);
}

TEST(Eval, TimeOfDayWindow) {
  const Policy p = compile(R"(
    If Time > 8am and Time < 5pm { Return DENY }
    Return GRANT
  )");
  EvalContext business;
  business.set_time(hours(12));
  EXPECT_EQ(run(p, business), Decision::kDeny);
  EvalContext night;
  night.set_time(hours(22));
  EXPECT_EQ(run(p, night), Decision::kGrant);
  // Next virtual day wraps.
  EvalContext next_day_noon;
  next_day_noon.set_time(hours(24 + 12));
  EXPECT_EQ(run(p, next_day_noon), Decision::kDeny);
}

TEST(Eval, AvailBwBuiltin) {
  const Policy p = compile(R"(
    If BW <= Avail_BW Return GRANT
    Return DENY
  )");
  EvalContext ctx;
  ctx.set_bandwidth(40e6);
  ctx.set_available_bandwidth(100e6);
  EXPECT_EQ(run(p, ctx), Decision::kGrant);
  ctx.set_available_bandwidth(30e6);
  EXPECT_EQ(run(p, ctx), Decision::kDeny);
}

TEST(Eval, GroupMembershipTest) {
  const Policy p = compile(R"(
    If Group = Atlas { If BW <= 10Mb/s Return GRANT }
    Return DENY
  )");
  EvalContext member;
  member.add_group("Atlas");
  member.set_bandwidth(5e6);
  EXPECT_EQ(run(p, member), Decision::kGrant);

  EvalContext non_member;
  non_member.set_bandwidth(5e6);
  EXPECT_EQ(run(p, non_member), Decision::kDeny);

  EvalContext member_too_fast;
  member_too_fast.add_group("Atlas");
  member_too_fast.set_bandwidth(50e6);
  EXPECT_EQ(run(p, member_too_fast), Decision::kDeny);
}

TEST(Eval, IssuedByCapabilityTest) {
  const Policy p = compile(R"(
    If Issued_by(Capability) = ESnet Return GRANT
    Return DENY
  )");
  EvalContext with;
  with.add_capability({"ESnet", {"Capabilities of ESnet"}});
  EXPECT_EQ(run(p, with), Decision::kGrant);

  EvalContext wrong_community;
  wrong_community.add_capability({"DOEGrid", {"x"}});
  EXPECT_EQ(run(p, wrong_community), Decision::kDeny);

  EvalContext without;
  EXPECT_EQ(run(p, without), Decision::kDeny);
}

TEST(Eval, ExternalPredicate) {
  const Policy p = compile(R"(
    If HasValidCPUResv(RAR) Return GRANT
    Return DENY
  )");
  EvalContext ctx;
  bool cpu_ok = false;
  ctx.register_predicate("HasValidCPUResv",
                         [&](std::span<const Value>) { return Value(cpu_ok); });
  EXPECT_EQ(run(p, ctx), Decision::kDeny);
  cpu_ok = true;
  EXPECT_EQ(run(p, ctx), Decision::kGrant);
}

TEST(Eval, PredicateReceivesArguments) {
  const Policy p = compile(R"(
    If Member("ATLAS experiment", User) Return GRANT
    Return DENY
  )");
  EvalContext ctx;
  ctx.set_user("Alice");
  ctx.register_predicate("Member", [](std::span<const Value> args) {
    return Value(args.size() == 2 && args[0].as_string() == "ATLAS experiment" &&
                 args[1].as_string() == "Alice");
  });
  EXPECT_EQ(run(p, ctx), Decision::kGrant);
}

TEST(Eval, UnknownPredicateIsError) {
  const Policy p = compile("If Accredited_Physicist(requestor) Return GRANT");
  EvalContext ctx;
  EXPECT_FALSE(p.decide(ctx).ok());
}

TEST(Eval, ElseAndElseIfChain) {
  const Policy p = compile(R"(
    If User = Alice {
      If BW <= 10Mb/s { Return GRANT }
      Else if BW <= 100Mb/s { Return DENY }
      Else { Return DENY }
    }
    Else if User = Bob { Return DENY }
    Else { Return GRANT }
  )");
  EvalContext alice;
  alice.set_user("Alice");
  alice.set_bandwidth(1e6);
  EXPECT_EQ(run(p, alice), Decision::kGrant);

  EvalContext bob;
  bob.set_user("Bob");
  bob.set_bandwidth(1e6);
  EXPECT_EQ(run(p, bob), Decision::kDeny);

  EvalContext carol;
  carol.set_user("Carol");
  carol.set_bandwidth(1e6);
  EXPECT_EQ(run(p, carol), Decision::kGrant);
}

TEST(Eval, FallThroughIfNoBranchDecides) {
  const Policy p = compile(R"(
    If User = Alice { If BW <= 1Mb/s Return GRANT }
    Return DENY
  )");
  EvalContext ctx;
  ctx.set_user("Alice");
  ctx.set_bandwidth(5e6);  // inner If fails, falls through to outer DENY
  EXPECT_EQ(run(p, ctx), Decision::kDeny);
}

TEST(Eval, NotAndOrPrecedence) {
  const Policy p = compile(R"(
    If not User = Alice and BW <= 10Mb/s or Group = Ops Return GRANT
    Return DENY
  )");
  // Parsed as ((not (User=Alice)) and BW<=10M) or (Group=Ops).
  EvalContext bob_small;
  bob_small.set_user("Bob");
  bob_small.set_bandwidth(1e6);
  EXPECT_EQ(run(p, bob_small), Decision::kGrant);

  EvalContext alice_ops;
  alice_ops.set_user("Alice");
  alice_ops.set_bandwidth(99e6);
  alice_ops.add_group("Ops");
  EXPECT_EQ(run(p, alice_ops), Decision::kGrant);

  EvalContext alice_plain;
  alice_plain.set_user("Alice");
  alice_plain.set_bandwidth(1e6);
  EXPECT_EQ(run(p, alice_plain), Decision::kDeny);
}

TEST(Eval, OrderedComparisonOnStringsIsError) {
  const Policy p = compile("If User < 5 Return GRANT");
  EvalContext ctx;
  ctx.set_user("Alice");
  EXPECT_FALSE(p.decide(ctx).ok());
}

TEST(Eval, MissingAttributeComparesUnequal) {
  const Policy p = compile(R"(
    If Destination = DomainC Return GRANT
    Return DENY
  )");
  EvalContext ctx;  // Destination never set -> treated as bare string "Destination"? No:
  // "Destination" is unknown, so it evaluates to the string "Destination",
  // which != "DomainC".
  EXPECT_EQ(run(p, ctx), Decision::kDeny);
  ctx.set("Destination", Value(std::string("DomainC")));
  EXPECT_EQ(run(p, ctx), Decision::kGrant);
}

// ---- The actual policies from the paper's figures ----

// Fig. 1, domain A: "If User = Alice ... GRANT; if Bob ... DENY".
TEST(PaperPolicies, Fig1DomainA) {
  const Policy p = compile(R"(
    If User = Alice {
      If Reservation_Type = Network { Return GRANT }
    }
    If User = Bob {
      If Reservation_Type = Network { Return DENY }
    }
    Return DENY
  )");
  EvalContext alice;
  alice.set_user("Alice");
  alice.set("Reservation_Type", Value(std::string("Network")));
  EXPECT_EQ(run(p, alice), Decision::kGrant);

  EvalContext bob = alice;
  bob.set_user("Bob");
  EXPECT_EQ(run(p, bob), Decision::kDeny);
}

// Fig. 1, domain B: "If Accredited_Physicist(requestor) GRANT else DENY".
TEST(PaperPolicies, Fig1DomainB) {
  const Policy p = compile(R"(
    If Reservation_Type = Network {
      If Accredited_Physicist(requestor) { Return GRANT }
      Else { Return DENY }
    }
    Return DENY
  )");
  EvalContext physicist;
  physicist.set("Reservation_Type", Value(std::string("Network")));
  physicist.register_predicate("Accredited_Physicist",
                               [](std::span<const Value>) {
                                 return Value(true);
                               });
  EXPECT_EQ(run(p, physicist), Decision::kGrant);
}

// Fig. 6, policy file A: Alice unlimited off-hours, 10 Mb/s business hours.
const char* kFig6PolicyA = R"(
  If User = Alice {
    If Time > 8am and Time < 5pm {
      If BW <= 10Mb/s { Return GRANT }
      Else { Return DENY }
    }
    Else if BW <= Avail_BW { Return GRANT }
    Else { Return DENY }
  }
  Return DENY
)";

TEST(PaperPolicies, Fig6PolicyA) {
  const Policy p = compile(kFig6PolicyA);

  EvalContext business;
  business.set_user("Alice");
  business.set_time(hours(10));
  business.set_available_bandwidth(622e6);
  business.set_bandwidth(10e6);
  EXPECT_EQ(run(p, business), Decision::kGrant);

  business.set_bandwidth(20e6);
  EXPECT_EQ(run(p, business), Decision::kDeny);

  EvalContext evening = business;
  evening.set_time(hours(20));
  evening.set_bandwidth(500e6);
  EXPECT_EQ(run(p, evening), Decision::kGrant);

  evening.set_bandwidth(700e6);  // above available
  EXPECT_EQ(run(p, evening), Decision::kDeny);

  EvalContext bob = business;
  bob.set_user("Bob");
  bob.set_bandwidth(1e6);
  EXPECT_EQ(run(p, bob), Decision::kDeny);
}

// Fig. 6, policy file B: Atlas members or ESnet capability holders, 10 Mb/s.
const char* kFig6PolicyB = R"(
  If Group = Atlas {
    If BW <= 10Mb/s { Return GRANT }
  }
  Else if Issued_by(Capability) = ESnet {
    If BW <= 10Mb/s { Return GRANT }
  }
  Return DENY
)";

TEST(PaperPolicies, Fig6PolicyB) {
  const Policy p = compile(kFig6PolicyB);

  EvalContext atlas;
  atlas.add_group("Atlas");
  atlas.set_bandwidth(10e6);
  EXPECT_EQ(run(p, atlas), Decision::kGrant);

  EvalContext esnet;
  esnet.add_capability({"ESnet", {"Capabilities of ESnet"}});
  esnet.set_bandwidth(10e6);
  EXPECT_EQ(run(p, esnet), Decision::kGrant);

  EvalContext neither;
  neither.set_bandwidth(1e6);
  EXPECT_EQ(run(p, neither), Decision::kDeny);

  EvalContext too_fast = esnet;
  too_fast.set_bandwidth(11e6);
  EXPECT_EQ(run(p, too_fast), Decision::kDeny);
}

// Fig. 6, policy file C: >= 5 Mb/s needs ESnet capability AND a valid CPU
// reservation referenced by the RAR.
const char* kFig6PolicyC = R"(
  If BW >= 5Mb/s {
    If Issued_by(Capability) = ESnet and HasValidCPUResv(RAR) {
      Return GRANT
    }
  }
  Return DENY
)";

TEST(PaperPolicies, Fig6PolicyC) {
  const Policy p = compile(kFig6PolicyC);

  EvalContext full;
  full.set_bandwidth(10e6);
  full.add_capability({"ESnet", {"Capabilities of ESnet"}});
  full.register_predicate("HasValidCPUResv", [](std::span<const Value>) {
    return Value(true);
  });
  EXPECT_EQ(run(p, full), Decision::kGrant);

  EvalContext no_cpu = full;
  no_cpu.register_predicate("HasValidCPUResv", [](std::span<const Value>) {
    return Value(false);
  });
  EXPECT_EQ(run(p, no_cpu), Decision::kDeny);

  EvalContext no_cap;
  no_cap.set_bandwidth(10e6);
  no_cap.register_predicate("HasValidCPUResv", [](std::span<const Value>) {
    return Value(true);
  });
  EXPECT_EQ(run(p, no_cap), Decision::kDeny);

  // Below the 5 Mb/s threshold the conjunct is never consulted, but the
  // policy file as printed in the paper then denies (closed world).
  EvalContext slow;
  slow.set_bandwidth(1e6);
  EXPECT_EQ(run(p, slow), Decision::kDeny);
}

}  // namespace
}  // namespace e2e::policy
