// Unit tests for the transport-agnostic admin plane (obs/admin.hpp):
// HTTP parsing/rendering, route dispatch, the TTL'd snapshot cache under
// an injected clock, and the /tracez serialization consumed by
// tools/tracedump --from-json.
#include "obs/admin.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "common/json_reader.hpp"
#include "obs/collector.hpp"
#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace e2e::obs {
namespace {

using std::chrono::milliseconds;

TEST(AdminHttp, HeadCompleteness) {
  EXPECT_FALSE(http_head_complete(""));
  EXPECT_FALSE(http_head_complete("GET /metrics HTTP/1.0\r\n"));
  EXPECT_TRUE(http_head_complete("GET /metrics HTTP/1.0\r\n\r\n"));
  EXPECT_TRUE(http_head_complete("GET /metrics HTTP/1.0\n\n"));
}

TEST(AdminHttp, ParsesRequestLineAndStripsQuery) {
  const AdminRequest plain =
      parse_http_request("GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n");
  EXPECT_EQ(plain.method, "GET");
  EXPECT_EQ(plain.path, "/metrics");

  const AdminRequest query =
      parse_http_request("GET /statz?verbose=1 HTTP/1.1\r\n\r\n");
  EXPECT_EQ(query.path, "/statz");

  // curl-style bare request line (no version) still parses.
  const AdminRequest bare = parse_http_request("GET /healthz\r\n\r\n");
  EXPECT_EQ(bare.method, "GET");
  EXPECT_EQ(bare.path, "/healthz");
}

TEST(AdminHttp, MalformedHeadsYieldEmptyRequest) {
  for (const char* head :
       {"", "\r\n\r\n", "GET\r\n\r\n", "GET metrics HTTP/1.0\r\n\r\n",
        " /metrics HTTP/1.0\r\n\r\n"}) {
    const AdminRequest request = parse_http_request(head);
    EXPECT_TRUE(request.method.empty()) << "head: " << head;
    EXPECT_TRUE(request.path.empty()) << "head: " << head;
  }
}

TEST(AdminHttp, RendersMinimalHttp10Response) {
  AdminResponse response;
  response.status = 200;
  response.content_type = "text/plain; charset=utf-8";
  response.body = "ok\n";
  const std::string wire = render_http_response(response);
  EXPECT_EQ(wire.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(wire.find("Content-Type: text/plain; charset=utf-8\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n\r\n"), std::string::npos);
  EXPECT_TRUE(wire.ends_with("\r\n\r\nok\n"));
}

// ---------------------------------------------------------------------
// Routing. The plane owns a registry reference and an injected clock, so
// every behavior is observable without sockets.

struct PlaneFixture {
  MetricsRegistry registry;
  std::uint64_t now_ms = 0;
  bool ready = true;
  int refreshes = 0;

  AdminPlane make(milliseconds ttl = milliseconds(250)) {
    AdminPlane::Providers providers;
    providers.health = [this] {
      AdminPlane::Health health;
      health.live = true;
      health.ready = ready;
      health.detail = ready ? "" : "no world configured";
      return health;
    };
    providers.statz_json = [] { return std::string("{\"shards\":[]}"); };
    providers.tracez_json = [] { return std::string("{\"traces\":[]}"); };
    providers.refresh = [this](std::uint64_t) { ++refreshes; };
    return AdminPlane(registry, std::move(providers), ttl,
                      [this] { return now_ms; });
  }
};

TEST(AdminPlane, RoutesEveryDocumentedPath) {
  PlaneFixture fx;
  AdminPlane plane = fx.make();

  const AdminResponse metrics = plane.handle({"GET", "/metrics"});
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain; version=0.0.4; charset=utf-8");

  const AdminResponse metrics_json = plane.handle({"GET", "/metrics.json"});
  EXPECT_EQ(metrics_json.status, 200);
  EXPECT_EQ(metrics_json.content_type, "application/json");
  EXPECT_TRUE(json::parse(metrics_json.body).ok());

  EXPECT_EQ(plane.handle({"GET", "/healthz"}).body, "ok\n");
  EXPECT_EQ(plane.handle({"GET", "/readyz"}).body, "ready\n");
  EXPECT_EQ(plane.handle({"GET", "/statz"}).body, "{\"shards\":[]}");
  EXPECT_EQ(plane.handle({"GET", "/tracez"}).body, "{\"traces\":[]}");
}

TEST(AdminPlane, NotReadyReports503WithDetail) {
  PlaneFixture fx;
  fx.ready = false;
  AdminPlane plane = fx.make();
  EXPECT_EQ(plane.handle({"GET", "/healthz"}).status, 200);  // still live
  const AdminResponse readyz = plane.handle({"GET", "/readyz"});
  EXPECT_EQ(readyz.status, 503);
  EXPECT_EQ(readyz.body, "no world configured\n");
}

TEST(AdminPlane, RejectsUnknownPathMethodAndMalformed) {
  PlaneFixture fx;
  AdminPlane plane = fx.make();
  EXPECT_EQ(plane.handle({"GET", "/nope"}).status, 404);
  EXPECT_EQ(plane.handle({"POST", "/metrics"}).status, 405);
  EXPECT_EQ(plane.handle({"", ""}).status, 400);
  // Request accounting uses the closed route set plus "other", so an
  // adversarial scraper cannot mint label values.
  EXPECT_EQ(
      fx.registry.counter(kObsAdminRequestsTotal, {{"path", "other"}}).value(),
      2u);
  EXPECT_EQ(fx.registry
                .counter(kObsAdminRequestsTotal, {{"path", "/metrics"}})
                .value(),
            1u);
}

TEST(AdminPlane, SnapshotCacheHitsWithinTtlRefreshesAfter) {
  PlaneFixture fx;
  AdminPlane plane = fx.make(milliseconds(250));
  auto hits = [&] {
    return fx.registry
        .counter(kObsSnapshotCacheTotal, {{"result", "hit"}})
        .value();
  };
  auto refreshes = [&] {
    return fx.registry
        .counter(kObsSnapshotCacheTotal, {{"result", "refresh"}})
        .value();
  };

  plane.handle({"GET", "/metrics"});
  EXPECT_EQ(refreshes(), 1u);
  EXPECT_EQ(hits(), 0u);
  EXPECT_EQ(fx.refreshes, 1);

  // Within the TTL both formats are cache hits (rendered per refresh),
  // and the daemon's refresh provider is NOT invoked.
  fx.now_ms = 100;
  plane.handle({"GET", "/metrics"});
  plane.handle({"GET", "/metrics.json"});
  EXPECT_EQ(refreshes(), 1u);
  EXPECT_EQ(hits(), 2u);
  EXPECT_EQ(fx.refreshes, 1);

  // Past the TTL: one more walk, one more provider refresh.
  fx.now_ms = 300;
  plane.handle({"GET", "/metrics"});
  EXPECT_EQ(refreshes(), 2u);
  EXPECT_EQ(fx.refreshes, 2);
}

// ---------------------------------------------------------------------
// /tracez serialization: collector-compatible JSON, newest-N truncation.

TEST(TracezJson, SerializesCollectedSpansWithDomainAndDepth) {
  TraceRecorder recorder;
  const SpanId root = recorder.begin_span("rar-1", "reservation", 0, 0);
  recorder.annotate(root, "user", "Alice");
  const SpanId hop = recorder.begin_span("rar-1", "hop", root, 100);
  recorder.end_span(hop, 400);
  recorder.end_span(root, 1000);
  SpanCollector collector;
  collector.ingest("DomainA", recorder);

  const std::string text = tracez_json(collector, 16);
  auto parsed = json::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_text();
  const json::Value* traces = parsed.value().find("traces");
  ASSERT_NE(traces, nullptr);
  ASSERT_EQ(traces->array.size(), 1u);
  const json::Value& trace = traces->array[0];
  EXPECT_EQ(trace.find("trace_id")->string, "rar-1");
  const json::Value* spans = trace.find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->array.size(), 2u);
  const json::Value& first = spans->array[0];
  EXPECT_EQ(first.find("name")->string, "reservation");
  EXPECT_EQ(first.find("domain")->string, "DomainA");
  EXPECT_DOUBLE_EQ(first.find("depth")->number, 0.0);
  EXPECT_DOUBLE_EQ(first.find("end_us")->number, 1000.0);
  EXPECT_EQ(first.find("attributes")->find("user")->string, "Alice");
  const json::Value& second = spans->array[1];
  EXPECT_EQ(second.find("name")->string, "hop");
  EXPECT_DOUBLE_EQ(second.find("depth")->number, 1.0);
}

TEST(TracezJson, KeepsOnlyTheMostRecentTraces) {
  TraceRecorder recorder;
  for (int i = 0; i < 5; ++i) {
    const std::string id = "rar-" + std::to_string(i);
    const SpanId span = recorder.begin_span(id, "reservation", 0, i * 10);
    recorder.end_span(span, i * 10 + 5);
  }
  SpanCollector collector;
  collector.ingest("DomainA", recorder);

  auto parsed = json::parse(tracez_json(collector, 2));
  ASSERT_TRUE(parsed.ok());
  const json::Value* traces = parsed.value().find("traces");
  ASSERT_EQ(traces->array.size(), 2u);
  EXPECT_EQ(traces->array[0].find("trace_id")->string, "rar-3");
  EXPECT_EQ(traces->array[1].find("trace_id")->string, "rar-4");
}

TEST(TracezJson, EmptyCollectorIsAnEmptyTracesArray) {
  SpanCollector collector;
  EXPECT_EQ(tracez_json(collector, 16), "{\"traces\":[]}");
}

}  // namespace
}  // namespace e2e::obs
