// Trace-recorder tests: span mechanics plus the per-RAR trace trees the
// hop-by-hop engine emits (one hop span per domain, step spans for the
// §6.1/§6.2 pipeline, failure tagging on denials).
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "testing_world.hpp"

namespace e2e::obs {
namespace {

using e2e::testing::ChainWorld;
using e2e::testing::ChainWorldConfig;
using e2e::testing::WorldUser;

TEST(TraceRecorder, SpanLifecycleAndAttributes) {
  TraceRecorder rec;
  const SpanId root = rec.begin_span("t1", "reservation", 0, 100);
  const SpanId child = rec.begin_span("t1", "hop", root, 150);
  rec.annotate(child, "domain", "DomainA");
  rec.end_span(child, 350);
  rec.end_span(root, 500);

  const auto spans = rec.trace("t1");
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "reservation");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].duration(), 400);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[1].duration(), 200);
  ASSERT_NE(spans[1].attribute("domain"), nullptr);
  EXPECT_EQ(*spans[1].attribute("domain"), "DomainA");
  EXPECT_EQ(spans[1].attribute("missing"), nullptr);
}

TEST(TraceRecorder, FailSpanRecordsErrorAttribute) {
  TraceRecorder rec;
  const SpanId s = rec.begin_span("t1", "verify", 0, 0);
  rec.fail_span(s, "bad signature");
  rec.end_span(s, 10);
  const auto spans = rec.trace("t1");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].failed);
  ASSERT_NE(spans[0].attribute("error"), nullptr);
  EXPECT_EQ(*spans[0].attribute("error"), "bad signature");
}

TEST(TraceRecorder, TracesAreIsolatedByTraceId) {
  TraceRecorder rec;
  rec.begin_span("rar-1", "reservation", 0, 0);
  rec.begin_span("rar-2", "reservation", 0, 0);
  EXPECT_EQ(rec.trace("rar-1").size(), 1u);
  EXPECT_EQ(rec.trace("rar-2").size(), 1u);
  const auto ids = rec.trace_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "rar-1");
  EXPECT_EQ(ids[1], "rar-2");
}

/// Helper: run one hop-by-hop reservation through `world` and return its
/// trace spans.
std::vector<Span> reserve_and_trace(ChainWorld& world, bool expect_grant) {
  WorldUser alice = world.make_user("Alice", 0);
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 10e6), 0);
  EXPECT_TRUE(msg.ok());
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->reply.granted, expect_grant);
  EXPECT_FALSE(outcome->trace_id.empty());
  return world.tracer().trace(outcome->trace_id);
}

TEST(HopByHopTrace, FourDomainPathYieldsOneHopSpanPerDomain) {
  ChainWorldConfig config;
  config.domains = 4;
  ChainWorld world(config);
  const auto spans = reserve_and_trace(world, /*expect_grant=*/true);

  ASSERT_FALSE(spans.empty());
  const Span& root = spans.front();
  EXPECT_EQ(root.name, "reservation");
  EXPECT_FALSE(root.failed);

  // Exactly one hop span per domain on the path, parented under the root,
  // in path order.
  std::vector<const Span*> hops;
  for (const auto& s : spans) {
    if (s.name == "hop") {
      EXPECT_EQ(s.parent, root.id);
      hops.push_back(&s);
    }
  }
  ASSERT_EQ(hops.size(), 4u);
  EXPECT_EQ(*hops[0]->attribute("domain"), "DomainA");
  EXPECT_EQ(*hops[1]->attribute("domain"), "DomainB");
  EXPECT_EQ(*hops[2]->attribute("domain"), "DomainC");
  EXPECT_EQ(*hops[3]->attribute("domain"), "DomainD");

  // Every hop ran verify -> policy -> admission; non-destination hops also
  // signed-and-forwarded. All step durations are non-zero virtual time.
  std::map<SpanId, std::vector<const Span*>> children;
  for (const auto& s : spans) children[s.parent].push_back(&s);
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const auto& steps = children[hops[i]->id];
    const bool is_destination = i + 1 == hops.size();
    ASSERT_EQ(steps.size(), is_destination ? 3u : 4u)
        << "hop " << i << " has the wrong number of step spans";
    EXPECT_EQ(steps[0]->name, "verify");
    EXPECT_EQ(steps[1]->name, "policy");
    EXPECT_EQ(steps[2]->name, "admission");
    if (!is_destination) {
      EXPECT_EQ(steps[3]->name, "sign_and_forward");
    }
    for (const Span* step : steps) {
      EXPECT_GT(step->duration(), 0)
          << step->name << " span must carry virtual-clock duration";
      EXPECT_FALSE(step->failed);
    }
  }

  // Hops nest inside the root's time interval and advance monotonically.
  for (const Span* hop : hops) {
    EXPECT_GE(hop->start, root.start);
    EXPECT_LE(hop->end, root.end);
  }
  for (std::size_t i = 1; i < hops.size(); ++i) {
    EXPECT_GT(hops[i]->start, hops[i - 1]->start)
        << "downstream hops start later (inter-domain latency)";
  }
}

TEST(HopByHopTrace, RejectedRarTagsTheFailingHop) {
  ChainWorldConfig config;
  config.domains = 4;
  // DomainB denies everything; A, C, D grant.
  config.policies = {"Return GRANT", "Return DENY", "Return GRANT",
                     "Return GRANT"};
  ChainWorld world(config);
  const auto spans = reserve_and_trace(world, /*expect_grant=*/false);

  ASSERT_FALSE(spans.empty());
  const Span& root = spans.front();
  EXPECT_TRUE(root.failed);
  ASSERT_NE(root.attribute("failure.domain"), nullptr);
  EXPECT_EQ(*root.attribute("failure.domain"), "DomainB");
  ASSERT_NE(root.attribute("failure.code"), nullptr);

  // The request died at DomainB: two hop spans, the second failed at the
  // policy stage, and no downstream hop was ever contacted.
  std::vector<const Span*> hops;
  for (const auto& s : spans) {
    if (s.name == "hop") hops.push_back(&s);
  }
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_FALSE(hops[0]->failed);
  EXPECT_TRUE(hops[1]->failed);
  EXPECT_EQ(*hops[1]->attribute("domain"), "DomainB");
  ASSERT_NE(hops[1]->attribute("stage"), nullptr);
  EXPECT_EQ(*hops[1]->attribute("stage"), "policy");
  ASSERT_NE(hops[1]->attribute("error"), nullptr);

  // The failing step span itself is marked.
  const Span* failed_policy = nullptr;
  for (const auto& s : spans) {
    if (s.name == "policy" && s.parent == hops[1]->id) failed_policy = &s;
  }
  ASSERT_NE(failed_policy, nullptr);
  EXPECT_TRUE(failed_policy->failed);
}

TEST(HopByHopTrace, RenderTreeShowsHierarchyAndTimings) {
  ChainWorld world;  // default 3 domains
  WorldUser alice = world.make_user("Alice", 0);
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 10e6), 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_TRUE(outcome.ok());
  const std::string tree = world.tracer().render_tree(outcome->trace_id);
  EXPECT_NE(tree.find("reservation"), std::string::npos);
  EXPECT_NE(tree.find("hop"), std::string::npos);
  EXPECT_NE(tree.find("verify"), std::string::npos);
  EXPECT_NE(tree.find("domain=DomainA"), std::string::npos);
  EXPECT_NE(tree.find("us)"), std::string::npos);  // durations rendered

  const std::string json = world.tracer().to_json(outcome->trace_id);
  EXPECT_NE(json.find("\"trace_id\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
}

TEST(HopByHopTrace, EachReservationGetsItsOwnTrace) {
  ChainWorld world;
  WorldUser alice = world.make_user("Alice", 0);
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 10e6), 0);
  const auto first = world.engine().reserve(*msg, seconds(1));
  const auto second = world.engine().reserve(*msg, seconds(2));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first->trace_id, second->trace_id);
  EXPECT_FALSE(world.tracer().trace(first->trace_id).empty());
  EXPECT_FALSE(world.tracer().trace(second->trace_id).empty());
}

}  // namespace
}  // namespace e2e::obs
