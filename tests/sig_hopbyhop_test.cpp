// End-to-end tests of the hop-by-hop signalling engine over the 3-domain
// chain world (the paper's Fig. 5 deployment).
#include "sig/hopbyhop.hpp"

#include <gtest/gtest.h>

#include "testing_world.hpp"

namespace e2e::sig {
namespace {

using testing::ChainWorld;
using testing::ChainWorldConfig;
using testing::WorldUser;

TEST(HopByHop, EndToEndGrant) {
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  const auto msg =
      world.engine().build_user_request(alice.credentials(),
                                        world.spec(alice, 10e6), 0);
  ASSERT_TRUE(msg.ok()) << msg.error().to_text();
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_text();
  ASSERT_TRUE(outcome->reply.granted) << outcome->reply.denial.to_text();

  // One handle per domain, source first.
  ASSERT_EQ(outcome->reply.handles.size(), 3u);
  EXPECT_EQ(outcome->reply.handles[0].first, "DomainA");
  EXPECT_EQ(outcome->reply.handles[1].first, "DomainB");
  EXPECT_EQ(outcome->reply.handles[2].first, "DomainC");
  // All three brokers hold the reservation: "all BBs are always contacted".
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(world.broker(i).reservation_count(), 1u);
    EXPECT_DOUBLE_EQ(world.broker(i).committed_at(seconds(10)), 10e6);
  }
  EXPECT_EQ(outcome->domains_contacted, 3u);
}

TEST(HopByHop, LatencyIsSumOfHops) {
  ChainWorldConfig config;
  config.inter_domain_latency = milliseconds(20);
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);
  world.fabric().set_processing_delay(milliseconds(1));
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 1e6), 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_TRUE(outcome.ok());
  // 2*user_link (2*1ms) + 3 * processing (3ms) + 2 hops * rtt (2*40ms).
  EXPECT_EQ(outcome->latency,
            2 * milliseconds(1) + 3 * milliseconds(1) + 2 * milliseconds(40));
}

TEST(HopByHop, UnknownUserRejectedAtSource) {
  ChainWorld world;
  WorldUser mallory = world.make_user("Mallory", 0);
  // Build a world user but *de-register* by using a different engine-less
  // user: simplest is a fresh credential set never registered.
  Rng rng(5);
  const crypto::KeyPair keys = crypto::generate_keypair(rng, 256);
  const auto dn = crypto::DistinguishedName::make("Ghost", "DomainA");
  const crypto::Certificate cert =
      world.ca(0).issue(dn, keys.pub, testing::kWorldValidity);
  bb::ResSpec spec = world.spec(mallory, 1e6);
  spec.user = dn.to_string();
  const RarMessage msg = RarMessage::create_user_request(
      spec, world.broker(0).dn().to_string(), {}, keys.priv);
  const auto outcome = world.engine().reserve(msg, seconds(1));
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kAuthenticationFailed);
  EXPECT_EQ(outcome->reply.denial.origin, "DomainA");
}

TEST(HopByHop, PolicyDenialPropagatesWithOriginAndRollsBack) {
  ChainWorldConfig config;
  // Domain B (index 1) denies everything above 5 Mb/s.
  config.policies = {"Return GRANT",
                     "If BW <= 5Mb/s Return GRANT\nReturn DENY",
                     "Return GRANT"};
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 10e6), 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kPolicyDenied);
  EXPECT_EQ(outcome->reply.denial.origin, "DomainB");
  // Domain A's tentative commitment was rolled back; C was never asked.
  EXPECT_EQ(world.broker(0).reservation_count(), 0u);
  EXPECT_EQ(world.broker(2).counters().requests, 0u);
  EXPECT_EQ(outcome->domains_contacted, 2u);

  // A conforming request passes.
  const auto small = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 5e6), 0);
  EXPECT_TRUE(world.engine().reserve(*small, seconds(1))->reply.granted);
}

TEST(HopByHop, SlaExhaustionDeniedAtIntermediate) {
  ChainWorldConfig config;
  config.sla_rate = 20e6;
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);
  const auto first = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 15e6), 0);
  ASSERT_TRUE(world.engine().reserve(*first, seconds(1))->reply.granted);
  const auto second = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 10e6), 0);
  const auto outcome = world.engine().reserve(*second, seconds(1));
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kAdmissionRejected);
  // Denial originated at B (the A->B SLA pool) — first transit domain.
  EXPECT_EQ(outcome->reply.denial.origin, "DomainB");
  // Rollback: A holds only the first reservation.
  EXPECT_EQ(world.broker(0).reservation_count(), 1u);
}

TEST(HopByHop, ReleaseEndToEndRestoresAllDomains) {
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 50e6), 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_TRUE(outcome->reply.granted);
  ASSERT_TRUE(world.engine().release_end_to_end(outcome->reply).ok());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(world.broker(i).reservation_count(), 0u);
    EXPECT_DOUBLE_EQ(world.broker(i).committed_at(seconds(10)), 0.0);
  }
}

TEST(HopByHop, CapabilityListGrowsPerHop) {
  // Fig. 7: "BB_A now receives two capability certificates ... BB_B
  // receives three ... BB_C possesses four."
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  std::map<std::string, std::size_t> caps_seen;
  world.engine().set_observer(
      [&caps_seen](const std::string& domain, const VerifiedRar& vr) {
        caps_seen[domain] = vr.capability_certs.size();
      });
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 10e6), 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_TRUE(outcome->reply.granted);
  EXPECT_EQ(caps_seen["DomainA"], 2u);
  EXPECT_EQ(caps_seen["DomainB"], 3u);
  EXPECT_EQ(caps_seen["DomainC"], 4u);
}

TEST(HopByHop, PathTrackingVisibleAtDestination) {
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  std::vector<PathElement> dest_path;
  world.engine().set_observer(
      [&dest_path](const std::string& domain, const VerifiedRar& vr) {
        if (domain == "DomainC") dest_path = vr.path;
      });
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 10e6), 0);
  ASSERT_TRUE(world.engine().reserve(*msg, seconds(1))->reply.granted);
  ASSERT_EQ(dest_path.size(), 2u);  // BB-A, BB-B
  EXPECT_EQ(dest_path[0].signer.common_name(), "BB-DomainA");
  EXPECT_EQ(dest_path[1].signer.common_name(), "BB-DomainB");
  // BB-B authenticated directly on the channel; BB-A introduced by BB-B.
  EXPECT_EQ(dest_path[1].introduction_depth, 0u);
  EXPECT_EQ(dest_path[0].introduction_depth, 1u);
}

TEST(HopByHop, CapabilityBackedPolicyAtDestination) {
  ChainWorldConfig config;
  // Destination requires an ESnet capability (Fig. 6 policy C, simplified).
  config.policies = {"Return GRANT", "Return GRANT",
                     "If Issued_by(Capability) = ESnet Return GRANT\n"
                     "Return DENY"};
  ChainWorld world(config);
  const WorldUser with_cap = world.make_user("Alice", 0, true);
  const auto ok_msg = world.engine().build_user_request(
      with_cap.credentials(), world.spec(with_cap, 10e6), 0);
  EXPECT_TRUE(world.engine().reserve(*ok_msg, seconds(1))->reply.granted);

  const WorldUser without_cap = world.make_user("Bob", 0, false);
  const auto bad_msg = world.engine().build_user_request(
      without_cap.credentials(), world.spec(without_cap, 10e6), 0);
  const auto denied = world.engine().reserve(*bad_msg, seconds(1));
  ASSERT_FALSE(denied->reply.granted);
  EXPECT_EQ(denied->reply.denial.origin, "DomainC");
}

TEST(HopByHop, GroupBackedPolicyAtIntermediate) {
  ChainWorldConfig config;
  // Intermediate admits only Atlas members (Fig. 6 policy B, first branch).
  config.policies = {"Return GRANT",
                     "If Group = Atlas { If BW <= 10Mb/s Return GRANT }\n"
                     "Return DENY",
                     "Return GRANT"};
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);
  world.group_server().add_member("Atlas", alice.dn);
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 10e6), 0);
  EXPECT_TRUE(world.engine().reserve(*msg, seconds(1))->reply.granted);

  const WorldUser bob = world.make_user("Bob", 0);
  const auto bob_msg = world.engine().build_user_request(
      bob.credentials(), world.spec(bob, 10e6), 0);
  const auto denied = world.engine().reserve(*bob_msg, seconds(1));
  ASSERT_FALSE(denied->reply.granted);
  EXPECT_EQ(denied->reply.denial.origin, "DomainB");
}

TEST(HopByHop, AugmentationsTravelDownstream) {
  ChainWorld world;
  world.broker(0).policy_server().add_static_augmentation(
      {"TE.excess", "downgrade"});
  world.broker(1).policy_server().add_static_augmentation(
      {"Reliability", "0.999"});
  const WorldUser alice = world.make_user("Alice", 0);
  std::vector<policy::Augmentation> at_destination;
  world.engine().set_observer(
      [&at_destination](const std::string& domain, const VerifiedRar& vr) {
        if (domain == "DomainC") at_destination = vr.augmentations;
      });
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 10e6), 0);
  ASSERT_TRUE(world.engine().reserve(*msg, seconds(1))->reply.granted);
  ASSERT_EQ(at_destination.size(), 2u);
  EXPECT_EQ(at_destination[0].name, "TE.excess");
  EXPECT_EQ(at_destination[1].name, "Reliability");
}

TEST(HopByHop, WireSizeGrowsAlongPath) {
  ChainWorldConfig config;
  config.domains = 5;
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 1e6), 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_TRUE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.handles.size(), 5u);
  EXPECT_GT(outcome->final_wire_bytes, msg->wire_size());
}

TEST(HopByHop, FiveDomainChainVerifiesThroughIntroductions) {
  ChainWorldConfig config;
  config.domains = 5;
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);
  std::vector<PathElement> dest_path;
  world.engine().set_observer(
      [&](const std::string& domain, const VerifiedRar& vr) {
        if (domain == "DomainE") dest_path = vr.path;
      });
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 1e6), 0);
  ASSERT_TRUE(world.engine().reserve(*msg, seconds(1))->reply.granted);
  ASSERT_EQ(dest_path.size(), 4u);
  // Introduction depth increases toward the source.
  EXPECT_EQ(dest_path[3].introduction_depth, 0u);
  EXPECT_EQ(dest_path[0].introduction_depth, 3u);
}

TEST(HopByHop, DepthLimitEnforced) {
  ChainWorldConfig config;
  config.domains = 6;
  ChainWorld world(config);
  // Destination refuses chains deeper than 2 introductions.
  // (Rebuild its node options via a dedicated engine would be cleaner; we
  // emulate by a fresh engine with a strict policy on the last domain.)
  sig::Fabric fabric;
  Rng rng(1);
  sig::HopByHopEngine strict(fabric, rng);
  for (std::size_t i = 0; i < 6; ++i) {
    sig::DomainOptions options;
    if (i == 5) options.trust_policy.max_introduction_depth = 2;
    strict.add_domain(world.broker(i), options);
    strict.trust_community(world.names()[i], "ESnet",
                           world.cas_esnet().public_key());
  }
  for (std::size_t i = 0; i + 1 < 6; ++i) {
    ASSERT_TRUE(strict.connect_peers(world.names()[i], world.names()[i + 1],
                                     0)
                    .ok());
  }
  const WorldUser alice = world.make_user("Alice", 0);
  strict.register_local_user("DomainA", alice.identity_cert);
  const auto msg = strict.build_user_request(alice.credentials(),
                                             world.spec(alice, 1e6), 0);
  const auto outcome = strict.reserve(*msg, seconds(1));
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kUntrustedKey);
  EXPECT_NE(outcome->reply.denial.message.find("depth"), std::string::npos);
}

}  // namespace
}  // namespace e2e::sig
