// Differential tests for the Montgomery fast path: every result is pinned
// against BigUInt::modexp_reference (the pre-Montgomery square-and-multiply
// oracle), across random operands and the edge cases the kernel special-
// cases (base >= m, exp 0/1, single-limb moduli).
#include "crypto/montgomery.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/biguint.hpp"
#include "obs/instruments.hpp"

namespace e2e::crypto {
namespace {

BigUInt random_odd(Rng& rng, unsigned bits) {
  BigUInt m = BigUInt::random_bits(rng, bits);
  if (!m.is_odd()) m = m + BigUInt(1);
  return m;
}

TEST(Montgomery, MatchesReferenceAcrossRandomOddModuli) {
  Rng rng(20010801);
  for (unsigned bits : {16u, 63u, 64u, 65u, 128u, 257u, 512u, 1024u}) {
    for (int trial = 0; trial < 8; ++trial) {
      const BigUInt m = random_odd(rng, bits);
      if (m == BigUInt(1)) continue;
      const BigUInt base = BigUInt::random_below(rng, m);
      const BigUInt exp = BigUInt::random_bits(rng, bits);
      EXPECT_EQ(base.modexp(exp, m), base.modexp_reference(exp, m))
          << "bits=" << bits << " trial=" << trial;
    }
  }
}

TEST(Montgomery, BaseLargerThanModulusReduces) {
  Rng rng(7);
  const BigUInt m = random_odd(rng, 256);
  const BigUInt base = m * BigUInt(12345) + BigUInt(678);
  const BigUInt exp = BigUInt::random_bits(rng, 200);
  EXPECT_EQ(base.modexp(exp, m), base.modexp_reference(exp, m));
}

TEST(Montgomery, ExponentZeroAndOne) {
  Rng rng(8);
  const BigUInt m = random_odd(rng, 192);
  const BigUInt base = BigUInt::random_below(rng, m);
  EXPECT_EQ(base.modexp(BigUInt(0), m), BigUInt(1));
  EXPECT_EQ(base.modexp(BigUInt(1), m), base);
  // exp == 1 with base >= m must still reduce.
  const BigUInt big_base = base + m;
  EXPECT_EQ(big_base.modexp(BigUInt(1), m), base);
}

TEST(Montgomery, ZeroBase) {
  Rng rng(9);
  const BigUInt m = random_odd(rng, 128);
  EXPECT_EQ(BigUInt(0).modexp(BigUInt(12345), m), BigUInt(0));
  EXPECT_EQ(BigUInt(0).modexp(BigUInt(0), m), BigUInt(1));
}

TEST(Montgomery, SingleLimbModuli) {
  Rng rng(10);
  for (std::uint64_t m64 :
       {3ull, 5ull, 65537ull, 0x7fffffffull, 0xfffffffffffffff1ull}) {
    const BigUInt m(m64);
    for (int trial = 0; trial < 4; ++trial) {
      const BigUInt base = BigUInt::random_below(rng, m);
      const BigUInt exp = BigUInt::random_bits(rng, 80);
      EXPECT_EQ(base.modexp(exp, m), base.modexp_reference(exp, m)) << m64;
    }
  }
}

TEST(Montgomery, SmallPublicExponentShape) {
  // e = 65537 is the verify-side shape: a 17-bit exponent must not pay the
  // 4-bit-window table and must still be exact.
  Rng rng(11);
  const BigUInt m = random_odd(rng, 512);
  const BigUInt base = BigUInt::random_below(rng, m);
  const BigUInt e(65537);
  EXPECT_EQ(base.modexp(e, m), base.modexp_reference(e, m));
}

TEST(Montgomery, EvenModulusFallsBackToReference) {
  // BigUInt::modexp must still be correct for even moduli (reference
  // kernel), since MontgomeryContext cannot represent them.
  Rng rng(12);
  BigUInt m = BigUInt::random_bits(rng, 128);
  if (m.is_odd()) m = m + BigUInt(1);
  const BigUInt base = BigUInt::random_below(rng, m);
  const BigUInt exp = BigUInt::random_bits(rng, 100);
  EXPECT_EQ(base.modexp(exp, m), base.modexp_reference(exp, m));
}

TEST(Montgomery, ContextRejectsEvenOrTrivialModulus) {
  EXPECT_THROW(MontgomeryContext(BigUInt(0)), std::domain_error);
  EXPECT_THROW(MontgomeryContext(BigUInt(1)), std::domain_error);
  EXPECT_THROW(MontgomeryContext(BigUInt(4096)), std::domain_error);
  Rng rng(13);
  BigUInt even = BigUInt::random_bits(rng, 256);
  if (even.is_odd()) even = even + BigUInt(1);
  EXPECT_THROW(MontgomeryContext ctx(even), std::domain_error);
}

TEST(Montgomery, ModexpThrowsOnTrivialModulus) {
  EXPECT_THROW(BigUInt(5).modexp(BigUInt(3), BigUInt(0)), std::domain_error);
  EXPECT_THROW(BigUInt(5).modexp(BigUInt(3), BigUInt(1)), std::domain_error);
}

TEST(Montgomery, DomainRoundTripAndPrimitives) {
  Rng rng(14);
  const BigUInt m = random_odd(rng, 320);
  const MontgomeryContext ctx(m);
  const BigUInt a = BigUInt::random_below(rng, m);
  const BigUInt b = BigUInt::random_below(rng, m);

  // to_mont / from_mont are inverses.
  EXPECT_EQ(ctx.from_mont(ctx.to_mont(a)), a);
  // mul in the Montgomery domain is ordinary modular multiplication.
  const BigUInt prod =
      ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)));
  EXPECT_EQ(prod, (a * b) % m);
  // The dedicated squaring path agrees with mul(a, a).
  EXPECT_EQ(ctx.sqr(ctx.to_mont(a)), ctx.mul(ctx.to_mont(a), ctx.to_mont(a)));
}

TEST(Montgomery, SharedContextIsReusedAndCounted) {
  Rng rng(15);
  const BigUInt m = random_odd(rng, 256);
  auto& registry = obs::MetricsRegistry::global();
  obs::Counter& hits = registry.counter(obs::kCryptoMontCtxLookupsTotal,
                                        {{"result", "hit"}});
  const std::uint64_t hits_before = hits.value();
  const auto first = MontgomeryContext::shared(m);
  const auto second = MontgomeryContext::shared(m);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_GT(hits.value(), hits_before);
}

TEST(Montgomery, SharedCacheEvictsBeyondCapacity) {
  Rng rng(16);
  // Fill well past capacity with distinct moduli; every lookup must still
  // return a working context (eviction is LRU, correctness is unaffected).
  for (std::size_t i = 0; i < MontgomeryContext::kSharedCacheCapacity + 8;
       ++i) {
    const BigUInt m = random_odd(rng, 96);
    const auto ctx = MontgomeryContext::shared(m);
    ASSERT_NE(ctx, nullptr);
    EXPECT_EQ(ctx->modulus(), m);
  }
}

// Property sweep at the RSA shapes the protocol actually uses.
class MontgomeryRsaShapes : public ::testing::TestWithParam<unsigned> {};

TEST_P(MontgomeryRsaShapes, SignVerifyShapesMatchReference) {
  const unsigned bits = GetParam();
  Rng rng(1000 + bits);
  const BigUInt m = random_odd(rng, bits);
  const BigUInt base = BigUInt::random_below(rng, m);
  // Private-exponent shape (full width) and public shape (65537).
  const BigUInt d = BigUInt::random_bits(rng, bits);
  EXPECT_EQ(base.modexp(d, m), base.modexp_reference(d, m));
  const BigUInt e(65537);
  EXPECT_EQ(base.modexp(e, m), base.modexp_reference(e, m));
}

INSTANTIATE_TEST_SUITE_P(KeySizes, MontgomeryRsaShapes,
                         ::testing::Values(256u, 512u, 768u, 1024u));

}  // namespace
}  // namespace e2e::crypto
