// Value semantics and EvalContext plumbing.
#include <gtest/gtest.h>

#include "policy/context.hpp"

namespace e2e::policy {
namespace {

TEST(Value, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(1.5).is_number());
  EXPECT_TRUE(Value(std::string("x")).is_string());
}

TEST(Value, AccessorsThrowOnMismatch) {
  EXPECT_THROW(Value(1.0).as_bool(), std::logic_error);
  EXPECT_THROW(Value(true).as_number(), std::logic_error);
  EXPECT_THROW(Value(1.0).as_string(), std::logic_error);
  EXPECT_THROW(Value().as_number(), std::logic_error);
}

TEST(Value, Truthiness) {
  EXPECT_FALSE(Value().truthy());
  EXPECT_TRUE(Value(true).truthy());
  EXPECT_FALSE(Value(false).truthy());
  EXPECT_TRUE(Value(0.1).truthy());
  EXPECT_FALSE(Value(0.0).truthy());
  EXPECT_TRUE(Value(std::string("x")).truthy());
  EXPECT_FALSE(Value(std::string("")).truthy());
}

TEST(Value, EqualityRules) {
  EXPECT_TRUE(Value(2.0).equals(Value(2.0)));
  EXPECT_FALSE(Value(2.0).equals(Value(3.0)));
  EXPECT_TRUE(Value(std::string("a")).equals(Value(std::string("a"))));
  // Cross-type never equal; null equals nothing, not even null.
  EXPECT_FALSE(Value(1.0).equals(Value(std::string("1"))));
  EXPECT_FALSE(Value().equals(Value()));
  EXPECT_FALSE(Value(true).equals(Value(1.0)));
}

TEST(Value, TextRendering) {
  EXPECT_EQ(Value().to_text(), "null");
  EXPECT_EQ(Value(true).to_text(), "true");
  EXPECT_EQ(Value(42.0).to_text(), "42");
  EXPECT_EQ(Value(std::string("hi")).to_text(), "\"hi\"");
}

TEST(EvalContext, AttributeLifecycle) {
  EvalContext ctx;
  EXPECT_FALSE(ctx.has("User"));
  EXPECT_TRUE(ctx.get("User").is_null());
  ctx.set_user("Alice");
  EXPECT_TRUE(ctx.has("User"));
  EXPECT_EQ(ctx.get("User").as_string(), "Alice");
  ctx.set("User", Value(std::string("Bob")));  // overwrite
  EXPECT_EQ(ctx.get("User").as_string(), "Bob");
}

TEST(EvalContext, GroupsAndCapabilities) {
  EvalContext ctx;
  EXPECT_FALSE(ctx.in_group("Atlas"));
  ctx.add_group("Atlas");
  EXPECT_TRUE(ctx.in_group("Atlas"));
  EXPECT_FALSE(ctx.has_capability_issued_by("ESnet"));
  ctx.add_capability({"ESnet", {"cap-a", "cap-b"}});
  EXPECT_TRUE(ctx.has_capability_issued_by("ESnet"));
  EXPECT_FALSE(ctx.has_capability_issued_by("DOEGrid"));
  ASSERT_EQ(ctx.capabilities().size(), 1u);
  EXPECT_EQ(ctx.capabilities()[0].capabilities.size(), 2u);
}

TEST(EvalContext, PredicateRegistry) {
  EvalContext ctx;
  EXPECT_EQ(ctx.find_predicate("F"), nullptr);
  ctx.register_predicate("F", [](std::span<const Value> args) {
    return Value(static_cast<double>(args.size()));
  });
  const auto* pred = ctx.find_predicate("F");
  ASSERT_NE(pred, nullptr);
  const std::vector<Value> args{Value(1.0), Value(2.0)};
  EXPECT_DOUBLE_EQ((*pred)(args).as_number(), 2.0);
}

}  // namespace
}  // namespace e2e::policy
