// Wire-pipelining tests (ISSUE 10): the multiplexed BbdClient, the
// daemon's off-loop execution, and StreamServer's cross-thread post().
//
// Three layers of coverage:
//   - a mock daemon (raw Listener + HandshakeResponder + manual sealing)
//     that misorders and withholds responses, proving the client matches
//     strictly by request id — including the timeout-mid-pipeline case
//     where a late response must be discarded, never mis-matched to a
//     newer call;
//   - pipelined conformance against the real BbdService: window
//     negotiation (granted = min(asked, kMaxPipelineWindow), serial
//     clients stay at 1) and byte/decision-identity of a pipelined op
//     sequence vs the serial client on an identically-seeded daemon;
//   - StreamServer::post() run under multi-thread fire (TSan covers this
//     file via tier1.sh --daemon) and the always-on loop-thread guard on
//     send() (fork-based death check, skipped under sanitizers).
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "net/bbd_client.hpp"
#include "net/bbd_protocol.hpp"
#include "net/bbd_service.hpp"
#include "net/stream_server.hpp"
#include "net/stream_socket.hpp"
#include "sig/channel.hpp"
#include "sig/message.hpp"

namespace e2e::net {
namespace {

constexpr std::chrono::milliseconds kWait{5000};

// ---------------------------------------------------------------------
// Mock daemon: one accepted connection, hand-driven frames.

/// The daemon half of one connection, after the staged handshake: the
/// test script decides exactly which responses to seal and in what order.
struct MockConn {
  StreamSocket socket;
  sig::Session session;

  Result<BbdRequest> recv_request() {
    auto frame = socket.recv_frame(kWait);
    if (!frame.ok()) return frame.error();
    auto record = sig::decode_record(frame.value());
    if (!record.ok()) return record.error();
    auto payload = session.open(record.value());
    if (!payload.ok()) return payload.error();
    return BbdRequest::decode(payload.value());
  }

  Status send_response(const BbdResponse& response) {
    const sig::Record record = session.seal(response.encode());
    return socket.send_frame(sig::encode_record(record));
  }

  /// Consume the client's hello and grant exactly the window it asked
  /// for (capped like the real daemon). Returns the granted window.
  Result<std::uint64_t> grant_hello() {
    auto req = recv_request();
    if (!req.ok()) return req.error();
    BbdResponse res = BbdResponse::success(req.value().id);
    if ((req.value().flags & hello_flag::kPipeline) != 0) {
      const std::uint64_t asked =
          req.value().u64a == 0 ? 1 : req.value().u64a;
      res.u64a = std::min(asked, kMaxPipelineWindow);
    }
    if (auto sent = send_response(res); !sent.ok()) return sent.error();
    return res.u64a == 0 ? 1 : res.u64a;
  }
};

/// Accept one connection and run the responder side of the handshake.
Result<MockConn> accept_and_handshake(Listener& listener, Rng& rng) {
  auto socket = listener.accept();
  if (!socket.ok()) return socket.error();
  const ServiceIdentity identity = make_service_identity(kDefaultAuthSeed);
  sig::HandshakeResponder responder(identity.daemon_endpoint(), 0, rng);
  auto hello = socket.value().recv_frame(kWait);
  if (!hello.ok()) return hello.error();
  auto server_hello = responder.on_client_hello(hello.value());
  if (!server_hello.ok()) return server_hello.error();
  if (auto sent = socket.value().send_frame(server_hello.value());
      !sent.ok()) {
    return sent.error();
  }
  auto finished = socket.value().recv_frame(kWait);
  if (!finished.ok()) return finished.error();
  if (auto done = responder.on_finished(finished.value()); !done.ok()) {
    return done.error();
  }
  return MockConn{std::move(socket.value()),
                  std::move(responder.session())};
}

BbdRequest ping_request() {
  BbdRequest req;
  req.op = BbdOp::kPing;
  return req;
}

BbdClient::Options mock_client_options(const Listener& listener,
                                       std::uint64_t depth,
                                       std::chrono::milliseconds timeout) {
  BbdClient::Options options;
  options.connect_to = listener.local_endpoint();
  options.pipeline_depth = depth;
  options.call_timeout = timeout;
  return options;
}

TEST(Pipeline, OutOfOrderResponsesMatchById) {
  auto listener =
      Listener::listen(Endpoint::parse("tcp:127.0.0.1:0").value());
  ASSERT_TRUE(listener.ok()) << listener.error().to_text();

  std::atomic<bool> mock_ok{true};
  std::thread mock([&] {
    Rng rng(42);
    auto conn = accept_and_handshake(listener.value(), rng);
    if (!conn.ok()) {
      mock_ok = false;
      return;
    }
    if (!conn.value().grant_hello().ok()) {
      mock_ok = false;
      return;
    }
    auto req1 = conn.value().recv_request();
    auto req2 = conn.value().recv_request();
    if (!req1.ok() || !req2.ok()) {
      mock_ok = false;
      return;
    }
    // Respond to the SECOND request first: the client must route each
    // payload to its own wait() by id, not by arrival order.
    BbdResponse res2 = BbdResponse::success(req2.value().id);
    res2.stra = "two";
    BbdResponse res1 = BbdResponse::success(req1.value().id);
    res1.stra = "one";
    if (!conn.value().send_response(res2).ok() ||
        !conn.value().send_response(res1).ok()) {
      mock_ok = false;
    }
  });

  auto client = BbdClient::connect(
      mock_client_options(listener.value(), 8, kWait));
  ASSERT_TRUE(client.ok()) << client.error().to_text();
  ASSERT_TRUE(client.value().hello(false).ok());
  EXPECT_EQ(client.value().pipeline_window(), 8u);

  auto h1 = client.value().call_async(ping_request());
  auto h2 = client.value().call_async(ping_request());
  ASSERT_TRUE(h1.ok() && h2.ok());
  EXPECT_EQ(client.value().in_flight(), 2u);
  auto r1 = client.value().wait(h1.value());
  auto r2 = client.value().wait(h2.value());
  ASSERT_TRUE(r1.ok()) << r1.error().to_text();
  ASSERT_TRUE(r2.ok()) << r2.error().to_text();
  EXPECT_EQ(r1.value().stra, "one");
  EXPECT_EQ(r2.value().stra, "two");
  EXPECT_EQ(r1.value().id, h1.value().id);
  EXPECT_EQ(r2.value().id, h2.value().id);
  EXPECT_EQ(client.value().in_flight(), 0u);
  mock.join();
  EXPECT_TRUE(mock_ok.load());
}

TEST(Pipeline, LateResponseAfterTimeoutIsNotMisMatched) {
  auto listener =
      Listener::listen(Endpoint::parse("tcp:127.0.0.1:0").value());
  ASSERT_TRUE(listener.ok()) << listener.error().to_text();

  std::atomic<bool> mock_ok{true};
  std::thread mock([&] {
    Rng rng(43);
    auto conn = accept_and_handshake(listener.value(), rng);
    if (!conn.ok()) {
      mock_ok = false;
      return;
    }
    if (!conn.value().grant_hello().ok()) {
      mock_ok = false;
      return;
    }
    // Receive the first call and sit on it. The client times out and
    // abandons it; only when the SECOND call arrives (proof the client
    // moved on) are both responses sent — the stale one first.
    auto req1 = conn.value().recv_request();
    auto req2 = conn.value().recv_request();
    if (!req1.ok() || !req2.ok()) {
      mock_ok = false;
      return;
    }
    BbdResponse stale = BbdResponse::success(req1.value().id);
    stale.stra = "stale";
    BbdResponse fresh = BbdResponse::success(req2.value().id);
    fresh.stra = "fresh";
    if (!conn.value().send_response(stale).ok() ||
        !conn.value().send_response(fresh).ok()) {
      mock_ok = false;
      return;
    }
    // A third round trip proves the connection survived the whole
    // episode with the seal chain intact.
    auto req3 = conn.value().recv_request();
    if (!req3.ok()) {
      mock_ok = false;
      return;
    }
    if (!conn.value().send_response(
            BbdResponse::success(req3.value().id)).ok()) {
      mock_ok = false;
    }
  });

  auto client = BbdClient::connect(mock_client_options(
      listener.value(), 8, std::chrono::milliseconds(250)));
  ASSERT_TRUE(client.ok()) << client.error().to_text();
  ASSERT_TRUE(client.value().hello(false).ok());

  auto h1 = client.value().call_async(ping_request());
  ASSERT_TRUE(h1.ok());
  auto r1 = client.value().wait(h1.value());
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.error().code, ErrorCode::kTimeout);

  // The next call gets a fresh id; its response must be the fresh one —
  // the stale frame (which arrives first) is discarded, not mis-matched.
  auto h2 = client.value().call_async(ping_request());
  ASSERT_TRUE(h2.ok());
  auto r2 = client.value().wait(h2.value());
  ASSERT_TRUE(r2.ok()) << r2.error().to_text();
  EXPECT_EQ(r2.value().stra, "fresh");
  EXPECT_EQ(r2.value().id, h2.value().id);

  // And the client is still fully usable serially.
  auto r3 = client.value().call(ping_request());
  ASSERT_TRUE(r3.ok()) << r3.error().to_text();
  EXPECT_EQ(client.value().in_flight(), 0u);
  mock.join();
  EXPECT_TRUE(mock_ok.load());
}

// ---------------------------------------------------------------------
// Pipelined conformance against the real daemon.

BbdService::Options service_options() {
  BbdService::Options options;
  options.listen_on = {Endpoint::parse("tcp:127.0.0.1:0").value()};
  return options;
}

Result<BbdClient> service_client(const BbdService& service,
                                 std::uint64_t depth) {
  BbdClient::Options options;
  options.connect_to = service.bound_endpoints().front();
  options.pipeline_depth = depth;
  return BbdClient::connect(options);
}

TEST(Pipeline, WindowNegotiationWithRealDaemon) {
  BbdService service(service_options());
  ASSERT_TRUE(service.start().ok());

  // Serial client: no pipeline flag, window stays 1.
  auto serial = service_client(service, 1);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(serial.value().hello(false).ok());
  EXPECT_EQ(serial.value().pipeline_window(), 1u);

  // Modest ask is granted verbatim.
  auto depth8 = service_client(service, 8);
  ASSERT_TRUE(depth8.ok());
  ASSERT_TRUE(depth8.value().hello(false).ok());
  EXPECT_EQ(depth8.value().pipeline_window(), 8u);

  // Greedy ask is capped at the daemon's maximum.
  auto greedy = service_client(service, 1000);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(greedy.value().hello(false).ok());
  EXPECT_EQ(greedy.value().pipeline_window(), kMaxPipelineWindow);

  // The negotiated window actually carries traffic.
  std::vector<BbdClient::Call> calls;
  for (int i = 0; i < 8; ++i) {
    auto call = depth8.value().call_async(ping_request());
    ASSERT_TRUE(call.ok()) << call.error().to_text();
    calls.push_back(call.value());
  }
  for (const auto& call : calls) {
    auto res = depth8.value().wait(call);
    EXPECT_TRUE(res.ok()) << res.error().to_text();
  }
  service.stop();
  service.wait();
}

BbdRequest tunnel_flow_request(const std::string& tunnel_id,
                               const std::string& user_dn) {
  BbdRequest req;
  req.op = BbdOp::kTunnelReserve;
  req.stra = tunnel_id;
  req.strb = user_dn;
  req.f64a = 1e6;
  req.u64a = 0;
  req.u64b = static_cast<std::uint64_t>(seconds(600));
  req.f64b = static_cast<double>(seconds(2));
  return req;
}

/// The same op sequence — make_user, establish an aggregate tunnel, then
/// `flows` per-flow reservations — through a serial and a pipelined
/// client against two identically-seeded daemons must produce
/// byte-identical grant bytes in the same order (the daemon executes each
/// connection's requests in FIFO order regardless of the window).
TEST(PipelineConformance, PipelinedMatchesSerialByteForByte) {
  auto run = [](std::uint64_t depth) -> std::vector<Bytes> {
    BbdService service(service_options());
    EXPECT_TRUE(service.start().ok());
    auto client = service_client(service, depth);
    EXPECT_TRUE(client.ok());
    EXPECT_TRUE(client.value().hello(false).ok());
    // Headroom for the aggregate tunnel (the default world's capacity
    // denies a 1 Gb/s aggregate).
    EXPECT_TRUE(client.value().configure(3, 0, 0, 10e9, 10e9).ok());
    auto dn = client.value().make_user("Alice", 0);
    EXPECT_TRUE(dn.ok());
    BbdClient::ReserveArgs agg;
    agg.user = "Alice";
    agg.rate = 1e9;
    agg.interval = {0, seconds(36000)};
    agg.is_tunnel = true;
    agg.at = seconds(1);
    auto established = client.value().reserve(agg);
    EXPECT_TRUE(established.ok() && established->reply.granted);

    std::vector<Bytes> grants;
    grants.push_back(established->reply_bytes);
    // 6 flows through a window of `depth`: with depth 4 this exercises
    // the full-window slot-reclaim path in call_async too.
    constexpr int kFlows = 6;
    std::vector<BbdClient::Call> calls;
    for (int i = 0; i < kFlows; ++i) {
      auto call = client.value().call_async(tunnel_flow_request(
          established->reply.tunnel_id, dn.value()));
      EXPECT_TRUE(call.ok());
      calls.push_back(call.value());
    }
    for (const auto& call : calls) {
      auto res = client.value().wait(call);
      EXPECT_TRUE(res.ok());
      grants.push_back(res.value().bytes);
    }
    service.stop();
    service.wait();
    return grants;
  };

  const std::vector<Bytes> serial = run(1);
  const std::vector<Bytes> pipelined = run(4);
  ASSERT_EQ(serial.size(), pipelined.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], pipelined[i]) << "grant " << i << " diverged";
  }
  // Decisions, not just bytes: every grant decodes and is granted.
  for (const auto& bytes : pipelined) {
    auto reply = sig::RarReply::decode(bytes);
    ASSERT_TRUE(reply.ok());
    EXPECT_TRUE(reply->granted);
  }
}

// ---------------------------------------------------------------------
// StreamServer::post() and the loop-thread guard.

TEST(StreamServerPost, TasksRunOnTheLoopThread) {
  StreamServer::Options options;
  options.listen_on = {Endpoint::parse("tcp:127.0.0.1:0").value()};
  StreamServer server(std::move(options), {});
  ASSERT_TRUE(server.start().ok());
  std::thread loop([&] { server.run(); });

  constexpr int kThreads = 4;
  constexpr int kTasksPerThread = 250;
  std::atomic<int> ran{0};
  std::atomic<bool> all_on_loop{true};
  const std::thread::id loop_id = loop.get_id();
  std::vector<std::thread> posters;
  for (int t = 0; t < kThreads; ++t) {
    posters.emplace_back([&] {
      for (int i = 0; i < kTasksPerThread; ++i) {
        server.post([&] {
          if (std::this_thread::get_id() != loop_id) all_on_loop = false;
          ran.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& p : posters) p.join();

  const auto deadline = std::chrono::steady_clock::now() + kWait;
  while (ran.load() < kThreads * kTasksPerThread &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ran.load(), kThreads * kTasksPerThread);
  EXPECT_TRUE(all_on_loop.load());

  server.stop();
  loop.join();
  // Tasks posted after run() exits are discarded, never run.
  server.post([&] { ran.fetch_add(1000, std::memory_order_relaxed); });
  EXPECT_EQ(ran.load(), kThreads * kTasksPerThread);
}

bool running_under_sanitizer() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

// The guard is always-on (RelWithDebInfo strips assert(), so it is a
// plain abort): send() from a foreign thread while the loop runs must
// kill the process. Fork-based so the abort happens in a child; skipped
// under sanitizers, which do not support threads after a multi-threaded
// fork.
TEST(StreamServerPost, OffLoopSendAborts) {
  if (running_under_sanitizer()) {
    GTEST_SKIP() << "fork-based death check skipped under sanitizers";
  }
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: silence the guard's diagnostic, then trip it.
    const int null_fd = ::open("/dev/null", O_WRONLY);
    if (null_fd >= 0) ::dup2(null_fd, 2);
    StreamServer::Options options;
    options.listen_on = {Endpoint::parse("tcp:127.0.0.1:0").value()};
    StreamServer server(std::move(options), {});
    if (!server.start().ok()) ::_exit(2);
    std::thread loop([&] { server.run(); });
    // Make sure the loop is actually live before tripping the guard.
    std::atomic<bool> live{false};
    server.post([&] { live = true; });
    while (!live.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const Bytes payload = {0x01};
    (void)server.send(1, BytesView(payload.data(), payload.size()));
    ::_exit(0);  // reached only if the guard failed to abort
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);
}

}  // namespace
}  // namespace e2e::net
