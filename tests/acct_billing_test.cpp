#include "acct/billing.hpp"

#include <gtest/gtest.h>

namespace e2e::acct {
namespace {

bb::ResSpec spec_10mbps_60s() {
  bb::ResSpec s;
  s.user = "CN=Alice,O=DomainA,C=US";
  s.source_domain = "DomainA";
  s.destination_domain = "DomainC";
  s.rate_bits_per_s = 10e6;
  s.interval = {0, seconds(60)};
  return s;
}

/// Flat 0.01 per megabit-second everywhere.
BillingLedger flat_ledger() {
  return BillingLedger([](const std::string&, const std::string&) {
    return 0.01;
  });
}

TEST(Billing, TransitiveChainShape) {
  BillingLedger ledger = flat_ledger();
  const auto records = ledger.bill_reservation(
      {"DomainA", "DomainB", "DomainC"}, "CN=Alice,O=DomainA,C=US",
      spec_10mbps_60s(), "resv-1");
  // User->A, A->B, B->C: exactly the chain of §6.4.
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].payer, "CN=Alice,O=DomainA,C=US");
  EXPECT_EQ(records[0].payee, "DomainA");
  EXPECT_EQ(records[1].payer, "DomainA");
  EXPECT_EQ(records[1].payee, "DomainB");
  EXPECT_EQ(records[2].payer, "DomainB");
  EXPECT_EQ(records[2].payee, "DomainC");
  // 10 Mb/s * 60 s = 600 megabit-seconds.
  for (const auto& r : records) {
    EXPECT_DOUBLE_EQ(r.mbit_seconds, 600.0);
    EXPECT_DOUBLE_EQ(r.amount, 6.0);
    EXPECT_EQ(r.reservation_id, "resv-1");
  }
}

TEST(Billing, BalancesConserve) {
  BillingLedger ledger = flat_ledger();
  ledger.bill_reservation({"DomainA", "DomainB", "DomainC"},
                          "CN=Alice,O=DomainA,C=US", spec_10mbps_60s(), "r1");
  // Flat pricing: transit domains break even, the destination nets income,
  // the user pays.
  EXPECT_DOUBLE_EQ(ledger.balance("DomainA"), 0.0);
  EXPECT_DOUBLE_EQ(ledger.balance("DomainB"), 0.0);
  EXPECT_DOUBLE_EQ(ledger.balance("DomainC"), 6.0);
  EXPECT_DOUBLE_EQ(ledger.balance("CN=Alice,O=DomainA,C=US"), -6.0);
  // Money in = money out.
  const double sum = ledger.balance("DomainA") + ledger.balance("DomainB") +
                     ledger.balance("DomainC") +
                     ledger.balance("CN=Alice,O=DomainA,C=US");
  EXPECT_NEAR(sum, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(ledger.total_user_payments(), 6.0);
}

TEST(Billing, AsymmetricPricesCreateTransitMargin) {
  // A charges the user 0.03; B charges A 0.02; C charges B 0.01.
  BillingLedger ledger(
      [](const std::string& payer, const std::string& payee) {
        if (payee == "DomainA") return 0.03;
        if (payee == "DomainB") return 0.02;
        return 0.01;
      });
  ledger.bill_reservation({"DomainA", "DomainB", "DomainC"}, "user",
                          spec_10mbps_60s(), "r1");
  EXPECT_DOUBLE_EQ(ledger.balance("DomainA"), 600 * (0.03 - 0.02));
  EXPECT_DOUBLE_EQ(ledger.balance("DomainB"), 600 * (0.02 - 0.01));
  EXPECT_DOUBLE_EQ(ledger.balance("DomainC"), 600 * 0.01);
  EXPECT_DOUBLE_EQ(ledger.balance("user"), -600 * 0.03);
}

TEST(Billing, SingleDomainPathBillsOnlyUser) {
  BillingLedger ledger = flat_ledger();
  const auto records =
      ledger.bill_reservation({"DomainA"}, "user", spec_10mbps_60s(), "r1");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payer, "user");
  EXPECT_EQ(records[0].payee, "DomainA");
}

TEST(Billing, EmptyPathYieldsNothing) {
  BillingLedger ledger = flat_ledger();
  EXPECT_TRUE(
      ledger.bill_reservation({}, "user", spec_10mbps_60s(), "r").empty());
}

TEST(Billing, MultipleReservationsAccumulate) {
  BillingLedger ledger = flat_ledger();
  ledger.bill_reservation({"DomainA", "DomainB"}, "u1", spec_10mbps_60s(),
                          "r1");
  ledger.bill_reservation({"DomainA", "DomainB"}, "u2", spec_10mbps_60s(),
                          "r2");
  EXPECT_EQ(ledger.records().size(), 4u);
  EXPECT_DOUBLE_EQ(ledger.balance("DomainB"), 12.0);
  EXPECT_DOUBLE_EQ(ledger.total_user_payments(), 12.0);
  ledger.clear();
  EXPECT_TRUE(ledger.records().empty());
}

}  // namespace
}  // namespace e2e::acct
