#include "common/tlv.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace e2e::tlv {
namespace {

TEST(Tlv, ScalarRoundTrip) {
  Writer w;
  w.put_u8(1, 0xab);
  w.put_u16(2, 0xbeef);
  w.put_u32(3, 0xdeadbeef);
  w.put_u64(4, 0x0123456789abcdefull);
  w.put_i64(5, -42);
  w.put_bool(6, true);
  w.put_string(7, "bandwidth broker");
  w.put_f64(8, 3.14159);
  const Bytes encoded = w.take();

  Reader r(encoded);
  EXPECT_EQ(r.read_u8(1).value(), 0xab);
  EXPECT_EQ(r.read_u16(2).value(), 0xbeef);
  EXPECT_EQ(r.read_u32(3).value(), 0xdeadbeefu);
  EXPECT_EQ(r.read_u64(4).value(), 0x0123456789abcdefull);
  EXPECT_EQ(r.read_i64(5).value(), -42);
  EXPECT_TRUE(r.read_bool(6).value());
  EXPECT_EQ(r.read_string(7).value(), "bandwidth broker");
  EXPECT_DOUBLE_EQ(r.read_f64(8).value(), 3.14159);
  EXPECT_TRUE(r.at_end());
}

TEST(Tlv, NestedContainers) {
  Writer w;
  w.open(10);
  w.put_string(11, "outer");
  w.open(12);
  w.put_u32(13, 99);
  w.close();
  w.close();
  const Bytes encoded = w.take();

  Reader r(encoded);
  auto outer = r.read_nested(10);
  ASSERT_TRUE(outer.ok());
  EXPECT_EQ(outer->read_string(11).value(), "outer");
  auto inner = outer->read_nested(12);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner->read_u32(13).value(), 99u);
  EXPECT_TRUE(inner->at_end());
  EXPECT_TRUE(outer->at_end());
  EXPECT_TRUE(r.at_end());
}

TEST(Tlv, WrongTagIsError) {
  Writer w;
  w.put_u32(1, 5);
  const Bytes encoded = w.take();
  Reader r(encoded);
  auto res = r.read_u32(2);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, ErrorCode::kBadMessage);
}

TEST(Tlv, WrongLengthIsError) {
  Writer w;
  w.put_u16(1, 5);
  const Bytes encoded = w.take();
  Reader r(encoded);
  EXPECT_FALSE(r.read_u32(1).ok());
}

TEST(Tlv, TruncatedHeaderIsError) {
  Reader r(Bytes{0x00, 0x01, 0x00});
  EXPECT_FALSE(r.next().ok());
}

TEST(Tlv, TruncatedValueIsError) {
  Writer w;
  w.put_string(1, "hello");
  Bytes encoded = w.take();
  encoded.pop_back();
  Reader r(encoded);
  EXPECT_FALSE(r.next().ok());
}

TEST(Tlv, TryNextConsumesOnlyOnMatch) {
  Writer w;
  w.put_u8(1, 1);
  w.put_u8(2, 2);
  const Bytes encoded = w.take();
  Reader r(encoded);
  EXPECT_FALSE(r.try_next(2).has_value());  // next tag is 1
  EXPECT_TRUE(r.try_next(1).has_value());
  EXPECT_TRUE(r.try_next(2).has_value());
  EXPECT_TRUE(r.at_end());
}

TEST(Tlv, UnbalancedCloseThrows) {
  Writer w;
  EXPECT_THROW(w.close(), std::logic_error);
}

TEST(Tlv, TakeWithOpenContainerThrows) {
  Writer w;
  w.open(1);
  EXPECT_THROW(w.take(), std::logic_error);
}

TEST(Tlv, CanonicalDeterminism) {
  auto build = [] {
    Writer w;
    w.open(1);
    w.put_string(2, "alpha");
    w.put_u64(3, 77);
    w.close();
    return w.take();
  };
  EXPECT_EQ(build(), build());
}

// Property: random sequences of scalars round-trip through encode/decode.
class TlvRandomRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TlvRandomRoundTrip, RoundTrips) {
  Rng rng(GetParam());
  const int count = 1 + static_cast<int>(rng.next_below(30));
  std::vector<std::pair<Tag, std::uint64_t>> expected;
  Writer w;
  for (int i = 0; i < count; ++i) {
    const Tag tag = static_cast<Tag>(1 + rng.next_below(1000));
    const std::uint64_t value = rng.next_u64();
    w.put_u64(tag, value);
    expected.emplace_back(tag, value);
  }
  const Bytes encoded = w.take();
  Reader r(encoded);
  for (const auto& [tag, value] : expected) {
    EXPECT_EQ(r.read_u64(tag).value(), value);
  }
  EXPECT_TRUE(r.at_end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TlvRandomRoundTrip,
                         ::testing::Values(1, 2, 3, 42, 999, 123456789));

TEST(Tlv, BigEndianHelpers) {
  Bytes b;
  put_be16(b, 0x0102);
  put_be32(b, 0x03040506);
  put_be64(b, 0x0708090a0b0c0d0eull);
  EXPECT_EQ(b.size(), 14u);
  EXPECT_EQ(get_be(BytesView(b).subspan(0, 2), 2), 0x0102u);
  EXPECT_EQ(get_be(BytesView(b).subspan(2, 4), 4), 0x03040506u);
  EXPECT_EQ(get_be(BytesView(b).subspan(6, 8), 8), 0x0708090a0b0c0d0eull);
}

}  // namespace
}  // namespace e2e::tlv
