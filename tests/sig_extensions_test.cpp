// Extensions of the base protocol that the paper describes but the core
// scenario does not exercise: cost negotiation (§6.1) and capability
// revocation (CRL behaviour of the community authorization server).
#include <gtest/gtest.h>

#include "testing_world.hpp"

namespace e2e::sig {
namespace {

using testing::ChainWorld;
using testing::ChainWorldConfig;
using testing::WorldUser;

TEST(CostNegotiation, WithinBudgetGranted) {
  ChainWorld world;
  // Domains A and B each offer their transit at a price.
  world.broker(0).policy_server().add_static_augmentation(
      {"Cost.offer", "2.5"});
  world.broker(1).policy_server().add_static_augmentation(
      {"Cost.offer", "4.0"});
  const WorldUser alice = world.make_user("Alice", 0);
  bb::ResSpec spec = world.spec(alice, 10e6);
  spec.max_cost = 10.0;
  const auto msg =
      world.engine().build_user_request(alice.credentials(), spec, 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  EXPECT_TRUE(outcome->reply.granted) << outcome->reply.denial.to_text();
}

TEST(CostNegotiation, OverBudgetDeniedAtDestination) {
  ChainWorld world;
  world.broker(0).policy_server().add_static_augmentation(
      {"Cost.offer", "6.0"});
  world.broker(1).policy_server().add_static_augmentation(
      {"Cost.offer", "7.0"});
  const WorldUser alice = world.make_user("Alice", 0);
  bb::ResSpec spec = world.spec(alice, 10e6);
  spec.max_cost = 10.0;
  const auto msg =
      world.engine().build_user_request(alice.credentials(), spec, 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kPolicyDenied);
  EXPECT_EQ(outcome->reply.denial.origin, "DomainC");
  EXPECT_NE(outcome->reply.denial.message.find("cost"), std::string::npos);
  // All tentative commitments rolled back.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(world.broker(i).reservation_count(), 0u);
  }
}

TEST(CostNegotiation, ZeroMaxCostMeansUnlimited) {
  ChainWorld world;
  world.broker(0).policy_server().add_static_augmentation(
      {"Cost.offer", "9999"});
  const WorldUser alice = world.make_user("Alice", 0);
  bb::ResSpec spec = world.spec(alice, 10e6);
  spec.max_cost = 0;  // user did not constrain cost
  const auto msg =
      world.engine().build_user_request(alice.credentials(), spec, 0);
  EXPECT_TRUE(world.engine().reserve(*msg, seconds(1))->reply.granted);
}

TEST(CostNegotiation, DestinationOwnOfferCounts) {
  ChainWorld world;
  world.broker(2).policy_server().add_static_augmentation(
      {"Cost.offer", "11.0"});
  const WorldUser alice = world.make_user("Alice", 0);
  bb::ResSpec spec = world.spec(alice, 10e6);
  spec.max_cost = 10.0;
  const auto msg =
      world.engine().build_user_request(alice.credentials(), spec, 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.origin, "DomainC");
}

struct RevocationFixture {
  ChainWorldConfig config;
  ChainWorld world;
  WorldUser alice;

  RevocationFixture()
      : config([] {
          ChainWorldConfig c;
          // Destination demands the ESnet capability.
          c.policies = {"Return GRANT", "Return GRANT",
                        "If Issued_by(Capability) = ESnet Return GRANT\n"
                        "Return DENY"};
          return c;
        }()),
        world(config),
        alice(world.make_user("Alice", 0)) {
    // Wire the CAS's revocation list into every domain.
    for (const auto& domain : world.names()) {
      world.engine().set_community_revocation_check(
          domain, "ESnet", [this](std::uint64_t serial) {
            return world.cas_esnet().is_revoked(serial);
          });
    }
  }
};

TEST(Revocation, ValidCapabilityStillWorks) {
  RevocationFixture f;
  const auto msg = f.world.engine().build_user_request(
      f.alice.credentials(), f.world.spec(f.alice, 10e6), 0);
  EXPECT_TRUE(f.world.engine().reserve(*msg, seconds(1))->reply.granted);
}

TEST(Revocation, RevokedCapabilityDeniedAtCapabilityGatedDomain) {
  RevocationFixture f;
  f.world.cas_esnet().revoke(f.alice.capability_cert->serial());
  const auto msg = f.world.engine().build_user_request(
      f.alice.credentials(), f.world.spec(f.alice, 10e6), 0);
  const auto outcome = f.world.engine().reserve(*msg, seconds(1));
  ASSERT_FALSE(outcome->reply.granted);
  EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kPolicyDenied);
  EXPECT_EQ(outcome->reply.denial.origin, "DomainC");
}

TEST(Revocation, RevocationDoesNotAffectNonCapabilityPolicies) {
  // Domains whose policy does not consult capabilities keep granting.
  ChainWorld world;  // default "Return GRANT" everywhere
  WorldUser alice = world.make_user("Alice", 0);
  for (const auto& domain : world.names()) {
    world.engine().set_community_revocation_check(
        domain, "ESnet",
        [](std::uint64_t) { return true; });  // everything revoked
  }
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 10e6), 0);
  EXPECT_TRUE(world.engine().reserve(*msg, seconds(1))->reply.granted);
}

}  // namespace
}  // namespace e2e::sig
