#include "sig/transport.hpp"

#include <gtest/gtest.h>

namespace e2e::sig {
namespace {

TEST(Fabric, DefaultLatencyApplies) {
  Fabric f;
  f.set_default_latency(milliseconds(25));
  EXPECT_EQ(f.one_way("X", "Y"), milliseconds(25));
  EXPECT_EQ(f.rtt("X", "Y"), milliseconds(50));
}

TEST(Fabric, SelfLatencyIsZero) {
  Fabric f;
  EXPECT_EQ(f.one_way("X", "X"), 0);
}

TEST(Fabric, ConfiguredLatencyIsSymmetric) {
  Fabric f;
  f.set_latency("A", "B", milliseconds(7));
  EXPECT_EQ(f.one_way("A", "B"), milliseconds(7));
  EXPECT_EQ(f.one_way("B", "A"), milliseconds(7));
}

TEST(Fabric, MessageAccounting) {
  Fabric f;
  f.record_message("A", "B", 100);
  f.record_message("B", "A", 50);
  f.record_message("A", "C", 10);
  EXPECT_EQ(f.total().messages, 3u);
  EXPECT_EQ(f.total().bytes, 160u);
  EXPECT_EQ(f.between("A", "B").messages, 2u);  // symmetric pair key
  EXPECT_EQ(f.between("A", "B").bytes, 150u);
  EXPECT_EQ(f.between("A", "C").messages, 1u);
  EXPECT_EQ(f.between("B", "C").messages, 0u);
}

TEST(Fabric, ResetCounters) {
  Fabric f;
  f.record_message("A", "B", 100);
  f.reset_counters();
  EXPECT_EQ(f.total().messages, 0u);
  EXPECT_EQ(f.between("A", "B").messages, 0u);
}

TEST(Fabric, ProcessingDelayConfigurable) {
  Fabric f;
  f.set_processing_delay(microseconds(250));
  EXPECT_EQ(f.processing_delay(), microseconds(250));
}

}  // namespace
}  // namespace e2e::sig
