#include "sig/transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace e2e::sig {
namespace {

Bytes payload_of(std::size_t n) { return Bytes(n, 0xab); }

TEST(Fabric, DefaultLatencyApplies) {
  Fabric f;
  f.set_default_latency(milliseconds(25));
  EXPECT_EQ(f.one_way("X", "Y"), milliseconds(25));
  EXPECT_EQ(f.rtt("X", "Y"), milliseconds(50));
}

TEST(Fabric, SelfLatencyIsZero) {
  Fabric f;
  EXPECT_EQ(f.one_way("X", "X"), 0);
}

TEST(Fabric, ConfiguredLatencyIsSymmetric) {
  Fabric f;
  f.set_latency("A", "B", milliseconds(7));
  EXPECT_EQ(f.one_way("A", "B"), milliseconds(7));
  EXPECT_EQ(f.one_way("B", "A"), milliseconds(7));
}

TEST(Fabric, MessageAccounting) {
  Fabric f;
  f.record_message("A", "B", 100);
  f.record_message("B", "A", 50);
  f.record_message("A", "C", 10);
  EXPECT_EQ(f.total().messages, 3u);
  EXPECT_EQ(f.total().bytes, 160u);
  EXPECT_EQ(f.between("A", "B").messages, 2u);  // symmetric pair key
  EXPECT_EQ(f.between("A", "B").bytes, 150u);
  EXPECT_EQ(f.between("A", "C").messages, 1u);
  EXPECT_EQ(f.between("B", "C").messages, 0u);
}

TEST(Fabric, ResetCounters) {
  Fabric f;
  f.record_message("A", "B", 100);
  f.reset_counters();
  EXPECT_EQ(f.total().messages, 0u);
  EXPECT_EQ(f.between("A", "B").messages, 0u);
}

TEST(Fabric, ProcessingDelayConfigurable) {
  Fabric f;
  f.set_processing_delay(microseconds(250));
  EXPECT_EQ(f.processing_delay(), microseconds(250));
}

TEST(FabricFaults, CleanTransmitMatchesRecordMessage) {
  Fabric f;
  f.set_latency("A", "B", milliseconds(7));
  const Bytes payload = payload_of(100);
  const Delivery d = f.transmit("A", "B", payload);
  EXPECT_TRUE(d.delivered());
  EXPECT_FALSE(d.corrupted);
  EXPECT_FALSE(d.duplicated);
  EXPECT_EQ(d.latency, milliseconds(7));
  EXPECT_EQ(d.payload, payload);
  EXPECT_EQ(f.total().messages, 1u);
  EXPECT_EQ(f.total().bytes, 100u);
}

TEST(FabricFaults, DropProbabilityOneDropsEverything) {
  Fabric f;
  f.seed_faults(1);
  FaultProfile p;
  p.drop = 1.0;
  f.set_default_fault_profile(p);
  for (int i = 0; i < 10; ++i) {
    const Delivery d = f.transmit("A", "B", payload_of(10));
    EXPECT_EQ(d.outcome, Delivery::Outcome::kDropped);
    EXPECT_FALSE(d.delivered());
  }
  // Dropped messages still count: the sender spent the bytes.
  EXPECT_EQ(f.total().messages, 10u);
}

TEST(FabricFaults, SameSeedSameFaultSequence) {
  FaultProfile p;
  p.drop = 0.5;
  p.duplicate = 0.3;
  p.corrupt = 0.3;
  p.jitter = 0.3;
  auto run = [&p] {
    Fabric f;
    f.seed_faults(42);
    f.set_default_fault_profile(p);
    std::vector<int> fates;
    for (int i = 0; i < 64; ++i) {
      const Delivery d = f.transmit("A", "B", payload_of(32));
      fates.push_back(static_cast<int>(d.outcome) * 100 +
                      (d.corrupted ? 10 : 0) + (d.duplicated ? 1 : 0) +
                      static_cast<int>(d.latency % 97));
    }
    return fates;
  };
  EXPECT_EQ(run(), run());
}

TEST(FabricFaults, CorruptionFlipsBytesButKeepsSize) {
  Fabric f;
  f.seed_faults(3);
  FaultProfile p;
  p.corrupt = 1.0;
  f.set_default_fault_profile(p);
  const Bytes payload = payload_of(64);
  const Delivery d = f.transmit("A", "B", payload);
  ASSERT_TRUE(d.delivered());
  EXPECT_TRUE(d.corrupted);
  EXPECT_EQ(d.payload.size(), payload.size());
  EXPECT_NE(d.payload, payload);
}

TEST(FabricFaults, JitterBoundedByMaxJitter) {
  Fabric f;
  f.seed_faults(4);
  f.set_latency("A", "B", milliseconds(10));
  FaultProfile p;
  p.jitter = 1.0;
  p.max_jitter = milliseconds(5);
  f.set_default_fault_profile(p);
  for (int i = 0; i < 32; ++i) {
    const Delivery d = f.transmit("A", "B", payload_of(8));
    ASSERT_TRUE(d.delivered());
    EXPECT_GE(d.latency, milliseconds(10));
    EXPECT_LT(d.latency, milliseconds(15));
  }
}

TEST(FabricFaults, PartitionBlocksBothDirectionsUntilHealed) {
  Fabric f;
  f.partition("A", "B");
  EXPECT_TRUE(f.partitioned("A", "B"));
  EXPECT_EQ(f.transmit("A", "B", payload_of(1)).outcome,
            Delivery::Outcome::kPartitioned);
  EXPECT_EQ(f.transmit("B", "A", payload_of(1)).outcome,
            Delivery::Outcome::kPartitioned);
  // Other links are unaffected.
  EXPECT_TRUE(f.transmit("A", "C", payload_of(1)).delivered());
  f.heal("A", "B");
  EXPECT_TRUE(f.transmit("A", "B", payload_of(1)).delivered());
}

TEST(FabricFaults, DownBrokerNeitherSendsNorReceives) {
  Fabric f;
  f.set_down("B", true);
  EXPECT_TRUE(f.is_down("B"));
  EXPECT_EQ(f.transmit("A", "B", payload_of(1)).outcome,
            Delivery::Outcome::kPeerDown);
  EXPECT_EQ(f.transmit("B", "A", payload_of(1)).outcome,
            Delivery::Outcome::kPeerDown);
  f.set_down("B", false);
  EXPECT_TRUE(f.transmit("A", "B", payload_of(1)).delivered());
}

TEST(FabricFaults, DirectionalProfileOnlyAffectsThatDirection) {
  Fabric f;
  f.seed_faults(5);
  FaultProfile p;
  p.drop = 1.0;
  f.set_fault_profile("B", "A", p);
  EXPECT_TRUE(f.transmit("A", "B", payload_of(1)).delivered());
  EXPECT_FALSE(f.transmit("B", "A", payload_of(1)).delivered());
}

TEST(FabricFaults, ClearFaultsRestoresCleanFabric) {
  Fabric f;
  FaultProfile p;
  p.drop = 1.0;
  f.set_default_fault_profile(p);
  f.partition("A", "B");
  f.set_down("C", true);
  f.clear_faults();
  EXPECT_TRUE(f.transmit("A", "B", payload_of(1)).delivered());
  EXPECT_TRUE(f.transmit("A", "C", payload_of(1)).delivered());
  EXPECT_FALSE(f.partitioned("A", "B"));
  EXPECT_FALSE(f.is_down("C"));
}

// Satellite regression: one_way used to read latencies_ without a lock
// while benches mutate them; now one mutex guards latencies, counters and
// fault state. Hammer readers and writers concurrently — under ASan (the
// soak preset) a race here shows up as a crash or a torn read outside the
// two values ever written.
TEST(FabricFaults, ConcurrentLatencyReadsAndWritesAreSafe) {
  Fabric f;
  f.set_latency("A", "B", milliseconds(1));
  constexpr int kWrites = 5000;
  constexpr int kReadsPerThread = 2000;
  std::thread writer([&] {
    for (int i = 0; i < kWrites; ++i) {
      f.set_latency("A", "B", milliseconds(1 + (i % 2)));
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < kReadsPerThread; ++i) {
        const SimDuration d = f.one_way("A", "B");
        ASSERT_TRUE(d == milliseconds(1) || d == milliseconds(2));
        f.record_message("A", "B", 1);
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(f.total().messages, 4u * kReadsPerThread);
}

}  // namespace
}  // namespace e2e::sig
