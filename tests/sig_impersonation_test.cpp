// Restricted impersonation (§6.4 technique 4).
#include "sig/impersonation.hpp"

#include <gtest/gtest.h>

#include "crypto/ca.hpp"

namespace e2e::sig {
namespace {

const TimeInterval kValidity{0, hours(1000)};

struct ImpFixture {
  Rng rng{4242};
  crypto::CertificateAuthority ca{
      crypto::DistinguishedName::make("CA-A", "DomainA"), rng, kValidity,
      256};
  crypto::KeyPair alice_keys = crypto::generate_keypair(rng, 256);
  crypto::KeyPair bb_a = crypto::generate_keypair(rng, 256);
  crypto::KeyPair bb_b = crypto::generate_keypair(rng, 256);
  crypto::DistinguishedName alice =
      crypto::DistinguishedName::make("Alice", "DomainA");
  crypto::DistinguishedName dn_a =
      crypto::DistinguishedName::make("BB-A", "DomainA");
  crypto::DistinguishedName dn_b =
      crypto::DistinguishedName::make("BB-B", "DomainB");
  crypto::Certificate identity =
      ca.issue(alice, alice_keys.pub, kValidity);
  crypto::TrustStore trust;
  std::string restriction = "Valid for Reservation in DomainC";

  ImpFixture() { trust.add_anchor(ca.root_certificate()); }

  std::vector<crypto::Certificate> build_chain() {
    const crypto::Certificate to_a =
        build_impersonation(identity, dn_a, bb_a.pub, restriction, kValidity,
                            1)
            .sign_with(alice_keys.priv);
    const crypto::Certificate to_b =
        build_impersonation(to_a, dn_b, bb_b.pub, "", kValidity, 2)
            .sign_with(bb_a.priv);
    return {identity, to_a, to_b};
  }
};

TEST(Impersonation, ChainStructure) {
  ImpFixture f;
  const auto chain = f.build_chain();
  // Every link names the impersonated end entity and the restriction.
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_EQ(chain[i].extension_value(kExtImpersonates).value_or(""),
              f.alice.to_string());
    EXPECT_EQ(chain[i].extension_value(crypto::kExtValidForRar).value_or(""),
              f.restriction);
  }
}

TEST(Impersonation, FullChainVerifies) {
  ImpFixture f;
  const auto chain = f.build_chain();
  const auto result = verify_impersonation_chain(
      chain, f.trust, f.bb_b.pub, f.restriction, seconds(1));
  ASSERT_TRUE(result.ok()) << result.error().to_text();
  EXPECT_EQ(result->impersonated, f.alice);
  EXPECT_EQ(result->restriction, f.restriction);
  EXPECT_EQ(result->length, 2u);
}

TEST(Impersonation, UntrustedIdentityRejected) {
  ImpFixture f;
  const auto chain = f.build_chain();
  crypto::TrustStore empty;
  EXPECT_FALSE(verify_impersonation_chain(chain, empty, f.bb_b.pub,
                                          f.restriction, seconds(1))
                   .ok());
}

TEST(Impersonation, WrongSignerRejected) {
  ImpFixture f;
  auto chain = f.build_chain();
  // Re-sign link 2 with the wrong key (B's own instead of A's).
  chain[2] = build_impersonation(chain[1], f.dn_b, f.bb_b.pub, "", kValidity,
                                 9)
                 .sign_with(f.bb_b.priv);
  EXPECT_FALSE(verify_impersonation_chain(chain, f.trust, f.bb_b.pub,
                                          f.restriction, seconds(1))
                   .ok());
}

TEST(Impersonation, SwitchedIdentityRejected) {
  // A link that claims to impersonate somebody else must be refused.
  ImpFixture f;
  auto chain = f.build_chain();
  crypto::Certificate::Builder b =
      build_impersonation(chain[1], f.dn_b, f.bb_b.pub, "", kValidity, 9);
  for (auto& ext : b.extensions) {
    if (ext.name == kExtImpersonates) ext.value = "CN=Mallory,O=E,C=US";
  }
  chain[2] = b.sign_with(f.bb_a.priv);
  const auto result = verify_impersonation_chain(
      chain, f.trust, f.bb_b.pub, f.restriction, seconds(1));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("impersonates"), std::string::npos);
}

TEST(Impersonation, RestrictionTamperingRejected) {
  ImpFixture f;
  auto chain = f.build_chain();
  crypto::Certificate::Builder b =
      build_impersonation(chain[1], f.dn_b, f.bb_b.pub, "", kValidity, 9);
  for (auto& ext : b.extensions) {
    if (ext.name == crypto::kExtValidForRar) {
      ext.value = "Valid for Reservation in DomainX";
    }
  }
  chain[2] = b.sign_with(f.bb_a.priv);
  EXPECT_FALSE(verify_impersonation_chain(chain, f.trust, f.bb_b.pub,
                                          f.restriction, seconds(1))
                   .ok());
}

TEST(Impersonation, WrongHolderRejected) {
  ImpFixture f;
  const auto chain = f.build_chain();
  EXPECT_FALSE(verify_impersonation_chain(chain, f.trust, f.bb_a.pub,
                                          f.restriction, seconds(1))
                   .ok());
}

TEST(Impersonation, TooShortChainRejected) {
  ImpFixture f;
  const std::vector<crypto::Certificate> just_identity{f.identity};
  EXPECT_FALSE(verify_impersonation_chain(just_identity, f.trust,
                                          f.alice_keys.pub, "", 0)
                   .ok());
}

TEST(Impersonation, ExpiredLinkRejected) {
  ImpFixture f;
  auto chain = f.build_chain();
  chain[2] = build_impersonation(chain[1], f.dn_b, f.bb_b.pub, "",
                                 {0, seconds(5)}, 9)
                 .sign_with(f.bb_a.priv);
  const auto result = verify_impersonation_chain(
      chain, f.trust, f.bb_b.pub, f.restriction, seconds(60));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kExpired);
}

}  // namespace
}  // namespace e2e::sig
