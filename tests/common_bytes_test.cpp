#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace e2e {
namespace {

TEST(Bytes, RoundTripString) {
  const std::string s = "hello, broker";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Bytes, HexEncode) {
  EXPECT_EQ(hex_encode(to_bytes("")), "");
  EXPECT_EQ(hex_encode(Bytes{0x00, 0xff, 0x10}), "00ff10");
  EXPECT_EQ(hex_encode(to_bytes("AB")), "4142");
}

TEST(Bytes, HexDecodeRoundTrip) {
  const Bytes b{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01};
  EXPECT_EQ(hex_decode(hex_encode(b)), b);
}

TEST(Bytes, HexDecodeUppercase) {
  EXPECT_EQ(hex_decode("DEADBEEF"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Bytes, HexDecodeRejectsOddLength) {
  EXPECT_THROW(hex_decode("abc"), std::invalid_argument);
}

TEST(Bytes, HexDecodeRejectsNonHex) {
  EXPECT_THROW(hex_decode("zz"), std::invalid_argument);
}

TEST(Bytes, EqualCt) {
  EXPECT_TRUE(equal_ct(to_bytes("abc"), to_bytes("abc")));
  EXPECT_FALSE(equal_ct(to_bytes("abc"), to_bytes("abd")));
  EXPECT_FALSE(equal_ct(to_bytes("abc"), to_bytes("ab")));
  EXPECT_TRUE(equal_ct(Bytes{}, Bytes{}));
}

TEST(Bytes, Append) {
  Bytes dst = to_bytes("foo");
  append(dst, to_bytes("bar"));
  EXPECT_EQ(to_string(dst), "foobar");
}

}  // namespace
}  // namespace e2e
