// Shared-nothing admission engine tests (ISSUE 8 tentpole).
//
// Three angles:
//   1. ShardEngine mechanics: routing, inline re-entrancy on worker
//      threads, queue accounting.
//   2. Differential: a scripted workload driven through an engine-enabled
//      broker must produce decision-for-decision, handle-for-handle,
//      state-identical results to the same workload on an engine-off
//      broker (the locked implementation is the oracle).
//   3. Stress + crash recovery: concurrent admit/release/batch traffic
//      with the engine on, checked for zero residual after drain, and a
//      crash mid-stream whose WAL replays every acked grant into a fresh
//      broker. scripts/tier1.sh --load re-runs this binary under the TSan
//      preset (build-tsan), where the owner-routing discipline is checked.
#include "bb/shard_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bb/bandwidth_broker.hpp"
#include "bb/recovery.hpp"
#include "bb/wal.hpp"

namespace e2e::bb {
namespace {

const TimeInterval kLongValidity{0, hours(24 * 365)};
const char kAlice[] = "CN=Alice,O=DomainA,C=US";

// --- Engine mechanics -------------------------------------------------------

TEST(ShardEngine, RunOnReturnsResultsFromEveryWorker) {
  ShardEngine engine(3);
  EXPECT_EQ(engine.worker_count(), 3u);
  EXPECT_FALSE(engine.on_worker_thread());
  for (std::size_t w = 0; w < engine.worker_count(); ++w) {
    const int out = engine.run_on(w, [w] { return static_cast<int>(w) + 10; });
    EXPECT_EQ(out, static_cast<int>(w) + 10);
  }
  // void-returning functions work too.
  int touched = 0;
  engine.run_on(1, [&] { touched = 7; });
  EXPECT_EQ(touched, 7);
  EXPECT_EQ(engine.queue_depth(), 0u);
}

TEST(ShardEngine, WorkerSeesItselfAndRunsOwnWorkInline) {
  ShardEngine engine(2);
  const auto inner = engine.run_on(0, [&] {
    EXPECT_TRUE(engine.on_worker_thread());
    EXPECT_EQ(engine.current_worker(), 0);
    // Re-entrant dispatch to the SAME worker must run inline (posting and
    // waiting would self-deadlock).
    return engine.run_on(0, [&] { return engine.current_worker(); });
  });
  EXPECT_EQ(inner, 0);
  EXPECT_FALSE(engine.on_worker_thread());
  EXPECT_EQ(engine.current_worker(), -1);
}

TEST(ShardEngine, ZeroWorkersClampsToOne) {
  ShardEngine engine(0);
  EXPECT_EQ(engine.worker_count(), 1u);
  EXPECT_EQ(engine.run_on(0, [] { return 42; }), 42);
}

TEST(ShardEngine, ManyThreadsRouteToManyWorkersWithoutLoss) {
  ShardEngine engine(4);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 6; ++t) {
    callers.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const std::size_t w = static_cast<std::size_t>((t + i) % 4);
        total.fetch_add(engine.run_on(w, [] { return 1; }),
                        std::memory_order_relaxed);
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(total.load(), 6 * 200);
  EXPECT_EQ(engine.queue_depth(), 0u);
}

// --- Broker fixture ---------------------------------------------------------

struct EngineFixture {
  Rng rng{2026};
  crypto::CertificateAuthority ca{
      crypto::DistinguishedName::make("CA-B", "DomainB"), rng, kLongValidity,
      256};
  BandwidthBroker broker = make_broker();

  BandwidthBroker make_broker() {
    policy::PolicyServer server(
        "DomainB", policy::Policy::compile("Return GRANT").value());
    return BandwidthBroker(BrokerConfig{"DomainB", 100e6, 256},
                           std::move(server), ca, rng, kLongValidity);
  }

  ResSpec spec(double rate, TimeInterval iv = {0, seconds(60)}) {
    ResSpec s;
    s.user = kAlice;
    s.source_domain = "DomainA";
    s.destination_domain = "DomainC";
    s.rate_bits_per_s = rate;
    s.burst_bits = 30000;
    s.interval = iv;
    return s;
  }
};

/// Scripted single-threaded workload shared by the differential test:
/// commits, releases, a batch, tunnel traffic and a cross-tunnel batch.
/// Returns every status/handle produced, in order, plus probes of the
/// resulting state — two brokers ran the same script iff these match.
struct ScriptResult {
  std::vector<std::string> handles;  // "-" for rejections
  std::vector<bool> tunnel_statuses;
  std::vector<double> probes;
  std::uint64_t requests = 0, granted = 0, denied = 0, released = 0;
  std::size_t live = 0;
};

ScriptResult run_script(EngineFixture& f) {
  ScriptResult out;
  std::vector<ReservationId> live;
  auto note = [&](const Result<ReservationId>& r) {
    out.handles.push_back(r.ok() ? *r : "-");
    if (r.ok()) live.push_back(*r);
  };
  // Phase 1: single commits across staggered windows, some releases.
  for (int i = 0; i < 40; ++i) {
    const SimTime start = seconds((i * 7) % 50);
    note(f.broker.commit(f.spec(9e6, {start, start + seconds(30)}), ""));
    if (live.size() > 6) {
      EXPECT_TRUE(f.broker.release(live.front()).ok());
      live.erase(live.begin());
    }
  }
  // Phase 2: one batch (mixed grants/rejections at the capacity edge).
  std::vector<ResSpec> batch;
  for (int i = 0; i < 12; ++i) {
    batch.push_back(f.spec(8e6, {seconds(i * 5), seconds(i * 5 + 25)}));
  }
  for (const auto& r : f.broker.commit_batch(batch, "")) note(r);
  // Phase 3: tunnels + cross-tunnel batch allocation.
  std::vector<TunnelId> tunnels;
  for (int t = 0; t < 3; ++t) {
    ResSpec agg = f.spec(15e6, {0, seconds(600)});
    agg.is_tunnel = true;
    auto tid = f.broker.register_tunnel(agg);
    EXPECT_TRUE(tid.ok());
    EXPECT_TRUE(f.broker.find_tunnel(*tid)->authorize(kAlice).ok());
    tunnels.push_back(*tid);
  }
  std::vector<BandwidthBroker::TunnelFlowRequest> flows;
  for (int i = 0; i < 24; ++i) {
    flows.push_back({tunnels[static_cast<std::size_t>(i) % tunnels.size()],
                     {"sub-" + std::to_string(i), kAlice,
                      {0, seconds(60)}, 2e6}});
  }
  for (const auto& status : f.broker.allocate_across_tunnels(flows)) {
    out.tunnel_statuses.push_back(status.ok());
  }
  // Per-tunnel single allocate/release round on top.
  for (const auto& tid : tunnels) {
    Tunnel* tunnel = f.broker.find_tunnel(tid);
    out.tunnel_statuses.push_back(
        tunnel->allocate("x-" + tid, kAlice, {0, seconds(60)}, 1e6).ok());
    out.tunnel_statuses.push_back(tunnel->release("x-" + tid).ok());
    out.probes.push_back(tunnel->headroom({0, seconds(60)}));
  }
  // State probes.
  for (SimTime t = 0; t <= seconds(80); t += seconds(2)) {
    out.probes.push_back(f.broker.committed_at(t));
    out.probes.push_back(f.broker.headroom({t, t + seconds(10)}));
  }
  const auto c = f.broker.counters();
  out.requests = c.requests;
  out.granted = c.granted;
  out.denied = c.denied_admission;
  out.released = c.released;
  out.live = f.broker.reservation_count();
  return out;
}

// --- Differential: engine on == engine off ---------------------------------

TEST(ShardEngineDifferential, ScriptedWorkloadIdenticalToLockedOracle) {
  EngineFixture locked;   // oracle: caller-threaded, per-container locks
  EngineFixture engined;  // thread-per-shard
  engined.broker.enable_shard_engine(3);
  ASSERT_NE(engined.broker.shard_engine(), nullptr);

  const ScriptResult want = run_script(locked);
  const ScriptResult got = run_script(engined);

  EXPECT_EQ(got.handles, want.handles);
  EXPECT_EQ(got.tunnel_statuses, want.tunnel_statuses);
  ASSERT_EQ(got.probes.size(), want.probes.size());
  for (std::size_t i = 0; i < want.probes.size(); ++i) {
    EXPECT_EQ(got.probes[i], want.probes[i]) << "probe " << i;
  }
  EXPECT_EQ(got.requests, want.requests);
  EXPECT_EQ(got.granted, want.granted);
  EXPECT_EQ(got.denied, want.denied);
  EXPECT_EQ(got.released, want.released);
  EXPECT_EQ(got.live, want.live);

  // Disabling drains the workers and flushes batched pool metrics; the
  // broker keeps working caller-threaded.
  engined.broker.disable_shard_engine();
  EXPECT_EQ(engined.broker.shard_engine(), nullptr);
  EXPECT_TRUE(
      engined.broker.commit(engined.spec(1e6, {seconds(200), seconds(230)}),
                            "")
          .ok());
}

// --- Stress (TSan target) ---------------------------------------------------

TEST(ShardEngineStress, ConcurrentMixedTrafficLeavesZeroResidual) {
  EngineFixture f;
  f.broker.enable_shard_engine(3);

  // Two tunnels for cross-tunnel batches.
  std::vector<TunnelId> tunnels;
  for (int t = 0; t < 2; ++t) {
    ResSpec agg = f.spec(20e6, {0, seconds(600)});
    agg.is_tunnel = true;
    auto tid = f.broker.register_tunnel(agg);
    ASSERT_TRUE(tid.ok());
    ASSERT_TRUE(f.broker.find_tunnel(*tid)->authorize(kAlice).ok());
    tunnels.push_back(*tid);
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 40;
  std::atomic<std::uint64_t> granted{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<ReservationId> mine;
      for (int i = 0; i < kRounds; ++i) {
        const std::string tag =
            "w" + std::to_string(t) + "-" + std::to_string(i);
        switch (i % 4) {
          case 0: {  // single commit (kept for a while, then released)
            const SimTime start = seconds((t * kRounds + i) % 40);
            auto id = f.broker.commit(
                f.spec(4e6, {start, start + seconds(25)}), "");
            if (id.ok()) {
              granted.fetch_add(1, std::memory_order_relaxed);
              mine.push_back(*id);
            }
            break;
          }
          case 1: {  // batch commit, released immediately
            std::vector<ResSpec> specs;
            for (int j = 0; j < 5; ++j) {
              const SimTime start = seconds((t * 11 + i * 3 + j) % 45);
              specs.push_back(f.spec(3e6, {start, start + seconds(15)}));
            }
            for (const auto& r : f.broker.commit_batch(specs, "")) {
              if (r.ok()) {
                granted.fetch_add(1, std::memory_order_relaxed);
                ASSERT_TRUE(f.broker.release(*r).ok());
              }
            }
            break;
          }
          case 2: {  // cross-tunnel batch, released per flow
            std::vector<BandwidthBroker::TunnelFlowRequest> flows;
            for (int j = 0; j < 4; ++j) {
              flows.push_back(
                  {tunnels[static_cast<std::size_t>(j) % tunnels.size()],
                   {tag + "-" + std::to_string(j), kAlice,
                    {0, seconds(60)}, 1e6}});
            }
            const auto statuses = f.broker.allocate_across_tunnels(flows);
            for (std::size_t j = 0; j < statuses.size(); ++j) {
              if (statuses[j].ok()) {
                (void)f.broker.find_tunnel(flows[j].tunnel)
                    ->release(flows[j].flow.sub_id);
              }
            }
            break;
          }
          default: {  // headroom reads race the writers
            (void)f.broker.headroom({seconds(i % 40), seconds(i % 40 + 10)});
            for (const auto& tid : tunnels) {
              (void)f.broker.find_tunnel(tid)->headroom({0, seconds(60)});
            }
            break;
          }
        }
        if (mine.size() > 3) {
          ASSERT_TRUE(f.broker.release(mine.front()).ok());
          mine.erase(mine.begin());
        }
      }
      for (const auto& id : mine) ASSERT_TRUE(f.broker.release(id).ok());
    });
  }
  for (auto& w : workers) w.join();

  // Zero residual: every grant released, pools whole, queues drained.
  EXPECT_EQ(f.broker.reservation_count(), 0u);
  for (SimTime t = 0; t <= seconds(80); t += seconds(1)) {
    ASSERT_EQ(f.broker.committed_at(t), 0.0) << t;
  }
  for (const auto& tid : tunnels) {
    const Tunnel* tunnel = f.broker.find_tunnel(tid);
    EXPECT_EQ(tunnel->active_allocations(), 0u);
    EXPECT_DOUBLE_EQ(tunnel->headroom({0, seconds(60)}), 20e6);
  }
  EXPECT_EQ(f.broker.shard_engine()->queue_depth(), 0u);
  const auto c = f.broker.counters();
  EXPECT_EQ(c.granted, granted.load());
  EXPECT_EQ(c.granted, c.released);
}

// --- Crash recovery mid-stream ----------------------------------------------

TEST(ShardEngineRecovery, EngineWrittenWalReplaysEveryAckedGrant) {
  EngineFixture f;
  const std::string wal_path =
      ::testing::TempDir() + "bb_shard_engine_crash.wal";
  const std::string snap_path =
      ::testing::TempDir() + "bb_shard_engine_crash.snapshot";
  std::remove(wal_path.c_str());
  std::remove(snap_path.c_str());
  auto opened = WriteAheadLog::open(wal_path);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<WriteAheadLog> wal = std::move(*opened);
  f.broker.attach_wal(wal.get());
  f.broker.enable_shard_engine(3);

  // Concurrent admit/release traffic through the engine; every ack is
  // remembered so the recovered broker can be audited against it.
  std::mutex acked_mutex;
  std::set<ReservationId> acked_live;
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      std::vector<ReservationId> mine;
      for (int i = 0; i < 30; ++i) {
        const SimTime start = seconds((t * 13 + i * 4) % 50);
        auto id =
            f.broker.commit(f.spec(3e6, {start, start + seconds(30)}), "");
        if (id.ok()) {
          mine.push_back(*id);
          std::lock_guard lock(acked_mutex);
          acked_live.insert(*id);
        }
        if (mine.size() > 5) {
          ASSERT_TRUE(f.broker.release(mine.front()).ok());
          {
            std::lock_guard lock(acked_mutex);
            acked_live.erase(mine.front());
          }
          mine.erase(mine.begin());
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  ASSERT_FALSE(acked_live.empty());

  // Crash mid-stream: drop the WAL object cold — no snapshot, no
  // truncation, engine still running. The file keeps exactly the acked
  // stream.
  f.broker.attach_wal(nullptr);
  wal.reset();

  EngineFixture fresh_f;
  auto report = recover_broker(fresh_f.broker, snap_path, wal_path);
  ASSERT_TRUE(report.ok()) << report.error().to_text();

  // Every live acked grant is present; every released one is gone; the
  // committed profile matches the live broker exactly.
  EXPECT_EQ(fresh_f.broker.reservation_count(),
            f.broker.reservation_count());
  for (const auto& id : acked_live) {
    EXPECT_NE(fresh_f.broker.find(id), nullptr) << id;
  }
  for (SimTime t = 0; t <= seconds(90); t += seconds(1)) {
    ASSERT_EQ(fresh_f.broker.committed_at(t), f.broker.committed_at(t)) << t;
  }
  // A recovered broker never reuses a handle.
  EXPECT_GE(fresh_f.broker.next_id_value(), f.broker.next_id_value());
}

}  // namespace
}  // namespace e2e::bb
