#include "policy/policy_server.hpp"

#include <gtest/gtest.h>

#include "policy/acl.hpp"
#include "policy/cas.hpp"
#include "policy/group_server.hpp"

namespace e2e::policy {
namespace {

PolicyServer make_server(const char* policy_src) {
  return PolicyServer("DomainA", Policy::compile(policy_src).value());
}

TEST(PolicyServer, GrantsAndAugments) {
  PolicyServer server = make_server("If User = Alice Return GRANT\nReturn DENY");
  server.add_static_augmentation({"TE.excess", "drop"});
  server.add_augmentation_rule(
      [](const EvalContext& ctx, std::vector<Augmentation>& out) {
        if (ctx.get("BW").is_number() && ctx.get("BW").as_number() > 5e6) {
          out.push_back({"Cost.offer", "premium"});
        }
      });

  EvalContext ctx;
  ctx.set_user("Alice");
  ctx.set_bandwidth(10e6);
  const PolicyReply reply = server.decide(ctx);
  EXPECT_EQ(reply.decision, Decision::kGrant);
  ASSERT_EQ(reply.augmentations.size(), 2u);
  EXPECT_EQ(reply.augmentations[0], (Augmentation{"TE.excess", "drop"}));
  EXPECT_EQ(reply.augmentations[1], (Augmentation{"Cost.offer", "premium"}));
}

TEST(PolicyServer, DenialCarriesReasonAndNoAugmentations) {
  PolicyServer server = make_server("If User = Alice Return GRANT\nReturn DENY");
  server.add_static_augmentation({"TE.excess", "drop"});
  EvalContext ctx;
  ctx.set_user("Bob");
  const PolicyReply reply = server.decide(ctx);
  EXPECT_EQ(reply.decision, Decision::kDeny);
  EXPECT_FALSE(reply.reason.empty());
  EXPECT_TRUE(reply.augmentations.empty());
}

TEST(PolicyServer, NoDecisionBecomesDeny) {
  PolicyServer server = make_server("If User = Alice Return GRANT");
  EvalContext ctx;
  ctx.set_user("Bob");
  const PolicyReply reply = server.decide(ctx);
  EXPECT_EQ(reply.decision, Decision::kDeny);
  EXPECT_NE(reply.reason.find("closed-world"), std::string::npos);
}

TEST(PolicyServer, EvaluationFailureIsConservativeDeny) {
  PolicyServer server = make_server("If Unknown_Pred(x) Return GRANT");
  const PolicyReply reply = server.decide(EvalContext{});
  EXPECT_EQ(reply.decision, Decision::kDeny);
  EXPECT_NE(reply.reason.find("evaluation failed"), std::string::npos);
}

TEST(GroupServer, MembershipLifecycle) {
  GroupServer gs("LBNL group server");
  const auto alice = crypto::DistinguishedName::make("Alice", "ANL");
  const auto bob = crypto::DistinguishedName::make("Bob", "ANL");
  gs.add_member("physicists", alice);
  EXPECT_TRUE(gs.validate("physicists", alice));
  EXPECT_FALSE(gs.validate("physicists", bob));
  EXPECT_FALSE(gs.validate("admins", alice));
  gs.remove_member("physicists", alice);
  EXPECT_FALSE(gs.validate("physicists", alice));
  EXPECT_EQ(gs.lookups(), 4u);
}

TEST(GroupServer, BacksAccreditedPhysicistPredicate) {
  GroupServer gs("group-server-P");
  const auto alice = crypto::DistinguishedName::make("Alice", "ANL");
  gs.add_member("physicists", alice);

  const Policy p =
      Policy::compile("If Accredited_Physicist(requestor) Return GRANT\n"
                      "Return DENY")
          .value();
  EvalContext ctx;
  ctx.register_predicate("Accredited_Physicist",
                         [&](std::span<const Value>) {
                           return Value(gs.validate("physicists", alice));
                         });
  EXPECT_EQ(p.decide(ctx).value(), Decision::kGrant);
}

TEST(Cas, GridLoginIssuesCapabilityCert) {
  Rng rng(808);
  CommunityAuthorizationServer cas("ESnet", rng, {0, hours(1000)});
  const crypto::KeyPair proxy = crypto::generate_keypair(rng, 512);
  const auto alice = crypto::DistinguishedName::make("Alice", "ANL");

  const crypto::Certificate cert =
      cas.grid_login(alice, proxy.pub, {0, hours(24)});
  EXPECT_TRUE(cert.is_capability_certificate());
  EXPECT_EQ(cert.subject(), alice);
  EXPECT_EQ(cert.issuer(), cas.dn());
  EXPECT_EQ(cert.subject_public_key(), proxy.pub);
  EXPECT_TRUE(cert.verify_signature(cas.public_key()));
  const auto caps = cert.capabilities();
  ASSERT_EQ(caps.size(), 1u);
  EXPECT_EQ(caps[0], "Capabilities of ESnet");
  EXPECT_EQ(cert.extension_value(crypto::kExtCommunity).value_or(""), "ESnet");
}

TEST(Cas, CustomCapabilityList) {
  Rng rng(809);
  CommunityAuthorizationServer cas("ESnet", rng, {0, hours(1000)});
  const crypto::KeyPair proxy = crypto::generate_keypair(rng, 512);
  const crypto::Certificate cert = cas.grid_login(
      crypto::DistinguishedName::make("Alice", "ANL"), proxy.pub,
      {0, hours(24)}, {"reserve-bw", "use-tunnel"});
  const auto caps = cert.capabilities();
  ASSERT_EQ(caps.size(), 2u);
  EXPECT_EQ(caps[0], "reserve-bw");
  EXPECT_EQ(caps[1], "use-tunnel");
}

TEST(Cas, RevocationFlows) {
  Rng rng(810);
  CommunityAuthorizationServer cas("ESnet", rng, {0, hours(1000)});
  const crypto::KeyPair proxy = crypto::generate_keypair(rng, 512);
  const crypto::Certificate cert = cas.grid_login(
      crypto::DistinguishedName::make("Alice", "ANL"), proxy.pub,
      {0, hours(24)});
  EXPECT_FALSE(cas.is_revoked(cert.serial()));
  cas.revoke(cert.serial());
  EXPECT_TRUE(cas.is_revoked(cert.serial()));
}

TEST(Acl, AllowList) {
  AccessControlList acl;
  const auto alice = crypto::DistinguishedName::make("Alice", "ANL");
  const auto bob = crypto::DistinguishedName::make("Bob", "ANL");
  acl.add("network", alice);
  EXPECT_TRUE(acl.permits("network", alice));
  EXPECT_FALSE(acl.permits("network", bob));
  EXPECT_FALSE(acl.permits("cpu", alice));
  EXPECT_EQ(acl.size("network"), 1u);
}

TEST(Acl, DenyList) {
  AccessControlList acl(AccessControlList::Mode::kDenyList);
  const auto mallory = crypto::DistinguishedName::make("Mallory", "Evil");
  const auto alice = crypto::DistinguishedName::make("Alice", "ANL");
  acl.add("network", mallory);
  EXPECT_FALSE(acl.permits("network", mallory));
  EXPECT_TRUE(acl.permits("network", alice));
}

TEST(Acl, RemoveRestoresDefault) {
  AccessControlList acl;
  const auto alice = crypto::DistinguishedName::make("Alice", "ANL");
  acl.add("network", alice);
  acl.remove("network", alice);
  EXPECT_FALSE(acl.permits("network", alice));
}

}  // namespace
}  // namespace e2e::policy
