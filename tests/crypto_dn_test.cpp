#include "crypto/dn.hpp"

#include <gtest/gtest.h>

#include <map>

namespace e2e::crypto {
namespace {

TEST(Dn, ParseBasic) {
  const auto dn = DistinguishedName::parse("CN=Alice, O=Argonne, C=US");
  ASSERT_TRUE(dn.ok());
  EXPECT_EQ(dn->common_name(), "Alice");
  EXPECT_EQ(dn->organization(), "Argonne");
  EXPECT_EQ(dn->get("C"), "US");
}

TEST(Dn, CanonicalFormStripsSpaces) {
  const auto dn = DistinguishedName::parse("  CN = Alice ,  O = Argonne ");
  ASSERT_TRUE(dn.ok());
  EXPECT_EQ(dn->to_string(), "CN=Alice,O=Argonne");
}

TEST(Dn, TypeIsCaseInsensitive) {
  const auto dn = DistinguishedName::parse("cn=Alice,o=Argonne");
  ASSERT_TRUE(dn.ok());
  EXPECT_EQ(dn->to_string(), "CN=Alice,O=Argonne");
}

TEST(Dn, ValueCasePreserved) {
  const auto dn = DistinguishedName::parse("CN=alice");
  ASSERT_TRUE(dn.ok());
  EXPECT_EQ(dn->common_name(), "alice");
}

TEST(Dn, OrderSignificant) {
  const auto a = DistinguishedName::parse("CN=X,O=Y").value();
  const auto b = DistinguishedName::parse("O=Y,CN=X").value();
  EXPECT_NE(a, b);
}

TEST(Dn, ParseErrors) {
  EXPECT_FALSE(DistinguishedName::parse("").ok());
  EXPECT_FALSE(DistinguishedName::parse("no-equals").ok());
  EXPECT_FALSE(DistinguishedName::parse("=value").ok());
  EXPECT_FALSE(DistinguishedName::parse(",,,").ok());
}

TEST(Dn, MakeBuilder) {
  const auto dn = DistinguishedName::make("BB-A", "DomainA");
  EXPECT_EQ(dn.to_string(), "CN=BB-A,O=DomainA,C=US");
}

TEST(Dn, RoundTripThroughText) {
  const auto dn = DistinguishedName::make("Charlie", "DomainC", "DE");
  const auto back = DistinguishedName::parse(dn.to_string());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, dn);
}

TEST(Dn, GetMissingAttributeEmpty) {
  const auto dn = DistinguishedName::make("Alice", "ANL");
  EXPECT_EQ(dn.get("OU"), "");
}

TEST(Dn, UsableAsMapKey) {
  std::map<DistinguishedName, int> m;
  m[DistinguishedName::make("A", "X")] = 1;
  m[DistinguishedName::make("B", "X")] = 2;
  EXPECT_EQ(m.at(DistinguishedName::make("A", "X")), 1);
  EXPECT_EQ(m.at(DistinguishedName::make("B", "X")), 2);
  EXPECT_EQ(m.size(), 2u);
}

}  // namespace
}  // namespace e2e::crypto
