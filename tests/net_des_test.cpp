#include "net/des.hpp"

#include <gtest/gtest.h>

namespace e2e::net {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 100);
}

TEST(EventQueue, StableForEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int ran = 0;
  q.schedule_at(10, [&] { ++ran; });
  q.schedule_at(20, [&] { ++ran; });
  q.schedule_at(21, [&] { ++ran; });
  EXPECT_EQ(q.run_until(20), 2u);  // inclusive boundary
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, HandlersCanScheduleMore) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule_in(10, chain);
  };
  q.schedule_at(0, chain);
  q.run_until(1000);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.now(), 1000);
}

TEST(EventQueue, PastSchedulingClampsToNow) {
  EventQueue q;
  SimTime seen = -1;
  q.schedule_at(50, [&] {
    q.schedule_at(10, [&] { seen = q.now(); });  // in the past
  });
  q.run_all();
  EXPECT_EQ(seen, 50);
}

TEST(EventQueue, ScheduleInUsesCurrentTime) {
  EventQueue q;
  SimTime seen = -1;
  q.schedule_at(100, [&] { q.schedule_in(25, [&] { seen = q.now(); }); });
  q.run_all();
  EXPECT_EQ(seen, 125);
}

}  // namespace
}  // namespace e2e::net
