// Reply transport over the authenticated channel: every inter-BB exchange
// (request down, reply up) is sealed and sequence-checked, so message
// counters are symmetric and long request series keep both channel
// directions in sync.
#include <gtest/gtest.h>

#include "testing_world.hpp"

namespace e2e::sig {
namespace {

using testing::ChainWorld;
using testing::ChainWorldConfig;
using testing::WorldUser;

TEST(ReplyTransport, MessageCountersSymmetric) {
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  world.fabric().reset_counters();
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 1e6), 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_TRUE(outcome->reply.granted);
  // user<->A: 2, A<->B: 2, B<->C: 2.
  EXPECT_EQ(outcome->messages, 6u);
  EXPECT_EQ(world.fabric().between("DomainA", "DomainB").messages, 2u);
  EXPECT_EQ(world.fabric().between("DomainB", "DomainC").messages, 2u);
  // Reply bytes are the real encoded reply, not a placeholder.
  EXPECT_GT(world.fabric().between("DomainB", "DomainC").bytes,
            outcome->reply.encode().size());
}

TEST(ReplyTransport, ManySequentialRequestsKeepChannelsInSync) {
  // 30 request/reply cycles over the same sessions: any sequence-number
  // desynchronization between the two directions would surface as an
  // authentication failure.
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  for (int i = 0; i < 30; ++i) {
    const auto msg = world.engine().build_user_request(
        alice.credentials(), world.spec(alice, 1e6), 0);
    const auto outcome = world.engine().reserve(*msg, seconds(1));
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(outcome->reply.granted) << "round " << i << ": "
                                        << outcome->reply.denial.to_text();
    ASSERT_TRUE(world.engine().release_end_to_end(outcome->reply).ok());
  }
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(world.broker(i).reservation_count(), 0u);
  }
}

TEST(ReplyTransport, DenialDetailSurvivesTheWire) {
  ChainWorldConfig config;
  config.policies = {"Return GRANT",
                     "If BW <= 1Mb/s Return GRANT\nReturn DENY",
                     "Return GRANT"};
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 10e6), 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  ASSERT_FALSE(outcome->reply.granted);
  // The denial decoded at the source still carries the origin and reason
  // produced two hops downstream.
  EXPECT_EQ(outcome->reply.denial.origin, "DomainB");
  EXPECT_EQ(outcome->reply.denial.code, ErrorCode::kPolicyDenied);
  EXPECT_FALSE(outcome->reply.denial.message.empty());
}

}  // namespace
}  // namespace e2e::sig
