// bbstat — top for a running bbd daemon.
//
// Polls a bbd admin endpoint (bbd --admin ..., docs/DAEMON.md "Live
// operations") and renders a live operator view: health, RPC throughput
// and wall-clock latency quantiles, SLO burn rate, per-shard queue/busy
// introspection and per-connection IO. One-shot by default; --watch N
// redraws every N seconds like top(1). --get PATH fetches one admin route
// and prints the raw body (scripting / piping into tracedump).
//
// Usage:
//   bbstat <tcp:HOST:PORT|unix:/PATH> [--watch SECONDS] [--iterations N]
//          [--get /metrics|/metrics.json|/healthz|/readyz|/statz|/tracez]
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/json_reader.hpp"
#include "net/stream_socket.hpp"

namespace {

using e2e::net::Endpoint;
using e2e::net::StreamSocket;

struct HttpReply {
  int status = 0;
  std::string body;
};

/// One admin exchange: connect, GET, read to EOF (the plane closes after
/// every response).
e2e::Result<HttpReply> fetch(const Endpoint& endpoint,
                             const std::string& path) {
  auto socket = StreamSocket::connect(endpoint);
  if (!socket.ok()) return socket.error();
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (auto sent = socket.value().send_raw(e2e::BytesView(
          reinterpret_cast<const std::uint8_t*>(request.data()),
          request.size()));
      !sent.ok()) {
    return sent.error();
  }
  std::string wire;
  char chunk[16384];
  while (true) {
    const ssize_t n = ::read(socket.value().fd(), chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return e2e::make_error(e2e::ErrorCode::kUnavailable,
                             std::string("read(): ") + std::strerror(errno));
    }
    if (n == 0) break;
    wire.append(chunk, static_cast<std::size_t>(n));
  }
  const std::size_t head_end = wire.find("\r\n\r\n");
  if (head_end == std::string::npos || wire.rfind("HTTP/", 0) != 0) {
    return e2e::make_error(e2e::ErrorCode::kBadMessage,
                           "malformed admin response");
  }
  HttpReply reply;
  const std::size_t sp = wire.find(' ');
  reply.status = sp == std::string::npos
                     ? 0
                     : std::atoi(wire.c_str() + sp + 1);
  reply.body = wire.substr(head_end + 4);
  return reply;
}

/// A flat view of one Prometheus text exposition: "family{labels}" -> v.
using MetricSeries = std::map<std::string, double>;

MetricSeries parse_metrics_text(const std::string& text) {
  MetricSeries series;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0) continue;
    series[line.substr(0, sp)] = std::atof(line.c_str() + sp + 1);
  }
  return series;
}

/// Sum of every series in `family` (exact braces-prefix match).
double family_sum(const MetricSeries& series, const std::string& family) {
  double total = 0;
  for (const auto& [key, value] : series) {
    if (key == family || key.rfind(family + "{", 0) == 0) total += value;
  }
  return total;
}

double series_value(const MetricSeries& series, const std::string& key) {
  const auto it = series.find(key);
  return it == series.end() ? 0 : it->second;
}

const e2e::json::Value* object_array(const e2e::json::Value& doc,
                                     const char* key) {
  const e2e::json::Value* member = doc.find(key);
  return member != nullptr && member->is_array() ? member : nullptr;
}

double number_or(const e2e::json::Value& object, const char* key,
                 double fallback) {
  const e2e::json::Value* member = object.find(key);
  return member != nullptr && member->is_number() ? member->number
                                                  : fallback;
}

std::string string_or(const e2e::json::Value& object, const char* key,
                      const char* fallback) {
  const e2e::json::Value* member = object.find(key);
  return member != nullptr && member->is_string() ? member->string
                                                  : fallback;
}

void render(const Endpoint& endpoint, const HttpReply& healthz,
            const MetricSeries& now, const MetricSeries& prev,
            double interval_s, const std::string& statz) {
  std::printf("bbd @ %s — %s\n", endpoint.to_string().c_str(),
              healthz.status == 200 ? "healthy" : "UNHEALTHY");
  const double frames_rx =
      series_value(now, "e2e_net_frames_total{dir=\"rx\"}");
  const double frames_tx =
      series_value(now, "e2e_net_frames_total{dir=\"tx\"}");
  const double prev_rx =
      series_value(prev, "e2e_net_frames_total{dir=\"rx\"}");
  const double prev_tx =
      series_value(prev, "e2e_net_frames_total{dir=\"tx\"}");
  std::printf(
      "conns %.0f  frames rx/tx %.0f/%.0f  bytes rx+tx %.0f  queued %.0f\n",
      series_value(now, "e2e_net_conns_active"),
      frames_rx, frames_tx,
      family_sum(now, "e2e_net_stream_bytes_total"),
      series_value(now, "e2e_net_write_queue_bytes"));
  if (interval_s > 0 && !prev.empty()) {
    std::printf("rate  rx %.1f/s  tx %.1f/s\n",
                (frames_rx - prev_rx) / interval_s,
                (frames_tx - prev_tx) / interval_s);
  }
  std::printf(
      "rpc wall  p50 %.0fus  p95 %.0fus  p99 %.0fus   burn %.2fx (alerts "
      "%.0f)\n",
      series_value(now,
                   "e2e_slo_latency_quantile_us{objective=\"bbd.rpc.wall\","
                   "quantile=\"p50\"}"),
      series_value(now,
                   "e2e_slo_latency_quantile_us{objective=\"bbd.rpc.wall\","
                   "quantile=\"p95\"}"),
      series_value(now,
                   "e2e_slo_latency_quantile_us{objective=\"bbd.rpc.wall\","
                   "quantile=\"p99\"}"),
      series_value(now,
                   "e2e_slo_burn_rate{objective=\"bbd.rpc\",window=\"60s\"}"),
      family_sum(now, "e2e_slo_burn_alerts_total"));

  auto parsed = e2e::json::parse(statz);
  if (!parsed.ok()) {
    std::printf("statz: unparseable (%s)\n",
                parsed.error().to_text().c_str());
    return;
  }
  if (const auto* shards = object_array(parsed.value(), "shards")) {
    std::printf("%-10s %6s %6s %8s %10s\n", "SHARD", "DEPTH", "HIGH",
                "TASKS", "BUSY_US");
    for (const auto& shard : shards->array) {
      double tasks = 0;
      double busy = 0;
      if (const auto* workers = object_array(shard, "workers")) {
        for (const auto& worker : workers->array) {
          tasks += number_or(worker, "tasks_total", 0);
          busy += number_or(worker, "busy_us_total", 0);
        }
      }
      std::printf("%-10s %6.0f %6.0f %8.0f %10.0f\n",
                  string_or(shard, "domain", "?").c_str(),
                  number_or(shard, "queue_depth", 0),
                  number_or(shard, "queue_depth_highwater", 0), tasks, busy);
    }
  }
  if (const auto* conns = object_array(parsed.value(), "connections")) {
    std::printf("%-6s %-6s %10s %10s %8s %8s %8s %9s %6s\n", "CONN", "VIA",
                "BYTES_RX", "BYTES_TX", "FR_RX", "FR_TX", "QUEUED",
                "IN_FLIGHT", "WINDOW");
    for (const auto& conn : conns->array) {
      std::printf("%-6.0f %-6s %10.0f %10.0f %8.0f %8.0f %8.0f %9.0f %6.0f\n",
                  number_or(conn, "id", 0),
                  string_or(conn, "transport", "?").c_str(),
                  number_or(conn, "bytes_rx", 0),
                  number_or(conn, "bytes_tx", 0),
                  number_or(conn, "frames_rx", 0),
                  number_or(conn, "frames_tx", 0),
                  number_or(conn, "queued_bytes", 0),
                  number_or(conn, "in_flight", 0),
                  number_or(conn, "window", 1));
    }
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <tcp:HOST:PORT|unix:/PATH> [--watch SECONDS]"
               " [--iterations N] [--get PATH]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  auto endpoint = Endpoint::parse(argv[1]);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "bbstat: bad endpoint '%s': %s\n", argv[1],
                 endpoint.error().to_text().c_str());
    return 2;
  }
  double watch_s = 0;
  long iterations = -1;  // -1 = forever (watch) / once (no watch)
  std::string get_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--watch") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      watch_s = std::atof(value);
    } else if (arg == "--iterations") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      iterations = std::atol(value);
    } else if (arg == "--get") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      get_path = value;
    } else {
      return usage(argv[0]);
    }
  }

  if (!get_path.empty()) {
    auto reply = fetch(endpoint.value(), get_path);
    if (!reply.ok()) {
      std::fprintf(stderr, "bbstat: %s\n",
                   reply.error().to_text().c_str());
      return 1;
    }
    std::fwrite(reply.value().body.data(), 1, reply.value().body.size(),
                stdout);
    return reply.value().status == 200 ? 0 : 1;
  }

  MetricSeries prev;
  long remaining = iterations;
  while (true) {
    auto healthz = fetch(endpoint.value(), "/healthz");
    auto metrics = fetch(endpoint.value(), "/metrics");
    auto statz = fetch(endpoint.value(), "/statz");
    if (!healthz.ok() || !metrics.ok() || !statz.ok()) {
      const e2e::Error& error = !healthz.ok()  ? healthz.error()
                                : !metrics.ok() ? metrics.error()
                                                : statz.error();
      std::fprintf(stderr, "bbstat: scrape failed: %s\n",
                   error.to_text().c_str());
      return 1;
    }
    const MetricSeries now = parse_metrics_text(metrics.value().body);
    if (watch_s > 0) std::printf("\x1b[H\x1b[2J");
    render(endpoint.value(), healthz.value(), now, prev, watch_s,
           statz.value().body);
    std::fflush(stdout);
    prev = now;
    if (watch_s <= 0) break;
    if (remaining > 0 && --remaining == 0) break;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(watch_s));
  }
  return 0;
}
