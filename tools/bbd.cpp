// bbd — the standalone bandwidth-broker daemon.
//
// Hosts a deterministic ChainWorld behind real sockets (TCP and/or
// UNIX-domain) speaking the sealed TLV RPC of docs/DAEMON.md. Prints one
// "listening on <endpoint>" line per bound listener on stdout (ephemeral
// TCP ports resolved), then serves until SIGINT/SIGTERM or a kShutdown
// request.
//
// With --admin, a second plaintext listener serves the telemetry plane
// (GET /metrics, /metrics.json, /healthz, /readyz, /statz, /tracez — see
// docs/OBSERVABILITY.md) and prints one "admin on <endpoint>" line per
// bound admin listener. On graceful drain the daemon appends an audit
// "shutdown" record and writes a final metrics snapshot to --metrics-out
// (default bbd.metrics.json; pass an empty string to disable).
//
// Usage:
//   bbd [--listen tcp:HOST:PORT | --listen unix:/PATH]...
//       [--admin tcp:HOST:PORT | --admin unix:/PATH]...
//       [--domains N] [--seed N] [--admission-threads N]
//       [--rpc-workers N] [--durability-dir DIR] [--recover]
//       [--metrics-out PATH] [--idle-timeout-ms N] [--force-poll]
//       [--auth-seed N]
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/bbd_service.hpp"

namespace {

e2e::net::BbdService* g_service = nullptr;

void on_signal(int) {
  if (g_service != nullptr) g_service->shutdown_gracefully();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--listen tcp:HOST:PORT|unix:/PATH]..."
               " [--admin tcp:HOST:PORT|unix:/PATH]... [--domains N]"
               " [--seed N] [--admission-threads N] [--rpc-workers N]"
               " [--durability-dir DIR] [--recover] [--metrics-out PATH]"
               " [--idle-timeout-ms N] [--force-poll] [--auth-seed N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  e2e::net::BbdService::Options options;
  // Tool-level default; the embedding service default stays "disabled" so
  // in-process harnesses never drop files. --metrics-out '' opts out.
  options.metrics_out = "bbd.metrics.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--listen") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      auto endpoint = e2e::net::Endpoint::parse(value);
      if (!endpoint.ok()) {
        std::fprintf(stderr, "bbd: bad endpoint '%s': %s\n", value,
                     endpoint.error().to_text().c_str());
        return 2;
      }
      options.listen_on.push_back(endpoint.value());
    } else if (arg == "--admin") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      auto endpoint = e2e::net::Endpoint::parse(value);
      if (!endpoint.ok()) {
        std::fprintf(stderr, "bbd: bad admin endpoint '%s': %s\n", value,
                     endpoint.error().to_text().c_str());
        return 2;
      }
      options.admin_on.push_back(endpoint.value());
    } else if (arg == "--admission-threads") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      options.world.admission_threads = std::strtoull(value, nullptr, 10);
    } else if (arg == "--rpc-workers") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      options.rpc_workers = std::strtoull(value, nullptr, 10);
    } else if (arg == "--metrics-out") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      options.metrics_out = value;
    } else if (arg == "--domains") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      options.world.domains = std::strtoull(value, nullptr, 10);
    } else if (arg == "--seed") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      options.world.seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--durability-dir") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      options.durability_dir = value;
    } else if (arg == "--recover") {
      options.recover = true;
    } else if (arg == "--idle-timeout-ms") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      options.idle_timeout =
          std::chrono::milliseconds(std::strtoll(value, nullptr, 10));
    } else if (arg == "--force-poll") {
      options.force_poll = true;
    } else if (arg == "--auth-seed") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      options.auth_seed = std::strtoull(value, nullptr, 10);
    } else {
      return usage(argv[0]);
    }
  }
  if (options.listen_on.empty()) {
    auto endpoint = e2e::net::Endpoint::parse("tcp:127.0.0.1:0");
    options.listen_on.push_back(endpoint.value());
  }

  e2e::net::BbdService service(std::move(options));
  if (auto started = service.start(); !started.ok()) {
    std::fprintf(stderr, "bbd: start failed: %s\n",
                 started.error().to_text().c_str());
    return 1;
  }
  g_service = &service;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);
  for (const auto& endpoint : service.bound_endpoints()) {
    std::printf("listening on %s\n", endpoint.to_string().c_str());
  }
  for (const auto& endpoint : service.admin_endpoints()) {
    std::printf("admin on %s\n", endpoint.to_string().c_str());
  }
  std::printf("poller %s\n", service.poller_name());
  std::fflush(stdout);
  service.wait();
  g_service = nullptr;
  return 0;
}
