// tracedump: run one reservation through a deterministic ChainWorld and
// render everything the observability layer knows about it — the
// end-to-end trace tree reconstructed by the destination-side
// SpanCollector from the per-domain recorder exports, the hash-chained
// audit records that join the trace, and the SLO verdicts derived from
// the virtual clock.
//
// Usage:
//   tracedump [--engine hopbyhop|source|tunnel] [--domains N] [--faults]
//   tracedump --from-json PATH|-
//
// --faults installs a lossy fault profile plus the retry policy, so the
// dumped trace shows retransmissions (retry.attempts annotations) while
// still reconstructing a single trace id. Output is deterministic for a
// given flag combination.
//
// --from-json renders trace trees from a live daemon's /tracez document
// instead of running a reservation locally:
//   bbstat unix:/tmp/bbd.admin.sock --get /tracez | tracedump --from-json -
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/json_reader.hpp"
#include "kit/chain_world.hpp"
#include "obs/audit.hpp"
#include "obs/collector.hpp"
#include "obs/instruments.hpp"
#include "obs/slo.hpp"

using namespace e2e;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--engine hopbyhop|source|tunnel] [--domains N] "
               "[--faults] | %s --from-json PATH|-\n",
               argv0, argv0);
  return 2;
}

/// Render the admin plane's /tracez document (obs::tracez_json wire
/// format) as indented trace trees, one per trace.
int dump_from_json(const std::string& path) {
  std::string text;
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(path, std::ios::binary);
    if (!file.is_open()) {
      std::fprintf(stderr, "tracedump: cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }
  auto parsed = json::parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "tracedump: %s\n",
                 parsed.error().to_text().c_str());
    return 1;
  }
  const json::Value* traces = parsed.value().find("traces");
  if (traces == nullptr || !traces->is_array()) {
    std::fprintf(stderr, "tracedump: document has no \"traces\" array\n");
    return 1;
  }
  std::size_t total_spans = 0;
  for (const json::Value& trace : traces->array) {
    const json::Value* id = trace.find("trace_id");
    const json::Value* spans = trace.find("spans");
    if (id == nullptr || spans == nullptr || !spans->is_array()) continue;
    std::printf("trace %s (%zu spans):\n", id->string.c_str(),
                spans->array.size());
    for (const json::Value& span : spans->array) {
      const json::Value* depth = span.find("depth");
      const json::Value* domain = span.find("domain");
      const json::Value* name = span.find("name");
      const json::Value* start = span.find("start_us");
      const json::Value* end = span.find("end_us");
      const json::Value* failed = span.find("failed");
      const int indent =
          depth != nullptr && depth->is_number()
              ? static_cast<int>(depth->number)
              : 0;
      const double duration =
          (end != nullptr ? end->number : 0) -
          (start != nullptr ? start->number : 0);
      std::printf("%*s[%s] %s %.0fus%s", 2 + 2 * indent, "",
                  domain != nullptr ? domain->string.c_str() : "?",
                  name != nullptr ? name->string.c_str() : "?", duration,
                  failed != nullptr && failed->boolean ? " FAILED" : "");
      const json::Value* attributes = span.find("attributes");
      if (attributes != nullptr && !attributes->object.empty()) {
        std::printf(" {");
        bool first = true;
        for (const auto& [key, value] : attributes->object) {
          std::printf("%s%s=%s", first ? "" : ",", key.c_str(),
                      value.string.c_str());
          first = false;
        }
        std::printf("}");
      }
      std::printf("\n");
      ++total_spans;
    }
  }
  std::printf("traces: %zu, spans: %zu\n", traces->array.size(),
              total_spans);
  return 0;
}

struct Run {
  std::string trace_id;
  std::string objective;
  bool granted = false;
};

Run run_hopbyhop(kit::ChainWorld& world, const kit::WorldUser& user) {
  const bb::ResSpec spec = world.spec(user, 10e6, {0, minutes(10)});
  const auto msg =
      world.engine().build_user_request(user.credentials(), spec, 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  if (!outcome.ok()) return {};
  return {outcome->trace_id, "e2e.hopbyhop", outcome->reply.granted};
}

Run run_source(kit::ChainWorld& world, const kit::WorldUser& user) {
  const bb::ResSpec spec = world.spec(user, 10e6, {0, minutes(10)});
  const auto outcome = world.source_engine().reserve(
      world.names(), spec, user.identity_cert, user.identity_keys.priv,
      sig::SourceDomainEngine::Mode::kSequential, seconds(1));
  if (!outcome.ok()) return {};
  return {outcome->trace_id, "e2e.source", outcome->reply.granted};
}

Run run_tunnel(kit::ChainWorld& world, const kit::WorldUser& user) {
  bb::ResSpec agg = world.spec(user, 50e6, {0, seconds(3600)});
  agg.is_tunnel = true;
  const auto msg =
      world.engine().build_user_request(user.credentials(), agg, 0);
  const auto est = world.engine().reserve(*msg, seconds(1));
  if (!est.ok() || !est->reply.granted) return {};
  const auto flow = world.engine().reserve_in_tunnel(
      est->reply.tunnel_id, user.dn.to_string(), 5e6, {0, seconds(60)},
      seconds(2));
  if (!flow.ok()) return {};
  return {flow->trace_id, "e2e.tunnel", flow->reply.granted};
}

}  // namespace

int main(int argc, char** argv) {
  std::string engine = "hopbyhop";
  std::size_t domains = 3;
  bool faults = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--from-json") == 0 && i + 1 < argc) {
      return dump_from_json(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      engine = argv[++i];
    } else if (std::strcmp(argv[i], "--domains") == 0 && i + 1 < argc) {
      domains = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      faults = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (engine != "hopbyhop" && engine != "source" && engine != "tunnel") {
    return usage(argv[0]);
  }

  obs::MetricsRegistry::global().reset_values();
  obs::AuditLog::global().clear();

  kit::ChainWorldConfig config;
  config.domains = domains;
  if (faults) {
    config.fault_profile.drop = 0.25;
    config.fault_profile.duplicate = 0.1;
    config.retry_policy.max_attempts = 6;
  }
  kit::ChainWorld world(config);
  kit::WorldUser user = world.make_user("Alice", 0, /*with_capability=*/true,
                                        /*register_everywhere=*/true);

  Run run;
  if (engine == "hopbyhop") run = run_hopbyhop(world, user);
  if (engine == "source") run = run_source(world, user);
  if (engine == "tunnel") run = run_tunnel(world, user);
  if (run.trace_id.empty()) {
    std::fprintf(stderr, "tracedump: the %s reservation produced no trace\n",
                 engine.c_str());
    return 1;
  }

  std::printf("reservation %s via %s: %s\n\n", run.trace_id.c_str(),
              engine.c_str(), run.granted ? "GRANTED" : "DENIED");

  // 1. The end-to-end tree as the destination side reconstructs it from
  //    the per-domain exports (cross-domain links via remote.parent).
  obs::SpanCollector collector;
  world.collect(collector);
  std::printf("collected trace tree (stitched from %zu domain exports):\n%s\n",
              world.names().size(),
              collector.render_tree(run.trace_id).c_str());

  // 2. Audit records joined to this trace, as exported JSON lines, plus
  //    the chain verdict over the full export.
  const auto records = obs::AuditLog::global().records_for(run.trace_id);
  std::printf("audit records joined to %s (%zu):\n", run.trace_id.c_str(),
              records.size());
  for (const auto& record : records) {
    std::printf("  %s\n", record.to_jsonl().c_str());
  }
  const auto chain = obs::AuditLog::global().export_jsonl();
  const auto verified = obs::AuditLog::verify_chain(chain);
  if (verified.ok()) {
    std::printf("audit chain: OK (%zu records verified)\n\n", *verified);
  } else {
    std::printf("audit chain: BROKEN (%s)\n\n",
                verified.error().to_text().c_str());
  }

  // 3. SLO verdicts: quantile/error-rate objectives over the registry and
  //    the per-RAR setup budget against the collected root span.
  obs::SloTracker slos =
      obs::SloTracker::with_default_objectives(world.names());
  const auto reports = slos.evaluate(obs::MetricsRegistry::global());
  std::printf("slo verdicts:\n%s", obs::SloTracker::render(reports).c_str());
  const auto flat = collector.flatten(run.trace_id);
  if (!flat.empty()) {
    const std::string verdict =
        slos.setup_verdict(run.objective, flat.front().span);
    if (!verdict.empty()) std::printf("%s\n", verdict.c_str());
  }
  return 0;
}
