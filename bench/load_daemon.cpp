// Daemon throughput under a pipelined client fleet (ISSUE 10).
//
// load_broker prices admission with the engine in-process; this bench
// prices the same RAR churn through the full daemon stack — sealed TLV
// framing, the event loop, the RPC worker pool — and measures what wire
// pipelining buys. A fleet of C connections (one BbdClient per thread,
// each affine to its own RPC worker in the child) drives mini-batches of
// tunnel-flow RARs against a forked bbd:
//
//   serial     every call is one synchronous round trip (pipeline_depth
//              1, the pre-ISSUE-10 wire, byte-identical hello);
//   pipelined  hello() negotiates a depth-D window and each batch keeps D
//              sealed requests in flight per connection (call_async/wait).
//
// Both modes run the identical operation sequence: per batch, D
// kTunnelReserve flows into the connection's own established aggregate
// tunnel, then the D matching kTunnelRelease ops. Throughput is RAR ops/s
// across the fleet (a reserve and a release each count once); latencies
// are per-op wall-clock from call_async() to its wait() returning, so
// pipelined numbers include queueing — that is the operator-visible
// number.
//
// The RESULT line `daemon_pipeline_x=` (pipelined / serial RARs/s) is
// gated by scripts/bench_snapshot.sh — >= 3x on hosts with >= 4 cores,
// > 1x sanity on 2-3 cores, recorded-only on a single core (the client
// fleet, the loop thread and the workers all contend for one CPU, so the
// ratio measures oversubscription, not pipelining; same policy as
// load_broker's scaling gate).
//
// Usage: load_daemon [--smoke] [--json-out PATH]
//   --smoke     2 connections x depth 4, 50 batches (CI-sized)
//   --json-out  machine-readable summary; bench_snapshot.sh folds it into
//               BENCH_daemon.json under "load" (docs/PERFORMANCE.md)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "daemon_harness.hpp"
#include "net/bbd_client.hpp"
#include "sig/message.hpp"

using namespace e2e;
namespace bu = e2e::benchutil;

namespace {

struct Quantiles {
  double p50_us = 0;
  double p99_us = 0;
};

Quantiles quantiles(std::vector<double> samples) {
  if (samples.empty()) return {};
  std::sort(samples.begin(), samples.end());
  Quantiles q;
  q.p50_us = samples[samples.size() / 2];
  q.p99_us =
      samples[std::min(samples.size() - 1, (samples.size() * 99) / 100)];
  return q;
}

double elapsed_us(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

net::BbdRequest tunnel_reserve_request(const std::string& tunnel_id,
                                       const std::string& user_dn) {
  net::BbdRequest req;
  req.op = net::BbdOp::kTunnelReserve;
  req.stra = tunnel_id;
  req.strb = user_dn;
  req.f64a = 1e6;
  req.u64a = 0;
  req.u64b = static_cast<std::uint64_t>(seconds(600));
  req.f64b = static_cast<double>(seconds(2));
  return req;
}

net::BbdRequest tunnel_release_request(const std::string& tunnel_id,
                                       const std::string& sub_id) {
  net::BbdRequest req;
  req.op = net::BbdOp::kTunnelRelease;
  req.stra = tunnel_id;
  req.strb = sub_id;
  return req;
}

struct FleetResult {
  double rars_per_sec = 0;
  Quantiles latency;
  std::uint64_t ops = 0;
};

/// One connection's share of the load: establish a private aggregate
/// tunnel, then run `batches` mini-batches of `depth` reserve ops
/// followed by their `depth` releases. Both modes issue the identical
/// sequence through call_async/wait; `window` is what hello() negotiates
/// — with window 1 every call_async pumps its predecessor to completion
/// first, which is exactly the serial wire.
void run_connection(const bu::DaemonHarness& harness, std::size_t index,
                    std::uint64_t window, std::uint64_t depth,
                    std::size_t batches, std::atomic<bool>* failed,
                    std::vector<double>* samples) {
  auto connected = harness.connect(window);
  if (!connected.ok()) {
    failed->store(true);
    return;
  }
  net::BbdClient client = std::move(connected.value());
  if (!client.hello(false).ok()) {
    failed->store(true);
    return;
  }
  const auto dn = client.make_user("u" + std::to_string(index), 0);
  if (!dn.ok()) {
    failed->store(true);
    return;
  }
  net::BbdClient::ReserveArgs agg;
  agg.user = "u" + std::to_string(index);
  agg.rate = 1e9;
  agg.interval = {0, seconds(36000)};
  agg.is_tunnel = true;
  agg.at = seconds(1);
  const auto established = client.reserve(agg);
  if (!established.ok() || !established->reply.granted) {
    failed->store(true);
    return;
  }
  const std::string tunnel_id = established->reply.tunnel_id;

  samples->reserve(batches * depth * 2);
  std::vector<net::BbdClient::Call> calls(depth);
  std::vector<std::chrono::steady_clock::time_point> starts(depth);
  std::vector<std::string> sub_ids(depth);
  for (std::size_t b = 0; b < batches; ++b) {
    for (std::uint64_t k = 0; k < depth; ++k) {
      starts[k] = std::chrono::steady_clock::now();
      auto call =
          client.call_async(tunnel_reserve_request(tunnel_id, dn.value()));
      if (!call.ok()) {
        failed->store(true);
        return;
      }
      calls[k] = call.value();
    }
    for (std::uint64_t k = 0; k < depth; ++k) {
      auto res = client.wait(calls[k]);
      if (!res.ok()) {
        failed->store(true);
        return;
      }
      samples->push_back(elapsed_us(starts[k]));
      auto reply = sig::RarReply::decode(res.value().bytes);
      if (!reply.ok() || !reply->granted || reply->handles.empty()) {
        failed->store(true);
        return;
      }
      sub_ids[k] = reply->handles[0].second;
    }
    for (std::uint64_t k = 0; k < depth; ++k) {
      starts[k] = std::chrono::steady_clock::now();
      auto call =
          client.call_async(tunnel_release_request(tunnel_id, sub_ids[k]));
      if (!call.ok()) {
        failed->store(true);
        return;
      }
      calls[k] = call.value();
    }
    for (std::uint64_t k = 0; k < depth; ++k) {
      auto res = client.wait(calls[k]);
      if (!res.ok()) {
        failed->store(true);
        return;
      }
      samples->push_back(elapsed_us(starts[k]));
    }
  }
}

/// Fork a fresh daemon (one RPC worker per connection), run the fleet,
/// shut the daemon down. Each mode gets its own daemon so the serial
/// numbers are never polluted by the pipelined run's world state.
FleetResult run_fleet(std::size_t connections, std::uint64_t window,
                      std::uint64_t depth, std::size_t batches) {
  bu::DaemonHarness::LaunchSpec spec;
  spec.rpc_workers = connections;
  bu::DaemonHarness harness = bu::DaemonHarness::launch(spec);

  // Control connection: size the world before the fleet dials in.
  auto control = harness.connect();
  if (!control.ok()) std::abort();
  if (!control->configure(3, 0, 0, 10e9, 10e9).ok()) std::abort();

  std::atomic<bool> failed{false};
  std::vector<std::vector<double>> samples(connections);
  std::vector<std::thread> fleet;
  fleet.reserve(connections);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < connections; ++c) {
    fleet.emplace_back(run_connection, std::cref(harness), c, window, depth,
                       batches, &failed, &samples[c]);
  }
  for (auto& t : fleet) t.join();
  const double wall_us = elapsed_us(start);
  if (failed.load()) std::abort();
  if (!control->shutdown_daemon().ok()) std::abort();

  FleetResult result;
  std::vector<double> merged;
  for (auto& s : samples) {
    merged.insert(merged.end(), s.begin(), s.end());
  }
  result.ops = merged.size();  // one sample per RAR op
  result.rars_per_sec =
      wall_us > 0 ? static_cast<double>(result.ops) / (wall_us / 1e6) : 0;
  result.latency = quantiles(std::move(merged));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t connections = 4;
  std::uint64_t depth = 8;
  std::size_t batches = 100;
  bool smoke = false;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
      connections = 2;
      depth = 4;
      batches = 50;
    } else if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    }
  }

  bu::heading("load_daemon",
              "daemon RAR throughput: serial vs pipelined client fleet");
  bu::note(std::to_string(connections) + " connections x depth " +
           std::to_string(depth) + ", " + std::to_string(batches) +
           " tunnel-flow batches per connection; identical op sequence "
           "both modes.");

  const FleetResult serial = run_fleet(connections, 1, depth, batches);
  const FleetResult pipelined = run_fleet(connections, depth, depth, batches);

  bu::row("%-12s %-8s %12s %10s %10s", "mode", "depth", "RARs/s", "p50(us)",
          "p99(us)");
  bu::rule();
  bu::row("%-12s %-8d %12.0f %10.0f %10.0f", "serial", 1,
          serial.rars_per_sec, serial.latency.p50_us, serial.latency.p99_us);
  bu::row("%-12s %-8llu %12.0f %10.0f %10.0f", "pipelined",
          static_cast<unsigned long long>(depth), pipelined.rars_per_sec,
          pipelined.latency.p50_us, pipelined.latency.p99_us);
  bu::rule();

  const double pipeline_x =
      serial.rars_per_sec > 0 ? pipelined.rars_per_sec / serial.rars_per_sec
                              : 0;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("RESULT daemon_pipeline_x=%.2f cores=%u\n", pipeline_x, cores);

  bool ok = true;
  ok &= bu::check(serial.ops == pipelined.ops && serial.ops > 0,
                  "both modes completed the identical op count");
  // Core-aware gate, mirroring load_broker's scaling policy: the ratio
  // only measures pipelining when the fleet, the loop thread and the
  // workers actually run in parallel.
  if (cores >= 4) {
    ok &= bu::check(pipeline_x >= 3.0,
                    "depth-" + std::to_string(depth) +
                        " pipeline >= 3x serial RARs/s");
  } else if (cores >= 2) {
    ok &= bu::check(pipeline_x > 1.0, "pipeline beats serial (2-3 cores)");
  } else {
    bu::note("pipeline gate skipped: 1 core; recorded only");
  }

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << "{\n"
        << " \"bench\": \"load_daemon\",\n"
        << " \"connections\": " << connections << ",\n"
        << " \"batches\": " << batches << ",\n"
        << " \"serial\": {\"rars_per_sec\": " << serial.rars_per_sec
        << ", \"p50_us\": " << serial.latency.p50_us
        << ", \"p99_us\": " << serial.latency.p99_us << "},\n"
        << " \"pipelined\": {\"depth\": " << depth
        << ", \"rars_per_sec\": " << pipelined.rars_per_sec
        << ", \"p50_us\": " << pipelined.latency.p50_us
        << ", \"p99_us\": " << pipelined.latency.p99_us << "},\n"
        << " \"pipeline_x\": " << pipeline_x << ",\n"
        << " \"cores\": " << cores << ",\n"
        << " \"gated\": " << (cores >= 2 ? "true" : "false") << "\n"
        << "}\n";
    ok &= bu::check(static_cast<bool>(out), "wrote " + json_out);
  }
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
