// Figure 1 — "Different domains may have different reservation policies."
//
// Domain A: identity-based rules (Alice GRANT, Bob DENY).
// Domain B: attribute-based rule (accredited physicists only).
// Reproduces the figure's decision table and checks the claimed outcomes.
#include <cstdlib>

#include "bench_util.hpp"
#include "policy/group_server.hpp"
#include "policy/policy.hpp"

using namespace e2e;
using namespace e2e::policy;
namespace bu = e2e::benchutil;

namespace {

Decision decide(const Policy& p, EvalContext& ctx) {
  return p.decide(ctx).value();
}

}  // namespace

int main() {
  bu::heading("Figure 1", "policy heterogeneity across domains");

  const Policy policy_a = Policy::compile(R"(
    If User = Alice {
      If Reservation_Type = Network { Return GRANT }
    }
    If User = Bob {
      If Reservation_Type = Network { Return DENY }
    }
    Return DENY
  )").value();

  const Policy policy_b = Policy::compile(R"(
    If Reservation_Type = Network {
      If Accredited_Physicist(requestor) { Return GRANT }
      Else { Return DENY }
    }
    Return DENY
  )").value();

  GroupServer groups("accreditation-server");
  groups.add_member("physicists",
                    crypto::DistinguishedName::make("Charlie", "DomainB"));

  struct Case {
    const char* user;
    bool physicist;
  };
  const Case cases[] = {{"Alice", false},
                        {"Bob", false},
                        {"Charlie", true},
                        {"Dave", false}};

  bu::row("%-10s %-18s %-18s", "user", "Domain A decision",
          "Domain B decision");
  bu::rule();
  Decision alice_a = Decision::kNoDecision, bob_a = Decision::kNoDecision;
  Decision charlie_b = Decision::kNoDecision, dave_b = Decision::kNoDecision;
  for (const Case& c : cases) {
    EvalContext ctx;
    ctx.set_user(c.user);
    ctx.set("Reservation_Type", Value(std::string("Network")));
    const Decision da = decide(policy_a, ctx);
    const bool is_physicist = c.physicist;
    ctx.register_predicate("Accredited_Physicist",
                           [is_physicist](std::span<const Value>) {
                             return Value(is_physicist);
                           });
    const Decision db = decide(policy_b, ctx);
    bu::row("%-10s %-18s %-18s", c.user, to_string(da), to_string(db));
    if (std::string(c.user) == "Alice") alice_a = da;
    if (std::string(c.user) == "Bob") bob_a = da;
    if (std::string(c.user) == "Charlie") charlie_b = db;
    if (std::string(c.user) == "Dave") dave_b = db;
  }

  bu::rule();
  bool ok = true;
  ok &= bu::check(alice_a == Decision::kGrant,
                  "domain A grants Alice (identity rule)");
  ok &= bu::check(bob_a == Decision::kDeny,
                  "domain A denies Bob (identity rule)");
  ok &= bu::check(charlie_b == Decision::kGrant,
                  "domain B grants the accredited physicist");
  ok &= bu::check(dave_b == Decision::kDeny,
                  "domain B denies non-physicists — same request, different "
                  "policy");
  bu::dump_metrics_snapshot("fig1_policy_heterogeneity");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
