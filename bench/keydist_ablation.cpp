// Claim K (§6.4) — key-distribution techniques for verifying signatures of
// entities without a direct trust relationship.
//
// The paper lists four techniques and argues for the first:
//   1. distribute all relevant certificates within the requests (in-band
//      introduction / web of trust),
//   2. a certificate repository accessible through secure LDAP.
// This ablation compares them: per-verification extra latency, wire
// overhead carried by the RAR, and the trust assumptions.
#include <cstdlib>

#include "bench_util.hpp"
#include "kit/chain_world.hpp"
#include "repo/cert_repository.hpp"

using namespace e2e;
using namespace e2e::kit;
namespace bu = e2e::benchutil;

int main() {
  bu::heading("Claim K", "key distribution: in-band introduction vs LDAP");
  bu::note("Destination must verify the signature of every upstream broker");
  bu::note("it has no direct trust relationship with. Directory round trip:");
  bu::note("15 ms.");

  bu::row("%-8s | %-12s %-14s | %-12s %-14s", "domains", "inband RTTs",
          "wire bytes", "ldap RTTs", "ldap ms added");
  bu::rule();

  bool ok = true;
  std::size_t wire_3 = 0, wire_7 = 0;
  for (std::size_t domains : {3u, 5u, 7u}) {
    ChainWorldConfig config;
    config.domains = domains;
    ChainWorld world(config);
    const WorldUser alice = world.make_user("Alice", 0);

    // In-band: run the real protocol and record the RAR wire size at the
    // destination (the introduced certificates ride inside it) — zero
    // extra round trips.
    const auto msg = world.engine().build_user_request(
        alice.credentials(), world.spec(alice, 1e6), 0);
    const auto outcome = world.engine().reserve(*msg, seconds(1));
    if (!outcome.ok() || !outcome->reply.granted) std::abort();
    const std::size_t wire = outcome->final_wire_bytes;
    if (domains == 3) wire_3 = wire;
    if (domains == 7) wire_7 = wire;

    // LDAP alternative: the destination must fetch the certificate of
    // every non-adjacent upstream signer (domains - 2 of them: everyone
    // except itself and its direct peer) plus the user's certificate.
    repo::CertificateRepository directory("grid-directory", milliseconds(15));
    directory.authorize_client(world.broker(domains - 1).dn());
    for (std::size_t i = 0; i < domains; ++i) {
      if (!directory.publish(world.broker(i).certificate()).ok()) {
        std::abort();
      }
    }
    if (!directory.publish(alice.identity_cert).ok()) std::abort();
    std::size_t ldap_lookups = 0;
    for (std::size_t i = 0; i + 2 < domains; ++i) {
      const auto fetched = directory.lookup(world.broker(i).dn(),
                                            world.broker(domains - 1).dn(),
                                            seconds(1));
      if (!fetched.ok()) std::abort();
      ++ldap_lookups;
    }
    if (!directory
             .lookup(alice.dn, world.broker(domains - 1).dn(), seconds(1))
             .ok()) {
      std::abort();
    }
    ++ldap_lookups;
    const double ldap_added_ms =
        to_milliseconds(directory.lookup_latency()) * 2 *
        static_cast<double>(ldap_lookups);

    bu::row("%-8zu | %-12d %-14zu | %-12zu %-14.0f", domains, 0, wire,
            ldap_lookups, ldap_added_ms);
    ok &= bu::check(ldap_lookups == domains - 1,
                    "LDAP needs one directory search per non-adjacent "
                    "signer plus the user");
  }
  bu::rule();
  ok &= bu::check(wire_7 > wire_3,
                  "in-band pays with wire size: the RAR grows with the "
                  "path as certificates are added");
  bu::note("");
  bu::note("Trust assumptions: in-band needs only the introduction chain");
  bu::note("(each hop vouches for its upstream peer, bounded by the local");
  bu::note("depth policy); LDAP needs 'a strong trust relationship with the");
  bu::note("repository' (§6.4) plus its availability on the request path.");
  bu::dump_metrics_snapshot("keydist_ablation");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
