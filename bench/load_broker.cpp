// Admission load harness: RARs/sec against capacity pools and brokers.
//
// The ROADMAP's north star ("heavy traffic from millions of users", "as
// fast as the hardware allows") makes per-request admission cost the hot
// path once signing is fast (PR 3). This bench measures it directly:
//
//   Phase A  pool churn at 1k/10k/100k live reservations — the
//            timeline-indexed decisions vs the original full-scan kept as
//            the `*_reference` oracle. The RESULT line
//            `pool_speedup_10k=` is gated (>= 5x) by tier1.sh --load.
//   Phase B  sharded-broker churn (commit + release + audit + metrics)
//            at each live level: RARs/sec and p50/p99 admission latency.
//   Phase C  parallel tunnel admission at T in {1,2,4,8}: one tunnel per
//            caller. T=1 is the locked serial path (exactly what a world
//            with admission_threads=0 runs); T>1 enables the
//            thread-per-shard engine (ISSUE 8) with T owner workers, each
//            owning its tunnel's pool. The RESULT line
//            `tunnel_scaling_4t=` (4-thread / 1-thread) is gated by
//            tier1.sh --load on hosts with >= 4 cores.
//   Phase D  batch admission: commit_batch in chunks vs one-by-one
//            commits against identically prepared brokers.
//   Phase E  WAL overhead (ISSUE 6): the same commit churn with durability
//            off, write-no-sync, fsync-before-ack, and fsync + batch-64
//            (one group-committed record per batch). The fsync modes price
//            the durability contract; the batch row shows the group commit
//            amortizing it.
//   Phase F  1M-live footprint (ISSUE 8): resident bytes per live
//            reservation with the arena-backed commitment map and the flat
//            timeline (RSS delta from /proc/self/status plus the arena's
//            own slab accounting). Skipped under --smoke.
//
// Latency percentiles are wall-clock (std::chrono::steady_clock), like the
// e2e_bb_admission_us histogram and unlike every protocol-level metric —
// numbers vary run to run; decisions do not.
//
// Usage: load_broker [--smoke] [--json-out PATH]
//   --smoke     drop the 100k live level and cut iteration counts
//               (used by tier1.sh --load; the gated 10k level is kept)
//   --json-out  write the machine-readable summary (the BENCH_admission.json
//               format documented in docs/PERFORMANCE.md)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bb/bandwidth_broker.hpp"
#include "bb/wal.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"

using namespace e2e;
using namespace e2e::bb;
namespace bu = e2e::benchutil;

namespace {

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double percentile(std::vector<double> us, double p) {
  if (us.empty()) return 0;
  std::sort(us.begin(), us.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(us.size() - 1));
  return us[idx];
}

/// One churn step: release a random live commitment, admit a fresh one in
/// its place (the pool's live count stays constant). Pre-generated so the
/// timed loops run identical sequences in timeline and reference mode.
struct ChurnOp {
  SimTime start = 0;
  SimDuration len = 0;
  double rate = 0;
  std::size_t victim = 0;
};

std::vector<ChurnOp> make_churn(std::uint64_t seed, std::size_t n,
                                std::size_t live) {
  Rng rng(seed);
  std::vector<ChurnOp> ops(n);
  for (auto& op : ops) {
    op.start = static_cast<SimTime>(rng.next_below(900)) * seconds(1);
    op.len = (1 + static_cast<SimDuration>(rng.next_below(60))) * seconds(1);
    op.rate = 1e6 * static_cast<double>(1 + rng.next_below(20));
    op.victim = rng.next_below(live);
  }
  return ops;
}

/// Fill `pool` with `live` commitments drawn from the same distribution.
std::vector<std::string> populate(CapacityPool& pool, std::size_t live) {
  std::vector<std::string> keys;
  keys.reserve(live);
  for (const ChurnOp& op : make_churn(7, live, live)) {
    const std::string key = "seed-" + std::to_string(keys.size());
    if (pool.commit(key, {op.start, op.start + op.len}, op.rate).ok()) {
      keys.push_back(key);
    }
  }
  return keys;
}

struct PoolSample {
  std::size_t live = 0;
  double timeline_rars_per_s = 0;
  double timeline_p50_us = 0;
  double timeline_p99_us = 0;
  double reference_rars_per_s = 0;
  double speedup = 0;
};

/// Phase A: identical churn through the timeline index and the reference
/// scan. The reference gets a smaller op budget at high live counts (it
/// is the O(n) / O(n^2) baseline this PR replaces); RARs/sec normalizes.
PoolSample bench_pool(std::size_t live, std::size_t ops) {
  PoolSample s;
  s.live = live;
  const double capacity = 1e12;  // success-dominated: pure decision cost
  // The reference decision is ~quadratic in live commitments (O(n) per
  // boundary point, ~n boundaries in a fixed window), so its op budget
  // shrinks with live² to keep each level's baseline run to a few
  // seconds. RARs/sec normalizes, and even a handful of multi-second ops
  // at 100k live pins the baseline well enough for the 5x gate at 10k.
  const std::size_t ref_ops = std::min(
      ops, std::max<std::size_t>(
               8, 4000000000ULL / std::max<std::size_t>(live * live, 1)));

  for (const bool reference : {false, true}) {
    CapacityPool pool(capacity);
    std::vector<std::string> keys = populate(pool, live);
    const std::size_t n = reference ? ref_ops : ops;
    const auto churn = make_churn(11, n, keys.size());
    std::vector<double> latencies;
    latencies.reserve(n);
    std::size_t next_key = 0;
    const auto t0 = Clock::now();
    for (const ChurnOp& op : churn) {
      const auto op_t0 = Clock::now();
      (void)pool.release(keys[op.victim]);
      const std::string key = "churn-" + std::to_string(next_key++);
      const TimeInterval iv{op.start, op.start + op.len};
      const Status st = reference ? pool.commit_reference(key, iv, op.rate)
                                  : pool.commit(key, iv, op.rate);
      latencies.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - op_t0)
              .count());
      if (st.ok()) {
        keys[op.victim] = key;
      } else {
        // Victim stays released; re-seed the slot so live stays ~constant.
        (void)(reference
                   ? pool.commit_reference(keys[op.victim], iv, op.rate / 2)
                   : pool.commit(keys[op.victim], iv, op.rate / 2));
      }
    }
    const double elapsed = secs_since(t0);
    const double rars = static_cast<double>(n) / elapsed;
    if (reference) {
      s.reference_rars_per_s = rars;
    } else {
      s.timeline_rars_per_s = rars;
      s.timeline_p50_us = percentile(latencies, 0.50);
      s.timeline_p99_us = percentile(latencies, 0.99);
    }
  }
  s.speedup = s.timeline_rars_per_s / s.reference_rars_per_s;
  return s;
}

// --- Broker-level phases --------------------------------------------------

const TimeInterval kValidity{0, hours(24 * 365)};

struct BrokerHarness {
  Rng rng{20010801};
  crypto::CertificateAuthority ca{
      crypto::DistinguishedName::make("CA-Load", "DomainLoad"), rng,
      kValidity, 256};
  BandwidthBroker broker = make_broker();

  BandwidthBroker make_broker() {
    policy::PolicyServer server(
        "DomainLoad", policy::Policy::compile("Return GRANT").value());
    return BandwidthBroker(BrokerConfig{"DomainLoad", 1e12, 256},
                           std::move(server), ca, rng, kValidity);
  }

  static ResSpec spec(const ChurnOp& op) {
    ResSpec s;
    s.user = "CN=Load,O=DomainLoad,C=US";
    s.source_domain = "DomainLoad";
    s.destination_domain = "DomainFar";
    s.rate_bits_per_s = op.rate;
    s.burst_bits = 1000;
    s.interval = {op.start, op.start + op.len};
    return s;
  }
};

struct BrokerSample {
  std::size_t live = 0;
  double rars_per_s = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// Phase B: full broker commits — pool decision + sharded record insert +
/// atomic counters + audit append + edge hook dispatch.
BrokerSample bench_broker(std::size_t live, std::size_t ops) {
  BrokerHarness h;
  std::vector<ReservationId> ids;
  ids.reserve(live);
  for (const ChurnOp& op : make_churn(13, live, live)) {
    const auto id = h.broker.commit(BrokerHarness::spec(op), "");
    if (id.ok()) ids.push_back(*id);
  }
  const auto churn = make_churn(17, ops, ids.size());
  std::vector<double> latencies;
  latencies.reserve(ops);
  const auto t0 = Clock::now();
  for (const ChurnOp& op : churn) {
    (void)h.broker.release(ids[op.victim]);
    const auto op_t0 = Clock::now();
    const auto id = h.broker.commit(BrokerHarness::spec(op), "");
    latencies.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - op_t0)
            .count());
    if (id.ok()) ids[op.victim] = *id;
  }
  const double elapsed = secs_since(t0);
  BrokerSample s;
  s.live = live;
  s.rars_per_s = static_cast<double>(ops) / elapsed;
  s.p50_us = percentile(latencies, 0.50);
  s.p99_us = percentile(latencies, 0.99);
  return s;
}

struct ParallelSample {
  unsigned threads = 1;
  bool engine = false;
  double rars_per_s = 0;
};

/// Phase C: `threads` callers, one tunnel each, all hammering
/// allocate/release churn. With use_engine the broker runs the
/// thread-per-shard engine (one owner worker per tunnel, ISSUE 8) and
/// every call routes to its owner's queue; without it the callers lock
/// into the pools directly (the serial production path). Tunnel::allocate
/// skips the global audit log, so this measures the admission state
/// itself rather than one shared mutex.
ParallelSample bench_parallel_tunnels(unsigned threads, std::size_t live,
                                      std::size_t ops_per_thread,
                                      bool use_engine) {
  BrokerHarness h;
  std::vector<Tunnel*> tunnels;
  for (unsigned t = 0; t < threads; ++t) {
    ChurnOp agg;
    agg.start = 0;
    agg.len = seconds(1000);
    agg.rate = 1e12;
    ResSpec spec = BrokerHarness::spec(agg);
    spec.is_tunnel = true;
    const auto tid = h.broker.register_tunnel(spec);
    Tunnel* tunnel = h.broker.find_tunnel(*tid);
    (void)tunnel->authorize("CN=Load,O=DomainLoad,C=US");
    std::size_t seeded = 0;
    for (const ChurnOp& op : make_churn(19 + t, live, live)) {
      (void)tunnel->allocate("seed-" + std::to_string(seeded++),
                             "CN=Load,O=DomainLoad,C=US",
                             {op.start, op.start + op.len}, op.rate);
    }
    tunnels.push_back(tunnel);
  }
  // Enable AFTER seeding: the seed fill runs caller-threaded, the timed
  // loop runs owner-routed (the production order in ChainWorld).
  if (use_engine) h.broker.enable_shard_engine(threads);
  const auto t0 = Clock::now();
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Tunnel* tunnel = tunnels[t];
      std::size_t next = 0;
      for (const ChurnOp& op : make_churn(23 + t, ops_per_thread, live)) {
        const std::string key =
            "w" + std::to_string(t) + "-" + std::to_string(next++);
        if (tunnel
                ->allocate(key, "CN=Load,O=DomainLoad,C=US",
                           {op.start, op.start + op.len}, op.rate)
                .ok()) {
          (void)tunnel->release(key);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = secs_since(t0);
  ParallelSample s;
  s.threads = threads;
  s.engine = use_engine;
  s.rars_per_s =
      static_cast<double>(ops_per_thread) * threads / elapsed;
  return s;
}

// --- Footprint (Phase F) ----------------------------------------------------

/// Resident set size from /proc/self/status, in bytes (0 if unreadable).
std::size_t resident_bytes() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return static_cast<std::size_t>(std::stoull(line.substr(6))) * 1024;
    }
  }
  return 0;
}

struct FootprintSample {
  std::size_t live = 0;
  double populate_rars_per_s = 0;
  std::size_t rss_delta_bytes = 0;
  double rss_bytes_per_resv = 0;
  double arena_bytes_per_resv = 0;
};

/// Phase F: hold `live` commitments in one pool and price each of them in
/// resident memory. The arena accounting covers the commitment map's
/// nodes; the RSS delta additionally sees the flat timeline, key strings
/// and allocator slack — the honest number a 1M-reservation broker pays.
FootprintSample bench_footprint(std::size_t live) {
  FootprintSample s;
  s.live = live;
  const std::size_t rss0 = resident_bytes();
  auto pool = std::make_unique<CapacityPool>(1e15);
  const auto churn = make_churn(41, live, live);
  const auto t0 = Clock::now();
  std::size_t admitted = 0;
  for (const ChurnOp& op : churn) {
    if (pool
            ->commit("f-" + std::to_string(admitted),
                     {op.start, op.start + op.len}, op.rate)
            .ok()) {
      ++admitted;
    }
  }
  const double elapsed = secs_since(t0);
  const std::size_t rss1 = resident_bytes();
  s.populate_rars_per_s = static_cast<double>(admitted) / elapsed;
  s.rss_delta_bytes = rss1 > rss0 ? rss1 - rss0 : 0;
  s.rss_bytes_per_resv =
      static_cast<double>(s.rss_delta_bytes) / static_cast<double>(admitted);
  s.arena_bytes_per_resv = static_cast<double>(pool->arena_bytes()) /
                           static_cast<double>(admitted);
  s.live = admitted;
  return s;
}

struct BatchSample {
  std::size_t batch_size = 0;
  double individual_rars_per_s = 0;
  double batch_rars_per_s = 0;
};

/// Phase D: one-by-one commits vs commit_batch over identically prepared
/// brokers (same live set, same offered specs).
BatchSample bench_batch(std::size_t live, std::size_t total,
                        std::size_t batch_size) {
  BatchSample s;
  s.batch_size = batch_size;
  const auto offered = make_churn(29, total, live);
  for (const bool batched : {false, true}) {
    BrokerHarness h;
    for (const ChurnOp& op : make_churn(13, live, live)) {
      (void)h.broker.commit(BrokerHarness::spec(op), "");
    }
    const auto t0 = Clock::now();
    if (batched) {
      std::vector<ResSpec> chunk;
      chunk.reserve(batch_size);
      for (std::size_t i = 0; i < offered.size(); ++i) {
        chunk.push_back(BrokerHarness::spec(offered[i]));
        if (chunk.size() == batch_size || i + 1 == offered.size()) {
          (void)h.broker.commit_batch(chunk, "");
          chunk.clear();
        }
      }
    } else {
      for (const ChurnOp& op : offered) {
        (void)h.broker.commit(BrokerHarness::spec(op), "");
      }
    }
    const double elapsed = secs_since(t0);
    (batched ? s.batch_rars_per_s : s.individual_rars_per_s) =
        static_cast<double>(total) / elapsed;
  }
  return s;
}

struct WalSample {
  std::string mode;  // off | nosync | fsync | fsync_batch64
  double rars_per_s = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// Phase E: the Phase-B commit workload under each durability mode. The
/// batch row commits the same specs through commit_batch in chunks of 64 —
/// one WAL record and (at most) one fsync per chunk.
WalSample bench_wal(const std::string& mode, std::size_t live,
                    std::size_t ops) {
  WalSample s;
  s.mode = mode;
  BrokerHarness h;
  std::unique_ptr<WriteAheadLog> wal;
  const std::string path = "/tmp/e2e_load_broker_" + mode + ".wal";
  std::remove(path.c_str());
  if (mode != "off") {
    auto opened = WriteAheadLog::open(
        path, mode == "nosync" ? WriteAheadLog::SyncMode::kNone
                               : WriteAheadLog::SyncMode::kFsync);
    if (!opened.ok()) {
      std::fprintf(stderr, "wal open failed: %s\n",
                   opened.error().to_text().c_str());
      return s;
    }
    wal = std::move(*opened);
    h.broker.attach_wal(wal.get());
  }
  for (const ChurnOp& op : make_churn(13, live, live)) {
    (void)h.broker.commit(BrokerHarness::spec(op), "");
  }
  const auto offered = make_churn(31, ops, live);
  std::vector<double> latencies;
  latencies.reserve(ops);
  const auto t0 = Clock::now();
  if (mode == "fsync_batch64") {
    std::vector<ResSpec> chunk;
    chunk.reserve(64);
    for (std::size_t i = 0; i < offered.size(); ++i) {
      chunk.push_back(BrokerHarness::spec(offered[i]));
      if (chunk.size() == 64 || i + 1 == offered.size()) {
        const auto op_t0 = Clock::now();
        (void)h.broker.commit_batch(chunk, "");
        const double us =
            std::chrono::duration<double, std::micro>(Clock::now() - op_t0)
                .count();
        // Per-RAR amortized latency, comparable with the other rows.
        for (std::size_t j = 0; j < chunk.size(); ++j) {
          latencies.push_back(us / static_cast<double>(chunk.size()));
        }
        chunk.clear();
      }
    }
  } else {
    for (const ChurnOp& op : offered) {
      const auto op_t0 = Clock::now();
      (void)h.broker.commit(BrokerHarness::spec(op), "");
      latencies.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - op_t0)
              .count());
    }
  }
  const double elapsed = secs_since(t0);
  s.rars_per_s = static_cast<double>(ops) / elapsed;
  s.p50_us = percentile(latencies, 0.50);
  s.p99_us = percentile(latencies, 0.99);
  h.broker.attach_wal(nullptr);
  wal.reset();
  std::remove(path.c_str());
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json-out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  bu::heading("load_broker", "admission throughput: timeline pool, sharded "
                             "broker, parallel tunnels, batches");

  std::vector<std::size_t> live_levels = {1000, 10000, 100000};
  std::size_t pool_ops = 200000;
  std::size_t broker_ops = 20000;
  std::size_t parallel_ops = 20000;
  std::size_t batch_total = 4096;
  if (smoke) {
    live_levels = {1000, 10000};
    pool_ops = 20000;
    broker_ops = 2000;
    parallel_ops = 4000;
    batch_total = 1024;
  }

  bool ok = true;

  bu::note("Phase A: pool churn (release + admit), timeline vs reference");
  std::vector<PoolSample> pool_samples;
  double speedup_10k = 0;
  for (std::size_t live : live_levels) {
    const PoolSample s = bench_pool(live, pool_ops);
    pool_samples.push_back(s);
    bu::row("live=%-7zu timeline %10.0f RARs/s (p50 %6.2f us, p99 %6.2f us)"
            "   reference %9.0f RARs/s   speedup %6.1fx",
            s.live, s.timeline_rars_per_s, s.timeline_p50_us,
            s.timeline_p99_us, s.reference_rars_per_s, s.speedup);
    if (live == 10000) speedup_10k = s.speedup;
  }
  std::printf("RESULT pool_speedup_10k=%.2f\n", speedup_10k);
  ok &= bu::check(speedup_10k >= 5.0,
                  "timeline pool >= 5x reference at 10k live reservations");

  bu::rule();
  bu::note("Phase B: full broker commits (pool + shards + audit + metrics)");
  std::vector<BrokerSample> broker_samples;
  for (std::size_t live : live_levels) {
    const BrokerSample s = bench_broker(live, broker_ops);
    broker_samples.push_back(s);
    bu::row("live=%-7zu %10.0f RARs/s   p50 %7.2f us   p99 %7.2f us",
            s.live, s.rars_per_s, s.p50_us, s.p99_us);
  }
  ok &= bu::check(broker_samples.back().rars_per_s > 0,
                  "broker sustains load at the largest live level");

  bu::rule();
  bu::note("Phase C: parallel tunnel admission (thread-per-shard engine; "
           "T=1 is the locked serial path)");
  const unsigned cores = std::thread::hardware_concurrency();
  std::vector<unsigned> thread_counts =
      smoke ? std::vector<unsigned>{1, 4} : std::vector<unsigned>{1, 2, 4, 8};
  std::vector<ParallelSample> parallel_samples;
  const std::size_t parallel_live = smoke ? 1000 : 100000;
  double rars_1t = 0;
  double rars_4t = 0;
  for (unsigned threads : thread_counts) {
    const ParallelSample s = bench_parallel_tunnels(
        threads, parallel_live / std::max(1u, threads), parallel_ops,
        /*use_engine=*/threads > 1);
    parallel_samples.push_back(s);
    bu::row("threads=%-3u %10.0f RARs/s aggregate  (%s)", s.threads,
            s.rars_per_s, s.engine ? "shard engine" : "locked serial");
    if (threads == 1) rars_1t = s.rars_per_s;
    if (threads == 4) rars_4t = s.rars_per_s;
  }
  const double scaling = rars_4t / rars_1t;
  std::printf("RESULT tunnel_scaling_4t=%.2f cores=%u\n", scaling, cores);
  if (cores >= 4) {
    ok &= bu::check(scaling >= 2.5,
                    "thread-per-shard engine >= 2.5x serial at 4 threads");
  } else if (cores > 1) {
    ok &= bu::check(scaling > 1.0,
                    "independent shards admit faster with more workers");
  } else {
    // One core: workers time-slice and every request pays a cross-thread
    // handoff, so no aggregate speedup is attainable — record the samples
    // and only require the engine runs to survive.
    ok &= bu::check(rars_4t > 0,
                    "single-core host: engine-routed churn completes "
                    "(scaling gated only on multicore hosts)");
  }

  bu::rule();
  bu::note("Phase D: batch admission vs one-by-one commits");
  const BatchSample batch = bench_batch(smoke ? 1000 : 10000, batch_total, 64);
  bu::row("individual %10.0f RARs/s   batch(%zu) %10.0f RARs/s   %0.2fx",
          batch.individual_rars_per_s, batch.batch_size,
          batch.batch_rars_per_s,
          batch.batch_rars_per_s / batch.individual_rars_per_s);
  ok &= bu::check(batch.batch_rars_per_s > 0, "batch admission completes");

  bu::rule();
  bu::note("Phase E: WAL overhead (durability off / no-sync / fsync / "
           "fsync+batch64)");
  const std::size_t wal_live = smoke ? 1000 : 10000;
  const std::size_t wal_ops = smoke ? 600 : 3000;
  std::vector<WalSample> wal_samples;
  for (const char* mode : {"off", "nosync", "fsync", "fsync_batch64"}) {
    const WalSample s = bench_wal(mode, wal_live, wal_ops);
    wal_samples.push_back(s);
    bu::row("wal=%-13s %10.0f RARs/s   p50 %8.2f us   p99 %8.2f us",
            s.mode.c_str(), s.rars_per_s, s.p50_us, s.p99_us);
  }
  const double fsync_cost =
      wal_samples[0].rars_per_s / wal_samples[2].rars_per_s;
  const double batch_recovery =
      wal_samples[3].rars_per_s / wal_samples[2].rars_per_s;
  std::printf("RESULT wal_fsync_slowdown=%.2f wal_batch_speedup=%.2f\n",
              fsync_cost, batch_recovery);
  ok &= bu::check(wal_samples[2].rars_per_s > 0,
                  "fsync-before-ack sustains load");

  FootprintSample footprint;
  if (!smoke) {
    bu::rule();
    bu::note("Phase F: 1M-live footprint (arena map + flat timeline)");
    footprint = bench_footprint(1000000);
    bu::row("live=%-8zu populate %9.0f RARs/s   RSS %6.1f MiB "
            "(%5.1f B/resv)   arena %5.1f B/resv",
            footprint.live, footprint.populate_rars_per_s,
            static_cast<double>(footprint.rss_delta_bytes) / (1024.0 * 1024.0),
            footprint.rss_bytes_per_resv, footprint.arena_bytes_per_resv);
    std::printf("RESULT footprint_bytes_per_resv_1m=%.1f\n",
                footprint.rss_bytes_per_resv);
    ok &= bu::check(footprint.live > 900000,
                    "a million reservations stay live in one pool");
  }

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << "{\n \"bench\": \"load_broker\",\n \"smoke\": "
        << (smoke ? "true" : "false") << ",\n \"cores\": " << cores
        << ",\n \"pool\": [";
    for (std::size_t i = 0; i < pool_samples.size(); ++i) {
      const PoolSample& s = pool_samples[i];
      out << (i ? ",\n  " : "\n  ") << "{\"live\": " << s.live
          << ", \"timeline_rars_per_s\": " << s.timeline_rars_per_s
          << ", \"timeline_p50_us\": " << s.timeline_p50_us
          << ", \"timeline_p99_us\": " << s.timeline_p99_us
          << ", \"reference_rars_per_s\": " << s.reference_rars_per_s
          << ", \"speedup\": " << s.speedup << "}";
    }
    out << "\n ],\n \"broker\": [";
    for (std::size_t i = 0; i < broker_samples.size(); ++i) {
      const BrokerSample& s = broker_samples[i];
      out << (i ? ",\n  " : "\n  ") << "{\"live\": " << s.live
          << ", \"rars_per_s\": " << s.rars_per_s
          << ", \"p50_us\": " << s.p50_us << ", \"p99_us\": " << s.p99_us
          << "}";
    }
    out << "\n ],\n \"tunnel_parallel\": [";
    for (std::size_t i = 0; i < parallel_samples.size(); ++i) {
      const ParallelSample& s = parallel_samples[i];
      out << (i ? ",\n  " : "\n  ") << "{\"threads\": " << s.threads
          << ", \"engine\": " << (s.engine ? "true" : "false")
          << ", \"rars_per_s\": " << s.rars_per_s << "}";
    }
    out << "\n ],\n \"tunnel_scaling_4t\": " << scaling
        << ",\n \"batch\": {\"batch_size\": " << batch.batch_size
        << ", \"individual_rars_per_s\": " << batch.individual_rars_per_s
        << ", \"batch_rars_per_s\": " << batch.batch_rars_per_s << "},\n"
        << " \"wal\": [";
    for (std::size_t i = 0; i < wal_samples.size(); ++i) {
      const WalSample& s = wal_samples[i];
      out << (i ? ",\n  " : "\n  ") << "{\"mode\": \"" << s.mode
          << "\", \"rars_per_s\": " << s.rars_per_s
          << ", \"p50_us\": " << s.p50_us << ", \"p99_us\": " << s.p99_us
          << "}";
    }
    out << "\n ]";
    if (!smoke) {
      out << ",\n \"footprint\": {\"live\": " << footprint.live
          << ", \"populate_rars_per_s\": " << footprint.populate_rars_per_s
          << ", \"rss_delta_bytes\": " << footprint.rss_delta_bytes
          << ", \"rss_bytes_per_resv\": " << footprint.rss_bytes_per_resv
          << ", \"arena_bytes_per_resv\": " << footprint.arena_bytes_per_resv
          << "}";
    }
    out << "\n}\n";
    std::printf("  wrote %s\n", json_out.c_str());
  }
  bu::dump_metrics_snapshot("load_broker");
  return ok ? 0 : 1;
}
