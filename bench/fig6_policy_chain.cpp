// Figure 6 — the three concrete policy files, evaluated along the chain.
//
//   BB-A: Alice unrestricted off-hours (up to Avail_BW), 10 Mb/s during
//         business hours (8am-5pm); everyone else denied.
//   BB-B: up to 10 Mb/s for group "Atlas" members or holders of an ESnet
//         capability.
//   BB-C: >= 5 Mb/s requires an ESnet capability AND a valid CPU
//         reservation referenced by the RAR.
//
// The bench drives real end-to-end requests through the hop-by-hop engine
// and reports, per request, the final outcome and which domain decided it.
#include <cstdlib>

#include "bench_util.hpp"
#include "gara/gara_api.hpp"
#include "kit/chain_world.hpp"

using namespace e2e;
using namespace e2e::kit;
namespace bu = e2e::benchutil;

namespace {

const char* kPolicyA = R"(
  If User = Alice {
    If Time > 8am and Time < 5pm {
      If BW <= 10Mb/s { Return GRANT }
      Else { Return DENY }
    }
    Else if BW <= Avail_BW { Return GRANT }
    Else { Return DENY }
  }
  Return DENY
)";

const char* kPolicyB = R"(
  If Group = Atlas {
    If BW <= 10Mb/s { Return GRANT }
  }
  Else if Issued_by(Capability) = ESnet {
    If BW <= 10Mb/s { Return GRANT }
  }
  Return DENY
)";

const char* kPolicyC = R"(
  If BW >= 5Mb/s {
    If Issued_by(Capability) = ESnet and HasValidCPUResv(RAR) {
      Return GRANT
    }
    Return DENY
  }
  Return GRANT
)";

}  // namespace

int main() {
  bu::heading("Figure 6", "per-domain policy files on the signalling chain");

  ChainWorldConfig config;
  config.policies = {kPolicyA, kPolicyB, kPolicyC};
  ChainWorld world(config);
  gara::ComputeManager compute("DomainC", 64);
  gara::Gara gara(world.engine());
  gara.attach_compute(compute);

  WorldUser alice = world.make_user("Alice", 0, /*with_capability=*/true);
  WorldUser bob = world.make_user("Bob", 0, /*with_capability=*/true);
  // Alice is an ATLAS member; Bob is not (he only has the capability).
  world.group_server().add_member("Atlas", alice.dn);

  struct Case {
    const char* label;
    WorldUser* user;
    double rate;
    SimTime at;
    bool with_cpu;
    bool expect_grant;
    const char* expect_denier;  // "" when granted
  };
  std::vector<Case> cases = {
      {"Alice 10M, business hours, CPU", &alice, 10e6, hours(10), true, true,
       ""},
      {"Alice 20M, business hours, CPU", &alice, 20e6, hours(10), true, false,
       "DomainA"},  // policy A: >10M during business hours
      {"Alice 10M, evening, CPU", &alice, 10e6, hours(20), true, true, ""},
      {"Alice 10M, no CPU resv", &alice, 10e6, hours(20), false, false,
       "DomainC"},  // policy C: needs HasValidCPUResv
      {"Alice 4M, no CPU resv", &alice, 4e6, hours(20), false, true,
       ""},  // below C's 5M threshold
      {"Alice 12M, evening, CPU", &alice, 12e6, hours(20), true, false,
       "DomainB"},  // policy B: cap at 10M
      {"Bob 8M, evening, CPU", &bob, 8e6, hours(20), true, false,
       "DomainA"},  // policy A: only Alice
  };

  bu::row("%-36s %-9s %-10s %-9s %-10s", "request", "granted", "denied by",
          "expected", "match");
  bu::rule();
  bool ok = true;
  for (const Case& c : cases) {
    bb::ResSpec spec = world.spec(*c.user, c.rate);
    spec.interval = {c.at, c.at + seconds(600)};
    std::string denier;
    bool granted = false;
    if (c.with_cpu) {
      const auto co = gara.co_reserve(c.user->credentials(), spec, 4, c.at);
      granted = co.ok();
      if (!granted) denier = co.error().origin;
      if (granted) {
        (void)gara.release(co->network);
        (void)gara.release(co->cpu);
      }
    } else {
      const auto r = gara.reserve_network(c.user->credentials(), spec, c.at);
      granted = r.ok();
      if (!granted) denier = r.error().origin;
      if (granted) (void)gara.release(*r);
    }
    const bool match =
        granted == c.expect_grant &&
        (granted || denier == c.expect_denier);
    bu::row("%-36s %-9s %-10s %-9s %-10s", c.label,
            granted ? "yes" : "no", granted ? "-" : denier.c_str(),
            c.expect_grant ? "GRANT" : c.expect_denier, match ? "ok" : "MISMATCH");
    ok &= match;
  }
  bu::rule();
  ok &= bu::check(ok, "all decisions match the Fig. 6 policy files, and "
                      "every denial is attributed to the deciding domain");
  bu::dump_metrics_snapshot("fig6_policy_chain");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
