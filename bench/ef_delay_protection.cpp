// Substrate validation — the DiffServ premium service the whole
// architecture rides on (paper §2, citing the authors' own DiffServ
// implementation for high-performance TCP flows [20]):
// "By carefully limiting the traffic admitted to the traffic aggregate,
// QoS guarantees for bandwidth can be provided."
//
// Sweep best-effort background load on a shared bottleneck and show that
// the policed EF aggregate keeps (a) its reserved goodput and (b) a
// near-propagation delay, while best-effort traffic collapses.
#include <cstdlib>

#include "bench_util.hpp"
#include "net/simulator.hpp"

using namespace e2e;
namespace bu = e2e::benchutil;

namespace {

struct Sample {
  double ef_goodput_mbps = 0;
  double ef_delay_ms = 0;
  double be_goodput_mbps = 0;
  double be_delay_ms = 0;
};

Sample run(double background_mbps) {
  net::Topology topo;
  const auto d = topo.add_domain("D");
  const auto src = topo.add_router(d, "edge-in", true);
  const auto mid = topo.add_router(d, "core", false);
  const auto dst = topo.add_router(d, "edge-out", true);
  const auto in_link = topo.add_link(src, mid, 1e9, milliseconds(1));
  topo.add_link(mid, dst, 50e6, milliseconds(1), /*queue=*/256);
  net::Simulator sim(std::move(topo), 21);

  net::FlowDescription ef;
  ef.name = "premium";
  ef.source = src;
  ef.destination = dst;
  ef.wants_premium = true;
  ef.pattern = net::TrafficPattern::cbr(10e6);
  const net::FlowId ef_flow = sim.add_flow(ef).value();
  sim.set_flow_policer(in_link, ef_flow, net::TokenBucket(11e6, 60000),
                       sla::ExcessTreatment::kDrop);

  net::FlowDescription be;
  be.name = "background";
  be.source = src;
  be.destination = dst;
  be.pattern = net::TrafficPattern::poisson(background_mbps * 1e6);
  const net::FlowId be_flow = sim.add_flow(be).value();

  sim.run_until(seconds(5));
  Sample s;
  s.ef_goodput_mbps =
      sim.stats(ef_flow).premium_goodput_bits_per_s(seconds(5)) / 1e6;
  s.ef_delay_ms = sim.stats(ef_flow).mean_delay_us() / 1000.0;
  s.be_goodput_mbps =
      sim.stats(be_flow).goodput_bits_per_s(seconds(5)) / 1e6;
  s.be_delay_ms = sim.stats(be_flow).mean_delay_us() / 1000.0;
  return s;
}

}  // namespace

int main() {
  bu::heading("Substrate", "EF bandwidth & delay protection under load");
  bu::note("50 Mb/s bottleneck; 10 Mb/s policed EF flow; best-effort");
  bu::note("background swept from near-idle (1 Mb/s) to 2x overload.");
  bu::row("%-14s | %-12s %-12s | %-12s %-12s", "BE offered", "EF Mb/s",
          "EF delay ms", "BE Mb/s", "BE delay ms");
  bu::rule();
  bool ok = true;
  double ef_goodput_idle = 0, ef_goodput_overload = 0;
  double ef_delay_overload = 0;
  for (double background : {1.0, 20.0, 40.0, 60.0, 100.0}) {
    const Sample s = run(background);
    bu::row("%-14.0f | %-12.2f %-12.2f | %-12.2f %-12.2f", background,
            s.ef_goodput_mbps, s.ef_delay_ms, s.be_goodput_mbps,
            s.be_delay_ms);
    if (background == 1.0) ef_goodput_idle = s.ef_goodput_mbps;
    if (background == 100.0) {
      ef_goodput_overload = s.ef_goodput_mbps;
      ef_delay_overload = s.ef_delay_ms;
    }
    if (background == 100.0) {
      ok &= bu::check(s.be_delay_ms > 5 * s.ef_delay_ms,
                      "under 2x overload, best-effort queues while EF "
                      "rides the priority queue");
    }
  }
  bu::rule();
  ok &= bu::check(ef_goodput_overload > 0.95 * ef_goodput_idle,
                  "EF goodput unaffected by best-effort overload");
  ok &= bu::check(ef_delay_overload < 3.0,
                  "EF delay stays near the propagation floor (2 ms)");
  bu::dump_metrics_snapshot("ef_delay_protection");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
