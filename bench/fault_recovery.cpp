// Robustness claim — hop-by-hop signalling over a lossy inter-BB fabric.
//
// The paper's protocol (§6.1–§6.4) assumes reliable delivery; this bench
// measures what the retry/backoff layer costs when that assumption breaks.
// For a 4-domain path and increasing per-link drop probability, we run a
// fixed batch of reservations (deterministic fault seed) and report the
// grant rate, the retransmission traffic and the mean latency of granted
// requests — plus the invariant the soak suite hammers: no trial, granted
// or abandoned, may leave residual committed bandwidth anywhere.
#include <cstdlib>

#include "bench_util.hpp"
#include "kit/chain_world.hpp"
#include "obs/instruments.hpp"

using namespace e2e;
using namespace e2e::kit;
namespace bu = e2e::benchutil;

namespace {

struct LossPoint {
  std::size_t granted = 0;
  std::uint64_t retransmits = 0;
  double mean_granted_latency_ms = 0;
  bool residual_free = true;
};

LossPoint run_batch(double drop, std::size_t trials) {
  ChainWorldConfig config;
  config.domains = 4;
  config.fault_profile.drop = drop;
  config.fault_seed = 42;
  config.retry_policy.max_attempts = 5;
  config.retry_policy.base_timeout = milliseconds(50);
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);

  auto& retransmits = obs::MetricsRegistry::global().counter(
      obs::kSigRetransmitsTotal, {{"engine", "hopbyhop"}});
  const std::uint64_t retransmits_before = retransmits.value();

  LossPoint point;
  double granted_latency_ms = 0;
  for (std::size_t i = 0; i < trials; ++i) {
    const auto msg = world.engine().build_user_request(
        alice.credentials(),
        world.spec(alice, 1e6 + 1e5 * static_cast<double>(i)), 0);
    const auto outcome = world.engine().reserve(*msg, seconds(1));
    if (!outcome.ok()) std::abort();
    if (outcome->reply.granted) {
      point.granted++;
      granted_latency_ms += to_milliseconds(outcome->latency);
      if (!world.engine().release_end_to_end(outcome->reply).ok()) {
        std::abort();
      }
    }
    point.residual_free &= world.total_reservations() == 0;
    world.engine().forget_completed_requests();
  }
  point.retransmits = retransmits.value() - retransmits_before;
  if (point.granted > 0) {
    point.mean_granted_latency_ms =
        granted_latency_ms / static_cast<double>(point.granted);
  }
  return point;
}

}  // namespace

int main() {
  constexpr std::size_t kTrials = 50;
  bu::heading("Robustness", "signalling under inter-BB message loss");
  bu::note("4-domain path, 20 ms links, 5-attempt retry budget with 50 ms");
  bu::note("base timeout (x2 backoff); 50 reservations per drop rate,");
  bu::note("deterministic fault seed. Latency averages granted requests.");

  bu::row("%-10s | %-10s %-12s %-16s", "drop", "granted", "retransmits",
          "mean lat(ms)");
  bu::rule();

  bool ok = true;
  LossPoint clean, heavy;
  for (double drop : {0.0, 0.05, 0.15, 0.30}) {
    const LossPoint point = run_batch(drop, kTrials);
    bu::row("%-10.2f | %-10zu %-12llu %-16.1f", drop, point.granted,
            static_cast<unsigned long long>(point.retransmits),
            point.mean_granted_latency_ms);
    ok &= bu::check(point.residual_free,
                    "no residual committed bandwidth at drop=" +
                        std::to_string(drop));
    if (drop == 0.0) clean = point;
    if (drop == 0.30) heavy = point;
  }
  bu::rule();

  ok &= bu::check(clean.granted == kTrials && clean.retransmits == 0,
                  "a clean fabric grants everything without a single "
                  "retransmission");
  ok &= bu::check(heavy.granted > 0,
                  "retries still land reservations at 30% per-link loss");
  ok &= bu::check(heavy.retransmits > 0 &&
                      heavy.mean_granted_latency_ms >
                          clean.mean_granted_latency_ms,
                  "recovery is paid for in retransmissions and latency, "
                  "not in leaked bandwidth");

  bu::dump_metrics_snapshot("fault_recovery");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
