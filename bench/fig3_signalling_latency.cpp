// Figure 3 / §3 — source-domain-based vs hop-by-hop signalling latency.
//
// Paper claim: "source-domain-based signalling may be faster than
// hop-by-hop based signalling, because the reservations for each domain can
// be made in parallel."
//
// Model: 20 ms one-way latency between adjacent domains; the end-to-end
// agent sits in the source domain, so reaching domain k costs k hops of
// latency (the control path follows the chain). Hop-by-hop pays the sum of
// adjacent RTTs; parallel source-based pays the max (the farthest domain);
// sequential source-based pays the sum of increasingly long RTTs — worst.
// `--daemon` reruns the identical scenario as two OS processes: a forked
// broker daemon (bench/daemon_harness.hpp) drives the same seeded world,
// so the table, the PASS lines and (E2E_GRANT_DUMP=1) the grant bytes must
// be byte-identical to the in-memory run. scripts/tier1.sh --daemon diffs
// the two modes.
#include <cmath>
#include <cstdlib>

#include "bench_util.hpp"
#include "daemon_harness.hpp"
#include "kit/chain_world.hpp"

using namespace e2e;
using namespace e2e::kit;
namespace bu = e2e::benchutil;

namespace {

struct Sample {
  double hop_by_hop_ms = 0;
  double source_seq_ms = 0;
  double source_par_ms = 0;
  std::size_t hbh_messages = 0;
  std::size_t src_messages = 0;
};

Sample run(std::size_t domains) {
  ChainWorldConfig config;
  config.domains = domains;
  config.inter_domain_latency = milliseconds(20);
  ChainWorld world(config);
  world.fabric().set_processing_delay(milliseconds(1));
  // The agent in the source domain reaches domain k over k chained hops.
  for (std::size_t i = 0; i < domains; ++i) {
    for (std::size_t j = i + 1; j < domains; ++j) {
      world.fabric().set_latency(ChainWorld::domain_name(i),
                                 ChainWorld::domain_name(j),
                                 milliseconds(20) * static_cast<int>(j - i));
    }
  }
  const WorldUser alice = world.make_user("Alice", 0, true, true);

  Sample s;
  {
    const auto msg = world.engine().build_user_request(
        alice.credentials(), world.spec(alice, 10e6), 0);
    const auto outcome = world.engine().reserve(*msg, seconds(1));
    if (!outcome.ok() || !outcome->reply.granted) std::abort();
    s.hop_by_hop_ms = to_milliseconds(outcome->latency);
    s.hbh_messages = outcome->messages;
    bu::maybe_dump_grant(outcome->reply.encode());
    if (!world.engine().release_end_to_end(outcome->reply).ok()) std::abort();
  }
  {
    const auto outcome = world.source_engine().reserve(
        world.names(), world.spec(alice, 10e6), alice.identity_cert,
        alice.identity_keys.priv, sig::SourceDomainEngine::Mode::kSequential,
        seconds(1));
    if (!outcome->reply.granted) std::abort();
    s.source_seq_ms = to_milliseconds(outcome->latency);
    s.src_messages = outcome->messages;
    bu::maybe_dump_grant(outcome->reply.encode());
    if (!world.source_engine().release_end_to_end(outcome->reply).ok()) {
      std::abort();
    }
  }
  {
    const auto outcome = world.source_engine().reserve(
        world.names(), world.spec(alice, 10e6), alice.identity_cert,
        alice.identity_keys.priv, sig::SourceDomainEngine::Mode::kParallel,
        seconds(1));
    if (!outcome->reply.granted) std::abort();
    s.source_par_ms = to_milliseconds(outcome->latency);
    bu::maybe_dump_grant(outcome->reply.encode());
  }
  return s;
}

/// The same operation sequence as run(), issued over the socket RPC to the
/// forked daemon. The daemon hosts an identically-seeded world, so the
/// sample — and the grant bytes — must match run() exactly.
Sample run_daemon(net::BbdClient& client, std::size_t domains) {
  if (!client.configure(domains).ok()) std::abort();
  if (!client.set_processing_delay(milliseconds(1)).ok()) std::abort();
  for (std::size_t i = 0; i < domains; ++i) {
    for (std::size_t j = i + 1; j < domains; ++j) {
      if (!client
               .set_latency(i, j, milliseconds(20) * static_cast<int>(j - i))
               .ok()) {
        std::abort();
      }
    }
  }
  if (!client.make_user("Alice", 0, true, true).ok()) std::abort();

  net::BbdClient::ReserveArgs args;
  args.user = "Alice";
  args.rate = 10e6;
  args.at = seconds(1);

  Sample s;
  {
    const auto outcome = client.reserve(args);
    if (!outcome.ok() || !outcome->reply.granted) std::abort();
    s.hop_by_hop_ms = to_milliseconds(outcome->latency);
    s.hbh_messages = outcome->messages;
    bu::maybe_dump_grant(outcome->reply_bytes);
    if (!client.release("hopbyhop", outcome->reply_bytes).ok()) std::abort();
  }
  {
    args.parallel = false;
    const auto outcome = client.source_reserve(args);
    if (!outcome.ok() || !outcome->reply.granted) std::abort();
    s.source_seq_ms = to_milliseconds(outcome->latency);
    s.src_messages = outcome->messages;
    bu::maybe_dump_grant(outcome->reply_bytes);
    if (!client.release("source", outcome->reply_bytes).ok()) std::abort();
  }
  {
    args.parallel = true;
    const auto outcome = client.source_reserve(args);
    if (!outcome.ok() || !outcome->reply.granted) std::abort();
    s.source_par_ms = to_milliseconds(outcome->latency);
    bu::maybe_dump_grant(outcome->reply_bytes);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const bool daemon = bu::daemon_mode(argc, argv);
  bu::heading("Figure 3 / Section 3",
              "signalling latency: source-based vs hop-by-hop");
  bu::note("20 ms one-way per adjacent domain pair, 1 ms broker processing.");
  bu::row("%-8s %-16s %-18s %-16s %-10s %-10s", "domains", "hop-by-hop(ms)",
          "source-seq(ms)", "source-par(ms)", "hbh msgs", "src msgs");
  bu::rule();

  bool parallel_always_fastest = true;
  bool hbh_beats_sequential = true;  // meaningful from 3 domains up; at 2
                                     // domains the two strategies coincide
                                     // (one remote BB either way).
  double last_gap = 0;
  double printed_hbh_total_us = 0;  // accumulates the table's hop-by-hop
                                    // column for the snapshot cross-check
  std::size_t printed_hbh_rows = 0;

  std::unique_ptr<bu::DaemonHarness> harness;
  std::unique_ptr<net::BbdClient> client;
  if (daemon) {
    harness = std::make_unique<bu::DaemonHarness>(bu::DaemonHarness::launch());
    auto connected = harness->connect();
    if (!connected.ok()) std::abort();
    client = std::make_unique<net::BbdClient>(std::move(connected.value()));
  }

  for (std::size_t n = 2; n <= 8; ++n) {
    const Sample s = daemon ? run_daemon(*client, n) : run(n);
    bu::row("%-8zu %-16.1f %-18.1f %-16.1f %-10zu %-10zu", n,
            s.hop_by_hop_ms, s.source_seq_ms, s.source_par_ms,
            s.hbh_messages, s.src_messages);
    parallel_always_fastest &= s.source_par_ms < s.hop_by_hop_ms;
    if (n >= 3) hbh_beats_sequential &= s.hop_by_hop_ms <= s.source_seq_ms;
    last_gap = s.hop_by_hop_ms - s.source_par_ms;
    printed_hbh_total_us += s.hop_by_hop_ms * 1000.0;
    printed_hbh_rows++;
  }

  bu::rule();
  bool ok = true;
  ok &= bu::check(parallel_always_fastest,
                  "parallel source-based signalling is faster than "
                  "hop-by-hop (the paper's stated trade-off)");
  ok &= bu::check(hbh_beats_sequential,
                  "hop-by-hop is no slower than sequential source-based "
                  "signalling once the path has >= 3 domains (sequential "
                  "re-crosses ever-longer distances from the source)");
  ok &= bu::check(last_gap > 0,
                  "the gap grows with path length (parallelism wins more "
                  "on longer paths)");

  // The metrics snapshot must agree with the printed table: the hop-by-hop
  // end-to-end latency histogram saw exactly one observation per table row
  // and its sum is the hop-by-hop column total. In daemon mode the
  // histogram lives in the daemon's registry, so it is queried over the
  // wire — same numbers, same printed check lines.
  double hbh_count = 0;
  double hbh_sum = 0;
  if (daemon) {
    const auto count = client->metric("e2e_sig_e2e_latency_us",
                                      "engine=hopbyhop", "count");
    const auto sum =
        client->metric("e2e_sig_e2e_latency_us", "engine=hopbyhop", "sum");
    if (!count.ok() || !sum.ok()) std::abort();
    hbh_count = count.value();
    hbh_sum = sum.value();
  } else {
    const auto& hbh_latency = obs::MetricsRegistry::global().histogram(
        "e2e_sig_e2e_latency_us", {{"engine", "hopbyhop"}});
    hbh_count = static_cast<double>(hbh_latency.count());
    hbh_sum = hbh_latency.sum();
  }
  ok &= bu::check(hbh_count == static_cast<double>(printed_hbh_rows),
                  "metrics snapshot: hop-by-hop latency histogram count "
                  "matches the table rows");
  ok &= bu::check(std::abs(hbh_sum - printed_hbh_total_us) < 1.0,
                  "metrics snapshot: hop-by-hop latency histogram sum "
                  "matches the table total");
  if (daemon) {
    if (!client->shutdown_daemon().ok()) std::abort();
    client.reset();
  } else {
    bu::dump_metrics_snapshot("fig3_signalling_latency");
  }
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
