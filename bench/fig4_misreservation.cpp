// Figure 4 — the misreservation attack.
//
// "David, a malicious user in domain D, makes a reservation in domains D
// and B, but fails to make a reservation in domain C ... Domain C polices
// traffic based on traffic aggregates, not on individual users, so it
// cannot tell the difference between David's reserved traffic and Alice's
// reserved traffic. Therefore, there will be more reserved traffic entering
// domain C than domain C expects, causing it to discard or downgrade the
// extra traffic, thereby affecting Alice's reservation."
//
// Three worlds on the same topology (D and A feed B; B feeds C):
//   baseline     : only Alice reserved (hop-by-hop), no attacker traffic.
//   hop-by-hop   : David tries an end-to-end reservation; C denies it, so
//                  his edge router never marks his traffic — Alice is safe.
//   source-based : David reserves only in D and B (reserve_subset — nothing
//                  stops him), his traffic enters the EF aggregate and the
//                  B->C aggregate policer degrades Alice.
#include <cstdlib>

#include "bench_util.hpp"
#include "gara/edge_binding.hpp"
#include "net/simulator.hpp"
#include "policy/cas.hpp"
#include "sig/hopbyhop.hpp"
#include "sig/source_signalling.hpp"

using namespace e2e;
namespace bu = e2e::benchutil;

namespace {

constexpr TimeInterval kValidity{0, hours(24)};
constexpr double kAliceReserved = 10e6;
constexpr double kAliceOffered = 9e6;  // users shape slightly under profile
constexpr double kDavidRate = 10e6;
constexpr SimTime kSimEnd = seconds(5);

struct World {
  Rng rng{1};
  std::vector<std::string> names{"DomainD", "DomainA", "DomainB", "DomainC"};
  std::vector<std::unique_ptr<crypto::CertificateAuthority>> cas;
  std::vector<std::unique_ptr<bb::BandwidthBroker>> brokers;
  sig::Fabric fabric;
  sig::HopByHopEngine engine{fabric, rng};
  sig::SourceDomainEngine source_engine{fabric};

  // Simulator topology.
  net::Topology topo;
  net::RouterId edge_d, edge_a, core_b, edge_c;
  net::LinkId link_db, link_ab, link_bc;

  World() {
    // Control plane: C only grants Alice (its local policy).
    for (std::size_t i = 0; i < names.size(); ++i) {
      cas.push_back(std::make_unique<crypto::CertificateAuthority>(
          crypto::DistinguishedName::make("CA-" + names[i], names[i]), rng,
          kValidity, 256));
      const char* policy_src =
          names[i] == "DomainC" ? "If User = Alice Return GRANT\nReturn DENY"
                                : "Return GRANT";
      policy::PolicyServer server(
          names[i], policy::Policy::compile(policy_src).value());
      brokers.push_back(std::make_unique<bb::BandwidthBroker>(
          bb::BrokerConfig{names[i], 622e6, 256}, std::move(server), *cas[i],
          rng, kValidity));
    }
    auto sla = [this](std::size_t from, std::size_t to, double rate) {
      sla::ServiceLevelAgreement a;
      a.from_domain = names[from];
      a.to_domain = names[to];
      a.profile.rate_bits_per_s = rate;
      a.profile.burst_bits = 100000;
      a.validity = kValidity;
      a.peer_bb_certificate = brokers[from]->certificate();
      a.peer_ca_certificate = cas[from]->root_certificate();
      brokers[to]->add_upstream_sla(a);
      brokers[from]->trust_store().add_anchor(cas[to]->root_certificate());
    };
    sla(0, 2, 50e6);  // D -> B
    sla(1, 2, 50e6);  // A -> B
    sla(2, 3, 50e6);  // B -> C
    brokers[0]->set_next_hop("DomainC", "DomainB");
    brokers[1]->set_next_hop("DomainC", "DomainB");
    brokers[2]->set_next_hop("DomainC", "DomainC");
    for (auto& b : brokers) engine.add_domain(*b);
    for (auto& b : brokers) source_engine.add_domain(*b);
    if (!engine.connect_peers("DomainD", "DomainB", 0).ok()) std::abort();
    if (!engine.connect_peers("DomainA", "DomainB", 0).ok()) std::abort();
    if (!engine.connect_peers("DomainB", "DomainC", 0).ok()) std::abort();

    // Data plane.
    const auto dd = topo.add_domain("DomainD");
    const auto da = topo.add_domain("DomainA");
    const auto db = topo.add_domain("DomainB");
    const auto dc = topo.add_domain("DomainC");
    edge_d = topo.add_router(dd, "edge-D", true);
    edge_a = topo.add_router(da, "edge-A", true);
    core_b = topo.add_router(db, "core-B", false);
    edge_c = topo.add_router(dc, "edge-C", true);
    link_db = topo.add_link(edge_d, core_b, 100e6, milliseconds(5));
    link_ab = topo.add_link(edge_a, core_b, 100e6, milliseconds(5));
    link_bc = topo.add_link(core_b, edge_c, 100e6, milliseconds(5));
  }

  struct UserMaterial {
    crypto::DistinguishedName dn;
    crypto::KeyPair keys;
    crypto::Certificate cert;
  };
  UserMaterial make_user(const char* name, std::size_t home,
                         bool known_everywhere) {
    UserMaterial u{crypto::DistinguishedName::make(name, names[home]),
                   crypto::generate_keypair(rng, 256),
                   crypto::Certificate()};
    u.cert = cas[home]->issue(u.dn, u.keys.pub, kValidity);
    engine.register_local_user(names[home], u.cert);
    if (known_everywhere) {
      for (const auto& d : names) source_engine.register_user(d, u.cert);
    }
    return u;
  }

  bb::ResSpec spec(const UserMaterial& u, const std::string& src,
                   double rate) {
    bb::ResSpec s;
    s.user = u.dn.to_string();
    s.source_domain = src;
    s.destination_domain = "DomainC";
    s.rate_bits_per_s = rate;
    s.burst_bits = 120000;  // 10 packets of burst tolerance
    s.interval = {0, kSimEnd};
    return s;
  }
};

enum class Attacker { kNone, kHopByHop, kSourceBased };

struct RunResult {
  double alice_premium_mbps = 0;
  double david_premium_mbps = 0;
  bool david_reservation_granted = false;
};

RunResult run(Attacker attacker, sla::ExcessTreatment excess) {
  World w;
  auto alice = w.make_user("Alice", 1, true);
  auto david = w.make_user("David", 0, true);

  net::Simulator sim(std::move(w.topo), /*seed=*/7);

  // Traffic: Poisson arrivals for both flows. (Synchronized CBR flows
  // phase-lock into a deterministic all-or-nothing split, and a lone CBR
  // flow's regular spacing wins most token-bucket contention; Poisson
  // yields the proportional sharing an aggregate policer produces for
  // statistically multiplexed traffic.)
  net::FlowDescription fa;
  fa.name = "alice";
  fa.source = w.edge_a;
  fa.destination = w.edge_c;
  fa.wants_premium = true;
  fa.pattern = net::TrafficPattern::poisson(kAliceOffered);
  const net::FlowId alice_flow = sim.add_flow(fa).value();

  net::FlowDescription fd;
  fd.name = "david";
  fd.source = w.edge_d;
  fd.destination = w.edge_c;
  fd.wants_premium = true;
  fd.pattern = net::TrafficPattern::poisson(kDavidRate);
  const net::FlowId david_flow = sim.add_flow(fd).value();

  // Edge bindings: commits at the users' source brokers install edge
  // policers.
  gara::EdgeBinding bind_a(sim, w.link_ab, excess);
  bind_a.bind_flow(alice.dn.to_string(), alice_flow);
  bind_a.attach(*w.brokers[1]);
  gara::EdgeBinding bind_d(sim, w.link_db, excess);
  bind_d.bind_flow(david.dn.to_string(), david_flow);
  bind_d.attach(*w.brokers[0]);

  // Alice reserves end-to-end (hop-by-hop). Always succeeds.
  sig::UserCredentials alice_creds;
  alice_creds.identity_certificate = alice.cert;
  alice_creds.identity_key = alice.keys.priv;
  const auto alice_msg = w.engine.build_user_request(
      alice_creds, w.spec(alice, "DomainA", kAliceReserved), 0);
  const auto alice_outcome = w.engine.reserve(*alice_msg, 0);
  if (!alice_outcome.ok() || !alice_outcome->reply.granted) std::abort();

  RunResult result;
  switch (attacker) {
    case Attacker::kNone:
      break;
    case Attacker::kHopByHop: {
      // David plays by the rules: hop-by-hop contacts every BB, and C's
      // policy rejects him — no edge policer is ever installed.
      sig::UserCredentials creds;
      creds.identity_certificate = david.cert;
      creds.identity_key = david.keys.priv;
      const auto msg = w.engine.build_user_request(
          creds, w.spec(david, "DomainD", kDavidRate), 0);
      const auto outcome = w.engine.reserve(*msg, 0);
      result.david_reservation_granted = outcome->reply.granted;
      break;
    }
    case Attacker::kSourceBased: {
      // David skips domain C entirely.
      const auto outcome = w.source_engine.reserve_subset(
          {"DomainD", "DomainB"}, "DomainD",
          w.spec(david, "DomainD", kDavidRate), david.cert, david.keys.priv,
          sig::SourceDomainEngine::Mode::kSequential, 0);
      result.david_reservation_granted = outcome->reply.granted;
      break;
    }
  }

  // Domain C's ingress polices the premium *aggregate* to what C committed
  // (Alice's 10 Mb/s) — it cannot tell flows apart.
  const double expected_by_c = w.brokers[3]->committed_at(seconds(1));
  sim.set_aggregate_policer(w.link_bc,
                            net::TokenBucket(expected_by_c, 120000), excess);

  sim.run_until(kSimEnd);
  result.alice_premium_mbps =
      sim.stats(alice_flow).premium_goodput_bits_per_s(kSimEnd) / 1e6;
  result.david_premium_mbps =
      sim.stats(david_flow).premium_goodput_bits_per_s(kSimEnd) / 1e6;
  return result;
}

}  // namespace

int main() {
  bu::heading("Figure 4", "misreservation attack on the DiffServ data plane");
  bu::note("Alice: 10 Mb/s reserved A->C (offers 9 Mb/s). David offers 10 Mb/s D->C.");
  bu::note("Domain C polices the EF aggregate at its ingress (B->C link).");

  bool ok = true;
  for (const auto excess :
       {sla::ExcessTreatment::kDrop, sla::ExcessTreatment::kDowngrade}) {
    bu::rule();
    bu::note(std::string("excess treatment at boundaries: ") +
             sla::to_string(excess));
    bu::row("%-34s %-14s %-22s %-22s", "scenario", "David granted",
            "Alice premium (Mb/s)", "David premium (Mb/s)");
    bu::rule();
    const RunResult baseline = run(Attacker::kNone, excess);
    const RunResult hbh = run(Attacker::kHopByHop, excess);
    const RunResult src = run(Attacker::kSourceBased, excess);
    bu::row("%-34s %-14s %-22.2f %-22.2f", "baseline (no attacker)", "-",
            baseline.alice_premium_mbps, baseline.david_premium_mbps);
    bu::row("%-34s %-14s %-22.2f %-22.2f",
            "hop-by-hop (David must ask C)",
            hbh.david_reservation_granted ? "yes" : "no",
            hbh.alice_premium_mbps, hbh.david_premium_mbps);
    bu::row("%-34s %-14s %-22.2f %-22.2f",
            "source-based (David skips C)",
            src.david_reservation_granted ? "yes" : "no",
            src.alice_premium_mbps, src.david_premium_mbps);
    bu::rule();

    ok &= bu::check(baseline.alice_premium_mbps > 8.5,
                    "baseline: Alice receives her (shaped) offered load");
    ok &= bu::check(!hbh.david_reservation_granted,
                    "hop-by-hop: domain C's policy stops David's "
                    "reservation (all BBs are always contacted)");
    ok &= bu::check(hbh.alice_premium_mbps > 8.5,
                    "hop-by-hop: Alice unaffected by David");
    ok &= bu::check(src.david_reservation_granted,
                    "source-based: nothing stops David's incomplete "
                    "reservation in D and B");
    ok &= bu::check(src.alice_premium_mbps < 0.8 * baseline.alice_premium_mbps,
                    "source-based: David's excess EF traffic degrades "
                    "Alice's premium goodput at C's aggregate policer");
  }
  bu::dump_metrics_snapshot("fig4_misreservation");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
