// Substrate validation — advance-reservation admission control.
//
// GARA-style advance reservations (paper §3) require interval-aware
// bookkeeping. This bench offers random reservation workloads at
// increasing load factors and reports acceptance rate and achieved
// utilization of the committed schedule: acceptance falls as load grows,
// while committed utilization saturates, and the capacity invariant is
// never violated.
#include <cstdlib>

#include "bb/admission.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"

using namespace e2e;
using namespace e2e::bb;
namespace bu = e2e::benchutil;

namespace {

struct Sample {
  double acceptance = 0;
  double utilization = 0;  // committed rate-time / capacity-time
  bool invariant_held = true;
};

Sample run(double load_factor, std::uint64_t seed) {
  const double capacity = 1e9;
  const SimTime horizon = hours(1);
  CapacityPool pool(capacity);
  Rng rng(seed);

  // Offer reservations until the offered rate-time reaches
  // load_factor * capacity * horizon.
  const double target_offered =
      load_factor * capacity * to_seconds(horizon);
  double offered = 0;
  double committed = 0;
  std::size_t requests = 0;
  std::size_t accepted = 0;
  while (offered < target_offered) {
    const SimTime start =
        static_cast<SimTime>(rng.next_below(3600)) * seconds(1);
    const SimDuration len =
        (1 + static_cast<SimDuration>(rng.next_below(600))) * seconds(1);
    const TimeInterval interval{start,
                                std::min<SimTime>(start + len, horizon)};
    if (!interval.valid()) continue;
    const double rate = 1e6 * static_cast<double>(1 + rng.next_below(100));
    offered += rate * to_seconds(interval.length());
    ++requests;
    if (pool.commit("r" + std::to_string(requests), interval, rate).ok()) {
      ++accepted;
      committed += rate * to_seconds(interval.length());
    }
  }

  Sample s;
  s.acceptance = static_cast<double>(accepted) /
                 static_cast<double>(requests);
  s.utilization = committed / (capacity * to_seconds(horizon));
  // Invariant sweep: no instant oversubscribed.
  for (SimTime t = 0; t < horizon; t += seconds(30)) {
    if (pool.committed_at(t) > capacity + 1e-3) s.invariant_held = false;
  }
  return s;
}

}  // namespace

int main() {
  bu::heading("Substrate", "advance-reservation admission packing");
  bu::note("Random (start, duration, rate) requests against a 1 Gb/s pool");
  bu::note("over a 1 h horizon, swept by offered load factor.");
  bu::row("%-12s %-14s %-14s %-10s", "load", "acceptance", "utilization",
          "invariant");
  bu::rule();
  bool ok = true;
  double acc_low = 0, acc_high = 0, util_high = 0;
  for (double load : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const Sample s = run(load, 42);
    bu::row("%-12.2f %-14.2f %-14.2f %-10s", load, s.acceptance,
            s.utilization, s.invariant_held ? "held" : "VIOLATED");
    ok &= s.invariant_held;
    if (load == 0.25) acc_low = s.acceptance;
    if (load == 4.0) {
      acc_high = s.acceptance;
      util_high = s.utilization;
    }
  }
  bu::rule();
  ok &= bu::check(acc_low > 0.9,
                  "light load: nearly everything is admitted");
  ok &= bu::check(acc_high < 0.5,
                  "heavy overload: admission control rejects most requests");
  ok &= bu::check(util_high > 0.5,
                  "the schedule still packs substantial utilization under "
                  "overload");
  ok &= bu::check(ok, "capacity invariant held at every probed instant");
  bu::dump_metrics_snapshot("admission_packing");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
