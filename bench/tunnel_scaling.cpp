// Claim T (§1, §6.4) — tunnels make per-flow signalling independent of the
// number of intermediate domains.
//
// "If a set of applications creates many parallel flows between the same
// two end-domains, it is infeasible to negotiate an end-to-end reservation
// for each one. ... Users authorized to use this tunnel can then request
// portions of this aggregate bandwidth by contacting just the two end
// domains."
//
// For F flows over an N-domain path:
//   per-flow end-to-end : every flow triggers 2N messages and pays the
//                         whole chain's latency;
//   tunnel              : one end-to-end establishment, then 3 messages
//                         per flow and one direct RTT, regardless of N.
// `--daemon` reruns the identical scenario as two OS processes via the
// forked broker daemon (bench/daemon_harness.hpp); the printed tables and
// (E2E_GRANT_DUMP=1) the grant bytes must be byte-identical to the
// in-memory run. scripts/tier1.sh --daemon diffs the two modes.
#include <cstdlib>

#include "bench_util.hpp"
#include "daemon_harness.hpp"
#include "kit/chain_world.hpp"

using namespace e2e;
using namespace e2e::kit;
namespace bu = e2e::benchutil;

namespace {

struct Totals {
  std::uint64_t messages = 0;
  double total_latency_ms = 0;
  std::size_t granted = 0;
};

Totals per_flow_e2e(std::size_t domains, std::size_t flows) {
  ChainWorldConfig config;
  config.domains = domains;
  config.domain_capacity = 10e9;
  config.sla_rate = 10e9;
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);
  Totals t;
  for (std::size_t i = 0; i < flows; ++i) {
    bb::ResSpec spec = world.spec(alice, 1e6);
    const auto msg =
        world.engine().build_user_request(alice.credentials(), spec, 0);
    const auto outcome = world.engine().reserve(*msg, seconds(1));
    if (!outcome.ok() || !outcome->reply.granted) std::abort();
    t.messages += outcome->messages;
    t.total_latency_ms += to_milliseconds(outcome->latency);
    t.granted++;
    bu::maybe_dump_grant(outcome->reply.encode());
  }
  return t;
}

Totals per_flow_e2e_daemon(net::BbdClient& client, std::size_t domains,
                           std::size_t flows) {
  if (!client.configure(domains, 0, 0, 10e9, 10e9).ok()) std::abort();
  if (!client.make_user("Alice", 0).ok()) std::abort();
  net::BbdClient::ReserveArgs args;
  args.user = "Alice";
  args.rate = 1e6;
  args.at = seconds(1);
  Totals t;
  for (std::size_t i = 0; i < flows; ++i) {
    const auto outcome = client.reserve(args);
    if (!outcome.ok() || !outcome->reply.granted) std::abort();
    t.messages += outcome->messages;
    t.total_latency_ms += to_milliseconds(outcome->latency);
    t.granted++;
    bu::maybe_dump_grant(outcome->reply_bytes);
  }
  return t;
}

Totals tunnel_based(std::size_t domains, std::size_t flows,
                    std::uint64_t* establishment_messages) {
  ChainWorldConfig config;
  config.domains = domains;
  config.domain_capacity = 10e9;
  config.sla_rate = 10e9;
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);
  bb::ResSpec agg = world.spec(alice, 1e9, {0, seconds(36000)});
  agg.is_tunnel = true;
  const auto msg =
      world.engine().build_user_request(alice.credentials(), agg, 0);
  const auto established = world.engine().reserve(*msg, seconds(1));
  if (!established.ok() || !established->reply.granted) std::abort();
  *establishment_messages = established->messages;
  bu::maybe_dump_grant(established->reply.encode());

  Totals t;
  for (std::size_t i = 0; i < flows; ++i) {
    const auto flow = world.engine().reserve_in_tunnel(
        established->reply.tunnel_id, alice.dn.to_string(), 1e6,
        {0, seconds(600)}, seconds(2));
    if (!flow.ok() || !flow->reply.granted) std::abort();
    t.messages += flow->messages;
    t.total_latency_ms += to_milliseconds(flow->latency);
    t.granted++;
    bu::maybe_dump_grant(flow->reply.encode());
  }
  return t;
}

Totals tunnel_based_daemon(net::BbdClient& client, std::size_t domains,
                           std::size_t flows,
                           std::uint64_t* establishment_messages) {
  if (!client.configure(domains, 0, 0, 10e9, 10e9).ok()) std::abort();
  const auto dn = client.make_user("Alice", 0);
  if (!dn.ok()) std::abort();
  net::BbdClient::ReserveArgs agg;
  agg.user = "Alice";
  agg.rate = 1e9;
  agg.interval = {0, seconds(36000)};
  agg.is_tunnel = true;
  agg.at = seconds(1);
  const auto established = client.reserve(agg);
  if (!established.ok() || !established->reply.granted) std::abort();
  *establishment_messages = established->messages;
  bu::maybe_dump_grant(established->reply_bytes);

  Totals t;
  for (std::size_t i = 0; i < flows; ++i) {
    const auto flow =
        client.tunnel_reserve(established->reply.tunnel_id, dn.value(), 1e6,
                              {0, seconds(600)}, seconds(2));
    if (!flow.ok() || !flow->reply.granted) std::abort();
    t.messages += flow->messages;
    t.total_latency_ms += to_milliseconds(flow->latency);
    t.granted++;
    bu::maybe_dump_grant(flow->reply_bytes);
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const bool daemon = bu::daemon_mode(argc, argv);
  bu::heading("Claim T", "tunnel scalability for parallel flows");
  bu::note("F flows between the same end domains over an N-domain path;");
  bu::note("20 ms per inter-domain hop. Tunnel numbers exclude the one-time");
  bu::note("establishment (reported separately).");

  bu::row("%-8s %-7s | %-12s %-14s | %-10s %-12s %-14s", "domains", "flows",
          "e2e msgs", "e2e lat(ms)", "tun msgs", "tun estab", "tun lat(ms)");
  bu::rule();

  std::unique_ptr<bu::DaemonHarness> harness;
  std::unique_ptr<net::BbdClient> client;
  if (daemon) {
    harness = std::make_unique<bu::DaemonHarness>(bu::DaemonHarness::launch());
    auto connected = harness->connect();
    if (!connected.ok()) std::abort();
    client = std::make_unique<net::BbdClient>(std::move(connected.value()));
  }

  bool ok = true;
  std::uint64_t tunnel_msgs_3d = 0, tunnel_msgs_7d = 0;
  for (std::size_t domains : {3u, 5u, 7u}) {
    for (std::size_t flows : {1u, 16u, 64u}) {
      const Totals e2e = daemon ? per_flow_e2e_daemon(*client, domains, flows)
                                : per_flow_e2e(domains, flows);
      std::uint64_t establishment = 0;
      const Totals tun =
          daemon ? tunnel_based_daemon(*client, domains, flows, &establishment)
                 : tunnel_based(domains, flows, &establishment);
      bu::row("%-8zu %-7zu | %-12llu %-14.0f | %-10llu %-12llu %-14.0f",
              domains, flows,
              static_cast<unsigned long long>(e2e.messages),
              e2e.total_latency_ms,
              static_cast<unsigned long long>(tun.messages),
              static_cast<unsigned long long>(establishment),
              tun.total_latency_ms);
      if (flows == 64 && domains == 3) tunnel_msgs_3d = tun.messages;
      if (flows == 64 && domains == 7) tunnel_msgs_7d = tun.messages;
      if (flows == 64) {
        ok &= bu::check(tun.messages < e2e.messages,
                        "tunnel signalling sends fewer messages at " +
                            std::to_string(domains) + " domains / 64 flows");
        ok &= bu::check(tun.total_latency_ms < e2e.total_latency_ms,
                        "and lower cumulative latency");
      }
    }
  }
  bu::rule();
  ok &= bu::check(tunnel_msgs_3d == tunnel_msgs_7d,
                  "per-flow tunnel signalling is INDEPENDENT of the number "
                  "of intermediate domains (only the 2 end domains are "
                  "contacted)");

  // Aggregate admission is still enforced within the tunnel.
  std::size_t admitted = 0;
  if (daemon) {
    if (!client->configure(0).ok()) std::abort();
    const auto dn = client->make_user("Alice", 0);
    if (!dn.ok()) std::abort();
    net::BbdClient::ReserveArgs agg;
    agg.user = "Alice";
    agg.rate = 10e6;
    agg.interval = {0, seconds(3600)};
    agg.is_tunnel = true;
    agg.at = seconds(1);
    const auto established = client->reserve(agg);
    if (!established.ok() || !established->reply.granted) std::abort();
    for (int i = 0; i < 20; ++i) {
      const auto flow =
          client->tunnel_reserve(established->reply.tunnel_id, dn.value(),
                                 1e6, {0, seconds(600)}, seconds(2));
      if (flow.ok() && flow->reply.granted) ++admitted;
    }
  } else {
    ChainWorld world;
    const WorldUser alice = world.make_user("Alice", 0);
    bb::ResSpec agg = world.spec(alice, 10e6, {0, seconds(3600)});
    agg.is_tunnel = true;
    const auto msg =
        world.engine().build_user_request(alice.credentials(), agg, 0);
    const auto established = world.engine().reserve(*msg, seconds(1));
    for (int i = 0; i < 20; ++i) {
      const auto flow = world.engine().reserve_in_tunnel(
          established->reply.tunnel_id, alice.dn.to_string(), 1e6,
          {0, seconds(600)}, seconds(2));
      if (flow.ok() && flow->reply.granted) ++admitted;
    }
  }
  ok &= bu::check(admitted == 10,
                  "a 10 Mb/s tunnel admits exactly ten 1 Mb/s flows — the "
                  "aggregate stays enforced without contacting the "
                  "intermediate domains");
  if (daemon) {
    if (!client->shutdown_daemon().ok()) std::abort();
    client.reset();
  } else {
    bu::dump_metrics_snapshot("tunnel_scaling");
  }
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
