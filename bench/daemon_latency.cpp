// Daemon transport overhead: wall-clock RAR setup latency through the
// in-memory world vs the same operation over the UNIX-socket daemon.
//
// Both paths execute the identical hop-by-hop reserve+release against an
// identically-seeded 3-domain world; the virtual (modeled) latency is the
// same by construction, so the wall-clock difference is pure transport
// cost: length framing, the sealed channel, and the daemon's event loop.
// Writes BENCH_daemon.json via scripts/bench_snapshot.sh; the numbers are
// tracked in docs/PERFORMANCE.md.
//
// Usage: daemon_latency [--smoke] [--json-out PATH]
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "daemon_harness.hpp"
#include "kit/chain_world.hpp"

using namespace e2e;
using namespace e2e::kit;
namespace bu = e2e::benchutil;

namespace {

struct Quantiles {
  double p50_us = 0;
  double p99_us = 0;
};

Quantiles quantiles(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  Quantiles q;
  q.p50_us = samples[samples.size() / 2];
  q.p99_us = samples[std::min(samples.size() - 1,
                              (samples.size() * 99) / 100)];
  return q;
}

double elapsed_us(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

Quantiles run_local(std::size_t iterations) {
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  std::vector<double> samples;
  samples.reserve(iterations);
  for (std::size_t i = 0; i < iterations; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const auto msg = world.engine().build_user_request(
        alice.credentials(), world.spec(alice, 1e6), seconds(1));
    const auto outcome = world.engine().reserve(*msg, seconds(1));
    if (!outcome.ok() || !outcome->reply.granted) std::abort();
    if (!world.engine().release_end_to_end(outcome->reply).ok()) {
      std::abort();
    }
    samples.push_back(elapsed_us(start));
  }
  return quantiles(std::move(samples));
}

Quantiles run_daemon(std::size_t iterations) {
  bu::DaemonHarness harness = bu::DaemonHarness::launch();
  auto connected = harness.connect();
  if (!connected.ok()) std::abort();
  net::BbdClient client = std::move(connected.value());
  if (!client.make_user("Alice", 0).ok()) std::abort();
  net::BbdClient::ReserveArgs args;
  args.user = "Alice";
  args.rate = 1e6;
  args.at = seconds(1);
  std::vector<double> samples;
  samples.reserve(iterations);
  for (std::size_t i = 0; i < iterations; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const auto outcome = client.reserve(args);
    if (!outcome.ok() || !outcome->reply.granted) std::abort();
    if (!client.release("hopbyhop", outcome->reply_bytes).ok()) std::abort();
    samples.push_back(elapsed_us(start));
  }
  if (!client.shutdown_daemon().ok()) std::abort();
  return quantiles(std::move(samples));
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t iterations = 200;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      iterations = 20;
    } else if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    }
  }

  bu::heading("daemon_latency",
              "RAR setup wall-clock: in-memory world vs UNIX-socket daemon");
  bu::note("hop-by-hop reserve+release on a 3-domain world, " +
           std::to_string(iterations) + " iterations per mode.");

  const Quantiles local = run_local(iterations);
  const Quantiles daemon = run_daemon(iterations);

  bu::row("%-14s %-12s %-12s", "mode", "p50(us)", "p99(us)");
  bu::rule();
  bu::row("%-14s %-12.0f %-12.0f", "in-memory", local.p50_us, local.p99_us);
  bu::row("%-14s %-12.0f %-12.0f", "daemon-unix", daemon.p50_us,
          daemon.p99_us);
  bu::rule();
  bu::note("daemon p50 overhead: " +
           std::to_string(daemon.p50_us - local.p50_us) + " us per setup");

  bool ok = true;
  ok &= bu::check(daemon.p50_us > 0 && local.p50_us > 0,
                  "both modes completed every reserve+release");

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << "{\n"
        << " \"bench\": \"daemon_latency\",\n"
        << " \"iterations\": " << iterations << ",\n"
        << " \"local\": {\"p50_us\": " << local.p50_us
        << ", \"p99_us\": " << local.p99_us << "},\n"
        << " \"daemon_unix\": {\"p50_us\": " << daemon.p50_us
        << ", \"p99_us\": " << daemon.p99_us << "}\n"
        << "}\n";
    ok &= bu::check(static_cast<bool>(out), "wrote " + json_out);
  }
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
