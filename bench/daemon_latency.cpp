// Daemon transport overhead: wall-clock RAR setup latency through the
// in-memory world vs the same operation over the UNIX-socket daemon.
//
// Both paths execute the identical hop-by-hop reserve+release against an
// identically-seeded 3-domain world; the virtual (modeled) latency is the
// same by construction, so the wall-clock difference is pure transport
// cost: length framing, the sealed channel, and the daemon's event loop.
// A third mode reruns the daemon path while a concurrent scraper hammers
// the --admin plane (/metrics + /statz), measuring the telemetry plane's
// impact on RPC latency; the full (non-smoke) run gates scraped p99
// within 5% of unscraped. Writes BENCH_daemon.json via
// scripts/bench_snapshot.sh (which folds the scrape-overhead series into
// BENCH_obs.json); the numbers are tracked in docs/PERFORMANCE.md.
//
// Usage: daemon_latency [--smoke] [--json-out PATH]
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "daemon_harness.hpp"
#include "kit/chain_world.hpp"
#include "net/stream_socket.hpp"

using namespace e2e;
using namespace e2e::kit;
namespace bu = e2e::benchutil;

namespace {

struct Quantiles {
  double p50_us = 0;
  double p99_us = 0;
};

Quantiles quantiles(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  Quantiles q;
  q.p50_us = samples[samples.size() / 2];
  q.p99_us = samples[std::min(samples.size() - 1,
                              (samples.size() * 99) / 100)];
  return q;
}

double elapsed_us(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

Quantiles run_local(std::size_t iterations) {
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  std::vector<double> samples;
  samples.reserve(iterations);
  for (std::size_t i = 0; i < iterations; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const auto msg = world.engine().build_user_request(
        alice.credentials(), world.spec(alice, 1e6), seconds(1));
    const auto outcome = world.engine().reserve(*msg, seconds(1));
    if (!outcome.ok() || !outcome->reply.granted) std::abort();
    if (!world.engine().release_end_to_end(outcome->reply).ok()) {
      std::abort();
    }
    samples.push_back(elapsed_us(start));
  }
  return quantiles(std::move(samples));
}

/// One admin-plane HTTP GET: connect, request, drain to EOF. Returns
/// false when the plane was unreachable (the scraper just retries).
bool admin_get(const net::Endpoint& endpoint, const std::string& path) {
  auto sock = net::StreamSocket::connect(endpoint);
  if (!sock.ok()) return false;
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!sock
           ->send_raw(BytesView(
               reinterpret_cast<const std::uint8_t*>(request.data()),
               request.size()))
           .ok()) {
    return false;
  }
  char buffer[4096];
  std::size_t total = 0;
  while (true) {
    const ssize_t n = ::read(sock->fd(), buffer, sizeof buffer);
    if (n <= 0) break;
    total += static_cast<std::size_t>(n);
  }
  return total > 0;
}

struct DaemonRun {
  Quantiles quantiles;
  std::size_t scrapes = 0;
};

/// The daemon path, optionally with a concurrent scraper thread driving
/// the admin plane at ~100 Hz per route (an aggressive operator: real
/// Prometheus scrapes every few seconds) for the whole measured window.
DaemonRun run_daemon(std::size_t iterations, bool scraped) {
  bu::DaemonHarness harness = bu::DaemonHarness::launch(scraped);
  auto connected = harness.connect();
  if (!connected.ok()) std::abort();
  net::BbdClient client = std::move(connected.value());
  if (!client.make_user("Alice", 0).ok()) std::abort();

  std::atomic<bool> stop{false};
  std::size_t scrapes = 0;
  std::thread scraper;
  if (scraped) {
    const auto admin =
        net::Endpoint::parse(harness.admin_endpoint()).value();
    // `admin` dies with this block; the thread owns its own copy.
    scraper = std::thread([&, admin] {
      bool statz = false;
      while (!stop.load(std::memory_order_relaxed)) {
        if (admin_get(admin, statz ? "/statz" : "/metrics")) ++scrapes;
        statz = !statz;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }

  net::BbdClient::ReserveArgs args;
  args.user = "Alice";
  args.rate = 1e6;
  args.at = seconds(1);
  std::vector<double> samples;
  samples.reserve(iterations);
  for (std::size_t i = 0; i < iterations; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const auto outcome = client.reserve(args);
    if (!outcome.ok() || !outcome->reply.granted) std::abort();
    if (!client.release("hopbyhop", outcome->reply_bytes).ok()) std::abort();
    samples.push_back(elapsed_us(start));
  }
  if (scraper.joinable()) {
    stop.store(true, std::memory_order_relaxed);
    scraper.join();
  }
  if (!client.shutdown_daemon().ok()) std::abort();
  DaemonRun run;
  run.quantiles = quantiles(std::move(samples));
  run.scrapes = scrapes;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t iterations = 200;
  bool smoke = false;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      iterations = 20;
      smoke = true;
    } else if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    }
  }

  bu::heading("daemon_latency",
              "RAR setup wall-clock: in-memory world vs UNIX-socket daemon");
  bu::note("hop-by-hop reserve+release on a 3-domain world, " +
           std::to_string(iterations) + " iterations per mode.");

  // Best-of-N trials per daemon mode: the gate compares p99s across two
  // separate daemon processes, so a single scheduler hiccup in either
  // run would dominate the tail. Systematic admin-plane overhead shows
  // up in every trial; one-off environment noise does not survive min().
  const std::size_t trials = smoke ? 1 : 2;
  auto best_of = [](DaemonRun best, const DaemonRun& next) {
    best.quantiles.p50_us = std::min(best.quantiles.p50_us,
                                     next.quantiles.p50_us);
    best.quantiles.p99_us = std::min(best.quantiles.p99_us,
                                     next.quantiles.p99_us);
    best.scrapes += next.scrapes;
    return best;
  };
  const Quantiles local = run_local(iterations);
  DaemonRun daemon = run_daemon(iterations, /*scraped=*/false);
  DaemonRun scraped = run_daemon(iterations, /*scraped=*/true);
  for (std::size_t t = 1; t < trials; ++t) {
    daemon = best_of(daemon, run_daemon(iterations, /*scraped=*/false));
    scraped = best_of(scraped, run_daemon(iterations, /*scraped=*/true));
  }

  bu::row("%-16s %-12s %-12s", "mode", "p50(us)", "p99(us)");
  bu::rule();
  bu::row("%-16s %-12.0f %-12.0f", "in-memory", local.p50_us, local.p99_us);
  bu::row("%-16s %-12.0f %-12.0f", "daemon-unix", daemon.quantiles.p50_us,
          daemon.quantiles.p99_us);
  bu::row("%-16s %-12.0f %-12.0f", "daemon-scraped", scraped.quantiles.p50_us,
          scraped.quantiles.p99_us);
  bu::rule();
  bu::note("daemon p50 overhead: " +
           std::to_string(daemon.quantiles.p50_us - local.p50_us) +
           " us per setup");
  const double scrape_p99_pct =
      daemon.quantiles.p99_us > 0
          ? (scraped.quantiles.p99_us - daemon.quantiles.p99_us) /
                daemon.quantiles.p99_us * 100.0
          : 0.0;
  bu::note("admin scrape impact on p99: " + std::to_string(scrape_p99_pct) +
           "% across " + std::to_string(scraped.scrapes) + " scrapes");

  bool ok = true;
  ok &= bu::check(daemon.quantiles.p50_us > 0 && local.p50_us > 0,
                  "both modes completed every reserve+release");
  ok &= bu::check(scraped.scrapes > 0,
                  "the concurrent scraper reached the admin plane");
  // The telemetry plane must be near-free for the RPC path: scraped p99
  // within 5% of unscraped (plus a 25us floor so scheduler noise on a
  // fast box cannot flake the gate). Two conditions to gate: a full run
  // (smoke measures too few iterations for a meaningful p99) and >= 2
  // cores — on a single-CPU host every admin cycle is stolen from the
  // RPC loop, so the number measures oversubscription, not the plane
  // (same policy as load_broker's scaling gate); the series is still
  // recorded.
  const unsigned cores = std::thread::hardware_concurrency();
  const bool gated = !smoke && cores >= 2;
  if (gated) {
    ok &= bu::check(scraped.quantiles.p99_us <=
                        daemon.quantiles.p99_us * 1.05 + 25.0,
                    "scrape-under-load p99 within the 5% budget");
  } else if (!smoke) {
    bu::note("scrape-overhead gate skipped: " + std::to_string(cores) +
             " core(s); recorded only");
  }

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << "{\n"
        << " \"bench\": \"daemon_latency\",\n"
        << " \"iterations\": " << iterations << ",\n"
        << " \"local\": {\"p50_us\": " << local.p50_us
        << ", \"p99_us\": " << local.p99_us << "},\n"
        << " \"daemon_unix\": {\"p50_us\": " << daemon.quantiles.p50_us
        << ", \"p99_us\": " << daemon.quantiles.p99_us << "},\n"
        << " \"daemon_unix_scraped\": {\"p50_us\": "
        << scraped.quantiles.p50_us
        << ", \"p99_us\": " << scraped.quantiles.p99_us << "},\n"
        << " \"scrape_overhead\": {\"scrapes\": " << scraped.scrapes
        << ", \"p99_pct\": " << scrape_p99_pct
        << ", \"cores\": " << cores
        << ", \"gated\": " << (gated ? "true" : "false") << "}\n"
        << "}\n";
    ok &= bu::check(static_cast<bool>(out), "wrote " + json_out);
  }
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
