// Daemon-mode harness for the figure benches (docs/DAEMON.md).
//
// `--daemon` reruns a scenario as two communicating OS processes: a forked
// child hosts the full BbdService (StreamServer event loop + ChainWorld)
// on a private UNIX socket, and the bench process drives the identical
// operation sequence through BbdClient. Because the daemon executes the
// same ops against an identically-seeded world, the printed tables — and,
// with E2E_GRANT_DUMP=1, the raw grant bytes — must be byte-identical to
// the in-memory run. scripts/tier1.sh --daemon diffs the two.
#pragma once

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/bytes.hpp"
#include "net/bbd_client.hpp"
#include "net/bbd_service.hpp"

namespace e2e::benchutil {

/// True when the bench was invoked with --daemon.
inline bool daemon_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--daemon") return true;
  }
  return false;
}

/// Print one granted reply's canonical bytes when E2E_GRANT_DUMP is set.
/// Both the in-memory and the daemon paths dump through this, so the
/// tier1 --daemon diff covers the grant bytes, not just the tables.
inline void maybe_dump_grant(BytesView reply_bytes) {
  if (std::getenv("E2E_GRANT_DUMP") == nullptr) return;
  std::printf("  grant %s\n", hex_encode(reply_bytes).c_str());
}

/// One forked daemon process + the socket path it serves on.
class DaemonHarness {
 public:
  /// Knobs for the forked child's BbdService. Zero-valued sizes keep the
  /// service defaults.
  struct LaunchSpec {
    /// Open the plaintext admin plane on a second UNIX socket
    /// (admin_endpoint()), for the scrape-overhead bench mode.
    bool with_admin = false;
    /// BbdService::Options::rpc_workers (0 = service default).
    std::size_t rpc_workers = 0;
    /// ChainWorldConfig::admission_threads (0 = config default).
    std::size_t admission_threads = 0;
  };

  /// Fork a child hosting BbdService on a fresh UNIX socket.
  static DaemonHarness launch(bool with_admin = false) {
    LaunchSpec spec;
    spec.with_admin = with_admin;
    return launch(spec);
  }

  static DaemonHarness launch(const LaunchSpec& spec) {
    DaemonHarness h;
    // The counter keeps paths distinct when one bench process launches
    // several daemons in sequence (load_daemon's serial vs pipelined
    // runs).
    static unsigned launch_count = 0;
    const std::string stem =
        "/tmp/e2e_bench_bbd_" + std::to_string(static_cast<long>(::getpid())) +
        "_" + std::to_string(launch_count++);
    h.socket_path_ = stem + ".sock";
    ::unlink(h.socket_path_.c_str());
    if (spec.with_admin) {
      h.admin_path_ = stem + ".admin.sock";
      ::unlink(h.admin_path_.c_str());
    }
    h.pid_ = ::fork();
    if (h.pid_ == 0) {
      net::BbdService::Options options;
      options.listen_on = {
          net::Endpoint::parse("unix:" + h.socket_path_).value()};
      if (!h.admin_path_.empty()) {
        options.admin_on = {
            net::Endpoint::parse("unix:" + h.admin_path_).value()};
      }
      if (spec.rpc_workers != 0) options.rpc_workers = spec.rpc_workers;
      if (spec.admission_threads != 0) {
        options.world.admission_threads = spec.admission_threads;
      }
      net::BbdService service(std::move(options));
      if (!service.start().ok()) ::_exit(1);
      service.wait();  // until the client's kShutdown drains the loop
      ::_exit(0);
    }
    return h;
  }

  ~DaemonHarness() {
    if (pid_ > 0) {
      ::waitpid(pid_, nullptr, 0);
      ::unlink(socket_path_.c_str());
      if (!admin_path_.empty()) ::unlink(admin_path_.c_str());
    }
  }

  DaemonHarness(const DaemonHarness&) = delete;
  DaemonHarness& operator=(const DaemonHarness&) = delete;

  DaemonHarness(DaemonHarness&& other) noexcept
      : pid_(other.pid_),
        socket_path_(std::move(other.socket_path_)),
        admin_path_(std::move(other.admin_path_)) {
    other.pid_ = -1;
  }
  DaemonHarness& operator=(DaemonHarness&& other) noexcept {
    if (this != &other) {
      if (pid_ > 0) {
        ::waitpid(pid_, nullptr, 0);
        ::unlink(socket_path_.c_str());
        if (!admin_path_.empty()) ::unlink(admin_path_.c_str());
      }
      pid_ = other.pid_;
      socket_path_ = std::move(other.socket_path_);
      admin_path_ = std::move(other.admin_path_);
      other.pid_ = -1;
    }
    return *this;
  }

  /// Retry-connect until the child has built its world and listens.
  /// `pipeline_depth` > 1 asks hello() (which the caller still issues) to
  /// negotiate that pipeline window; 1 keeps the serial wire.
  Result<net::BbdClient> connect(std::uint64_t pipeline_depth = 1) const {
    net::BbdClient::Options options;
    options.connect_to = net::Endpoint::parse("unix:" + socket_path_).value();
    options.pipeline_depth = pipeline_depth;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (true) {
      auto client = net::BbdClient::connect(options);
      if (client.ok()) return client;
      if (std::chrono::steady_clock::now() >= deadline) return client;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  /// The admin plane's endpoint ("unix:/..."); empty unless launched
  /// with_admin.
  std::string admin_endpoint() const {
    return admin_path_.empty() ? std::string() : "unix:" + admin_path_;
  }

 private:
  DaemonHarness() = default;
  pid_t pid_ = -1;
  std::string socket_path_;
  std::string admin_path_;
};

}  // namespace e2e::benchutil
