// Figure 7 — capability certificates received by each bandwidth broker
// during the end-to-end signalling process, plus the cost of building and
// verifying delegation chains as the path grows.
#include <chrono>
#include <cstdlib>

#include "bench_util.hpp"
#include "kit/chain_world.hpp"
#include "sig/delegation.hpp"

using namespace e2e;
using namespace e2e::kit;
namespace bu = e2e::benchutil;

namespace {

double time_us(const std::function<void()>& fn, int iters) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count() /
         iters;
}

}  // namespace

int main() {
  bu::heading("Figure 7", "capability delegation along the signalling path");

  // ---- Walkthrough: what each broker receives -------------------------
  ChainWorld world;
  WorldUser alice = world.make_user("Alice", 0);
  struct Seen {
    std::vector<std::string> issuers_to_subjects;
  };
  std::map<std::string, Seen> per_domain;
  world.engine().set_observer([&per_domain](const std::string& domain,
                                            const sig::VerifiedRar& vr) {
    Seen seen;
    const auto chain = sig::decode_chain(vr.capability_certs);
    if (chain.ok()) {
      for (const auto& cert : *chain) {
        seen.issuers_to_subjects.push_back(
            cert.issuer().common_name() + " -> " +
            cert.subject().common_name());
      }
    }
    per_domain[domain] = std::move(seen);
  });
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 10e6), 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  bool ok = bu::check(outcome.ok() && outcome->reply.granted,
                      "end-to-end reservation with capability chain granted");

  for (const auto& domain : world.names()) {
    bu::rule();
    bu::row("Capability list received by %s (%zu certificates):",
            domain.c_str(), per_domain[domain].issuers_to_subjects.size());
    for (const auto& line : per_domain[domain].issuers_to_subjects) {
      bu::row("  %s", line.c_str());
    }
  }
  bu::rule();
  // "BB_A now receives two capability certificates ... BB_B ... three
  // ... BB_C ... four."
  ok &= bu::check(per_domain["DomainA"].issuers_to_subjects.size() == 2,
                  "BB-A receives two capability certificates");
  ok &= bu::check(per_domain["DomainB"].issuers_to_subjects.size() == 3,
                  "BB-B receives three capability certificates");
  ok &= bu::check(per_domain["DomainC"].issuers_to_subjects.size() == 4,
                  "BB-C receives four capability certificates");

  // ---- Cost sweep: chain build + verify vs path length ----------------
  bu::note("");
  bu::note("Delegation-chain cost vs path length (256-bit toy RSA):");
  bu::row("%-12s %-14s %-18s %-14s", "path hops", "chain certs",
          "delegate (us/hop)", "verify (us)");
  bu::rule();

  Rng rng(7);
  policy::CommunityAuthorizationServer cas("ESnet", rng, kWorldValidity, 256);
  const crypto::KeyPair proxy = crypto::generate_keypair(rng, 256);
  const auto user_dn = crypto::DistinguishedName::make("Alice", "Domain0");

  double first_verify = 0, last_verify = 0;
  for (int hops : {1, 2, 4, 6, 8, 10}) {
    std::vector<crypto::KeyPair> keys{proxy};
    for (int i = 0; i < hops; ++i) {
      keys.push_back(crypto::generate_keypair(rng, 256));
    }
    std::vector<crypto::Certificate> chain{
        cas.grid_login(user_dn, proxy.pub, kWorldValidity)};
    const double delegate_us = time_us(
        [&] {
          std::vector<crypto::Certificate> c{chain[0]};
          for (int i = 0; i < hops; ++i) {
            c.push_back(sig::delegate_capability(
                c.back(), keys[static_cast<std::size_t>(i)].priv,
                crypto::DistinguishedName::make("BB" + std::to_string(i),
                                                "D" + std::to_string(i)),
                keys[static_cast<std::size_t>(i) + 1].pub,
                i == 0 ? "Valid for Reservation in DX" : "", kWorldValidity,
                static_cast<std::uint64_t>(i) + 1));
          }
        },
        20) / hops;
    for (int i = 0; i < hops; ++i) {
      chain.push_back(sig::delegate_capability(
          chain.back(), keys[static_cast<std::size_t>(i)].priv,
          crypto::DistinguishedName::make("BB" + std::to_string(i),
                                          "D" + std::to_string(i)),
          keys[static_cast<std::size_t>(i) + 1].pub,
          i == 0 ? "Valid for Reservation in DX" : "", kWorldValidity,
          static_cast<std::uint64_t>(i) + 1));
    }
    const double verify_us = time_us(
        [&] {
          auto r = sig::verify_capability_chain(
              chain, cas.public_key(), keys.back().pub,
              "Valid for Reservation in DX", 0);
          if (!r.ok()) std::abort();
        },
        50);
    bu::row("%-12d %-14zu %-18.1f %-14.1f", hops, chain.size(), delegate_us,
            verify_us);
    if (hops == 1) first_verify = verify_us;
    last_verify = verify_us;
  }
  bu::rule();
  ok &= bu::check(last_verify > first_verify,
                  "verification cost grows with chain length (linear in "
                  "path hops)");
  ok &= bu::check(last_verify < 20 * first_verify,
                  "growth is modest — no super-linear blowup");
  bu::dump_metrics_snapshot("fig7_capability_chain");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
