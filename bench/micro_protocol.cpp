// Microbenchmarks of the protocol building blocks: RAR encode/decode,
// per-hop layer signing, transitive-trust verification as a function of
// path depth, channel handshake and record protection, policy evaluation
// and admission control.
#include <benchmark/benchmark.h>

#include "kit/chain_world.hpp"
#include "sig/trust.hpp"

namespace {

using namespace e2e;
using namespace e2e::kit;

/// Shared world + a pre-built deep RAR per depth (construction is
/// expensive; benchmarks only measure the operation under test).
struct ProtocolFixture {
  ChainWorld world;
  WorldUser alice;
  sig::RarMessage user_msg;

  ProtocolFixture()
      : world([] {
          ChainWorldConfig config;
          config.domains = 8;
          return config;
        }()),
        alice(world.make_user("Alice", 0)),
        user_msg(world.engine()
                     .build_user_request(alice.credentials(),
                                         world.spec(alice, 1e6), 0)
                     .value()) {}
};

ProtocolFixture& fixture() {
  static ProtocolFixture f;
  return f;
}

void BM_RarEncode(benchmark::State& state) {
  const sig::RarMessage& msg = fixture().user_msg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(msg.encode());
  }
}
BENCHMARK(BM_RarEncode);

void BM_RarDecode(benchmark::State& state) {
  const Bytes wire = fixture().user_msg.encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sig::RarMessage::decode(wire));
  }
}
BENCHMARK(BM_RarDecode);

void BM_UserRequestBuild(benchmark::State& state) {
  ProtocolFixture& f = fixture();
  const bb::ResSpec spec = f.world.spec(f.alice, 1e6);
  const auto creds = f.alice.credentials();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.world.engine().build_user_request(creds, spec, 0));
  }
}
BENCHMARK(BM_UserRequestBuild)->Unit(benchmark::kMicrosecond);

void BM_BrokerLayerAppend(benchmark::State& state) {
  ProtocolFixture& f = fixture();
  for (auto _ : state) {
    sig::RarMessage msg = f.user_msg;
    sig::BrokerLayer layer;
    layer.upstream_certificate = f.alice.identity_cert.encode();
    layer.downstream_dn = f.world.broker(1).dn().to_string();
    layer.signer_dn = f.world.broker(0).dn().to_string();
    msg.append_broker_layer(std::move(layer), [&f](BytesView tbs) {
      return f.world.broker(0).sign(tbs);
    });
    benchmark::DoNotOptimize(msg);
  }
}
BENCHMARK(BM_BrokerLayerAppend)->Unit(benchmark::kMicrosecond);

/// End-to-end reservation cost (all hops, crypto included) as a function of
/// path length. This is the wall-clock analogue of bench/fig3's modeled
/// latency.
void BM_EndToEndReserve(benchmark::State& state) {
  ChainWorldConfig config;
  config.domains = static_cast<std::size_t>(state.range(0));
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);
  const auto msg = world.engine()
                       .build_user_request(alice.credentials(),
                                           world.spec(alice, 1e6), 0)
                       .value();
  for (auto _ : state) {
    auto outcome = world.engine().reserve(msg, seconds(1));
    if (!outcome.ok() || !outcome->reply.granted) {
      state.SkipWithError("deny");
      break;
    }
    benchmark::DoNotOptimize(outcome);
    state.PauseTiming();
    (void)world.engine().release_end_to_end(outcome->reply);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_EndToEndReserve)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_TunnelFlowReserve(benchmark::State& state) {
  ChainWorld world;
  const WorldUser alice = world.make_user("Alice", 0);
  bb::ResSpec agg = world.spec(alice, 100e6, {0, hours(10)});
  agg.is_tunnel = true;
  const auto msg = world.engine()
                       .build_user_request(alice.credentials(), agg, 0)
                       .value();
  const auto established = world.engine().reserve(msg, seconds(1));
  if (!established.ok() || !established->reply.granted) {
    state.SkipWithError("tunnel establishment denied");
    return;
  }
  const std::string tunnel_id = established->reply.tunnel_id;
  for (auto _ : state) {
    auto flow = world.engine().reserve_in_tunnel(
        tunnel_id, alice.dn.to_string(), 1e3, {0, seconds(60)}, seconds(2));
    if (!flow.ok() || !flow->reply.granted) {
      state.SkipWithError("deny");
      break;
    }
    benchmark::DoNotOptimize(flow);
    state.PauseTiming();
    (void)world.engine().release_in_tunnel(
        tunnel_id, flow->reply.handles.front().second);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_TunnelFlowReserve)->Unit(benchmark::kMicrosecond);

void BM_ChannelHandshake(benchmark::State& state) {
  ChainWorld& world = fixture().world;
  Rng rng(5);
  for (auto _ : state) {
    // Reconnect two already-trusting peers.
    benchmark::DoNotOptimize(
        world.engine().connect_peers("DomainA", "DomainB", 0));
  }
  (void)rng;
}
BENCHMARK(BM_ChannelHandshake)->Unit(benchmark::kMicrosecond);

void BM_PolicyEvaluation(benchmark::State& state) {
  const policy::Policy policy = policy::Policy::compile(R"(
    If User = Alice {
      If Time > 8am and Time < 5pm {
        If BW <= 10Mb/s { Return GRANT }
        Else { Return DENY }
      }
      Else if BW <= Avail_BW { Return GRANT }
      Else { Return DENY }
    }
    Return DENY
  )").value();
  policy::EvalContext ctx;
  ctx.set_user("Alice");
  ctx.set_bandwidth(5e6);
  ctx.set_time(hours(12));
  ctx.set_available_bandwidth(100e6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.decide(ctx));
  }
}
BENCHMARK(BM_PolicyEvaluation);

void BM_PolicyCompile(benchmark::State& state) {
  const std::string src = R"(
    If Group = Atlas { If BW <= 10Mb/s Return GRANT }
    Else if Issued_by(Capability) = ESnet { If BW <= 10Mb/s Return GRANT }
    Return DENY
  )";
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy::Policy::compile(src));
  }
}
BENCHMARK(BM_PolicyCompile);

void BM_AdmissionCheck(benchmark::State& state) {
  bb::CapacityPool pool(1e9);
  Rng rng(3);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    const SimTime start = static_cast<SimTime>(rng.next_below(3600)) *
                          seconds(1);
    (void)pool.commit("r" + std::to_string(i), {start, start + seconds(300)},
                      1e5);
  }
  const TimeInterval probe{seconds(1000), seconds(1600)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.can_admit(probe, 1e6));
  }
}
BENCHMARK(BM_AdmissionCheck)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
