// Small table/report helpers shared by the figure-reproduction benches.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace e2e::benchutil {

inline void heading(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::printf("  ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

inline void rule() {
  std::printf("  ----------------------------------------------------------------\n");
}

/// PASS/FAIL marker for the shape checks each bench asserts (the paper's
/// qualitative claims; see EXPERIMENTS.md).
inline bool check(bool ok, const std::string& claim) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", claim.c_str());
  return ok;
}

}  // namespace e2e::benchutil
