// Small table/report helpers shared by the figure-reproduction benches.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <string>

#include "obs/metrics.hpp"

namespace e2e::benchutil {

inline void heading(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::printf("  ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

inline void rule() {
  std::printf("  ----------------------------------------------------------------\n");
}

/// PASS/FAIL marker for the shape checks each bench asserts (the paper's
/// qualitative claims; see EXPERIMENTS.md).
inline bool check(bool ok, const std::string& claim) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", claim.c_str());
  return ok;
}

/// Write the global metrics registry as a JSON snapshot next to the bench
/// binary: `<name>.metrics.json`. Every bench calls this on exit so runs
/// leave a machine-readable record of everything the instrumentation
/// counted (the telemetry contract is docs/OBSERVABILITY.md).
inline bool dump_metrics_snapshot(const std::string& name) {
  const std::string path = name + ".metrics.json";
  std::ofstream out(path);
  if (!out) {
    std::printf("  (failed to write %s)\n", path.c_str());
    return false;
  }
  out << obs::MetricsRegistry::global().to_json() << "\n";
  std::printf("  metrics snapshot: %s (%zu series)\n", path.c_str(),
              obs::MetricsRegistry::global().series_count());
  return true;
}

}  // namespace e2e::benchutil
