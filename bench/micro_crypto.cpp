// Microbenchmarks for the crypto substrate: the per-hop cost of the
// signalling protocol is dominated by sign/verify over canonical encodings,
// so these numbers anchor the protocol-level benches.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "crypto/hmac.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"

namespace {

using namespace e2e;
using namespace e2e::crypto;

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  Bytes data(static_cast<std::size_t>(state.range(0)));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = to_bytes("session-integrity-key");
  Bytes data(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(256)->Arg(4096);

const KeyPair& bench_keys(unsigned bits) {
  static KeyPair kp256 = [] {
    Rng rng(10);
    return generate_keypair(rng, 256);
  }();
  static KeyPair kp512 = [] {
    Rng rng(11);
    return generate_keypair(rng, 512);
  }();
  return bits == 256 ? kp256 : kp512;
}

void BM_RsaSign(benchmark::State& state) {
  const KeyPair& kp = bench_keys(static_cast<unsigned>(state.range(0)));
  const Bytes msg = to_bytes("RAR: 10Mb/s A->C, user=Alice");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sign(kp.priv, msg));
  }
}
BENCHMARK(BM_RsaSign)->Arg(256)->Arg(512);

void BM_RsaVerify(benchmark::State& state) {
  const KeyPair& kp = bench_keys(static_cast<unsigned>(state.range(0)));
  const Bytes msg = to_bytes("RAR: 10Mb/s A->C, user=Alice");
  const Bytes sig = sign(kp.priv, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify(kp.pub, msg, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(256)->Arg(512);

void BM_KeyGeneration(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(
        generate_keypair(rng, static_cast<unsigned>(state.range(0))));
  }
}
BENCHMARK(BM_KeyGeneration)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
