// Microbenchmarks for the crypto substrate: the per-hop cost of the
// signalling protocol is dominated by sign/verify over canonical encodings,
// so these numbers anchor the protocol-level benches.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "crypto/hmac.hpp"
#include "crypto/montgomery.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "crypto/verify_cache.hpp"

namespace {

using namespace e2e;
using namespace e2e::crypto;

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  Bytes data(static_cast<std::size_t>(state.range(0)));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = to_bytes("session-integrity-key");
  Bytes data(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(256)->Arg(4096);

const KeyPair& bench_keys(unsigned bits) {
  static KeyPair kp256 = [] {
    Rng rng(10);
    return generate_keypair(rng, 256);
  }();
  static KeyPair kp512 = [] {
    Rng rng(11);
    return generate_keypair(rng, 512);
  }();
  static KeyPair kp1024 = [] {
    Rng rng(12);
    return generate_keypair(rng, 1024);
  }();
  if (bits == 256) return kp256;
  return bits == 512 ? kp512 : kp1024;
}

void BM_RsaSign(benchmark::State& state) {
  const KeyPair& kp = bench_keys(static_cast<unsigned>(state.range(0)));
  const Bytes msg = to_bytes("RAR: 10Mb/s A->C, user=Alice");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sign(kp.priv, msg));
  }
}
BENCHMARK(BM_RsaSign)->Arg(256)->Arg(512)->Arg(1024);

/// Signing without the CRT parameters: the plain s = H^d mod n path.
void BM_RsaSignPlain(benchmark::State& state) {
  const KeyPair& kp = bench_keys(static_cast<unsigned>(state.range(0)));
  PrivateKey plain{kp.priv.n, kp.priv.d, std::nullopt};
  const Bytes msg = to_bytes("RAR: 10Mb/s A->C, user=Alice");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sign(plain, msg));
  }
}
BENCHMARK(BM_RsaSignPlain)->Arg(512)->Arg(1024);

void BM_RsaVerify(benchmark::State& state) {
  const KeyPair& kp = bench_keys(static_cast<unsigned>(state.range(0)));
  const Bytes msg = to_bytes("RAR: 10Mb/s A->C, user=Alice");
  const Bytes sig = sign(kp.priv, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify(kp.pub, msg, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(256)->Arg(512)->Arg(1024);

/// Verification with the memo cache disabled: every iteration pays the
/// real modexp, isolating the Montgomery kernel from the VerifyCache.
void BM_RsaVerifyUncached(benchmark::State& state) {
  const KeyPair& kp = bench_keys(static_cast<unsigned>(state.range(0)));
  const Bytes msg = to_bytes("RAR: 10Mb/s A->C, user=Alice");
  const Bytes sig = sign(kp.priv, msg);
  VerifyCache::global().set_capacity(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify(kp.pub, msg, sig));
  }
  VerifyCache::global().set_capacity(VerifyCache::kDefaultCapacity);
}
BENCHMARK(BM_RsaVerifyUncached)->Arg(512)->Arg(1024);

// --- modexp kernels, head to head at RSA private-exponent shapes ----------

struct ModexpFixture {
  BigUInt base;
  BigUInt exp;
  BigUInt mod;
};

ModexpFixture modexp_fixture(unsigned bits) {
  Rng rng(42 + bits);
  BigUInt mod = BigUInt::random_bits(rng, bits);
  if (!mod.is_odd()) mod = mod + BigUInt(1);
  return ModexpFixture{BigUInt::random_below(rng, mod),
                       BigUInt::random_bits(rng, bits), mod};
}

/// The pre-Montgomery square-and-multiply oracle — this is what the
/// pre-fast-path BM_RsaSign cost per modexp; the ≥5× acceptance bar is
/// measured against it.
void BM_ModexpReference(benchmark::State& state) {
  const ModexpFixture fx = modexp_fixture(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.base.modexp_reference(fx.exp, fx.mod));
  }
}
BENCHMARK(BM_ModexpReference)->Arg(512)->Arg(1024);

void BM_ModexpMontgomery(benchmark::State& state) {
  const ModexpFixture fx = modexp_fixture(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.base.modexp(fx.exp, fx.mod));
  }
}
BENCHMARK(BM_ModexpMontgomery)->Arg(512)->Arg(1024);

/// One Montgomery-domain multiplication (the CIOS kernel itself).
void BM_MontgomeryMul(benchmark::State& state) {
  const ModexpFixture fx = modexp_fixture(static_cast<unsigned>(state.range(0)));
  const MontgomeryContext ctx(fx.mod);
  const BigUInt a = ctx.to_mont(fx.base);
  const BigUInt b = ctx.to_mont(fx.exp % fx.mod);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.mul(a, b));
  }
}
BENCHMARK(BM_MontgomeryMul)->Arg(512)->Arg(1024);

/// One Montgomery-domain squaring (the dedicated half-products path).
void BM_MontgomerySqr(benchmark::State& state) {
  const ModexpFixture fx = modexp_fixture(static_cast<unsigned>(state.range(0)));
  const MontgomeryContext ctx(fx.mod);
  const BigUInt a = ctx.to_mont(fx.base);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.sqr(a));
  }
}
BENCHMARK(BM_MontgomerySqr)->Arg(512)->Arg(1024);

void BM_KeyGeneration(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(
        generate_keypair(rng, static_cast<unsigned>(state.range(0))));
  }
}
BENCHMARK(BM_KeyGeneration)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
