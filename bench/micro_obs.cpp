// Microbenchmarks of the observability layer's cost on the signalling hot
// path (the fig3 scenario: end-to-end hop-by-hop reservation + release).
//
// BM_Fig3HotPath/0 runs with every recorder detached; /1 runs fully
// instrumented (engine-wide reference recorder + one recorder per domain,
// TraceContext envelope propagation, audit appends, metric counters). The
// acceptance bar — enforced by scripts/tier1.sh --obs — is that the
// instrumented mean stays within 5% of the detached mean: span bookkeeping
// is vector pushes under an uncontended mutex, dwarfed by the RSA layer
// signatures the same path performs.
//
// The remaining benchmarks price the individual primitives (span open and
// close, audit append incl. SHA-256 chaining, collector stitching, SLO
// evaluation) so regressions are attributable.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "kit/chain_world.hpp"
#include "obs/audit.hpp"
#include "obs/collector.hpp"
#include "obs/slo.hpp"

namespace {

using namespace e2e;
using namespace e2e::kit;

constexpr std::size_t kDomains = 4;

/// range(0): 0 = recorders detached, 1 = fully instrumented.
void BM_Fig3HotPath(benchmark::State& state) {
  ChainWorldConfig config;
  config.domains = kDomains;
  ChainWorld world(config);
  if (state.range(0) == 0) {
    world.engine().set_trace_recorder(nullptr);
    world.source_engine().set_trace_recorder(nullptr);
    for (const auto& name : world.names()) {
      world.engine().set_domain_trace_recorder(name, nullptr);
      world.source_engine().set_domain_trace_recorder(name, nullptr);
    }
  }
  const WorldUser alice = world.make_user("Alice", 0);
  const auto msg = world.engine()
                       .build_user_request(alice.credentials(),
                                           world.spec(alice, 1e6), 0)
                       .value();
  for (auto _ : state) {
    auto outcome = world.engine().reserve(msg, seconds(1));
    if (!outcome.ok() || !outcome->reply.granted) {
      state.SkipWithError("deny");
      break;
    }
    benchmark::DoNotOptimize(outcome);
    state.PauseTiming();
    (void)world.engine().release_end_to_end(outcome->reply);
    world.engine().forget_completed_requests();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_Fig3HotPath)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_SpanOpenClose(benchmark::State& state) {
  obs::TraceRecorder recorder;
  SimTime cursor = 0;
  for (auto _ : state) {
    obs::SpanScope span(&recorder, nullptr, "rar-1", "hop", 0, 0, &cursor);
    span.annotate("domain", "DomainA");
    cursor += 10;
    span.finish();
  }
}
BENCHMARK(BM_SpanOpenClose);

void BM_AuditAppend(benchmark::State& state) {
  obs::AuditLog log;
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.append(
        "DomainA", obs::audit_kind::kAdmission,
        {{"result", "ok"}, {"user", "Alice"}, {"rate_bits_per_s", "1e6"}}));
  }
}
BENCHMARK(BM_AuditAppend)->Unit(benchmark::kMicrosecond);

void BM_CollectorStitch(benchmark::State& state) {
  // One reservation's worth of per-domain exports, stitched per iteration.
  ChainWorldConfig config;
  config.domains = kDomains;
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);
  const auto msg = world.engine()
                       .build_user_request(alice.credentials(),
                                           world.spec(alice, 1e6), 0)
                       .value();
  const auto outcome = world.engine().reserve(msg, seconds(1));
  if (!outcome.ok() || !outcome->reply.granted) {
    state.SkipWithError("deny");
    return;
  }
  for (auto _ : state) {
    obs::SpanCollector collector;
    world.collect(collector);
    benchmark::DoNotOptimize(collector.flatten(outcome->trace_id));
  }
}
BENCHMARK(BM_CollectorStitch)->Unit(benchmark::kMicrosecond);

void BM_SloEvaluate(benchmark::State& state) {
  ChainWorldConfig config;
  config.domains = kDomains;
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);
  const auto msg = world.engine()
                       .build_user_request(alice.credentials(),
                                           world.spec(alice, 1e6), 0)
                       .value();
  const auto outcome = world.engine().reserve(msg, seconds(1));
  if (!outcome.ok()) {
    state.SkipWithError("deny");
    return;
  }
  obs::SloTracker slos =
      obs::SloTracker::with_default_objectives(world.names());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        slos.evaluate(obs::MetricsRegistry::global()));
  }
}
BENCHMARK(BM_SloEvaluate)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
