// Figure 2 — "The multi-domain reservation problem."
//
// Alice's reservation from domain A to domain C succeeds only if ALL
// brokers on the path grant it; a single domain without headroom (or with a
// denying policy) breaks the end-to-end reservation.
#include <cstdlib>

#include "bench_util.hpp"
#include "kit/chain_world.hpp"

using namespace e2e;
using namespace e2e::kit;
namespace bu = e2e::benchutil;

namespace {

/// Run one end-to-end attempt in a fresh world where `starved` (if >= 0)
/// has had its capacity pre-consumed.
struct Attempt {
  bool granted = false;
  std::string denier;
  std::size_t contacted = 0;
};

Attempt attempt_with_starved_domain(int starved) {
  ChainWorldConfig config;
  config.domains = 3;
  ChainWorld world(config);
  WorldUser alice = world.make_user("Alice", 0);
  if (starved >= 0) {
    // Pre-commit nearly all of that domain's capacity.
    bb::ResSpec hog = world.spec(alice, config.domain_capacity - 1e6);
    hog.user = alice.dn.to_string();
    auto committed =
        world.broker(static_cast<std::size_t>(starved)).commit(hog, "");
    if (!committed.ok()) std::abort();
  }
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 10e6), 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  Attempt a;
  a.granted = outcome->reply.granted;
  a.contacted = outcome->domains_contacted;
  if (!a.granted) a.denier = outcome->reply.denial.origin;
  return a;
}

}  // namespace

int main() {
  bu::heading("Figure 2", "the multi-domain reservation problem");
  bu::note("Alice requests 10 Mb/s DomainA -> DomainC; every BB on the path");
  bu::note("must admit the request.");

  bu::row("%-22s %-9s %-10s %-10s", "scenario", "granted", "denied by",
          "BBs asked");
  bu::rule();

  const Attempt healthy = attempt_with_starved_domain(-1);
  bu::row("%-22s %-9s %-10s %-10zu", "all domains healthy",
          healthy.granted ? "yes" : "no", "-", healthy.contacted);

  bool ok = bu::check(healthy.granted && healthy.contacted == 3,
                      "reservation succeeds only after contacting all 3 BBs");

  const char* names[] = {"DomainA", "DomainB", "DomainC"};
  for (int starved = 0; starved < 3; ++starved) {
    const Attempt a = attempt_with_starved_domain(starved);
    bu::row("%-22s %-9s %-10s %-10zu",
            (std::string(names[starved]) + " exhausted").c_str(),
            a.granted ? "yes" : "no", a.granted ? "-" : a.denier.c_str(),
            a.contacted);
    ok &= bu::check(!a.granted && a.denier == names[starved],
                    std::string("exhausting ") + names[starved] +
                        " alone breaks the end-to-end reservation");
  }
  bu::dump_metrics_snapshot("fig2_multidomain");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
