// Claim S (§6.4) — the transitive billing scheme over the SLA chain.
#include <cstdlib>

#include "acct/billing.hpp"
#include "bench_util.hpp"
#include "kit/chain_world.hpp"

using namespace e2e;
using namespace e2e::kit;
namespace bu = e2e::benchutil;

int main() {
  bu::heading("Claim S", "transitive billing along the SLA chain");

  ChainWorldConfig config;
  config.domains = 4;
  ChainWorld world(config);
  const WorldUser alice = world.make_user("Alice", 0);

  // Prices come from the SLAs installed in the world (0.01 * hop index);
  // the source domain charges its local user a retail rate.
  acct::BillingLedger ledger(
      [&world](const std::string& payer, const std::string& payee) {
        for (std::size_t i = 1; i < world.names().size(); ++i) {
          if (world.names()[i] == payee) {
            const auto* sla = world.broker(i).upstream_sla(payer);
            if (sla != nullptr) return sla->price_per_mbit_s;
          }
        }
        return 0.05;  // retail rate user -> source domain
      });

  bb::ResSpec spec = world.spec(alice, 10e6, {0, seconds(60)});
  const auto msg =
      world.engine().build_user_request(alice.credentials(), spec, 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  bool ok = bu::check(outcome.ok() && outcome->reply.granted,
                      "end-to-end reservation granted across 4 domains");

  std::vector<std::string> path;
  for (const auto& [domain, handle] : outcome->reply.handles) {
    path.push_back(domain);
  }
  const auto records = ledger.bill_reservation(
      path, alice.dn.to_string(), spec,
      outcome->reply.handles.front().second);

  bu::row("%-28s %-12s %12s %10s", "payer", "payee", "Mbit-seconds",
          "amount");
  bu::rule();
  for (const auto& r : records) {
    bu::row("%-28s %-12s %12.0f %10.2f", r.payer.c_str(), r.payee.c_str(),
            r.mbit_seconds, r.amount);
  }
  bu::rule();
  for (const auto& name : world.names()) {
    bu::row("net balance %-12s : %+8.2f", name.c_str(),
            ledger.balance(name));
  }
  bu::row("net balance %-12s : %+8.2f", "Alice",
          ledger.balance(alice.dn.to_string()));

  ok &= bu::check(records.size() == path.size(),
                  "one billing record per SLA edge plus the user's");
  double sum = ledger.balance(alice.dn.to_string());
  for (const auto& name : world.names()) sum += ledger.balance(name);
  ok &= bu::check(std::abs(sum) < 1e-9,
                  "money is conserved across the transitive chain");
  ok &= bu::check(ledger.total_user_payments() ==
                      -ledger.balance(alice.dn.to_string()),
                  "everything entering the system is paid by the user");
  bu::dump_metrics_snapshot("billing");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
