// Figure 5 — hop-by-hop signalling with a GARA CPU co-reservation.
//
// "Hop-by-hop-based signalling of QoS demands is done using an
// authenticated channel between peered BBs among the downstream path to the
// destination." The figure couples the network reservation with a CPU
// reservation in domain C through the GARA API.
#include <cstdlib>

#include "bench_util.hpp"
#include "gara/gara_api.hpp"
#include "kit/chain_world.hpp"

using namespace e2e;
using namespace e2e::kit;
namespace bu = e2e::benchutil;

int main() {
  bu::heading("Figure 5", "hop-by-hop signalling + GARA co-reservation");

  ChainWorldConfig config;
  // Destination policy demands a coupled CPU reservation (Fig. 5/6).
  config.policies = {"Return GRANT", "Return GRANT",
                     "If HasValidCPUResv(RAR) Return GRANT\nReturn DENY"};
  ChainWorld world(config);
  gara::ComputeManager compute("DomainC", 64);
  gara::Gara gara(world.engine());
  gara.attach_compute(compute);
  WorldUser alice = world.make_user("Alice", 0);

  // Trace the propagation order.
  std::vector<std::string> visited;
  world.engine().set_observer(
      [&visited](const std::string& domain, const sig::VerifiedRar&) {
        visited.push_back(domain);
      });

  bu::note("1) Network-only request (no CPU reservation linked):");
  const auto plain = gara.reserve_network(alice.credentials(),
                                          world.spec(alice, 10e6), 0);
  bool ok = bu::check(!plain.ok() && plain.error().origin == "DomainC",
                      "destination denies without a CPU co-reservation");
  ok &= bu::check(visited == std::vector<std::string>(
                                 {"DomainA", "DomainB", "DomainC"}),
                  "request propagated A -> B -> C (each BB forwards only "
                  "after local accept)");
  ok &= bu::check(world.broker(0).reservation_count() == 0 &&
                      world.broker(1).reservation_count() == 0,
                  "upstream tentative commitments rolled back on denial");

  bu::note("2) GARA co-reservation (CPU at C + network referencing it):");
  visited.clear();
  const auto co = gara.co_reserve(alice.credentials(),
                                  world.spec(alice, 10e6), 8, 0);
  ok &= bu::check(co.ok(), "co-reservation granted end to end");
  if (co.ok()) {
    bu::row("CPU handle: %s", co->cpu.handle.c_str());
    for (const auto& [domain, handle] : co->network.network_reply.handles) {
      bu::row("network handle @%s: %s", domain.c_str(), handle.c_str());
    }
    ok &= bu::check(compute.exists(co->cpu.handle),
                    "CPU reservation live in domain C");
    ok &= bu::check(co->network.network_reply.handles.size() == 3,
                    "network reservation committed in all three domains");
  }

  bu::note("3) Denial propagation when the intermediate SLA is exhausted:");
  // Exhaust the A->B SLA (100 Mb/s default), then retry.
  const auto hog = gara.co_reserve(alice.credentials(),
                                   world.spec(alice, 90e6), 1, 0);
  ok &= bu::check(hog.ok(), "second large co-reservation fills the SLA");
  const auto overflow = gara.co_reserve(alice.credentials(),
                                        world.spec(alice, 20e6), 1, 0);
  ok &= bu::check(!overflow.ok() &&
                      overflow.error().code == ErrorCode::kAdmissionRejected,
                  "third request denied by SLA admission control");
  if (!overflow.ok()) {
    bu::row("denial propagated upstream: %s",
            overflow.error().to_text().c_str());
  }
  ok &= bu::check(compute.count() == 2,
                  "the denied request's CPU leg was rolled back (atomic "
                  "co-reservation)");
  bu::dump_metrics_snapshot("fig5_hopbyhop");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
