// Ablation — the local trust-depth policy of the transitive trust model.
//
// Paper §6.4: "Checking its own security policy which might limit the depth
// of an acceptable trust chain, BB_C may accept the public key of cert_A."
// The destination's max_introduction_depth bounds how many introduction
// steps it accepts between its directly authenticated peer and the
// innermost signer. This ablation sweeps path length against depth limits:
// requests succeed iff (domains - 2) <= limit.
#include <cstdlib>

#include "bench_util.hpp"
#include "kit/chain_world.hpp"

using namespace e2e;
using namespace e2e::kit;
namespace bu = e2e::benchutil;

namespace {

bool granted_with_depth_limit(std::size_t domains, std::size_t limit) {
  ChainWorldConfig config;
  config.domains = domains;
  ChainWorld world(config);
  // Rebuild a dedicated engine so the destination gets the strict policy.
  sig::Fabric fabric;
  Rng rng(1);
  sig::HopByHopEngine engine(fabric, rng);
  for (std::size_t i = 0; i < domains; ++i) {
    sig::DomainOptions options;
    if (i == domains - 1) options.trust_policy.max_introduction_depth = limit;
    engine.add_domain(world.broker(i), options);
    engine.trust_community(world.names()[i], "ESnet",
                           world.cas_esnet().public_key());
  }
  for (std::size_t i = 0; i + 1 < domains; ++i) {
    if (!engine.connect_peers(world.names()[i], world.names()[i + 1], 0)
             .ok()) {
      std::abort();
    }
  }
  const WorldUser alice = world.make_user("Alice", 0);
  engine.register_local_user("DomainA", alice.identity_cert);
  const auto msg =
      engine.build_user_request(alice.credentials(), world.spec(alice, 1e6),
                                0);
  const auto outcome = engine.reserve(*msg, seconds(1));
  return outcome.ok() && outcome->reply.granted;
}

}  // namespace

int main() {
  bu::heading("Ablation", "introduction-depth limits in the trust policy");
  bu::note("The destination accepts a key introduced through at most");
  bu::note("`limit` intermediaries. A path of N domains needs N-2");
  bu::note("introductions at the destination (its peer is direct).");

  bu::row("%-9s | %-8s %-8s %-8s %-8s", "domains", "limit=1", "limit=2",
          "limit=4", "limit=8");
  bu::rule();
  bool ok = true;
  for (std::size_t domains : {3u, 4u, 5u, 6u, 8u}) {
    const bool l1 = granted_with_depth_limit(domains, 1);
    const bool l2 = granted_with_depth_limit(domains, 2);
    const bool l4 = granted_with_depth_limit(domains, 4);
    const bool l8 = granted_with_depth_limit(domains, 8);
    bu::row("%-9zu | %-8s %-8s %-8s %-8s", domains, l1 ? "grant" : "deny",
            l2 ? "grant" : "deny", l4 ? "grant" : "deny",
            l8 ? "grant" : "deny");
    auto expected = [&](std::size_t limit) {
      return domains - 2 <= limit;
    };
    ok &= (l1 == expected(1)) && (l2 == expected(2)) && (l4 == expected(4)) &&
          (l8 == expected(8));
  }
  bu::rule();
  ok &= bu::check(ok,
                  "grant exactly when required introductions (domains-2) "
                  "fit the destination's depth limit");
  bu::note("Operators trade reach (longer paths work) against exposure");
  bu::note("(each introduction extends trust one more contractual hop).");
  bu::dump_metrics_snapshot("ablation_trust_depth");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
