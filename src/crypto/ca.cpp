#include "crypto/ca.hpp"

namespace e2e::crypto {

CertificateAuthority::CertificateAuthority(DistinguishedName name, Rng& rng,
                                           TimeInterval validity,
                                           unsigned key_bits)
    : name_(std::move(name)), keys_(generate_keypair(rng, key_bits)) {
  Certificate::Builder b;
  b.serial = next_serial_++;
  b.issuer = name_;
  b.subject = name_;
  b.validity = validity;
  b.subject_key = keys_.pub;
  b.extensions.push_back(Extension{kExtCa, /*critical=*/true, "true"});
  root_cert_ = b.sign_with(keys_.priv);
}

Certificate CertificateAuthority::issue(const DistinguishedName& subject,
                                        const PublicKey& subject_key,
                                        TimeInterval validity,
                                        std::vector<Extension> extensions) {
  Certificate::Builder b;
  b.serial = next_serial_++;
  b.issuer = name_;
  b.subject = subject;
  b.validity = validity;
  b.subject_key = subject_key;
  b.extensions = std::move(extensions);
  return b.sign_with(keys_.priv);
}

}  // namespace e2e::crypto
