// Toy RSA signatures over the from-scratch BigUInt arithmetic.
//
// Signing is hash-then-modexp: s = H^d mod n with H = SHA-256 of the
// canonical encoding. Key sizes default to 512 bits, which keeps test and
// benchmark runtimes sensible. THIS IS A SIMULATION SUBSTRATE — small keys
// and textbook padding are not secure; the protocol logic (who signs what,
// which keys verify which layers) is what this library exercises.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "crypto/biguint.hpp"
#include "crypto/sha256.hpp"

namespace e2e::crypto {

struct PublicKey {
  BigUInt n;  // modulus
  BigUInt e;  // public exponent

  bool operator==(const PublicKey& o) const {
    return n == o.n && e == o.e;
  }

  /// Canonical encoding (TLV), used inside certificates and for
  /// fingerprinting.
  Bytes encode() const;
  static Result<PublicKey> decode(BytesView data);

  /// SHA-256 over the canonical encoding; identifies a key in logs/tests.
  Digest fingerprint() const;
};

/// CRT precomputation for the signing fast path: two half-size
/// exponentiations mod p and q instead of one full-size one mod n,
/// recombined with Garner's formula. Produces bit-identical signatures.
struct CrtParams {
  BigUInt p;     // first prime factor
  BigUInt q;     // second prime factor
  BigUInt dp;    // d mod (p - 1)
  BigUInt dq;    // d mod (q - 1)
  BigUInt qinv;  // q^-1 mod p

  bool operator==(const CrtParams& o) const {
    return p == o.p && q == o.q && dp == o.dp && dq == o.dq && qinv == o.qinv;
  }
};

struct PrivateKey {
  BigUInt n;
  BigUInt d;  // private exponent
  /// Populated by generate_keypair(); absent when decoding the legacy
  /// two-field encoding. sign() falls back to s = H^d mod n without it.
  std::optional<CrtParams> crt;

  Bytes encode() const;
  static Result<PrivateKey> decode(BytesView data);
};

struct KeyPair {
  PublicKey pub;
  PrivateKey priv;
};

/// Generate an RSA key pair with `bits`-bit modulus (e = 65537).
/// Deterministic given the RNG state.
KeyPair generate_keypair(Rng& rng, unsigned bits = 512);

/// Signature = (H(message))^d mod n, transported big-endian. Uses the CRT
/// fast path when key.crt is populated (identical output either way).
Bytes sign(const PrivateKey& key, BytesView message);

/// Verify a signature produced by `sign` against `message`. Results are
/// memoized in VerifyCache::global() keyed over (key, message, signature);
/// keys whose modulus is even or <= 1 (Montgomery precondition) are
/// rejected outright and counted in e2e_crypto_bad_key_rejects_total.
bool verify(const PublicKey& key, BytesView message, BytesView signature);

}  // namespace e2e::crypto
