// Toy RSA signatures over the from-scratch BigUInt arithmetic.
//
// Signing is hash-then-modexp: s = H^d mod n with H = SHA-256 of the
// canonical encoding. Key sizes default to 512 bits, which keeps test and
// benchmark runtimes sensible. THIS IS A SIMULATION SUBSTRATE — small keys
// and textbook padding are not secure; the protocol logic (who signs what,
// which keys verify which layers) is what this library exercises.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "crypto/biguint.hpp"
#include "crypto/sha256.hpp"

namespace e2e::crypto {

struct PublicKey {
  BigUInt n;  // modulus
  BigUInt e;  // public exponent

  bool operator==(const PublicKey& o) const {
    return n == o.n && e == o.e;
  }

  /// Canonical encoding (TLV), used inside certificates and for
  /// fingerprinting.
  Bytes encode() const;
  static Result<PublicKey> decode(BytesView data);

  /// SHA-256 over the canonical encoding; identifies a key in logs/tests.
  Digest fingerprint() const;
};

struct PrivateKey {
  BigUInt n;
  BigUInt d;  // private exponent

  Bytes encode() const;
  static Result<PrivateKey> decode(BytesView data);
};

struct KeyPair {
  PublicKey pub;
  PrivateKey priv;
};

/// Generate an RSA key pair with `bits`-bit modulus (e = 65537).
/// Deterministic given the RNG state.
KeyPair generate_keypair(Rng& rng, unsigned bits = 512);

/// Signature = (H(message))^d mod n, transported big-endian.
Bytes sign(const PrivateKey& key, BytesView message);

/// Verify a signature produced by `sign` against `message`.
bool verify(const PublicKey& key, BytesView message, BytesView signature);

}  // namespace e2e::crypto
