#include "crypto/dn.hpp"

#include <algorithm>
#include <cctype>

namespace e2e::crypto {

namespace {
std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}
}  // namespace

Result<DistinguishedName> DistinguishedName::parse(std::string_view text) {
  DistinguishedName dn;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string_view part =
        trim(text.substr(pos, comma == std::string_view::npos
                                  ? std::string_view::npos
                                  : comma - pos));
    if (!part.empty()) {
      const std::size_t eq = part.find('=');
      if (eq == std::string_view::npos || eq == 0) {
        return make_error(ErrorCode::kInvalidArgument,
                          "DN: expected TYPE=value in '" + std::string(part) +
                              "'");
      }
      std::string type(trim(part.substr(0, eq)));
      std::transform(type.begin(), type.end(), type.begin(),
                     [](unsigned char c) { return std::toupper(c); });
      dn.rdns_.emplace_back(std::move(type),
                            std::string(trim(part.substr(eq + 1))));
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  if (dn.rdns_.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "DN: empty");
  }
  return dn;
}

DistinguishedName DistinguishedName::make(std::string_view common_name,
                                          std::string_view organization,
                                          std::string_view country) {
  DistinguishedName dn;
  dn.add("CN", std::string(common_name));
  dn.add("O", std::string(organization));
  dn.add("C", std::string(country));
  return dn;
}

std::string DistinguishedName::to_string() const {
  std::string out;
  for (const auto& [type, value] : rdns_) {
    if (!out.empty()) out.push_back(',');
    out += type;
    out.push_back('=');
    out += value;
  }
  return out;
}

std::string DistinguishedName::get(std::string_view type) const {
  for (const auto& [t, v] : rdns_) {
    if (t == type) return v;
  }
  return {};
}

void DistinguishedName::add(std::string type, std::string value) {
  rdns_.emplace_back(std::move(type), std::move(value));
}

}  // namespace e2e::crypto
