// Trust store and chain verification.
//
// A TrustStore holds the trust anchors a bandwidth broker is configured
// with: the CA certificates listed in its SLAs plus any locally trusted
// roots. Chain verification walks issuer links, checks signatures, validity
// windows, the CA extension on intermediates, and revocation.
//
// The web-of-trust ("key introducer") acceptance used by the transitive
// trust model lives in src/sig/trust.hpp and builds on this store.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"
#include "crypto/x509.hpp"

namespace e2e::crypto {

class TrustStore {
 public:
  /// Trust `cert` as a root (must be self-signed with a valid signature;
  /// returns false and ignores it otherwise).
  bool add_anchor(const Certificate& cert);

  bool is_anchor(const DistinguishedName& dn) const {
    return anchors_.contains(dn.to_string());
  }
  const Certificate* find_anchor(const DistinguishedName& dn) const;
  std::size_t anchor_count() const { return anchors_.size(); }

  /// Optional revocation oracle: given issuer DN and serial, is the
  /// certificate revoked? Default: nothing is revoked.
  using RevocationCheck =
      std::function<bool(const DistinguishedName& issuer, std::uint64_t serial)>;
  void set_revocation_check(RevocationCheck check) {
    revocation_ = std::move(check);
  }

  /// Verify `leaf` at virtual time `at`, using `intermediates` to build the
  /// issuer path up to a trust anchor. On success returns the validated
  /// path, leaf first, anchor last.
  Result<std::vector<Certificate>> verify_chain(
      const Certificate& leaf, const std::vector<Certificate>& intermediates,
      SimTime at) const;

 private:
  std::map<std::string, Certificate> anchors_;  // keyed by DN text
  RevocationCheck revocation_;
};

}  // namespace e2e::crypto
