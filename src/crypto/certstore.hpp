// Trust store and chain verification.
//
// A TrustStore holds the trust anchors a bandwidth broker is configured
// with: the CA certificates listed in its SLAs plus any locally trusted
// roots. Chain verification walks issuer links, checks signatures, validity
// windows, the CA extension on intermediates, and revocation.
//
// Successful verifications are memoized in a bounded per-store cache keyed
// by the exact certificate bytes presented (leaf + intermediates). A hit
// skips only the signature arithmetic: validity windows and the revocation
// oracle are re-evaluated against the requested time on every call, and the
// whole cache is dropped when the anchor set or the revocation oracle
// changes. See docs/PERFORMANCE.md for the invalidation rules.
//
// The web-of-trust ("key introducer") acceptance used by the transitive
// trust model lives in src/sig/trust.hpp and builds on this store.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"
#include "crypto/x509.hpp"

namespace e2e::crypto {

class TrustStore {
 public:
  TrustStore() = default;
  // Copyable despite the cache mutex (brokers hold stores by value). Copies
  // share nothing; the cache comes along as plain data.
  TrustStore(const TrustStore& o);
  TrustStore& operator=(const TrustStore& o);

  /// Trust `cert` as a root (must be self-signed with a valid signature;
  /// returns false and ignores it otherwise). Invalidates the chain cache.
  bool add_anchor(const Certificate& cert);

  bool is_anchor(const DistinguishedName& dn) const {
    return anchors_.contains(dn.to_string());
  }
  const Certificate* find_anchor(const DistinguishedName& dn) const;
  std::size_t anchor_count() const { return anchors_.size(); }

  /// Optional revocation oracle: given issuer DN and serial, is the
  /// certificate revoked? Default: nothing is revoked. Invalidates the
  /// chain cache (the old oracle's verdicts may no longer hold).
  using RevocationCheck =
      std::function<bool(const DistinguishedName& issuer, std::uint64_t serial)>;
  void set_revocation_check(RevocationCheck check);

  /// Verify `leaf` at virtual time `at`, using `intermediates` to build the
  /// issuer path up to a trust anchor. On success returns the validated
  /// path, leaf first, anchor last.
  Result<std::vector<Certificate>> verify_chain(
      const Certificate& leaf, const std::vector<Certificate>& intermediates,
      SimTime at) const;

  static constexpr std::size_t kChainCacheCapacity = 256;
  /// Cached successful verifications (tests and capacity checks).
  std::size_t chain_cache_size() const;

 private:
  struct ChainCacheEntry {
    std::vector<Certificate> path;
    std::uint64_t last_used = 0;
  };

  void invalidate_chain_cache();

  std::map<std::string, Certificate> anchors_;  // keyed by DN text
  RevocationCheck revocation_;
  // verify_chain() is const, so the memo table is mutable state guarded by
  // its own mutex; keys are SHA-256 over the presented certificate bytes.
  mutable std::mutex cache_mu_;
  mutable std::map<Digest, ChainCacheEntry> chain_cache_;
  mutable std::uint64_t cache_tick_ = 0;
};

}  // namespace e2e::crypto
