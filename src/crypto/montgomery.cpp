#include "crypto/montgomery.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

#include "obs/instruments.hpp"

namespace e2e::crypto {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

/// a >= b over exactly n limbs.
bool limbs_ge(const u64* a, const u64* b, std::size_t n) {
  for (std::size_t i = n; i-- > 0;) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;
}

/// out = a - b over exactly n limbs (requires a >= b).
void limbs_sub(const u64* a, const u64* b, u64* out, std::size_t n) {
  u64 borrow = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u64 bi = b[i];
    const u64 t = a[i] - bi;
    const u64 next_borrow = (a[i] < bi) | (t < borrow ? 1u : 0u);
    out[i] = t - borrow;
    borrow = next_borrow;
  }
}

/// Final conditional subtraction shared by all REDC paths: the reduced
/// value is < 2m, held in `t` (n limbs) plus a carry bit.
void reduce_once(const u64* t, u64 carry, const u64* mod, u64* out,
                 std::size_t n) {
  if (carry || limbs_ge(t, mod, n)) {
    limbs_sub(t, mod, out, n);
  } else {
    std::copy(t, t + n, out);
  }
}

/// Pad a normalized BigUInt into exactly n limbs.
std::vector<u64> padded(const BigUInt& v, std::size_t n) {
  std::vector<u64> out(n, 0);
  const auto& limbs = v.limbs();
  std::copy(limbs.begin(), limbs.end(), out.begin());
  return out;
}

/// Bits [pos, pos + width) of the exponent, little-endian.
unsigned exp_window(const std::vector<u64>& e, unsigned pos, unsigned width) {
  unsigned out = 0;
  for (unsigned i = 0; i < width; ++i) {
    const unsigned bit = pos + i;
    const std::size_t limb = bit / 64;
    if (limb >= e.size()) break;
    out |= static_cast<unsigned>((e[limb] >> (bit % 64)) & 1) << i;
  }
  return out;
}

}  // namespace

MontgomeryContext::MontgomeryContext(const BigUInt& m) : m_(m) {
  if (!m.is_odd() || m == BigUInt(1)) {
    throw std::domain_error(
        "MontgomeryContext: modulus must be odd and > 1");
  }
  mod_ = m.limbs();
  n_ = mod_.size();
  // inv64 = -m^-1 mod 2^64 by Newton: x_{k+1} = x_k * (2 - m0 * x_k)
  // doubles the number of correct low bits; seeding with m0 gives 3, five
  // iterations reach 96 >= 64.
  const u64 m0 = mod_[0];
  u64 x = m0;
  for (int i = 0; i < 5; ++i) x *= 2 - m0 * x;
  inv64_ = ~x + 1;
  const BigUInt r = BigUInt(1) << static_cast<unsigned>(64 * n_);
  one_ = padded(r % m_, n_);
  rr_ = padded((r * r) % m_, n_);
}

void MontgomeryContext::redc_raw(u64* wide, u64* out) const {
  const std::size_t n = n_;
  for (std::size_t i = 0; i < n; ++i) {
    const u64 mfac = wide[i] * inv64_;
    u64 carry = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const u128 cur = static_cast<u128>(mfac) * mod_[j] + wide[i + j] + carry;
      wide[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    std::size_t k = i + n;
    while (carry != 0) {
      const u128 s = static_cast<u128>(wide[k]) + carry;
      wide[k] = static_cast<u64>(s);
      carry = static_cast<u64>(s >> 64);
      ++k;
    }
  }
  reduce_once(wide + n, wide[2 * n], mod_.data(), out, n);
}

void MontgomeryContext::mul_raw(const u64* a, const u64* b, u64* out,
                                u64* t) const {
  // CIOS: interleave one row of schoolbook multiplication with one REDC
  // step, keeping the running value in t[0 .. n+1].
  const std::size_t n = n_;
  std::fill(t, t + n + 2, 0);
  for (std::size_t i = 0; i < n; ++i) {
    // t += a[i] * b
    u64 carry = 0;
    const u64 ai = a[i];
    for (std::size_t j = 0; j < n; ++j) {
      const u128 cur = static_cast<u128>(ai) * b[j] + t[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 s = static_cast<u128>(t[n]) + carry;
    t[n] = static_cast<u64>(s);
    t[n + 1] += static_cast<u64>(s >> 64);
    // (t + mfac * m) / 2^64
    const u64 mfac = t[0] * inv64_;
    u128 cur = static_cast<u128>(mfac) * mod_[0] + t[0];
    carry = static_cast<u64>(cur >> 64);
    for (std::size_t j = 1; j < n; ++j) {
      cur = static_cast<u128>(mfac) * mod_[j] + t[j] + carry;
      t[j - 1] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    s = static_cast<u128>(t[n]) + carry;
    t[n - 1] = static_cast<u64>(s);
    s = static_cast<u128>(t[n + 1]) + (s >> 64);
    t[n] = static_cast<u64>(s);
    t[n + 1] = 0;
  }
  reduce_once(t, t[n], mod_.data(), out, n);
}

void MontgomeryContext::sqr_raw(const u64* a, u64* out, u64* wide) const {
  // Dedicated squaring: cross products a[i]*a[j] (j > i) computed once,
  // doubled with one full-width shift, diagonal squares added after — about
  // half the multiplies of mul_raw — then a separate REDC pass.
  const std::size_t n = n_;
  std::fill(wide, wide + 2 * n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    u64 carry = 0;
    const u64 ai = a[i];
    for (std::size_t j = i + 1; j < n; ++j) {
      const u128 cur = static_cast<u128>(ai) * a[j] + wide[i + j] + carry;
      wide[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    wide[i + n] = carry;
  }
  // Double the cross products: cross < 2^(128n - 1), so no bit is lost.
  u64 shift_carry = 0;
  for (std::size_t k = 0; k < 2 * n; ++k) {
    const u64 next = wide[k] >> 63;
    wide[k] = (wide[k] << 1) | shift_carry;
    shift_carry = next;
  }
  // Add the diagonal a[i]^2 at position 2i.
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 sq = static_cast<u128>(a[i]) * a[i];
    u128 cur = static_cast<u128>(wide[2 * i]) + static_cast<u64>(sq) + carry;
    wide[2 * i] = static_cast<u64>(cur);
    cur = static_cast<u128>(wide[2 * i + 1]) + static_cast<u64>(sq >> 64) +
          static_cast<u64>(cur >> 64);
    wide[2 * i + 1] = static_cast<u64>(cur);
    carry = static_cast<u64>(cur >> 64);
  }
  redc_raw(wide, out);
}

BigUInt MontgomeryContext::to_mont(const BigUInt& x) const {
  std::vector<u64> in = padded(x, n_);
  std::vector<u64> out(n_);
  std::vector<u64> scratch(2 * n_ + 2);
  mul_raw(in.data(), rr_.data(), out.data(), scratch.data());
  return BigUInt::from_limbs(std::move(out));
}

BigUInt MontgomeryContext::from_mont(const BigUInt& x) const {
  std::vector<u64> wide(2 * n_ + 1, 0);
  const auto& limbs = x.limbs();
  std::copy(limbs.begin(), limbs.end(), wide.begin());
  std::vector<u64> out(n_);
  redc_raw(wide.data(), out.data());
  return BigUInt::from_limbs(std::move(out));
}

BigUInt MontgomeryContext::mul(const BigUInt& a_mont,
                               const BigUInt& b_mont) const {
  std::vector<u64> a = padded(a_mont, n_);
  std::vector<u64> b = padded(b_mont, n_);
  std::vector<u64> out(n_);
  std::vector<u64> scratch(2 * n_ + 2);
  mul_raw(a.data(), b.data(), out.data(), scratch.data());
  return BigUInt::from_limbs(std::move(out));
}

BigUInt MontgomeryContext::sqr(const BigUInt& a_mont) const {
  std::vector<u64> a = padded(a_mont, n_);
  std::vector<u64> out(n_);
  std::vector<u64> scratch(2 * n_ + 2);
  sqr_raw(a.data(), out.data(), scratch.data());
  return BigUInt::from_limbs(std::move(out));
}

BigUInt MontgomeryContext::modexp(const BigUInt& base,
                                  const BigUInt& exp) const {
  if (exp.is_zero()) return BigUInt(1);  // m > 1
  const BigUInt reduced = base >= m_ ? base % m_ : base;
  if (exp == BigUInt(1)) return reduced;
  if (reduced.is_zero()) return {};

  const unsigned ebits = exp.bit_length();
  // Window width: the 2^w - 2 table multiplies must pay for themselves.
  const unsigned w = ebits >= 128 ? 4 : (ebits >= 24 ? 2 : 1);
  const unsigned table_size = 1u << w;
  const std::size_t n = n_;

  std::vector<u64> scratch(2 * n + 2);
  std::vector<u64> base_mont = padded(reduced, n);
  {
    std::vector<u64> tmp(n);
    mul_raw(base_mont.data(), rr_.data(), tmp.data(), scratch.data());
    base_mont = std::move(tmp);
  }

  // table[v] = base^v in Montgomery form; table[0] = R mod m.
  std::vector<u64> table(static_cast<std::size_t>(table_size) * n);
  std::copy(one_.begin(), one_.end(), table.begin());
  std::copy(base_mont.begin(), base_mont.end(), table.begin() + n);
  for (unsigned v = 2; v < table_size; ++v) {
    mul_raw(&table[(v - 1) * n], base_mont.data(), &table[v * n],
            scratch.data());
  }

  const unsigned windows = (ebits + w - 1) / w;
  const std::vector<u64>& elimbs = exp.limbs();
  // Seed with the top window (always non-zero: it holds the exponent's top
  // set bit), skipping its w squarings.
  std::vector<u64> acc(n);
  std::vector<u64> tmp(n);
  const unsigned top = exp_window(elimbs, (windows - 1) * w, w);
  std::copy(&table[top * n], &table[top * n] + n, acc.begin());
  for (unsigned wi = windows - 1; wi-- > 0;) {
    for (unsigned s = 0; s < w; ++s) {
      sqr_raw(acc.data(), tmp.data(), scratch.data());
      std::swap(acc, tmp);
    }
    const unsigned v = exp_window(elimbs, wi * w, w);
    if (v != 0) {
      mul_raw(acc.data(), &table[v * n], tmp.data(), scratch.data());
      std::swap(acc, tmp);
    }
  }

  // Leave the Montgomery domain: REDC(acc * 1).
  std::vector<u64> wide(2 * n + 1, 0);
  std::copy(acc.begin(), acc.end(), wide.begin());
  std::vector<u64> out(n);
  redc_raw(wide.data(), out.data());
  return BigUInt::from_limbs(std::move(out));
}

std::shared_ptr<const MontgomeryContext> MontgomeryContext::shared(
    const BigUInt& m) {
  struct Entry {
    std::shared_ptr<const MontgomeryContext> context;
    std::uint64_t last_used = 0;
  };
  static std::mutex mu;
  static std::map<BigUInt, Entry> cache;
  static std::uint64_t tick = 0;
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& hits = registry.counter(
      obs::kCryptoMontCtxLookupsTotal, {{"result", "hit"}});
  static obs::Counter& misses = registry.counter(
      obs::kCryptoMontCtxLookupsTotal, {{"result", "miss"}});

  std::lock_guard lock(mu);
  ++tick;
  if (auto it = cache.find(m); it != cache.end()) {
    it->second.last_used = tick;
    hits.increment();
    return it->second.context;
  }
  misses.increment();
  auto context = std::make_shared<const MontgomeryContext>(m);
  if (cache.size() >= kSharedCacheCapacity) {
    auto oldest = cache.begin();
    for (auto it = cache.begin(); it != cache.end(); ++it) {
      if (it->second.last_used < oldest->second.last_used) oldest = it;
    }
    cache.erase(oldest);
  }
  cache.emplace(m, Entry{context, tick});
  return context;
}

}  // namespace e2e::crypto
