// SHA-256 (FIPS 180-4), implemented from scratch.
//
// All digital signatures in the signalling protocol hash the canonical TLV
// encoding of the signed object with this function. Tested against the FIPS
// test vectors in tests/crypto_sha256_test.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace e2e::crypto {

constexpr std::size_t kSha256DigestSize = 32;
using Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental hasher.
class Sha256 {
 public:
  Sha256();
  void update(BytesView data);
  /// Finalize and return the digest; the object must not be reused after.
  Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot convenience.
Digest sha256(BytesView data);

/// Digest as Bytes (for embedding in messages).
Bytes digest_bytes(const Digest& d);

}  // namespace e2e::crypto
