// Montgomery-form modular arithmetic: the modexp fast path.
//
// A MontgomeryContext precomputes, for one odd modulus m of n 64-bit limbs:
//   - inv64 = -m^-1 mod 2^64 (Newton iteration on the low limb),
//   - R mod m and R^2 mod m for R = 2^(64n),
// after which modular multiplication is division-free: the CIOS (coarsely
// integrated operand scanning) interleaving of schoolbook multiplication
// with word-by-word REDC reduction. Squaring takes a dedicated path that
// exploits the symmetry of the partial products (cross terms computed once
// and doubled) before a separate REDC pass.
//
// Exponentiation is fixed-window over the Montgomery domain: 4-bit windows
// for full-size (private) exponents, narrower windows when the exponent is
// small (the public e = 65537 case), so the table precompute never
// outweighs the multiplies it saves.
//
// Contexts are immutable after construction and safe to share across
// threads. `shared()` hands out contexts from a bounded process-wide cache
// keyed by modulus value, so every verify against the same key — and every
// Miller-Rabin round against the same prime candidate — reuses one context
// instead of recomputing R^2. Differential tests pin the whole kernel
// against BigUInt::modexp_reference (tests/crypto_montgomery_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/biguint.hpp"

namespace e2e::crypto {

class MontgomeryContext {
 public:
  /// Precompute for modulus `m`, which must be odd and > 1 (throws
  /// std::domain_error otherwise — REDC needs m invertible mod 2^64).
  explicit MontgomeryContext(const BigUInt& m);

  const BigUInt& modulus() const { return m_; }
  std::size_t limb_count() const { return n_; }

  /// base^exp mod m. Handles base >= m (reduces first), exp == 0 and
  /// exp == 1 without entering the window machinery.
  BigUInt modexp(const BigUInt& base, const BigUInt& exp) const;

  // Montgomery-domain primitives, exposed for the differential tests and
  // the micro benches. Values must already be < m.
  BigUInt to_mont(const BigUInt& x) const;    // x * R mod m
  BigUInt from_mont(const BigUInt& x) const;  // x * R^-1 mod m
  /// REDC(a * b): the Montgomery product of two Montgomery-domain values.
  BigUInt mul(const BigUInt& a_mont, const BigUInt& b_mont) const;
  /// REDC(a * a) via the dedicated squaring path.
  BigUInt sqr(const BigUInt& a_mont) const;

  /// Find-or-create a context in the process-wide bounded cache (LRU over
  /// kSharedCacheCapacity moduli; hit/miss counters in the obs registry).
  static std::shared_ptr<const MontgomeryContext> shared(const BigUInt& m);
  static constexpr std::size_t kSharedCacheCapacity = 64;

 private:
  // Raw kernels over n-limb little-endian arrays. `scratch` must hold at
  // least 2n + 2 limbs; `out` may not alias the inputs.
  void mul_raw(const std::uint64_t* a, const std::uint64_t* b,
               std::uint64_t* out, std::uint64_t* scratch) const;
  void sqr_raw(const std::uint64_t* a, std::uint64_t* out,
               std::uint64_t* scratch) const;
  /// Montgomery-reduce the 2n-limb product in `wide` (plus carry limb
  /// wide[2n]) into `out`.
  void redc_raw(std::uint64_t* wide, std::uint64_t* out) const;

  BigUInt m_;
  std::vector<std::uint64_t> mod_;  // m, exactly n limbs
  std::size_t n_ = 0;
  std::uint64_t inv64_ = 0;         // -m^-1 mod 2^64
  std::vector<std::uint64_t> one_;  // R mod m, n limbs
  std::vector<std::uint64_t> rr_;   // R^2 mod m, n limbs
};

}  // namespace e2e::crypto
