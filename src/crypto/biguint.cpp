#include "crypto/biguint.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/montgomery.hpp"
#include "obs/instruments.hpp"

namespace e2e::crypto {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

BigUInt::BigUInt(u64 v) {
  if (v != 0) limbs_.push_back(v);
}

void BigUInt::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

unsigned BigUInt::bit_length() const {
  if (limbs_.empty()) return 0;
  const u64 top = limbs_.back();
  const unsigned top_bits = 64 - static_cast<unsigned>(__builtin_clzll(top));
  return static_cast<unsigned>((limbs_.size() - 1) * 64) + top_bits;
}

bool BigUInt::bit(unsigned i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

int BigUInt::compare(const BigUInt& o) const {
  if (limbs_.size() != o.limbs_.size()) {
    return limbs_.size() < o.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != o.limbs_[i]) return limbs_[i] < o.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigUInt operator+(const BigUInt& a, const BigUInt& b) {
  BigUInt out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u64 x = i < a.limbs_.size() ? a.limbs_[i] : 0;
    const u64 y = i < b.limbs_.size() ? b.limbs_[i] : 0;
    const u128 sum = static_cast<u128>(x) + y + carry;
    out.limbs_[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  out.limbs_[n] = carry;
  out.normalize();
  return out;
}

BigUInt operator-(const BigUInt& a, const BigUInt& b) {
  if (a < b) throw std::underflow_error("BigUInt: negative subtraction");
  BigUInt out;
  out.limbs_.resize(a.limbs_.size(), 0);
  u64 borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    const u64 y = i < b.limbs_.size() ? b.limbs_[i] : 0;
    const u128 rhs = static_cast<u128>(y) + borrow;
    if (static_cast<u128>(a.limbs_[i]) >= rhs) {
      out.limbs_[i] = static_cast<u64>(static_cast<u128>(a.limbs_[i]) - rhs);
      borrow = 0;
    } else {
      out.limbs_[i] = static_cast<u64>((static_cast<u128>(1) << 64) +
                                       a.limbs_[i] - rhs);
      borrow = 1;
    }
  }
  out.normalize();
  return out;
}

BigUInt operator*(const BigUInt& a, const BigUInt& b) {
  if (a.is_zero() || b.is_zero()) return BigUInt();
  BigUInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const u128 cur = static_cast<u128>(a.limbs_[i]) * b.limbs_[j] +
                       out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out.limbs_[i + b.limbs_.size()] += carry;
  }
  out.normalize();
  return out;
}

BigUInt BigUInt::shift_limbs(const BigUInt& a, std::size_t limbs) {
  if (a.is_zero()) return a;
  BigUInt out;
  out.limbs_.assign(limbs, 0);
  out.limbs_.insert(out.limbs_.end(), a.limbs_.begin(), a.limbs_.end());
  return out;
}

BigUInt BigUInt::operator<<(unsigned bits) const {
  if (is_zero()) return {};
  const unsigned limb_shift = bits / 64;
  const unsigned bit_shift = bits % 64;
  BigUInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= bit_shift ? (limbs_[i] << bit_shift)
                                            : limbs_[i];
    if (bit_shift) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.normalize();
  return out;
}

BigUInt BigUInt::operator>>(unsigned bits) const {
  const unsigned limb_shift = bits / 64;
  const unsigned bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return {};
  BigUInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = bit_shift ? (limbs_[i + limb_shift] >> bit_shift)
                              : limbs_[i + limb_shift];
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.normalize();
  return out;
}

BigUInt::DivMod BigUInt::divmod(const BigUInt& a, const BigUInt& b) {
  if (b.is_zero()) throw std::domain_error("BigUInt: division by zero");
  if (a < b) return {BigUInt(), a};
  if (b.limbs_.size() == 1) {
    // Single-limb fast path.
    const u64 d = b.limbs_[0];
    BigUInt q;
    q.limbs_.assign(a.limbs_.size(), 0);
    u128 rem = 0;
    for (std::size_t i = a.limbs_.size(); i-- > 0;) {
      const u128 cur = (rem << 64) | a.limbs_[i];
      q.limbs_[i] = static_cast<u64>(cur / d);
      rem = cur % d;
    }
    q.normalize();
    return {std::move(q), BigUInt(static_cast<u64>(rem))};
  }

  // Knuth Algorithm D, base 2^64.
  // D1: normalize so the divisor's top limb has its high bit set.
  const unsigned shift =
      static_cast<unsigned>(__builtin_clzll(b.limbs_.back()));
  const BigUInt u = a << shift;
  const BigUInt v = b << shift;
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() >= n ? u.limbs_.size() - n : 0;

  std::vector<u64> un(u.limbs_);
  un.resize(u.limbs_.size() + 1, 0);  // extra high limb for D3 overflow
  const std::vector<u64>& vn = v.limbs_;

  BigUInt q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate qhat from the top two limbs of the current remainder.
    const u128 numerator = (static_cast<u128>(un[j + n]) << 64) | un[j + n - 1];
    u128 qhat = numerator / vn[n - 1];
    u128 rhat = numerator % vn[n - 1];
    const u128 kBase = static_cast<u128>(1) << 64;
    while (qhat >= kBase ||
           qhat * vn[n - 2] > ((rhat << 64) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= kBase) break;
    }

    // D4: multiply and subtract qhat * v from un[j .. j+n].
    u128 borrow = 0;
    u128 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const u128 p = qhat * vn[i] + carry;
      carry = p >> 64;
      const u64 plo = static_cast<u64>(p);
      const u128 sub = static_cast<u128>(un[i + j]) - plo - borrow;
      un[i + j] = static_cast<u64>(sub);
      borrow = (sub >> 64) ? 1 : 0;
    }
    const u128 subtop = static_cast<u128>(un[j + n]) - carry - borrow;
    un[j + n] = static_cast<u64>(subtop);
    bool negative = (subtop >> 64) != 0;

    // D5/D6: if we overshot, add back one v and decrement qhat.
    if (negative) {
      --qhat;
      u128 c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const u128 s = static_cast<u128>(un[i + j]) + vn[i] + c;
        un[i + j] = static_cast<u64>(s);
        c = s >> 64;
      }
      un[j + n] = static_cast<u64>(un[j + n] + c);
    }
    q.limbs_[j] = static_cast<u64>(qhat);
  }
  q.normalize();

  BigUInt r;
  r.limbs_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
  r.normalize();
  r = r >> shift;
  return {std::move(q), std::move(r)};
}

BigUInt operator/(const BigUInt& a, const BigUInt& b) {
  return BigUInt::divmod(a, b).quotient;
}

BigUInt operator%(const BigUInt& a, const BigUInt& b) {
  return BigUInt::divmod(a, b).remainder;
}

BigUInt BigUInt::modexp(const BigUInt& exp, const BigUInt& m) const {
  if (m.is_zero() || m == BigUInt(1)) {
    throw std::domain_error("BigUInt::modexp: modulus must be > 1");
  }
  auto& registry = obs::MetricsRegistry::global();
  if (m.is_odd()) {
    static obs::Counter& montgomery_count = registry.counter(
        obs::kCryptoModexpTotal, {{"kernel", "montgomery"}});
    montgomery_count.increment();
    return MontgomeryContext::shared(m)->modexp(*this, exp);
  }
  static obs::Counter& reference_count =
      registry.counter(obs::kCryptoModexpTotal, {{"kernel", "reference"}});
  reference_count.increment();
  return modexp_reference(exp, m);
}

BigUInt BigUInt::modexp_reference(const BigUInt& exp, const BigUInt& m) const {
  if (m.is_zero() || m == BigUInt(1)) {
    throw std::domain_error("BigUInt::modexp: modulus must be > 1");
  }
  if (exp.is_zero()) return BigUInt(1);  // m > 1, so 1 mod m == 1
  BigUInt base = *this % m;
  if (exp == BigUInt(1)) return base;
  BigUInt result(1);
  const unsigned bits = exp.bit_length();
  for (unsigned i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = (result * base) % m;
    // The top bit's multiply already happened; squaring past it would be
    // pure waste.
    if (i + 1 < bits) base = (base * base) % m;
  }
  return result;
}

BigUInt BigUInt::gcd(BigUInt a, BigUInt b) {
  while (!b.is_zero()) {
    BigUInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigUInt BigUInt::modinv(const BigUInt& m) const {
  // Extended Euclid tracking only the coefficient of `this`, with signs
  // handled explicitly (BigUInt is unsigned).
  if (m.is_zero() || m == BigUInt(1)) return {};
  BigUInt r0 = m;
  BigUInt r1 = *this % m;
  BigUInt t0;        // coefficient for r0
  BigUInt t1(1);     // coefficient for r1
  bool t0_neg = false, t1_neg = false;
  while (!r1.is_zero()) {
    const DivMod dm = divmod(r0, r1);
    // t2 = t0 - q * t1  (signed arithmetic over unsigned magnitudes)
    const BigUInt qt1 = dm.quotient * t1;
    BigUInt t2;
    bool t2_neg = false;
    if (t0_neg == t1_neg) {
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        t2_neg = t0_neg;
      } else {
        t2 = qt1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt1;
      t2_neg = t0_neg;
    }
    r0 = r1;
    r1 = dm.remainder;
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }
  if (r0 != BigUInt(1)) return {};  // not invertible
  if (t0_neg) return m - (t0 % m);
  return t0 % m;
}

BigUInt BigUInt::random_bits(Rng& rng, unsigned bits) {
  if (bits == 0) return {};
  BigUInt out;
  out.limbs_.assign((bits + 63) / 64, 0);
  for (auto& limb : out.limbs_) limb = rng.next_u64();
  const unsigned top_bits = ((bits - 1) % 64) + 1;
  u64& top = out.limbs_.back();
  if (top_bits < 64) top &= (u64(1) << top_bits) - 1;
  top |= u64(1) << (top_bits - 1);  // force exact bit length
  out.normalize();
  return out;
}

BigUInt BigUInt::random_below(Rng& rng, const BigUInt& bound) {
  if (bound.is_zero()) throw std::domain_error("random_below: zero bound");
  const unsigned bits = bound.bit_length();
  for (;;) {
    BigUInt candidate;
    candidate.limbs_.assign((bits + 63) / 64, 0);
    for (auto& limb : candidate.limbs_) limb = rng.next_u64();
    const unsigned top_bits = ((bits - 1) % 64) + 1;
    if (top_bits < 64) {
      candidate.limbs_.back() &= (u64(1) << top_bits) - 1;
    }
    candidate.normalize();
    if (candidate < bound) return candidate;
  }
}

namespace {
constexpr u64 kSmallPrimes[] = {2,  3,  5,  7,  11, 13, 17, 19, 23, 29,
                                31, 37, 41, 43, 47, 53, 59, 61, 67, 71,
                                73, 79, 83, 89, 97, 101, 103, 107, 109, 113};
}

bool BigUInt::is_probable_prime(Rng& rng, int rounds) const {
  if (bit_length() <= 6) {
    const u64 v = low_u64();
    for (u64 p : kSmallPrimes) {
      if (v == p) return true;
    }
    return false;
  }
  if (!is_odd()) return false;
  for (u64 p : kSmallPrimes) {
    if ((*this % BigUInt(p)).is_zero()) return false;
  }
  // Write n-1 = d * 2^s.
  const BigUInt one(1);
  const BigUInt n_minus_1 = *this - one;
  BigUInt d = n_minus_1;
  unsigned s = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++s;
  }
  const BigUInt n_minus_3 = *this - BigUInt(3);
  for (int round = 0; round < rounds; ++round) {
    const BigUInt a = BigUInt(2) + random_below(rng, n_minus_3);
    BigUInt x = a.modexp(d, *this);
    if (x == one || x == n_minus_1) continue;
    bool witness = true;
    for (unsigned i = 1; i < s; ++i) {
      x = (x * x) % *this;
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigUInt BigUInt::random_prime(Rng& rng, unsigned bits, int mr_rounds) {
  if (bits < 16) throw std::domain_error("random_prime: need >= 16 bits");
  for (;;) {
    BigUInt candidate = random_bits(rng, bits);
    if (!candidate.is_odd()) candidate = candidate + BigUInt(1);
    if (candidate.is_probable_prime(rng, mr_rounds)) return candidate;
  }
}

BigUInt BigUInt::from_string(std::string_view s) {
  if (s.rfind("0x", 0) == 0 || s.rfind("0X", 0) == 0) {
    BigUInt out;
    for (char c : s.substr(2)) {
      int nib;
      if (c >= '0' && c <= '9') nib = c - '0';
      else if (c >= 'a' && c <= 'f') nib = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') nib = c - 'A' + 10;
      else throw std::invalid_argument("BigUInt: bad hex digit");
      out = (out << 4) + BigUInt(static_cast<u64>(nib));
    }
    return out;
  }
  BigUInt out;
  for (char c : s) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("BigUInt: bad decimal digit");
    }
    out = out * BigUInt(10) + BigUInt(static_cast<u64>(c - '0'));
  }
  return out;
}

BigUInt BigUInt::from_limbs(std::vector<std::uint64_t> limbs) {
  BigUInt out;
  out.limbs_ = std::move(limbs);
  out.normalize();
  return out;
}

BigUInt BigUInt::from_bytes(BytesView be) {
  BigUInt out;
  if (be.empty()) return out;
  out.limbs_.assign((be.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < be.size(); ++i) {
    const std::size_t byte_index = be.size() - 1 - i;  // position from LSB
    out.limbs_[byte_index / 8] |= static_cast<u64>(be[i])
                                  << ((byte_index % 8) * 8);
  }
  out.normalize();
  return out;
}

Bytes BigUInt::to_bytes(std::size_t min_len) const {
  Bytes out;
  const std::size_t nbytes = (bit_length() + 7) / 8;
  const std::size_t total = std::max(nbytes, min_len);
  out.assign(total, 0);
  for (std::size_t i = 0; i < nbytes; ++i) {
    const u64 limb = limbs_[i / 8];
    out[total - 1 - i] = static_cast<std::uint8_t>(limb >> ((i % 8) * 8));
  }
  return out;
}

std::string BigUInt::to_hex() const {
  if (is_zero()) return "0x0";
  std::string out = "0x";
  bool leading = true;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      const int nib = static_cast<int>((limbs_[i] >> shift) & 0xf);
      if (leading && nib == 0) continue;
      leading = false;
      out.push_back("0123456789abcdef"[nib]);
    }
  }
  return out;
}

std::string BigUInt::to_decimal() const {
  if (is_zero()) return "0";
  std::string out;
  BigUInt v = *this;
  const BigUInt ten(10);
  while (!v.is_zero()) {
    const DivMod dm = divmod(v, ten);
    out.push_back(static_cast<char>('0' + dm.remainder.low_u64()));
    v = dm.quotient;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace e2e::crypto
