// Bounded memoization of signature-verification results.
//
// crypto::verify() is the innermost cost of every hop: hop-by-hop trust
// introduction, tunnel per-flow admission and delegation chains all
// re-verify the same (key, message, signature) triples at each domain. The
// cache key is SHA-256 over the key's canonical encoding, the message
// digest and the signature bytes, so mutating ANY of the three misses —
// a cached "valid" can never be replayed for a different key, message or
// signature (tests/crypto_cache_test.cpp pins this down).
//
// The cache is a process-wide, mutex-guarded LRU bounded at kDefaultCapacity
// entries. Hit/miss counts surface as e2e_crypto_verify_cache_lookups_total
// (see docs/OBSERVABILITY.md). set_capacity(0) disables caching — the
// micro benches use this to measure the uncached path.
#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "crypto/sha256.hpp"

namespace e2e::crypto {

class VerifyCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  /// The process-wide instance used by crypto::verify().
  static VerifyCache& global();

  explicit VerifyCache(std::size_t capacity = kDefaultCapacity);

  /// Cached verdict for this (key, message, signature) digest, bumping the
  /// hit/miss counters. std::nullopt on miss or when disabled.
  std::optional<bool> lookup(const Digest& key);
  /// Record a verdict (no-op when disabled). Evicts the least recently
  /// used entry when full.
  void insert(const Digest& key, bool valid);

  /// Resize; 0 disables the cache entirely. Always clears current entries.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;
  std::size_t size() const;
  void clear();

 private:
  struct DigestHash {
    std::size_t operator()(const Digest& d) const {
      // The key is itself a SHA-256 output: any 8 bytes are uniform.
      std::size_t h = 0;
      for (int i = 0; i < 8; ++i) h = (h << 8) | d[i];
      return h;
    }
  };
  using LruList = std::list<std::pair<Digest, bool>>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  LruList lru_;  // front = most recent
  std::unordered_map<Digest, LruList::iterator, DigestHash> map_;
};

}  // namespace e2e::crypto
