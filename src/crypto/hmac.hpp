// HMAC-SHA256 (RFC 2104).
//
// Used by sig::SecureChannel for record integrity after the handshake — the
// stand-in for the TLS record layer the paper assumes between peered
// bandwidth brokers.
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace e2e::crypto {

/// HMAC-SHA256(key, message).
Digest hmac_sha256(BytesView key, BytesView message);

/// HKDF-style key derivation used by the channel handshake: derives
/// `out_len` bytes from the shared secret and a context label by counter-mode
/// expansion of HMAC-SHA256.
Bytes derive_key(BytesView secret, std::string_view label, std::size_t out_len);

}  // namespace e2e::crypto
