// Arbitrary-precision unsigned integers.
//
// This is the arithmetic substrate for the toy RSA scheme used by the
// signalling protocol (see DESIGN.md, substitutions table). Little-endian
// 64-bit limbs, normalized (no leading zero limbs); schoolbook
// multiplication and Knuth Algorithm D division via unsigned __int128.
// Sizes in this library are small (<= 1024-bit products), so asymptotically
// fancy algorithms are deliberately out of scope — with one exception:
// modular exponentiation over odd moduli dispatches to the Montgomery
// kernel in crypto/montgomery.hpp (division-free REDC multiplication plus
// fixed-window exponentiation), because per-hop RSA dominates the
// signalling latency benches. The pre-Montgomery square-and-multiply
// survives as modexp_reference(), the differential-testing oracle.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace e2e::crypto {

class BigUInt;

/// Quotient and remainder in one pass (see BigUInt::divmod).
struct BigUIntDivMod;

class BigUInt {
 public:
  BigUInt() = default;
  BigUInt(std::uint64_t v);  // NOLINT(implicit) — natural promotion

  /// Parse from decimal ("12345") or, with prefix 0x, hex ("0xdeadbeef").
  static BigUInt from_string(std::string_view s);
  /// Big-endian byte import (as used for hash-to-integer).
  static BigUInt from_bytes(BytesView be);

  /// Uniformly random integer with exactly `bits` bits (MSB forced to 1 for
  /// bits >= 1). bits == 0 yields zero.
  static BigUInt random_bits(Rng& rng, unsigned bits);
  /// Uniform in [0, bound) for bound > 0.
  static BigUInt random_below(Rng& rng, const BigUInt& bound);

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  unsigned bit_length() const;
  bool bit(unsigned i) const;

  /// Value of the lowest limb (0 if zero); callers must check bit_length.
  std::uint64_t low_u64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  // Comparison.
  int compare(const BigUInt& o) const;
  bool operator==(const BigUInt& o) const { return compare(o) == 0; }
  bool operator!=(const BigUInt& o) const { return compare(o) != 0; }
  bool operator<(const BigUInt& o) const { return compare(o) < 0; }
  bool operator<=(const BigUInt& o) const { return compare(o) <= 0; }
  bool operator>(const BigUInt& o) const { return compare(o) > 0; }
  bool operator>=(const BigUInt& o) const { return compare(o) >= 0; }

  // Arithmetic. Subtraction requires a >= b (throws std::underflow_error).
  friend BigUInt operator+(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator-(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator*(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator/(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator%(const BigUInt& a, const BigUInt& b);

  /// Quotient and remainder in one pass. Divisor must be non-zero
  /// (throws std::domain_error).
  using DivMod = BigUIntDivMod;
  static DivMod divmod(const BigUInt& a, const BigUInt& b);

  BigUInt operator<<(unsigned bits) const;
  BigUInt operator>>(unsigned bits) const;

  /// this^exp mod m (m > 1). Odd moduli use the Montgomery fast path
  /// (crypto/montgomery.hpp); even moduli fall back to modexp_reference.
  BigUInt modexp(const BigUInt& exp, const BigUInt& m) const;

  /// Square-and-multiply with a full division per step — the original
  /// implementation, kept as the oracle the Montgomery kernel is
  /// differential-tested against. Works for any m > 1.
  BigUInt modexp_reference(const BigUInt& exp, const BigUInt& m) const;

  static BigUInt gcd(BigUInt a, BigUInt b);
  /// Modular inverse of this mod m; returns zero if gcd(this, m) != 1.
  BigUInt modinv(const BigUInt& m) const;

  /// Miller-Rabin probabilistic primality (`rounds` random bases plus small
  /// trial division). Error probability <= 4^-rounds.
  bool is_probable_prime(Rng& rng, int rounds = 24) const;
  /// Random prime with exactly `bits` bits (>= 16).
  static BigUInt random_prime(Rng& rng, unsigned bits, int mr_rounds = 24);

  std::string to_decimal() const;
  std::string to_hex() const;
  /// Big-endian export, minimal length (empty for zero) unless `min_len`
  /// pads with leading zero bytes.
  Bytes to_bytes(std::size_t min_len = 0) const;

  /// Little-endian limb view (normalized, no leading zeros). The Montgomery
  /// kernel operates on these directly.
  const std::vector<std::uint64_t>& limbs() const { return limbs_; }
  /// Build from little-endian limbs (normalizes).
  static BigUInt from_limbs(std::vector<std::uint64_t> limbs);

 private:
  void normalize();
  static BigUInt shift_limbs(const BigUInt& a, std::size_t limbs);

  std::vector<std::uint64_t> limbs_;  // little-endian, normalized
};

struct BigUIntDivMod {
  BigUInt quotient;
  BigUInt remainder;
};

}  // namespace e2e::crypto
