// X.500-style Distinguished Names.
//
// The signalling protocol identifies every principal — users, bandwidth
// brokers, CAs, the CAS — by DN (paper notation DN_A, DN_BB_A, ...). The
// LDAP-style certificate repository (src/repo) is likewise indexed by DN.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace e2e::crypto {

class DistinguishedName {
 public:
  DistinguishedName() = default;

  /// Parse "CN=Alice, O=Argonne, C=US". Attribute order is significant
  /// (canonical form preserves it). Whitespace around separators is trimmed.
  static Result<DistinguishedName> parse(std::string_view text);

  /// Convenience builder for the common shape used throughout the library.
  static DistinguishedName make(std::string_view common_name,
                                std::string_view organization,
                                std::string_view country = "US");

  /// Canonical text form: "CN=Alice,O=Argonne,C=US" (no spaces).
  std::string to_string() const;

  /// First value of the given attribute type ("" if absent).
  std::string get(std::string_view type) const;
  std::string common_name() const { return get("CN"); }
  std::string organization() const { return get("O"); }

  void add(std::string type, std::string value);

  bool empty() const { return rdns_.empty(); }
  const std::vector<std::pair<std::string, std::string>>& rdns() const {
    return rdns_;
  }

  bool operator==(const DistinguishedName& o) const = default;
  /// Lexicographic on canonical form; lets DNs key std::map.
  bool operator<(const DistinguishedName& o) const {
    return to_string() < o.to_string();
  }

 private:
  std::vector<std::pair<std::string, std::string>> rdns_;
};

}  // namespace e2e::crypto
