#include "crypto/hmac.hpp"

#include <cstring>

namespace e2e::crypto {

Digest hmac_sha256(BytesView key, BytesView message) {
  constexpr std::size_t kBlockSize = 64;
  std::array<std::uint8_t, kBlockSize> key_block{};
  if (key.size() > kBlockSize) {
    const Digest kd = sha256(key);
    std::memcpy(key_block.data(), kd.data(), kd.size());
  } else if (!key.empty()) {
    std::memcpy(key_block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kBlockSize> ipad{};
  std::array<std::uint8_t, kBlockSize> opad{};
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(BytesView(ipad.data(), ipad.size()));
  inner.update(message);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(BytesView(opad.data(), opad.size()));
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

Bytes derive_key(BytesView secret, std::string_view label,
                 std::size_t out_len) {
  Bytes out;
  out.reserve(out_len);
  std::uint32_t counter = 1;
  while (out.size() < out_len) {
    Bytes info(label.begin(), label.end());
    info.push_back(static_cast<std::uint8_t>(counter >> 24));
    info.push_back(static_cast<std::uint8_t>(counter >> 16));
    info.push_back(static_cast<std::uint8_t>(counter >> 8));
    info.push_back(static_cast<std::uint8_t>(counter));
    const Digest block = hmac_sha256(secret, info);
    const std::size_t take = std::min(out_len - out.size(), block.size());
    out.insert(out.end(), block.begin(), block.begin() + take);
    ++counter;
  }
  return out;
}

}  // namespace e2e::crypto
