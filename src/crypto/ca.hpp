// Certificate authority.
//
// Each administrative domain (and each community service like the CAS) runs
// a CA that issues certificates for its principals. SLAs between peered
// domains carry "the certificate of the issuing certificate authority"
// (paper §6) so peers can validate each other during the channel handshake.
#pragma once

#include <set>
#include <string>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "crypto/x509.hpp"

namespace e2e::crypto {

class CertificateAuthority {
 public:
  /// Creates the CA with a fresh key pair and a self-signed root
  /// certificate valid over `validity`.
  CertificateAuthority(DistinguishedName name, Rng& rng,
                       TimeInterval validity, unsigned key_bits = 512);

  const DistinguishedName& name() const { return name_; }
  const Certificate& root_certificate() const { return root_cert_; }
  const PublicKey& public_key() const { return keys_.pub; }

  /// Issue a certificate binding `subject` to `subject_key`.
  Certificate issue(const DistinguishedName& subject,
                    const PublicKey& subject_key, TimeInterval validity,
                    std::vector<Extension> extensions = {});

  /// Revocation (CRL stand-in).
  void revoke(std::uint64_t serial) { revoked_.insert(serial); }
  bool is_revoked(std::uint64_t serial) const {
    return revoked_.contains(serial);
  }

 private:
  DistinguishedName name_;
  KeyPair keys_;
  Certificate root_cert_;
  std::uint64_t next_serial_ = 1;
  std::set<std::uint64_t> revoked_;
};

}  // namespace e2e::crypto
