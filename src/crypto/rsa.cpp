#include "crypto/rsa.hpp"

#include "common/tlv.hpp"
#include "crypto/verify_cache.hpp"
#include "obs/instruments.hpp"

namespace e2e::crypto {

namespace {
// TLV tags local to key encoding.
constexpr tlv::Tag kTagModulus = 0x0101;
constexpr tlv::Tag kTagExponent = 0x0102;
// CRT extension of the private-key encoding. Readers that predate these
// tags (the legacy two-field decoder) never see them because encode() only
// appends them after modulus+exponent, and decode() treats them as an
// optional trailer.
constexpr tlv::Tag kTagPrimeP = 0x0103;
constexpr tlv::Tag kTagPrimeQ = 0x0104;
constexpr tlv::Tag kTagExpDp = 0x0105;
constexpr tlv::Tag kTagExpDq = 0x0106;
constexpr tlv::Tag kTagQInv = 0x0107;
}  // namespace

Bytes PublicKey::encode() const {
  tlv::Writer w;
  w.put_bytes(kTagModulus, n.to_bytes());
  w.put_bytes(kTagExponent, e.to_bytes());
  return w.take();
}

Result<PublicKey> PublicKey::decode(BytesView data) {
  tlv::Reader r(data);
  auto n_bytes = r.read_bytes(kTagModulus);
  if (!n_bytes) return n_bytes.error();
  auto e_bytes = r.read_bytes(kTagExponent);
  if (!e_bytes) return e_bytes.error();
  if (!r.at_end()) {
    return make_error(ErrorCode::kBadMessage, "PublicKey: trailing bytes");
  }
  return PublicKey{BigUInt::from_bytes(*n_bytes), BigUInt::from_bytes(*e_bytes)};
}

Digest PublicKey::fingerprint() const { return sha256(encode()); }

Bytes PrivateKey::encode() const {
  tlv::Writer w;
  w.put_bytes(kTagModulus, n.to_bytes());
  w.put_bytes(kTagExponent, d.to_bytes());
  if (crt) {
    w.put_bytes(kTagPrimeP, crt->p.to_bytes());
    w.put_bytes(kTagPrimeQ, crt->q.to_bytes());
    w.put_bytes(kTagExpDp, crt->dp.to_bytes());
    w.put_bytes(kTagExpDq, crt->dq.to_bytes());
    w.put_bytes(kTagQInv, crt->qinv.to_bytes());
  }
  return w.take();
}

Result<PrivateKey> PrivateKey::decode(BytesView data) {
  tlv::Reader r(data);
  auto n_bytes = r.read_bytes(kTagModulus);
  if (!n_bytes) return n_bytes.error();
  auto d_bytes = r.read_bytes(kTagExponent);
  if (!d_bytes) return d_bytes.error();
  PrivateKey key{BigUInt::from_bytes(*n_bytes), BigUInt::from_bytes(*d_bytes),
                 std::nullopt};
  if (r.at_end()) return key;  // legacy two-field encoding
  auto p_bytes = r.read_bytes(kTagPrimeP);
  if (!p_bytes) return p_bytes.error();
  auto q_bytes = r.read_bytes(kTagPrimeQ);
  if (!q_bytes) return q_bytes.error();
  auto dp_bytes = r.read_bytes(kTagExpDp);
  if (!dp_bytes) return dp_bytes.error();
  auto dq_bytes = r.read_bytes(kTagExpDq);
  if (!dq_bytes) return dq_bytes.error();
  auto qinv_bytes = r.read_bytes(kTagQInv);
  if (!qinv_bytes) return qinv_bytes.error();
  key.crt = CrtParams{BigUInt::from_bytes(*p_bytes),
                      BigUInt::from_bytes(*q_bytes),
                      BigUInt::from_bytes(*dp_bytes),
                      BigUInt::from_bytes(*dq_bytes),
                      BigUInt::from_bytes(*qinv_bytes)};
  return key;
}

KeyPair generate_keypair(Rng& rng, unsigned bits) {
  if (bits < 128) bits = 128;
  const BigUInt e(65537);
  for (;;) {
    const BigUInt p = BigUInt::random_prime(rng, bits / 2);
    const BigUInt q = BigUInt::random_prime(rng, bits - bits / 2);
    if (p == q) continue;
    const BigUInt n = p * q;
    const BigUInt one(1);
    const BigUInt phi = (p - one) * (q - one);
    if (BigUInt::gcd(e, phi) != one) continue;
    const BigUInt d = e.modinv(phi);
    if (d.is_zero()) continue;
    // CRT precomputation is pure arithmetic on p/q/d — it consumes no RNG,
    // so keypairs stay bit-identical to the pre-CRT generator for a given
    // seed.
    CrtParams crt{p, q, d % (p - one), d % (q - one), q.modinv(p)};
    return KeyPair{PublicKey{n, e}, PrivateKey{n, d, std::move(crt)}};
  }
}

namespace {
BigUInt hash_to_int(BytesView message, const BigUInt& n) {
  const Digest digest = sha256(message);
  BigUInt h = BigUInt::from_bytes(BytesView(digest.data(), digest.size()));
  // Keys are always > 256 bits in this library, but reduce defensively so
  // the scheme stays well-defined for any modulus.
  return h % n;
}
}  // namespace

namespace {
/// Garner recombination: s = h^d mod n from the two half-size residues.
/// Algebraically equal to h^d mod n, so signatures are byte-identical to
/// the plain path (pinned by the differential test in crypto_rsa_test).
BigUInt sign_crt(const CrtParams& crt, const BigUInt& h) {
  const BigUInt m1 = h.modexp(crt.dp, crt.p);
  const BigUInt m2 = h.modexp(crt.dq, crt.q);
  const BigUInt m2p = m2 % crt.p;
  const BigUInt diff = m1 >= m2p ? m1 - m2p : m1 + crt.p - m2p;
  const BigUInt t = (diff * crt.qinv) % crt.p;
  return m2 + t * crt.q;
}
}  // namespace

Bytes sign(const PrivateKey& key, BytesView message) {
  auto& registry = obs::MetricsRegistry::global();
  const BigUInt h = hash_to_int(message, key.n);
  BigUInt s;
  if (key.crt) {
    static obs::Counter& crt_count =
        registry.counter(obs::kCryptoSignsTotal, {{"path", "crt"}});
    crt_count.increment();
    s = sign_crt(*key.crt, h);
  } else {
    static obs::Counter& plain_count =
        registry.counter(obs::kCryptoSignsTotal, {{"path", "plain"}});
    plain_count.increment();
    s = h.modexp(key.d, key.n);
  }
  // Fixed-width output so signatures are canonical for a given key size.
  return s.to_bytes((key.n.bit_length() + 7) / 8);
}

bool verify(const PublicKey& key, BytesView message, BytesView signature) {
  auto& registry = obs::MetricsRegistry::global();
  // Montgomery precondition guard: an even or <= 1 modulus (or a zero
  // exponent) can never come from generate_keypair, so reject before any
  // arithmetic rather than falling back to a slow kernel.
  if (key.n.is_zero() || key.e.is_zero() || !key.n.is_odd() ||
      key.n == BigUInt(1)) {
    static obs::Counter& bad_key =
        registry.counter(obs::kCryptoBadKeyRejectsTotal, {});
    bad_key.increment();
    return false;
  }
  const BigUInt s = BigUInt::from_bytes(signature);
  if (s >= key.n) {
    static obs::Counter& bad_sig =
        registry.counter(obs::kCryptoBadKeyRejectsTotal, {});
    bad_sig.increment();
    return false;
  }

  // Memoize on the full (key, message, signature) triple so any mutation
  // of any component misses.
  Sha256 hasher;
  hasher.update(key.encode());
  const Digest msg_digest = sha256(message);
  hasher.update(BytesView(msg_digest.data(), msg_digest.size()));
  hasher.update(signature);
  const Digest cache_key = hasher.finish();

  VerifyCache& cache = VerifyCache::global();
  if (auto cached = cache.lookup(cache_key)) return *cached;

  const BigUInt recovered = s.modexp(key.e, key.n);
  const bool valid = recovered == hash_to_int(message, key.n);
  cache.insert(cache_key, valid);
  return valid;
}

}  // namespace e2e::crypto
