#include "crypto/rsa.hpp"

#include "common/tlv.hpp"

namespace e2e::crypto {

namespace {
// TLV tags local to key encoding.
constexpr tlv::Tag kTagModulus = 0x0101;
constexpr tlv::Tag kTagExponent = 0x0102;
}  // namespace

Bytes PublicKey::encode() const {
  tlv::Writer w;
  w.put_bytes(kTagModulus, n.to_bytes());
  w.put_bytes(kTagExponent, e.to_bytes());
  return w.take();
}

Result<PublicKey> PublicKey::decode(BytesView data) {
  tlv::Reader r(data);
  auto n_bytes = r.read_bytes(kTagModulus);
  if (!n_bytes) return n_bytes.error();
  auto e_bytes = r.read_bytes(kTagExponent);
  if (!e_bytes) return e_bytes.error();
  if (!r.at_end()) {
    return make_error(ErrorCode::kBadMessage, "PublicKey: trailing bytes");
  }
  return PublicKey{BigUInt::from_bytes(*n_bytes), BigUInt::from_bytes(*e_bytes)};
}

Digest PublicKey::fingerprint() const { return sha256(encode()); }

Bytes PrivateKey::encode() const {
  tlv::Writer w;
  w.put_bytes(kTagModulus, n.to_bytes());
  w.put_bytes(kTagExponent, d.to_bytes());
  return w.take();
}

Result<PrivateKey> PrivateKey::decode(BytesView data) {
  tlv::Reader r(data);
  auto n_bytes = r.read_bytes(kTagModulus);
  if (!n_bytes) return n_bytes.error();
  auto d_bytes = r.read_bytes(kTagExponent);
  if (!d_bytes) return d_bytes.error();
  return PrivateKey{BigUInt::from_bytes(*n_bytes),
                    BigUInt::from_bytes(*d_bytes)};
}

KeyPair generate_keypair(Rng& rng, unsigned bits) {
  if (bits < 128) bits = 128;
  const BigUInt e(65537);
  for (;;) {
    const BigUInt p = BigUInt::random_prime(rng, bits / 2);
    const BigUInt q = BigUInt::random_prime(rng, bits - bits / 2);
    if (p == q) continue;
    const BigUInt n = p * q;
    const BigUInt one(1);
    const BigUInt phi = (p - one) * (q - one);
    if (BigUInt::gcd(e, phi) != one) continue;
    const BigUInt d = e.modinv(phi);
    if (d.is_zero()) continue;
    return KeyPair{PublicKey{n, e}, PrivateKey{n, d}};
  }
}

namespace {
BigUInt hash_to_int(BytesView message, const BigUInt& n) {
  const Digest digest = sha256(message);
  BigUInt h = BigUInt::from_bytes(BytesView(digest.data(), digest.size()));
  // Keys are always > 256 bits in this library, but reduce defensively so
  // the scheme stays well-defined for any modulus.
  return h % n;
}
}  // namespace

Bytes sign(const PrivateKey& key, BytesView message) {
  const BigUInt h = hash_to_int(message, key.n);
  const BigUInt s = h.modexp(key.d, key.n);
  // Fixed-width output so signatures are canonical for a given key size.
  return s.to_bytes((key.n.bit_length() + 7) / 8);
}

bool verify(const PublicKey& key, BytesView message, BytesView signature) {
  if (key.n.is_zero() || key.e.is_zero()) return false;
  const BigUInt s = BigUInt::from_bytes(signature);
  if (s >= key.n) return false;
  const BigUInt recovered = s.modexp(key.e, key.n);
  return recovered == hash_to_int(message, key.n);
}

}  // namespace e2e::crypto
