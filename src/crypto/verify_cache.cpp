#include "crypto/verify_cache.hpp"

#include "obs/instruments.hpp"

namespace e2e::crypto {

VerifyCache& VerifyCache::global() {
  static VerifyCache cache;
  return cache;
}

VerifyCache::VerifyCache(std::size_t capacity) : capacity_(capacity) {}

std::optional<bool> VerifyCache::lookup(const Digest& key) {
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& hits = registry.counter(
      obs::kCryptoVerifyCacheLookupsTotal, {{"result", "hit"}});
  static obs::Counter& misses = registry.counter(
      obs::kCryptoVerifyCacheLookupsTotal, {{"result", "miss"}});

  std::lock_guard lock(mu_);
  if (capacity_ == 0) {
    misses.increment();
    return std::nullopt;
  }
  auto it = map_.find(key);
  if (it == map_.end()) {
    misses.increment();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  hits.increment();
  return it->second->second;
}

void VerifyCache::insert(const Digest& key, bool valid) {
  std::lock_guard lock(mu_);
  if (capacity_ == 0) return;
  if (auto it = map_.find(key); it != map_.end()) {
    it->second->second = valid;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(key, valid);
  map_.emplace(key, lru_.begin());
}

void VerifyCache::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mu_);
  capacity_ = capacity;
  lru_.clear();
  map_.clear();
}

std::size_t VerifyCache::capacity() const {
  std::lock_guard lock(mu_);
  return capacity_;
}

std::size_t VerifyCache::size() const {
  std::lock_guard lock(mu_);
  return map_.size();
}

void VerifyCache::clear() {
  std::lock_guard lock(mu_);
  lru_.clear();
  map_.clear();
}

}  // namespace e2e::crypto
