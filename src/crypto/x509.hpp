// X.509v3-style certificates with extension fields.
//
// The paper's capability certificates are "capability attributes in the
// extension field of an ITU X.509v3 certificate" (§5) carrying a
// "Capability Certificate Flag", the capability list (e.g. "Capabilities of
// ESnet") and delegation restrictions ("Valid for Reservation in Domain C",
// Fig. 7). This module models exactly those observable parts: a canonical
// to-be-signed encoding, an issuer signature, and named extensions.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/result.hpp"
#include "crypto/dn.hpp"
#include "crypto/rsa.hpp"

namespace e2e::crypto {

/// Named extension. `critical` mirrors X.509 semantics: a verifier that does
/// not understand a critical extension must reject the certificate.
struct Extension {
  std::string name;
  bool critical = false;
  std::string value;

  bool operator==(const Extension&) const = default;
};

// Extension names used by the signalling protocol (paper Fig. 7).
inline constexpr const char* kExtCapabilityFlag = "CapabilityCertificateFlag";
inline constexpr const char* kExtCapabilities = "Capabilities";
inline constexpr const char* kExtValidForRar = "ValidForRAR";
inline constexpr const char* kExtCommunity = "Community";
inline constexpr const char* kExtGroup = "Group";
inline constexpr const char* kExtCa = "CA";  // basic-constraints stand-in

class Certificate {
 public:
  Certificate() = default;

  std::uint64_t serial() const { return serial_; }
  const DistinguishedName& issuer() const { return issuer_; }
  const DistinguishedName& subject() const { return subject_; }
  const TimeInterval& validity() const { return validity_; }
  const PublicKey& subject_public_key() const { return subject_key_; }
  const std::vector<Extension>& extensions() const { return extensions_; }
  const Bytes& signature() const { return signature_; }

  bool has_extension(std::string_view name) const;
  /// Value of the first extension with `name` (nullopt if absent).
  std::optional<std::string> extension_value(std::string_view name) const;

  /// True if the capability-certificate flag extension is present.
  bool is_capability_certificate() const {
    return has_extension(kExtCapabilityFlag);
  }
  /// Parsed comma-separated capability list ("Capabilities" extension).
  std::vector<std::string> capabilities() const;

  bool valid_at(SimTime t) const { return validity_.contains(t); }
  bool is_self_signed() const { return issuer_ == subject_; }

  /// Canonical to-be-signed bytes (everything except the signature).
  /// Certificates produced by decode() or Builder::sign_with() carry the
  /// encoding precomputed, so per-hop re-verification never re-serializes.
  Bytes tbs_encode() const;
  /// Full canonical encoding including the signature (the wire format is
  /// the TBS TLV followed by the signature TLV, so this reuses the cached
  /// TBS bytes).
  Bytes encode() const;
  static Result<Certificate> decode(BytesView data);

  /// Check the issuer signature over the TBS bytes.
  bool verify_signature(const PublicKey& issuer_key) const;

  /// SHA-256 of the full encoding; used as a stable identity in maps/logs.
  Digest fingerprint() const { return sha256(encode()); }

  bool operator==(const Certificate& o) const { return encode() == o.encode(); }

  /// Mutable builder; `CertificateAuthority::issue` and the delegation code
  /// are the only intended users.
  struct Builder {
    std::uint64_t serial = 0;
    DistinguishedName issuer;
    DistinguishedName subject;
    TimeInterval validity;
    PublicKey subject_key;
    std::vector<Extension> extensions;

    /// Sign the TBS with `issuer_key` and produce the certificate.
    Certificate sign_with(const PrivateKey& issuer_key) const;
  };

 private:
  std::uint64_t serial_ = 0;
  DistinguishedName issuer_;
  DistinguishedName subject_;
  TimeInterval validity_;
  PublicKey subject_key_;
  std::vector<Extension> extensions_;
  Bytes signature_;
  // Filled eagerly by decode()/Builder::sign_with(), after which the object
  // is immutable — tbs_encode() const only ever reads it (thread-safe
  // without locks). Empty for default-constructed certificates.
  Bytes tbs_cache_;
};

}  // namespace e2e::crypto
