#include "crypto/x509.hpp"

#include "common/tlv.hpp"
#include "obs/instruments.hpp"

namespace e2e::crypto {

namespace {
constexpr tlv::Tag kTagSerial = 0x0201;
constexpr tlv::Tag kTagIssuer = 0x0202;
constexpr tlv::Tag kTagSubject = 0x0203;
constexpr tlv::Tag kTagNotBefore = 0x0204;
constexpr tlv::Tag kTagNotAfter = 0x0205;
constexpr tlv::Tag kTagSubjectKey = 0x0206;
constexpr tlv::Tag kTagExtension = 0x0207;
constexpr tlv::Tag kTagExtName = 0x0208;
constexpr tlv::Tag kTagExtCritical = 0x0209;
constexpr tlv::Tag kTagExtValue = 0x020a;
constexpr tlv::Tag kTagTbs = 0x020b;
constexpr tlv::Tag kTagSignature = 0x020c;
}  // namespace

bool Certificate::has_extension(std::string_view name) const {
  for (const auto& e : extensions_) {
    if (e.name == name) return true;
  }
  return false;
}

std::optional<std::string> Certificate::extension_value(
    std::string_view name) const {
  for (const auto& e : extensions_) {
    if (e.name == name) return e.value;
  }
  return std::nullopt;
}

std::vector<std::string> Certificate::capabilities() const {
  std::vector<std::string> out;
  const auto value = extension_value(kExtCapabilities);
  if (!value) return out;
  std::size_t pos = 0;
  while (pos <= value->size()) {
    const std::size_t comma = value->find(',', pos);
    std::string item = value->substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    // trim spaces
    while (!item.empty() && item.front() == ' ') item.erase(item.begin());
    while (!item.empty() && item.back() == ' ') item.pop_back();
    if (!item.empty()) out.push_back(std::move(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

namespace {
void encode_tbs_into(tlv::Writer& w, std::uint64_t serial,
                     const DistinguishedName& issuer,
                     const DistinguishedName& subject,
                     const TimeInterval& validity, const PublicKey& key,
                     const std::vector<Extension>& extensions) {
  w.open(kTagTbs);
  w.put_u64(kTagSerial, serial);
  w.put_string(kTagIssuer, issuer.to_string());
  w.put_string(kTagSubject, subject.to_string());
  w.put_i64(kTagNotBefore, validity.start);
  w.put_i64(kTagNotAfter, validity.end);
  w.put_bytes(kTagSubjectKey, key.encode());
  for (const auto& ext : extensions) {
    w.open(kTagExtension);
    w.put_string(kTagExtName, ext.name);
    w.put_bool(kTagExtCritical, ext.critical);
    w.put_string(kTagExtValue, ext.value);
    w.close();
  }
  w.close();
}
}  // namespace

Bytes Certificate::tbs_encode() const {
  auto& registry = obs::MetricsRegistry::global();
  if (!tbs_cache_.empty()) {
    static obs::Counter& hits = registry.counter(
        obs::kCryptoTbsCacheLookupsTotal, {{"result", "hit"}});
    hits.increment();
    return tbs_cache_;
  }
  static obs::Counter& misses = registry.counter(
      obs::kCryptoTbsCacheLookupsTotal, {{"result", "miss"}});
  misses.increment();
  tlv::Writer w;
  encode_tbs_into(w, serial_, issuer_, subject_, validity_, subject_key_,
                  extensions_);
  return w.take();
}

Bytes Certificate::encode() const {
  // The wire format is the TBS TLV followed by the signature TLV, so the
  // cached TBS bytes can be reused verbatim.
  Bytes out = tbs_encode();
  tlv::Writer w;
  w.put_bytes(kTagSignature, signature_);
  append(out, w.take());
  return out;
}

Result<Certificate> Certificate::decode(BytesView data) {
  tlv::Reader top(data);
  auto tbs = top.read_nested(kTagTbs);
  if (!tbs) return tbs.error();

  Certificate cert;
  auto serial = tbs->read_u64(kTagSerial);
  if (!serial) return serial.error();
  cert.serial_ = *serial;

  auto issuer_text = tbs->read_string(kTagIssuer);
  if (!issuer_text) return issuer_text.error();
  auto issuer = DistinguishedName::parse(*issuer_text);
  if (!issuer) return issuer.error();
  cert.issuer_ = *issuer;

  auto subject_text = tbs->read_string(kTagSubject);
  if (!subject_text) return subject_text.error();
  auto subject = DistinguishedName::parse(*subject_text);
  if (!subject) return subject.error();
  cert.subject_ = *subject;

  auto not_before = tbs->read_i64(kTagNotBefore);
  if (!not_before) return not_before.error();
  auto not_after = tbs->read_i64(kTagNotAfter);
  if (!not_after) return not_after.error();
  cert.validity_ = TimeInterval{*not_before, *not_after};

  auto key_bytes = tbs->read_bytes(kTagSubjectKey);
  if (!key_bytes) return key_bytes.error();
  auto key = PublicKey::decode(*key_bytes);
  if (!key) return key.error();
  cert.subject_key_ = *key;

  while (!tbs->at_end()) {
    auto ext_reader = tbs->read_nested(kTagExtension);
    if (!ext_reader) return ext_reader.error();
    Extension ext;
    auto name = ext_reader->read_string(kTagExtName);
    if (!name) return name.error();
    ext.name = *name;
    auto critical = ext_reader->read_bool(kTagExtCritical);
    if (!critical) return critical.error();
    ext.critical = *critical;
    auto value = ext_reader->read_string(kTagExtValue);
    if (!value) return value.error();
    ext.value = *value;
    cert.extensions_.push_back(std::move(ext));
  }

  auto signature = top.read_bytes(kTagSignature);
  if (!signature) return signature.error();
  cert.signature_ = *signature;
  if (!top.at_end()) {
    return make_error(ErrorCode::kBadMessage, "Certificate: trailing bytes");
  }
  // Precompute the TBS bytes while the object is still private to this
  // frame; every later tbs_encode()/encode()/verify_signature() reads the
  // cache without re-serializing.
  tlv::Writer w;
  encode_tbs_into(w, cert.serial_, cert.issuer_, cert.subject_,
                  cert.validity_, cert.subject_key_, cert.extensions_);
  cert.tbs_cache_ = w.take();
  return cert;
}

bool Certificate::verify_signature(const PublicKey& issuer_key) const {
  return verify(issuer_key, tbs_encode(), signature_);
}

Certificate Certificate::Builder::sign_with(
    const PrivateKey& issuer_key) const {
  Certificate cert;
  cert.serial_ = serial;
  cert.issuer_ = issuer;
  cert.subject_ = subject;
  cert.validity_ = validity;
  cert.subject_key_ = subject_key;
  cert.extensions_ = extensions;
  tlv::Writer w;
  encode_tbs_into(w, cert.serial_, cert.issuer_, cert.subject_,
                  cert.validity_, cert.subject_key_, cert.extensions_);
  cert.tbs_cache_ = w.take();
  cert.signature_ = sign(issuer_key, cert.tbs_cache_);
  return cert;
}

}  // namespace e2e::crypto
