#include "crypto/certstore.hpp"

namespace e2e::crypto {

bool TrustStore::add_anchor(const Certificate& cert) {
  if (!cert.is_self_signed()) return false;
  if (!cert.verify_signature(cert.subject_public_key())) return false;
  anchors_.insert_or_assign(cert.subject().to_string(), cert);
  return true;
}

const Certificate* TrustStore::find_anchor(const DistinguishedName& dn) const {
  const auto it = anchors_.find(dn.to_string());
  return it == anchors_.end() ? nullptr : &it->second;
}

Result<std::vector<Certificate>> TrustStore::verify_chain(
    const Certificate& leaf, const std::vector<Certificate>& intermediates,
    SimTime at) const {
  std::vector<Certificate> path;
  path.push_back(leaf);
  constexpr std::size_t kMaxDepth = 16;

  for (std::size_t depth = 0; depth < kMaxDepth; ++depth) {
    const Certificate& current = path.back();
    if (!current.valid_at(at)) {
      return make_error(ErrorCode::kExpired,
                        "certificate for " + current.subject().to_string() +
                            " not valid at t=" + std::to_string(at));
    }
    if (revocation_ && revocation_(current.issuer(), current.serial())) {
      return make_error(ErrorCode::kUntrustedKey,
                        "certificate serial " +
                            std::to_string(current.serial()) + " revoked");
    }

    // Anchor reached? The issuer must be a known anchor whose key verifies.
    if (const Certificate* anchor = find_anchor(current.issuer())) {
      if (!current.verify_signature(anchor->subject_public_key())) {
        return make_error(ErrorCode::kBadSignature,
                          "signature by anchor " +
                              current.issuer().to_string() + " invalid");
      }
      if (!anchor->valid_at(at)) {
        return make_error(ErrorCode::kExpired,
                          "anchor " + anchor->subject().to_string() +
                              " not valid at t=" + std::to_string(at));
      }
      if (!(current == *anchor)) path.push_back(*anchor);
      return path;
    }

    // Otherwise find an intermediate that issued `current`.
    const Certificate* issuer_cert = nullptr;
    for (const auto& cand : intermediates) {
      if (cand.subject() == current.issuer() &&
          current.verify_signature(cand.subject_public_key())) {
        issuer_cert = &cand;
        break;
      }
    }
    if (issuer_cert == nullptr) {
      return make_error(ErrorCode::kUntrustedKey,
                        "no trust path for issuer " +
                            current.issuer().to_string());
    }
    // Intermediates must be marked as CAs.
    if (issuer_cert->extension_value(kExtCa).value_or("") != "true") {
      return make_error(ErrorCode::kUntrustedKey,
                        "intermediate " + issuer_cert->subject().to_string() +
                            " lacks CA extension");
    }
    path.push_back(*issuer_cert);
  }
  return make_error(ErrorCode::kUntrustedKey, "chain too deep");
}

}  // namespace e2e::crypto
