#include "crypto/certstore.hpp"

#include "obs/instruments.hpp"

namespace e2e::crypto {

namespace {
/// Cache key: the exact bytes presented. Any mutation of the leaf or the
/// intermediate set (content OR order) produces a different key.
Digest chain_cache_key(const Certificate& leaf,
                       const std::vector<Certificate>& intermediates) {
  Sha256 hasher;
  hasher.update(leaf.encode());
  for (const Certificate& cert : intermediates) hasher.update(cert.encode());
  return hasher.finish();
}
}  // namespace

TrustStore::TrustStore(const TrustStore& o)
    : anchors_(o.anchors_), revocation_(o.revocation_) {
  std::lock_guard lock(o.cache_mu_);
  chain_cache_ = o.chain_cache_;
  cache_tick_ = o.cache_tick_;
}

TrustStore& TrustStore::operator=(const TrustStore& o) {
  if (this == &o) return *this;
  anchors_ = o.anchors_;
  revocation_ = o.revocation_;
  std::scoped_lock lock(cache_mu_, o.cache_mu_);
  chain_cache_ = o.chain_cache_;
  cache_tick_ = o.cache_tick_;
  return *this;
}

bool TrustStore::add_anchor(const Certificate& cert) {
  if (!cert.is_self_signed()) return false;
  if (!cert.verify_signature(cert.subject_public_key())) return false;
  anchors_.insert_or_assign(cert.subject().to_string(), cert);
  // A new or replaced root can change which chains verify, in either
  // direction (a replaced anchor key can invalidate old successes).
  invalidate_chain_cache();
  return true;
}

void TrustStore::set_revocation_check(RevocationCheck check) {
  revocation_ = std::move(check);
  invalidate_chain_cache();
}

void TrustStore::invalidate_chain_cache() {
  std::lock_guard lock(cache_mu_);
  chain_cache_.clear();
}

std::size_t TrustStore::chain_cache_size() const {
  std::lock_guard lock(cache_mu_);
  return chain_cache_.size();
}

const Certificate* TrustStore::find_anchor(const DistinguishedName& dn) const {
  const auto it = anchors_.find(dn.to_string());
  return it == anchors_.end() ? nullptr : &it->second;
}

Result<std::vector<Certificate>> TrustStore::verify_chain(
    const Certificate& leaf, const std::vector<Certificate>& intermediates,
    SimTime at) const {
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& cache_hits = registry.counter(
      obs::kCryptoChainCacheLookupsTotal, {{"result", "hit"}});
  static obs::Counter& cache_misses = registry.counter(
      obs::kCryptoChainCacheLookupsTotal, {{"result", "miss"}});

  const Digest cache_key = chain_cache_key(leaf, intermediates);
  {
    std::lock_guard lock(cache_mu_);
    if (auto it = chain_cache_.find(cache_key); it != chain_cache_.end()) {
      // A hit skips only the signature arithmetic. Time validity and the
      // revocation oracle are re-checked against THIS call's `at`; if any
      // check fails we fall through to the full walk so the caller gets
      // exactly the error the uncached path would have produced.
      bool still_good = true;
      for (const Certificate& cert : it->second.path) {
        if (!cert.valid_at(at) ||
            (revocation_ && revocation_(cert.issuer(), cert.serial()))) {
          still_good = false;
          break;
        }
      }
      if (still_good) {
        it->second.last_used = ++cache_tick_;
        cache_hits.increment();
        return it->second.path;
      }
    }
  }
  cache_misses.increment();

  std::vector<Certificate> path;
  path.push_back(leaf);
  constexpr std::size_t kMaxDepth = 16;

  for (std::size_t depth = 0; depth < kMaxDepth; ++depth) {
    const Certificate& current = path.back();
    if (!current.valid_at(at)) {
      return make_error(ErrorCode::kExpired,
                        "certificate for " + current.subject().to_string() +
                            " not valid at t=" + std::to_string(at));
    }
    if (revocation_ && revocation_(current.issuer(), current.serial())) {
      return make_error(ErrorCode::kUntrustedKey,
                        "certificate serial " +
                            std::to_string(current.serial()) + " revoked");
    }

    // Anchor reached? The issuer must be a known anchor whose key verifies.
    if (const Certificate* anchor = find_anchor(current.issuer())) {
      if (!current.verify_signature(anchor->subject_public_key())) {
        return make_error(ErrorCode::kBadSignature,
                          "signature by anchor " +
                              current.issuer().to_string() + " invalid");
      }
      if (!anchor->valid_at(at)) {
        return make_error(ErrorCode::kExpired,
                          "anchor " + anchor->subject().to_string() +
                              " not valid at t=" + std::to_string(at));
      }
      if (!(current == *anchor)) path.push_back(*anchor);

      // Memoize the success (failures are never cached).
      std::lock_guard lock(cache_mu_);
      if (chain_cache_.size() >= kChainCacheCapacity &&
          !chain_cache_.contains(cache_key)) {
        auto oldest = chain_cache_.begin();
        for (auto it = chain_cache_.begin(); it != chain_cache_.end(); ++it) {
          if (it->second.last_used < oldest->second.last_used) oldest = it;
        }
        chain_cache_.erase(oldest);
      }
      chain_cache_.insert_or_assign(cache_key,
                                    ChainCacheEntry{path, ++cache_tick_});
      return path;
    }

    // Otherwise find an intermediate that issued `current`.
    const Certificate* issuer_cert = nullptr;
    for (const auto& cand : intermediates) {
      if (cand.subject() == current.issuer() &&
          current.verify_signature(cand.subject_public_key())) {
        issuer_cert = &cand;
        break;
      }
    }
    if (issuer_cert == nullptr) {
      return make_error(ErrorCode::kUntrustedKey,
                        "no trust path for issuer " +
                            current.issuer().to_string());
    }
    // Intermediates must be marked as CAs.
    if (issuer_cert->extension_value(kExtCa).value_or("") != "true") {
      return make_error(ErrorCode::kUntrustedKey,
                        "intermediate " + issuer_cert->subject().to_string() +
                            " lacks CA extension");
    }
    path.push_back(*issuer_cert);
  }
  return make_error(ErrorCode::kUntrustedKey, "chain too deep");
}

}  // namespace e2e::crypto
