// DN-indexed certificate repository — the "secure LDAP" alternative for key
// distribution.
//
// Paper §6.4, technique 2: "Maintain a certificate repository accessible
// through secure LDAP. Upon receipt of the reservation specification, C
// would extract the distinguished name (DN) of A from it, and would search
// in the certificate repository for the related public key. It is
// important to note that there has to be a strong trust relationship with
// the repository."
//
// bench/keydist_ablation compares this against the in-band introduction
// scheme the paper prefers.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"
#include "crypto/x509.hpp"

namespace e2e::repo {

class CertificateRepository {
 public:
  /// `lookup_latency` models the directory round trip a remote client pays
  /// per search.
  CertificateRepository(std::string name, SimDuration lookup_latency)
      : name_(std::move(name)), lookup_latency_(lookup_latency) {}

  const std::string& name() const { return name_; }
  SimDuration lookup_latency() const { return lookup_latency_; }

  /// Publish (or refresh) a certificate, indexed by subject DN.
  Status publish(const crypto::Certificate& cert);

  /// Directory access control: only enrolled client DNs may search.
  void authorize_client(const crypto::DistinguishedName& client) {
    allowed_clients_.insert(client.to_string());
  }

  /// Search by subject DN, authenticated as `client`. Expired entries are
  /// purged on access.
  Result<crypto::Certificate> lookup(const crypto::DistinguishedName& subject,
                                     const crypto::DistinguishedName& client,
                                     SimTime at) const;

  std::size_t size() const { return entries_.size(); }
  std::size_t lookups() const { return lookups_; }
  std::size_t denied_lookups() const { return denied_; }

  /// Audit trail: (client, subject) pairs in lookup order.
  const std::vector<std::pair<std::string, std::string>>& audit_log() const {
    return audit_;
  }

 private:
  std::string name_;
  SimDuration lookup_latency_;
  std::map<std::string, crypto::Certificate> entries_;
  std::set<std::string> allowed_clients_;
  mutable std::size_t lookups_ = 0;
  mutable std::size_t denied_ = 0;
  mutable std::vector<std::pair<std::string, std::string>> audit_;
};

}  // namespace e2e::repo
