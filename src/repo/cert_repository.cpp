#include "repo/cert_repository.hpp"

namespace e2e::repo {

Status CertificateRepository::publish(const crypto::Certificate& cert) {
  if (cert.subject().empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "certificate has no subject DN", name_);
  }
  entries_.insert_or_assign(cert.subject().to_string(), cert);
  return Status::ok_status();
}

Result<crypto::Certificate> CertificateRepository::lookup(
    const crypto::DistinguishedName& subject,
    const crypto::DistinguishedName& client, SimTime at) const {
  ++lookups_;
  audit_.emplace_back(client.to_string(), subject.to_string());
  if (!allowed_clients_.contains(client.to_string())) {
    ++denied_;
    return make_error(ErrorCode::kAuthenticationFailed,
                      "client " + client.to_string() +
                          " not authorized for directory " + name_,
                      name_);
  }
  const auto it = entries_.find(subject.to_string());
  if (it == entries_.end()) {
    return make_error(ErrorCode::kNotFound,
                      "no certificate for " + subject.to_string(), name_);
  }
  if (!it->second.valid_at(at)) {
    return make_error(ErrorCode::kExpired,
                      "stored certificate for " + subject.to_string() +
                          " expired",
                      name_);
  }
  return it->second;
}

}  // namespace e2e::repo
