// Cross-domain span collection: the destination side of distributed
// tracing.
//
// Each broker records its hops into a domain-local TraceRecorder; the
// propagated TraceContext makes every local root carry a `remote.parent`
// attribute ("Origin:span_id") naming the span — in the origin domain's
// recorder — it belongs under. A SpanCollector ingests the per-domain
// exports and stitches them back into one end-to-end tree that the
// destination (or a test harness) can flatten, render, and compare
// node-for-node against the source-side reference tree.
//
// Parent resolution is purely structural: (domain, local span id) keys the
// nodes, local parent ids resolve within the same export, and
// `remote.parent` references resolve across exports. Children are ordered
// by virtual start time (ties: ingest order), which matches the reference
// recorder's creation order because the virtual clock advances
// monotonically along the signalling path.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace e2e::obs {

/// One node of a reconstructed end-to-end trace.
struct CollectedSpan {
  std::string domain;  // exporting domain
  Span span;           // as exported by that domain's recorder
  int depth = 0;       // depth in the merged tree (0 = root)
};

class SpanCollector {
 public:
  SpanCollector() = default;
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// Merge one domain's full recorder export. Re-ingesting the same
  /// domain replaces its previous export (recorders only grow, so the
  /// newest export subsumes older ones).
  void ingest(const std::string& domain, const TraceRecorder& recorder);

  std::vector<std::string> trace_ids() const;
  std::size_t span_count() const;
  void clear();

  /// Merged tree of one trace, pre-order (parents before children,
  /// children by ascending start). Spans whose remote parent was never
  /// ingested surface as extra roots rather than disappearing.
  std::vector<CollectedSpan> flatten(const std::string& trace_id) const;

  /// Same pre-order flattening applied to a single recorder (no remote
  /// links) — produces the source-side reference shape collector trees
  /// are compared against in tests.
  static std::vector<CollectedSpan> flatten_recorder(
      const TraceRecorder& recorder, const std::string& trace_id);

  /// Human-readable merged tree, one line per span with the exporting
  /// domain in front:
  ///   [DomainA] reservation  [+0us .. +47000us]  user=Alice
  ///   `- [DomainB] hop  [+1000us .. +2000us]  domain=DomainB
  std::string render_tree(const std::string& trace_id) const;

 private:
  struct Export {
    std::string domain;
    std::vector<Span> spans;
  };

  std::vector<CollectedSpan> flatten_locked(
      const std::string& trace_id) const;

  mutable std::mutex mutex_;
  std::vector<Export> exports_;  // ingest order
};

}  // namespace e2e::obs
