#include "obs/collector.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <sstream>
#include <utility>

namespace e2e::obs {

namespace {

constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

/// Parse a `remote.parent` value ("Origin:span_id"); returns false on
/// malformed input.
bool parse_remote_parent(const std::string& value, std::string& origin,
                         SpanId& id) {
  const auto colon = value.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= value.size()) {
    return false;
  }
  origin = value.substr(0, colon);
  id = 0;
  for (std::size_t i = colon + 1; i < value.size(); ++i) {
    const char c = value[i];
    if (c < '0' || c > '9') return false;
    id = id * 10 + static_cast<SpanId>(c - '0');
  }
  return id != 0;
}

/// Stitch (domain, span) entries into a forest and emit it pre-order.
std::vector<CollectedSpan> stitch(std::vector<CollectedSpan> entries) {
  // (domain, local id) -> entry index.
  std::map<std::pair<std::string, SpanId>, std::size_t> index;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    index.emplace(std::make_pair(entries[i].domain, entries[i].span.id), i);
  }
  std::vector<std::size_t> parent(entries.size(), kNoParent);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const CollectedSpan& entry = entries[i];
    std::pair<std::string, SpanId> key;
    if (entry.span.parent != 0) {
      key = {entry.domain, entry.span.parent};
    } else if (const std::string* ref =
                   entry.span.attribute("remote.parent")) {
      std::string origin;
      SpanId id = 0;
      if (!parse_remote_parent(*ref, origin, id)) continue;
      key = {std::move(origin), id};
    } else {
      continue;  // root
    }
    const auto it = index.find(key);
    if (it != index.end() && it->second != i) parent[i] = it->second;
  }
  std::vector<std::vector<std::size_t>> children(entries.size());
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (parent[i] == kNoParent) {
      roots.push_back(i);
    } else {
      children[parent[i]].push_back(i);
    }
  }
  const auto by_start = [&](std::size_t a, std::size_t b) {
    return entries[a].span.start < entries[b].span.start;
  };
  std::stable_sort(roots.begin(), roots.end(), by_start);
  for (auto& list : children) {
    std::stable_sort(list.begin(), list.end(), by_start);
  }
  std::vector<CollectedSpan> out;
  out.reserve(entries.size());
  auto emit = [&](auto&& self, std::size_t i, int depth) -> void {
    entries[i].depth = depth;
    out.push_back(entries[i]);
    for (const std::size_t child : children[i]) {
      self(self, child, depth + 1);
    }
  };
  for (const std::size_t root : roots) emit(emit, root, 0);
  return out;
}

}  // namespace

void SpanCollector::ingest(const std::string& domain,
                           const TraceRecorder& recorder) {
  std::vector<Span> spans;
  for (const std::string& trace_id : recorder.trace_ids()) {
    for (Span& span : recorder.trace(trace_id)) {
      spans.push_back(std::move(span));
    }
  }
  std::lock_guard lock(mutex_);
  for (Export& exp : exports_) {
    if (exp.domain == domain) {
      exp.spans = std::move(spans);
      return;
    }
  }
  exports_.push_back(Export{domain, std::move(spans)});
}

std::vector<std::string> SpanCollector::trace_ids() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> ids;
  for (const Export& exp : exports_) {
    for (const Span& span : exp.spans) {
      if (std::find(ids.begin(), ids.end(), span.trace_id) == ids.end()) {
        ids.push_back(span.trace_id);
      }
    }
  }
  return ids;
}

std::size_t SpanCollector::span_count() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const Export& exp : exports_) n += exp.spans.size();
  return n;
}

void SpanCollector::clear() {
  std::lock_guard lock(mutex_);
  exports_.clear();
}

std::vector<CollectedSpan> SpanCollector::flatten_locked(
    const std::string& trace_id) const {
  std::vector<CollectedSpan> entries;
  for (const Export& exp : exports_) {
    for (const Span& span : exp.spans) {
      if (span.trace_id != trace_id) continue;
      entries.push_back(CollectedSpan{exp.domain, span, 0});
    }
  }
  return stitch(std::move(entries));
}

std::vector<CollectedSpan> SpanCollector::flatten(
    const std::string& trace_id) const {
  std::lock_guard lock(mutex_);
  return flatten_locked(trace_id);
}

std::vector<CollectedSpan> SpanCollector::flatten_recorder(
    const TraceRecorder& recorder, const std::string& trace_id) {
  // A single recorder needs no remote links; ids are already unique.
  std::vector<CollectedSpan> entries;
  for (Span& span : recorder.trace(trace_id)) {
    entries.push_back(CollectedSpan{"", std::move(span), 0});
  }
  return stitch(std::move(entries));
}

std::string SpanCollector::render_tree(const std::string& trace_id) const {
  std::lock_guard lock(mutex_);
  const std::vector<CollectedSpan> tree = flatten_locked(trace_id);
  if (tree.empty()) return "(no spans for trace " + trace_id + ")\n";
  SimTime origin = tree.front().span.start;
  for (const CollectedSpan& node : tree) {
    origin = std::min(origin, node.span.start);
  }
  std::ostringstream out;
  out << "trace " << trace_id << " (collected from "
      << exports_.size() << " domains)\n";
  for (const CollectedSpan& node : tree) {
    for (int i = 0; i < node.depth; ++i) out << "   ";
    if (node.depth > 0) out << "`- ";
    out << "[" << (node.domain.empty() ? "?" : node.domain) << "] "
        << node.span.name << "  [+" << (node.span.start - origin)
        << "us .. +" << (node.span.end - origin) << "us]  ("
        << node.span.duration() << " us)";
    for (const auto& [key, value] : node.span.attributes) {
      out << "  " << key << "=" << value;
    }
    if (node.span.failed) out << "  [FAILED]";
    out << "\n";
  }
  return out.str();
}

}  // namespace e2e::obs
