#include "obs/audit.hpp"

#include <sstream>
#include <utility>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"
#include "obs/instruments.hpp"
#include "obs/trace.hpp"

namespace e2e::obs {

std::string chain_json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string chain_sha256_hex(const std::string& s) {
  const crypto::Digest digest = crypto::sha256(to_bytes(s));
  return hex_encode(BytesView(digest.data(), digest.size()));
}

namespace {

const auto& json_escape = chain_json_escape;
const auto& sha256_hex = chain_sha256_hex;

/// The record as JSON *without* the trailing hash field — the exact bytes
/// the chain hash covers.
std::string canonical_body(const AuditRecord& record) {
  std::ostringstream out;
  out << "{\"index\":" << record.index << ",\"at\":" << record.at
      << ",\"domain\":\"" << json_escape(record.domain) << "\",\"kind\":\""
      << json_escape(record.kind) << "\",\"trace_id\":\""
      << json_escape(record.trace_id) << "\",\"span_id\":" << record.span_id
      << ",\"fields\":{";
  for (std::size_t i = 0; i < record.fields.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << json_escape(record.fields[i].first) << "\":\""
        << json_escape(record.fields[i].second) << "\"";
  }
  out << "},\"prev\":\"" << record.prev_hash << "\"}";
  return out.str();
}

constexpr auto& kHashMarker = kChainHashMarker;
constexpr std::size_t kHashMarkerLen = sizeof(kChainHashMarker) - 1;
constexpr std::size_t kHexDigestLen = kChainHexDigestLen;

}  // namespace

std::string AuditRecord::to_jsonl() const {
  std::string body = canonical_body(*this);
  body.pop_back();  // drop the closing '}' to splice the hash in
  return body + kHashMarker + hash + "\"}";
}

std::string AuditLog::append(
    const std::string& domain, const std::string& kind,
    std::vector<std::pair<std::string, std::string>> fields) {
  const SpanRef& ref = current_span_ref();
  AuditRecord record;
  record.at = ref.at;
  record.domain = domain;
  record.kind = kind;
  record.trace_id = ref.trace_id;
  record.span_id = ref.span_id;
  record.fields = std::move(fields);
  std::string hash;
  {
    std::lock_guard lock(mutex_);
    record.index = next_index_++;
    record.prev_hash = head_hash_.empty() ? genesis_hash() : head_hash_;
    record.hash = sha256_hex(record.prev_hash + canonical_body(record));
    head_hash_ = hash = record.hash;
    records_.push_back(std::move(record));
    while (records_.size() > capacity_) records_.pop_front();
  }
  MetricsRegistry::global()
      .counter(kObsAuditRecordsTotal, {{"kind", kind}})
      .increment();
  return hash;
}

std::vector<AuditRecord> AuditLog::records() const {
  std::lock_guard lock(mutex_);
  return {records_.begin(), records_.end()};
}

std::vector<AuditRecord> AuditLog::records_for(
    const std::string& trace_id) const {
  std::lock_guard lock(mutex_);
  std::vector<AuditRecord> out;
  for (const AuditRecord& record : records_) {
    if (record.trace_id == trace_id) out.push_back(record);
  }
  return out;
}

std::size_t AuditLog::size() const {
  std::lock_guard lock(mutex_);
  return records_.size();
}

std::string AuditLog::head_hash() const {
  std::lock_guard lock(mutex_);
  return head_hash_.empty() ? genesis_hash() : head_hash_;
}

std::string AuditLog::export_jsonl() const {
  std::lock_guard lock(mutex_);
  std::string out;
  for (const AuditRecord& record : records_) {
    out += record.to_jsonl();
    out += '\n';
  }
  return out;
}

void AuditLog::clear() {
  std::lock_guard lock(mutex_);
  records_.clear();
  next_index_ = 0;
  head_hash_.clear();
}

void AuditLog::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (records_.size() > capacity_) records_.pop_front();
}

Result<std::size_t> AuditLog::verify_chain(const std::string& jsonl) {
  std::size_t verified = 0;
  std::string expected_prev;  // empty = accept any (mid-stream export)
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < jsonl.size()) {
    std::size_t eol = jsonl.find('\n', pos);
    if (eol == std::string::npos) eol = jsonl.size();
    const std::string line = jsonl.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    ++line_no;
    const auto where = [&] {
      return "audit line " + std::to_string(line_no);
    };
    const std::size_t marker = line.rfind(kHashMarker);
    if (marker == std::string::npos ||
        marker + kHashMarkerLen + kHexDigestLen + 2 != line.size() ||
        line.compare(line.size() - 2, 2, "\"}") != 0) {
      return make_error(ErrorCode::kBadMessage,
                        where() + ": no well-formed hash field", "audit");
    }
    const std::string claimed =
        line.substr(marker + kHashMarkerLen, kHexDigestLen);
    const std::string body = line.substr(0, marker) + "}";
    static constexpr char kPrevMarker[] = "\"prev\":\"";
    const std::size_t prev_at = body.rfind(kPrevMarker);
    if (prev_at == std::string::npos) {
      return make_error(ErrorCode::kBadMessage,
                        where() + ": no prev field", "audit");
    }
    const std::string prev =
        body.substr(prev_at + sizeof(kPrevMarker) - 1, kHexDigestLen);
    if (!expected_prev.empty() && prev != expected_prev) {
      return make_error(ErrorCode::kBadMessage,
                        where() + ": chain link broken (prev mismatch)",
                        "audit");
    }
    if (sha256_hex(prev + body) != claimed) {
      return make_error(ErrorCode::kBadMessage,
                        where() + ": record hash mismatch (tampered)",
                        "audit");
    }
    expected_prev = claimed;
    ++verified;
  }
  return verified;
}

const std::string& AuditLog::genesis_hash() {
  static const std::string kGenesis(kHexDigestLen, '0');
  return kGenesis;
}

AuditLog& AuditLog::global() {
  static AuditLog* log = new AuditLog();
  return *log;
}

}  // namespace e2e::obs
