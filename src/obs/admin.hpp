// The daemon admin telemetry plane, transport-agnostic half.
//
// bbd's --admin listener (docs/DAEMON.md "Live operations") serves a
// deliberately minimal HTTP/1.0 surface: every exchange is one GET, one
// response, connection closed. This module owns everything about that
// surface except the sockets — request parsing, routing, the scrape-safe
// registry snapshot cache, and the /tracez serialization — so the whole
// plane is unit-testable without an event loop
// (tests/obs_admin_test.cpp) and the net layer only shuttles bytes.
//
// Routes (the wire format is contract-documented in OBSERVABILITY.md):
//   GET /metrics       Prometheus text exposition (registry.to_text())
//   GET /metrics.json  the registry's JSON snapshot (registry.to_json())
//   GET /healthz       liveness: 200 "ok" while the loop serves
//   GET /readyz        readiness: world built, WALs open, shards alive
//   GET /statz         per-connection / per-shard introspection JSON
//   GET /tracez        recent reservation trace trees, collector-
//                      compatible JSON (tools/tracedump --from-json)
//
// Scrape safety: /metrics and /metrics.json render through a cached
// snapshot with a short TTL, so a scraper herd costs one registry walk
// per TTL — hot-path increments never contend with more than that one
// walk. Cache behavior is observable via
// e2e_obs_snapshot_cache_total{result=hit|refresh}.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "obs/collector.hpp"
#include "obs/metrics.hpp"
#include "obs/window.hpp"

namespace e2e::obs {

/// One parsed admin request (only the head matters; bodies are ignored).
struct AdminRequest {
  std::string method;
  std::string path;  // query string stripped
};

struct AdminResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// True once `buffer` holds a complete request head (blank line seen).
bool http_head_complete(const std::string& buffer);

/// Parse the request line out of a complete head. Malformed heads yield
/// method/path empty (the router answers 400).
AdminRequest parse_http_request(const std::string& head);

/// Render a full HTTP/1.0 response (status line, minimal headers,
/// Connection: close, body).
std::string render_http_response(const AdminResponse& response);

/// Serialize collected traces for /tracez: the TraceRecorder::to_json
/// span shape, extended with each span's exporting "domain" and merged-
/// tree "depth", wrapped as {"traces":[{"trace_id":...,"spans":[...]}]}.
/// At most the `max_traces` most recent trace ids are included.
std::string tracez_json(const SpanCollector& collector,
                        std::size_t max_traces);

class AdminPlane {
 public:
  struct Health {
    bool live = false;    // the serving loop is running
    bool ready = false;   // world built; durability + shards healthy
    std::string detail;   // short human-readable reason when not ready
  };

  /// Data the hosting daemon plugs in. Every callback is invoked on the
  /// admin transport's thread and must be internally synchronized against
  /// the daemon's own threads.
  struct Providers {
    std::function<Health()> health;
    std::function<std::string()> statz_json;
    std::function<std::string()> tracez_json;
    /// Invoked before a fresh registry snapshot is rendered (cache
    /// refresh only, never on a cache hit) — the daemon publishes its
    /// window/burn-rate gauges here so scrapes see current values.
    std::function<void(std::uint64_t now_ms)> refresh;
  };

  AdminPlane(MetricsRegistry& registry, Providers providers,
             std::chrono::milliseconds snapshot_ttl =
                 std::chrono::milliseconds(250),
             WallClockFn clock = steady_wall_clock());

  /// Route one request. Thread-safe.
  AdminResponse handle(const AdminRequest& request);

 private:
  std::string cached_snapshot(bool json);

  MetricsRegistry& registry_;
  Providers providers_;
  std::chrono::milliseconds snapshot_ttl_;
  WallClockFn clock_;

  std::mutex cache_mutex_;
  std::uint64_t cached_at_ms_ = 0;
  bool cache_valid_ = false;
  std::string cached_text_;
  std::string cached_json_;
};

}  // namespace e2e::obs
