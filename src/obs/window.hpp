// Wall-clock sliding-window instruments for live daemons.
//
// Everything else in src/obs measures virtual time (common/clock.hpp), so
// exports are deterministic. A running bbd daemon (docs/DAEMON.md) needs
// the opposite: rates and latency distributions over *real* time windows,
// so an operator scraping the admin plane sees "what happened in the last
// minute", not "what happened since process start". These instruments are
// that wall-clock layer:
//
//  - WindowRate:        a sliding-window sum/rate (requests per second);
//  - WindowedHistogram: a latency histogram whose contents decay as the
//                       window slides (slot-granular decay: observations
//                       leave in sub-window batches, not one by one);
//  - BurnRateTracker:   SLO error-budget burn rate over a real-time
//                       window, with edge-triggered alert accounting.
//
// Time is injected as plain milliseconds (WallClockFn) rather than read
// from std::chrono internally, so tests drive rollover and decay
// deterministically (tests/obs_window_test.cpp) and the daemon passes one
// shared steady-clock source. All three classes are internally
// synchronized: the daemon's loop thread records while the admin plane's
// scrape thread reads.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace e2e::obs {

/// Milliseconds on some monotonic wall clock. The epoch is arbitrary;
/// only differences matter.
using WallClockFn = std::function<std::uint64_t()>;

/// The production time source: std::chrono::steady_clock, in ms.
WallClockFn steady_wall_clock();

/// Sliding-window sum. The window is divided into `slots` sub-windows;
/// record() adds into the current slot and expired slots are dropped
/// lazily, so the reported total covers at most `window` of history with
/// one-slot granularity at the trailing edge.
class WindowRate {
 public:
  explicit WindowRate(std::chrono::milliseconds window,
                      std::size_t slots = 12);

  void record(std::uint64_t now_ms, double amount = 1.0);

  /// Sum of everything recorded within the window ending at `now_ms`.
  double total(std::uint64_t now_ms) const;
  /// total() scaled to events per second of window span.
  double per_second(std::uint64_t now_ms) const;

  std::chrono::milliseconds window() const { return window_; }

 private:
  std::chrono::milliseconds window_;
  std::uint64_t slot_ms_;
  mutable std::mutex mutex_;
  // Ring keyed by absolute slot index (now_ms / slot_ms_); a ring entry is
  // live only while its absolute index is within the window.
  std::vector<std::uint64_t> slot_index_;
  std::vector<double> slot_sum_;
};

/// Sliding-window histogram: same bucket semantics as obs::Histogram
/// (cumulative upper bounds + one overflow bucket), but observations only
/// count toward snapshots for `window` of wall time. Decay is per slot:
/// when the window slides past a sub-window, that whole sub-window's
/// observations vanish together.
class WindowedHistogram {
 public:
  WindowedHistogram(std::chrono::milliseconds window, std::size_t slots,
                    std::vector<double> upper_bounds);
  explicit WindowedHistogram(std::chrono::milliseconds window,
                             std::size_t slots = 6);

  void observe(std::uint64_t now_ms, double value);

  /// Merged snapshot over the slots still inside the window at `now_ms`.
  Histogram::Snapshot snapshot(std::uint64_t now_ms) const;

  std::chrono::milliseconds window() const { return window_; }

 private:
  struct Slot {
    std::uint64_t index = 0;
    bool live = false;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1, overflow last
    std::uint64_t count = 0;
    double sum = 0;
  };

  std::chrono::milliseconds window_;
  std::uint64_t slot_ms_;
  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<Slot> slots_;
};

/// One burn-rate objective: how fast a live error budget is being spent.
struct BurnRateSpec {
  std::string objective;
  /// The SLO's error budget as a rate (e.g. 0.01 = 99% of requests good).
  double budget_error_rate = 0.01;
  /// Real-time evaluation window.
  std::chrono::milliseconds window{60000};
  /// Burn multiples at or above this value are alerting (e.g. 10 = the
  /// budget would be exhausted 10x faster than allowed).
  double alert_threshold = 10.0;

  /// Label value for the window dimension ("60s", "1500ms", ...).
  std::string window_label() const;
};

/// Tracks good/bad outcomes over the spec's window and evaluates the
/// burn rate: error_rate / budget_error_rate. An empty window is reported
/// as has_data == false and never alerts (no traffic is not an outage).
class BurnRateTracker {
 public:
  explicit BurnRateTracker(BurnRateSpec spec, std::size_t slots = 12);

  void record(std::uint64_t now_ms, bool bad);

  struct Evaluation {
    bool has_data = false;
    double total = 0;
    double bad = 0;
    double error_rate = 0;
    double burn_rate = 0;
    bool alerting = false;
  };
  Evaluation evaluate(std::uint64_t now_ms) const;

  /// evaluate() and publish the result into `registry`:
  /// e2e_slo_burn_rate{objective,window} is set to the burn multiple and
  /// e2e_slo_burn_alerts_total{objective} counts not-alerting -> alerting
  /// edges (a sustained breach is one alert, not one per scrape).
  Evaluation publish(MetricsRegistry& registry, std::uint64_t now_ms);

  const BurnRateSpec& spec() const { return spec_; }

 private:
  BurnRateSpec spec_;
  WindowRate total_;
  WindowRate bad_;
  std::mutex edge_mutex_;
  bool was_alerting_ = false;
};

}  // namespace e2e::obs
