// Service-level objectives over the virtual clock.
//
// An SloSpec names an objective and binds it to registry series: latency
// quantile budgets (p50/p95/p99, estimated from a histogram series by
// linear interpolation inside the bucket), an error-rate window (bad
// counter / total counter), and a per-RAR setup-time budget checked
// against a trace's root span. SloTracker::evaluate() reads the registry,
// surfaces verdicts back into it (e2e_slo_* gauges and counters) and
// returns structured reports; tools/tracedump renders them next to the
// collected trace tree.
//
// All quantities are microseconds of virtual time (common/clock.hpp), so
// verdicts are deterministic and assertable in tests.
#pragma once

#include <string>
#include <vector>

#include "common/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace e2e::obs {

struct SloSpec {
  std::string objective;  // e.g. "e2e.hopbyhop", "hop.DomainB"

  // Latency budgets (0 = not checked) read from one histogram series.
  std::string latency_metric;
  Labels latency_labels;
  double p50_budget_us = 0;
  double p95_budget_us = 0;
  double p99_budget_us = 0;

  // Error-rate window (max_error_rate < 0 = not checked): bad / total.
  std::string bad_metric;
  Labels bad_labels;
  std::string total_metric;
  Labels total_labels;
  double max_error_rate = -1;

  // Per-RAR setup budget (0 = not checked), applied to a trace root span.
  double setup_budget_us = 0;
};

struct SloReport {
  std::string objective;
  bool has_data = false;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double error_rate = 0;
  std::vector<std::string> breaches;  // human-readable budget violations

  bool ok() const { return breaches.empty(); }
};

/// Estimate the q-quantile (0 < q < 1) of a histogram snapshot by linear
/// interpolation within the containing bucket; observations above the last
/// bound clamp to it. Returns 0 for an empty histogram.
double estimate_quantile(const Histogram::Snapshot& snapshot, double q);

class SloTracker {
 public:
  void add(SloSpec spec);
  const std::vector<SloSpec>& specs() const { return specs_; }

  /// Default objectives for the signalling plane: one end-to-end latency +
  /// error-rate objective per engine (hopbyhop, source, tunnel) plus a
  /// per-domain hop-processing objective for each domain given.
  static SloTracker with_default_objectives(
      const std::vector<std::string>& domains);

  /// Evaluate every spec against `registry`, publish the verdicts
  /// (e2e_slo_latency_quantile_us, e2e_slo_breaches_total,
  /// e2e_slo_evaluations_total) and return the reports in spec order.
  std::vector<SloReport> evaluate(MetricsRegistry& registry) const;

  /// Check one reservation's wall time (root span of a collected trace)
  /// against the matching objective's setup budget. Returns a one-line
  /// verdict, or "" when no objective with a setup budget matches.
  std::string setup_verdict(const std::string& objective,
                            const Span& root) const;

  /// Render reports as an aligned text table (one line per objective).
  static std::string render(const std::vector<SloReport>& reports);

 private:
  std::vector<SloSpec> specs_;
};

}  // namespace e2e::obs
