#include "obs/slo.hpp"

#include <cstdio>
#include <sstream>
#include <utility>

#include "obs/instruments.hpp"

namespace e2e::obs {

namespace {

std::string format_us(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

std::string format_rate(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

double estimate_quantile(const Histogram::Snapshot& snapshot, double q) {
  // Edge cases first (bbstat renders these live; they must never be NaN
  // or sentinel garbage):
  //  - no observations -> 0 (there is no distribution to estimate);
  //  - out-of-range q  -> clamped into [0, 1];
  //  - no finite buckets (bounds empty, everything in the one overflow
  //    bucket) -> the mean, the only location information we have.
  if (snapshot.count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  if (snapshot.bounds.empty()) {
    return snapshot.sum / static_cast<double>(snapshot.count);
  }
  const double target = q * static_cast<double>(snapshot.count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < snapshot.bounds.size(); ++i) {
    const std::uint64_t before = cumulative;
    cumulative += snapshot.counts[i];
    if (static_cast<double>(cumulative) >= target) {
      const double lower = i == 0 ? 0 : snapshot.bounds[i - 1];
      const double upper = snapshot.bounds[i];
      const double in_bucket = static_cast<double>(snapshot.counts[i]);
      if (in_bucket <= 0) return upper;
      const double fraction = (target - static_cast<double>(before)) /
                              in_bucket;
      return lower + fraction * (upper - lower);
    }
  }
  // The target falls in the overflow bucket: all we know is "above the
  // last bound". Clamp to it — unless EVERY observation overflowed, in
  // which case the mean is a strictly better (and still finite) estimate.
  const bool all_overflowed = snapshot.counts.size() > snapshot.bounds.size()
                                  ? snapshot.counts.back() == snapshot.count
                                  : false;
  if (all_overflowed) {
    const double mean = snapshot.sum / static_cast<double>(snapshot.count);
    return mean > snapshot.bounds.back() ? mean : snapshot.bounds.back();
  }
  return snapshot.bounds.back();
}

void SloTracker::add(SloSpec spec) { specs_.push_back(std::move(spec)); }

SloTracker SloTracker::with_default_objectives(
    const std::vector<std::string>& domains) {
  SloTracker tracker;
  for (const char* engine : {"hopbyhop", "source", "tunnel"}) {
    SloSpec spec;
    spec.objective = std::string("e2e.") + engine;
    spec.latency_metric = kSigE2eLatencyUs;
    spec.latency_labels = {{"engine", engine}};
    spec.p50_budget_us = 200000;
    spec.p95_budget_us = 500000;
    spec.p99_budget_us = 1000000;
    spec.bad_metric = kSigRarOutcomesTotal;
    spec.bad_labels = {{"engine", engine}, {"outcome", "denied"}};
    spec.total_metric = kSigRarRequestsTotal;
    spec.total_labels = {{"engine", engine}};
    spec.max_error_rate = 0.5;
    spec.setup_budget_us = 1000000;
    tracker.add(std::move(spec));
  }
  for (const std::string& domain : domains) {
    SloSpec spec;
    spec.objective = "hop." + domain;
    spec.latency_metric = kSigHopProcessingUs;
    spec.latency_labels = {{"domain", domain}};
    spec.p50_budget_us = 100000;
    spec.p95_budget_us = 200000;
    spec.p99_budget_us = 500000;
    tracker.add(std::move(spec));
  }
  return tracker;
}

std::vector<SloReport> SloTracker::evaluate(MetricsRegistry& registry) const {
  std::vector<SloReport> reports;
  reports.reserve(specs_.size());
  for (const SloSpec& spec : specs_) {
    SloReport report;
    report.objective = spec.objective;
    if (!spec.latency_metric.empty()) {
      const Histogram::Snapshot snapshot =
          registry.histogram(spec.latency_metric, spec.latency_labels)
              .snapshot();
      if (snapshot.count > 0) {
        report.has_data = true;
        report.p50_us = estimate_quantile(snapshot, 0.50);
        report.p95_us = estimate_quantile(snapshot, 0.95);
        report.p99_us = estimate_quantile(snapshot, 0.99);
        const auto check = [&](const char* q, double value, double budget) {
          if (budget > 0 && value > budget) {
            report.breaches.push_back(std::string(q) + " " +
                                      format_us(value) + "us > budget " +
                                      format_us(budget) + "us");
          }
          registry
              .gauge(kSloLatencyQuantileUs,
                     {{"objective", spec.objective}, {"quantile", q}})
              .set(value);
        };
        check("p50", report.p50_us, spec.p50_budget_us);
        check("p95", report.p95_us, spec.p95_budget_us);
        check("p99", report.p99_us, spec.p99_budget_us);
      }
    }
    if (spec.max_error_rate >= 0 && !spec.total_metric.empty()) {
      const double total = static_cast<double>(
          registry.counter(spec.total_metric, spec.total_labels).value());
      if (total > 0) {
        report.has_data = true;
        const double bad = static_cast<double>(
            registry.counter(spec.bad_metric, spec.bad_labels).value());
        report.error_rate = bad / total;
        if (report.error_rate > spec.max_error_rate) {
          report.breaches.push_back(
              "error rate " + format_rate(report.error_rate) + " > budget " +
              format_rate(spec.max_error_rate));
        }
      }
    }
    const char* result = !report.has_data ? "no_data"
                         : report.ok()    ? "ok"
                                          : "breach";
    registry.counter(kSloEvaluationsTotal, {{"result", result}}).increment();
    if (report.has_data && !report.ok()) {
      registry
          .counter(kSloBreachesTotal, {{"objective", spec.objective}})
          .increment();
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

std::string SloTracker::setup_verdict(const std::string& objective,
                                      const Span& root) const {
  for (const SloSpec& spec : specs_) {
    if (spec.objective != objective || spec.setup_budget_us <= 0) continue;
    const double duration = static_cast<double>(root.duration());
    const bool ok = duration <= spec.setup_budget_us;
    return "setup " + objective + ": " + format_us(duration) +
           "us <= budget " + format_us(spec.setup_budget_us) + "us [" +
           (ok ? "OK" : "BREACH") + "]";
  }
  return "";
}

std::string SloTracker::render(const std::vector<SloReport>& reports) {
  std::ostringstream out;
  for (const SloReport& report : reports) {
    out << report.objective << "  ";
    if (!report.has_data) {
      out << "no data\n";
      continue;
    }
    out << "p50=" << format_us(report.p50_us)
        << "us p95=" << format_us(report.p95_us)
        << "us p99=" << format_us(report.p99_us)
        << "us err=" << format_rate(report.error_rate) << "  ";
    if (report.ok()) {
      out << "[OK]";
    } else {
      out << "[BREACH:";
      for (const std::string& breach : report.breaches) {
        out << " " << breach << ";";
      }
      out << "]";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace e2e::obs
