// Per-request trace trees for the signalling plane.
//
// A TraceRecorder collects spans keyed by a request id (the trace id): one
// root "reservation" span per end-to-end RAR, one "hop" child per broker
// that processed it, and step children under each hop for the §6.1/§6.2
// pipeline stages (verify, policy, admission, sign_and_forward,
// channel_handshake). Timestamps are virtual-clock microseconds
// (common/clock.hpp), so traces are deterministic and assertable in tests.
//
// The span schema — names, attribute keys, failure tagging — is the
// contract documented in docs/OBSERVABILITY.md; obs_contract_test diffs
// emitted attribute keys against that document.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.hpp"

namespace e2e::obs {

/// Recorder-local span handle; 0 is "no span" (safe to pass as a parent).
using SpanId = std::uint64_t;

/// Wire trace context, W3C-traceparent style, carried hop to hop in the
/// *unsigned* transport envelope (sig/transport.hpp) so the signed RAR
/// bytes — and therefore signatures, digests and grants — are untouched.
/// Each receiving broker parents its local hop span under
/// `origin`:`span_id` via the `remote.parent` span attribute, and
/// obs/collector.hpp stitches the per-domain exports back into one tree.
struct TraceContext {
  std::string trace_id;       // end-to-end request id, e.g. "rar-7"
  std::string origin;         // domain whose recorder owns `span_id`
  std::uint64_t span_id = 0;  // remote parent span (root of the trace)
  std::uint32_t hop_count = 0;  // hops traversed before this transmission
  bool sampled = true;        // false = downstream hops skip recording

  bool valid() const { return !trace_id.empty() && span_id != 0; }
  /// "Origin:span_id" — the value local spans store under `remote.parent`.
  std::string remote_parent_ref() const;
};

struct Span {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = root of its trace
  std::string trace_id;
  std::string name;
  SimTime start = 0;
  SimTime end = 0;
  /// Attribute key/value pairs, in insertion order.
  std::vector<std::pair<std::string, std::string>> attributes;
  bool failed = false;

  SimDuration duration() const { return end - start; }
  /// First value recorded under `key`, or nullptr.
  const std::string* attribute(std::string_view key) const;
};

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Open a span at virtual time `start`. `parent` = 0 starts a new root.
  SpanId begin_span(const std::string& trace_id, const std::string& name,
                    SpanId parent, SimTime start);
  /// Close a span. A span never closed keeps end == start.
  void end_span(SpanId id, SimTime end);
  void annotate(SpanId id, const std::string& key, const std::string& value);
  /// Mark a span failed and record the reason under the "error" attribute.
  void fail_span(SpanId id, const std::string& reason);

  /// All spans of one trace, in creation order (parents before children).
  std::vector<Span> trace(const std::string& trace_id) const;
  /// Distinct trace ids, in first-seen order.
  std::vector<std::string> trace_ids() const;
  std::size_t span_count() const;
  void clear();

  /// Human-readable tree of one trace, children indented under parents,
  /// with virtual-time offsets and durations:
  ///   reservation  [+0us .. +47000us]  (47000 us)  user=Alice
  ///   `- hop  [+1000us .. +2000us]  (1000 us)  domain=DomainA
  ///      `- verify  [+1000us .. +1400us]  (400 us)
  std::string render_tree(const std::string& trace_id) const;

  /// JSON export: {"trace_id":...,"spans":[{...}]}.
  std::string to_json(const std::string& trace_id) const;

 private:
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
  SpanId next_id_ = 1;

  Span* find_locked(SpanId id);
};

/// RAII span guard that mirrors one logical span into up to two recorders:
/// the engine-wide "reference" recorder (primary) and the processing
/// domain's local recorder (secondary) whose export the collector merges.
/// The constructor opens the span(s) at `*cursor`; the destructor closes
/// them at the *current* `*cursor` value, so early returns no longer leak
/// spans with end == start. Either recorder may be null.
class SpanScope {
 public:
  SpanScope() = default;  // inactive
  SpanScope(TraceRecorder* primary, TraceRecorder* secondary,
            const std::string& trace_id, const std::string& name,
            SpanId primary_parent, SpanId secondary_parent,
            const SimTime* cursor);
  ~SpanScope();
  SpanScope(SpanScope&& other) noexcept;
  SpanScope& operator=(SpanScope&& other) noexcept;
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Record the attribute on both mirrors.
  void annotate(const std::string& key, const std::string& value);
  /// Record the attribute on the local (secondary) mirror only — used for
  /// collector-linking attributes (`remote.parent`, `hop.index`) that must
  /// not perturb the reference recorder's export.
  void annotate_secondary(const std::string& key, const std::string& value);
  /// Mark both mirrors failed with `reason`.
  void fail(const std::string& reason);
  /// Close now, at `*cursor`. Idempotent; the destructor then does nothing.
  void finish();
  /// Close at an explicit virtual time (e.g. a reply arrival).
  void finish_at(SimTime end);

  SpanId id() const { return primary_id_; }
  SpanId secondary_id() const { return secondary_id_; }
  bool active() const { return !finished_ && (primary_ || secondary_); }

 private:
  TraceRecorder* primary_ = nullptr;
  TraceRecorder* secondary_ = nullptr;
  SpanId primary_id_ = 0;
  SpanId secondary_id_ = 0;
  const SimTime* cursor_ = nullptr;
  bool finished_ = true;
};

/// The trace/span the current thread is processing, so deep call sites
/// (policy server, bandwidth broker) can join their audit records to the
/// active span without threading ids through every signature.
struct SpanRef {
  std::string trace_id;
  std::uint64_t span_id = 0;
  SimTime at = 0;  // virtual time of the enclosing processing step

  bool valid() const { return !trace_id.empty() && span_id != 0; }
};

/// Thread-local active span; a default-constructed (invalid) ref when no
/// CurrentSpan scope is open on this thread.
const SpanRef& current_span_ref();

/// RAII push/pop of the thread-local SpanRef (nests; restores the previous
/// ref on destruction).
class CurrentSpan {
 public:
  explicit CurrentSpan(SpanRef ref);
  ~CurrentSpan();
  CurrentSpan(const CurrentSpan&) = delete;
  CurrentSpan& operator=(const CurrentSpan&) = delete;

 private:
  SpanRef saved_;
};

}  // namespace e2e::obs
