// Per-request trace trees for the signalling plane.
//
// A TraceRecorder collects spans keyed by a request id (the trace id): one
// root "reservation" span per end-to-end RAR, one "hop" child per broker
// that processed it, and step children under each hop for the §6.1/§6.2
// pipeline stages (verify, policy, admission, sign_and_forward,
// channel_handshake). Timestamps are virtual-clock microseconds
// (common/clock.hpp), so traces are deterministic and assertable in tests.
//
// The span schema — names, attribute keys, failure tagging — is the
// contract documented in docs/OBSERVABILITY.md; obs_contract_test diffs
// emitted attribute keys against that document.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.hpp"

namespace e2e::obs {

/// Recorder-local span handle; 0 is "no span" (safe to pass as a parent).
using SpanId = std::uint64_t;

struct Span {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = root of its trace
  std::string trace_id;
  std::string name;
  SimTime start = 0;
  SimTime end = 0;
  /// Attribute key/value pairs, in insertion order.
  std::vector<std::pair<std::string, std::string>> attributes;
  bool failed = false;

  SimDuration duration() const { return end - start; }
  /// First value recorded under `key`, or nullptr.
  const std::string* attribute(std::string_view key) const;
};

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Open a span at virtual time `start`. `parent` = 0 starts a new root.
  SpanId begin_span(const std::string& trace_id, const std::string& name,
                    SpanId parent, SimTime start);
  /// Close a span. A span never closed keeps end == start.
  void end_span(SpanId id, SimTime end);
  void annotate(SpanId id, const std::string& key, const std::string& value);
  /// Mark a span failed and record the reason under the "error" attribute.
  void fail_span(SpanId id, const std::string& reason);

  /// All spans of one trace, in creation order (parents before children).
  std::vector<Span> trace(const std::string& trace_id) const;
  /// Distinct trace ids, in first-seen order.
  std::vector<std::string> trace_ids() const;
  std::size_t span_count() const;
  void clear();

  /// Human-readable tree of one trace, children indented under parents,
  /// with virtual-time offsets and durations:
  ///   reservation  [+0us .. +47000us]  (47000 us)  user=Alice
  ///   `- hop  [+1000us .. +2000us]  (1000 us)  domain=DomainA
  ///      `- verify  [+1000us .. +1400us]  (400 us)
  std::string render_tree(const std::string& trace_id) const;

  /// JSON export: {"trace_id":...,"spans":[{...}]}.
  std::string to_json(const std::string& trace_id) const;

 private:
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
  SpanId next_id_ = 1;

  Span* find_locked(SpanId id);
};

}  // namespace e2e::obs
