#include "obs/window.hpp"

#include <algorithm>
#include <utility>

#include "obs/instruments.hpp"

namespace e2e::obs {

WallClockFn steady_wall_clock() {
  return [] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  };
}

namespace {

std::uint64_t slot_width_ms(std::chrono::milliseconds window,
                            std::size_t slots) {
  const std::uint64_t w =
      window.count() > 0 ? static_cast<std::uint64_t>(window.count()) : 1;
  const std::uint64_t n = slots == 0 ? 1 : static_cast<std::uint64_t>(slots);
  return std::max<std::uint64_t>(1, w / n);
}

}  // namespace

WindowRate::WindowRate(std::chrono::milliseconds window, std::size_t slots)
    : window_(window),
      slot_ms_(slot_width_ms(window, slots)),
      slot_index_(std::max<std::size_t>(1, slots), 0),
      slot_sum_(std::max<std::size_t>(1, slots), 0) {}

void WindowRate::record(std::uint64_t now_ms, double amount) {
  const std::uint64_t current = now_ms / slot_ms_;
  std::lock_guard lock(mutex_);
  const std::size_t pos = current % slot_index_.size();
  if (slot_index_[pos] != current) {
    slot_index_[pos] = current;
    slot_sum_[pos] = 0;
  }
  slot_sum_[pos] += amount;
}

double WindowRate::total(std::uint64_t now_ms) const {
  const std::uint64_t current = now_ms / slot_ms_;
  const std::uint64_t span = static_cast<std::uint64_t>(slot_index_.size());
  // Live absolute indices: (current - span, current]. Index 0 is also the
  // ring's initial fill, so a slot claiming index 0 only counts while slot
  // 0 itself is within the window.
  const std::uint64_t oldest = current >= span ? current - span + 1 : 0;
  std::lock_guard lock(mutex_);
  double sum = 0;
  for (std::size_t i = 0; i < slot_index_.size(); ++i) {
    if (slot_index_[i] >= oldest && slot_index_[i] <= current) {
      sum += slot_sum_[i];
    }
  }
  return sum;
}

double WindowRate::per_second(std::uint64_t now_ms) const {
  const double seconds =
      static_cast<double>(slot_ms_ * slot_index_.size()) / 1000.0;
  return seconds > 0 ? total(now_ms) / seconds : 0;
}

WindowedHistogram::WindowedHistogram(std::chrono::milliseconds window,
                                     std::size_t slots,
                                     std::vector<double> upper_bounds)
    : window_(window),
      slot_ms_(slot_width_ms(window, slots)),
      bounds_(std::move(upper_bounds)),
      slots_(std::max<std::size_t>(1, slots)) {
  for (Slot& slot : slots_) {
    slot.counts.assign(bounds_.size() + 1, 0);
  }
}

WindowedHistogram::WindowedHistogram(std::chrono::milliseconds window,
                                     std::size_t slots)
    : WindowedHistogram(window, slots,
                        Histogram::default_latency_buckets_us()) {}

void WindowedHistogram::observe(std::uint64_t now_ms, double value) {
  const std::uint64_t current = now_ms / slot_ms_;
  const auto bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  std::lock_guard lock(mutex_);
  Slot& slot = slots_[current % slots_.size()];
  if (!slot.live || slot.index != current) {
    slot.index = current;
    slot.live = true;
    std::fill(slot.counts.begin(), slot.counts.end(), 0);
    slot.count = 0;
    slot.sum = 0;
  }
  slot.counts[bucket] += 1;
  slot.count += 1;
  slot.sum += value;
}

Histogram::Snapshot WindowedHistogram::snapshot(std::uint64_t now_ms) const {
  const std::uint64_t current = now_ms / slot_ms_;
  const std::uint64_t span = static_cast<std::uint64_t>(slots_.size());
  const std::uint64_t oldest = current >= span ? current - span + 1 : 0;
  Histogram::Snapshot merged;
  merged.bounds = bounds_;
  merged.counts.assign(bounds_.size() + 1, 0);
  std::lock_guard lock(mutex_);
  for (const Slot& slot : slots_) {
    if (!slot.live || slot.index < oldest || slot.index > current) continue;
    for (std::size_t i = 0; i < slot.counts.size(); ++i) {
      merged.counts[i] += slot.counts[i];
    }
    merged.count += slot.count;
    merged.sum += slot.sum;
  }
  return merged;
}

std::string BurnRateSpec::window_label() const {
  const auto ms = window.count();
  if (ms > 0 && ms % 1000 == 0) return std::to_string(ms / 1000) + "s";
  return std::to_string(ms) + "ms";
}

BurnRateTracker::BurnRateTracker(BurnRateSpec spec, std::size_t slots)
    : spec_(std::move(spec)),
      total_(spec_.window, slots),
      bad_(spec_.window, slots) {}

void BurnRateTracker::record(std::uint64_t now_ms, bool bad) {
  total_.record(now_ms, 1.0);
  if (bad) bad_.record(now_ms, 1.0);
}

BurnRateTracker::Evaluation BurnRateTracker::evaluate(
    std::uint64_t now_ms) const {
  Evaluation eval;
  eval.total = total_.total(now_ms);
  eval.bad = bad_.total(now_ms);
  if (eval.total <= 0) return eval;  // empty window: no data, no alert
  eval.has_data = true;
  eval.error_rate = eval.bad / eval.total;
  eval.burn_rate = spec_.budget_error_rate > 0
                       ? eval.error_rate / spec_.budget_error_rate
                       : (eval.bad > 0 ? spec_.alert_threshold : 0);
  eval.alerting = eval.burn_rate >= spec_.alert_threshold;
  return eval;
}

BurnRateTracker::Evaluation BurnRateTracker::publish(
    MetricsRegistry& registry, std::uint64_t now_ms) {
  const Evaluation eval = evaluate(now_ms);
  registry
      .gauge(kSloBurnRate, {{"objective", spec_.objective},
                            {"window", spec_.window_label()}})
      .set(eval.burn_rate);
  {
    std::lock_guard lock(edge_mutex_);
    if (eval.alerting && !was_alerting_) {
      registry
          .counter(kSloBurnAlertsTotal, {{"objective", spec_.objective}})
          .increment();
    }
    was_alerting_ = eval.alerting;
  }
  return eval;
}

}  // namespace e2e::obs
