// Zero-dependency metrics registry.
//
// The observability substrate every layer reports into: named counters,
// gauges and fixed-bucket latency histograms, grouped into families by
// metric name with an optional label set per series (Prometheus-style
// dimensionality, e.g. e2e_sig_hops_processed_total{domain="DomainB"}).
//
// Design constraints, in order:
//  - thread-safe: the parallel source-based engine and the bench thread
//    pools increment from worker threads;
//  - stable instrument references: counter()/gauge()/histogram() return a
//    reference that stays valid for the registry's lifetime, so hot paths
//    resolve an instrument once and increment a cached pointer afterwards.
//    reset_values() consequently zeroes instruments in place instead of
//    destroying them;
//  - deterministic export: text and JSON exports are sorted by family name
//    and label set, so snapshots diff cleanly across runs.
//
// The canonical list of every metric the library emits lives in
// obs/instruments.hpp and is documented in docs/OBSERVABILITY.md (the
// telemetry contract); tests/obs_contract_test.cpp diffs the two.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace e2e::obs {

/// A series' label set: sorted key=value pairs. Keep small — one or two
/// labels per metric; cardinality is domains × small enums.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

constexpr const char* to_string(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

/// Monotonic event count.
class Counter {
 public:
  void increment(std::uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time measurement (active reservations, committed rate, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram. Buckets are cumulative-style upper bounds
/// (value <= bound falls in that bucket); one implicit overflow bucket
/// catches everything above the last bound. Latency observations are in
/// microseconds of virtual time (SimDuration), so distributions are
/// deterministic across runs.
class Histogram {
 public:
  Histogram() : Histogram(default_latency_buckets_us()) {}
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  struct Snapshot {
    std::vector<double> bounds;          // upper bounds, ascending
    std::vector<std::uint64_t> counts;   // bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;             // total observations
    double sum = 0;                      // sum of observed values
  };
  Snapshot snapshot() const;

  std::uint64_t count() const;
  double sum() const;
  void reset();

  /// Default bounds for virtual-time latency in microseconds: 100 us up to
  /// 10 s in a 1-2-5 ladder.
  static const std::vector<double>& default_latency_buckets_us();

 private:
  mutable std::mutex mutex_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

/// Declared shape of one metric family (from the instrument catalog).
struct MetricMetadata {
  std::string name;
  MetricType type = MetricType::kCounter;
  std::string unit;                     // "1", "us", "bytes", "bits/s"
  std::vector<std::string> label_keys;  // allowed label keys, sorted
  std::string help;
  std::vector<double> buckets;          // histograms only; empty = default
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Declare a family's metadata (idempotent). Families may also spring
  /// into existence undeclared on first use; declaring attaches unit/help
  /// and, for histograms, the bucket layout.
  void declare(MetricMetadata metadata);

  /// Find-or-create the series `name`+`labels`. The returned reference is
  /// valid for the registry's lifetime (instruments are never destroyed,
  /// only zeroed by reset_values()).
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {});

  /// Names of every family with at least one live series, sorted.
  std::vector<std::string> exported_names() const;
  /// Number of live series across all families.
  std::size_t series_count() const;

  /// Cardinality cap: at most `limit` series per family and instrument
  /// kind. Once a family is full, lookups for *new* label sets are routed
  /// to a single overflow series labelled {overflow="other"} and counted
  /// in e2e_obs_dropped_labels_total{metric=<family>}; existing series are
  /// unaffected. Guards against unbounded label growth (e.g. a per-user
  /// label leaking into a hot path).
  void set_series_limit(std::size_t limit);
  std::size_t series_limit() const;

  /// Zero every instrument in place. References handed out earlier stay
  /// valid; declared metadata is kept.
  void reset_values();

  /// Prometheus-style text exposition (sorted, deterministic).
  std::string to_text() const;
  /// JSON snapshot: {"metrics":[{name,type,unit,series:[{labels,...}]}]}.
  std::string to_json() const;

  /// The process-wide registry all library instrumentation reports into.
  /// Pre-declared with the full instrument catalog (obs/instruments.hpp).
  static MetricsRegistry& global();

 private:
  struct Family {
    MetricMetadata metadata;
    bool declared = false;
    // Keyed by label set; unique_ptr keeps references stable.
    std::map<Labels, std::unique_ptr<Counter>> counters;
    std::map<Labels, std::unique_ptr<Gauge>> gauges;
    std::map<Labels, std::unique_ptr<Histogram>> histograms;
  };

  Family& family_locked(const std::string& name, MetricType type);
  /// Apply the cardinality cap: returns `labels` (sorted) when the series
  /// exists or the family has room, else the overflow label set (and
  /// accounts the drop).
  template <typename Map>
  Labels capped_labels_locked(const std::string& name, const Map& series,
                              Labels labels);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
  std::size_t series_limit_ = 256;
};

}  // namespace e2e::obs
