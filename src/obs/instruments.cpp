#include "obs/instruments.hpp"

namespace e2e::obs {

namespace {

std::vector<MetricInfo> build_catalog() {
  // Introduction-depth buckets: one per step, far below the latency ladder.
  // (TrustPolicy::max_introduction_depth defaults to 8.)
  const char* kUs = "us";
  const char* kOne = "1";
  return {
      {kBbAdmissionChecksTotal, MetricType::kCounter, kOne,
       {"domain", "result"},
       "Admission decisions at reservation commit time"},
      {kBbAdmissionUs, MetricType::kHistogram, kUs, {"domain"},
       "Wall-clock time a broker spent deciding one admission (or one "
       "batch)"},
      {kBbPoolBoundaries, MetricType::kGauge, kOne, {"domain"},
       "Live boundary points across a domain's timeline-indexed capacity "
       "pools"},
      {kBbPoolCommitsTotal, MetricType::kCounter, kOne, {},
       "CapacityPool commitments (domain, peer-SLA and tunnel pools)"},
      {kBbPoolRejectionsTotal, MetricType::kCounter, kOne, {"domain"},
       "CapacityPool commits refused (rate does not fit the interval)"},
      {kBbPoolReleasesTotal, MetricType::kCounter, kOne, {},
       "CapacityPool releases"},
      {kBbRecoveryReplayedTotal, MetricType::kCounter, kOne, {"source"},
       "State elements restored into a fresh broker (snapshot or wal)"},
      {kBbRecoveryRunsTotal, MetricType::kCounter, kOne, {"result"},
       "Recovery passes over a snapshot+WAL pair"},
      {kBbRecoverySkippedTotal, MetricType::kCounter, kOne, {"reason"},
       "WAL records skipped during replay (snapshot-covered or idempotent "
       "re-apply)"},
      {kBbReservationsActive, MetricType::kGauge, kOne, {"domain"},
       "Reservations currently held by a broker"},
      {kBbReservationsCommittedTotal, MetricType::kCounter, kOne, {"domain"},
       "Reservations committed by a broker"},
      {kBbReservationsReleasedTotal, MetricType::kCounter, kOne, {"domain"},
       "Reservations released or purged by a broker"},
      {kBbShardBusyUsTotal, MetricType::kCounter, kUs, {"worker"},
       "Wall-clock microseconds shard workers spent running drained tasks"},
      {kBbShardDrainBatch, MetricType::kHistogram, kOne, {},
       "Tasks drained per shard-worker wakeup (batch coalescing factor)"},
      {kBbShardQueueDepth, MetricType::kGauge, kOne, {},
       "Requests queued across shard-engine workers (published per drain)"},
      {kBbShardQueueDepthHighwater, MetricType::kGauge, kOne, {},
       "High-water mark of the total shard queue depth since engine start"},
      {kBbShardRequestsTotal, MetricType::kCounter, kOne, {"worker"},
       "Requests executed by shard-engine workers"},
      {kBbTunnelsRegisteredTotal, MetricType::kCounter, kOne, {"domain"},
       "Aggregate tunnels registered at an end domain"},
      {kBbWalBytesTotal, MetricType::kCounter, "bytes", {},
       "Bytes written to broker write-ahead-log files"},
      {kBbWalFsyncsTotal, MetricType::kCounter, kOne, {},
       "fsync calls issued by the WAL group-commit leader"},
      {kBbWalGroupCommitRecords, MetricType::kHistogram, kOne, {},
       "Records made durable per fsync (group-commit coalescing factor)"},
      {kBbWalRecordsTotal, MetricType::kCounter, kOne, {"kind"},
       "WAL records appended (one per batch on batch paths)"},
      {kBbWalSnapshotsTotal, MetricType::kCounter, kOne, {},
       "Broker state snapshots written"},
      {kBbWalTruncatedRecordsTotal, MetricType::kCounter, kOne, {},
       "WAL records dropped at snapshot truncation"},
      {kCryptoBadKeyRejectsTotal, MetricType::kCounter, kOne, {},
       "Verifications rejected before any arithmetic (malformed key or "
       "oversized signature)"},
      {kCryptoChainCacheLookupsTotal, MetricType::kCounter, kOne, {"result"},
       "Verified-certificate-chain cache lookups (TrustStore)"},
      {kCryptoModexpTotal, MetricType::kCounter, kOne, {"kernel"},
       "Modular exponentiations, by kernel (montgomery or reference)"},
      {kCryptoMontCtxLookupsTotal, MetricType::kCounter, kOne, {"result"},
       "Montgomery-context cache lookups, by modulus value"},
      {kCryptoSignsTotal, MetricType::kCounter, kOne, {"path"},
       "RSA signatures produced (crt or plain path)"},
      {kCryptoTbsCacheLookupsTotal, MetricType::kCounter, kOne, {"result"},
       "Certificate TBS-encoding cache lookups"},
      {kCryptoVerifyCacheLookupsTotal, MetricType::kCounter, kOne, {"result"},
       "Signature-verification cache lookups"},
      {kNetBackpressureStallsTotal, MetricType::kCounter, kOne, {},
       "Times a bounded connection write queue filled and waited for "
       "EPOLLOUT drainage"},
      {kNetConnsAcceptedTotal, MetricType::kCounter, kOne, {"transport"},
       "Connections accepted by a stream server"},
      {kNetConnsActive, MetricType::kGauge, kOne, {},
       "Connections currently open on a stream server"},
      {kNetFramesTotal, MetricType::kCounter, kOne, {"dir"},
       "Complete length-prefixed frames moved over stream transports"},
      {kNetFramingErrorsTotal, MetricType::kCounter, kOne, {},
       "Frames rejected by the stream decoder (oversized header, torn "
       "stream)"},
      {kNetIdleClosesTotal, MetricType::kCounter, kOne, {},
       "Connections closed by the stream server's idle-timeout sweep"},
      {kNetPacketDelayUs, MetricType::kHistogram, kUs, {},
       "End-to-end packet delay in the DiffServ simulator"},
      {kNetPacketsDeliveredTotal, MetricType::kCounter, kOne, {},
       "Packets delivered end to end"},
      {kNetPacketsDowngradedTotal, MetricType::kCounter, kOne, {},
       "EF packets demoted to best-effort by a policer"},
      {kNetPacketsDroppedTotal, MetricType::kCounter, kOne, {"reason"},
       "Packets dropped by a policer or a full queue"},
      {kNetPacketsEmittedTotal, MetricType::kCounter, kOne, {},
       "Packets emitted by traffic sources"},
      {kNetStreamBytesTotal, MetricType::kCounter, "bytes", {"dir"},
       "Raw stream bytes moved over socket transports (frame headers "
       "included)"},
      {kNetWriteQueueBytes, MetricType::kGauge, "bytes", {},
       "Bytes queued and not yet written across a stream server's "
       "per-connection write queues"},
      {kObsAdminRequestsTotal, MetricType::kCounter, kOne, {"path"},
       "Admin-plane HTTP requests served, by route"},
      {kObsAuditRecordsTotal, MetricType::kCounter, kOne, {"kind"},
       "Audit records appended to the hash-chained audit log"},
      {kObsDroppedLabelsTotal, MetricType::kCounter, kOne, {"metric"},
       "Series lookups routed to the overflow series by the cardinality "
       "cap"},
      {kObsSnapshotCacheTotal, MetricType::kCounter, kOne, {"result"},
       "Scrape-safe registry snapshot cache hits and refreshes"},
      {kObsTraceCtxBytesTotal, MetricType::kCounter, "bytes", {},
       "Unsigned-envelope bytes spent carrying trace context"},
      {kObsTraceCtxPropagatedTotal, MetricType::kCounter, kOne, {},
       "Trace contexts propagated across the fabric on the unsigned "
       "envelope"},
      {kPolicyDecisionsTotal, MetricType::kCounter, kOne,
       {"decision", "domain"},
       "Policy-server decisions"},
      {kPolicyEvalFailuresTotal, MetricType::kCounter, kOne, {"domain"},
       "Policy evaluations that failed outright (conservative denials)"},
      {kSigChannelAuthFailuresTotal, MetricType::kCounter, kOne, {},
       "Record-layer authentication failures (bad MAC or replay)"},
      {kSigChannelHandshakesTotal, MetricType::kCounter, kOne, {"result"},
       "Mutual-authentication channel handshakes"},
      {kSigChannelRecordsTotal, MetricType::kCounter, kOne, {"op"},
       "Record-layer seal/open operations"},
      {kSigDuplicatesSuppressedTotal, MetricType::kCounter, kOne, {"via"},
       "Redelivered requests suppressed instead of reprocessed"},
      {kSigE2eLatencyUs, MetricType::kHistogram, kUs, {"engine"},
       "Modeled end-to-end signalling latency per request"},
      {kSigFabricBytesTotal, MetricType::kCounter, "bytes", {},
       "Control-plane bytes crossing the signalling fabric"},
      {kSigFabricMessagesTotal, MetricType::kCounter, kOne, {},
       "Control-plane messages crossing the signalling fabric"},
      {kSigFaultsInjectedTotal, MetricType::kCounter, kOne, {"kind"},
       "Faults the fabric injected into transmissions"},
      {kSigHopDenialsTotal, MetricType::kCounter, kOne, {"domain", "stage"},
       "Hops that denied or failed a RAR, by pipeline stage"},
      {kSigHopProcessingUs, MetricType::kHistogram, kUs, {"domain"},
       "Per-hop RAR processing time (verify+policy+admission+forward)"},
      {kSigHopsProcessedTotal, MetricType::kCounter, kOne, {"domain"},
       "Broker hops that processed a RAR"},
      {kSigRarOutcomesTotal, MetricType::kCounter, kOne,
       {"engine", "outcome"},
       "Final answers returned to the requesting user"},
      {kSigRarRequestsTotal, MetricType::kCounter, kOne, {"engine"},
       "End-to-end RARs entering a signalling engine"},
      {kSigReleasedOnFailureTotal, MetricType::kCounter, kOne, {"domain"},
       "Commitments released because a downstream domain stayed dark"},
      {kSigRetransmitsTotal, MetricType::kCounter, kOne, {"engine"},
       "Retransmissions after a timed-out exchange"},
      {kSigRetryAttempts, MetricType::kHistogram, kOne, {"engine"},
       "Attempts needed by exchanges that required a retransmission"},
      {kSigTimeoutsTotal, MetricType::kCounter, kOne, {"engine"},
       "Exchanges that timed out waiting for the peer's answer"},
      {kSigTrustIntroductionDepth, MetricType::kHistogram, kOne, {},
       "Deepest introduction step accepted per verified inter-BB RAR",
       },
      {kSigTrustVerificationsTotal, MetricType::kCounter, kOne, {"result"},
       "RAR trust verifications (transitive trust or direct user auth)"},
      {kSloBreachesTotal, MetricType::kCounter, kOne, {"objective"},
       "Objective evaluations that found at least one budget exceeded"},
      {kSloBurnAlertsTotal, MetricType::kCounter, kOne, {"objective"},
       "Burn-rate alert edges (not-alerting to alerting transitions)"},
      {kSloBurnRate, MetricType::kGauge, kOne, {"objective", "window"},
       "Latest error-budget burn multiple over a real-time window"},
      {kSloEvaluationsTotal, MetricType::kCounter, kOne, {"result"},
       "SLO objective evaluations performed"},
      {kSloLatencyQuantileUs, MetricType::kGauge, kUs,
       {"objective", "quantile"},
       "Latest estimated latency quantile per objective"},
  };
}

}  // namespace

const std::vector<MetricInfo>& catalog() {
  static const std::vector<MetricInfo> kCatalog = build_catalog();
  return kCatalog;
}

void register_all(MetricsRegistry& registry) {
  for (const MetricInfo& info : catalog()) {
    MetricMetadata metadata;
    metadata.name = info.name;
    metadata.type = info.type;
    metadata.unit = info.unit;
    metadata.label_keys.assign(info.label_keys.begin(),
                               info.label_keys.end());
    metadata.help = info.help;
    if (info.type == MetricType::kHistogram &&
        std::string(info.name) == kSigTrustIntroductionDepth) {
      metadata.buckets = {0, 1, 2, 3, 4, 5, 6, 7, 8};
    }
    // Retry attempts are small integers too (RetryPolicy::max_attempts).
    if (info.type == MetricType::kHistogram &&
        std::string(info.name) == kSigRetryAttempts) {
      metadata.buckets = {1, 2, 3, 4, 5, 6, 7, 8};
    }
    // Admission decisions are wall-clock and fast (sub-us to low ms), far
    // below the default virtual-time latency ladder.
    if (info.type == MetricType::kHistogram &&
        std::string(info.name) == kBbAdmissionUs) {
      metadata.buckets = {0.5, 1,   2,   5,    10,   20,  50,
                          100, 200, 500, 1000, 2000, 5000};
    }
    // Group-commit coalescing: record counts per fsync, powers of two up
    // to the largest plausible burst.
    if (info.type == MetricType::kHistogram &&
        std::string(info.name) == kBbWalGroupCommitRecords) {
      metadata.buckets = {1, 2, 4, 8, 16, 32, 64, 128, 256};
    }
    // Shard drain batches coalesce the same way group commits do.
    if (info.type == MetricType::kHistogram &&
        std::string(info.name) == kBbShardDrainBatch) {
      metadata.buckets = {1, 2, 4, 8, 16, 32, 64, 128, 256};
    }
    registry.declare(std::move(metadata));
  }
}

}  // namespace e2e::obs
