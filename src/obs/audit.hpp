// Append-only, hash-chained audit log for the signalling plane.
//
// Every security-relevant decision — peer authentication, signature
// verification verdicts, policy evaluations, delegation re-issues,
// admission accept/reject — is appended as one structured record. Records
// carry the active trace/span id (from obs::current_span_ref()), so audit
// lines join to the trace tree, and each record's SHA-256 hash covers the
// previous record's hash: tampering with any exported line (or reordering
// lines) breaks the chain and is detected by verify_chain().
//
// Records are kept in a bounded deque; eviction drops the oldest records
// but the chain stays verifiable because hashes only ever link forward.
// The export format is JSON lines, one record per line, documented in
// docs/OBSERVABILITY.md (audit event schema) and enforced both ways by
// tests/obs_contract_test.cpp.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"

namespace e2e::obs {

/// The closed set of audit event kinds (contract-checked against the doc).
namespace audit_kind {
inline constexpr char kPeerAuth[] = "peer_auth";
inline constexpr char kVerify[] = "verify";
inline constexpr char kPolicy[] = "policy";
inline constexpr char kDelegation[] = "delegation";
inline constexpr char kAdmission[] = "admission";
inline constexpr char kRecovery[] = "recovery";
inline constexpr char kShutdown[] = "shutdown";
}  // namespace audit_kind

/// Hash-chain primitives shared with the broker write-ahead log (bb/wal.*):
/// both logs use the same tamper-evident discipline — each line's SHA-256
/// covers the previous line's hash plus the line's canonical body.
std::string chain_json_escape(const std::string& s);
std::string chain_sha256_hex(const std::string& s);
inline constexpr char kChainHashMarker[] = ",\"hash\":\"";
inline constexpr std::size_t kChainHexDigestLen = 64;

struct AuditRecord {
  std::uint64_t index = 0;  // position in the full (pre-eviction) stream
  SimTime at = 0;           // virtual time of the decision
  std::string domain;       // domain that made the decision
  std::string kind;         // audit_kind::*
  std::string trace_id;     // joining trace ("" only outside any span)
  std::uint64_t span_id = 0;
  /// Kind-specific key/value details, in insertion order.
  std::vector<std::pair<std::string, std::string>> fields;
  std::string prev_hash;  // hex SHA-256 of the previous record
  std::string hash;       // hex SHA-256 over prev_hash + this record

  /// One JSON line, `hash` last (the chain hashes everything before it).
  std::string to_jsonl() const;
};

class AuditLog {
 public:
  AuditLog() = default;
  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  /// Append one decision. Trace/span join and virtual timestamp come from
  /// the calling thread's obs::current_span_ref(). Returns the record's
  /// chain hash.
  std::string append(
      const std::string& domain, const std::string& kind,
      std::vector<std::pair<std::string, std::string>> fields);

  std::vector<AuditRecord> records() const;
  /// Records joined to one trace id, in append order.
  std::vector<AuditRecord> records_for(const std::string& trace_id) const;
  std::size_t size() const;
  /// Hash of the newest record (the chain head); genesis hash when empty.
  std::string head_hash() const;

  /// JSON-lines export of every retained record, oldest first.
  std::string export_jsonl() const;

  /// Forget all records and restart the chain from genesis.
  void clear();
  /// Retention bound; eviction keeps the chain verifiable mid-stream.
  void set_capacity(std::size_t capacity);

  /// Verify a JSON-lines export: every line's hash must cover its content
  /// (including its embedded prev hash) and consecutive lines must link.
  /// Returns the number of verified records, or the first inconsistency.
  static Result<std::size_t> verify_chain(const std::string& jsonl);

  /// All-zero hex digest that seeds a fresh chain.
  static const std::string& genesis_hash();

  /// The process-wide audit log all library emission points append to.
  static AuditLog& global();

 private:
  mutable std::mutex mutex_;
  std::deque<AuditRecord> records_;
  std::uint64_t next_index_ = 0;
  std::string head_hash_;  // empty = genesis
  std::size_t capacity_ = 65536;
};

}  // namespace e2e::obs
