#include "obs/admin.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "obs/instruments.hpp"

namespace e2e::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

/// Route label for e2e_obs_admin_requests_total: the closed route set or
/// "other", so an adversarial scraper cannot mint series.
std::string path_label(const std::string& path) {
  static const char* kKnown[] = {"/metrics", "/metrics.json", "/healthz",
                                 "/readyz",  "/statz",        "/tracez"};
  for (const char* known : kKnown) {
    if (path == known) return known;
  }
  return "other";
}

}  // namespace

bool http_head_complete(const std::string& buffer) {
  return buffer.find("\r\n\r\n") != std::string::npos ||
         buffer.find("\n\n") != std::string::npos;
}

AdminRequest parse_http_request(const std::string& head) {
  AdminRequest request;
  const std::size_t eol = head.find_first_of("\r\n");
  const std::string line =
      eol == std::string::npos ? head : head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) return request;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  std::string target =
      sp2 == std::string::npos ? line.substr(sp1 + 1)
                               : line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return request;
  const std::size_t query = target.find('?');
  if (query != std::string::npos) target.resize(query);
  request.method = line.substr(0, sp1);
  request.path = std::move(target);
  return request;
}

std::string render_http_response(const AdminResponse& response) {
  std::string out = "HTTP/1.0 " + std::to_string(response.status) + " " +
                    status_reason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

std::string tracez_json(const SpanCollector& collector,
                        std::size_t max_traces) {
  std::vector<std::string> ids = collector.trace_ids();
  if (ids.size() > max_traces) {
    ids.erase(ids.begin(),
              ids.begin() + static_cast<std::ptrdiff_t>(ids.size() -
                                                        max_traces));
  }
  std::string out = "{\"traces\":[";
  bool first_trace = true;
  for (const std::string& id : ids) {
    const std::vector<CollectedSpan> spans = collector.flatten(id);
    if (spans.empty()) continue;
    if (!first_trace) out += ",";
    first_trace = false;
    out += "{\"trace_id\":\"" + json_escape(id) + "\",\"spans\":[";
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const CollectedSpan& node = spans[i];
      if (i > 0) out += ",";
      out += "{\"domain\":\"" + json_escape(node.domain) + "\"";
      out += ",\"depth\":" + std::to_string(node.depth);
      out += ",\"id\":" + std::to_string(node.span.id);
      out += ",\"parent\":" + std::to_string(node.span.parent);
      out += ",\"name\":\"" + json_escape(node.span.name) + "\"";
      out += ",\"start_us\":" + std::to_string(node.span.start);
      out += ",\"end_us\":" + std::to_string(node.span.end);
      out += node.span.failed ? ",\"failed\":true" : ",\"failed\":false";
      out += ",\"attributes\":{";
      for (std::size_t a = 0; a < node.span.attributes.size(); ++a) {
        if (a > 0) out += ",";
        out += "\"" + json_escape(node.span.attributes[a].first) +
               "\":\"" + json_escape(node.span.attributes[a].second) + "\"";
      }
      out += "}}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

AdminPlane::AdminPlane(MetricsRegistry& registry, Providers providers,
                       std::chrono::milliseconds snapshot_ttl,
                       WallClockFn clock)
    : registry_(registry),
      providers_(std::move(providers)),
      snapshot_ttl_(snapshot_ttl),
      clock_(std::move(clock)) {}

std::string AdminPlane::cached_snapshot(bool json) {
  std::lock_guard lock(cache_mutex_);
  const std::uint64_t now = clock_();
  const bool fresh =
      cache_valid_ &&
      now - cached_at_ms_ <
          static_cast<std::uint64_t>(std::max<std::int64_t>(
              snapshot_ttl_.count(), 0));
  if (!fresh) {
    if (providers_.refresh) providers_.refresh(now);
    // Render both formats per refresh so alternating text/json scrapers
    // still cost one registry walk each per TTL, not per request.
    cached_text_ = registry_.to_text();
    cached_json_ = registry_.to_json();
    cached_at_ms_ = now;
    cache_valid_ = true;
    registry_.counter(kObsSnapshotCacheTotal, {{"result", "refresh"}})
        .increment();
  } else {
    registry_.counter(kObsSnapshotCacheTotal, {{"result", "hit"}})
        .increment();
  }
  return json ? cached_json_ : cached_text_;
}

AdminResponse AdminPlane::handle(const AdminRequest& request) {
  registry_.counter(kObsAdminRequestsTotal,
                    {{"path", path_label(request.path)}})
      .increment();
  AdminResponse response;
  if (request.method.empty() || request.path.empty()) {
    response.status = 400;
    response.body = "malformed request\n";
    return response;
  }
  if (request.method != "GET") {
    response.status = 405;
    response.body = "only GET is served\n";
    return response;
  }
  if (request.path == "/metrics") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = cached_snapshot(/*json=*/false);
    return response;
  }
  if (request.path == "/metrics.json") {
    response.content_type = "application/json";
    response.body = cached_snapshot(/*json=*/true);
    return response;
  }
  if (request.path == "/healthz" || request.path == "/readyz") {
    Health health;
    health.live = true;
    health.ready = true;
    if (providers_.health) health = providers_.health();
    const bool ok =
        request.path == "/healthz" ? health.live : health.ready;
    response.status = ok ? 200 : 503;
    response.body = ok ? (request.path == "/healthz" ? "ok\n" : "ready\n")
                       : (health.detail.empty() ? "unavailable\n"
                                                : health.detail + "\n");
    return response;
  }
  if (request.path == "/statz") {
    response.content_type = "application/json";
    response.body =
        providers_.statz_json ? providers_.statz_json() : "{}";
    return response;
  }
  if (request.path == "/tracez") {
    response.content_type = "application/json";
    response.body =
        providers_.tracez_json ? providers_.tracez_json() : "{\"traces\":[]}";
    return response;
  }
  response.status = 404;
  response.body = "unknown path " + request.path + "\n";
  return response;
}

}  // namespace e2e::obs
