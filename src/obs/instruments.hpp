// The instrument catalog: every metric name the library emits, in one
// place. Instrumented code refers to these constants (never string
// literals), register_all() declares the metadata on the global registry,
// and tests/obs_contract_test.cpp diffs this catalog against the telemetry
// contract in docs/OBSERVABILITY.md — an undocumented metric is a test
// failure, in both directions.
#pragma once

#include <vector>

#include "obs/metrics.hpp"

namespace e2e::obs {

// --- sig: signalling engines ------------------------------------------------
/// End-to-end RARs entering an engine. Labels:
/// engine=hopbyhop|source|tunnel.
inline constexpr char kSigRarRequestsTotal[] = "e2e_sig_rar_requests_total";
/// Final answers returned to the user. Labels: engine, outcome=granted|denied.
inline constexpr char kSigRarOutcomesTotal[] = "e2e_sig_rar_outcomes_total";
/// Modeled end-to-end signalling latency per request (us). Labels: engine.
inline constexpr char kSigE2eLatencyUs[] = "e2e_sig_e2e_latency_us";
/// Broker hops that processed a RAR. Labels: domain.
inline constexpr char kSigHopsProcessedTotal[] = "e2e_sig_hops_processed_total";
/// Per-hop processing time (verify+policy+admission+forward, us).
/// Labels: domain.
inline constexpr char kSigHopProcessingUs[] = "e2e_sig_hop_processing_us";
/// Hops that denied or failed a RAR. Labels: domain,
/// stage=verify|policy|cost|admission|forward.
inline constexpr char kSigHopDenialsTotal[] = "e2e_sig_hop_denials_total";

// --- sig: trust --------------------------------------------------------------
/// verify_rar / verify_user_request outcomes. Labels: result=ok|fail.
inline constexpr char kSigTrustVerificationsTotal[] =
    "e2e_sig_trust_verifications_total";
/// Deepest introduction step accepted per verified inter-BB RAR.
inline constexpr char kSigTrustIntroductionDepth[] =
    "e2e_sig_trust_introduction_depth";

// --- sig: channel ------------------------------------------------------------
/// Mutual-authentication handshakes. Labels: result=ok|fail.
inline constexpr char kSigChannelHandshakesTotal[] =
    "e2e_sig_channel_handshakes_total";
/// Record-layer operations. Labels: op=seal|open.
inline constexpr char kSigChannelRecordsTotal[] =
    "e2e_sig_channel_records_total";
/// Record-layer authentication failures (bad MAC, replay).
inline constexpr char kSigChannelAuthFailuresTotal[] =
    "e2e_sig_channel_auth_failures_total";

// --- sig: fabric ---------------------------------------------------------------
/// Control-plane messages crossing the fabric.
inline constexpr char kSigFabricMessagesTotal[] =
    "e2e_sig_fabric_messages_total";
/// Control-plane bytes crossing the fabric.
inline constexpr char kSigFabricBytesTotal[] = "e2e_sig_fabric_bytes_total";
/// Faults the fabric injected into transmissions. Labels:
/// kind=drop|duplicate|corrupt|delay|partition|down.
inline constexpr char kSigFaultsInjectedTotal[] =
    "e2e_sig_faults_injected_total";

// --- sig: retry/failure handling ---------------------------------------------
/// Retransmissions after a timed-out exchange. Labels:
/// engine=hopbyhop|source|tunnel.
inline constexpr char kSigRetransmitsTotal[] = "e2e_sig_retransmits_total";
/// Exchanges that timed out waiting for the peer's answer. Labels: engine.
inline constexpr char kSigTimeoutsTotal[] = "e2e_sig_timeouts_total";
/// Redelivered requests suppressed instead of reprocessed. Labels:
/// via=cache (request-id cache) | channel (record-layer replay protection).
inline constexpr char kSigDuplicatesSuppressedTotal[] =
    "e2e_sig_duplicates_suppressed_total";
/// Commitments released because a downstream domain stayed dark past the
/// retry budget. Labels: domain.
inline constexpr char kSigReleasedOnFailureTotal[] =
    "e2e_sig_released_on_failure_total";
/// Attempts needed by exchanges that required at least one retransmission.
/// Labels: engine.
inline constexpr char kSigRetryAttempts[] = "e2e_sig_retry_attempts";

// --- crypto: fast path + caches ---------------------------------------------
/// Modular exponentiations, by kernel. Labels: kernel=montgomery|reference.
inline constexpr char kCryptoModexpTotal[] = "e2e_crypto_modexp_total";
/// RSA signatures produced. Labels: path=crt|plain.
inline constexpr char kCryptoSignsTotal[] = "e2e_crypto_signs_total";
/// Signature-verification cache lookups. Labels: result=hit|miss.
inline constexpr char kCryptoVerifyCacheLookupsTotal[] =
    "e2e_crypto_verify_cache_lookups_total";
/// Verified-certificate-chain cache lookups (TrustStore). Labels:
/// result=hit|miss.
inline constexpr char kCryptoChainCacheLookupsTotal[] =
    "e2e_crypto_chain_cache_lookups_total";
/// Certificate TBS-encoding cache lookups. Labels: result=hit|miss.
inline constexpr char kCryptoTbsCacheLookupsTotal[] =
    "e2e_crypto_tbs_cache_lookups_total";
/// Montgomery-context cache lookups. Labels: result=hit|miss.
inline constexpr char kCryptoMontCtxLookupsTotal[] =
    "e2e_crypto_mont_ctx_lookups_total";
/// Verifications rejected before any arithmetic (zero/even/tiny modulus,
/// oversized signature).
inline constexpr char kCryptoBadKeyRejectsTotal[] =
    "e2e_crypto_bad_key_rejects_total";

// --- obs: the observability plane itself -------------------------------------
/// Trace contexts carried across the fabric on the unsigned envelope.
inline constexpr char kObsTraceCtxPropagatedTotal[] =
    "e2e_obs_trace_ctx_propagated_total";
/// Envelope bytes spent on trace context (out-of-band; not counted in
/// e2e_sig_fabric_bytes_total, which tracks only protocol payload).
inline constexpr char kObsTraceCtxBytesTotal[] =
    "e2e_obs_trace_ctx_bytes_total";
/// Series lookups routed to the overflow series by the registry's
/// cardinality cap. Labels: metric=<family that overflowed>.
inline constexpr char kObsDroppedLabelsTotal[] =
    "e2e_obs_dropped_labels_total";
/// Audit records appended to the hash chain. Labels:
/// kind=peer_auth|verify|policy|delegation|admission.
inline constexpr char kObsAuditRecordsTotal[] =
    "e2e_obs_audit_records_total";
/// Admin-plane HTTP requests served (wall-clock daemon only). Labels:
/// path=/metrics|/metrics.json|/healthz|/readyz|/statz|/tracez|other.
inline constexpr char kObsAdminRequestsTotal[] =
    "e2e_obs_admin_requests_total";
/// Scrape-safe registry snapshot cache behavior: a scrape either reused
/// the cached rendering or forced a refresh. Labels: result=hit|refresh.
inline constexpr char kObsSnapshotCacheTotal[] =
    "e2e_obs_snapshot_cache_total";

// --- slo: objective evaluation ------------------------------------------------
/// Latest estimated latency quantile per objective (us of virtual time).
/// Labels: objective, quantile=p50|p95|p99.
inline constexpr char kSloLatencyQuantileUs[] = "e2e_slo_latency_quantile_us";
/// Objective evaluations that found at least one budget exceeded. Labels:
/// objective.
inline constexpr char kSloBreachesTotal[] = "e2e_slo_breaches_total";
/// Objective evaluations performed. Labels: result=ok|breach|no_data.
inline constexpr char kSloEvaluationsTotal[] = "e2e_slo_evaluations_total";
/// Latest error-budget burn multiple over a real-time window (wall clock;
/// daemon admin plane only). Labels: objective, window (e.g. 60s).
inline constexpr char kSloBurnRate[] = "e2e_slo_burn_rate";
/// Burn-rate alert edges (not-alerting -> alerting transitions). Labels:
/// objective.
inline constexpr char kSloBurnAlertsTotal[] = "e2e_slo_burn_alerts_total";

// --- bb: bandwidth broker ------------------------------------------------------
/// Admission decisions at commit time. Labels: domain,
/// result=admitted|rejected.
inline constexpr char kBbAdmissionChecksTotal[] =
    "e2e_bb_admission_checks_total";
/// Reservations committed. Labels: domain.
inline constexpr char kBbReservationsCommittedTotal[] =
    "e2e_bb_reservations_committed_total";
/// Reservations released or purged. Labels: domain.
inline constexpr char kBbReservationsReleasedTotal[] =
    "e2e_bb_reservations_released_total";
/// Currently held reservations. Labels: domain.
inline constexpr char kBbReservationsActive[] = "e2e_bb_reservations_active";
/// Aggregate tunnels registered. Labels: domain.
inline constexpr char kBbTunnelsRegisteredTotal[] =
    "e2e_bb_tunnels_registered_total";
/// Requests executed by shard-engine workers (shared-nothing admission;
/// bumped once per drained queue batch). Labels: worker (queue index).
inline constexpr char kBbShardRequestsTotal[] = "e2e_bb_shard_requests_total";
/// Requests currently queued across all shard-engine workers (published
/// after each drain, so spikes between drains are invisible by design).
inline constexpr char kBbShardQueueDepth[] = "e2e_bb_shard_queue_depth";
/// High-water mark of the total shard queue depth since engine start
/// (updated at enqueue, so spikes between drains ARE visible here).
inline constexpr char kBbShardQueueDepthHighwater[] =
    "e2e_bb_shard_queue_depth_highwater";
/// Wall-clock microseconds shard workers spent running drained tasks
/// (busy fraction = rate of this over wall time). Labels: worker.
inline constexpr char kBbShardBusyUsTotal[] = "e2e_bb_shard_busy_us_total";
/// Tasks drained per worker wakeup (batch coalescing factor).
inline constexpr char kBbShardDrainBatch[] = "e2e_bb_shard_drain_batch";
/// Wall-clock time a broker spent deciding one admission (or one batch;
/// the only wall-clock histogram — every other latency metric is virtual
/// time, so this family's values vary run to run). Labels: domain.
inline constexpr char kBbAdmissionUs[] = "e2e_bb_admission_us";

// --- bb: durability (wal.cpp, snapshot.cpp, recovery.cpp) --------------------
/// WAL records appended (one per batch on batch paths). Labels:
/// kind=admit|admit_batch|release|release_batch|tunnel_register|
/// tunnel_authorize|tunnel_alloc|tunnel_alloc_batch|tunnel_release|
/// delegation_serial.
inline constexpr char kBbWalRecordsTotal[] = "e2e_bb_wal_records_total";
/// Bytes written to WAL files (records only; truncation rewrites excluded).
inline constexpr char kBbWalBytesTotal[] = "e2e_bb_wal_bytes_total";
/// fsync calls issued by the group-commit leader.
inline constexpr char kBbWalFsyncsTotal[] = "e2e_bb_wal_fsyncs_total";
/// Records made durable per fsync (group-commit coalescing factor).
inline constexpr char kBbWalGroupCommitRecords[] =
    "e2e_bb_wal_group_commit_records";
/// Snapshots written (each truncates the covered WAL prefix).
inline constexpr char kBbWalSnapshotsTotal[] = "e2e_bb_wal_snapshots_total";
/// WAL records dropped at snapshot truncation (covered by the snapshot).
inline constexpr char kBbWalTruncatedRecordsTotal[] =
    "e2e_bb_wal_truncated_records_total";
/// Recovery passes over a snapshot+WAL pair. Labels: result=ok|error.
inline constexpr char kBbRecoveryRunsTotal[] = "e2e_bb_recovery_runs_total";
/// State elements restored into a fresh broker. Labels:
/// source=snapshot|wal.
inline constexpr char kBbRecoveryReplayedTotal[] =
    "e2e_bb_recovery_replayed_total";
/// WAL records skipped during replay. Labels: reason=seq_covered (older
/// than the snapshot) | already_present (idempotent re-apply).
inline constexpr char kBbRecoverySkippedTotal[] =
    "e2e_bb_recovery_skipped_total";

// --- bb: capacity pools (admission.cpp; domain, peer-SLA and tunnel pools) ---
inline constexpr char kBbPoolCommitsTotal[] = "e2e_bb_pool_commits_total";
inline constexpr char kBbPoolReleasesTotal[] = "e2e_bb_pool_releases_total";
/// Commits refused because the rate does not fit the interval. Labels:
/// domain (of the owning broker; unlabelled for free-standing pools).
inline constexpr char kBbPoolRejectionsTotal[] = "e2e_bb_pool_rejections_total";
/// Live boundary points across a domain's timeline-indexed pools (local,
/// peer-SLA and tunnel pools; at most 2x the live commitments). Labels:
/// domain (unlabelled for free-standing pools).
inline constexpr char kBbPoolBoundaries[] = "e2e_bb_pool_boundaries";

// --- policy --------------------------------------------------------------------
/// Policy-server decisions. Labels: domain, decision=grant|deny.
inline constexpr char kPolicyDecisionsTotal[] = "e2e_policy_decisions_total";
/// Evaluations that failed outright (conservative denials). Labels: domain.
inline constexpr char kPolicyEvalFailuresTotal[] =
    "e2e_policy_eval_failures_total";

// --- net: DiffServ simulator -----------------------------------------------------
inline constexpr char kNetPacketsEmittedTotal[] =
    "e2e_net_packets_emitted_total";
inline constexpr char kNetPacketsDeliveredTotal[] =
    "e2e_net_packets_delivered_total";
/// Drops. Labels: reason=policer|queue.
inline constexpr char kNetPacketsDroppedTotal[] =
    "e2e_net_packets_dropped_total";
/// EF packets demoted to best-effort by a policer.
inline constexpr char kNetPacketsDowngradedTotal[] =
    "e2e_net_packets_downgraded_total";
/// End-to-end packet delay (us of virtual time).
inline constexpr char kNetPacketDelayUs[] = "e2e_net_packet_delay_us";

// --- net: stream transport (daemon / socket paths, src/net/stream_*) ----------
/// Connections accepted by a stream server. Labels: transport=tcp|unix.
inline constexpr char kNetConnsAcceptedTotal[] =
    "e2e_net_conns_accepted_total";
/// Connections currently open on a stream server.
inline constexpr char kNetConnsActive[] = "e2e_net_conns_active";
/// Raw stream bytes moved (frame headers included). Labels: dir=rx|tx.
inline constexpr char kNetStreamBytesTotal[] = "e2e_net_stream_bytes_total";
/// Complete length-prefixed frames moved. Labels: dir=rx|tx.
inline constexpr char kNetFramesTotal[] = "e2e_net_frames_total";
/// Times a connection's bounded write queue filled and the writer had to
/// wait for EPOLLOUT drainage.
inline constexpr char kNetBackpressureStallsTotal[] =
    "e2e_net_backpressure_stalls_total";
/// Frames rejected by the decoder (oversized length header, torn stream).
inline constexpr char kNetFramingErrorsTotal[] =
    "e2e_net_framing_errors_total";
/// Connections closed by the server's idle-timeout sweep.
inline constexpr char kNetIdleClosesTotal[] = "e2e_net_idle_closes_total";
/// Bytes queued and not yet written across a stream server's per-
/// connection write queues (RPC listener only; the admin listener stays
/// out of this gauge).
inline constexpr char kNetWriteQueueBytes[] = "e2e_net_write_queue_bytes";

/// One catalog row (drives registration, export metadata and the contract
/// test).
struct MetricInfo {
  const char* name;
  MetricType type;
  const char* unit;  // "1" for dimensionless counts
  std::vector<const char*> label_keys;
  const char* help;
};

/// Every metric the library emits, sorted by name.
const std::vector<MetricInfo>& catalog();

/// Declare the full catalog on `registry` (global() does this on first
/// use).
void register_all(MetricsRegistry& registry);

}  // namespace e2e::obs
