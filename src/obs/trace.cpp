#include "obs/trace.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace e2e::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string TraceContext::remote_parent_ref() const {
  return origin + ":" + std::to_string(span_id);
}

const std::string* Span::attribute(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return &v;
  }
  return nullptr;
}

Span* TraceRecorder::find_locked(SpanId id) {
  // Ids are dense and ascending; index directly.
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

SpanId TraceRecorder::begin_span(const std::string& trace_id,
                                 const std::string& name, SpanId parent,
                                 SimTime start) {
  std::lock_guard lock(mutex_);
  Span span;
  span.id = next_id_++;
  span.parent = parent;
  span.trace_id = trace_id;
  span.name = name;
  span.start = start;
  span.end = start;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void TraceRecorder::end_span(SpanId id, SimTime end) {
  std::lock_guard lock(mutex_);
  if (Span* span = find_locked(id)) span->end = end;
}

void TraceRecorder::annotate(SpanId id, const std::string& key,
                             const std::string& value) {
  std::lock_guard lock(mutex_);
  if (Span* span = find_locked(id)) span->attributes.emplace_back(key, value);
}

void TraceRecorder::fail_span(SpanId id, const std::string& reason) {
  std::lock_guard lock(mutex_);
  if (Span* span = find_locked(id)) {
    span->failed = true;
    span->attributes.emplace_back("error", reason);
  }
}

std::vector<Span> TraceRecorder::trace(const std::string& trace_id) const {
  std::lock_guard lock(mutex_);
  std::vector<Span> out;
  for (const Span& span : spans_) {
    if (span.trace_id == trace_id) out.push_back(span);
  }
  return out;
}

std::vector<std::string> TraceRecorder::trace_ids() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> ids;
  for (const Span& span : spans_) {
    if (std::find(ids.begin(), ids.end(), span.trace_id) == ids.end()) {
      ids.push_back(span.trace_id);
    }
  }
  return ids;
}

std::size_t TraceRecorder::span_count() const {
  std::lock_guard lock(mutex_);
  return spans_.size();
}

void TraceRecorder::clear() {
  std::lock_guard lock(mutex_);
  spans_.clear();
  next_id_ = 1;
}

std::string TraceRecorder::render_tree(const std::string& trace_id) const {
  const std::vector<Span> spans = trace(trace_id);
  if (spans.empty()) return "(no spans for trace " + trace_id + ")\n";
  // Offsets are relative to the trace's earliest start so trees read the
  // same regardless of the absolute virtual time of submission.
  SimTime origin = spans.front().start;
  for (const Span& span : spans) origin = std::min(origin, span.start);

  std::ostringstream out;
  out << "trace " << trace_id << "\n";
  // Creation order already places parents before children; emit each root
  // and recurse.
  auto emit = [&](auto&& self, const Span& span, int depth) -> void {
    for (int i = 0; i < depth; ++i) out << "   ";
    if (depth > 0) out << "`- ";
    out << span.name << "  [+" << (span.start - origin) << "us .. +"
        << (span.end - origin) << "us]  (" << span.duration() << " us)";
    for (const auto& [key, value] : span.attributes) {
      out << "  " << key << "=" << value;
    }
    if (span.failed) out << "  [FAILED]";
    out << "\n";
    for (const Span& child : spans) {
      if (child.parent == span.id) self(self, child, depth + 1);
    }
  };
  for (const Span& span : spans) {
    if (span.parent == 0) emit(emit, span, 0);
  }
  return out.str();
}

std::string TraceRecorder::to_json(const std::string& trace_id) const {
  const std::vector<Span> spans = trace(trace_id);
  std::ostringstream out;
  out << "{\"trace_id\":\"" << json_escape(trace_id) << "\",\"spans\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& span = spans[i];
    if (i > 0) out << ",";
    out << "{\"id\":" << span.id << ",\"parent\":" << span.parent
        << ",\"name\":\"" << json_escape(span.name) << "\",\"start_us\":"
        << span.start << ",\"end_us\":" << span.end << ",\"failed\":"
        << (span.failed ? "true" : "false") << ",\"attributes\":{";
    for (std::size_t a = 0; a < span.attributes.size(); ++a) {
      if (a > 0) out << ",";
      out << "\"" << json_escape(span.attributes[a].first) << "\":\""
          << json_escape(span.attributes[a].second) << "\"";
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

SpanScope::SpanScope(TraceRecorder* primary, TraceRecorder* secondary,
                     const std::string& trace_id, const std::string& name,
                     SpanId primary_parent, SpanId secondary_parent,
                     const SimTime* cursor)
    : primary_(primary), secondary_(secondary), cursor_(cursor),
      finished_(false) {
  const SimTime start = cursor_ ? *cursor_ : 0;
  if (primary_) {
    primary_id_ = primary_->begin_span(trace_id, name, primary_parent, start);
  }
  if (secondary_) {
    secondary_id_ =
        secondary_->begin_span(trace_id, name, secondary_parent, start);
  }
}

SpanScope::~SpanScope() { finish(); }

SpanScope::SpanScope(SpanScope&& other) noexcept
    : primary_(other.primary_),
      secondary_(other.secondary_),
      primary_id_(other.primary_id_),
      secondary_id_(other.secondary_id_),
      cursor_(other.cursor_),
      finished_(other.finished_) {
  other.finished_ = true;
}

SpanScope& SpanScope::operator=(SpanScope&& other) noexcept {
  if (this != &other) {
    finish();
    primary_ = other.primary_;
    secondary_ = other.secondary_;
    primary_id_ = other.primary_id_;
    secondary_id_ = other.secondary_id_;
    cursor_ = other.cursor_;
    finished_ = other.finished_;
    other.finished_ = true;
  }
  return *this;
}

void SpanScope::annotate(const std::string& key, const std::string& value) {
  if (primary_ && primary_id_ != 0) primary_->annotate(primary_id_, key, value);
  if (secondary_ && secondary_id_ != 0) {
    secondary_->annotate(secondary_id_, key, value);
  }
}

void SpanScope::annotate_secondary(const std::string& key,
                                   const std::string& value) {
  if (secondary_ && secondary_id_ != 0) {
    secondary_->annotate(secondary_id_, key, value);
  }
}

void SpanScope::fail(const std::string& reason) {
  if (primary_ && primary_id_ != 0) primary_->fail_span(primary_id_, reason);
  if (secondary_ && secondary_id_ != 0) {
    secondary_->fail_span(secondary_id_, reason);
  }
}

void SpanScope::finish() {
  if (finished_) return;
  finish_at(cursor_ ? *cursor_ : 0);
}

void SpanScope::finish_at(SimTime end) {
  if (finished_) return;
  finished_ = true;
  if (primary_ && primary_id_ != 0) primary_->end_span(primary_id_, end);
  if (secondary_ && secondary_id_ != 0) {
    secondary_->end_span(secondary_id_, end);
  }
}

namespace {

SpanRef& thread_span_ref() {
  thread_local SpanRef ref;
  return ref;
}

}  // namespace

const SpanRef& current_span_ref() { return thread_span_ref(); }

CurrentSpan::CurrentSpan(SpanRef ref) : saved_(thread_span_ref()) {
  thread_span_ref() = std::move(ref);
}

CurrentSpan::~CurrentSpan() { thread_span_ref() = std::move(saved_); }

}  // namespace e2e::obs
