#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/instruments.hpp"

namespace e2e::obs {

namespace {

/// Render a double without trailing noise: integers as integers, the rest
/// with up to six significant decimals (snapshots must diff cleanly).
std::string format_number(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 9.0e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string labels_json(const Labels& labels) {
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(labels[i].first) + "\":\"" +
           json_escape(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

std::string labels_text(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + labels[i].second + "\"";
  }
  out += "}";
  return out;
}

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  std::lock_guard lock(mutex_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<std::size_t>(it - bounds_.begin())]++;
  count_++;
  sum_ += value;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard lock(mutex_);
  return Snapshot{bounds_, counts_, count_, sum_};
}

std::uint64_t Histogram::count() const {
  std::lock_guard lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard lock(mutex_);
  return sum_;
}

void Histogram::reset() {
  std::lock_guard lock(mutex_);
  counts_.assign(counts_.size(), 0);
  count_ = 0;
  sum_ = 0;
}

const std::vector<double>& Histogram::default_latency_buckets_us() {
  static const std::vector<double> kBuckets = {
      100,     200,     500,     1000,    2000,    5000,    10000,
      20000,   50000,   100000,  200000,  500000,  1000000, 2000000,
      5000000, 10000000};
  return kBuckets;
}

void MetricsRegistry::declare(MetricMetadata metadata) {
  std::lock_guard lock(mutex_);
  Family& family = families_[metadata.name];
  if (family.declared) return;
  std::sort(metadata.label_keys.begin(), metadata.label_keys.end());
  family.metadata = std::move(metadata);
  family.declared = true;
}

MetricsRegistry::Family& MetricsRegistry::family_locked(
    const std::string& name, MetricType type) {
  Family& family = families_[name];
  if (!family.declared) {
    family.metadata.name = name;
    family.metadata.type = type;
  }
  return family;
}

template <typename Map>
Labels MetricsRegistry::capped_labels_locked(const std::string& name,
                                             const Map& series,
                                             Labels labels) {
  labels = sorted(std::move(labels));
  if (series.size() < series_limit_ || series.count(labels) != 0 ||
      name == kObsDroppedLabelsTotal) {
    return labels;
  }
  // Family full and this is a new label set: account the drop and route
  // the caller to the shared overflow series. The dropped-labels counter
  // is created directly (same lock) — counter() here would deadlock.
  Family& dropped =
      family_locked(kObsDroppedLabelsTotal, MetricType::kCounter);
  auto& slot = dropped.counters[Labels{{"metric", name}}];
  if (!slot) slot = std::make_unique<Counter>();
  slot->increment();
  return Labels{{"overflow", "other"}};
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  std::lock_guard lock(mutex_);
  Family& family = family_locked(name, MetricType::kCounter);
  auto& slot =
      family.counters[capped_labels_locked(name, family.counters, labels)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard lock(mutex_);
  Family& family = family_locked(name, MetricType::kGauge);
  auto& slot =
      family.gauges[capped_labels_locked(name, family.gauges, labels)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels) {
  std::lock_guard lock(mutex_);
  Family& family = family_locked(name, MetricType::kHistogram);
  auto& slot =
      family.histograms[capped_labels_locked(name, family.histograms,
                                             labels)];
  if (!slot) {
    slot = family.metadata.buckets.empty()
               ? std::make_unique<Histogram>()
               : std::make_unique<Histogram>(family.metadata.buckets);
  }
  return *slot;
}

void MetricsRegistry::set_series_limit(std::size_t limit) {
  std::lock_guard lock(mutex_);
  series_limit_ = limit == 0 ? 1 : limit;
}

std::size_t MetricsRegistry::series_limit() const {
  std::lock_guard lock(mutex_);
  return series_limit_;
}

std::vector<std::string> MetricsRegistry::exported_names() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [name, family] : families_) {
    if (!family.counters.empty() || !family.gauges.empty() ||
        !family.histograms.empty()) {
      names.push_back(name);
    }
  }
  return names;  // std::map iteration is already sorted
}

std::size_t MetricsRegistry::series_count() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& [name, family] : families_) {
    n += family.counters.size() + family.gauges.size() +
         family.histograms.size();
  }
  return n;
}

void MetricsRegistry::reset_values() {
  std::lock_guard lock(mutex_);
  for (auto& [name, family] : families_) {
    for (auto& [labels, c] : family.counters) c->reset();
    for (auto& [labels, g] : family.gauges) g->reset();
    for (auto& [labels, h] : family.histograms) h->reset();
  }
}

std::string MetricsRegistry::to_text() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, family] : families_) {
    const bool live = !family.counters.empty() || !family.gauges.empty() ||
                      !family.histograms.empty();
    if (!live) continue;
    if (!family.metadata.help.empty()) {
      out << "# HELP " << name << " " << family.metadata.help << "\n";
    }
    out << "# TYPE " << name << " " << to_string(family.metadata.type)
        << "\n";
    for (const auto& [labels, c] : family.counters) {
      out << name << labels_text(labels) << " " << c->value() << "\n";
    }
    for (const auto& [labels, g] : family.gauges) {
      out << name << labels_text(labels) << " " << format_number(g->value())
          << "\n";
    }
    for (const auto& [labels, h] : family.histograms) {
      const Histogram::Snapshot snap = h->snapshot();
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
        cumulative += snap.counts[i];
        Labels with_le = labels;
        with_le.emplace_back("le", format_number(snap.bounds[i]));
        out << name << "_bucket" << labels_text(with_le) << " " << cumulative
            << "\n";
      }
      Labels with_le = labels;
      with_le.emplace_back("le", "+Inf");
      out << name << "_bucket" << labels_text(with_le) << " " << snap.count
          << "\n";
      out << name << "_sum" << labels_text(labels) << " "
          << format_number(snap.sum) << "\n";
      out << name << "_count" << labels_text(labels) << " " << snap.count
          << "\n";
    }
  }
  return out.str();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  out << "{\"metrics\":[";
  bool first_family = true;
  for (const auto& [name, family] : families_) {
    const bool live = !family.counters.empty() || !family.gauges.empty() ||
                      !family.histograms.empty();
    if (!live) continue;
    if (!first_family) out << ",";
    first_family = false;
    out << "{\"name\":\"" << json_escape(name) << "\",\"type\":\""
        << to_string(family.metadata.type) << "\",\"unit\":\""
        << json_escape(family.metadata.unit) << "\",\"series\":[";
    bool first_series = true;
    for (const auto& [labels, c] : family.counters) {
      if (!first_series) out << ",";
      first_series = false;
      out << "{\"labels\":" << labels_json(labels) << ",\"value\":"
          << c->value() << "}";
    }
    for (const auto& [labels, g] : family.gauges) {
      if (!first_series) out << ",";
      first_series = false;
      out << "{\"labels\":" << labels_json(labels) << ",\"value\":"
          << format_number(g->value()) << "}";
    }
    for (const auto& [labels, h] : family.histograms) {
      if (!first_series) out << ",";
      first_series = false;
      const Histogram::Snapshot snap = h->snapshot();
      out << "{\"labels\":" << labels_json(labels) << ",\"buckets\":[";
      for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
        if (i > 0) out << ",";
        out << "{\"le\":" << format_number(snap.bounds[i]) << ",\"count\":"
            << snap.counts[i] << "}";
      }
      if (!snap.bounds.empty()) out << ",";
      out << "{\"le\":\"+Inf\",\"count\":" << snap.counts.back() << "}]";
      out << ",\"count\":" << snap.count << ",\"sum\":"
          << format_number(snap.sum) << "}";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    register_all(*r);
    return r;
  }();
  return *registry;
}

}  // namespace e2e::obs
