// Tunnels: aggregate end-to-end reservations.
//
// Paper §1: "Support for tunnels allows an entity to request an aggregate
// end-to-end reservation. Users authorized to use this tunnel can then
// request portions of this aggregate bandwidth by contacting just the two
// end domains — the intermediate domains do not need to be contacted as
// long as the total bandwidth remains less than the size of the tunnel."
#pragma once

#include <set>
#include <string>
#include <vector>

#include "bb/admission.hpp"
#include "bb/reservation.hpp"
#include "bb/wal.hpp"

namespace e2e::bb {

using TunnelId = std::string;

class Tunnel {
 public:
  Tunnel() = default;
  Tunnel(TunnelId id, ResSpec aggregate_spec)
      : id_(std::move(id)),
        spec_(std::move(aggregate_spec)),
        pool_(spec_.rate_bits_per_s) {}

  const TunnelId& id() const { return id_; }
  const ResSpec& spec() const { return spec_; }
  double aggregate_rate() const { return spec_.rate_bits_per_s; }

  /// Domain whose broker registered this tunnel; labels the pool's
  /// rejection counter and boundary gauge. Call before concurrent use.
  void set_owner_domain(std::string domain) {
    owner_domain_ = domain;
    pool_.set_owner_domain(std::move(domain));
  }

  /// Attach the owning broker's write-ahead log: per-flow allocations,
  /// releases and authorization grants become durable-before-ack. Set at
  /// registration (or recovery completion), before concurrent use.
  void set_wal(WriteAheadLog* wal) { wal_ = wal; }

  /// Principals authorized to draw bandwidth from this tunnel. Setup-time
  /// only: authorization is not synchronized against concurrent allocate().
  /// Durable-before-ack like every grant: if the WAL commit fails, the
  /// in-memory insert is rolled back and the error propagates — a
  /// recovered broker never silently loses an acked authorization.
  Status authorize(const std::string& user_dn) {
    const bool inserted = authorized_.insert(user_dn).second;
    if (wal_ != nullptr) {
      auto durable = wal_->log(owner_domain_, wal_kind::kTunnelAuthorize,
                               {{"tunnel", id_}, {"user", user_dn}});
      if (!durable.ok()) {
        if (inserted) authorized_.erase(user_dn);
        return durable;
      }
    }
    return Status::ok_status();
  }
  bool is_authorized(const std::string& user_dn) const {
    return authorized_.contains(user_dn);
  }
  const std::set<std::string>& authorized() const { return authorized_; }

  /// Allocate a per-flow slice inside the aggregate. Only the two end
  /// domains run this check — no intermediate signalling. Thread-safe:
  /// the pool's internal lock makes the check-and-commit atomic.
  Status allocate(const ReservationId& sub_id, const std::string& user_dn,
                  const TimeInterval& interval, double rate) {
    auto gate = admission_gate(user_dn, interval);
    if (!gate.ok()) return gate;
    auto status = pool_.commit(sub_id, interval, rate);
    if (status.ok() && wal_ != nullptr) {
      auto durable = wal_->log(owner_domain_, wal_kind::kTunnelAlloc,
                               {{"tunnel", id_},
                                {"sub_id", sub_id},
                                {"user", user_dn},
                                {"start", std::to_string(interval.start)},
                                {"end", std::to_string(interval.end)},
                                {"rate", wal_format_double(rate)}});
      if (!durable.ok()) {
        (void)pool_.release(sub_id);  // never ack what isn't durable
        return durable;
      }
    }
    return status;
  }

  /// One per-flow request inside a batch allocation.
  struct SubFlowRequest {
    ReservationId sub_id;
    std::string user_dn;
    TimeInterval interval;
    double rate = 0;
  };

  /// Admit a vector of per-flow requests against the aggregate in one
  /// pool-lock acquisition (sorted by interval start; see
  /// CapacityPool::commit_batch). Statuses come back in input order;
  /// authorization/lifetime failures never reach the pool.
  std::vector<Status> allocate_batch(
      const std::vector<SubFlowRequest>& flows) {
    std::vector<Status> statuses(flows.size(), Status::ok_status());
    std::vector<CapacityPool::BatchRequest> pool_batch;
    std::vector<std::size_t> pool_index;
    pool_batch.reserve(flows.size());
    pool_index.reserve(flows.size());
    for (std::size_t i = 0; i < flows.size(); ++i) {
      auto gate = admission_gate(flows[i].user_dn, flows[i].interval);
      if (!gate.ok()) {
        statuses[i] = std::move(gate);
        continue;
      }
      pool_batch.push_back(CapacityPool::BatchRequest{
          flows[i].sub_id, flows[i].interval, flows[i].rate});
      pool_index.push_back(i);
    }
    std::vector<Status> pool_statuses = pool_.commit_batch(pool_batch);
    for (std::size_t j = 0; j < pool_statuses.size(); ++j) {
      statuses[pool_index[j]] = std::move(pool_statuses[j]);
    }
    if (wal_ != nullptr) {
      // ONE record for the whole batch (granted flows only): the group
      // commit makes a batch of N flows cost one line and one fsync.
      std::vector<WalFields> items;
      for (std::size_t j = 0; j < pool_statuses.size(); ++j) {
        const std::size_t i = pool_index[j];
        if (!statuses[i].ok()) continue;
        items.push_back({{"sub_id", flows[i].sub_id},
                         {"user", flows[i].user_dn},
                         {"start", std::to_string(flows[i].interval.start)},
                         {"end", std::to_string(flows[i].interval.end)},
                         {"rate", wal_format_double(flows[i].rate)}});
      }
      if (!items.empty()) {
        auto durable = wal_->log(
            owner_domain_, wal_kind::kTunnelAllocBatch,
            {{"tunnel", id_}, {"count", std::to_string(items.size())}},
            std::move(items));
        if (!durable.ok()) {
          for (std::size_t j = 0; j < pool_statuses.size(); ++j) {
            const std::size_t i = pool_index[j];
            if (statuses[i].ok()) {
              (void)pool_.release(flows[i].sub_id);
              statuses[i] = durable;
            }
          }
        }
      }
    }
    return statuses;
  }

  Status release(const ReservationId& sub_id) {
    auto status = pool_.release(sub_id);
    if (status.ok() && wal_ != nullptr) {
      (void)wal_->log(owner_domain_, wal_kind::kTunnelRelease,
                      {{"tunnel", id_}, {"sub_id", sub_id}});
    }
    return status;
  }

  // --- Recovery support (bb/snapshot.cpp, bb/recovery.cpp) ------------------
  /// Live per-flow allocations, for the state snapshot.
  std::vector<CapacityPool::CommitmentView> allocations() const {
    return pool_.commitments_view();
  }
  /// Re-install an allocation during replay: no authorization gate (the
  /// original allocate already passed it) and no WAL re-append. kConflict
  /// on a duplicate sub_id makes replay idempotent.
  Status restore_allocation(const ReservationId& sub_id,
                            const TimeInterval& interval, double rate) {
    return pool_.commit(sub_id, interval, rate);
  }

  double allocated_peak(const TimeInterval& interval) const {
    return pool_.peak_committed(interval);
  }
  double headroom(const TimeInterval& interval) const {
    return pool_.headroom(interval);
  }
  std::size_t active_allocations() const { return pool_.commitment_count(); }

 private:
  /// Authorization + lifetime checks shared by allocate()/allocate_batch().
  Status admission_gate(const std::string& user_dn,
                        const TimeInterval& interval) const {
    if (!is_authorized(user_dn)) {
      return make_error(ErrorCode::kPolicyDenied,
                        user_dn + " not authorized for tunnel " + id_);
    }
    if (!spec_.interval.contains(interval.start) ||
        interval.end > spec_.interval.end) {
      return make_error(ErrorCode::kAdmissionRejected,
                        "sub-reservation outside tunnel lifetime");
    }
    return Status::ok_status();
  }

  TunnelId id_;
  ResSpec spec_;
  CapacityPool pool_;
  std::set<std::string> authorized_;
  std::string owner_domain_;
  WriteAheadLog* wal_ = nullptr;  // owned by the deployment, not the tunnel
};

}  // namespace e2e::bb
