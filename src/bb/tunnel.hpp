// Tunnels: aggregate end-to-end reservations.
//
// Paper §1: "Support for tunnels allows an entity to request an aggregate
// end-to-end reservation. Users authorized to use this tunnel can then
// request portions of this aggregate bandwidth by contacting just the two
// end domains — the intermediate domains do not need to be contacted as
// long as the total bandwidth remains less than the size of the tunnel."
#pragma once

#include <set>
#include <string>

#include "bb/admission.hpp"
#include "bb/reservation.hpp"

namespace e2e::bb {

using TunnelId = std::string;

class Tunnel {
 public:
  Tunnel() = default;
  Tunnel(TunnelId id, ResSpec aggregate_spec)
      : id_(std::move(id)),
        spec_(std::move(aggregate_spec)),
        pool_(spec_.rate_bits_per_s) {}

  const TunnelId& id() const { return id_; }
  const ResSpec& spec() const { return spec_; }
  double aggregate_rate() const { return spec_.rate_bits_per_s; }

  /// Principals authorized to draw bandwidth from this tunnel.
  void authorize(const std::string& user_dn) { authorized_.insert(user_dn); }
  bool is_authorized(const std::string& user_dn) const {
    return authorized_.contains(user_dn);
  }

  /// Allocate a per-flow slice inside the aggregate. Only the two end
  /// domains run this check — no intermediate signalling.
  Status allocate(const ReservationId& sub_id, const std::string& user_dn,
                  const TimeInterval& interval, double rate) {
    if (!is_authorized(user_dn)) {
      return make_error(ErrorCode::kPolicyDenied,
                        user_dn + " not authorized for tunnel " + id_);
    }
    if (!spec_.interval.contains(interval.start) ||
        interval.end > spec_.interval.end) {
      return make_error(ErrorCode::kAdmissionRejected,
                        "sub-reservation outside tunnel lifetime");
    }
    return pool_.commit(sub_id, interval, rate);
  }

  Status release(const ReservationId& sub_id) { return pool_.release(sub_id); }

  double allocated_peak(const TimeInterval& interval) const {
    return pool_.peak_committed(interval);
  }
  double headroom(const TimeInterval& interval) const {
    return pool_.headroom(interval);
  }
  std::size_t active_allocations() const { return pool_.commitment_count(); }

 private:
  TunnelId id_;
  ResSpec spec_;
  CapacityPool pool_;
  std::set<std::string> authorized_;
};

}  // namespace e2e::bb
