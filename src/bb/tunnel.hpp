// Tunnels: aggregate end-to-end reservations.
//
// Paper §1: "Support for tunnels allows an entity to request an aggregate
// end-to-end reservation. Users authorized to use this tunnel can then
// request portions of this aggregate bandwidth by contacting just the two
// end domains — the intermediate domains do not need to be contacted as
// long as the total bandwidth remains less than the size of the tunnel."
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "bb/admission.hpp"
#include "bb/reservation.hpp"
#include "bb/shard_engine.hpp"
#include "bb/wal.hpp"

namespace e2e::bb {

using TunnelId = std::string;

class Tunnel {
 public:
  Tunnel() = default;
  Tunnel(TunnelId id, ResSpec aggregate_spec)
      : id_(std::move(id)),
        spec_(std::move(aggregate_spec)),
        pool_(spec_.rate_bits_per_s) {}

  const TunnelId& id() const { return id_; }
  const ResSpec& spec() const { return spec_; }
  double aggregate_rate() const { return spec_.rate_bits_per_s; }

  /// Domain whose broker registered this tunnel; labels the pool's
  /// rejection counter and boundary gauge. Call before concurrent use.
  void set_owner_domain(std::string domain) {
    owner_domain_ = domain;
    pool_.set_owner_domain(std::move(domain));
  }

  /// Attach the owning broker's write-ahead log: per-flow allocations,
  /// releases and authorization grants become durable-before-ack. Set at
  /// registration (or recovery completion), before concurrent use.
  void set_wal(WriteAheadLog* wal) { wal_ = wal; }

  /// Hand this tunnel's admission state to shard-engine worker `owner`
  /// (shared-nothing mode): allocate/release route their pool+WAL-append
  /// work to that worker's queue, so the pool stays resident in one
  /// core's cache. nullptr reverts to caller-thread execution. Set at
  /// setup (BandwidthBroker::enable_shard_engine), not under traffic.
  /// The blocking WAL group commit always stays on the CALLER's thread —
  /// an fsync must never stall the owning worker's queue.
  void set_engine(ShardEngine* engine, std::size_t owner) {
    engine_ = engine;
    owner_ = owner;
    // An owned pool batches its registry traffic; totals flush on
    // disable/destruction, so engine on/off reaches identical counts.
    pool_.set_metrics_flush_interval(engine == nullptr ? 1 : 256);
  }
  ShardEngine* engine() const { return engine_; }
  std::size_t owner_worker() const { return owner_; }

  /// Principals authorized to draw bandwidth from this tunnel. Setup-time
  /// only: authorization is not synchronized against concurrent allocate().
  /// Durable-before-ack like every grant: if the WAL commit fails, the
  /// in-memory insert is rolled back and the error propagates — a
  /// recovered broker never silently loses an acked authorization.
  Status authorize(const std::string& user_dn) {
    const bool inserted = authorized_.insert(user_dn).second;
    if (wal_ != nullptr) {
      auto durable = wal_->log(owner_domain_, wal_kind::kTunnelAuthorize,
                               {{"tunnel", id_}, {"user", user_dn}});
      if (!durable.ok()) {
        if (inserted) authorized_.erase(user_dn);
        return durable;
      }
    }
    return Status::ok_status();
  }
  bool is_authorized(const std::string& user_dn) const {
    return authorized_.contains(user_dn);
  }
  const std::set<std::string>& authorized() const { return authorized_; }

  /// One per-flow request inside a batch allocation.
  struct SubFlowRequest {
    ReservationId sub_id;
    std::string user_dn;
    TimeInterval interval;
    double rate = 0;
  };

  /// Allocate a per-flow slice inside the aggregate. Only the two end
  /// domains run this check — no intermediate signalling. Thread-safe:
  /// the pool's internal lock makes the check-and-commit atomic (and the
  /// shard engine, when attached, serializes the apply on the owner).
  Status allocate(const ReservationId& sub_id, const std::string& user_dn,
                  const TimeInterval& interval, double rate) {
    std::uint64_t lsn = 0;
    const SubFlowRequest flow{sub_id, user_dn, interval, rate};
    auto status = run_owned([&] { return allocate_apply(flow, &lsn); });
    if (!status.ok()) return status;
    if (lsn != 0) {
      // Finish half, on the caller: block for the group commit. A sync
      // failure unwinds the grant on the owner — never ack what isn't
      // durable.
      auto durable = wal_->commit(lsn);
      if (!durable.ok()) {
        run_owned([&] { allocate_unwind(sub_id); });
        return durable;
      }
    }
    return status;
  }

  /// Apply half of allocate(): authorization gate, pool commit, WAL
  /// *append* (no sync). Runs on the owning worker in engine mode —
  /// BandwidthBroker::allocate_across_tunnels posts it directly to
  /// pipeline a cross-tunnel batch. When it sets `*lsn` (non-zero), the
  /// caller owns the finish half: WriteAheadLog::commit(lsn) before
  /// acking, allocate_unwind() on the owner if that fails.
  Status allocate_apply(const SubFlowRequest& flow, std::uint64_t* lsn) {
    auto gate = admission_gate(flow.user_dn, flow.interval);
    if (!gate.ok()) return gate;
    auto status = pool_.commit(flow.sub_id, flow.interval, flow.rate);
    if (status.ok() && wal_ != nullptr) {
      *lsn = wal_->append(
          owner_domain_, wal_kind::kTunnelAlloc,
          {{"tunnel", id_},
           {"sub_id", flow.sub_id},
           {"user", flow.user_dn},
           {"start", std::to_string(flow.interval.start)},
           {"end", std::to_string(flow.interval.end)},
           {"rate", wal_format_double(flow.rate)}});
    }
    return status;
  }

  /// Roll back an applied-but-not-durable allocation (see allocate_apply).
  void allocate_unwind(const ReservationId& sub_id) {
    (void)pool_.release(sub_id);
  }

  /// Admit a vector of per-flow requests against the aggregate in one
  /// pool-lock acquisition (sorted by interval start; see
  /// CapacityPool::commit_batch). Statuses come back in input order;
  /// authorization/lifetime failures never reach the pool.
  std::vector<Status> allocate_batch(
      const std::vector<SubFlowRequest>& flows) {
    std::uint64_t lsn = 0;
    std::vector<std::size_t> granted;
    auto statuses = run_owned(
        [&] { return allocate_batch_apply(flows, &lsn, &granted); });
    if (lsn != 0) {
      auto durable = wal_->commit(lsn);
      if (!durable.ok()) {
        run_owned([&] {
          for (std::size_t i : granted) allocate_unwind(flows[i].sub_id);
        });
        for (std::size_t i : granted) statuses[i] = durable;
      }
    }
    return statuses;
  }

  /// Apply half of allocate_batch(): gates, one pool commit_batch, ONE
  /// WAL record appended for the granted flows (the group commit makes a
  /// batch of N flows cost one line and one fsync). Same finish contract
  /// as allocate_apply; `*granted` receives the indexes to unwind.
  std::vector<Status> allocate_batch_apply(
      const std::vector<SubFlowRequest>& flows, std::uint64_t* lsn,
      std::vector<std::size_t>* granted) {
    std::vector<Status> statuses(flows.size(), Status::ok_status());
    std::vector<CapacityPool::BatchRequest> pool_batch;
    std::vector<std::size_t> pool_index;
    pool_batch.reserve(flows.size());
    pool_index.reserve(flows.size());
    for (std::size_t i = 0; i < flows.size(); ++i) {
      auto gate = admission_gate(flows[i].user_dn, flows[i].interval);
      if (!gate.ok()) {
        statuses[i] = std::move(gate);
        continue;
      }
      pool_batch.push_back(CapacityPool::BatchRequest{
          flows[i].sub_id, flows[i].interval, flows[i].rate});
      pool_index.push_back(i);
    }
    std::vector<Status> pool_statuses = pool_.commit_batch(pool_batch);
    for (std::size_t j = 0; j < pool_statuses.size(); ++j) {
      statuses[pool_index[j]] = std::move(pool_statuses[j]);
    }
    for (std::size_t i : pool_index) {
      if (statuses[i].ok()) granted->push_back(i);
    }
    if (wal_ != nullptr && !granted->empty()) {
      std::vector<WalFields> items;
      items.reserve(granted->size());
      for (std::size_t i : *granted) {
        items.push_back({{"sub_id", flows[i].sub_id},
                         {"user", flows[i].user_dn},
                         {"start", std::to_string(flows[i].interval.start)},
                         {"end", std::to_string(flows[i].interval.end)},
                         {"rate", wal_format_double(flows[i].rate)}});
      }
      *lsn = wal_->append(
          owner_domain_, wal_kind::kTunnelAllocBatch,
          {{"tunnel", id_}, {"count", std::to_string(items.size())}},
          std::move(items));
    }
    return statuses;
  }

  Status release(const ReservationId& sub_id) {
    std::uint64_t lsn = 0;
    auto status = run_owned([&] {
      auto s = pool_.release(sub_id);
      if (s.ok() && wal_ != nullptr) {
        lsn = wal_->append(owner_domain_, wal_kind::kTunnelRelease,
                           {{"tunnel", id_}, {"sub_id", sub_id}});
      }
      return s;
    });
    // Apply-then-log: a lost release record is conservative on replay
    // (capacity stays reserved, never double-granted), so the sync result
    // does not gate the status — same contract as before the engine.
    if (lsn != 0) (void)wal_->commit(lsn);
    return status;
  }

  // --- Recovery support (bb/snapshot.cpp, bb/recovery.cpp) ------------------
  /// Live per-flow allocations, for the state snapshot.
  std::vector<CapacityPool::CommitmentView> allocations() const {
    return pool_.commitments_view();
  }
  /// Re-install an allocation during replay: no authorization gate (the
  /// original allocate already passed it) and no WAL re-append. kConflict
  /// on a duplicate sub_id makes replay idempotent.
  Status restore_allocation(const ReservationId& sub_id,
                            const TimeInterval& interval, double rate) {
    return pool_.commit(sub_id, interval, rate);
  }

  double allocated_peak(const TimeInterval& interval) const {
    return pool_.peak_committed(interval);
  }
  double headroom(const TimeInterval& interval) const {
    return pool_.headroom(interval);
  }
  std::size_t active_allocations() const { return pool_.commitment_count(); }

 private:
  /// Run `fn` on the owning shard worker (inline without an engine, or
  /// when the calling thread already is the owner).
  template <typename F>
  auto run_owned(F&& fn) -> std::invoke_result_t<F&> {
    if (engine_ == nullptr) return fn();
    return engine_->run_on(owner_, std::forward<F>(fn));
  }

  /// Authorization + lifetime checks shared by allocate()/allocate_batch().
  Status admission_gate(const std::string& user_dn,
                        const TimeInterval& interval) const {
    if (!is_authorized(user_dn)) {
      return make_error(ErrorCode::kPolicyDenied,
                        user_dn + " not authorized for tunnel " + id_);
    }
    if (!spec_.interval.contains(interval.start) ||
        interval.end > spec_.interval.end) {
      return make_error(ErrorCode::kAdmissionRejected,
                        "sub-reservation outside tunnel lifetime");
    }
    return Status::ok_status();
  }

  TunnelId id_;
  ResSpec spec_;
  CapacityPool pool_;
  std::set<std::string> authorized_;
  std::string owner_domain_;
  WriteAheadLog* wal_ = nullptr;  // owned by the deployment, not the tunnel
  ShardEngine* engine_ = nullptr;  // owned by the broker, not the tunnel
  std::size_t owner_ = 0;          // owning worker index when engine_ set
};

}  // namespace e2e::bb
