// Tunnels: aggregate end-to-end reservations.
//
// Paper §1: "Support for tunnels allows an entity to request an aggregate
// end-to-end reservation. Users authorized to use this tunnel can then
// request portions of this aggregate bandwidth by contacting just the two
// end domains — the intermediate domains do not need to be contacted as
// long as the total bandwidth remains less than the size of the tunnel."
#pragma once

#include <set>
#include <string>
#include <vector>

#include "bb/admission.hpp"
#include "bb/reservation.hpp"

namespace e2e::bb {

using TunnelId = std::string;

class Tunnel {
 public:
  Tunnel() = default;
  Tunnel(TunnelId id, ResSpec aggregate_spec)
      : id_(std::move(id)),
        spec_(std::move(aggregate_spec)),
        pool_(spec_.rate_bits_per_s) {}

  const TunnelId& id() const { return id_; }
  const ResSpec& spec() const { return spec_; }
  double aggregate_rate() const { return spec_.rate_bits_per_s; }

  /// Domain whose broker registered this tunnel; labels the pool's
  /// rejection counter and boundary gauge. Call before concurrent use.
  void set_owner_domain(std::string domain) {
    pool_.set_owner_domain(std::move(domain));
  }

  /// Principals authorized to draw bandwidth from this tunnel. Setup-time
  /// only: authorization is not synchronized against concurrent allocate().
  void authorize(const std::string& user_dn) { authorized_.insert(user_dn); }
  bool is_authorized(const std::string& user_dn) const {
    return authorized_.contains(user_dn);
  }

  /// Allocate a per-flow slice inside the aggregate. Only the two end
  /// domains run this check — no intermediate signalling. Thread-safe:
  /// the pool's internal lock makes the check-and-commit atomic.
  Status allocate(const ReservationId& sub_id, const std::string& user_dn,
                  const TimeInterval& interval, double rate) {
    auto gate = admission_gate(user_dn, interval);
    if (!gate.ok()) return gate;
    return pool_.commit(sub_id, interval, rate);
  }

  /// One per-flow request inside a batch allocation.
  struct SubFlowRequest {
    ReservationId sub_id;
    std::string user_dn;
    TimeInterval interval;
    double rate = 0;
  };

  /// Admit a vector of per-flow requests against the aggregate in one
  /// pool-lock acquisition (sorted by interval start; see
  /// CapacityPool::commit_batch). Statuses come back in input order;
  /// authorization/lifetime failures never reach the pool.
  std::vector<Status> allocate_batch(
      const std::vector<SubFlowRequest>& flows) {
    std::vector<Status> statuses(flows.size(), Status::ok_status());
    std::vector<CapacityPool::BatchRequest> pool_batch;
    std::vector<std::size_t> pool_index;
    pool_batch.reserve(flows.size());
    pool_index.reserve(flows.size());
    for (std::size_t i = 0; i < flows.size(); ++i) {
      auto gate = admission_gate(flows[i].user_dn, flows[i].interval);
      if (!gate.ok()) {
        statuses[i] = std::move(gate);
        continue;
      }
      pool_batch.push_back(CapacityPool::BatchRequest{
          flows[i].sub_id, flows[i].interval, flows[i].rate});
      pool_index.push_back(i);
    }
    std::vector<Status> pool_statuses = pool_.commit_batch(pool_batch);
    for (std::size_t j = 0; j < pool_statuses.size(); ++j) {
      statuses[pool_index[j]] = std::move(pool_statuses[j]);
    }
    return statuses;
  }

  Status release(const ReservationId& sub_id) { return pool_.release(sub_id); }

  double allocated_peak(const TimeInterval& interval) const {
    return pool_.peak_committed(interval);
  }
  double headroom(const TimeInterval& interval) const {
    return pool_.headroom(interval);
  }
  std::size_t active_allocations() const { return pool_.commitment_count(); }

 private:
  /// Authorization + lifetime checks shared by allocate()/allocate_batch().
  Status admission_gate(const std::string& user_dn,
                        const TimeInterval& interval) const {
    if (!is_authorized(user_dn)) {
      return make_error(ErrorCode::kPolicyDenied,
                        user_dn + " not authorized for tunnel " + id_);
    }
    if (!spec_.interval.contains(interval.start) ||
        interval.end > spec_.interval.end) {
      return make_error(ErrorCode::kAdmissionRejected,
                        "sub-reservation outside tunnel lifetime");
    }
    return Status::ok_status();
  }

  TunnelId id_;
  ResSpec spec_;
  CapacityPool pool_;
  std::set<std::string> authorized_;
};

}  // namespace e2e::bb
