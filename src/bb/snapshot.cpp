#include "bb/snapshot.hpp"

#include <fstream>
#include <sstream>

#include "obs/audit.hpp"
#include "obs/instruments.hpp"
#include "obs/metrics.hpp"

namespace e2e::bb {

namespace {

constexpr char kSnapshotVersion[] = "e2e-bb-v1";

std::string header_line(const SnapshotMeta& meta) {
  return wal_render_flat_object(
      {{"type", "header"},
       {"version", kSnapshotVersion},
       {"domain", meta.domain},
       {"capacity", wal_format_double(meta.capacity_bits_per_s)},
       {"wal_next_seq", std::to_string(meta.wal_next_seq)},
       {"wal_head", meta.wal_head},
       {"next_id", std::to_string(meta.next_id)},
       {"next_serial", std::to_string(meta.next_cert_serial)},
       {"requests", std::to_string(meta.counters.requests)},
       {"granted", std::to_string(meta.counters.granted)},
       {"denied", std::to_string(meta.counters.denied_admission)},
       {"released", std::to_string(meta.counters.released)}});
}

Result<std::uint64_t> parse_u64_field(const WalFields& fields,
                                      const std::string& key) {
  auto raw = wal_field(fields, key);
  if (!raw.ok()) return raw.error();
  std::uint64_t value = 0;
  for (const char c : *raw) {
    if (c < '0' || c > '9') {
      return make_error(ErrorCode::kBadMessage,
                        "malformed " + key + ": " + *raw, "bb.snapshot");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (raw->empty()) {
    return make_error(ErrorCode::kBadMessage, "empty " + key, "bb.snapshot");
  }
  return value;
}

Result<std::int64_t> parse_time_field(const WalFields& fields,
                                      const std::string& key) {
  auto raw = wal_field(fields, key);
  if (!raw.ok()) return raw.error();
  std::string s = *raw;
  bool neg = false;
  if (!s.empty() && s[0] == '-') {
    neg = true;
    s.erase(0, 1);
  }
  WalFields shim{{key, s}};
  auto magnitude = parse_u64_field(shim, key);
  if (!magnitude.ok()) return magnitude.error();
  const auto v = static_cast<std::int64_t>(*magnitude);
  return neg ? -v : v;
}

Result<SnapshotMeta> parse_header(const WalFields& fields) {
  auto version = wal_field(fields, "version");
  if (!version.ok()) return version.error();
  if (*version != kSnapshotVersion) {
    return make_error(ErrorCode::kBadMessage,
                      "unsupported snapshot version " + *version,
                      "bb.snapshot");
  }
  SnapshotMeta meta;
  auto domain = wal_field(fields, "domain");
  auto capacity = wal_field(fields, "capacity");
  auto head = wal_field(fields, "wal_head");
  if (!domain.ok() || !capacity.ok() || !head.ok()) {
    return make_error(ErrorCode::kBadMessage, "snapshot header incomplete",
                      "bb.snapshot");
  }
  meta.domain = *domain;
  meta.wal_head = *head;
  auto cap = wal_parse_double(*capacity);
  if (!cap.ok()) return cap.error();
  meta.capacity_bits_per_s = *cap;
  auto next_seq = parse_u64_field(fields, "wal_next_seq");
  auto next_id = parse_u64_field(fields, "next_id");
  auto next_serial = parse_u64_field(fields, "next_serial");
  auto requests = parse_u64_field(fields, "requests");
  auto granted = parse_u64_field(fields, "granted");
  auto denied = parse_u64_field(fields, "denied");
  auto released = parse_u64_field(fields, "released");
  for (const auto* r : {&next_seq, &next_id, &next_serial, &requests,
                        &granted, &denied, &released}) {
    if (!r->ok()) return r->error();
  }
  meta.wal_next_seq = *next_seq;
  meta.next_id = *next_id;
  meta.next_cert_serial = *next_serial;
  meta.counters.requests = *requests;
  meta.counters.granted = *granted;
  meta.counters.denied_admission = *denied;
  meta.counters.released = *released;
  return meta;
}

}  // namespace

Status write_snapshot(const BandwidthBroker& broker, const WriteAheadLog* wal,
                      const std::string& path) {
  // Capture the WAL position FIRST: any state change whose record landed
  // before this point is guaranteed visible to the scans below (the
  // brokers apply state before appending), so replaying from wal_next_seq
  // can only re-apply — never miss — and replay is idempotent.
  SnapshotMeta meta;
  meta.domain = broker.domain();
  meta.capacity_bits_per_s = broker.capacity();
  meta.wal_next_seq = wal != nullptr ? wal->next_seq() : 1;
  meta.wal_head =
      wal != nullptr ? wal->head_hash() : WriteAheadLog::genesis_hash();
  meta.next_id = broker.next_id_value();
  meta.next_cert_serial = broker.next_certificate_serial_value();
  meta.counters = broker.counters();

  std::string body = header_line(meta);
  body += '\n';
  std::size_t lines = 1;
  for (const Reservation& resv : broker.all_reservations()) {
    WalFields fields = reservation_to_fields(resv);
    fields.insert(fields.begin(), {"type", "reservation"});
    body += wal_render_flat_object(fields);
    body += '\n';
    ++lines;
  }
  for (const Tunnel* tunnel : broker.all_tunnels()) {
    WalFields fields = reservation_to_fields(Reservation{
        tunnel->id(), tunnel->spec(), ReservationState::kGranted, ""});
    fields.insert(fields.begin(), {"type", "tunnel"});
    body += wal_render_flat_object(fields);
    body += '\n';
    ++lines;
    for (const std::string& user : tunnel->authorized()) {
      body += wal_render_flat_object(
          {{"type", "tunnel_auth"}, {"tunnel", tunnel->id()}, {"user", user}});
      body += '\n';
      ++lines;
    }
    for (const CapacityPool::CommitmentView& alloc : tunnel->allocations()) {
      body += wal_render_flat_object(
          {{"type", "tunnel_alloc"},
           {"tunnel", tunnel->id()},
           {"sub_id", alloc.key},
           {"start", std::to_string(alloc.interval.start)},
           {"end", std::to_string(alloc.interval.end)},
           {"rate", wal_format_double(alloc.rate)}});
      body += '\n';
      ++lines;
    }
  }
  // Integrity trailer: hash over every preceding byte. A truncated or
  // edited snapshot fails read_snapshot() instead of restoring bad state.
  body += wal_render_flat_object({{"type", "end"},
                                  {"lines", std::to_string(lines)},
                                  {"hash", obs::chain_sha256_hex(body)}});
  body += '\n';

  // tmp + fsync + rename + dir fsync: the snapshot must be durable BEFORE
  // snapshot_and_truncate drops the WAL records it covers — a crash that
  // kept the truncation but lost the snapshot data would make acked state
  // unrecoverable, breaking the WAL's own fsync-before-ack contract.
  // SyncMode::kNone (measurement runs, no durability guarantee) skips the
  // fsyncs to stay representative of that mode's write path.
  const bool durable =
      wal == nullptr || wal->sync_mode() == WriteAheadLog::SyncMode::kFsync;
  Status written = wal_replace_file_durable(path, body, durable);
  if (!written.ok()) return written;
  obs::MetricsRegistry::global()
      .counter(obs::kBbWalSnapshotsTotal)
      .increment();
  return Status::ok_status();
}

Result<SnapshotData> read_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return make_error(ErrorCode::kNotFound, "cannot open " + path,
                      "bb.snapshot");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();

  SnapshotData data;
  SnapshotTunnel* current_tunnel = nullptr;
  bool saw_header = false;
  bool saw_end = false;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  std::size_t body_lines = 0;
  while (pos < content.size()) {
    const std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) {
      return make_error(ErrorCode::kBadMessage,
                        "snapshot has a torn final line", "bb.snapshot");
    }
    const std::string line = content.substr(pos, eol - pos);
    const std::size_t line_start = pos;
    pos = eol + 1;
    if (line.empty()) continue;
    ++line_no;
    if (saw_end) {
      return make_error(ErrorCode::kBadMessage,
                        "snapshot has content after the end trailer",
                        "bb.snapshot");
    }
    auto fields = wal_parse_flat_object(line);
    if (!fields.ok()) return fields.error();
    auto type = wal_field(*fields, "type");
    if (!type.ok()) return type.error();

    if (*type == "header") {
      if (saw_header) {
        return make_error(ErrorCode::kBadMessage, "duplicate header",
                          "bb.snapshot");
      }
      auto meta = parse_header(*fields);
      if (!meta.ok()) return meta.error();
      data.meta = *meta;
      saw_header = true;
      ++body_lines;
      continue;
    }
    if (!saw_header) {
      return make_error(ErrorCode::kBadMessage,
                        "snapshot does not start with a header",
                        "bb.snapshot");
    }
    if (*type == "end") {
      auto hash = wal_field(*fields, "hash");
      auto lines = parse_u64_field(*fields, "lines");
      if (!hash.ok()) return hash.error();
      if (!lines.ok()) return lines.error();
      const std::string covered = content.substr(0, line_start);
      if (obs::chain_sha256_hex(covered) != *hash) {
        return make_error(ErrorCode::kBadMessage,
                          "snapshot integrity hash mismatch (corrupted or "
                          "tampered)",
                          "bb.snapshot");
      }
      if (*lines != body_lines) {
        return make_error(ErrorCode::kBadMessage,
                          "snapshot line count mismatch", "bb.snapshot");
      }
      saw_end = true;
      continue;
    }
    ++body_lines;
    if (*type == "reservation") {
      auto resv = reservation_from_fields(*fields);
      if (!resv.ok()) return resv.error();
      data.reservations.push_back(std::move(*resv));
      current_tunnel = nullptr;
      continue;
    }
    if (*type == "tunnel") {
      auto resv = reservation_from_fields(*fields);
      if (!resv.ok()) return resv.error();
      SnapshotTunnel tunnel;
      tunnel.id = resv->id;
      tunnel.spec = resv->spec;
      data.tunnels.push_back(std::move(tunnel));
      current_tunnel = &data.tunnels.back();
      continue;
    }
    if (*type == "tunnel_auth" || *type == "tunnel_alloc") {
      auto tunnel_id = wal_field(*fields, "tunnel");
      if (!tunnel_id.ok()) return tunnel_id.error();
      if (current_tunnel == nullptr || current_tunnel->id != *tunnel_id) {
        return make_error(ErrorCode::kBadMessage,
                          "snapshot line " + std::to_string(line_no) +
                              ": tunnel detail outside its tunnel block",
                          "bb.snapshot");
      }
      if (*type == "tunnel_auth") {
        auto user = wal_field(*fields, "user");
        if (!user.ok()) return user.error();
        current_tunnel->authorized.push_back(*user);
      } else {
        auto sub_id = wal_field(*fields, "sub_id");
        auto start = parse_time_field(*fields, "start");
        auto end = parse_time_field(*fields, "end");
        auto raw_rate = wal_field(*fields, "rate");
        if (!sub_id.ok()) return sub_id.error();
        if (!start.ok()) return start.error();
        if (!end.ok()) return end.error();
        if (!raw_rate.ok()) return raw_rate.error();
        auto rate = wal_parse_double(*raw_rate);
        if (!rate.ok()) return rate.error();
        current_tunnel->allocations.push_back(
            CapacityPool::CommitmentView{*sub_id, {*start, *end}, *rate});
      }
      continue;
    }
    return make_error(ErrorCode::kBadMessage,
                      "snapshot line " + std::to_string(line_no) +
                          ": unknown type " + *type,
                      "bb.snapshot");
  }
  if (!saw_end) {
    return make_error(ErrorCode::kBadMessage,
                      "snapshot has no end trailer (truncated)",
                      "bb.snapshot");
  }
  return data;
}

Result<std::size_t> snapshot_and_truncate(const BandwidthBroker& broker,
                                          WriteAheadLog& wal,
                                          const std::string& path) {
  auto written = write_snapshot(broker, &wal, path);
  if (!written.ok()) return written.error();
  auto snapshot = read_snapshot(path);
  if (!snapshot.ok()) return snapshot.error();
  return wal.truncate_through(snapshot->meta.wal_next_seq - 1);
}

}  // namespace e2e::bb
