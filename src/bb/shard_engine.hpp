// Thread-per-shard execution engine for shared-nothing admission.
//
// ISSUE 8 / ROADMAP "Fix parallel scaling": the PR-5 design let every
// caller thread lock into shared pool state, so admission scaled with
// lock+cache-line transfer cost, not cores. This engine inverts the
// ownership: each shard of broker state (the broker's own pools, each
// tunnel's pool) is OWNED by exactly one worker thread, and callers route
// requests to the owner's MPSC queue instead of locking the state
// themselves. Owned state stays resident in its owner core's cache; the
// only cross-core traffic is the request/completion handoff — the
// Hummingbird discipline (PAPERS.md) applied to our CapacityPool layer.
//
// Shapes of use:
//   - run_on(worker, fn)  — synchronous: enqueue, block for the result.
//     Runs fn inline when the calling thread IS that worker (a worker
//     task may re-enter broker code; inline execution keeps that
//     deadlock-free).
//   - post(worker, task)  — asynchronous fire-and-forget; callers gather
//     completions themselves (see BandwidthBroker::allocate_across_tunnels,
//     which pipelines one task per owning worker and joins once).
//
// The WAL group-commit interaction is deliberate: workers only APPEND
// (buffer under the log mutex, microseconds); the blocking commit/fsync
// runs on the CALLER's thread after the worker replies. A worker never
// sleeps in an fsync, so durability cannot serialize the shard fleet.
//
// Owned containers keep their internal mutexes (uncontended when routed,
// so ~free) — correctness never depends on routing, which keeps every
// non-engine caller (tests, recovery, purge) valid unchanged.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

namespace e2e::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace e2e::obs

namespace e2e::bb {

class ShardEngine {
 public:
  using Task = std::function<void()>;

  /// Spawns `workers` owner threads (>= 1; 0 is clamped to 1).
  ///
  /// `register_metrics` controls whether this engine publishes the
  /// e2e_bb_shard_* instruments. Exactly one engine per process should —
  /// the broker's admission engine. Auxiliary engines reusing the same
  /// queue/worker machinery (the daemon's RPC worker pool) pass false so
  /// the admission series stay attributable to admission; their stats()
  /// mirrors keep working either way.
  explicit ShardEngine(std::size_t workers, bool register_metrics = true);
  /// Drains every queue, then joins the workers.
  ~ShardEngine();
  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Enqueue `task` onto `worker`'s queue and return immediately.
  void post(std::size_t worker, Task task);

  /// Run `fn` on `worker` and block until it completes, returning its
  /// result. Executes inline when the calling thread already is that
  /// worker (re-entrant broker paths must not self-deadlock).
  template <typename F>
  auto run_on(std::size_t worker, F&& fn) -> std::invoke_result_t<F&> {
    using R = std::invoke_result_t<F&>;
    if (current_worker() == static_cast<std::ptrdiff_t>(worker)) {
      return fn();
    }
    Completion done;
    if constexpr (std::is_void_v<R>) {
      post(worker, [&] {
        fn();
        done.signal();
      });
      done.wait();
    } else {
      std::optional<R> result;
      post(worker, [&] {
        result.emplace(fn());
        done.signal();
      });
      done.wait();
      return std::move(*result);
    }
  }

  /// True when the calling thread is one of THIS engine's workers.
  bool on_worker_thread() const { return current_worker() >= 0; }

  /// Index of the calling worker within this engine, -1 for foreign
  /// threads.
  std::ptrdiff_t current_worker() const;

  /// Tasks queued across all workers right now (mirrors the
  /// e2e_bb_shard_queue_depth gauge).
  std::size_t queue_depth() const {
    return depth_.load(std::memory_order_relaxed);
  }

  /// Deepest the combined queue has ever been (mirrors the
  /// e2e_bb_shard_queue_depth_highwater gauge). Monotone per engine.
  std::size_t queue_depth_highwater() const {
    return depth_highwater_.load(std::memory_order_relaxed);
  }

  /// Point-in-time introspection of one worker, for the admin plane's
  /// /statz document. All fields are relaxed-atomic reads — consistent
  /// enough for operators, free for the workers.
  struct WorkerStats {
    std::size_t queue_depth = 0;      // tasks waiting on this worker now
    std::uint64_t tasks_total = 0;    // tasks ever drained by this worker
    std::uint64_t busy_us_total = 0;  // wall time spent running tasks
  };

  /// One entry per worker, indexed by worker id. Safe from any thread.
  std::vector<WorkerStats> stats() const;

 private:
  /// Stack-allocated completion latch for run_on (no promise/future heap
  /// traffic on the admission path).
  struct Completion {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    void signal() {
      // notify under the lock: this latch lives on the waiter's stack,
      // and the waiter may destroy it the instant wait() returns. An
      // unlocked notify could still be touching cv at that point.
      std::lock_guard lock(m);
      done = true;
      cv.notify_one();
    }
    void wait() {
      std::unique_lock lock(m);
      cv.wait(lock, [&] { return done; });
    }
  };

  struct Worker {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Task> queue;
    bool stop = false;
    /// e2e_bb_shard_requests_total{worker=i}, bumped once per drained
    /// batch, not per task.
    obs::Counter* requests = nullptr;
    /// e2e_bb_shard_busy_us_total{worker=i}, wall time running tasks,
    /// bumped once per drained batch.
    obs::Counter* busy_us = nullptr;
    /// Per-worker mirrors of the instruments above, readable without the
    /// registry (stats() feeds /statz from these).
    std::atomic<std::size_t> depth{0};
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> busy{0};
    std::thread thread;
  };

  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::size_t> depth_{0};
  std::atomic<std::size_t> depth_highwater_{0};
  obs::Gauge* depth_gauge_ = nullptr;
  obs::Gauge* highwater_gauge_ = nullptr;
  obs::Histogram* drain_batch_ = nullptr;
};

}  // namespace e2e::bb
