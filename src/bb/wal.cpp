#include "bb/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>
#include <tuple>

#include "obs/audit.hpp"
#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace e2e::bb {

namespace {

using obs::chain_json_escape;
using obs::chain_sha256_hex;
using obs::kChainHashMarker;
using obs::kChainHexDigestLen;

constexpr std::size_t kHashMarkerLen = sizeof(obs::kChainHashMarker) - 1;

void fields_to_json(const WalFields& fields, std::string& out) {
  out += '{';
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += chain_json_escape(fields[i].first);
    out += "\":\"";
    out += chain_json_escape(fields[i].second);
    out += '"';
  }
  out += '}';
}

/// The per-record payload between the `seq` field and the `prev` link:
/// everything that does NOT depend on the record's position in the chain.
/// append() renders this part OUTSIDE the log mutex (the field escaping
/// dominates encoding cost — the nosync-slower-than-off anomaly in
/// BENCH_admission.json was every appender serializing through the lock
/// to run it); canonical_body() splices the same bytes between the
/// position-dependent prefix/suffix, so the chain hash covers identical
/// bytes either way.
void append_payload(const WalRecord& record, std::string& out) {
  out += ",\"at\":";
  out += std::to_string(record.at);
  out += ",\"domain\":\"";
  out += chain_json_escape(record.domain);
  out += "\",\"kind\":\"";
  out += chain_json_escape(record.kind);
  out += "\",\"fields\":";
  fields_to_json(record.fields, out);
  if (!record.items.empty()) {
    out += ",\"items\":[";
    for (std::size_t i = 0; i < record.items.size(); ++i) {
      if (i > 0) out += ',';
      fields_to_json(record.items[i], out);
    }
    out += ']';
  }
}

/// The record as JSON *without* the trailing hash field — the exact bytes
/// the chain hash covers (same discipline as obs/audit.cpp).
std::string canonical_body(const WalRecord& record) {
  std::string out;
  out.reserve(192 + 64 * (record.fields.size() +
                          record.items.size() * 8));
  out += "{\"seq\":";
  out += std::to_string(record.seq);
  append_payload(record, out);
  out += ",\"prev\":\"";
  out += record.prev_hash;
  out += "\"}";
  return out;
}

// --- strict parser for the writer's exact format -----------------------------

struct Cursor {
  const std::string& s;
  std::size_t pos = 0;

  bool literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (s.compare(pos, len, lit) != 0) return false;
    pos += len;
    return true;
  }
  bool peek(char c) const { return pos < s.size() && s[pos] == c; }
};

bool parse_u64(Cursor& c, std::uint64_t& out) {
  const std::size_t start = c.pos;
  std::uint64_t v = 0;
  while (c.pos < c.s.size() && c.s[c.pos] >= '0' && c.s[c.pos] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(c.s[c.pos] - '0');
    ++c.pos;
  }
  if (c.pos == start) return false;
  out = v;
  return true;
}

bool parse_i64(Cursor& c, std::int64_t& out) {
  bool neg = false;
  if (c.peek('-')) {
    neg = true;
    ++c.pos;
  }
  std::uint64_t v = 0;
  if (!parse_u64(c, v)) return false;
  out = neg ? -static_cast<std::int64_t>(v) : static_cast<std::int64_t>(v);
  return true;
}

/// Parse a JSON string body (cursor past the opening quote on entry,
/// past the closing quote on exit). Understands the writer's escapes.
bool parse_string(Cursor& c, std::string& out) {
  out.clear();
  while (c.pos < c.s.size()) {
    const char ch = c.s[c.pos++];
    if (ch == '"') return true;
    if (ch == '\\') {
      if (c.pos >= c.s.size()) return false;
      const char esc = c.s[c.pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        default: return false;
      }
    } else {
      out += ch;
    }
  }
  return false;  // unterminated
}

bool parse_fields_object(Cursor& c, WalFields& out) {
  out.clear();
  if (!c.literal("{")) return false;
  if (c.peek('}')) {
    ++c.pos;
    return true;
  }
  for (;;) {
    std::string key;
    std::string value;
    if (!c.literal("\"") || !parse_string(c, key)) return false;
    if (!c.literal(":\"") || !parse_string(c, value)) return false;
    out.emplace_back(std::move(key), std::move(value));
    if (c.peek(',')) {
      ++c.pos;
      continue;
    }
    return c.literal("}");
  }
}

/// Parse one canonical body (the line with the hash field removed) back
/// into a record. Returns false on any deviation from the writer's format.
bool parse_body(const std::string& body, WalRecord& record) {
  Cursor c{body};
  if (!c.literal("{\"seq\":") || !parse_u64(c, record.seq)) return false;
  if (!c.literal(",\"at\":") || !parse_i64(c, record.at)) return false;
  if (!c.literal(",\"domain\":\"") || !parse_string(c, record.domain)) {
    return false;
  }
  if (!c.literal(",\"kind\":\"") || !parse_string(c, record.kind)) {
    return false;
  }
  if (!c.literal(",\"fields\":") || !parse_fields_object(c, record.fields)) {
    return false;
  }
  record.items.clear();
  if (c.literal(",\"items\":[")) {
    for (;;) {
      WalFields item;
      if (!parse_fields_object(c, item)) return false;
      record.items.push_back(std::move(item));
      if (c.peek(',')) {
        ++c.pos;
        continue;
      }
      break;
    }
    if (!c.literal("]")) return false;
  }
  if (!c.literal(",\"prev\":\"")) return false;
  if (c.pos + kChainHexDigestLen > body.size()) return false;
  record.prev_hash = body.substr(c.pos, kChainHexDigestLen);
  c.pos += kChainHexDigestLen;
  return c.literal("\"}") && c.pos == body.size();
}

/// Validate one complete line: well-formed hash field, hash covering
/// prev+body, parseable body. On success fills `record` (including hash).
bool parse_line(const std::string& line, WalRecord& record) {
  const std::size_t marker = line.rfind(kChainHashMarker);
  if (marker == std::string::npos ||
      marker + kHashMarkerLen + kChainHexDigestLen + 2 != line.size() ||
      line.compare(line.size() - 2, 2, "\"}") != 0) {
    return false;
  }
  const std::string claimed =
      line.substr(marker + kHashMarkerLen, kChainHexDigestLen);
  const std::string body = line.substr(0, marker) + "}";
  if (!parse_body(body, record)) return false;
  if (chain_sha256_hex(record.prev_hash + body) != claimed) return false;
  record.hash = claimed;
  return true;
}

Status write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return make_error(ErrorCode::kInternal,
                        std::string("wal write failed: ") +
                            std::strerror(errno),
                        "bb.wal");
    }
    off += static_cast<std::size_t>(n);
  }
  return {};
}

Result<std::string> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return make_error(ErrorCode::kNotFound, "cannot open " + path, "bb.wal");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Status fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return make_error(ErrorCode::kInternal,
                      std::string("cannot open dir ") + dir + ": " +
                          std::strerror(errno),
                      "bb.wal");
  }
  Status status;
  if (::fsync(fd) != 0) {
    status = make_error(ErrorCode::kInternal,
                        std::string("dir fsync failed: ") +
                            std::strerror(errno),
                        "bb.wal");
  }
  ::close(fd);
  return status;
}

}  // namespace

Status wal_replace_file_durable(const std::string& path,
                                const std::string& content, bool durable) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return make_error(ErrorCode::kInternal,
                      std::string("cannot open ") + tmp + ": " +
                          std::strerror(errno),
                      "bb.wal");
  }
  Status status = write_all(fd, content);
  // fsync BEFORE rename: the rename must never make a file visible whose
  // data could still be lost (a crash would then leave an empty/corrupt
  // replacement where the old state used to be).
  if (status.ok() && durable && ::fsync(fd) != 0) {
    status = make_error(ErrorCode::kInternal,
                        std::string("fsync failed for ") + tmp + ": " +
                            std::strerror(errno),
                        "bb.wal");
  }
  ::close(fd);
  if (!status.ok()) return status;
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return make_error(ErrorCode::kInternal,
                      std::string("cannot rename ") + tmp + " to " + path +
                          ": " + std::strerror(errno),
                      "bb.wal");
  }
  // ... and fsync the directory AFTER rename, so the rename itself is
  // durable before the caller acts on it (e.g. truncates the WAL).
  return durable ? fsync_parent_dir(path) : Status::ok_status();
}

std::string wal_format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Result<double> wal_parse_double(const std::string& s) {
  if (s.empty()) {
    return make_error(ErrorCode::kBadMessage, "empty numeric field",
                      "bb.wal");
  }
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    return make_error(ErrorCode::kBadMessage,
                      "malformed numeric field: " + s, "bb.wal");
  }
  return v;
}

Result<std::string> wal_field(const WalFields& fields,
                              const std::string& key) {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return make_error(ErrorCode::kBadMessage, "missing field " + key,
                    "bb.wal");
}

std::string wal_render_flat_object(const WalFields& fields) {
  std::string out;
  fields_to_json(fields, out);
  return out;
}

Result<WalFields> wal_parse_flat_object(const std::string& line) {
  Cursor c{line};
  WalFields out;
  if (!parse_fields_object(c, out) || c.pos != line.size()) {
    return make_error(ErrorCode::kBadMessage,
                      "malformed snapshot line: " + line, "bb.wal");
  }
  return out;
}

WalFields reservation_to_fields(const Reservation& reservation) {
  const ResSpec& spec = reservation.spec;
  return {
      {"id", reservation.id},
      {"upstream", reservation.upstream_domain},
      {"user", spec.user},
      {"src", spec.source_domain},
      {"dst", spec.destination_domain},
      {"rate", wal_format_double(spec.rate_bits_per_s)},
      {"burst", wal_format_double(spec.burst_bits)},
      {"start", std::to_string(spec.interval.start)},
      {"end", std::to_string(spec.interval.end)},
      {"max_cost", wal_format_double(spec.max_cost)},
      {"cpu", spec.linked_cpu_reservation},
      {"tunnel", spec.is_tunnel ? "1" : "0"},
  };
}

Result<Reservation> reservation_from_fields(const WalFields& fields) {
  Reservation out;
  out.state = ReservationState::kGranted;
  auto get = [&](const char* key) { return wal_field(fields, key); };
  auto id = get("id");
  if (!id.ok()) return id.error();
  out.id = *id;
  auto upstream = get("upstream");
  if (!upstream.ok()) return upstream.error();
  out.upstream_domain = *upstream;
  ResSpec& spec = out.spec;
  auto user = get("user");
  auto src = get("src");
  auto dst = get("dst");
  auto cpu = get("cpu");
  auto tunnel = get("tunnel");
  if (!user.ok() || !src.ok() || !dst.ok() || !cpu.ok() || !tunnel.ok()) {
    return make_error(ErrorCode::kBadMessage,
                      "reservation record missing fields", "bb.wal");
  }
  spec.user = *user;
  spec.source_domain = *src;
  spec.destination_domain = *dst;
  spec.linked_cpu_reservation = *cpu;
  spec.is_tunnel = (*tunnel == "1");
  for (auto [key, target] :
       {std::pair<const char*, double*>{"rate", &spec.rate_bits_per_s},
        {"burst", &spec.burst_bits},
        {"max_cost", &spec.max_cost}}) {
    auto raw = get(key);
    if (!raw.ok()) return raw.error();
    auto value = wal_parse_double(*raw);
    if (!value.ok()) return value.error();
    *target = *value;
  }
  for (auto [key, target] :
       {std::pair<const char*, SimTime*>{"start", &spec.interval.start},
        {"end", &spec.interval.end}}) {
    auto raw = get(key);
    if (!raw.ok()) return raw.error();
    Cursor c{*raw};
    if (!parse_i64(c, *target) || c.pos != raw->size()) {
      return make_error(ErrorCode::kBadMessage,
                        "malformed time field: " + *raw, "bb.wal");
    }
  }
  return out;
}

std::string WalRecord::to_jsonl() const {
  std::string body = canonical_body(*this);
  body.pop_back();  // drop the closing '}' to splice the hash in
  return body + kChainHashMarker + hash + "\"}";
}

WriteAheadLog::WriteAheadLog(std::string path, SyncMode mode, int fd,
                             std::uint64_t next_seq, std::string head_hash)
    : path_(std::move(path)),
      mode_(mode),
      fd_(fd),
      next_seq_(next_seq),
      durable_seq_(next_seq - 1),
      head_hash_(std::move(head_hash)) {
  ensure_instruments();
}

WriteAheadLog::~WriteAheadLog() {
  {
    // Flush anything appended but never committed (best effort — those
    // records were never acked, but keeping them is harmless because
    // replay is idempotent). Never after a latched failure: the failed
    // batch is gone, so flushing later appends would put a sequence gap
    // on disk.
    std::lock_guard lock(mutex_);
    if (!buffer_.empty() && fail_status_.ok()) {
      (void)write_all(fd_, buffer_);
      buffer_.clear();
    }
  }
  if (fd_ >= 0) ::close(fd_);
}

void WriteAheadLog::ensure_instruments() {
  auto& registry = obs::MetricsRegistry::global();
  bytes_counter_ = &registry.counter(obs::kBbWalBytesTotal);
  fsyncs_counter_ = &registry.counter(obs::kBbWalFsyncsTotal);
  group_size_hist_ = &registry.histogram(obs::kBbWalGroupCommitRecords);
  constexpr const char* kKinds[] = {
      wal_kind::kAdmit,          wal_kind::kAdmitBatch,
      wal_kind::kRelease,        wal_kind::kReleaseBatch,
      wal_kind::kTunnelRegister, wal_kind::kTunnelAuthorize,
      wal_kind::kTunnelAlloc,    wal_kind::kTunnelAllocBatch,
      wal_kind::kTunnelRelease,  wal_kind::kDelegationSerial,
  };
  static_assert(std::size(kKinds) ==
                std::tuple_size_v<decltype(records_counters_)>);
  for (std::size_t i = 0; i < std::size(kKinds); ++i) {
    records_counters_[i] = {
        kKinds[i],
        &registry.counter(obs::kBbWalRecordsTotal, {{"kind", kKinds[i]}})};
  }
}

obs::Counter* WriteAheadLog::records_counter_for(
    const std::string& kind) const {
  for (const auto& [name, counter] : records_counters_) {
    if (kind == name) return counter;
  }
  // Unknown kinds never occur in practice (the wal_kind set is closed);
  // keep the slow path so a future kind still counts somewhere.
  return &obs::MetricsRegistry::global().counter(obs::kBbWalRecordsTotal,
                                                 {{"kind", kind}});
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::open(
    const std::string& path, SyncMode mode, std::uint64_t min_next_seq,
    const std::string& head_hash_floor) {
  std::uint64_t next_seq = std::max<std::uint64_t>(1, min_next_seq);
  std::string head_hash =
      head_hash_floor == genesis_hash() ? std::string() : head_hash_floor;
  auto content = slurp(path);
  if (content.ok()) {
    auto read = read_content(*content);
    if (!read.ok()) return read.error();
    if (read->torn_tail) {
      // Drop the unacked torn fragment on disk so appends continue from a
      // clean line boundary.
      std::size_t good_bytes = 0;
      for (const WalRecord& record : read->records) {
        good_bytes += record.to_jsonl().size() + 1;
      }
      if (::truncate(path.c_str(), static_cast<off_t>(good_bytes)) != 0) {
        return make_error(ErrorCode::kInternal,
                          std::string("wal truncate failed: ") +
                              std::strerror(errno),
                          "bb.wal");
      }
    }
    if (!read->records.empty()) {
      next_seq = std::max(next_seq, read->records.back().seq + 1);
      head_hash = read->records.back().hash;
    }
  }
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return make_error(ErrorCode::kInternal,
                      std::string("cannot open wal ") + path + ": " +
                          std::strerror(errno),
                      "bb.wal");
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, mode, fd, next_seq, std::move(head_hash)));
}

std::uint64_t WriteAheadLog::append(const std::string& domain,
                                    const std::string& kind, WalFields fields,
                                    std::vector<WalFields> items) {
  // Render everything that doesn't depend on the record's chain position
  // BEFORE taking the log mutex. Field escaping dominates encoding cost;
  // doing it under the lock serialized every concurrent appender (the WAL
  // "nosync slower than off" anomaly).
  WalRecord record;
  record.at = obs::current_span_ref().at;
  record.domain = domain;
  record.kind = kind;
  record.fields = std::move(fields);
  record.items = std::move(items);
  std::string payload;
  payload.reserve(192 + 64 * (record.fields.size() +
                              record.items.size() * 8));
  append_payload(record, payload);

  std::uint64_t seq = 0;
  std::size_t line_bytes = 0;
  {
    std::lock_guard lock(mutex_);
    record.seq = seq = next_seq_++;
    record.prev_hash = head_hash_.empty() ? genesis_hash() : head_hash_;
    // Byte-identical to canonical_body(record): position-dependent prefix
    // + the pre-rendered payload + the prev link.
    std::string body;
    body.reserve(payload.size() + 2 * kChainHexDigestLen + 64);
    body += "{\"seq\":";
    body += std::to_string(record.seq);
    body += payload;
    body += ",\"prev\":\"";
    body += record.prev_hash;
    body += "\"}";
    record.hash = chain_sha256_hex(record.prev_hash + body);
    head_hash_ = record.hash;
    body.pop_back();  // drop the closing '}' to splice the hash in
    body += kChainHashMarker;
    body += record.hash;
    body += "\"}";
    line_bytes = body.size() + 1;
    buffer_ += body;
    buffer_ += '\n';
    ++buffered_records_;
  }
  records_counter_for(kind)->increment();
  bytes_counter_->increment(line_bytes);
  return seq;
}

Status WriteAheadLog::commit(std::uint64_t lsn) {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (durable_seq_ >= lsn) return {};  // a leader already covered us
    if (!fail_status_.ok()) return fail_status_;  // latched: never ack
    if (!sync_in_flight_) break;         // become the next leader
    cv_.wait(lock,
             [&] { return durable_seq_ >= lsn || !sync_in_flight_; });
  }
  sync_in_flight_ = true;
  std::string batch = std::move(buffer_);
  buffer_.clear();
  const std::size_t group = buffered_records_;
  buffered_records_ = 0;
  const std::uint64_t covered = next_seq_ - 1;  // everything appended so far
  const int fd = fd_;  // snapshot under the lock (truncate may swap fd_)
  const bool injected_failure = fail_next_commit_for_testing_;
  fail_next_commit_for_testing_ = false;
  lock.unlock();

  Status status =
      injected_failure
          ? Status(make_error(ErrorCode::kInternal,
                              "wal write failed: injected fault", "bb.wal"))
          : write_all(fd, batch);
  if (status.ok() && mode_ == SyncMode::kFsync) {
    if (::fsync(fd) != 0) {
      status = make_error(ErrorCode::kInternal,
                          std::string("wal fsync failed: ") +
                              std::strerror(errno),
                          "bb.wal");
    }
  }

  lock.lock();
  if (status.ok()) {
    durable_seq_ = std::max(durable_seq_, covered);
  } else {
    // The drained batch is lost; anything appended after it would chain
    // past the hole (sequence gap + prev-hash break on disk, which would
    // poison every later acked record at recovery time). Latch instead:
    // all further commits fail with this error.
    fail_status_ = status;
  }
  sync_in_flight_ = false;
  cv_.notify_all();
  lock.unlock();

  if (status.ok() && group > 0 && mode_ == SyncMode::kFsync) {
    fsyncs_counter_->increment();
    group_size_hist_->observe(static_cast<double>(group));
  }
  return status;
}

Status WriteAheadLog::log(const std::string& domain, const std::string& kind,
                          WalFields fields, std::vector<WalFields> items) {
  return commit(append(domain, kind, std::move(fields), std::move(items)));
}

void WriteAheadLog::inject_commit_failure_for_testing() {
  std::lock_guard lock(mutex_);
  fail_next_commit_for_testing_ = true;
}

std::uint64_t WriteAheadLog::next_seq() const {
  std::lock_guard lock(mutex_);
  return next_seq_;
}

std::string WriteAheadLog::head_hash() const {
  std::lock_guard lock(mutex_);
  return head_hash_.empty() ? genesis_hash() : head_hash_;
}

Result<std::size_t> WriteAheadLog::truncate_through(
    std::uint64_t covered_seq) {
  std::unique_lock lock(mutex_);
  // Wait out any in-flight group-commit leader: it writes to fd_ OUTSIDE
  // the lock, and rewriting/renaming the file underneath it would send
  // its acked batch to an unlinked inode (and detach the in-memory chain
  // head from the file). Once the flag is clear and we hold the mutex, no
  // new leader can start until we return — the whole rewrite below runs
  // with the file quiescent.
  cv_.wait(lock, [&] { return !sync_in_flight_; });
  if (!fail_status_.ok()) return fail_status_.error();
  // Make everything appended durable first so the rewrite sees it.
  if (!buffer_.empty()) {
    Status status = write_all(fd_, buffer_);
    if (!status.ok()) return status.error();
    buffer_.clear();
    buffered_records_ = 0;
    durable_seq_ = next_seq_ - 1;
  }
  if (mode_ == SyncMode::kFsync) (void)::fsync(fd_);

  auto content = slurp(path_);
  if (!content.ok()) return content.error();
  auto read = read_content(*content);
  if (!read.ok()) return read.error();

  std::string surviving;
  std::size_t dropped = 0;
  for (const WalRecord& record : read->records) {
    if (record.seq <= covered_seq) {
      ++dropped;
      continue;
    }
    surviving += record.to_jsonl();
    surviving += '\n';
  }

  // Rewrite atomically and durably, then move appends to the new fd.
  Status replaced = wal_replace_file_durable(path_, surviving,
                                             mode_ == SyncMode::kFsync);
  if (!replaced.ok()) return replaced.error();
  const int fd = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    return make_error(ErrorCode::kInternal,
                      std::string("cannot reopen wal ") + path_ + ": " +
                          std::strerror(errno),
                      "bb.wal");
  }
  ::close(fd_);
  fd_ = fd;
  lock.unlock();

  if (dropped > 0) {
    obs::MetricsRegistry::global()
        .counter(obs::kBbWalTruncatedRecordsTotal)
        .increment(dropped);
  }
  return dropped;
}

Result<std::size_t> WriteAheadLog::verify_file(const std::string& path) {
  auto content = slurp(path);
  if (!content.ok()) return content.error();
  auto read = read_content(*content);
  if (!read.ok()) return read.error();
  return read->records.size();
}

Result<WriteAheadLog::ReadResult> WriteAheadLog::read_file(
    const std::string& path) {
  auto content = slurp(path);
  if (!content.ok()) return content.error();
  return read_content(*content);
}

Result<WriteAheadLog::ReadResult> WriteAheadLog::read_content(
    const std::string& content) {
  ReadResult out;
  std::string expected_prev;  // empty = accept any (post-truncation file)
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < content.size()) {
    const std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) {
      // Trailing bytes without a newline: a torn final write. The record
      // was never acked (the ack waits on fsync of the full line), so
      // dropping it is safe.
      out.torn_tail = true;
      return out;
    }
    const std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    ++line_no;
    WalRecord record;
    if (!parse_line(line, record)) {
      // A newline-terminated line that fails verification is corruption,
      // not a torn write — a crash tears the FINAL line at a byte
      // boundary, leaving no trailing newline (the no-eol case above).
      // Treating a complete-but-malformed final line as droppable would
      // let an edit to the last acked record pass as a "crash".
      return make_error(ErrorCode::kBadMessage,
                        "wal line " + std::to_string(line_no) +
                            ": record hash mismatch or malformed record "
                            "(tampered log, refusing to replay)",
                        "bb.wal");
    }
    if (!expected_prev.empty() && record.prev_hash != expected_prev) {
      return make_error(ErrorCode::kBadMessage,
                        "wal line " + std::to_string(line_no) +
                            ": chain link broken (prev mismatch)",
                        "bb.wal");
    }
    if (!out.records.empty() &&
        record.seq != out.records.back().seq + 1) {
      return make_error(ErrorCode::kBadMessage,
                        "wal line " + std::to_string(line_no) +
                            ": sequence gap (missing records)",
                        "bb.wal");
    }
    expected_prev = record.hash;
    out.records.push_back(std::move(record));
  }
  return out;
}

const std::string& WriteAheadLog::genesis_hash() {
  return obs::AuditLog::genesis_hash();
}

}  // namespace e2e::bb
