#include "bb/reservation.hpp"

#include "common/tlv.hpp"

namespace e2e::bb {

namespace {
constexpr tlv::Tag kTagUser = 0x0301;
constexpr tlv::Tag kTagSource = 0x0302;
constexpr tlv::Tag kTagDestination = 0x0303;
constexpr tlv::Tag kTagRate = 0x0304;
constexpr tlv::Tag kTagBurst = 0x0305;
constexpr tlv::Tag kTagStart = 0x0306;
constexpr tlv::Tag kTagEnd = 0x0307;
constexpr tlv::Tag kTagMaxCost = 0x0308;
constexpr tlv::Tag kTagCpuResv = 0x0309;
constexpr tlv::Tag kTagIsTunnel = 0x030a;
}  // namespace

Bytes ResSpec::encode() const {
  tlv::Writer w;
  w.put_string(kTagUser, user);
  w.put_string(kTagSource, source_domain);
  w.put_string(kTagDestination, destination_domain);
  w.put_f64(kTagRate, rate_bits_per_s);
  w.put_f64(kTagBurst, burst_bits);
  w.put_i64(kTagStart, interval.start);
  w.put_i64(kTagEnd, interval.end);
  w.put_f64(kTagMaxCost, max_cost);
  w.put_string(kTagCpuResv, linked_cpu_reservation);
  w.put_bool(kTagIsTunnel, is_tunnel);
  return w.take();
}

Result<ResSpec> ResSpec::decode(BytesView data) {
  tlv::Reader r(data);
  ResSpec s;
  auto user = r.read_string(kTagUser);
  if (!user) return user.error();
  s.user = *user;
  auto src = r.read_string(kTagSource);
  if (!src) return src.error();
  s.source_domain = *src;
  auto dst = r.read_string(kTagDestination);
  if (!dst) return dst.error();
  s.destination_domain = *dst;
  auto rate = r.read_f64(kTagRate);
  if (!rate) return rate.error();
  s.rate_bits_per_s = *rate;
  auto burst = r.read_f64(kTagBurst);
  if (!burst) return burst.error();
  s.burst_bits = *burst;
  auto start = r.read_i64(kTagStart);
  if (!start) return start.error();
  auto end = r.read_i64(kTagEnd);
  if (!end) return end.error();
  s.interval = TimeInterval{*start, *end};
  auto cost = r.read_f64(kTagMaxCost);
  if (!cost) return cost.error();
  s.max_cost = *cost;
  auto cpu = r.read_string(kTagCpuResv);
  if (!cpu) return cpu.error();
  s.linked_cpu_reservation = *cpu;
  auto tunnel = r.read_bool(kTagIsTunnel);
  if (!tunnel) return tunnel.error();
  s.is_tunnel = *tunnel;
  if (!r.at_end()) {
    return make_error(ErrorCode::kBadMessage, "ResSpec: trailing bytes");
  }
  return s;
}

std::string ResSpec::to_text() const {
  return (is_tunnel ? std::string("tunnel ") : std::string("flow ")) +
         std::to_string(rate_bits_per_s / 1e6) + " Mb/s " + source_domain +
         "->" + destination_domain + " for " + user;
}

}  // namespace e2e::bb
