// Slab arena allocator for admission bookkeeping nodes.
//
// ISSUE 8: a broker holding a million live reservations spends a large
// slice of its footprint (and its cache misses) on malloc'd map nodes —
// commitment entries in CapacityPool and ReservationRecords in the broker
// shards. This allocator carves fixed-size blocks out of 64 KiB slabs and
// recycles freed blocks through per-size free lists: nodes of one
// container pack contiguously, there is no per-node malloc header, and a
// freed node is reused before a fresh slab byte is touched.
//
// NOT thread-safe by itself. Every container using it is mutated under
// its owner's serialization (the pool mutex, the record-shard mutex, or
// the owning shard worker of the thread-per-shard engine) — the same
// discipline that already guards the container.
//
// Allocator semantics:
//   - Copies share the arena (shared_ptr'd state), so a container and its
//     node handles always deallocate into the slab set they came from.
//   - Container copies get a FRESH arena (select_on_container_copy_
//     construction): a copied pool runs under a different mutex, and two
//     mutexes over one non-thread-safe arena would race.
//   - Move assignment propagates the allocator (steals nodes + slabs).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace e2e::bb {

namespace arena_detail {

inline constexpr std::size_t kSlabBytes = 64 * 1024;
inline constexpr std::size_t kAlign = 16;
/// Blocks above this fall through to operator new (none of the admission
/// node types get near it; the cap bounds free-list bookkeeping).
inline constexpr std::size_t kMaxBlockBytes = 512;
inline constexpr std::size_t kSizeClasses = kMaxBlockBytes / kAlign;

struct State {
  std::vector<std::unique_ptr<std::byte[]>> slabs;
  std::size_t slab_used = kSlabBytes;  // current slab's bump offset
  void* free_lists[kSizeClasses] = {};

  void* allocate(std::size_t bytes) {
    const std::size_t cls = (bytes + kAlign - 1) / kAlign;
    if (cls == 0 || cls > kSizeClasses) return ::operator new(bytes);
    if (void* head = free_lists[cls - 1]) {
      free_lists[cls - 1] = *static_cast<void**>(head);
      return head;
    }
    const std::size_t block = cls * kAlign;
    if (slab_used + block > kSlabBytes) {
      slabs.push_back(std::make_unique<std::byte[]>(kSlabBytes));
      slab_used = 0;
    }
    void* p = slabs.back().get() + slab_used;
    slab_used += block;
    return p;
  }

  void deallocate(void* p, std::size_t bytes) {
    const std::size_t cls = (bytes + kAlign - 1) / kAlign;
    if (cls == 0 || cls > kSizeClasses) {
      ::operator delete(p);
      return;
    }
    *static_cast<void**>(p) = free_lists[cls - 1];
    free_lists[cls - 1] = p;
  }

  /// Bytes held in slabs (footprint reporting).
  std::size_t slab_bytes() const { return slabs.size() * kSlabBytes; }
};

}  // namespace arena_detail

template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::false_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() : state_(std::make_shared<arena_detail::State>()) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : state_(other.state_) {}

  T* allocate(std::size_t n) {
    if (n != 1) {
      // Node containers allocate one node at a time; anything else isn't
      // worth free-list bookkeeping.
      return static_cast<T*>(::operator new(n * sizeof(T)));
    }
    return static_cast<T*>(state_->allocate(sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (n != 1) {
      ::operator delete(p);
      return;
    }
    state_->deallocate(p, sizeof(T));
  }

  ArenaAllocator select_on_container_copy_construction() const {
    return ArenaAllocator();  // fresh arena: the copy has its own owner
  }

  std::size_t slab_bytes() const { return state_->slab_bytes(); }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return state_ == other.state_;
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const noexcept {
    return state_ != other.state_;
  }

 private:
  template <typename U>
  friend class ArenaAllocator;

  std::shared_ptr<arena_detail::State> state_;
};

}  // namespace e2e::bb
