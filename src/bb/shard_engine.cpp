#include "bb/shard_engine.hpp"

#include <chrono>
#include <string>
#include <utility>

#include "obs/instruments.hpp"
#include "obs/metrics.hpp"

namespace e2e::bb {

namespace {

/// Which engine/worker the calling thread belongs to. Set for the
/// lifetime of worker_loop; foreign threads see {nullptr, -1}.
thread_local const ShardEngine* tls_engine = nullptr;
thread_local std::ptrdiff_t tls_worker = -1;

}  // namespace

ShardEngine::ShardEngine(std::size_t workers, bool register_metrics) {
  if (register_metrics) {
    auto& registry = obs::MetricsRegistry::global();
    depth_gauge_ = &registry.gauge(obs::kBbShardQueueDepth);
    highwater_gauge_ = &registry.gauge(obs::kBbShardQueueDepthHighwater);
    drain_batch_ = &registry.histogram(obs::kBbShardDrainBatch);
  }
  const std::size_t count = workers == 0 ? 1 : workers;
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    if (register_metrics) {
      auto& registry = obs::MetricsRegistry::global();
      workers_.back()->requests = &registry.counter(
          obs::kBbShardRequestsTotal, {{"worker", std::to_string(i)}});
      workers_.back()->busy_us = &registry.counter(
          obs::kBbShardBusyUsTotal, {{"worker", std::to_string(i)}});
    }
  }
  // Threads start only after every Worker slot exists (a worker never
  // touches slots other than its own, but the vector must not reallocate
  // under them).
  for (std::size_t i = 0; i < count; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

ShardEngine::~ShardEngine() {
  for (auto& worker : workers_) {
    {
      std::lock_guard lock(worker->mutex);
      worker->stop = true;
    }
    worker->cv.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void ShardEngine::post(std::size_t worker, Task task) {
  Worker& w = *workers_[worker % workers_.size()];
  const std::size_t depth_now =
      depth_.fetch_add(1, std::memory_order_relaxed) + 1;
  w.depth.fetch_add(1, std::memory_order_relaxed);
  // CAS-max keeps the high-water mark exact without another lock; the
  // loop only spins while some other poster is ALSO raising the mark.
  std::size_t seen = depth_highwater_.load(std::memory_order_relaxed);
  while (depth_now > seen &&
         !depth_highwater_.compare_exchange_weak(
             seen, depth_now, std::memory_order_relaxed)) {
  }
  {
    std::lock_guard lock(w.mutex);
    w.queue.push_back(std::move(task));
  }
  w.cv.notify_one();
}

std::vector<ShardEngine::WorkerStats> ShardEngine::stats() const {
  std::vector<WorkerStats> out;
  out.reserve(workers_.size());
  for (const auto& worker : workers_) {
    WorkerStats s;
    s.queue_depth = worker->depth.load(std::memory_order_relaxed);
    s.tasks_total = worker->tasks.load(std::memory_order_relaxed);
    s.busy_us_total = worker->busy.load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

std::ptrdiff_t ShardEngine::current_worker() const {
  return tls_engine == this ? tls_worker : -1;
}

void ShardEngine::worker_loop(std::size_t index) {
  tls_engine = this;
  tls_worker = static_cast<std::ptrdiff_t>(index);
  Worker& w = *workers_[index];
  std::deque<Task> batch;
  for (;;) {
    {
      std::unique_lock lock(w.mutex);
      w.cv.wait(lock, [&] { return w.stop || !w.queue.empty(); });
      if (w.queue.empty()) break;  // stop requested and fully drained
      // Drain everything queued in one lock acquisition; enqueue-side
      // contention then costs one handoff per BURST, not per task.
      batch.swap(w.queue);
    }
    // Tasks leave the depth count at dequeue, not after they run: a
    // caller whose run_on just completed must not observe its own task
    // still "queued".
    const std::size_t drained = batch.size();
    depth_.fetch_sub(drained, std::memory_order_relaxed);
    w.depth.fetch_sub(drained, std::memory_order_relaxed);
    const auto busy_start = std::chrono::steady_clock::now();
    for (Task& task : batch) task();
    batch.clear();
    const auto busy_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - busy_start)
            .count());
    // Instruments once per batch: the whole point of shard ownership is
    // that the hot loop stops hammering shared cache lines. Null when
    // this engine was built with register_metrics=false.
    if (w.requests != nullptr) w.requests->increment(drained);
    if (w.busy_us != nullptr) w.busy_us->increment(busy_us);
    w.tasks.fetch_add(drained, std::memory_order_relaxed);
    w.busy.fetch_add(busy_us, std::memory_order_relaxed);
    if (drain_batch_ != nullptr) {
      drain_batch_->observe(static_cast<double>(drained));
    }
    if (depth_gauge_ != nullptr) {
      depth_gauge_->set(static_cast<double>(
          depth_.load(std::memory_order_relaxed)));
    }
    if (highwater_gauge_ != nullptr) {
      highwater_gauge_->set(static_cast<double>(
          depth_highwater_.load(std::memory_order_relaxed)));
    }
  }
  tls_engine = nullptr;
  tls_worker = -1;
}

}  // namespace e2e::bb
